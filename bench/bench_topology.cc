// Topology-aware vs topology-blind placement A/B (DESIGN.md §14).
//
// Three scenario families, each run twice under the Pollux policy — once with
// the scheduler seeing the full rack/GPU-type annotations, once with the same
// physical cluster but the annotations hidden from the scheduler
// (--topology-blind semantics): ground-truth job speeds are topology-aware in
// both arms, so any gap is purely the value of topology-aware placement.
//
//   rack-affinity   4 racks x 4 nodes, sync-heavy gangs; cross-rack sync
//                   costs rack_link_factor x the in-rack constants.
//   heterogeneous   one rack, 25% A100 / 75% T4 nodes; the aware arm can
//                   pack jobs onto the fast generation.
//   fragmentation   8 racks x 2 nodes: most multi-node gangs are forced to
//                   consider spilling; affinity decides how often they pay
//                   the cross-rack tier.

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench/common.h"
#include "util/csv.h"

namespace pollux {
namespace {

struct Scenario {
  const char* name;
  int racks;  // 0 = single implicit rack (heterogeneous family).
  int nodes;
  const char* gpu_mix;
  double rack_link_factor;
  double sync_heavy_fraction;
};

int Main(int argc, char** argv) {
  FlagParser flags;
  AddCommonFlags(flags);
  if (!flags.Parse(argc, argv)) {
    return flags.help_requested() ? kExitOk : kExitUsage;
  }
  ObsSession obs(flags);
  const BenchSimConfig base = ConfigFromFlags(flags);

  const std::vector<Scenario> scenarios = {
      {"rack-affinity (4x4)", 4, 16, "", 2.5, 0.6},
      {"heterogeneous (a100:0.25,t4:0.75)", 0, 16, "a100:0.25,t4:0.75", 1.0, 0.3},
      {"fragmentation (8x2)", 8, 16, "", 2.5, 0.6},
  };

  std::printf("=== Topology-aware vs topology-blind Pollux placement ===\n");
  std::printf("(same physical cluster and ground truth in both arms; the blind arm's\n"
              " scheduler sees the flat model)\n\n");
  TablePrinter table({"scenario", "arm", "avg JCT (h)", "p99 JCT (h)", "avg goodput",
                      "JCT vs blind"});
  for (const Scenario& scenario : scenarios) {
    BenchSimConfig config = base;
    config.racks = scenario.racks;
    config.nodes = scenario.nodes;
    config.gpu_mix = scenario.gpu_mix;
    config.rack_link_factor = scenario.rack_link_factor;
    config.sync_heavy_fraction = scenario.sync_heavy_fraction;

    config.topology_blind = true;
    const SimResult blind = RunBenchPolicy("pollux", config);
    config.topology_blind = false;
    const SimResult aware = RunBenchPolicy("pollux", config);

    const Summary blind_jct = blind.JctSummary();
    const Summary aware_jct = aware.JctSummary();
    const double gain =
        aware_jct.mean > 0.0 ? (blind_jct.mean / aware_jct.mean - 1.0) * 100.0 : 0.0;
    table.AddRow({scenario.name, "blind", FormatDouble(blind_jct.mean / 3600.0, 3),
                  FormatDouble(blind_jct.p99 / 3600.0, 3),
                  FormatDouble(blind.AvgJobGoodput(), 1), "-"});
    table.AddRow({scenario.name, "aware", FormatDouble(aware_jct.mean / 3600.0, 3),
                  FormatDouble(aware_jct.p99 / 3600.0, 3),
                  FormatDouble(aware.AvgJobGoodput(), 1),
                  FormatDouble(gain, 1) + "%"});
  }
  table.Print(std::cout);
  std::printf("\nExpected shape: the aware arm's mean JCT is no worse in every family and\n"
              "clearly better where cross-rack sync or mixed GPU generations dominate.\n");
  return 0;
}

}  // namespace
}  // namespace pollux

int main(int argc, char** argv) { return pollux::Main(argc, argv); }
