// Table 2 (and the Sec. 5.3 simulator-fidelity paragraph): the headline
// comparison on the primary workload — 160 ideally-tuned jobs over an 8-hour
// window on 16 nodes x 4 GPUs — under Pollux, Optimus+Oracle, and
// Tiresias+TunedJobs. Reports average and tail JCT, makespan, the
// time-averaged statistical efficiency across running jobs (Sec. 5.2.1's
// ~91% vs ~74%), and relative throughput/goodput factors.

#include <cmath>
#include <cstdio>
#include <iostream>
#include <map>

#include "bench/common.h"
#include "util/csv.h"

namespace pollux {
namespace {

// Geometric mean over jobs of (pollux metric / baseline metric), paired by
// job id — the per-job factors Sec. 5.2.1 reports ("1.5x higher throughput",
// "2x higher goodput").
struct PairedFactors {
  double throughput = 1.0;
  double goodput = 1.0;
};

PairedFactors PairedJobFactors(const SimResult& pollux, const SimResult& baseline) {
  std::map<uint64_t, const JobResult*> by_id;
  for (const auto& job : baseline.jobs) {
    by_id[job.job_id] = &job;
  }
  double log_tput = 0.0;
  double log_goodput = 0.0;
  int count = 0;
  for (const auto& job : pollux.jobs) {
    const auto it = by_id.find(job.job_id);
    if (it == by_id.end() || job.avg_goodput <= 0.0 || it->second->avg_goodput <= 0.0 ||
        job.avg_throughput <= 0.0 || it->second->avg_throughput <= 0.0) {
      continue;
    }
    log_tput += std::log(job.avg_throughput / it->second->avg_throughput);
    log_goodput += std::log(job.avg_goodput / it->second->avg_goodput);
    ++count;
  }
  PairedFactors factors;
  if (count > 0) {
    factors.throughput = std::exp(log_tput / count);
    factors.goodput = std::exp(log_goodput / count);
  }
  return factors;
}

int Main(int argc, char** argv) {
  FlagParser flags;
  AddCommonFlags(flags);
  flags.DefineInt("seeds", 4, "number of trace seeds to average (paper: 8)");
  if (!flags.Parse(argc, argv)) {
    return flags.help_requested() ? kExitOk : kExitUsage;
  }
  ObsSession obs(flags);
  const BenchSimConfig config = ConfigFromFlags(flags);
  const int seeds = static_cast<int>(flags.GetInt("seeds"));

  std::printf("=== Table 2: %d ideally-tuned jobs, %dx%d GPUs, %d seed(s) ===\n", config.jobs,
              config.nodes, config.gpus_per_node, seeds);
  const PolicyAverages pollux = RunBenchPolicySeeds("pollux", config, seeds);
  const PolicyAverages optimus = RunBenchPolicySeeds("optimus", config, seeds);
  const PolicyAverages tiresias = RunBenchPolicySeeds("tiresias", config, seeds);

  TablePrinter table({"policy", "avg JCT", "p99 JCT", "makespan", "stat. eff."});
  auto add = [&](const char* name, const PolicyAverages& a) {
    table.AddRow({name, FormatDouble(a.avg_jct_hours, 2) + "h",
                  FormatDouble(a.p99_jct_hours, 1) + "h",
                  FormatDouble(a.makespan_hours, 1) + "h",
                  FormatDouble(100.0 * a.avg_efficiency, 0) + "%"});
  };
  add("Pollux", pollux);
  add("Optimus+Oracle", optimus);
  add("Tiresias+TunedJobs", tiresias);
  table.Print(std::cout);

  std::printf("\nRelative factors (paper's Sec. 5.2.1 narrative):\n");
  std::printf("  avg JCT reduction vs Optimus+Oracle:    %.0f%%  (paper: 25%%)\n",
              100.0 * (1.0 - pollux.avg_jct_hours / optimus.avg_jct_hours));
  std::printf("  avg JCT reduction vs Tiresias:          %.0f%%  (paper: 50%%)\n",
              100.0 * (1.0 - pollux.avg_jct_hours / tiresias.avg_jct_hours));
  std::printf("  makespan reduction vs Optimus+Oracle:   %.0f%%  (paper: 17%%)\n",
              100.0 * (1.0 - pollux.makespan_hours / optimus.makespan_hours));
  std::printf("  makespan reduction vs Tiresias:         %.0f%%  (paper: 39%%)\n",
              100.0 * (1.0 - pollux.makespan_hours / tiresias.makespan_hours));
  std::printf("  stat. efficiency: %.0f%% vs %.0f%% / %.0f%%  (paper: ~91%% vs ~74%%)\n",
              100.0 * pollux.avg_efficiency, 100.0 * optimus.avg_efficiency,
              100.0 * tiresias.avg_efficiency);

  // Per-job factors are paired on one seed (geometric mean over jobs).
  BenchSimConfig paired_config = config;
  const SimResult pollux_run = RunBenchPolicy("pollux", paired_config);
  const PairedFactors vs_optimus =
      PairedJobFactors(pollux_run, RunBenchPolicy("optimus", paired_config));
  const PairedFactors vs_tiresias =
      PairedJobFactors(pollux_run, RunBenchPolicy("tiresias", paired_config));
  std::printf("  per-job throughput factor vs Optimus+Oracle: %.1fx (paper: 1.2x)\n",
              vs_optimus.throughput);
  std::printf("  per-job throughput factor vs Tiresias:       %.1fx (paper: 1.5x)\n",
              vs_tiresias.throughput);
  std::printf("  per-job goodput factor vs Optimus+Oracle:    %.1fx (paper: 1.4x)\n",
              vs_optimus.goodput);
  std::printf("  per-job goodput factor vs Tiresias:          %.1fx (paper: 2.0x)\n",
              vs_tiresias.goodput);
  return 0;
}

}  // namespace
}  // namespace pollux

int main(int argc, char** argv) { return pollux::Main(argc, argv); }
