// Ablations of the design decisions DESIGN.md calls out (not a paper table,
// but each sweep corresponds to a design knob the paper discusses):
//
//   A. Co-adaptivity: full Pollux vs PolluxSched-with-fixed-batch-sizes —
//      isolates the contribution of batch-size/LR co-adaptation (Sec. 1's
//      core thesis) from goodput-driven resource allocation alone.
//   B. RESTART_PENALTY: 0 (free reallocations in the fitness) to 1.0
//      (reallocation strongly discouraged), Sec. 4.2.1.
//   C. Genetic-algorithm budget: generations x population per 60 s round,
//      Sec. 5.1 uses 100 x 100.
//   D. Scheduling interval: how often PolluxSched re-optimizes allocations.

#include <cstdio>
#include <iostream>

#include "bench/common.h"
#include "util/csv.h"

namespace pollux {
namespace {

int Main(int argc, char** argv) {
  FlagParser flags;
  AddCommonFlags(flags);
  flags.DefineInt("seeds", 1, "trace seeds to average per cell");
  if (!flags.Parse(argc, argv)) {
    return flags.help_requested() ? kExitOk : kExitUsage;
  }
  ObsSession obs(flags);
  const BenchSimConfig base = ConfigFromFlags(flags);
  const int seeds = static_cast<int>(flags.GetInt("seeds"));

  std::printf("=== Ablation A: co-adaptivity (batch-size adaptation on/off) ===\n");
  {
    TablePrinter table({"policy", "avg JCT", "stat. eff."});
    for (const char* policy : {"pollux", "pollux-fixed-batch", "optimus", "tiresias", "fifo"}) {
      const PolicyAverages result = RunBenchPolicySeeds(policy, base, seeds);
      table.AddRow({policy, FormatDouble(result.avg_jct_hours, 2) + "h",
                    FormatDouble(100.0 * result.avg_efficiency, 0) + "%"});
    }
    table.Print(std::cout);
    std::printf("pollux-fixed-batch keeps goodput-driven allocation but not batch\n"
                "adaptation; the gap to full Pollux is the co-adaptivity contribution.\n");
  }

  std::printf("\n=== Ablation B: RESTART_PENALTY in the fitness function ===\n");
  {
    TablePrinter table({"penalty", "avg JCT", "makespan"});
    BenchSimConfig config = base;
    for (double penalty : {0.0, 0.25, 0.5, 1.0}) {
      config.restart_penalty = penalty;
      const PolicyAverages result = RunBenchPolicySeeds("pollux", config, seeds);
      table.AddRow({FormatDouble(penalty, 2), FormatDouble(result.avg_jct_hours, 2) + "h",
                    FormatDouble(result.makespan_hours, 1) + "h"});
    }
    table.Print(std::cout);
  }

  std::printf("\n=== Ablation C: genetic-algorithm budget per round ===\n");
  {
    TablePrinter table({"population x generations", "avg JCT", "stat. eff."});
    BenchSimConfig config = base;
    const int budgets[][2] = {{10, 5}, {20, 10}, {40, 25}, {80, 50}};
    for (const auto& budget : budgets) {
      config.ga_population = budget[0];
      config.ga_generations = budget[1];
      const PolicyAverages result = RunBenchPolicySeeds("pollux", config, seeds);
      table.AddRow({std::to_string(budget[0]) + " x " + std::to_string(budget[1]),
                    FormatDouble(result.avg_jct_hours, 2) + "h",
                    FormatDouble(100.0 * result.avg_efficiency, 0) + "%"});
    }
    table.Print(std::cout);
  }

  std::printf("\n=== Ablation D: scheduling interval ===\n");
  {
    TablePrinter table({"interval", "avg JCT", "makespan"});
    BenchSimConfig config = base;
    for (double interval : {30.0, 60.0, 120.0, 240.0}) {
      config.sched_interval = interval;
      const PolicyAverages result = RunBenchPolicySeeds("pollux", config, seeds);
      table.AddRow({FormatDouble(interval, 0) + "s",
                    FormatDouble(result.avg_jct_hours, 2) + "h",
                    FormatDouble(result.makespan_hours, 1) + "h"});
    }
    table.Print(std::cout);
  }
  return 0;
}

}  // namespace
}  // namespace pollux

int main(int argc, char** argv) { return pollux::Main(argc, argv); }
