// Figure 2: statistical efficiency of ResNet-50 on ImageNet.
//
//   Fig. 2a — true statistical efficiency over training progress for a small
//             vs large batch size, showing the jumps at the learning-rate
//             decay points and the narrowing gap late in training.
//   Fig. 2b — efficiency predicted by Eqn. 7 from a gradient-noise-scale
//             estimate measured at one batch size, compared to the actual
//             efficiency across a sweep of batch sizes. The estimate runs
//             through the real multi-replica estimator on synthetic
//             gradients with the profile's true moments.

#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench/common.h"
#include "core/efficiency.h"
#include "core/gns.h"
#include "util/csv.h"
#include "util/rng.h"
#include "workload/model_profile.h"

namespace pollux {
namespace {

int Main(int argc, char** argv) {
  FlagParser flags;
  flags.DefineInt("seed", 1, "random seed for the estimator experiment");
  AddObsFlags(flags);
  if (!flags.Parse(argc, argv)) {
    return flags.help_requested() ? kExitOk : kExitUsage;
  }
  ObsSession obs(flags);
  const ModelProfile& profile = GetModelProfile(ModelKind::kResNet50ImageNet);
  const double epochs = profile.target_epochs;

  std::printf("=== Fig. 2a: statistical efficiency vs statistical epochs (%s) ===\n",
              profile.name.c_str());
  const long small_batch = 4 * profile.base_batch_size;   // "bs 800" analog.
  const long large_batch = 40 * profile.base_batch_size;  // "bs 8000" analog.
  TablePrinter fig2a({"epoch", "bs=" + std::to_string(small_batch),
                      "bs=" + std::to_string(large_batch)});
  for (double epoch = 0.0; epoch <= epochs; epoch += epochs / 15.0) {
    const double progress = epoch / epochs;
    fig2a.AddRow({FormatDouble(epoch, 0),
                  FormatDouble(profile.TrueEfficiency(small_batch, progress), 3),
                  FormatDouble(profile.TrueEfficiency(large_batch, progress), 3)});
  }
  fig2a.Print(std::cout);

  // Fig. 2b: estimate phi via the multi-replica estimator at one batch size
  // (paper: 4000 images at epoch 15), then predict other batch sizes.
  const double measure_progress = 1.0 / 3.0;
  const double true_phi = profile.gns.PhiAt(measure_progress);
  const long measure_batch = 20 * profile.base_batch_size;  // ~4000 images.
  Rng rng(static_cast<uint64_t>(flags.GetInt("seed")));
  GnsTracker tracker(0.95);
  // Synthetic per-replica gradients whose moments match the profile's true
  // noise scale (|G|^2 = 1, tr(Sigma) = phi).
  const size_t dim = 64;
  const int replicas = 8;
  for (int step = 0; step < 300; ++step) {
    std::vector<std::vector<double>> grads(replicas);
    const double per_dim_std =
        std::sqrt(true_phi / (static_cast<double>(measure_batch) / replicas) /
                  static_cast<double>(dim));
    const double mean_component = 1.0 / std::sqrt(static_cast<double>(dim));
    for (auto& grad : grads) {
      grad.resize(dim);
      for (double& g : grad) {
        g = mean_component + rng.Normal(0.0, per_dim_std);
      }
    }
    const auto sample = EstimateGnsFromReplicas(grads, static_cast<double>(measure_batch));
    if (sample.has_value()) {
      tracker.AddSample(*sample);
    }
  }
  const double estimated_phi = tracker.Phi();

  std::printf("\n=== Fig. 2b: actual vs Eqn.-7-predicted efficiency vs batch size ===\n");
  std::printf("true phi at epoch %.0f: %.0f; estimated from bs=%ld gradients: %.0f\n",
              epochs * measure_progress, true_phi, measure_batch, estimated_phi);
  TablePrinter fig2b({"batch", "actual", "model (Eqn. 7)"});
  const double m0 = static_cast<double>(profile.base_batch_size);
  for (long m = profile.base_batch_size; m <= profile.max_batch_total; m *= 2) {
    fig2b.AddRow({std::to_string(m),
                  FormatDouble(profile.TrueEfficiency(m, measure_progress), 3),
                  FormatDouble(StatisticalEfficiency(estimated_phi, m0,
                                                     static_cast<double>(m)), 3)});
  }
  fig2b.Print(std::cout);
  std::printf("\nExpected shape: efficiency jumps at LR decays (Fig. 2a); the Eqn.-7 prediction\n"
              "tracks the actual efficiency across batch sizes (Fig. 2b).\n");
  return 0;
}

}  // namespace
}  // namespace pollux

int main(int argc, char** argv) { return pollux::Main(argc, argv); }
