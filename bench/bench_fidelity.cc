// Simulator fidelity (supports the Sec. 5.3 "Simulator fidelity" paragraph):
// the headline Pollux result must be robust to the simulator's own knobs —
// the clock resolution and the amount of measurement noise the agents see.
// If conclusions flipped under 5x coarser ticks or 3x noisier profiling, the
// simulation would be fragile; the paper reports its simulator reproduces
// the testbed factors, and this bench reports the analogous internal check.

#include <cstdio>
#include <iostream>

#include "bench/common.h"
#include "util/csv.h"

namespace pollux {
namespace {

int Main(int argc, char** argv) {
  FlagParser flags;
  AddCommonFlags(flags);
  if (!flags.Parse(argc, argv)) {
    return flags.help_requested() ? kExitOk : kExitUsage;
  }
  ObsSession obs(flags);
  const BenchSimConfig base = ConfigFromFlags(flags);

  std::printf("=== Fidelity: Pollux avg JCT vs simulator clock resolution ===\n");
  {
    TablePrinter table({"tick", "avg JCT", "makespan", "stat. eff."});
    BenchSimConfig config = base;
    for (double tick : {1.0, 2.0, 5.0}) {
      config.tick = tick;
      const PolicyAverages result = RunBenchPolicySeeds("pollux", config, 1);
      table.AddRow({FormatDouble(tick, 0) + "s", FormatDouble(result.avg_jct_hours, 2) + "h",
                    FormatDouble(result.makespan_hours, 1) + "h",
                    FormatDouble(100.0 * result.avg_efficiency, 0) + "%"});
    }
    table.Print(std::cout);
  }

  std::printf("\n=== Fidelity: Pollux vs Tiresias under profiling noise ===\n");
  {
    TablePrinter table({"obs noise", "gns noise", "Pollux avg JCT", "Tiresias avg JCT",
                        "Pollux wins"});
    BenchSimConfig config = base;
    const double obs_levels[] = {0.0, 0.05, 0.15};
    const double gns_levels[] = {0.0, 0.10, 0.30};
    for (int i = 0; i < 3; ++i) {
      config.observation_noise = obs_levels[i];
      config.gns_noise = gns_levels[i];
      const PolicyAverages pollux = RunBenchPolicySeeds("pollux", config, 1);
      const PolicyAverages tiresias = RunBenchPolicySeeds("tiresias", config, 1);
      table.AddRow({FormatDouble(obs_levels[i], 2), FormatDouble(gns_levels[i], 2),
                    FormatDouble(pollux.avg_jct_hours, 2) + "h",
                    FormatDouble(tiresias.avg_jct_hours, 2) + "h",
                    pollux.avg_jct_hours < tiresias.avg_jct_hours ? "yes" : "NO"});
    }
    table.Print(std::cout);
  }
  std::printf("\nExpected: the Pollux-vs-baseline ordering is stable across clock resolutions\n"
              "and noise levels (the simulator's conclusions are not knife-edge artifacts).\n");
  return 0;
}

}  // namespace
}  // namespace pollux

int main(int argc, char** argv) { return pollux::Main(argc, argv); }
