// Hyperscale scheduling ladder: goodput loss vs round-time speedup of
// --sched-mode=incremental and first-match relative to exact, on large
// generated traces (ROADMAP "10k-node clusters and 100k-job traces").
//
// Two entry points:
//   bench_hyperscale --nodes=... --jobs=... --duration_hours=... \
//       --modes=exact,incremental,first-match
//     runs every listed mode over the same GenerateHyperscaleTrace workload
//     and prints the goodput-loss-vs-speedup table (EXPERIMENTS.md).
//   bench_hyperscale --gen-trace=PATH ...
//     only synthesizes the trace and writes it as CSV for other binaries
//     (the CI hyperscale-smoke job feeds it to pollux_simulate), then exits.

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/common.h"
#include "util/csv.h"
#include "util/stats.h"
#include "workload/trace_io.h"

namespace pollux {
namespace {

std::vector<std::string> SplitModes(const std::string& list) {
  std::vector<std::string> modes;
  std::istringstream in(list);
  std::string mode;
  while (std::getline(in, mode, ',')) {
    if (!mode.empty()) {
      modes.push_back(mode);
    }
  }
  return modes;
}

int Main(int argc, char** argv) {
  FlagParser flags;
  AddCommonFlags(flags);
  flags.DefineString("modes", "exact,incremental,first-match",
                     "comma-separated --sched-mode values to compare");
  flags.DefineInt("max-request-gpus", 64, "per-job GPU request ceiling for the trace");
  flags.DefineString("gen-trace", "",
                     "write the generated hyperscale trace to this CSV and exit "
                     "(no simulation)");
  if (!flags.Parse(argc, argv)) {
    return flags.help_requested() ? kExitOk : kExitUsage;
  }
  ObsSession obs(flags);
  BenchSimConfig config = ConfigFromFlags(flags);

  HyperTraceOptions trace_options;
  trace_options.num_nodes = config.nodes;
  trace_options.gpus_per_node = config.gpus_per_node;
  trace_options.num_jobs = config.jobs;
  trace_options.duration = config.duration_hours * 3600.0;
  trace_options.user_configured_fraction = config.user_configured_fraction;
  trace_options.max_request_gpus = static_cast<int>(flags.GetInt("max-request-gpus"));
  trace_options.seed = config.seed;
  trace_options.threads = config.threads;
  const std::vector<JobSpec> trace = GenerateHyperscaleTrace(trace_options);

  if (!flags.GetString("gen-trace").empty()) {
    const std::string path = flags.GetString("gen-trace");
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "cannot open trace output file %s\n", path.c_str());
      return kExitRuntime;
    }
    WriteTraceCsv(out, trace);
    std::printf("wrote %zu jobs (%d nodes x %d GPUs, %.1f h horizon) to %s\n", trace.size(),
                config.nodes, config.gpus_per_node, config.duration_hours, path.c_str());
    return kExitOk;
  }

  const std::vector<std::string> modes = SplitModes(flags.GetString("modes"));
  if (modes.empty()) {
    std::fprintf(stderr, "--modes must name at least one sched mode\n");
    return kExitUsage;
  }

  std::printf("=== sched-mode ladder: %d nodes x %d GPUs, %zu jobs, %.1f h ===\n", config.nodes,
              config.gpus_per_node, trace.size(), config.duration_hours);
  struct ModeOutcome {
    std::string name;
    double wall_s = 0.0;
    double avg_goodput = 0.0;
    double avg_jct_h = 0.0;
  };
  std::vector<ModeOutcome> outcomes;
  for (const std::string& name : modes) {
    if (!SchedModeByName(name, &config.sched_mode)) {
      std::fprintf(stderr, "unknown sched mode \"%s\"\n", name.c_str());
      return kExitUsage;
    }
    const auto start = std::chrono::steady_clock::now();
    const SimResult result = RunImportedTrace("pollux", config, trace);
    const auto end = std::chrono::steady_clock::now();
    ModeOutcome outcome;
    outcome.name = name;
    outcome.wall_s = std::chrono::duration<double>(end - start).count();
    outcome.avg_goodput = result.AvgJobGoodput();
    outcome.avg_jct_h = result.JctSummary().mean / 3600.0;
    outcomes.push_back(outcome);
    std::printf("  %-12s wall=%.2fs avg_goodput=%.1f avg_jct=%.2fh\n", name.c_str(),
                outcome.wall_s, outcome.avg_goodput, outcome.avg_jct_h);
  }

  // The first listed mode is the quality reference (exact, unless the caller
  // narrowed the ladder).
  const ModeOutcome& reference = outcomes.front();
  std::printf("\n=== goodput loss vs speedup (reference: %s) ===\n", reference.name.c_str());
  TablePrinter table({"mode", "wall_s", "speedup", "avg_goodput", "goodput_loss", "avg_jct_h"});
  for (const ModeOutcome& outcome : outcomes) {
    const double speedup = outcome.wall_s > 0.0 ? reference.wall_s / outcome.wall_s : 0.0;
    const double loss = reference.avg_goodput > 0.0
                            ? 100.0 * (1.0 - outcome.avg_goodput / reference.avg_goodput)
                            : 0.0;
    table.AddRow({outcome.name, FormatDouble(outcome.wall_s, 2), FormatDouble(speedup, 2) + "x",
                  FormatDouble(outcome.avg_goodput, 1), FormatDouble(loss, 2) + "%",
                  FormatDouble(outcome.avg_jct_h, 2)});
  }
  table.Print(std::cout);
  return kExitOk;
}

}  // namespace
}  // namespace pollux

int main(int argc, char** argv) { return pollux::Main(argc, argv); }
