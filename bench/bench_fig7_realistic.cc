// Figure 7: average JCT (normalized to Pollux) as the workload mixes in
// increasing fractions of realistic user-configured jobs (GPU counts from a
// Philly-like request distribution, batch sizes within 2x of efficient).
// Pollux should be unaffected while Tiresias degrades sharply and
// Optimus+Oracle moderately (paper: 1 / 2.1x / 3.3x at 100%).

#include <cstdio>
#include <iostream>

#include "bench/common.h"
#include "util/csv.h"

namespace pollux {
namespace {

int Main(int argc, char** argv) {
  FlagParser flags;
  AddCommonFlags(flags);
  if (!flags.Parse(argc, argv)) {
    return flags.help_requested() ? kExitOk : kExitUsage;
  }
  ObsSession obs(flags);
  BenchSimConfig config = ConfigFromFlags(flags);

  std::printf("=== Fig. 7: normalized avg JCT vs ratio of user-configured jobs ===\n");
  TablePrinter table({"user-configured", "Pollux", "Optimus+Oracle", "Tiresias",
                      "(absolute Pollux)"});
  for (double fraction : {0.0, 1.0 / 3.0, 2.0 / 3.0, 1.0}) {
    config.user_configured_fraction = fraction;
    const PolicyAverages pollux = RunBenchPolicySeeds("pollux", config, 1);
    const PolicyAverages optimus = RunBenchPolicySeeds("optimus", config, 1);
    const PolicyAverages tiresias = RunBenchPolicySeeds("tiresias", config, 1);
    table.AddRow({FormatDouble(100.0 * fraction, 0) + "%", "1.00",
                  FormatDouble(optimus.avg_jct_hours / pollux.avg_jct_hours, 2),
                  FormatDouble(tiresias.avg_jct_hours / pollux.avg_jct_hours, 2),
                  FormatDouble(pollux.avg_jct_hours, 2) + "h"});
  }
  table.Print(std::cout);
  std::printf("\nExpected shape: Pollux's absolute JCT stays flat; the baselines' normalized\n"
              "JCT grows with the user-configured fraction (paper Fig. 7).\n");
  return 0;
}

}  // namespace
}  // namespace pollux

int main(int argc, char** argv) { return pollux::Main(argc, argv); }
