// Figure 1: the motivating trade-offs (ResNet18 on CIFAR-10).
//
//   Fig. 1a — system throughput vs number of GPUs at batch size 512 vs 2048:
//             the larger batch keeps scaling where the smaller one saturates.
//   Fig. 1b — goodput-optimal batch size vs number of GPUs, first half vs
//             second half of training: later training (larger gradient noise
//             scale) tolerates much larger batch sizes.

#include <cstdio>
#include <iostream>

#include "bench/common.h"
#include "util/csv.h"
#include "workload/model_profile.h"
#include "workload/trace_gen.h"

namespace pollux {
namespace {

int Main(int argc, char** argv) {
  FlagParser flags;
  flags.DefineInt("max_gpus", 16, "largest GPU count to sweep");
  flags.DefineInt("gpus_per_node", 4, "GPUs per node");
  AddObsFlags(flags);
  if (!flags.Parse(argc, argv)) {
    return flags.help_requested() ? kExitOk : kExitUsage;
  }
  ObsSession obs(flags);
  const int max_gpus = static_cast<int>(flags.GetInt("max_gpus"));
  const int gpus_per_node = static_cast<int>(flags.GetInt("gpus_per_node"));
  const ModelProfile& profile = GetModelProfile(ModelKind::kResNet18Cifar10);

  std::printf("=== Fig. 1a: throughput (imgs/sec) vs #GPUs, by batch size (%s) ===\n",
              profile.name.c_str());
  TablePrinter fig1a({"gpus", "bs=512", "bs=2048"});
  for (int k = 1; k <= max_gpus; k *= 2) {
    Placement placement{k, (k + gpus_per_node - 1) / gpus_per_node};
    fig1a.AddRow({std::to_string(k),
                  FormatDouble(profile.TrueThroughput(placement, 512), 0),
                  FormatDouble(profile.TrueThroughput(placement, 2048), 0)});
  }
  fig1a.Print(std::cout);

  std::printf("\n=== Fig. 1b: goodput-optimal batch size vs #GPUs, by training stage ===\n");
  TablePrinter fig1b({"gpus", "first-half (25%)", "second-half (75%)"});
  for (int k : {2, 4, 8, 16}) {
    if (k > max_gpus) {
      break;
    }
    fig1b.AddRow({std::to_string(k),
                  std::to_string(OptimalBatchForGpus(profile, k, gpus_per_node, 0.25)),
                  std::to_string(OptimalBatchForGpus(profile, k, gpus_per_node, 0.75))});
  }
  fig1b.Print(std::cout);
  std::printf("\nExpected shape: bs=2048 scales further than bs=512; optimal batch grows with\n"
              "both GPU count and training progress (Fig. 1a / 1b).\n");
  return 0;
}

}  // namespace
}  // namespace pollux

int main(int argc, char** argv) { return pollux::Main(argc, argv); }
