// Rack-level locality extension (Sec. 3.2's "can be extended to account for
// rack-level locality by adding a third pair of parameters").
//
// Demonstrates the three-tier synchronization model: predicted throughput
// for the same GPU count under co-located / same-rack / cross-rack
// placements, and a fit of the 9-parameter model to noisy measurements
// spanning all three tiers.

#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench/common.h"
#include "core/rack_model.h"
#include "util/csv.h"
#include "util/rng.h"

namespace pollux {
namespace {

RackThroughputParams ResNet50RackTruth() {
  // The two-tier ResNet-50 ground truth, extended with a rack tier (~2.5x the
  // cross-node constants, typical of oversubscribed rack uplinks).
  RackThroughputParams params;
  params.alpha_grad = 0.02;
  params.beta_grad = 0.010;
  params.alpha_sync_local = 0.08;
  params.beta_sync_local = 0.004;
  params.alpha_sync_node = 0.25;
  params.beta_sync_node = 0.012;
  params.alpha_sync_rack = 0.60;
  params.beta_sync_rack = 0.030;
  params.gamma = 2.2;
  return params;
}

int Main(int argc, char** argv) {
  FlagParser flags;
  flags.DefineInt("seed", 5, "measurement noise seed");
  flags.DefineDouble("noise", 0.05, "lognormal sigma of measurement noise");
  AddObsFlags(flags);
  if (!flags.Parse(argc, argv)) {
    return flags.help_requested() ? kExitOk : kExitUsage;
  }
  ObsSession obs(flags);
  const auto truth = ResNet50RackTruth();

  std::printf("=== Three-tier sync model: throughput (imgs/sec) by placement locality ===\n");
  TablePrinter tiers({"gpus", "batch", "co-located (1 node)", "same rack (4/node)",
                      "cross rack (4/node)"});
  for (int k : {8, 16, 32}) {
    const long batch = 200L * k;
    const int nodes = std::max(2, k / 4);
    tiers.AddRow(
        {std::to_string(k), std::to_string(batch),
         FormatDouble(RackModelThroughput(truth, RackPlacement{k, 1, 1}, double(batch)), 0),
         FormatDouble(RackModelThroughput(truth, RackPlacement{k, nodes, 1}, double(batch)), 0),
         FormatDouble(RackModelThroughput(truth, RackPlacement{k, nodes, 2}, double(batch)),
                      0)});
  }
  tiers.Print(std::cout);

  // Fit the 9-parameter model to noisy observations across all tiers.
  Rng rng(static_cast<uint64_t>(flags.GetInt("seed")));
  const double noise = flags.GetDouble("noise");
  std::vector<RackThroughputObservation> observations;
  for (int k : {1, 2, 4, 8, 16, 32}) {
    for (const auto& [nodes, racks] :
         std::vector<std::pair<int, int>>{{1, 1}, {2, 1}, {4, 2}, {8, 2}}) {
      if (k < nodes) {
        continue;
      }
      for (long m : {200L, 800L, 3200L}) {
        const RackPlacement placement{k, nodes, racks};
        observations.push_back(
            {placement, m,
             RackIterTime(truth, placement, double(m)) * std::exp(rng.Normal(0.0, noise))});
      }
    }
  }
  RackFitOptions options;
  options.max_gpus_seen = 32;
  options.max_nodes_seen = 8;
  options.max_racks_seen = 2;
  const RackFitResult fit = FitRackThroughputParams(observations, options);
  std::printf("\nfitted 9-parameter model on %zu noisy observations, RMSLE = %.4f\n",
              observations.size(), fit.rmsle);

  TablePrinter check({"placement (K/N/R)", "actual", "model"});
  for (const RackPlacement placement :
       {RackPlacement{12, 2, 1}, RackPlacement{12, 3, 2}, RackPlacement{24, 6, 2}}) {
    const long batch = 200L * placement.num_gpus;
    check.AddRow({std::to_string(placement.num_gpus) + "/" +
                      std::to_string(placement.num_nodes) + "/" +
                      std::to_string(placement.num_racks),
                  FormatDouble(RackModelThroughput(truth, placement, double(batch)), 0),
                  FormatDouble(RackModelThroughput(fit.params, placement, double(batch)), 0)});
  }
  check.Print(std::cout);
  std::printf("\nExpected shape: same GPUs get strictly slower as the placement spreads\n"
              "(co-located > same rack > cross rack), and the fit tracks held-out placements.\n");
  return 0;
}

}  // namespace
}  // namespace pollux

int main(int argc, char** argv) { return pollux::Main(argc, argv); }
