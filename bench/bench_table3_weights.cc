// Table 3: impact of the job-weight decay lambda (Eqn. 16) on the JCT
// distribution under Pollux. Larger lambda prioritizes young/small jobs:
// the median JCT improves while the tail degrades moderately (paper:
// lambda=0.5 gives 0.77x median, 1.05x p99, ~0.95x average).

#include <cstdio>
#include <iostream>

#include "bench/common.h"
#include "util/csv.h"

namespace pollux {
namespace {

int Main(int argc, char** argv) {
  FlagParser flags;
  AddCommonFlags(flags);
  if (!flags.Parse(argc, argv)) {
    return flags.help_requested() ? kExitOk : kExitUsage;
  }
  ObsSession obs(flags);
  BenchSimConfig config = ConfigFromFlags(flags);

  std::printf("=== Table 3: JCT vs job-weight decay lambda (relative to lambda=0) ===\n");
  config.weight_lambda = 0.0;
  const PolicyAverages base = RunBenchPolicySeeds("pollux", config, 1);
  TablePrinter table({"lambda", "avg JCT", "p50 JCT", "p99 JCT"});
  table.AddRow({"0.0", "1.00", "1.00", "1.00"});
  for (double lambda : {0.5, 1.0}) {
    config.weight_lambda = lambda;
    const PolicyAverages result = RunBenchPolicySeeds("pollux", config, 1);
    table.AddRow({FormatDouble(lambda, 1),
                  FormatDouble(result.avg_jct_hours / base.avg_jct_hours, 2),
                  FormatDouble(result.p50_jct_hours / base.p50_jct_hours, 2),
                  FormatDouble(result.p99_jct_hours / base.p99_jct_hours, 2)});
  }
  table.Print(std::cout);
  std::printf("\n(absolute lambda=0 baseline: avg %.2fh, p50 %.2fh, p99 %.1fh)\n",
              base.avg_jct_hours, base.p50_jct_hours, base.p99_jct_hours);
  std::printf("Expected shape: increasing lambda improves the median JCT, moderately degrades\n"
              "the 99th percentile, and barely moves the average (paper Table 3).\n");
  return 0;
}

}  // namespace
}  // namespace pollux

int main(int argc, char** argv) { return pollux::Main(argc, argv); }
