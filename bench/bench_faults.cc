// Fault-tolerance comparison: every scheduling policy under the "none",
// "light", and "heavy" fault-injection profiles (node crashes, stragglers,
// lost agent reports, failing checkpoint-restarts; see sim/fault_injector.h).
//
// The interesting shape: all policies degrade as faults intensify, but
// Pollux's adaptive reallocation should degrade the most gracefully — evicted
// jobs are re-queued and re-packed onto surviving nodes the next round, while
// static policies strand capacity. No job is ever lost under any profile
// (asserted by the invariant checker, enabled here for every run).

#include <cstdio>
#include <iostream>

#include "bench/common.h"
#include "util/csv.h"

namespace pollux {
namespace {

int Main(int argc, char** argv) {
  FlagParser flags;
  AddCommonFlags(flags);
  if (!flags.Parse(argc, argv)) {
    return flags.help_requested() ? kExitOk : kExitUsage;
  }
  ObsSession obs(flags);
  BenchSimConfig config = ConfigFromFlags(flags);
  config.check_invariants = true;

  std::printf("=== Fault tolerance: avg JCT / evictions under fault profiles ===\n");
  TablePrinter table({"policy", "profile", "avg JCT (h)", "completed", "evictions",
                      "restart failures", "backoff (min)"});
  for (const std::string policy : {"pollux", "optimus", "tiresias"}) {
    for (const std::string profile : {"none", "light", "heavy"}) {
      FaultProfileByName(profile, &config.faults);
      const SimResult result = RunBenchPolicy(policy, config);
      int completed = 0;
      long evictions = 0;
      long restart_failures = 0;
      double backoff = 0.0;
      for (const auto& job : result.jobs) {
        completed += job.completed ? 1 : 0;
        evictions += job.num_evictions;
        restart_failures += job.num_restart_failures;
        backoff += job.backoff_seconds;
      }
      table.AddRow({policy, profile, FormatDouble(result.JctSummary().mean / 3600.0, 2),
                    std::to_string(completed) + "/" + std::to_string(result.jobs.size()),
                    std::to_string(evictions), std::to_string(restart_failures),
                    FormatDouble(backoff / 60.0, 1)});
    }
  }
  table.Print(std::cout);
  std::printf("\nExpected shape: JCT grows none -> light -> heavy for every policy, with\n"
              "Pollux degrading most gracefully (it re-packs evicted jobs onto the\n"
              "surviving nodes); the completed count stays equal to the job count at\n"
              "every profile because evicted jobs are re-queued, never lost.\n");
  return 0;
}

}  // namespace
}  // namespace pollux

int main(int argc, char** argv) { return pollux::Main(argc, argv); }
