// Microbenchmarks (google-benchmark) for the hot paths that bound
// PolluxSched's 60-second scheduling budget: goodput evaluation, batch-size
// optimization, speedup-table construction, genetic-algorithm rounds, online
// model fitting, and the event-queue engine primitives.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench/common.h"
#include "core/eval_cache.h"
#include "core/genetic.h"
#include "core/gns.h"
#include "core/goodput.h"
#include "core/model_fitter.h"
#include "core/speedup_table.h"
#include "sim/engine/event_queue.h"
#include "util/rng.h"
#include "workload/trace_gen.h"

namespace pollux {
namespace {

GoodputModel TypicalModel() {
  ThroughputParams params{0.05, 2e-4, 0.03, 0.002, 0.1, 0.005, 2.0};
  return GoodputModel(params, 1000.0, 128);
}

BatchLimits TypicalLimits() { return BatchLimits{128, 16384, 1024}; }

void BM_GoodputEval(benchmark::State& state) {
  const GoodputModel model = TypicalModel();
  double batch = 512.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.GoodputAt(Placement{8, 2}, batch));
    batch = batch < 8192.0 ? batch + 1.0 : 512.0;
  }
}
BENCHMARK(BM_GoodputEval);

void BM_OptimizeBatchSize(benchmark::State& state) {
  const GoodputModel model = TypicalModel();
  const BatchLimits limits = TypicalLimits();
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.OptimizeBatchSize(Placement{8, 2}, limits));
  }
}
BENCHMARK(BM_OptimizeBatchSize);

// memo=1 measures the steady state PolluxSched sees on autoscaler utility
// probes and unchanged-model rounds: the table is rebuilt for a model whose
// fingerprint is already cached, so every golden-section search is replaced
// by a hash probe.
void BM_SpeedupTableBuild(benchmark::State& state) {
  const GoodputModel model = TypicalModel();
  const BatchLimits limits = TypicalLimits();
  const int max_gpus = static_cast<int>(state.range(0));
  const bool memo = state.range(1) != 0;
  EvalCache cache;
  for (auto _ : state) {
    SpeedupTable table(model, limits, max_gpus, memo ? &cache : nullptr,
                       /*job_id=*/1, /*progress_bucket=*/0);
    benchmark::DoNotOptimize(table);
  }
  state.counters["hit_rate"] = cache.Stats().HitRate();
}
BENCHMARK(BM_SpeedupTableBuild)
    ->ArgNames({"gpus", "memo"})
    ->Args({8, 0})
    ->Args({64, 0})
    ->Args({64, 1});

// One GA scheduling round, parameterized over job count, worker threads, and
// the speedup memoization cache. threads > 1 exercises the ThreadPool path
// (same allocations, see core_genetic_determinism_test); hit_rate reports
// how much of the speedup evaluation the cache absorbed.
void BM_GeneticRound(benchmark::State& state) {
  const int num_jobs = static_cast<int>(state.range(0));
  std::vector<SchedJobInfo> jobs;
  for (int j = 0; j < num_jobs; ++j) {
    SchedJobInfo info;
    info.job_id = static_cast<uint64_t>(j);
    info.speedups = SpeedupTable(TypicalModel(), TypicalLimits(), 16);
    info.max_gpus_cap = 16;
    jobs.push_back(std::move(info));
  }
  GaOptions options;
  options.population_size = 40;
  options.generations = 1;  // Cost per generation.
  options.threads = static_cast<int>(state.range(1));
  options.memoize = state.range(2) != 0;
  GeneticOptimizer ga(ClusterSpec::Homogeneous(16, 4), options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ga.Optimize(jobs));
  }
  state.counters["hit_rate"] = ga.cache_stats().HitRate();
}
BENCHMARK(BM_GeneticRound)
    ->ArgNames({"jobs", "threads", "memo"})
    ->Args({10, 1, 1})
    ->Args({40, 1, 1})
    ->Args({160, 1, 0})
    ->Args({160, 1, 1})
    ->Args({160, 2, 1})
    ->Args({160, 4, 1})
    ->MeasureProcessCPUTime()
    ->UseRealTime();

void BM_ThroughputFit(benchmark::State& state) {
  ThroughputParams truth{0.04, 3e-4, 0.02, 0.001, 0.08, 0.004, 1.8};
  std::vector<ThroughputObservation> observations;
  for (int k : {1, 2, 4, 8, 16}) {
    for (long m : {128L, 256L, 512L, 1024L}) {
      ThroughputObservation obs;
      obs.placement = Placement{k, k > 4 ? 2 : 1};
      obs.batch_size = m;
      obs.iter_time = IterTime(truth, obs.placement, static_cast<double>(m));
      observations.push_back(obs);
    }
  }
  FitOptions options;
  options.max_gpus_seen = 16;
  options.max_nodes_seen = 4;
  options.multi_starts = 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(FitThroughputParams(observations, options));
  }
}
BENCHMARK(BM_ThroughputFit);

void BM_GnsEstimate(benchmark::State& state) {
  Rng rng(7);
  std::vector<std::vector<double>> grads(8, std::vector<double>(1024));
  for (auto& grad : grads) {
    for (double& g : grad) {
      g = rng.Normal(0.0, 1.0);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(EstimateGnsFromReplicas(grads, 1024.0));
  }
}
BENCHMARK(BM_GnsEstimate);

// Event-queue primitives: bulk heap throughput over a random event schedule.
void BM_EventQueuePushPop(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(123);
  std::vector<double> times(static_cast<size_t>(n));
  for (double& t : times) {
    t = rng.Uniform(0.0, 86400.0);
  }
  for (auto _ : state) {
    EventQueue<int> queue;
    for (int i = 0; i < n; ++i) {
      queue.Push(times[static_cast<size_t>(i)], i % 5, i);
    }
    double last = -1.0;
    while (!queue.empty()) {
      last = queue.Pop().time;
    }
    benchmark::DoNotOptimize(last);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueuePushPop)->Arg(1000)->Arg(100000);

// Steady state of the simulator loop: recurring timers pop and immediately
// re-arm, so the queue stays small while churn is constant.
void BM_EventQueueSteadyState(benchmark::State& state) {
  EventQueue<int> queue;
  Rng rng(7);
  for (int i = 0; i < 64; ++i) {
    queue.Push(rng.Uniform(0.0, 60.0), i % 5, i);
  }
  for (auto _ : state) {
    const auto entry = queue.Pop();
    queue.Push(entry.time + rng.Uniform(1.0, 60.0), entry.priority, entry.payload);
    benchmark::DoNotOptimize(queue.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventQueueSteadyState);

// Whole-run engine comparison on a scheduler-light policy, where engine
// overhead (ticking through idle spans vs. integrating across them)
// dominates the wall clock. event: 0 = legacy ticked loop, 1 = event queue.
void BM_SimFifoTrace(benchmark::State& state) {
  BenchSimConfig config;
  config.engine = state.range(0) != 0 ? SimEngine::kEvent : SimEngine::kTicked;
  config.nodes = 4;
  config.gpus_per_node = 4;
  config.jobs = 20;
  config.duration_hours = 1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunBenchPolicy("fifo", config));
  }
}
BENCHMARK(BM_SimFifoTrace)
    ->ArgNames({"event"})
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

void BM_TraceGeneration(benchmark::State& state) {
  TraceOptions options;
  options.num_jobs = 160;
  for (auto _ : state) {
    options.seed += 1;
    benchmark::DoNotOptimize(GenerateTrace(options));
  }
}
BENCHMARK(BM_TraceGeneration);

}  // namespace
}  // namespace pollux

// Hand-rolled BENCHMARK_MAIN(): google-benchmark rejects unknown flags, so
// --metrics-out/--trace-out are peeled off argv before Initialize() and the
// remaining flags are forwarded untouched.
int main(int argc, char** argv) {
  const pollux::ObsFlagValues obs_paths = pollux::ExtractObsFlagsFromArgv(&argc, argv);
  pollux::ObsSession obs(obs_paths.metrics_out, obs_paths.trace_out);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
