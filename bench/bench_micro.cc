// Microbenchmarks (google-benchmark) for the hot paths that bound
// PolluxSched's 60-second scheduling budget: goodput evaluation, batch-size
// optimization, speedup-table construction, genetic-algorithm rounds, and
// online model fitting.

#include <benchmark/benchmark.h>

#include "core/genetic.h"
#include "core/gns.h"
#include "core/goodput.h"
#include "core/model_fitter.h"
#include "core/speedup_table.h"
#include "util/rng.h"
#include "workload/trace_gen.h"

namespace pollux {
namespace {

GoodputModel TypicalModel() {
  ThroughputParams params{0.05, 2e-4, 0.03, 0.002, 0.1, 0.005, 2.0};
  return GoodputModel(params, 1000.0, 128);
}

BatchLimits TypicalLimits() { return BatchLimits{128, 16384, 1024}; }

void BM_GoodputEval(benchmark::State& state) {
  const GoodputModel model = TypicalModel();
  double batch = 512.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.GoodputAt(Placement{8, 2}, batch));
    batch = batch < 8192.0 ? batch + 1.0 : 512.0;
  }
}
BENCHMARK(BM_GoodputEval);

void BM_OptimizeBatchSize(benchmark::State& state) {
  const GoodputModel model = TypicalModel();
  const BatchLimits limits = TypicalLimits();
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.OptimizeBatchSize(Placement{8, 2}, limits));
  }
}
BENCHMARK(BM_OptimizeBatchSize);

void BM_SpeedupTableBuild(benchmark::State& state) {
  const GoodputModel model = TypicalModel();
  const BatchLimits limits = TypicalLimits();
  const int max_gpus = static_cast<int>(state.range(0));
  for (auto _ : state) {
    SpeedupTable table(model, limits, max_gpus);
    benchmark::DoNotOptimize(table);
  }
}
BENCHMARK(BM_SpeedupTableBuild)->Arg(8)->Arg(64);

void BM_GeneticRound(benchmark::State& state) {
  const int num_jobs = static_cast<int>(state.range(0));
  std::vector<SchedJobInfo> jobs;
  for (int j = 0; j < num_jobs; ++j) {
    SchedJobInfo info;
    info.job_id = static_cast<uint64_t>(j);
    info.speedups = SpeedupTable(TypicalModel(), TypicalLimits(), 16);
    info.max_gpus_cap = 16;
    jobs.push_back(std::move(info));
  }
  GaOptions options;
  options.population_size = 40;
  options.generations = 1;  // Cost per generation.
  GeneticOptimizer ga(ClusterSpec::Homogeneous(16, 4), options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ga.Optimize(jobs));
  }
}
BENCHMARK(BM_GeneticRound)->Arg(10)->Arg(40)->Arg(160);

void BM_ThroughputFit(benchmark::State& state) {
  ThroughputParams truth{0.04, 3e-4, 0.02, 0.001, 0.08, 0.004, 1.8};
  std::vector<ThroughputObservation> observations;
  for (int k : {1, 2, 4, 8, 16}) {
    for (long m : {128L, 256L, 512L, 1024L}) {
      ThroughputObservation obs;
      obs.placement = Placement{k, k > 4 ? 2 : 1};
      obs.batch_size = m;
      obs.iter_time = IterTime(truth, obs.placement, static_cast<double>(m));
      observations.push_back(obs);
    }
  }
  FitOptions options;
  options.max_gpus_seen = 16;
  options.max_nodes_seen = 4;
  options.multi_starts = 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(FitThroughputParams(observations, options));
  }
}
BENCHMARK(BM_ThroughputFit);

void BM_GnsEstimate(benchmark::State& state) {
  Rng rng(7);
  std::vector<std::vector<double>> grads(8, std::vector<double>(1024));
  for (auto& grad : grads) {
    for (double& g : grad) {
      g = rng.Normal(0.0, 1.0);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(EstimateGnsFromReplicas(grads, 1024.0));
  }
}
BENCHMARK(BM_GnsEstimate);

void BM_TraceGeneration(benchmark::State& state) {
  TraceOptions options;
  options.num_jobs = 160;
  for (auto _ : state) {
    options.seed += 1;
    benchmark::DoNotOptimize(GenerateTrace(options));
  }
}
BENCHMARK(BM_TraceGeneration);

}  // namespace
}  // namespace pollux

BENCHMARK_MAIN();
