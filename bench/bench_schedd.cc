// Swarm bench/smoke client for pollux_schedd (DESIGN.md §15).
//
// Drives a daemon — external (--socket to a running pollux_schedd) or spawned
// in-process (--spawn) — with `--agents` concurrent simulated agents spread
// over `--tenants` tenant domains, for `--epochs` deterministic scheduling
// rounds. Per epoch every agent pushes a telemetry batch for its job slice,
// then one leader per tenant requests the next round and applies the returned
// sparse decisions to a client-side allocation view.
//
// Determinism + crash tolerance: the whole workload is a pure function of
// --seed, reports are idempotent by content, and RunRound replays hit the
// daemon's cached-decision path, so an epoch that fails mid-way (daemon
// killed, connection lost, NACK storm) is simply retried wholesale. The final
// per-tenant allocation CSVs (--csv-out) are therefore byte-identical between
// an uninterrupted run and one whose daemon was kill -9ed and restarted from
// checkpoints mid-run — CI's schedd job asserts exactly that with cmp.
//
// Observability: client-side request latencies land in the
// schedd.client.{report,round}.seconds histograms and retry/NACK/reconnect
// counters in schedd.client.*; with --spawn the daemon's own schedd.* metrics
// share the registry. p50/p95/p99 are printed and exported via --metrics-out.

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "obs/metrics.h"
#include "service/client.h"
#include "service/daemon.h"
#include "util/flags.h"
#include "util/rng.h"

namespace pollux {
namespace {

using service::RoundDecisions;
using service::ScheddClient;
using service::ScheddClientOptions;
using service::ScheddDaemon;
using service::ScheddOptions;
using service::TenantSetup;

struct SwarmConfig {
  std::string socket_path;
  bool spawn = false;
  int tenants = 2;
  int agents = 8;
  int jobs = 24;       // per tenant
  int nodes = 8;       // per tenant
  int gpus_per_node = 4;
  int epochs = 5;
  int ga_pop = 20;
  int ga_gens = 10;
  uint64_t seed = 1;
  SchedMode sched_mode = SchedMode::kIncremental;
  bool queue_admission = false;
  double request_timeout = 60.0;
  int epoch_attempts = 20;
  // Wall-clock pause between epochs. Decisions are unaffected; it widens the
  // window for CI's kill -9 mid-run test to land deterministically.
  int epoch_sleep_ms = 0;
  std::string csv_out;
  // Spawned-daemon knobs.
  int shards = 2;
  int queue_cap = 256;
  std::string checkpoint_dir;
  int checkpoint_every = 1;
};

// The deterministic workload: everything below is a pure function of the
// config seed, so two bench runs (or one interrupted and retried) present
// byte-identical inputs to the daemon.
double JobPhi(const SwarmConfig& config, uint64_t tenant_id, uint64_t job_id) {
  Rng rng(config.seed * 1000003 + tenant_id * 1009 + job_id);
  return rng.Uniform(500.0, 2000.0);
}

AgentReport MakeAgent(const SwarmConfig& config, uint64_t tenant_id, uint64_t job_id) {
  ThroughputParams params;
  params.alpha_grad = 0.05;
  params.beta_grad = 2e-4;
  params.alpha_sync_local = 0.03;
  params.beta_sync_local = 0.002;
  params.alpha_sync_node = 0.1;
  params.beta_sync_node = 0.005;
  params.gamma = 2.0;
  AgentReport agent;
  agent.job_id = job_id;
  agent.model = GoodputModel(params, JobPhi(config, tenant_id, job_id), 128);
  agent.limits.min_batch = 128;
  agent.limits.max_batch_total = 16384;
  agent.limits.max_batch_per_gpu = 1024;
  agent.max_gpus_cap = 8;
  return agent;
}

SchedJobReport MakeEpochReport(const SwarmConfig& config, uint64_t tenant_id,
                               uint64_t job_id, int epoch) {
  SchedJobReport report;
  report.agent = MakeAgent(config, tenant_id, job_id);
  // GPU time grows with epochs so job weights (Eqn. 16) evolve over the run.
  report.gpu_time = JobPhi(config, tenant_id, job_id) * static_cast<double>(epoch) * 30.0;
  report.report_age = 0.0;
  report.seq = static_cast<uint64_t>(epoch) + 1;
  return report;
}

TenantSetup MakeSetup(const SwarmConfig& config, uint64_t tenant_id) {
  TenantSetup setup;
  setup.tenant_id = tenant_id;
  setup.cluster.gpus_per_node.assign(static_cast<size_t>(config.nodes), config.gpus_per_node);
  setup.sched.ga.population_size = config.ga_pop;
  setup.sched.ga.generations = config.ga_gens;
  setup.sched.ga.seed = config.seed + tenant_id;
  setup.sched.mode = config.sched_mode;
  setup.sched.queue_admission = config.queue_admission;
  return setup;
}

struct ClientMetrics {
  obs::Histogram* report_seconds;
  obs::Histogram* round_seconds;
  obs::Counter* retries;
  obs::Counter* nacks;
  obs::Counter* reconnects;
  obs::Counter* timeouts;
  obs::Counter* epoch_retries;
  obs::Counter* rounds_ok;
  obs::Gauge* utility_sum;
};

ClientMetrics& Metrics() {
  static ClientMetrics metrics = [] {
    auto& registry = obs::MetricsRegistry::Global();
    ClientMetrics m;
    m.report_seconds = registry.GetHistogram("schedd.client.report.seconds");
    m.round_seconds = registry.GetHistogram("schedd.client.round.seconds");
    m.retries = registry.GetCounter("schedd.client.retries");
    m.nacks = registry.GetCounter("schedd.client.nacks");
    m.reconnects = registry.GetCounter("schedd.client.reconnects");
    m.timeouts = registry.GetCounter("schedd.client.timeouts");
    m.epoch_retries = registry.GetCounter("schedd.client.epoch_retries");
    m.rounds_ok = registry.GetCounter("schedd.bench.rounds_ok");
    m.utility_sum = registry.GetGauge("schedd.bench.utility_sum");
    return m;
  }();
  return metrics;
}

double NowSeconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// One simulated agent: a persistent client connection owning a slice of one
// tenant's jobs.
struct Agent {
  uint64_t tenant_id = 0;
  std::vector<uint64_t> job_ids;
  std::unique_ptr<ScheddClient> client;
};

ScheddClientOptions ClientOptions(const SwarmConfig& config, uint64_t jitter_seed) {
  ScheddClientOptions options;
  options.socket_path = config.socket_path;
  options.request_timeout = config.request_timeout;
  options.jitter_seed = jitter_seed;
  return options;
}

bool WriteTenantCsv(const std::string& dir, uint64_t tenant_id,
                    const std::map<uint64_t, std::vector<int>>& allocations) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  const std::string path = dir + "/tenant-" + std::to_string(tenant_id) + ".csv";
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << "job_id,total_gpus,allocation\n";
  for (const auto& [job_id, row] : allocations) {
    out << job_id << ',' << std::accumulate(row.begin(), row.end(), 0) << ',';
    for (size_t n = 0; n < row.size(); ++n) {
      if (n > 0) out << '|';
      out << row[n];
    }
    out << '\n';
  }
  return static_cast<bool>(out);
}

int RunSwarm(const SwarmConfig& config) {
  // Leader connection: tenant creation, job submission, rounds, stats.
  ScheddClient leader(ClientOptions(config, config.seed));
  std::string error;

  for (int t = 0; t < config.tenants; ++t) {
    const uint64_t tenant_id = static_cast<uint64_t>(t) + 1;
    if (!leader.CreateTenant(MakeSetup(config, tenant_id), &error)) {
      fprintf(stderr, "bench_schedd: create tenant %llu: %s\n",
              static_cast<unsigned long long>(tenant_id), error.c_str());
      return kExitRuntime;
    }
    for (int j = 0; j < config.jobs; ++j) {
      const uint64_t job_id = static_cast<uint64_t>(j) + 1;
      if (!leader.SubmitJob(tenant_id, MakeAgent(config, tenant_id, job_id), 0.0, &error)) {
        fprintf(stderr, "bench_schedd: submit job %llu/%llu: %s\n",
                static_cast<unsigned long long>(tenant_id),
                static_cast<unsigned long long>(job_id), error.c_str());
        return kExitRuntime;
      }
    }
  }

  // Partition jobs across agents: agent k serves tenant k % tenants and a
  // contiguous slice of its jobs.
  std::vector<Agent> agents(static_cast<size_t>(config.agents));
  for (int a = 0; a < config.agents; ++a) {
    Agent& agent = agents[static_cast<size_t>(a)];
    agent.tenant_id = static_cast<uint64_t>(a % config.tenants) + 1;
    agent.client =
        std::make_unique<ScheddClient>(ClientOptions(config, config.seed + 100 + a));
    const int peers = (config.agents + config.tenants - 1) / config.tenants;
    const int slot = a / config.tenants;
    for (int j = slot; j < config.jobs; j += peers) {
      agent.job_ids.push_back(static_cast<uint64_t>(j) + 1);
    }
  }

  // Client-side allocation views, updated from each round's sparse decisions.
  std::map<uint64_t, std::map<uint64_t, std::vector<int>>> allocations;
  std::map<uint64_t, double> last_utility;

  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    bool epoch_ok = false;
    for (int attempt = 0; attempt < config.epoch_attempts && !epoch_ok; ++attempt) {
      if (attempt > 0) Metrics().epoch_retries->Add();
      // Phase 1: all agents push this epoch's telemetry concurrently.
      std::atomic<int> failed{0};
      std::vector<std::thread> threads;
      threads.reserve(agents.size());
      for (Agent& agent : agents) {
        threads.emplace_back([&config, &agent, epoch, &failed] {
          std::vector<SchedJobReport> batch;
          batch.reserve(agent.job_ids.size());
          for (uint64_t job_id : agent.job_ids) {
            batch.push_back(MakeEpochReport(config, agent.tenant_id, job_id, epoch));
          }
          const double start = NowSeconds();
          std::string report_error;
          const bool ok = agent.client->Report(agent.tenant_id, batch, nullptr, &report_error);
          Metrics().report_seconds->Record(NowSeconds() - start);
          if (!ok) failed.fetch_add(1, std::memory_order_relaxed);
        });
      }
      for (auto& thread : threads) thread.join();
      if (failed.load() != 0) continue;  // retry the whole epoch

      // Phase 2: one round per tenant; replays of an already-executed round
      // come back flagged kDecisionCached with identical rows.
      bool rounds_ok = true;
      for (int t = 0; t < config.tenants && rounds_ok; ++t) {
        const uint64_t tenant_id = static_cast<uint64_t>(t) + 1;
        RoundDecisions decisions;
        const double start = NowSeconds();
        if (!leader.RunRound(tenant_id, static_cast<uint64_t>(epoch), &decisions, &error)) {
          fprintf(stderr, "bench_schedd: round %d tenant %llu attempt %d: %s\n", epoch,
                  static_cast<unsigned long long>(tenant_id), attempt, error.c_str());
          rounds_ok = false;
          break;
        }
        Metrics().round_seconds->Record(NowSeconds() - start);
        Metrics().rounds_ok->Add();
        for (const auto& [job_id, row] : decisions.rows) {
          allocations[tenant_id][job_id] = row;
        }
        last_utility[tenant_id] = decisions.utility;
      }
      epoch_ok = rounds_ok;
    }
    if (!epoch_ok) {
      fprintf(stderr, "bench_schedd: epoch %d failed after %d attempts\n", epoch,
              config.epoch_attempts);
      return kExitRuntime;
    }
    if (config.epoch_sleep_ms > 0 && epoch + 1 < config.epochs) {
      std::this_thread::sleep_for(std::chrono::milliseconds(config.epoch_sleep_ms));
    }
  }

  // Roll the per-agent client counters into the registry.
  {
    service::ScheddClientStats total = leader.stats();
    for (const Agent& agent : agents) {
      const auto& stats = agent.client->stats();
      total.retries += stats.retries;
      total.nacks += stats.nacks;
      total.reconnects += stats.reconnects;
      total.timeouts += stats.timeouts;
    }
    Metrics().retries->Add(total.retries);
    Metrics().nacks->Add(total.nacks);
    Metrics().reconnects->Add(total.reconnects);
    Metrics().timeouts->Add(total.timeouts);
  }

  double utility_sum = 0.0;
  for (const auto& [tenant_id, utility] : last_utility) utility_sum += utility;
  Metrics().utility_sum->Set(utility_sum);

  if (!config.csv_out.empty()) {
    for (const auto& [tenant_id, rows] : allocations) {
      if (!WriteTenantCsv(config.csv_out, tenant_id, rows)) {
        fprintf(stderr, "bench_schedd: cannot write csv for tenant %llu\n",
                static_cast<unsigned long long>(tenant_id));
        return kExitRuntime;
      }
    }
  }

  // Daemon-side accounting via the stats RPC (works for external daemons too).
  std::map<std::string, uint64_t> daemon_stats;
  if (leader.Stats(&daemon_stats, &error)) {
    for (const auto& [key, value] : daemon_stats) {
      printf("schedd stat %s=%llu\n", key.c_str(), static_cast<unsigned long long>(value));
    }
  }
  printf("swarm tenants=%d agents=%d jobs_per_tenant=%d epochs=%d utility_sum=%.6f\n",
         config.tenants, config.agents, config.jobs, config.epochs, utility_sum);
  printf("latency report_ms p50=%.3f p95=%.3f p99=%.3f\n",
         Metrics().report_seconds->Quantile(0.5) * 1e3,
         Metrics().report_seconds->Quantile(0.95) * 1e3,
         Metrics().report_seconds->Quantile(0.99) * 1e3);
  printf("latency round_ms p50=%.3f p95=%.3f p99=%.3f\n",
         Metrics().round_seconds->Quantile(0.5) * 1e3,
         Metrics().round_seconds->Quantile(0.95) * 1e3,
         Metrics().round_seconds->Quantile(0.99) * 1e3);
  return kExitOk;
}

}  // namespace
}  // namespace pollux

int main(int argc, char** argv) {
  using namespace pollux;

  FlagParser flags;
  flags.DefineString("socket", "", "Daemon socket path (required)");
  flags.DefineBool("spawn", false, "Spawn an in-process daemon on --socket");
  flags.DefineInt("tenants", 2, "Tenant domains");
  flags.DefineInt("agents", 8, "Concurrent simulated agent connections");
  flags.DefineInt("jobs", 24, "Jobs per tenant");
  flags.DefineInt("nodes", 8, "Nodes per tenant cluster");
  flags.DefineInt("gpus_per_node", 4, "GPUs per node");
  flags.DefineInt("epochs", 5, "Scheduling rounds per tenant");
  flags.DefineInt("ga_pop", 20, "GA population per tenant scheduler");
  flags.DefineInt("ga_gens", 10, "GA generations per tenant scheduler");
  flags.DefineInt("seed", 1, "Workload seed (the whole swarm is a function of it)");
  flags.DefineString("sched-mode", "incremental",
                     "Tenant scheduler mode: exact | incremental | first-match");
  flags.DefineBool("queue-admission", false,
                   "Enable the incremental-mode queued-job admission pre-filter");
  flags.DefineDouble("request-timeout", 60.0,
                     "Per-request deadline, seconds (covers retry/backoff)");
  flags.DefineInt("epoch-attempts", 20, "Whole-epoch retries before giving up");
  flags.DefineInt("epoch-sleep-ms", 0,
                  "Wall-clock pause between epochs (decisions unaffected; widens the "
                  "kill-recovery test window)");
  flags.DefineString("csv-out", "", "Directory for per-tenant final allocation CSVs");
  flags.DefineInt("shards", 2, "Spawned daemon: tenant worker threads");
  flags.DefineInt("queue-cap", 256, "Spawned daemon: per-tenant queue cap before shedding");
  flags.DefineString("checkpoint-dir", "", "Spawned daemon: checkpoint directory");
  flags.DefineInt("checkpoint-every", 1, "Spawned daemon: checkpoint every N rounds");
  AddObsFlags(flags);
  if (!flags.Parse(argc, argv)) {
    return flags.help_requested() ? kExitOk : kExitUsage;
  }

  SwarmConfig config;
  config.socket_path = flags.GetString("socket");
  config.spawn = flags.GetBool("spawn");
  config.tenants = static_cast<int>(flags.GetInt("tenants"));
  config.agents = static_cast<int>(flags.GetInt("agents"));
  config.jobs = static_cast<int>(flags.GetInt("jobs"));
  config.nodes = static_cast<int>(flags.GetInt("nodes"));
  config.gpus_per_node = static_cast<int>(flags.GetInt("gpus_per_node"));
  config.epochs = static_cast<int>(flags.GetInt("epochs"));
  config.ga_pop = static_cast<int>(flags.GetInt("ga_pop"));
  config.ga_gens = static_cast<int>(flags.GetInt("ga_gens"));
  config.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  config.queue_admission = flags.GetBool("queue-admission");
  config.request_timeout = flags.GetDouble("request-timeout");
  config.epoch_attempts = static_cast<int>(flags.GetInt("epoch-attempts"));
  config.epoch_sleep_ms = static_cast<int>(flags.GetInt("epoch-sleep-ms"));
  config.csv_out = flags.GetString("csv-out");
  config.shards = static_cast<int>(flags.GetInt("shards"));
  config.queue_cap = static_cast<int>(flags.GetInt("queue-cap"));
  config.checkpoint_dir = flags.GetString("checkpoint-dir");
  config.checkpoint_every = static_cast<int>(flags.GetInt("checkpoint-every"));
  if (config.socket_path.empty()) {
    fprintf(stderr, "bench_schedd: --socket is required\n");
    return kExitUsage;
  }
  if (!SchedModeByName(flags.GetString("sched-mode"), &config.sched_mode)) {
    fprintf(stderr, "bench_schedd: unknown --sched-mode '%s'\n",
            flags.GetString("sched-mode").c_str());
    return kExitUsage;
  }
  if (config.tenants < 1 || config.agents < 1 || config.jobs < 1 || config.nodes < 1 ||
      config.gpus_per_node < 1 || config.epochs < 1) {
    fprintf(stderr, "bench_schedd: counts must be positive\n");
    return kExitUsage;
  }

  ObsSession obs(flags);
  // The printed latency percentiles come from the registry's histograms, so
  // collection is always on here (export still requires --metrics-out).
  obs::MetricsRegistry::Global().SetEnabled(true);

  std::unique_ptr<service::ScheddDaemon> daemon;
  if (config.spawn) {
    service::ScheddOptions options;
    options.socket_path = config.socket_path;
    options.shards = config.shards;
    options.ingest_queue_cap = static_cast<size_t>(config.queue_cap);
    options.checkpoint_dir = config.checkpoint_dir;
    options.checkpoint_every_rounds = config.checkpoint_every;
    daemon = std::make_unique<service::ScheddDaemon>(options);
    std::string error;
    if (!daemon->Start(&error)) {
      fprintf(stderr, "bench_schedd: spawn daemon: %s\n", error.c_str());
      return kExitRuntime;
    }
  }

  const int exit_code = RunSwarm(config);

  if (daemon) {
    daemon->RequestDrain();
    daemon->Wait();
  }
  return exit_code;
}
