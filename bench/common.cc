#include "bench/common.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "baselines/fifo.h"
#include "baselines/fixed_batch_policy.h"
#include "baselines/optimus.h"
#include "baselines/tiresias.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/checkpoint.h"
#include "sim/pollux_policy.h"
#include "workload/trace_io.h"

namespace pollux {

void AddCommonFlags(FlagParser& flags) {
  flags.DefineString("engine", "event",
                     "simulation engine: event (deterministic event queue) | "
                     "ticked (legacy fixed-tick loop)");
  flags.DefineInt("nodes", 16, "number of cluster nodes");
  flags.DefineInt("gpus_per_node", 4, "GPUs per node");
  flags.DefineString("topology", "",
                     "rack topology \"RxN\" (R racks of N nodes, overrides --nodes); "
                     "empty keeps the flat single-tier cluster model");
  flags.DefineString("gpu-mix", "",
                     "GPU generation mix \"type:frac,...\" over nodes (types: t4, p100, "
                     "v100, a100; fractions sum to 1), e.g. \"a100:0.25,t4:0.75\"; "
                     "empty keeps an all-t4 (baseline) cluster");
  flags.DefineDouble("rack-link-factor", 2.5,
                     "multiplier (>= 1) on the node-tier sync cost for gangs that "
                     "span racks (used with --topology)");
  flags.DefineBool("topology-blind", false,
                   "hide the topology annotations from the scheduler (ground-truth "
                   "job speeds stay topology-aware); the bench_topology A/B baseline");
  flags.DefineDouble("sync-heavy", -1.0,
                     "fraction of trace jobs redrawn as sync-heavy multi-node gangs "
                     "(negative keeps the standard Philly-style trace)");
  flags.DefineInt("jobs", 160, "job submissions in the trace window");
  flags.DefineDouble("duration_hours", 8.0, "trace window length in hours");
  flags.DefineDouble("load", 1.0, "relative load factor (scales job count)");
  flags.DefineDouble("user_frac", 0.0, "fraction of user-configured (non-tuned) jobs");
  flags.DefineDouble("interference", 0.0, "network interference slowdown in [0,1)");
  flags.DefineBool("avoidance", true, "PolluxSched interference avoidance constraint");
  flags.DefineDouble("weight_lambda", 0.5, "job weight decay lambda (Eqn. 16)");
  flags.DefineInt("ga_pop", 40, "genetic algorithm population size");
  flags.DefineInt("ga_gens", 25, "genetic algorithm generations per round");
  flags.DefineInt("threads", 1, "scheduler worker threads (0 = all hardware threads)");
  flags.DefineDouble("sched_interval", 60.0, "scheduling interval in seconds");
  flags.DefineDouble("report_interval", 30.0, "agent report interval in seconds");
  flags.DefineString("sched-mode", "exact",
                     "scheduler quality/speed ladder: exact (paper behavior) | "
                     "incremental (re-optimize only dirty jobs) | "
                     "first-match (O(jobs) greedy placement)");
  flags.DefineBool("queue-admission", false,
                   "incremental mode: admit queued jobs to GA shards only up to "
                   "the round's free GPU capacity (backlogged jobs defer instead "
                   "of inflating dirty-shard counts)");
  flags.DefineDouble("restart_penalty", 0.25, "RESTART_PENALTY in the fitness function");
  flags.DefineDouble("tick", 1.0, "simulation clock step in seconds");
  flags.DefineDouble("obs_noise", 0.05, "lognormal sigma of profiled iteration times");
  flags.DefineDouble("gns_noise", 0.10, "lognormal sigma of gradient moment samples");
  flags.DefineInt("seed", 1, "base random seed");
  flags.DefineString("fault-profile", "none",
                     "fault injection preset: none | light | heavy "
                     "(individual fault flags override the preset)");
  flags.DefineDouble("mtbf-node", -1.0,
                     "mean time between node failures in seconds (0 disables crashes; "
                     "negative keeps the profile value)");
  flags.DefineDouble("repair-time", -1.0,
                     "mean node repair time in seconds (negative keeps the profile value)");
  flags.DefineDouble("straggler-frac", -1.0,
                     "fraction of nodes that are persistent stragglers "
                     "(negative keeps the profile value)");
  flags.DefineDouble("straggler-slowdown", -1.0,
                     "iteration-time multiplier on straggler nodes "
                     "(negative keeps the profile value)");
  flags.DefineDouble("report-drop-rate", -1.0,
                     "probability each 30s agent report is lost "
                     "(negative keeps the profile value)");
  flags.DefineDouble("restart-fail-rate", -1.0,
                     "probability a checkpoint-restart attempt fails "
                     "(negative keeps the profile value)");
  flags.DefineDouble("mtbf-sched", -1.0,
                     "mean time between scheduler-process crashes in seconds "
                     "(0 disables; negative keeps the profile value)");
  flags.DefineString("sched-recovery", "warm",
                     "scheduler crash recovery: warm (lossless control-plane "
                     "snapshot reload) | cold (agents refit, queues rebuilt)");
  flags.DefineString("net-profile", "none",
                     "control-plane network model preset: none | lan | flaky | "
                     "partitioned (individual --net-* flags override the preset)");
  flags.DefineDouble("net-latency", -1.0,
                     "base one-way control message latency in seconds "
                     "(negative keeps the profile value)");
  flags.DefineDouble("net-jitter", -1.0,
                     "mean exponential jitter added to each delivery in seconds "
                     "(negative keeps the profile value)");
  flags.DefineDouble("net-loss", -1.0,
                     "probability one control message send attempt is lost "
                     "(negative keeps the profile value)");
  flags.DefineDouble("net-burst-rate", -1.0,
                     "probability a send trips the channel into a loss burst "
                     "(negative keeps the profile value)");
  flags.DefineDouble("net-burst-duration", -1.0,
                     "mean loss burst length in seconds "
                     "(negative keeps the profile value)");
  flags.DefineDouble("net-dup", -1.0,
                     "probability a delivered message is duplicated "
                     "(negative keeps the profile value)");
  flags.DefineDouble("net-reorder", -1.0,
                     "probability a delivery is delayed enough to reorder "
                     "(negative keeps the profile value)");
  flags.DefineDouble("net-reorder-extra", -1.0,
                     "max extra reorder delay in seconds "
                     "(negative keeps the profile value)");
  flags.DefineDouble("net-mtbf-partition", -1.0,
                     "mean time between single-node control partitions in seconds "
                     "(0 disables; negative keeps the profile value)");
  flags.DefineDouble("net-partition-duration", -1.0,
                     "mean single-node partition duration in seconds "
                     "(negative keeps the profile value)");
  flags.DefineDouble("net-mtbf-rack-partition", -1.0,
                     "mean time between rack-scoped control partitions in seconds "
                     "(0 disables; negative keeps the profile value)");
  flags.DefineDouble("net-rack-partition-duration", -1.0,
                     "mean rack partition duration in seconds "
                     "(negative keeps the profile value)");
  flags.DefineInt("net-rack-size", -1,
                  "nodes per rack for rack-scoped partitions "
                  "(negative keeps the profile value)");
  flags.DefineInt("net-lease-intervals", -1,
                  "report intervals without a heartbeat before a node's capacity "
                  "is masked (negative keeps the profile value)");
  flags.DefineDouble("net-lease-grace", -1.0,
                     "seconds a job with an expired report lease is frozen before "
                     "eviction (negative keeps the profile value)");
  flags.DefineDouble("net-degraded-coverage", -1.0,
                     "fresh-report coverage below which the scheduler freezes warm "
                     "allocations for the round (negative keeps the profile value)");
  flags.DefineBool("net-naive-masking", false,
                   "baseline liveness: instantly mask failed capacity and reclaim "
                   "stale jobs with no lease, grace, or degraded rounds");
  flags.DefineDouble("checkpoint-every", 0.0,
                     "write a crash-consistent state snapshot every N sim-seconds "
                     "(0 disables; requires --checkpoint-dir)");
  flags.DefineString("checkpoint-dir", "",
                     "directory for state snapshots (required with --checkpoint-every)");
  flags.DefineDouble("halt-after", 0.0,
                     "stop after the first snapshot at or past this sim time "
                     "(0 = run to completion; emulates a crash for resume testing)");
  flags.DefineBool("check-invariants", false,
                   "verify simulator invariants every tick (abort on violation)");
  flags.DefineDouble("sched-budget", 0.0,
                     "wall-clock budget per Pollux scheduling round in seconds "
                     "(0 = unlimited; overruns fall back to the projected allocation)");
  AddObsFlags(flags);
}

void AddObsFlags(FlagParser& flags) {
  flags.DefineString("metrics-out", "",
                     "write the metrics registry as JSON to this file on exit "
                     "(empty disables metrics collection entirely)");
  flags.DefineString("trace-out", "",
                     "write a Chrome/Perfetto trace-event JSON to this file on exit "
                     "(empty disables trace recording entirely)");
}

ObsFlagValues ExtractObsFlagsFromArgv(int* argc, char** argv) {
  ObsFlagValues values;
  int kept = 0;
  for (int i = 0; i < *argc; ++i) {
    char* arg = argv[i];
    if (std::strncmp(arg, "--metrics-out=", 14) == 0) {
      values.metrics_out = arg + 14;
    } else if (std::strncmp(arg, "--trace-out=", 12) == 0) {
      values.trace_out = arg + 12;
    } else {
      argv[kept++] = arg;
    }
  }
  *argc = kept;
  return values;
}

ObsSession::ObsSession(std::string metrics_out, std::string trace_out)
    : metrics_out_(std::move(metrics_out)), trace_out_(std::move(trace_out)) {
  if (!metrics_out_.empty()) {
    obs::MetricsRegistry::Global().SetEnabled(true);
  }
  if (!trace_out_.empty()) {
    obs::TraceRecorder::Global().SetEnabled(true);
  }
}

ObsSession::ObsSession(const FlagParser& flags)
    : ObsSession(flags.GetString("metrics-out"), flags.GetString("trace-out")) {}

ObsSession::~ObsSession() {
  if (!metrics_out_.empty()) {
    std::ofstream out(metrics_out_);
    if (out) {
      obs::MetricsRegistry::Global().WriteJson(out);
      std::fprintf(stderr, "wrote metrics to %s\n", metrics_out_.c_str());
    } else {
      std::fprintf(stderr, "cannot open metrics output file %s\n", metrics_out_.c_str());
    }
  }
  if (!trace_out_.empty()) {
    obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
    std::ofstream out(trace_out_);
    if (out) {
      recorder.WriteJson(out);
      std::fprintf(stderr, "wrote trace (%zu events%s) to %s\n", recorder.Snapshot().size(),
                   recorder.dropped() > 0 ? ", buffer capped" : "", trace_out_.c_str());
    } else {
      std::fprintf(stderr, "cannot open trace output file %s\n", trace_out_.c_str());
    }
  }
}

BenchSimConfig ConfigFromFlags(const FlagParser& flags) {
  BenchSimConfig config;
  if (!SimEngineByName(flags.GetString("engine"), &config.engine)) {
    std::fprintf(stderr, "unknown --engine \"%s\", using \"%s\"\n",
                 flags.GetString("engine").c_str(), SimEngineName(config.engine));
  }
  config.nodes = static_cast<int>(flags.GetInt("nodes"));
  config.gpus_per_node = static_cast<int>(flags.GetInt("gpus_per_node"));
  config.jobs = static_cast<int>(flags.GetInt("jobs"));
  config.duration_hours = flags.GetDouble("duration_hours");
  config.load = flags.GetDouble("load");
  config.user_configured_fraction = flags.GetDouble("user_frac");
  config.interference_slowdown = flags.GetDouble("interference");
  config.interference_avoidance = flags.GetBool("avoidance");
  config.weight_lambda = flags.GetDouble("weight_lambda");
  config.ga_population = static_cast<int>(flags.GetInt("ga_pop"));
  config.ga_generations = static_cast<int>(flags.GetInt("ga_gens"));
  config.threads = static_cast<int>(flags.GetInt("threads"));
  config.sched_interval = flags.GetDouble("sched_interval");
  config.report_interval = flags.GetDouble("report_interval");
  if (!SchedModeByName(flags.GetString("sched-mode"), &config.sched_mode)) {
    std::fprintf(stderr, "unknown --sched-mode \"%s\", using \"%s\"\n",
                 flags.GetString("sched-mode").c_str(), SchedModeName(config.sched_mode));
  }
  config.queue_admission = flags.GetBool("queue-admission");
  config.restart_penalty = flags.GetDouble("restart_penalty");
  config.tick = flags.GetDouble("tick");
  config.observation_noise = flags.GetDouble("obs_noise");
  config.gns_noise = flags.GetDouble("gns_noise");
  config.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  if (!FaultProfileByName(flags.GetString("fault-profile"), &config.faults)) {
    std::fprintf(stderr, "unknown --fault-profile \"%s\", using \"none\"\n",
                 flags.GetString("fault-profile").c_str());
  }
  if (flags.GetDouble("mtbf-node") >= 0.0) {
    config.faults.mtbf_node = flags.GetDouble("mtbf-node");
  }
  if (flags.GetDouble("repair-time") >= 0.0) {
    config.faults.repair_time = flags.GetDouble("repair-time");
  }
  if (flags.GetDouble("straggler-frac") >= 0.0) {
    config.faults.straggler_frac = flags.GetDouble("straggler-frac");
  }
  if (flags.GetDouble("straggler-slowdown") >= 0.0) {
    config.faults.straggler_slowdown = flags.GetDouble("straggler-slowdown");
  }
  if (flags.GetDouble("report-drop-rate") >= 0.0) {
    config.faults.report_drop_rate = flags.GetDouble("report-drop-rate");
  }
  if (flags.GetDouble("restart-fail-rate") >= 0.0) {
    config.faults.restart_fail_rate = flags.GetDouble("restart-fail-rate");
  }
  if (flags.GetDouble("mtbf-sched") >= 0.0) {
    config.faults.mtbf_sched = flags.GetDouble("mtbf-sched");
  }
  if (!SchedRecoveryByName(flags.GetString("sched-recovery"), &config.faults.sched_recovery)) {
    std::fprintf(stderr, "unknown --sched-recovery \"%s\", using \"%s\"\n",
                 flags.GetString("sched-recovery").c_str(),
                 SchedRecoveryName(config.faults.sched_recovery));
  }
  if (!NetProfileByName(flags.GetString("net-profile"), &config.net)) {
    std::fprintf(stderr, "unknown --net-profile \"%s\", using \"none\"\n",
                 flags.GetString("net-profile").c_str());
  }
  if (flags.GetDouble("net-latency") >= 0.0) {
    config.net.latency = flags.GetDouble("net-latency");
  }
  if (flags.GetDouble("net-jitter") >= 0.0) {
    config.net.jitter = flags.GetDouble("net-jitter");
  }
  if (flags.GetDouble("net-loss") >= 0.0) {
    config.net.loss_rate = flags.GetDouble("net-loss");
  }
  if (flags.GetDouble("net-burst-rate") >= 0.0) {
    config.net.burst_rate = flags.GetDouble("net-burst-rate");
  }
  if (flags.GetDouble("net-burst-duration") >= 0.0) {
    config.net.burst_duration = flags.GetDouble("net-burst-duration");
  }
  if (flags.GetDouble("net-dup") >= 0.0) {
    config.net.dup_rate = flags.GetDouble("net-dup");
  }
  if (flags.GetDouble("net-reorder") >= 0.0) {
    config.net.reorder_rate = flags.GetDouble("net-reorder");
  }
  if (flags.GetDouble("net-reorder-extra") >= 0.0) {
    config.net.reorder_extra = flags.GetDouble("net-reorder-extra");
  }
  if (flags.GetDouble("net-mtbf-partition") >= 0.0) {
    config.net.mtbf_partition = flags.GetDouble("net-mtbf-partition");
  }
  if (flags.GetDouble("net-partition-duration") >= 0.0) {
    config.net.partition_duration = flags.GetDouble("net-partition-duration");
  }
  if (flags.GetDouble("net-mtbf-rack-partition") >= 0.0) {
    config.net.mtbf_rack_partition = flags.GetDouble("net-mtbf-rack-partition");
  }
  if (flags.GetDouble("net-rack-partition-duration") >= 0.0) {
    config.net.rack_partition_duration = flags.GetDouble("net-rack-partition-duration");
  }
  if (flags.GetInt("net-rack-size") >= 0) {
    config.net.rack_size = static_cast<int>(flags.GetInt("net-rack-size"));
  }
  if (flags.GetInt("net-lease-intervals") >= 0) {
    config.net.lease_intervals = static_cast<int>(flags.GetInt("net-lease-intervals"));
  }
  if (flags.GetDouble("net-lease-grace") >= 0.0) {
    config.net.lease_grace = flags.GetDouble("net-lease-grace");
  }
  if (flags.GetDouble("net-degraded-coverage") >= 0.0) {
    config.net.degraded_coverage = flags.GetDouble("net-degraded-coverage");
  }
  if (flags.GetBool("net-naive-masking")) {
    config.net.naive_masking = true;
  }
  config.check_invariants = flags.GetBool("check-invariants");
  config.round_time_budget = flags.GetDouble("sched-budget");
  config.checkpoint_every = flags.GetDouble("checkpoint-every");
  config.checkpoint_dir = flags.GetString("checkpoint-dir");
  config.halt_after_checkpoint = flags.GetDouble("halt-after");

  // Cluster-shape validation: malformed shapes are usage errors (exit 2),
  // not runs that limp along with a degenerate cluster.
  if (config.gpus_per_node <= 0) {
    std::fprintf(stderr, "--gpus_per_node must be positive, got %d\n", config.gpus_per_node);
    std::exit(kExitUsage);
  }
  const std::string topology = flags.GetString("topology");
  const std::string gpu_mix = flags.GetString("gpu-mix");
  std::string topo_error;
  TopologySpec topo_spec;
  if (!topology.empty()) {
    if (!ParseTopology(topology, config.gpus_per_node, &topo_spec, &topo_error)) {
      std::fprintf(stderr, "%s\n", topo_error.c_str());
      std::exit(kExitUsage);
    }
    config.racks = topo_spec.num_racks;
    config.nodes = topo_spec.NumNodes();  // --topology overrides --nodes.
  }
  if (config.nodes <= 0) {
    std::fprintf(stderr, "--nodes must be positive, got %d\n", config.nodes);
    std::exit(kExitUsage);
  }
  config.rack_link_factor = flags.GetDouble("rack-link-factor");
  if (config.rack_link_factor < 1.0) {
    std::fprintf(stderr, "--rack-link-factor must be >= 1, got %g\n", config.rack_link_factor);
    std::exit(kExitUsage);
  }
  if (!gpu_mix.empty()) {
    // Validate the mix against the final node count (a mix without --topology
    // describes a heterogeneous single-rack cluster).
    TopologySpec mix_spec = topo_spec;
    if (topology.empty()) {
      mix_spec = TopologySpec::FlatHomogeneous(config.nodes, config.gpus_per_node);
    }
    if (!ParseGpuMix(gpu_mix, &mix_spec, &topo_error)) {
      std::fprintf(stderr, "%s\n", topo_error.c_str());
      std::exit(kExitUsage);
    }
    config.gpu_mix = gpu_mix;
  }
  config.topology_blind = flags.GetBool("topology-blind");
  config.sync_heavy_fraction = flags.GetDouble("sync-heavy");
  if (config.sync_heavy_fraction > 1.0) {
    std::fprintf(stderr, "--sync-heavy must be <= 1, got %g\n", config.sync_heavy_fraction);
    std::exit(kExitUsage);
  }
  return config;
}

ClusterSpec ClusterFromBenchConfig(const BenchSimConfig& config) {
  if (!config.TopologyActive()) {
    return ClusterSpec::Homogeneous(config.nodes, config.gpus_per_node);
  }
  TopologySpec spec;
  spec.num_racks = std::max(config.racks, 1);
  spec.nodes_per_rack = std::max(config.nodes / spec.num_racks, 1);
  spec.gpus_per_node = config.gpus_per_node;
  spec.rack_link_factor = config.rack_link_factor;
  if (!config.gpu_mix.empty()) {
    std::string error;
    if (!ParseGpuMix(config.gpu_mix, &spec, &error)) {
      // Pre-validated by ConfigFromFlags; a decoded snapshot config can still
      // carry garbage, which must not silently become an all-t4 cluster.
      std::fprintf(stderr, "%s\n", error.c_str());
      std::exit(kExitUsage);
    }
  }
  return spec.ToCluster();
}

std::vector<JobSpec> MakeBenchTrace(const BenchSimConfig& config) {
  TraceOptions options;
  options.num_jobs = config.jobs;
  options.duration = config.duration_hours * 3600.0;
  options.load_factor = config.load;
  options.user_configured_fraction = config.user_configured_fraction;
  options.gpus_per_node = config.gpus_per_node;
  options.max_gpus = config.nodes * config.gpus_per_node;
  options.seed = config.seed;
  if (config.sync_heavy_fraction >= 0.0) {
    TopologyTraceOptions topo_options;
    topo_options.base = options;
    topo_options.sync_heavy_fraction = config.sync_heavy_fraction;
    return GenerateTopologyTrace(topo_options);
  }
  return GenerateTrace(options);
}

SimResult RunBenchPolicy(const std::string& policy, const BenchSimConfig& config) {
  return RunImportedTrace(policy, config, MakeBenchTrace(config));
}

SimOptions SimOptionsFromBenchConfig(const BenchSimConfig& config) {
  SimOptions options;
  options.engine = config.engine;
  options.cluster = ClusterFromBenchConfig(config);
  options.gpus_per_node = config.gpus_per_node;
  options.scheduler_topology_blind = config.topology_blind;
  options.interference_slowdown = config.interference_slowdown;
  options.sched_interval = config.sched_interval;
  options.report_interval = config.report_interval;
  // Multi-week hyperscale traces outlive the 14-day default horizon; keep
  // the default for short traces so historical runs stay byte-identical.
  options.max_time = std::max(options.max_time, config.duration_hours * 3600.0 * 2.0);
  options.tick = config.tick;
  options.observation_noise = config.observation_noise;
  options.gns_noise = config.gns_noise;
  options.seed = config.seed;
  options.sched_threads = config.threads;
  options.faults = config.faults;
  options.net = config.net;
  options.check_invariants = config.check_invariants;
  options.checkpoint_every = config.checkpoint_every;
  options.checkpoint_dir = config.checkpoint_dir;
  options.halt_after_checkpoint = config.halt_after_checkpoint;
  return options;
}

SchedConfig SchedConfigFromBenchConfig(const BenchSimConfig& config) {
  SchedConfig sched_config;
  sched_config.ga.population_size = config.ga_population;
  sched_config.ga.generations = config.ga_generations;
  sched_config.ga.interference_avoidance = config.interference_avoidance;
  sched_config.ga.restart_penalty = config.restart_penalty;
  sched_config.ga.seed = config.seed;
  sched_config.ga.threads = config.threads;
  sched_config.mode = config.sched_mode;
  sched_config.queue_admission = config.queue_admission;
  sched_config.report_interval = config.report_interval;
  sched_config.weight_lambda = config.weight_lambda;
  sched_config.round_time_budget = config.round_time_budget;
  if (config.net.enabled()) {
    if (config.net.naive_masking) {
      sched_config.naive_masking = true;
    } else {
      sched_config.lease_intervals = config.net.lease_intervals;
      sched_config.lease_grace = config.net.lease_grace;
      sched_config.degraded_coverage = config.net.degraded_coverage;
    }
  }
  return sched_config;
}

namespace {

// Constructs the named policy on the stack (unknown names fall back to
// Tiresias, matching the historical RunImportedTrace behavior) and invokes
// `run` with it. Shared between the fresh-run and the snapshot-resume paths
// so both build byte-identical policy objects.
template <typename Fn>
SimResult WithBenchPolicy(const std::string& policy, const BenchSimConfig& config, Fn&& run) {
  // Under --topology-blind the policy is *constructed* against the stripped
  // cluster too, so no topology information leaks in through the ctor.
  ClusterSpec cluster = ClusterFromBenchConfig(config);
  if (config.topology_blind) {
    cluster = cluster.WithoutTopology();
  }
  if (policy == "pollux") {
    PolluxPolicy pollux(cluster, SchedConfigFromBenchConfig(config));
    return run(&pollux);
  }
  if (policy == "pollux-fixed-batch") {
    FixedBatchPolluxPolicy fixed(cluster, SchedConfigFromBenchConfig(config));
    return run(&fixed);
  }
  if (policy == "optimus") {
    OptimusPolicy optimus(OptimusConfig{config.gpus_per_node});
    return run(&optimus);
  }
  if (policy == "fifo") {
    FifoPolicy fifo;
    return run(&fifo);
  }
  TiresiasPolicy tiresias;
  return run(&tiresias);
}

// Embeds everything a resume needs to rebuild this run: the policy name, the
// serialized config, and the exact trace (WriteTraceCsv round-trips doubles
// bit-exactly at precision 17).
SnapshotExtra MakeSnapshotExtra(const std::string& policy, const BenchSimConfig& config,
                                const std::vector<JobSpec>& trace) {
  SnapshotExtra extra;
  extra.policy = policy;
  extra.driver_config = EncodeBenchSimConfig(config);
  std::ostringstream trace_csv;
  WriteTraceCsv(trace_csv, trace);
  extra.trace_csv = trace_csv.str();
  return extra;
}

bool CheckpointingEnabled(const BenchSimConfig& config) {
  return config.checkpoint_every > 0.0 && !config.checkpoint_dir.empty();
}

}  // namespace

SimResult RunImportedTrace(const std::string& policy, const BenchSimConfig& config,
                           const std::vector<JobSpec>& trace) {
  const SimOptions options = SimOptionsFromBenchConfig(config);
  return WithBenchPolicy(policy, config, [&](Scheduler* scheduler) {
    Simulator sim(options, trace, scheduler);
    if (CheckpointingEnabled(config)) {
      std::error_code ec;
      std::filesystem::create_directories(config.checkpoint_dir, ec);
      sim.SetSnapshotExtra(MakeSnapshotExtra(policy, config, trace));
    }
    return sim.Run();
  });
}

namespace {

void PutConfigDouble(std::ostringstream& out, const char* key, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out << key << '=' << buf << '\n';
}

bool ParseConfigDouble(const std::string& text, double* value) {
  char* end = nullptr;
  *value = std::strtod(text.c_str(), &end);
  return end != text.c_str() && *end == '\0';
}

bool ParseConfigInt(const std::string& text, int* value) {
  char* end = nullptr;
  const long parsed = std::strtol(text.c_str(), &end, 10);
  *value = static_cast<int>(parsed);
  return end != text.c_str() && *end == '\0';
}

bool ParseConfigU64(const std::string& text, uint64_t* value) {
  char* end = nullptr;
  *value = std::strtoull(text.c_str(), &end, 10);
  return end != text.c_str() && *end == '\0';
}

bool ParseConfigBool(const std::string& text, bool* value) {
  if (text == "0" || text == "1") {
    *value = text == "1";
    return true;
  }
  return false;
}

}  // namespace

std::string EncodeBenchSimConfig(const BenchSimConfig& config) {
  std::ostringstream out;
  out << "engine=" << SimEngineName(config.engine) << '\n';
  out << "nodes=" << config.nodes << '\n';
  out << "gpus_per_node=" << config.gpus_per_node << '\n';
  out << "jobs=" << config.jobs << '\n';
  PutConfigDouble(out, "duration_hours", config.duration_hours);
  PutConfigDouble(out, "load", config.load);
  PutConfigDouble(out, "user_frac", config.user_configured_fraction);
  PutConfigDouble(out, "interference", config.interference_slowdown);
  out << "avoidance=" << (config.interference_avoidance ? 1 : 0) << '\n';
  PutConfigDouble(out, "weight_lambda", config.weight_lambda);
  out << "ga_pop=" << config.ga_population << '\n';
  out << "ga_gens=" << config.ga_generations << '\n';
  out << "threads=" << config.threads << '\n';
  PutConfigDouble(out, "sched_interval", config.sched_interval);
  PutConfigDouble(out, "report_interval", config.report_interval);
  out << "sched_mode=" << SchedModeName(config.sched_mode) << '\n';
  out << "queue_admission=" << (config.queue_admission ? 1 : 0) << '\n';
  PutConfigDouble(out, "restart_penalty", config.restart_penalty);
  PutConfigDouble(out, "tick", config.tick);
  PutConfigDouble(out, "obs_noise", config.observation_noise);
  PutConfigDouble(out, "gns_noise", config.gns_noise);
  out << "seed=" << config.seed << '\n';
  PutConfigDouble(out, "mtbf_node", config.faults.mtbf_node);
  PutConfigDouble(out, "repair_time", config.faults.repair_time);
  PutConfigDouble(out, "straggler_frac", config.faults.straggler_frac);
  PutConfigDouble(out, "straggler_slowdown", config.faults.straggler_slowdown);
  PutConfigDouble(out, "report_drop_rate", config.faults.report_drop_rate);
  PutConfigDouble(out, "restart_fail_rate", config.faults.restart_fail_rate);
  PutConfigDouble(out, "restart_backoff_init", config.faults.restart_backoff_init);
  PutConfigDouble(out, "restart_backoff_cap", config.faults.restart_backoff_cap);
  PutConfigDouble(out, "mtbf_sched", config.faults.mtbf_sched);
  out << "sched_recovery=" << SchedRecoveryName(config.faults.sched_recovery) << '\n';
  PutConfigDouble(out, "net_latency", config.net.latency);
  PutConfigDouble(out, "net_jitter", config.net.jitter);
  PutConfigDouble(out, "net_loss", config.net.loss_rate);
  PutConfigDouble(out, "net_burst_rate", config.net.burst_rate);
  PutConfigDouble(out, "net_burst_duration", config.net.burst_duration);
  PutConfigDouble(out, "net_dup", config.net.dup_rate);
  PutConfigDouble(out, "net_reorder", config.net.reorder_rate);
  PutConfigDouble(out, "net_reorder_extra", config.net.reorder_extra);
  PutConfigDouble(out, "net_mtbf_partition", config.net.mtbf_partition);
  PutConfigDouble(out, "net_partition_duration", config.net.partition_duration);
  PutConfigDouble(out, "net_mtbf_rack_partition", config.net.mtbf_rack_partition);
  PutConfigDouble(out, "net_rack_partition_duration", config.net.rack_partition_duration);
  out << "net_rack_size=" << config.net.rack_size << '\n';
  PutConfigDouble(out, "net_retry_backoff_init", config.net.retry_backoff_init);
  PutConfigDouble(out, "net_retry_backoff_cap", config.net.retry_backoff_cap);
  out << "net_max_retries=" << config.net.max_retries << '\n';
  out << "net_lease_intervals=" << config.net.lease_intervals << '\n';
  PutConfigDouble(out, "net_lease_grace", config.net.lease_grace);
  PutConfigDouble(out, "net_degraded_coverage", config.net.degraded_coverage);
  out << "net_naive_masking=" << (config.net.naive_masking ? 1 : 0) << '\n';
  out << "check_invariants=" << (config.check_invariants ? 1 : 0) << '\n';
  PutConfigDouble(out, "sched_budget", config.round_time_budget);
  // Topology keys only when a topology knob is engaged: flat configs encode
  // byte-identically to pre-topology drivers (whose decoder rejects unknown
  // keys), so their snapshots stay mutually resumable.
  if (config.TopologyActive() || config.topology_blind || config.sync_heavy_fraction >= 0.0) {
    out << "racks=" << config.racks << '\n';
    PutConfigDouble(out, "rack_link_factor", config.rack_link_factor);
    out << "gpu_mix=" << config.gpu_mix << '\n';
    out << "topology_blind=" << (config.topology_blind ? 1 : 0) << '\n';
    PutConfigDouble(out, "sync_heavy_fraction", config.sync_heavy_fraction);
  }
  return out.str();
}

bool DecodeBenchSimConfig(const std::string& text, BenchSimConfig* config) {
  BenchSimConfig parsed;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    const size_t eq = line.find('=');
    if (eq == std::string::npos) {
      return false;
    }
    const std::string key = line.substr(0, eq);
    const std::string value = line.substr(eq + 1);
    bool ok = true;
    if (key == "engine") {
      ok = SimEngineByName(value, &parsed.engine);
    } else if (key == "nodes") {
      ok = ParseConfigInt(value, &parsed.nodes);
    } else if (key == "gpus_per_node") {
      ok = ParseConfigInt(value, &parsed.gpus_per_node);
    } else if (key == "jobs") {
      ok = ParseConfigInt(value, &parsed.jobs);
    } else if (key == "duration_hours") {
      ok = ParseConfigDouble(value, &parsed.duration_hours);
    } else if (key == "load") {
      ok = ParseConfigDouble(value, &parsed.load);
    } else if (key == "user_frac") {
      ok = ParseConfigDouble(value, &parsed.user_configured_fraction);
    } else if (key == "interference") {
      ok = ParseConfigDouble(value, &parsed.interference_slowdown);
    } else if (key == "avoidance") {
      ok = ParseConfigBool(value, &parsed.interference_avoidance);
    } else if (key == "weight_lambda") {
      ok = ParseConfigDouble(value, &parsed.weight_lambda);
    } else if (key == "ga_pop") {
      ok = ParseConfigInt(value, &parsed.ga_population);
    } else if (key == "ga_gens") {
      ok = ParseConfigInt(value, &parsed.ga_generations);
    } else if (key == "threads") {
      ok = ParseConfigInt(value, &parsed.threads);
    } else if (key == "sched_interval") {
      ok = ParseConfigDouble(value, &parsed.sched_interval);
    } else if (key == "report_interval") {
      ok = ParseConfigDouble(value, &parsed.report_interval);
    } else if (key == "sched_mode") {
      ok = SchedModeByName(value, &parsed.sched_mode);
    } else if (key == "queue_admission") {
      ok = ParseConfigBool(value, &parsed.queue_admission);
    } else if (key == "restart_penalty") {
      ok = ParseConfigDouble(value, &parsed.restart_penalty);
    } else if (key == "tick") {
      ok = ParseConfigDouble(value, &parsed.tick);
    } else if (key == "obs_noise") {
      ok = ParseConfigDouble(value, &parsed.observation_noise);
    } else if (key == "gns_noise") {
      ok = ParseConfigDouble(value, &parsed.gns_noise);
    } else if (key == "seed") {
      ok = ParseConfigU64(value, &parsed.seed);
    } else if (key == "mtbf_node") {
      ok = ParseConfigDouble(value, &parsed.faults.mtbf_node);
    } else if (key == "repair_time") {
      ok = ParseConfigDouble(value, &parsed.faults.repair_time);
    } else if (key == "straggler_frac") {
      ok = ParseConfigDouble(value, &parsed.faults.straggler_frac);
    } else if (key == "straggler_slowdown") {
      ok = ParseConfigDouble(value, &parsed.faults.straggler_slowdown);
    } else if (key == "report_drop_rate") {
      ok = ParseConfigDouble(value, &parsed.faults.report_drop_rate);
    } else if (key == "restart_fail_rate") {
      ok = ParseConfigDouble(value, &parsed.faults.restart_fail_rate);
    } else if (key == "restart_backoff_init") {
      ok = ParseConfigDouble(value, &parsed.faults.restart_backoff_init);
    } else if (key == "restart_backoff_cap") {
      ok = ParseConfigDouble(value, &parsed.faults.restart_backoff_cap);
    } else if (key == "mtbf_sched") {
      ok = ParseConfigDouble(value, &parsed.faults.mtbf_sched);
    } else if (key == "sched_recovery") {
      ok = SchedRecoveryByName(value, &parsed.faults.sched_recovery);
    } else if (key == "net_latency") {
      ok = ParseConfigDouble(value, &parsed.net.latency);
    } else if (key == "net_jitter") {
      ok = ParseConfigDouble(value, &parsed.net.jitter);
    } else if (key == "net_loss") {
      ok = ParseConfigDouble(value, &parsed.net.loss_rate);
    } else if (key == "net_burst_rate") {
      ok = ParseConfigDouble(value, &parsed.net.burst_rate);
    } else if (key == "net_burst_duration") {
      ok = ParseConfigDouble(value, &parsed.net.burst_duration);
    } else if (key == "net_dup") {
      ok = ParseConfigDouble(value, &parsed.net.dup_rate);
    } else if (key == "net_reorder") {
      ok = ParseConfigDouble(value, &parsed.net.reorder_rate);
    } else if (key == "net_reorder_extra") {
      ok = ParseConfigDouble(value, &parsed.net.reorder_extra);
    } else if (key == "net_mtbf_partition") {
      ok = ParseConfigDouble(value, &parsed.net.mtbf_partition);
    } else if (key == "net_partition_duration") {
      ok = ParseConfigDouble(value, &parsed.net.partition_duration);
    } else if (key == "net_mtbf_rack_partition") {
      ok = ParseConfigDouble(value, &parsed.net.mtbf_rack_partition);
    } else if (key == "net_rack_partition_duration") {
      ok = ParseConfigDouble(value, &parsed.net.rack_partition_duration);
    } else if (key == "net_rack_size") {
      ok = ParseConfigInt(value, &parsed.net.rack_size);
    } else if (key == "net_retry_backoff_init") {
      ok = ParseConfigDouble(value, &parsed.net.retry_backoff_init);
    } else if (key == "net_retry_backoff_cap") {
      ok = ParseConfigDouble(value, &parsed.net.retry_backoff_cap);
    } else if (key == "net_max_retries") {
      ok = ParseConfigInt(value, &parsed.net.max_retries);
    } else if (key == "net_lease_intervals") {
      ok = ParseConfigInt(value, &parsed.net.lease_intervals);
    } else if (key == "net_lease_grace") {
      ok = ParseConfigDouble(value, &parsed.net.lease_grace);
    } else if (key == "net_degraded_coverage") {
      ok = ParseConfigDouble(value, &parsed.net.degraded_coverage);
    } else if (key == "net_naive_masking") {
      ok = ParseConfigBool(value, &parsed.net.naive_masking);
    } else if (key == "check_invariants") {
      ok = ParseConfigBool(value, &parsed.check_invariants);
    } else if (key == "sched_budget") {
      ok = ParseConfigDouble(value, &parsed.round_time_budget);
    } else if (key == "racks") {
      ok = ParseConfigInt(value, &parsed.racks);
    } else if (key == "rack_link_factor") {
      ok = ParseConfigDouble(value, &parsed.rack_link_factor);
    } else if (key == "gpu_mix") {
      parsed.gpu_mix = value;
    } else if (key == "topology_blind") {
      ok = ParseConfigBool(value, &parsed.topology_blind);
    } else if (key == "sync_heavy_fraction") {
      ok = ParseConfigDouble(value, &parsed.sync_heavy_fraction);
    } else {
      ok = false;  // Unknown key: written by an incompatible (newer) driver.
    }
    if (!ok) {
      return false;
    }
  }
  *config = parsed;
  return true;
}

bool ResumeBenchFromSnapshot(const std::string& path_or_dir, const BenchResumeOptions& resume,
                             SimResult* result, std::string* policy, std::string* error) {
  const std::string path = ResolveSnapshotPath(path_or_dir, error);
  if (path.empty()) {
    return false;
  }
  SnapshotExtra extra;
  if (!ReadSnapshotExtra(path, &extra, error)) {
    return false;
  }
  BenchSimConfig config;
  if (!DecodeBenchSimConfig(extra.driver_config, &config)) {
    if (error != nullptr) {
      *error = "snapshot's embedded run configuration is unreadable "
               "(written by an incompatible driver version?)";
    }
    return false;
  }
  std::istringstream trace_in(extra.trace_csv);
  std::string trace_error;
  const std::optional<std::vector<JobSpec>> trace = ReadTraceCsv(trace_in, &trace_error);
  if (!trace.has_value()) {
    if (error != nullptr) {
      *error = "snapshot's embedded trace is unreadable: " + trace_error;
    }
    return false;
  }
  // Checkpoint knobs are run-local: the resumed run uses the caller's, not
  // whatever the interrupted run was configured with.
  config.checkpoint_every = resume.checkpoint_every;
  config.checkpoint_dir = resume.checkpoint_dir;
  config.halt_after_checkpoint = resume.halt_after_checkpoint;
  const SimOptions options = SimOptionsFromBenchConfig(config);
  bool loaded = true;
  const SimResult run =
      WithBenchPolicy(extra.policy, config, [&](Scheduler* scheduler) -> SimResult {
        Simulator sim(options, *trace, scheduler);
        if (CheckpointingEnabled(config)) {
          std::error_code ec;
          std::filesystem::create_directories(config.checkpoint_dir, ec);
          sim.SetSnapshotExtra(extra);  // Keep follow-on snapshots resumable too.
        }
        std::string load_error;
        if (!sim.LoadSnapshot(path, &load_error)) {
          loaded = false;
          if (error != nullptr) {
            *error = load_error;
          }
          return SimResult{};
        }
        return sim.Run();
      });
  if (!loaded) {
    return false;
  }
  *result = run;
  if (policy != nullptr) {
    *policy = extra.policy;
  }
  return true;
}

PolicyAverages RunBenchPolicySeeds(const std::string& policy, BenchSimConfig config, int seeds) {
  PolicyAverages averages;
  const uint64_t base_seed = config.seed;
  for (int s = 0; s < seeds; ++s) {
    config.seed = base_seed + static_cast<uint64_t>(s);
    const SimResult result = RunBenchPolicy(policy, config);
    const Summary jct = result.JctSummary();
    averages.avg_jct_hours += jct.mean / 3600.0;
    averages.p99_jct_hours += jct.p99 / 3600.0;
    averages.p50_jct_hours += jct.p50 / 3600.0;
    averages.makespan_hours += result.makespan / 3600.0;
    averages.avg_efficiency += result.AvgClusterEfficiency();
    averages.avg_throughput += result.AvgJobThroughput();
    averages.avg_goodput += result.AvgJobGoodput();
  }
  const double n = static_cast<double>(seeds > 0 ? seeds : 1);
  averages.avg_jct_hours /= n;
  averages.p99_jct_hours /= n;
  averages.p50_jct_hours /= n;
  averages.makespan_hours /= n;
  averages.avg_efficiency /= n;
  averages.avg_throughput /= n;
  averages.avg_goodput /= n;
  return averages;
}

}  // namespace pollux
