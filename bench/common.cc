#include "bench/common.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <utility>

#include "baselines/fifo.h"
#include "baselines/fixed_batch_policy.h"
#include "baselines/optimus.h"
#include "baselines/tiresias.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/pollux_policy.h"

namespace pollux {

void AddCommonFlags(FlagParser& flags) {
  flags.DefineString("engine", "event",
                     "simulation engine: event (deterministic event queue) | "
                     "ticked (legacy fixed-tick loop)");
  flags.DefineInt("nodes", 16, "number of cluster nodes");
  flags.DefineInt("gpus_per_node", 4, "GPUs per node");
  flags.DefineInt("jobs", 160, "job submissions in the trace window");
  flags.DefineDouble("duration_hours", 8.0, "trace window length in hours");
  flags.DefineDouble("load", 1.0, "relative load factor (scales job count)");
  flags.DefineDouble("user_frac", 0.0, "fraction of user-configured (non-tuned) jobs");
  flags.DefineDouble("interference", 0.0, "network interference slowdown in [0,1)");
  flags.DefineBool("avoidance", true, "PolluxSched interference avoidance constraint");
  flags.DefineDouble("weight_lambda", 0.5, "job weight decay lambda (Eqn. 16)");
  flags.DefineInt("ga_pop", 40, "genetic algorithm population size");
  flags.DefineInt("ga_gens", 25, "genetic algorithm generations per round");
  flags.DefineInt("threads", 1, "scheduler worker threads (0 = all hardware threads)");
  flags.DefineDouble("sched_interval", 60.0, "scheduling interval in seconds");
  flags.DefineDouble("restart_penalty", 0.25, "RESTART_PENALTY in the fitness function");
  flags.DefineDouble("tick", 1.0, "simulation clock step in seconds");
  flags.DefineDouble("obs_noise", 0.05, "lognormal sigma of profiled iteration times");
  flags.DefineDouble("gns_noise", 0.10, "lognormal sigma of gradient moment samples");
  flags.DefineInt("seed", 1, "base random seed");
  flags.DefineString("fault-profile", "none",
                     "fault injection preset: none | light | heavy "
                     "(individual fault flags override the preset)");
  flags.DefineDouble("mtbf-node", -1.0,
                     "mean time between node failures in seconds (0 disables crashes; "
                     "negative keeps the profile value)");
  flags.DefineDouble("repair-time", -1.0,
                     "mean node repair time in seconds (negative keeps the profile value)");
  flags.DefineDouble("straggler-frac", -1.0,
                     "fraction of nodes that are persistent stragglers "
                     "(negative keeps the profile value)");
  flags.DefineDouble("straggler-slowdown", -1.0,
                     "iteration-time multiplier on straggler nodes "
                     "(negative keeps the profile value)");
  flags.DefineDouble("report-drop-rate", -1.0,
                     "probability each 30s agent report is lost "
                     "(negative keeps the profile value)");
  flags.DefineDouble("restart-fail-rate", -1.0,
                     "probability a checkpoint-restart attempt fails "
                     "(negative keeps the profile value)");
  flags.DefineBool("check-invariants", false,
                   "verify simulator invariants every tick (abort on violation)");
  flags.DefineDouble("sched-budget", 0.0,
                     "wall-clock budget per Pollux scheduling round in seconds "
                     "(0 = unlimited; overruns fall back to the projected allocation)");
  AddObsFlags(flags);
}

void AddObsFlags(FlagParser& flags) {
  flags.DefineString("metrics-out", "",
                     "write the metrics registry as JSON to this file on exit "
                     "(empty disables metrics collection entirely)");
  flags.DefineString("trace-out", "",
                     "write a Chrome/Perfetto trace-event JSON to this file on exit "
                     "(empty disables trace recording entirely)");
}

ObsFlagValues ExtractObsFlagsFromArgv(int* argc, char** argv) {
  ObsFlagValues values;
  int kept = 0;
  for (int i = 0; i < *argc; ++i) {
    char* arg = argv[i];
    if (std::strncmp(arg, "--metrics-out=", 14) == 0) {
      values.metrics_out = arg + 14;
    } else if (std::strncmp(arg, "--trace-out=", 12) == 0) {
      values.trace_out = arg + 12;
    } else {
      argv[kept++] = arg;
    }
  }
  *argc = kept;
  return values;
}

ObsSession::ObsSession(std::string metrics_out, std::string trace_out)
    : metrics_out_(std::move(metrics_out)), trace_out_(std::move(trace_out)) {
  if (!metrics_out_.empty()) {
    obs::MetricsRegistry::Global().SetEnabled(true);
  }
  if (!trace_out_.empty()) {
    obs::TraceRecorder::Global().SetEnabled(true);
  }
}

ObsSession::ObsSession(const FlagParser& flags)
    : ObsSession(flags.GetString("metrics-out"), flags.GetString("trace-out")) {}

ObsSession::~ObsSession() {
  if (!metrics_out_.empty()) {
    std::ofstream out(metrics_out_);
    if (out) {
      obs::MetricsRegistry::Global().WriteJson(out);
      std::fprintf(stderr, "wrote metrics to %s\n", metrics_out_.c_str());
    } else {
      std::fprintf(stderr, "cannot open metrics output file %s\n", metrics_out_.c_str());
    }
  }
  if (!trace_out_.empty()) {
    obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
    std::ofstream out(trace_out_);
    if (out) {
      recorder.WriteJson(out);
      std::fprintf(stderr, "wrote trace (%zu events%s) to %s\n", recorder.Snapshot().size(),
                   recorder.dropped() > 0 ? ", buffer capped" : "", trace_out_.c_str());
    } else {
      std::fprintf(stderr, "cannot open trace output file %s\n", trace_out_.c_str());
    }
  }
}

BenchSimConfig ConfigFromFlags(const FlagParser& flags) {
  BenchSimConfig config;
  if (!SimEngineByName(flags.GetString("engine"), &config.engine)) {
    std::fprintf(stderr, "unknown --engine \"%s\", using \"%s\"\n",
                 flags.GetString("engine").c_str(), SimEngineName(config.engine));
  }
  config.nodes = static_cast<int>(flags.GetInt("nodes"));
  config.gpus_per_node = static_cast<int>(flags.GetInt("gpus_per_node"));
  config.jobs = static_cast<int>(flags.GetInt("jobs"));
  config.duration_hours = flags.GetDouble("duration_hours");
  config.load = flags.GetDouble("load");
  config.user_configured_fraction = flags.GetDouble("user_frac");
  config.interference_slowdown = flags.GetDouble("interference");
  config.interference_avoidance = flags.GetBool("avoidance");
  config.weight_lambda = flags.GetDouble("weight_lambda");
  config.ga_population = static_cast<int>(flags.GetInt("ga_pop"));
  config.ga_generations = static_cast<int>(flags.GetInt("ga_gens"));
  config.threads = static_cast<int>(flags.GetInt("threads"));
  config.sched_interval = flags.GetDouble("sched_interval");
  config.restart_penalty = flags.GetDouble("restart_penalty");
  config.tick = flags.GetDouble("tick");
  config.observation_noise = flags.GetDouble("obs_noise");
  config.gns_noise = flags.GetDouble("gns_noise");
  config.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  if (!FaultProfileByName(flags.GetString("fault-profile"), &config.faults)) {
    std::fprintf(stderr, "unknown --fault-profile \"%s\", using \"none\"\n",
                 flags.GetString("fault-profile").c_str());
  }
  if (flags.GetDouble("mtbf-node") >= 0.0) {
    config.faults.mtbf_node = flags.GetDouble("mtbf-node");
  }
  if (flags.GetDouble("repair-time") >= 0.0) {
    config.faults.repair_time = flags.GetDouble("repair-time");
  }
  if (flags.GetDouble("straggler-frac") >= 0.0) {
    config.faults.straggler_frac = flags.GetDouble("straggler-frac");
  }
  if (flags.GetDouble("straggler-slowdown") >= 0.0) {
    config.faults.straggler_slowdown = flags.GetDouble("straggler-slowdown");
  }
  if (flags.GetDouble("report-drop-rate") >= 0.0) {
    config.faults.report_drop_rate = flags.GetDouble("report-drop-rate");
  }
  if (flags.GetDouble("restart-fail-rate") >= 0.0) {
    config.faults.restart_fail_rate = flags.GetDouble("restart-fail-rate");
  }
  config.check_invariants = flags.GetBool("check-invariants");
  config.round_time_budget = flags.GetDouble("sched-budget");
  return config;
}

std::vector<JobSpec> MakeBenchTrace(const BenchSimConfig& config) {
  TraceOptions options;
  options.num_jobs = config.jobs;
  options.duration = config.duration_hours * 3600.0;
  options.load_factor = config.load;
  options.user_configured_fraction = config.user_configured_fraction;
  options.gpus_per_node = config.gpus_per_node;
  options.max_gpus = config.nodes * config.gpus_per_node;
  options.seed = config.seed;
  return GenerateTrace(options);
}

SimResult RunBenchPolicy(const std::string& policy, const BenchSimConfig& config) {
  return RunImportedTrace(policy, config, MakeBenchTrace(config));
}

SimResult RunImportedTrace(const std::string& policy, const BenchSimConfig& config,
                           const std::vector<JobSpec>& trace) {
  SimOptions options;
  options.engine = config.engine;
  options.cluster = ClusterSpec::Homogeneous(config.nodes, config.gpus_per_node);
  options.gpus_per_node = config.gpus_per_node;
  options.interference_slowdown = config.interference_slowdown;
  options.sched_interval = config.sched_interval;
  options.tick = config.tick;
  options.observation_noise = config.observation_noise;
  options.gns_noise = config.gns_noise;
  options.seed = config.seed;
  options.sched_threads = config.threads;
  options.faults = config.faults;
  options.check_invariants = config.check_invariants;
  SchedConfig sched_config;
  sched_config.ga.population_size = config.ga_population;
  sched_config.ga.generations = config.ga_generations;
  sched_config.ga.interference_avoidance = config.interference_avoidance;
  sched_config.ga.restart_penalty = config.restart_penalty;
  sched_config.ga.seed = config.seed;
  sched_config.ga.threads = options.sched_threads;
  sched_config.weight_lambda = config.weight_lambda;
  sched_config.round_time_budget = config.round_time_budget;
  if (policy == "pollux") {
    PolluxPolicy pollux(options.cluster, sched_config);
    return Simulator(options, trace, &pollux).Run();
  }
  if (policy == "pollux-fixed-batch") {
    FixedBatchPolluxPolicy fixed(options.cluster, sched_config);
    return Simulator(options, trace, &fixed).Run();
  }
  if (policy == "optimus") {
    OptimusPolicy optimus(OptimusConfig{config.gpus_per_node});
    return Simulator(options, trace, &optimus).Run();
  }
  if (policy == "fifo") {
    FifoPolicy fifo;
    return Simulator(options, trace, &fifo).Run();
  }
  TiresiasPolicy tiresias;
  return Simulator(options, trace, &tiresias).Run();
}

PolicyAverages RunBenchPolicySeeds(const std::string& policy, BenchSimConfig config, int seeds) {
  PolicyAverages averages;
  const uint64_t base_seed = config.seed;
  for (int s = 0; s < seeds; ++s) {
    config.seed = base_seed + static_cast<uint64_t>(s);
    const SimResult result = RunBenchPolicy(policy, config);
    const Summary jct = result.JctSummary();
    averages.avg_jct_hours += jct.mean / 3600.0;
    averages.p99_jct_hours += jct.p99 / 3600.0;
    averages.p50_jct_hours += jct.p50 / 3600.0;
    averages.makespan_hours += result.makespan / 3600.0;
    averages.avg_efficiency += result.AvgClusterEfficiency();
    averages.avg_throughput += result.AvgJobThroughput();
    averages.avg_goodput += result.AvgJobGoodput();
  }
  const double n = static_cast<double>(seeds > 0 ? seeds : 1);
  averages.avg_jct_hours /= n;
  averages.p99_jct_hours /= n;
  averages.p50_jct_hours /= n;
  averages.makespan_hours /= n;
  averages.avg_efficiency /= n;
  averages.avg_throughput /= n;
  averages.avg_goodput /= n;
  return averages;
}

}  // namespace pollux
