// Shared plumbing for the per-table/per-figure benchmark binaries: a single
// configuration struct covering every experiment knob, flag registration,
// trace construction, and one-call policy execution.

#ifndef POLLUX_BENCH_COMMON_H_
#define POLLUX_BENCH_COMMON_H_

#include <string>
#include <vector>

#include "core/sched.h"
#include "sim/simulator.h"
#include "util/flags.h"
#include "workload/trace_gen.h"

namespace pollux {

// Process exit codes shared by pollux_simulate and the bench binaries, so
// CI scripts can tell outcomes apart: 0 success (including --help), 1 runtime
// failure (timed-out run, unreadable input, failed resume), 2 usage error
// (unknown or malformed flag), 3 run halted after a checkpoint
// (--halt-after; resume with --resume-from).
inline constexpr int kExitOk = 0;
inline constexpr int kExitRuntime = 1;
inline constexpr int kExitUsage = 2;
inline constexpr int kExitHalted = 3;

struct BenchSimConfig {
  // Simulation engine: the event-driven engine (default) or the legacy
  // fixed-tick loop (--engine=ticked). Results agree to within one tick.
  SimEngine engine = SimEngine::kEvent;
  int nodes = 16;
  int gpus_per_node = 4;
  int jobs = 160;
  double duration_hours = 8.0;
  double load = 1.0;
  double user_configured_fraction = 0.0;
  double interference_slowdown = 0.0;
  bool interference_avoidance = true;
  double weight_lambda = 0.5;
  // Genetic-algorithm budget. The paper uses 100 x 100 every 60 s of real
  // time; the bench default is reduced so the full suite completes in
  // minutes. Raise via --ga_pop/--ga_gens to match the paper exactly.
  int ga_population = 40;
  int ga_generations = 25;
  // Scheduler worker threads (GaOptions::threads): 1 = serial, 0 = all
  // hardware threads. Allocations are identical for every value.
  int threads = 1;
  // Scheduling cadence and checkpoint-restart fitness penalty (Sec. 5.1
  // defaults; swept by bench_ablation).
  double sched_interval = 60.0;
  double restart_penalty = 0.25;
  // Agent report cadence in seconds. The paper (and the historical simulator
  // constant) uses 30 s; hyperscale runs raise it so report refresh is not
  // the bottleneck at 10^5 jobs.
  double report_interval = 30.0;
  // Scheduler quality/speed ladder (DESIGN.md §13): exact re-optimizes every
  // job each round (paper behavior), incremental re-optimizes only dirty
  // jobs, first-match is an O(jobs) greedy pass.
  SchedMode sched_mode = SchedMode::kExact;
  // Incremental mode: queued-job admission pre-filter (--queue-admission).
  // Queued jobs join GA shards only up to the round's free GPU capacity;
  // backlogged jobs defer instead of inflating dirty-shard counts.
  bool queue_admission = false;
  // Simulator fidelity knobs (swept by bench_fidelity).
  double tick = 1.0;
  double observation_noise = 0.05;
  double gns_noise = 0.10;
  uint64_t seed = 1;
  // Fault injection (all off by default; see sim/fault_injector.h). The
  // --fault-profile flag ("none" | "light" | "heavy") sets the whole block,
  // then individual flags override.
  FaultOptions faults;
  // Control-plane network model (all off by default; see sim/netmodel.h).
  // The --net-profile flag ("none" | "lan" | "flaky" | "partitioned") sets
  // the whole block, then individual --net-* flags override. The lease knobs
  // inside also configure PolluxSched's liveness handling (DESIGN.md §12).
  NetOptions net;
  // Cross-check simulator invariants every tick (capacity, job conservation,
  // event-log monotonicity); aborts on violation.
  bool check_invariants = false;
  // Wall-clock budget per scheduling round, seconds (0 = unlimited).
  double round_time_budget = 0.0;
  // Crash-consistent checkpointing (sim/checkpoint.h). Snapshots are written
  // every checkpoint_every sim-seconds into checkpoint_dir; both must be set
  // for checkpointing to engage. halt_after_checkpoint > 0 stops the run
  // after the first snapshot at or past that sim time (used by the CI
  // crash-resume smoke test to emulate a crash). These knobs are run-local
  // and deliberately excluded from EncodeBenchSimConfig so a resumed run
  // does not inherit the original's halt point.
  double checkpoint_every = 0.0;
  std::string checkpoint_dir;
  double halt_after_checkpoint = 0.0;
  // Topology model (DESIGN.md §14). racks == 0 and an empty gpu_mix keep the
  // flat homogeneous cluster — byte-identical to pre-topology binaries.
  // racks > 0 (--topology=RxN) arranges the nodes into racks with
  // rack_link_factor scaling the node-tier sync cost for cross-rack gangs;
  // gpu_mix ("a100:0.25,t4:0.75") assigns GPU generations to contiguous node
  // blocks. topology_blind strips the annotations from everything the
  // *scheduler* sees (ground truth stays topology-aware) — the A/B baseline
  // arm of bench_topology. sync_heavy_fraction >= 0 switches the trace to
  // GenerateTopologyTrace with that fraction of sync-heavy multi-node gangs.
  int racks = 0;
  double rack_link_factor = 2.5;
  std::string gpu_mix;
  bool topology_blind = false;
  double sync_heavy_fraction = -1.0;

  bool TopologyActive() const { return racks > 0 || !gpu_mix.empty(); }
};

// Registers the common --nodes/--jobs/--seed/... flags.
void AddCommonFlags(FlagParser& flags);

// Registers just --metrics-out/--trace-out (AddCommonFlags includes them;
// benches with bespoke flag sets call this directly).
void AddObsFlags(FlagParser& flags);

// Peels --metrics-out=/--trace-out= out of argv for binaries whose flag
// parser rejects unknown flags (e.g. google-benchmark): matching arguments
// are removed in place, *argc is updated, and the extracted paths are
// returned for an ObsSession.
struct ObsFlagValues {
  std::string metrics_out;
  std::string trace_out;
};
ObsFlagValues ExtractObsFlagsFromArgv(int* argc, char** argv);

// RAII observability session: enables the global metrics registry and/or
// trace recorder when the respective output path is non-empty, and writes
// the JSON files at scope exit. With both paths empty this is a no-op and
// the binary's behavior is byte-identical to an uninstrumented build.
class ObsSession {
 public:
  ObsSession(std::string metrics_out, std::string trace_out);
  // Reads the paths from --metrics-out/--trace-out.
  explicit ObsSession(const FlagParser& flags);
  ~ObsSession();

  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

 private:
  std::string metrics_out_;
  std::string trace_out_;
};

// Builds the config from parsed flags. Exits with kExitUsage on malformed
// cluster-shape arguments (non-positive --nodes/--gpus_per_node, invalid
// --topology/--gpu-mix/--rack-link-factor).
BenchSimConfig ConfigFromFlags(const FlagParser& flags);

// The cluster the config describes: flat homogeneous when no topology knob is
// set, otherwise the annotated rack/GPU-type cluster.
ClusterSpec ClusterFromBenchConfig(const BenchSimConfig& config);

// Synthesizes the workload trace for the config.
std::vector<JobSpec> MakeBenchTrace(const BenchSimConfig& config);

// Maps the bench config onto the simulator / PolluxSched option structs.
// Exposed so benches that need the policy object itself (e.g. to read lease
// counters after a run) build it exactly like RunBenchPolicy would.
SimOptions SimOptionsFromBenchConfig(const BenchSimConfig& config);
SchedConfig SchedConfigFromBenchConfig(const BenchSimConfig& config);

// Runs one full cluster simulation under the named policy
// ("pollux" | "pollux-fixed-batch" | "optimus" | "tiresias") and returns its
// result.
SimResult RunBenchPolicy(const std::string& policy, const BenchSimConfig& config);

// Same, but over an externally supplied trace (e.g. imported from CSV)
// instead of a synthesized one.
SimResult RunImportedTrace(const std::string& policy, const BenchSimConfig& config,
                           const std::vector<JobSpec>& trace);

// Serializes the run-defining subset of the config (everything except the
// checkpoint knobs) as key=value lines. Stored in each snapshot's "extra"
// section so --resume-from can rebuild the exact run configuration.
std::string EncodeBenchSimConfig(const BenchSimConfig& config);
bool DecodeBenchSimConfig(const std::string& text, BenchSimConfig* config);

// Run-local overrides applied on top of a snapshot's embedded config when
// resuming (a resumed run may checkpoint into a different directory, or not
// at all).
struct BenchResumeOptions {
  double checkpoint_every = 0.0;
  std::string checkpoint_dir;
  double halt_after_checkpoint = 0.0;
};

// Resumes a run from a snapshot file (or the newest valid snapshot in a
// directory): rebuilds the policy and trace from the snapshot's embedded
// config, restores the simulator state, and runs to completion. On success
// fills *result and *policy (the policy name the run was started with) and
// returns true; on failure fills *error and returns false.
bool ResumeBenchFromSnapshot(const std::string& path_or_dir, const BenchResumeOptions& resume,
                             SimResult* result, std::string* policy, std::string* error);

// Convenience wrapper that averages a metric over `seeds` trace seeds.
struct PolicyAverages {
  double avg_jct_hours = 0.0;
  double p99_jct_hours = 0.0;
  double p50_jct_hours = 0.0;
  double makespan_hours = 0.0;
  double avg_efficiency = 0.0;
  double avg_throughput = 0.0;
  double avg_goodput = 0.0;
};

PolicyAverages RunBenchPolicySeeds(const std::string& policy, BenchSimConfig config, int seeds);

}  // namespace pollux

#endif  // POLLUX_BENCH_COMMON_H_
