// Figure 8: average JCT for increasing job load (0.5x to 2x the primary
// workload's submission rate). All policies degrade with load; Pollux's
// advantage widens (paper: at 2x load Pollux grows 1.8x vs 2.0x for
// Optimus+Oracle and 2.6x for Tiresias).

#include <cstdio>
#include <iostream>

#include "bench/common.h"
#include "util/csv.h"

namespace pollux {
namespace {

int Main(int argc, char** argv) {
  FlagParser flags;
  AddCommonFlags(flags);
  if (!flags.Parse(argc, argv)) {
    return flags.help_requested() ? kExitOk : kExitUsage;
  }
  ObsSession obs(flags);
  BenchSimConfig config = ConfigFromFlags(flags);

  std::printf("=== Fig. 8: avg JCT (hours) vs relative job load ===\n");
  TablePrinter table({"load", "Pollux", "Optimus+Oracle", "Tiresias+TunedJobs"});
  double base_pollux = 0.0;
  double base_optimus = 0.0;
  double base_tiresias = 0.0;
  for (double load : {0.5, 1.0, 1.5, 2.0}) {
    config.load = load;
    const PolicyAverages pollux = RunBenchPolicySeeds("pollux", config, 1);
    const PolicyAverages optimus = RunBenchPolicySeeds("optimus", config, 1);
    const PolicyAverages tiresias = RunBenchPolicySeeds("tiresias", config, 1);
    if (load == 1.0) {
      base_pollux = pollux.avg_jct_hours;
      base_optimus = optimus.avg_jct_hours;
      base_tiresias = tiresias.avg_jct_hours;
    }
    table.AddRow({FormatDouble(load, 1) + "x", FormatDouble(pollux.avg_jct_hours, 2) + "h",
                  FormatDouble(optimus.avg_jct_hours, 2) + "h",
                  FormatDouble(tiresias.avg_jct_hours, 2) + "h"});
  }
  table.Print(std::cout);
  std::printf("\nGrowth from 1x to 2x load (paper: 1.8x / 2.0x / 2.6x):\n");
  config.load = 2.0;
  const PolicyAverages pollux2 = RunBenchPolicySeeds("pollux", config, 1);
  const PolicyAverages optimus2 = RunBenchPolicySeeds("optimus", config, 1);
  const PolicyAverages tiresias2 = RunBenchPolicySeeds("tiresias", config, 1);
  std::printf("  Pollux:   %.1fx\n", pollux2.avg_jct_hours / base_pollux);
  std::printf("  Optimus:  %.1fx\n", optimus2.avg_jct_hours / base_optimus);
  std::printf("  Tiresias: %.1fx\n", tiresias2.avg_jct_hours / base_tiresias);
  return 0;
}

}  // namespace
}  // namespace pollux

int main(int argc, char** argv) { return pollux::Main(argc, argv); }
