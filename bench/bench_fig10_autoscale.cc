// Figure 10 (Sec. 5.3.3): cloud auto-scaling for a single large ImageNet
// training job. Pollux's goodput-driven autoscaler provisions few nodes
// while statistical efficiency of large batches is poor and scales out as
// the gradient noise scale grows; the Or et al. throughput-driven baseline
// scales out immediately and stays large. Reports the node-count and
// efficiency timelines (Fig. 10a / 10b) plus total cost in node-hours
// (paper: Pollux trains ImageNet ~25% cheaper at ~6% longer completion).

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "baselines/or_policy.h"
#include "bench/common.h"
#include "core/sched.h"
#include "sim/autoscale.h"
#include "util/csv.h"

namespace pollux {
namespace {

struct AutoscaleRun {
  SimResult result;
  double cost_node_hours = 0.0;
  double completion_hours = 0.0;
};

AutoscaleRun RunAutoscale(bool goodput_driven, int min_nodes, int max_nodes, int gpus_per_node,
                          uint64_t seed, int ga_pop, int ga_gens) {
  JobSpec job;
  job.job_id = 0;
  job.model = ModelKind::kResNet50ImageNet;
  job.submit_time = 0.0;
  job.requested_gpus = 1;
  job.batch_size = GetModelProfile(job.model).base_batch_size;

  SimOptions options;
  options.cluster = ClusterSpec::Homogeneous(min_nodes, gpus_per_node);
  options.gpus_per_node = gpus_per_node;
  options.seed = seed;
  options.autoscale_interval = 300.0;

  SchedConfig sched_config;
  sched_config.ga.population_size = ga_pop;
  sched_config.ga.generations = ga_gens;
  sched_config.ga.seed = seed;

  AutoscaleRun run;
  if (goodput_driven) {
    PolluxPolicy policy(options.cluster, sched_config);
    AutoscaleConfig autoscale;
    autoscale.min_nodes = min_nodes;
    autoscale.max_nodes = max_nodes;
    GoodputAutoscaler autoscaler(autoscale, &policy);
    run.result = Simulator(options, {job}, &policy, &autoscaler).Run();
  } else {
    ThroughputOnlyPolicy policy(options.cluster, sched_config);
    ThroughputAutoscaler autoscaler(min_nodes, max_nodes, 0.5);
    run.result = Simulator(options, {job}, &policy, &autoscaler).Run();
  }
  run.cost_node_hours = run.result.node_seconds / 3600.0;
  run.completion_hours = run.result.makespan / 3600.0;
  return run;
}

// Timeline value at (or before) the given time.
const ClusterSample* SampleAt(const SimResult& result, double time) {
  const ClusterSample* best = nullptr;
  for (const auto& sample : result.timeline) {
    if (sample.time <= time) {
      best = &sample;
    }
  }
  return best;
}

int Main(int argc, char** argv) {
  FlagParser flags;
  flags.DefineInt("min_nodes", 1, "smallest cluster size");
  flags.DefineInt("max_nodes", 16, "largest cluster size");
  flags.DefineInt("gpus_per_node", 4, "GPUs per node");
  flags.DefineInt("seed", 1, "simulation seed");
  flags.DefineInt("ga_pop", 20, "GA population (single job: small is fine)");
  flags.DefineInt("ga_gens", 10, "GA generations");
  AddObsFlags(flags);
  if (!flags.Parse(argc, argv)) {
    return flags.help_requested() ? kExitOk : kExitUsage;
  }
  ObsSession obs(flags);
  const int min_nodes = static_cast<int>(flags.GetInt("min_nodes"));
  const int max_nodes = static_cast<int>(flags.GetInt("max_nodes"));
  const int gpn = static_cast<int>(flags.GetInt("gpus_per_node"));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed"));
  const int ga_pop = static_cast<int>(flags.GetInt("ga_pop"));
  const int ga_gens = static_cast<int>(flags.GetInt("ga_gens"));

  std::printf("=== Fig. 10: auto-scaling ImageNet training (1 job, %d-%d nodes) ===\n",
              min_nodes, max_nodes);
  const AutoscaleRun pollux = RunAutoscale(true, min_nodes, max_nodes, gpn, seed, ga_pop, ga_gens);
  const AutoscaleRun baseline =
      RunAutoscale(false, min_nodes, max_nodes, gpn, seed, ga_pop, ga_gens);

  const double horizon = std::max(pollux.result.makespan, baseline.result.makespan);
  TablePrinter timeline({"time", "Pollux nodes", "Pollux stat.eff", "Or et al. nodes",
                         "Or et al. stat.eff"});
  for (double t = 0.0; t <= horizon; t += horizon / 16.0) {
    const ClusterSample* p = SampleAt(pollux.result, t);
    const ClusterSample* o = SampleAt(baseline.result, t);
    timeline.AddRow({FormatDuration(t),
                     p != nullptr && t <= pollux.result.makespan ? std::to_string(p->nodes) : "-",
                     p != nullptr && t <= pollux.result.makespan
                         ? FormatDouble(p->mean_efficiency, 2)
                         : "-",
                     o != nullptr && t <= baseline.result.makespan ? std::to_string(o->nodes)
                                                                   : "-",
                     o != nullptr && t <= baseline.result.makespan
                         ? FormatDouble(o->mean_efficiency, 2)
                         : "-"});
  }
  timeline.Print(std::cout);

  std::printf("\nSummary:\n");
  std::printf("  Pollux (goodput):    completion %.2fh, cost %.0f node-hours\n",
              pollux.completion_hours, pollux.cost_node_hours);
  std::printf("  Or et al. (tput):    completion %.2fh, cost %.0f node-hours\n",
              baseline.completion_hours, baseline.cost_node_hours);
  std::printf("  cost saving:         %.0f%%  (paper: ~25%%)\n",
              100.0 * (1.0 - pollux.cost_node_hours / baseline.cost_node_hours));
  std::printf("  completion overhead: %.0f%%  (paper: ~6%%)\n",
              100.0 * (pollux.completion_hours / baseline.completion_hours - 1.0));
  return 0;
}

}  // namespace
}  // namespace pollux

int main(int argc, char** argv) { return pollux::Main(argc, argv); }
