// Figure 9: average JCT under artificially injected network interference
// (distributed jobs sharing a node slow each other down by 0% / 25% / 50%),
// with PolluxSched's interference-avoidance constraint enabled vs disabled.
// With avoidance on, JCT should be flat across slowdowns; with avoidance off
// it should degrade (paper: up to 1.4x at 50% slowdown), while avoidance
// costs almost nothing when interference is absent (paper: 2%).

#include <cstdio>
#include <iostream>

#include "bench/common.h"
#include "util/csv.h"

namespace pollux {
namespace {

int Main(int argc, char** argv) {
  FlagParser flags;
  AddCommonFlags(flags);
  if (!flags.Parse(argc, argv)) {
    return flags.help_requested() ? kExitOk : kExitUsage;
  }
  ObsSession obs(flags);
  BenchSimConfig config = ConfigFromFlags(flags);

  std::printf("=== Fig. 9: normalized avg JCT vs interference slowdown ===\n");
  config.interference_slowdown = 0.0;
  config.interference_avoidance = true;
  const PolicyAverages base = RunBenchPolicySeeds("pollux", config, 1);

  TablePrinter table({"slowdown", "avoidance on", "avoidance off"});
  for (double slowdown : {0.0, 0.25, 0.5}) {
    config.interference_slowdown = slowdown;
    config.interference_avoidance = true;
    const PolicyAverages with_avoidance = RunBenchPolicySeeds("pollux", config, 1);
    config.interference_avoidance = false;
    const PolicyAverages without_avoidance = RunBenchPolicySeeds("pollux", config, 1);
    table.AddRow({FormatDouble(100.0 * slowdown, 0) + "%",
                  FormatDouble(with_avoidance.avg_jct_hours / base.avg_jct_hours, 2),
                  FormatDouble(without_avoidance.avg_jct_hours / base.avg_jct_hours, 2)});
  }
  table.Print(std::cout);
  std::printf("\n(absolute baseline: avg JCT %.2fh with avoidance, no interference)\n",
              base.avg_jct_hours);
  std::printf("Expected shape: the avoidance-on column stays ~1.0 at every slowdown; the\n"
              "avoidance-off column grows with the slowdown (paper Fig. 9: 0.98 -> 1.4).\n");
  return 0;
}

}  // namespace
}  // namespace pollux

int main(int argc, char** argv) { return pollux::Main(argc, argv); }
