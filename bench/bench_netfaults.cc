// Degraded control plane: Pollux under the "none", "lan", "flaky", and
// "partitioned" network-fault profiles (latency/jitter, burst loss,
// duplication, reordering, node/rack partitions; see sim/netmodel.h), with
// lease-based liveness compared against the naive instant-masking baseline
// (--net-naive-masking semantics).
//
// The interesting shape: under "lan" both modes match the clean run — a
// healthy network never expires a lease. Under "flaky"/"partitioned" the
// naive scheduler reclaims every job whose reports go quiet, churning
// healthy-but-unreachable jobs through evictions, while the lease scheduler
// freezes them through the outage and resumes when it heals, finishing with
// fewer evictions and better JCT/goodput. No job is ever lost (invariants on
// for every run).

#include <cstdio>
#include <iostream>

#include "bench/common.h"
#include "sim/pollux_policy.h"
#include "util/csv.h"

namespace pollux {
namespace {

int Main(int argc, char** argv) {
  FlagParser flags;
  AddCommonFlags(flags);
  if (!flags.Parse(argc, argv)) {
    return flags.help_requested() ? kExitOk : kExitUsage;
  }
  ObsSession obs(flags);
  BenchSimConfig config = ConfigFromFlags(flags);
  config.check_invariants = true;

  // One trace for every cell: the comparison isolates the control plane.
  const std::vector<JobSpec> trace = MakeBenchTrace(config);

  std::printf("=== Degraded control plane: lease liveness vs naive masking ===\n");
  TablePrinter table({"liveness", "profile", "avg JCT (h)", "goodput (ex/s)", "completed",
                      "evictions", "bounces", "degraded rounds", "lease evictions"});
  for (const bool naive : {false, true}) {
    for (const std::string profile : {"none", "lan", "flaky", "partitioned"}) {
      NetProfileByName(profile, &config.net);
      config.net.naive_masking = naive;
      PolluxPolicy policy(ClusterSpec::Homogeneous(config.nodes, config.gpus_per_node),
                          SchedConfigFromBenchConfig(config));
      Simulator sim(SimOptionsFromBenchConfig(config), trace, &policy);
      const SimResult result = sim.Run();
      int completed = 0;
      long evictions = 0;
      for (const auto& job : result.jobs) {
        completed += job.completed ? 1 : 0;
        evictions += job.num_evictions;
      }
      long bounces = 0;
      for (const auto& event : result.events) {
        bounces += event.kind == SimEventKind::kDecisionBounce ? 1 : 0;
      }
      table.AddRow({naive ? "naive" : "lease", profile,
                    FormatDouble(result.JctSummary().mean / 3600.0, 2),
                    FormatDouble(result.AvgJobGoodput(), 1),
                    std::to_string(completed) + "/" + std::to_string(result.jobs.size()),
                    std::to_string(evictions), std::to_string(bounces),
                    std::to_string(policy.sched().degraded_rounds()),
                    std::to_string(policy.sched().lease_evictions())});
    }
  }
  table.Print(std::cout);
  std::printf("\nExpected shape: \"none\" and \"lan\" rows match across modes (healthy\n"
              "networks never expire a lease). Under \"flaky\"/\"partitioned\" the naive\n"
              "scheduler reclaims jobs whose reports merely went quiet; the lease\n"
              "scheduler freezes them through the outage, so it completes the same jobs\n"
              "with far fewer lease evictions and better avg JCT. (Per-job goodput can\n"
              "look better for naive: reclaiming jobs leaves survivors hogging GPUs.)\n");
  return 0;
}

}  // namespace
}  // namespace pollux

int main(int argc, char** argv) { return pollux::Main(argc, argv); }
