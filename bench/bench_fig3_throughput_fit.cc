// Figure 3: the throughput model (Eqn. 8-11) fit to measured values for
// ImageNet training: actual vs model throughput as a function of the number
// of nodes (Fig. 3a) and of the batch size (Fig. 3b).
//
// "Measured" values come from the ResNet-50 ground truth with multiplicative
// lognormal noise; the model is fitted with the same RMSLE + bounded L-BFGS
// pipeline PolluxAgent uses online.

#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench/common.h"
#include "core/model_fitter.h"
#include "util/csv.h"
#include "util/rng.h"
#include "workload/model_profile.h"

namespace pollux {
namespace {

int Main(int argc, char** argv) {
  FlagParser flags;
  flags.DefineInt("seed", 3, "measurement noise seed");
  flags.DefineDouble("noise", 0.05, "lognormal sigma of measurement noise");
  flags.DefineInt("gpus_per_node", 4, "GPUs per node");
  AddObsFlags(flags);
  if (!flags.Parse(argc, argv)) {
    return flags.help_requested() ? kExitOk : kExitUsage;
  }
  ObsSession obs(flags);
  const ModelProfile& profile = GetModelProfile(ModelKind::kResNet50ImageNet);
  const int gpn = static_cast<int>(flags.GetInt("gpus_per_node"));
  Rng rng(static_cast<uint64_t>(flags.GetInt("seed")));
  const double noise = flags.GetDouble("noise");

  // Collect noisy observations over a grid of (nodes, batch) configurations.
  std::vector<ThroughputObservation> observations;
  for (int nodes = 1; nodes <= 8; ++nodes) {
    for (long batch = profile.base_batch_size * nodes;
         batch <= std::min<long>(profile.max_batch_total,
                                 profile.max_batch_per_gpu * nodes * gpn);
         batch *= 2) {
      ThroughputObservation obs;
      obs.placement = Placement{nodes * gpn, nodes};
      obs.batch_size = batch;
      obs.iter_time =
          profile.TrueIterTime(obs.placement, batch) * std::exp(rng.Normal(0.0, noise));
      observations.push_back(obs);
    }
  }
  FitOptions options;
  options.max_gpus_seen = 8 * gpn;
  options.max_nodes_seen = 8;
  options.multi_starts = 4;
  options.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  const FitResult fit = FitThroughputParams(observations, options);
  std::printf("fitted theta_sys on %zu noisy observations, RMSLE = %.4f\n",
              observations.size(), fit.rmsle);

  std::printf("\n=== Fig. 3a: throughput (imgs/sec) vs #nodes (batch = 200/GPU) ===\n");
  TablePrinter fig3a({"nodes", "actual", "model"});
  for (int nodes = 1; nodes <= 8; ++nodes) {
    const Placement placement{nodes * gpn, nodes};
    const long batch = static_cast<long>(profile.base_batch_size) * nodes;
    fig3a.AddRow({std::to_string(nodes),
                  FormatDouble(profile.TrueThroughput(placement, batch), 0),
                  FormatDouble(ModelThroughput(fit.params, placement,
                                               static_cast<double>(batch)), 0)});
  }
  fig3a.Print(std::cout);

  std::printf("\n=== Fig. 3b: throughput (imgs/sec) vs batch size (4 nodes) ===\n");
  TablePrinter fig3b({"batch", "actual", "model"});
  const Placement four_nodes{4 * gpn, 4};
  for (long batch = profile.base_batch_size;
       batch <= std::min<long>(profile.max_batch_total, profile.max_batch_per_gpu * 4 * gpn);
       batch *= 2) {
    fig3b.AddRow({std::to_string(batch),
                  FormatDouble(profile.TrueThroughput(four_nodes, batch), 0),
                  FormatDouble(ModelThroughput(fit.params, four_nodes,
                                               static_cast<double>(batch)), 0)});
  }
  fig3b.Print(std::cout);
  std::printf("\nExpected shape: the fitted model tracks the measured throughput closely across\n"
              "both sweeps (paper Fig. 3).\n");
  return 0;
}

}  // namespace
}  // namespace pollux

int main(int argc, char** argv) { return pollux::Main(argc, argv); }
