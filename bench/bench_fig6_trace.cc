// Figure 6: job submissions per hour of the day in the (synthetic) trace,
// plus the 8-hour sampling window used for the primary workload and the mix
// of models/categories drawn from it (Table 1's "Frac. of Workload" column).

#include <cstdio>
#include <iostream>
#include <map>

#include "bench/common.h"
#include "util/csv.h"
#include "util/stats.h"

namespace pollux {
namespace {

int Main(int argc, char** argv) {
  FlagParser flags;
  flags.DefineInt("jobs", 4000, "trace size used to estimate the distributions");
  flags.DefineInt("seed", 1, "trace seed");
  AddObsFlags(flags);
  if (!flags.Parse(argc, argv)) {
    return flags.help_requested() ? kExitOk : kExitUsage;
  }
  ObsSession obs(flags);

  std::printf("=== Fig. 6: relative submission rate per hour of day ===\n");
  TablePrinter diurnal({"hour", "rate", "bar"});
  for (int hour = 0; hour < 24; ++hour) {
    const double weight = DiurnalWeight24(hour);
    std::string bar(static_cast<size_t>(weight * 12.0), '#');
    const bool in_window =
        hour >= TraceWindowStartHour() && hour < TraceWindowStartHour() + 8;
    diurnal.AddRow({std::to_string(hour), FormatDouble(weight, 2),
                    bar + (in_window ? "  <- window" : "")});
  }
  diurnal.Print(std::cout);

  TraceOptions options;
  options.num_jobs = static_cast<int>(flags.GetInt("jobs"));
  options.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  const auto jobs = GenerateTrace(options);

  std::printf("\n=== Sampled 8-hour window: submissions per hour (n = %zu) ===\n", jobs.size());
  Histogram per_hour(0.0, options.duration, 8);
  for (const auto& job : jobs) {
    per_hour.Add(job.submit_time);
  }
  TablePrinter window({"window hour", "submissions"});
  for (size_t h = 0; h < per_hour.bins(); ++h) {
    window.AddRow({std::to_string(h + 1), std::to_string(per_hour.bin_count(h))});
  }
  window.Print(std::cout);
  std::printf("peak (hour 4) / first hour = %.2f (paper: 3x)\n",
              static_cast<double>(per_hour.bin_count(3)) /
                  static_cast<double>(per_hour.bin_count(0)));

  std::printf("\n=== Table 1 workload mix ===\n");
  std::map<std::string, int> counts;
  for (const auto& job : jobs) {
    counts[ModelKindName(job.model)] += 1;
  }
  TablePrinter mix({"model", "fraction"});
  for (const auto& [name, count] : counts) {
    mix.AddRow({name, FormatDouble(100.0 * count / static_cast<double>(jobs.size()), 1) + "%"});
  }
  mix.Print(std::cout);
  return 0;
}

}  // namespace
}  // namespace pollux

int main(int argc, char** argv) { return pollux::Main(argc, argv); }
