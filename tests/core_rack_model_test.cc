#include "core/rack_model.h"

#include <gtest/gtest.h>

namespace pollux {
namespace {

RackThroughputParams GroundTruth() {
  RackThroughputParams params;
  params.alpha_grad = 0.03;
  params.beta_grad = 4e-4;
  params.alpha_sync_local = 0.02;
  params.beta_sync_local = 0.001;
  params.alpha_sync_node = 0.08;
  params.beta_sync_node = 0.004;
  params.alpha_sync_rack = 0.20;
  params.beta_sync_rack = 0.010;
  params.gamma = 2.0;
  return params;
}

TEST(RackModelTest, SyncRegimes) {
  const auto params = GroundTruth();
  EXPECT_DOUBLE_EQ(RackSyncTime(params, RackPlacement{1, 1, 1}), 0.0);
  EXPECT_DOUBLE_EQ(RackSyncTime(params, RackPlacement{4, 1, 1}),
                   params.alpha_sync_local + 2.0 * params.beta_sync_local);
  EXPECT_DOUBLE_EQ(RackSyncTime(params, RackPlacement{4, 2, 1}),
                   params.alpha_sync_node + 2.0 * params.beta_sync_node);
  EXPECT_DOUBLE_EQ(RackSyncTime(params, RackPlacement{4, 2, 2}),
                   params.alpha_sync_rack + 2.0 * params.beta_sync_rack);
}

TEST(RackModelTest, LocalityOrdering) {
  // Same GPUs, increasingly remote placements: throughput must not improve.
  const auto params = GroundTruth();
  const double co_located = RackModelThroughput(params, RackPlacement{8, 1, 1}, 1024.0);
  const double same_rack = RackModelThroughput(params, RackPlacement{8, 2, 1}, 1024.0);
  const double cross_rack = RackModelThroughput(params, RackPlacement{8, 2, 2}, 1024.0);
  EXPECT_GT(co_located, same_rack);
  EXPECT_GT(same_rack, cross_rack);
  EXPECT_GT(cross_rack, 0.0);
}

TEST(RackModelTest, FlattenDropsRackDimension) {
  const RackPlacement placement{8, 2, 2};
  EXPECT_EQ(placement.Flatten(), (Placement{8, 2}));
}

TEST(RackModelTest, ReducesToTwoTierModelWithinOneRack) {
  // With R = 1, the rack model must agree with the base Eqn. 10/11 model
  // sharing the same non-rack parameters.
  const auto rack_params = GroundTruth();
  ThroughputParams base;
  base.alpha_grad = rack_params.alpha_grad;
  base.beta_grad = rack_params.beta_grad;
  base.alpha_sync_local = rack_params.alpha_sync_local;
  base.beta_sync_local = rack_params.beta_sync_local;
  base.alpha_sync_node = rack_params.alpha_sync_node;
  base.beta_sync_node = rack_params.beta_sync_node;
  base.gamma = rack_params.gamma;
  for (const RackPlacement placement :
       {RackPlacement{1, 1, 1}, RackPlacement{4, 1, 1}, RackPlacement{8, 2, 1}}) {
    EXPECT_NEAR(RackIterTime(rack_params, placement, 512.0),
                IterTime(base, placement.Flatten(), 512.0), 1e-12);
  }
}

TEST(RackModelTest, ZeroGpusZeroThroughput) {
  EXPECT_DOUBLE_EQ(RackModelThroughput(GroundTruth(), RackPlacement{0, 0, 0}, 512.0), 0.0);
  EXPECT_DOUBLE_EQ(RackModelThroughput(GroundTruth(), RackPlacement{1, 1, 1}, 0.0), 0.0);
}

TEST(RackModelTest, RmsleZeroForExactParams) {
  const auto truth = GroundTruth();
  std::vector<RackThroughputObservation> data;
  for (const RackPlacement placement :
       {RackPlacement{1, 1, 1}, RackPlacement{4, 1, 1}, RackPlacement{8, 2, 1},
        RackPlacement{16, 4, 2}}) {
    for (long m : {256L, 1024L}) {
      data.push_back({placement, m, RackIterTime(truth, placement, static_cast<double>(m))});
    }
  }
  EXPECT_NEAR(RackThroughputRmsle(truth, data), 0.0, 1e-9);
  EXPECT_DOUBLE_EQ(RackThroughputRmsle(truth, {}), 0.0);
}

TEST(RackFitTest, RecoversPredictionsAcrossAllThreeTiers) {
  const auto truth = GroundTruth();
  std::vector<RackThroughputObservation> data;
  for (int k : {1, 2, 4, 8, 16}) {
    for (const auto& [nodes, racks] : std::vector<std::pair<int, int>>{{1, 1}, {2, 1}, {4, 2}}) {
      if (k < nodes) {
        continue;
      }
      for (long m : {128L, 512L, 2048L}) {
        const RackPlacement placement{k, nodes, racks};
        data.push_back({placement, m, RackIterTime(truth, placement, static_cast<double>(m))});
      }
    }
  }
  RackFitOptions options;
  options.max_gpus_seen = 16;
  options.max_nodes_seen = 4;
  options.max_racks_seen = 2;
  const RackFitResult fit = FitRackThroughputParams(data, options);
  EXPECT_LT(fit.rmsle, 0.05);
  // Held-out predictions across all tiers.
  for (const RackPlacement placement :
       {RackPlacement{6, 1, 1}, RackPlacement{6, 2, 1}, RackPlacement{12, 3, 2}}) {
    const double predicted = RackIterTime(fit.params, placement, 768.0);
    const double actual = RackIterTime(truth, placement, 768.0);
    EXPECT_NEAR(predicted / actual, 1.0, 0.15)
        << "K=" << placement.num_gpus << " N=" << placement.num_nodes
        << " R=" << placement.num_racks;
  }
}

TEST(RackFitTest, PriorPinsRackParamsUntilMultiRackSeen) {
  const auto truth = GroundTruth();
  std::vector<RackThroughputObservation> data;
  for (int k : {1, 2, 4}) {
    const RackPlacement placement{k, k >= 2 ? 2 : 1, 1};
    data.push_back({placement, 512, RackIterTime(truth, placement, 512.0)});
  }
  RackFitOptions options;
  options.max_gpus_seen = 4;
  options.max_nodes_seen = 2;
  options.max_racks_seen = 1;
  const RackFitResult fit = FitRackThroughputParams(data, options);
  EXPECT_DOUBLE_EQ(fit.params.alpha_sync_rack, 0.0);
  EXPECT_DOUBLE_EQ(fit.params.beta_sync_rack, 0.0);
}

TEST(RackFitTest, DegenerateAllSingleRackObservations) {
  // Every observation inside one rack: the rack tier is unobservable, so the
  // prior must pin it to zero while the node tier still fits accurately.
  const auto truth = GroundTruth();
  std::vector<RackThroughputObservation> data;
  for (int k : {1, 2, 4, 8}) {
    for (int nodes : {1, 2, 4}) {
      if (k < nodes) {
        continue;
      }
      for (long m : {128L, 512L, 2048L}) {
        const RackPlacement placement{k, nodes, 1};
        data.push_back({placement, m, RackIterTime(truth, placement, static_cast<double>(m))});
      }
    }
  }
  RackFitOptions options;
  options.max_gpus_seen = 8;
  options.max_nodes_seen = 4;
  options.max_racks_seen = 1;
  const RackFitResult fit = FitRackThroughputParams(data, options);
  EXPECT_DOUBLE_EQ(fit.params.alpha_sync_rack, 0.0);
  EXPECT_DOUBLE_EQ(fit.params.beta_sync_rack, 0.0);
  for (const RackPlacement placement : {RackPlacement{6, 2, 1}, RackPlacement{8, 4, 1}}) {
    const double predicted = RackIterTime(fit.params, placement, 768.0);
    const double actual = RackIterTime(truth, placement, 768.0);
    EXPECT_NEAR(predicted / actual, 1.0, 0.15)
        << "K=" << placement.num_gpus << " N=" << placement.num_nodes;
  }
}

TEST(RackFitTest, RackPinReleasesWithMultiRackObservations) {
  // The moment cross-rack placements are observed, the prior lets the rack
  // tier move off zero to explain the extra sync cost.
  const auto truth = GroundTruth();
  std::vector<RackThroughputObservation> data;
  for (int k : {2, 4, 8, 16}) {
    for (const auto& [nodes, racks] : std::vector<std::pair<int, int>>{{2, 1}, {4, 2}}) {
      if (k < nodes) {
        continue;
      }
      for (long m : {256L, 1024L}) {
        const RackPlacement placement{k, nodes, racks};
        data.push_back({placement, m, RackIterTime(truth, placement, static_cast<double>(m))});
      }
    }
  }
  RackFitOptions options;
  options.max_gpus_seen = 16;
  options.max_nodes_seen = 4;
  options.max_racks_seen = 2;
  const RackFitResult fit = FitRackThroughputParams(data, options);
  EXPECT_GT(fit.params.alpha_sync_rack + fit.params.beta_sync_rack, 0.0);
  // Cross-rack placements must still predict slower than single-rack ones.
  EXPECT_GT(RackIterTime(fit.params, RackPlacement{8, 4, 2}, 512.0),
            RackIterTime(fit.params, RackPlacement{8, 4, 1}, 512.0));
}

TEST(RackFitTest, FittedParamsStayFlattenConsistent) {
  // For any fitted 9-parameter model, single-rack predictions must agree with
  // the 6-parameter model built from the same non-rack parameters evaluated
  // at Flatten()'d placements — the invariant that keeps flat-cluster
  // scheduling byte-identical to the legacy model.
  const auto truth = GroundTruth();
  std::vector<RackThroughputObservation> data;
  for (int k : {1, 2, 4, 8}) {
    const RackPlacement placement{k, k >= 4 ? 2 : 1, 1};
    data.push_back({placement, 512, RackIterTime(truth, placement, 512.0)});
  }
  RackFitOptions options;
  options.max_gpus_seen = 8;
  options.max_nodes_seen = 2;
  options.max_racks_seen = 1;
  const RackFitResult fit = FitRackThroughputParams(data, options);
  ThroughputParams base;
  base.alpha_grad = fit.params.alpha_grad;
  base.beta_grad = fit.params.beta_grad;
  base.alpha_sync_local = fit.params.alpha_sync_local;
  base.beta_sync_local = fit.params.beta_sync_local;
  base.alpha_sync_node = fit.params.alpha_sync_node;
  base.beta_sync_node = fit.params.beta_sync_node;
  base.gamma = fit.params.gamma;
  for (const RackPlacement placement :
       {RackPlacement{1, 1, 1}, RackPlacement{3, 1, 1}, RackPlacement{6, 2, 1},
        RackPlacement{8, 2, 1}}) {
    EXPECT_NEAR(RackIterTime(fit.params, placement, 640.0),
                IterTime(base, placement.Flatten(), 640.0), 1e-12);
  }
}

TEST(RackFitTest, AllPinsForSingleGpuJob) {
  std::vector<RackThroughputObservation> data = {
      {RackPlacement{1, 1, 1}, 256, 0.15},
      {RackPlacement{1, 1, 1}, 512, 0.25},
  };
  RackFitOptions options;  // Defaults: nothing beyond 1 GPU seen.
  const RackFitResult fit = FitRackThroughputParams(data, options);
  EXPECT_DOUBLE_EQ(fit.params.alpha_sync_local, 0.0);
  EXPECT_DOUBLE_EQ(fit.params.alpha_sync_node, 0.0);
  EXPECT_DOUBLE_EQ(fit.params.alpha_sync_rack, 0.0);
  EXPECT_GT(fit.params.beta_grad, 0.0);
}

}  // namespace
}  // namespace pollux
