#include "core/goodput.h"

#include <gtest/gtest.h>

namespace pollux {
namespace {

ThroughputParams TypicalParams() {
  ThroughputParams params;
  params.alpha_grad = 0.05;
  params.beta_grad = 2e-4;
  params.alpha_sync_local = 0.03;
  params.beta_sync_local = 0.002;
  params.alpha_sync_node = 0.1;
  params.beta_sync_node = 0.005;
  params.gamma = 2.0;
  return params;
}

BatchLimits TypicalLimits() {
  BatchLimits limits;
  limits.min_batch = 128;
  limits.max_batch_total = 16384;
  limits.max_batch_per_gpu = 1024;
  return limits;
}

TEST(BatchLimitsTest, MaxFeasibleCombinesMemoryAndTotalCaps) {
  const BatchLimits limits = TypicalLimits();
  EXPECT_EQ(limits.MaxFeasible(1), 1024);
  EXPECT_EQ(limits.MaxFeasible(8), 8192);
  EXPECT_EQ(limits.MaxFeasible(64), 16384);  // Total cap binds.
}

TEST(BatchLimitsTest, MinBatchAlwaysFeasibleViaAccumulation) {
  BatchLimits limits;
  limits.min_batch = 4096;
  limits.max_batch_total = 8192;
  limits.max_batch_per_gpu = 512;
  EXPECT_EQ(limits.MaxFeasible(1), 4096);
  EXPECT_TRUE(limits.Feasible(1, 4096));
}

TEST(BatchLimitsTest, FeasibleChecksBothEnds) {
  const BatchLimits limits = TypicalLimits();
  EXPECT_FALSE(limits.Feasible(1, 64));
  EXPECT_TRUE(limits.Feasible(1, 512));
  EXPECT_FALSE(limits.Feasible(1, 2048));
}

TEST(GoodputModelTest, GoodputNeverExceedsThroughput) {
  const GoodputModel model(TypicalParams(), 500.0, 128);
  for (long m : {128L, 256L, 1024L, 4096L}) {
    const Placement placement{4, 1};
    EXPECT_LE(model.GoodputAt(placement, static_cast<double>(m)),
              model.ThroughputAt(placement, static_cast<double>(m)) + 1e-9);
  }
}

TEST(GoodputModelTest, GoodputEqualsThroughputAtBaseBatch) {
  const GoodputModel model(TypicalParams(), 500.0, 128);
  const Placement placement{2, 1};
  EXPECT_NEAR(model.GoodputAt(placement, 128.0), model.ThroughputAt(placement, 128.0), 1e-9);
}

TEST(GoodputModelTest, OptimizeBatchSizeStaysInBounds) {
  const GoodputModel model(TypicalParams(), 2000.0, 128);
  const BatchLimits limits = TypicalLimits();
  for (int k : {1, 2, 4, 8, 16}) {
    const auto choice = model.OptimizeBatchSize(Placement{k, k > 4 ? 2 : 1}, limits);
    EXPECT_GE(choice.batch_size, limits.min_batch);
    EXPECT_LE(choice.batch_size, limits.MaxFeasible(k));
    EXPECT_GT(choice.goodput, 0.0);
    EXPECT_GT(choice.efficiency, 0.0);
    EXPECT_LE(choice.efficiency, 1.0);
  }
}

TEST(GoodputModelTest, EmptyPlacementYieldsZero) {
  const GoodputModel model(TypicalParams(), 500.0, 128);
  const auto choice = model.OptimizeBatchSize(Placement{0, 0}, TypicalLimits());
  EXPECT_EQ(choice.batch_size, 0);
  EXPECT_DOUBLE_EQ(choice.goodput, 0.0);
}

TEST(GoodputModelTest, HigherNoiseScalePrefersLargerBatches) {
  // The Fig. 1b phenomenon: later in training (larger phi), the optimal batch
  // size grows for the same allocation.
  const BatchLimits limits = TypicalLimits();
  const GoodputModel early(TypicalParams(), 200.0, 128);
  const GoodputModel late(TypicalParams(), 20000.0, 128);
  const Placement placement{16, 4};
  EXPECT_LT(early.OptimizeBatchSize(placement, limits).batch_size,
            late.OptimizeBatchSize(placement, limits).batch_size);
}

TEST(GoodputModelTest, MoreGpusPreferLargerBatches) {
  const BatchLimits limits = TypicalLimits();
  const GoodputModel model(TypicalParams(), 5000.0, 128);
  const auto small = model.OptimizeBatchSize(Placement{2, 1}, limits);
  const auto large = model.OptimizeBatchSize(Placement{16, 4}, limits);
  EXPECT_LE(small.batch_size, large.batch_size);
}

TEST(SpeedupTest, SingleGpuIsUnity) {
  const GoodputModel model(TypicalParams(), 1000.0, 128);
  EXPECT_NEAR(Speedup(model, Placement{1, 1}, TypicalLimits()), 1.0, 1e-9);
}

TEST(SpeedupTest, EmptyPlacementIsZero) {
  const GoodputModel model(TypicalParams(), 1000.0, 128);
  EXPECT_DOUBLE_EQ(Speedup(model, Placement{0, 0}, TypicalLimits()), 0.0);
}

TEST(SpeedupTest, SublinearInGpus) {
  const GoodputModel model(TypicalParams(), 1000.0, 128);
  const BatchLimits limits = TypicalLimits();
  for (int k : {2, 4, 8, 16}) {
    const double speedup = Speedup(model, Placement{k, (k + 3) / 4}, limits);
    EXPECT_GT(speedup, 1.0) << "K=" << k;
    EXPECT_LT(speedup, static_cast<double>(k) + 1e-9) << "K=" << k;
  }
}

TEST(SpeedupTest, CoLocatedBeatsSpread) {
  const GoodputModel model(TypicalParams(), 1000.0, 128);
  const BatchLimits limits = TypicalLimits();
  EXPECT_GT(Speedup(model, Placement{4, 1}, limits), Speedup(model, Placement{4, 4}, limits));
}

// Property sweep: goodput must be unimodal in the batch size for a range of
// noise scales (the assumption behind golden-section batch tuning).
class GoodputUnimodalSweep : public ::testing::TestWithParam<double> {};

TEST_P(GoodputUnimodalSweep, UnimodalInBatchSize) {
  const GoodputModel model(TypicalParams(), GetParam(), 128);
  const Placement placement{8, 2};
  int direction_changes = 0;
  double previous = model.GoodputAt(placement, 128.0);
  bool rising = true;
  for (long m = 160; m <= 16384; m += 32) {
    const double value = model.GoodputAt(placement, static_cast<double>(m));
    if (rising && value < previous - 1e-9) {
      rising = false;
      ++direction_changes;
    } else if (!rising && value > previous + 1e-9) {
      rising = true;
      ++direction_changes;
    }
    previous = value;
  }
  EXPECT_LE(direction_changes, 1);
}

INSTANTIATE_TEST_SUITE_P(NoiseScales, GoodputUnimodalSweep,
                         ::testing::Values(0.0, 100.0, 1000.0, 10000.0, 1e6));

}  // namespace
}  // namespace pollux
