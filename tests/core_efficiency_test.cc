#include "core/efficiency.h"

#include <gtest/gtest.h>

namespace pollux {
namespace {

TEST(EfficiencyTest, GnsFromMoments) {
  // phi = m0 * sigma^2 / mu^2.
  EXPECT_DOUBLE_EQ(GradientNoiseScale(128.0, 4.0, 2.0), 256.0);
  EXPECT_DOUBLE_EQ(GradientNoiseScale(128.0, 0.0, 2.0), 0.0);
  // Degenerate squared norm clamps to zero instead of dividing by zero.
  EXPECT_DOUBLE_EQ(GradientNoiseScale(128.0, 4.0, 0.0), 0.0);
  // Negative variance estimates (possible from unbiased estimators) clamp.
  EXPECT_DOUBLE_EQ(GradientNoiseScale(128.0, -1.0, 2.0), 0.0);
}

TEST(EfficiencyTest, UnityAtBaseBatch) {
  EXPECT_DOUBLE_EQ(StatisticalEfficiency(1000.0, 128.0, 128.0), 1.0);
  EXPECT_DOUBLE_EQ(AdaScaleGain(1000.0, 128.0, 128.0), 1.0);
}

TEST(EfficiencyTest, ZeroNoiseIsWorstCase) {
  // With no gradient noise, a larger batch contributes nothing extra:
  // efficiency = m0/m and gain stays 1.
  EXPECT_DOUBLE_EQ(StatisticalEfficiency(0.0, 128.0, 512.0), 0.25);
  EXPECT_DOUBLE_EQ(AdaScaleGain(0.0, 128.0, 512.0), 1.0);
}

TEST(EfficiencyTest, InfiniteNoiseLimit) {
  // As phi -> inf, large batches become free: efficiency -> 1, gain -> m/m0.
  EXPECT_NEAR(StatisticalEfficiency(1e12, 128.0, 512.0), 1.0, 1e-6);
  EXPECT_NEAR(AdaScaleGain(1e12, 128.0, 512.0), 4.0, 1e-6);
}

TEST(EfficiencyTest, AppendixAIdentity) {
  // EFFICIENCY(m) == r_t * m0 / m for all phi, m (Appendix A).
  for (double phi : {0.0, 10.0, 500.0, 1e5}) {
    for (double m : {128.0, 256.0, 1000.0, 8192.0}) {
      const double m0 = 128.0;
      EXPECT_NEAR(StatisticalEfficiency(phi, m0, m), AdaScaleGain(phi, m0, m) * m0 / m, 1e-12);
    }
  }
}

// Property sweep over noise scales: efficiency lies in (0, 1], decreases in
// m, and the gain increases in m but never exceeds m/m0.
class EfficiencySweep : public ::testing::TestWithParam<double> {};

TEST_P(EfficiencySweep, EfficiencyBoundsAndMonotonicity) {
  const double phi = GetParam();
  const double m0 = 128.0;
  double previous_eff = 1.0 + 1e-12;
  double previous_gain = 1.0 - 1e-12;
  for (double m = m0; m <= 16384.0; m *= 2.0) {
    const double eff = StatisticalEfficiency(phi, m0, m);
    const double gain = AdaScaleGain(phi, m0, m);
    EXPECT_GT(eff, 0.0);
    EXPECT_LE(eff, 1.0);
    EXPECT_LE(eff, previous_eff) << "m=" << m;
    EXPECT_GE(gain, previous_gain) << "m=" << m;
    EXPECT_GE(gain, 1.0 - 1e-12);
    EXPECT_LE(gain, m / m0 + 1e-12);
    previous_eff = eff;
    previous_gain = gain;
  }
}

INSTANTIATE_TEST_SUITE_P(NoiseScales, EfficiencySweep,
                         ::testing::Values(0.0, 1.0, 64.0, 128.0, 1024.0, 65536.0, 1e9));

// Higher noise (later training) means higher efficiency at any fixed large
// batch — the mechanism behind Fig. 2a's narrowing gap.
TEST(EfficiencyTest, LaterTrainingToleratesLargerBatches) {
  const double m0 = 128.0;
  const double m = 4096.0;
  EXPECT_LT(StatisticalEfficiency(100.0, m0, m), StatisticalEfficiency(1000.0, m0, m));
  EXPECT_LT(StatisticalEfficiency(1000.0, m0, m), StatisticalEfficiency(10000.0, m0, m));
}

}  // namespace
}  // namespace pollux
