#include "core/autoscaler.h"

#include <gtest/gtest.h>

#include <cmath>

namespace pollux {
namespace {

AutoscaleConfig DefaultConfig() {
  AutoscaleConfig config;
  config.low_util_threshold = 0.4;
  config.high_util_threshold = 0.8;
  config.min_nodes = 1;
  config.max_nodes = 16;
  return config;
}

// A synthetic utility curve: total speedup saturates at `saturation`, so
// utility(n) = min(n, saturation) / n, strictly decreasing past saturation.
std::function<double(int)> SaturatingUtility(double saturation) {
  return [saturation](int nodes) {
    return std::min(static_cast<double>(nodes), saturation) / static_cast<double>(nodes);
  };
}

TEST(AutoscalerTest, NoChangeInsideBand) {
  const auto decision = DecideNodeCount(DefaultConfig(), 8, 0.6, SaturatingUtility(5.0));
  EXPECT_FALSE(decision.changed);
  EXPECT_EQ(decision.target_nodes, 8);
  EXPECT_EQ(decision.probes, 0);
}

TEST(AutoscalerTest, ScalesOutWhenUtilityHigh) {
  // Utility 1.0 at 4 nodes: the job saturates at ~10 nodes, so the search
  // should grow the cluster toward the band midpoint (0.6).
  const auto utility = SaturatingUtility(10.0);
  const auto decision = DecideNodeCount(DefaultConfig(), 4, utility(4), utility);
  EXPECT_TRUE(decision.changed);
  EXPECT_GT(decision.target_nodes, 4);
  // utility(16) = 0.625, closest to 0.6 among the searched sizes.
  EXPECT_NEAR(utility(decision.target_nodes), 0.6, 0.15);
  EXPECT_GT(decision.probes, 0);
}

TEST(AutoscalerTest, ScalesInWhenUtilityLow) {
  const auto utility = SaturatingUtility(2.0);
  const auto decision = DecideNodeCount(DefaultConfig(), 16, utility(16), utility);
  EXPECT_TRUE(decision.changed);
  EXPECT_LT(decision.target_nodes, 16);
  EXPECT_NEAR(utility(decision.target_nodes), 0.6, 0.15);
}

TEST(AutoscalerTest, RespectsMinAndMaxNodes) {
  AutoscaleConfig config = DefaultConfig();
  config.min_nodes = 4;
  config.max_nodes = 8;
  // Utility extremely low: wants to shrink, but not below min_nodes.
  const auto low = DecideNodeCount(config, 8, 0.01, [](int) { return 0.01; });
  EXPECT_GE(low.target_nodes, 4);
  // Utility extremely high: wants to grow, but not beyond max_nodes.
  const auto high = DecideNodeCount(config, 4, 0.99, [](int) { return 0.99; });
  EXPECT_LE(high.target_nodes, 8);
}

TEST(AutoscalerTest, ClampsCurrentIntoRange) {
  AutoscaleConfig config = DefaultConfig();
  config.min_nodes = 2;
  config.max_nodes = 6;
  const auto decision = DecideNodeCount(config, 10, 0.6, SaturatingUtility(4.0));
  EXPECT_EQ(decision.target_nodes, 6);
  EXPECT_TRUE(decision.changed);
}

TEST(AutoscalerTest, DegenerateRangeReturnsImmediately) {
  AutoscaleConfig config = DefaultConfig();
  config.min_nodes = 5;
  config.max_nodes = 5;
  const auto decision = DecideNodeCount(config, 5, 0.99, SaturatingUtility(100.0));
  EXPECT_EQ(decision.target_nodes, 5);
  EXPECT_FALSE(decision.changed);
}

}  // namespace
}  // namespace pollux
