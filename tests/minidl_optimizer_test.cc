#include "minidl/optimizer.h"

#include <gtest/gtest.h>

#include <cmath>

#include "minidl/dataset.h"
#include "minidl/mlp.h"
#include "minidl/trainer.h"

namespace pollux {
namespace {

TEST(SgdOptimizerTest, PlainSgdMatchesDirectUpdate) {
  SgdOptimizer sgd(2);
  std::vector<double> params = {1.0, -2.0};
  sgd.Step(params, {0.5, -0.25}, 0.1);
  EXPECT_DOUBLE_EQ(params[0], 1.0 - 0.1 * 0.5);
  EXPECT_DOUBLE_EQ(params[1], -2.0 + 0.1 * 0.25);
}

TEST(SgdOptimizerTest, MomentumAccumulatesVelocity) {
  SgdOptions options;
  options.momentum = 0.9;
  SgdOptimizer sgd(1, options);
  std::vector<double> params = {0.0};
  // Two steps with constant gradient 1: v1 = 1, v2 = 1.9.
  sgd.Step(params, {1.0}, 0.1);
  EXPECT_NEAR(params[0], -0.1, 1e-12);
  sgd.Step(params, {1.0}, 0.1);
  EXPECT_NEAR(params[0], -0.1 - 0.19, 1e-12);
  EXPECT_NEAR(sgd.velocity()[0], 1.9, 1e-12);
}

TEST(SgdOptimizerTest, NesterovLookahead) {
  SgdOptions options;
  options.momentum = 0.9;
  options.nesterov = true;
  SgdOptimizer sgd(1, options);
  std::vector<double> params = {0.0};
  sgd.Step(params, {1.0}, 0.1);
  // v = 1; step along g + mu*v = 1.9.
  EXPECT_NEAR(params[0], -0.19, 1e-12);
}

TEST(SgdOptimizerTest, WeightDecayShrinksParameters) {
  SgdOptions options;
  options.weight_decay = 0.1;
  SgdOptimizer sgd(1, options);
  std::vector<double> params = {2.0};
  sgd.Step(params, {0.0}, 0.5);
  EXPECT_NEAR(params[0], 2.0 - 0.5 * 0.1 * 2.0, 1e-12);
}

TEST(SgdOptimizerTest, ResetClearsVelocity) {
  SgdOptions options;
  options.momentum = 0.9;
  SgdOptimizer sgd(1, options);
  std::vector<double> params = {0.0};
  sgd.Step(params, {1.0}, 0.1);
  sgd.Reset();
  EXPECT_DOUBLE_EQ(sgd.velocity()[0], 0.0);
}

TEST(StepDecayTest, DecaysAtMilestones) {
  StepDecaySchedule schedule(1.0, {100, 200}, 0.1);
  EXPECT_DOUBLE_EQ(schedule.LearningRateAt(0), 1.0);
  EXPECT_DOUBLE_EQ(schedule.LearningRateAt(99), 1.0);
  EXPECT_DOUBLE_EQ(schedule.LearningRateAt(100), 0.1);
  EXPECT_NEAR(schedule.LearningRateAt(200), 0.01, 1e-15);
  EXPECT_NEAR(schedule.LearningRateAt(100000), 0.01, 1e-15);
}

TEST(StepDecayTest, UnsortedMilestonesAreSorted) {
  StepDecaySchedule schedule(1.0, {200, 100}, 0.5);
  EXPECT_DOUBLE_EQ(schedule.LearningRateAt(150), 0.5);
}

TEST(TrainerScheduleTest, MomentumSgdStillConverges) {
  const Dataset data = MakeSyntheticRegression(512, 6, 0, 0.05, 91);
  Mlp model(6, 0, 93);
  TrainerOptions options;
  options.base_batch_size = 32;
  options.base_lr = 0.02;
  options.replicas = 2;
  options.seed = 95;
  options.sgd.momentum = 0.9;
  DataParallelTrainer trainer(&model, &data, options);
  const double initial = trainer.FullLoss();
  for (int step = 0; step < 200; ++step) {
    trainer.Step(32);
  }
  EXPECT_LT(trainer.FullLoss(), 0.25 * initial);
}

TEST(TrainerScheduleTest, LrScheduleAppliesThroughAdaScale) {
  const Dataset data = MakeSyntheticRegression(256, 4, 0, 0.2, 97);
  Mlp model(4, 0, 99);
  TrainerOptions options;
  options.base_batch_size = 32;
  options.base_lr = 0.1;
  options.replicas = 2;
  options.seed = 101;
  options.lr_milestones = {10};
  options.lr_decay_factor = 0.1;
  DataParallelTrainer trainer(&model, &data, options);
  // After 9 steps the AdaScale step counter is 9 (< milestone 10).
  for (int step = 0; step < 9; ++step) {
    trainer.Step(32);
  }
  const double before_decay = trainer.last_learning_rate();
  trainer.Step(32);
  const double after_decay = trainer.last_learning_rate();
  // The decay factor dominates any AdaScale gain movement at fixed m = m0
  // (where the gain is identically 1).
  EXPECT_NEAR(after_decay / before_decay, 0.1, 1e-9);
}

}  // namespace
}  // namespace pollux
