#include "workload/trace_io.h"

#include <gtest/gtest.h>

#include <sstream>

namespace pollux {
namespace {

TEST(TraceIoTest, RoundTripPreservesEverything) {
  TraceOptions options;
  options.num_jobs = 50;
  options.seed = 21;
  options.user_configured_fraction = 0.5;
  const auto original = GenerateTrace(options);

  std::stringstream buffer;
  WriteTraceCsv(buffer, original);
  const auto parsed = ReadTraceCsv(buffer);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ((*parsed)[i].job_id, original[i].job_id);
    EXPECT_EQ((*parsed)[i].model, original[i].model);
    EXPECT_NEAR((*parsed)[i].submit_time, original[i].submit_time, 1e-3);
    EXPECT_EQ((*parsed)[i].requested_gpus, original[i].requested_gpus);
    EXPECT_EQ((*parsed)[i].batch_size, original[i].batch_size);
    EXPECT_EQ((*parsed)[i].user_configured, original[i].user_configured);
  }
}

TEST(TraceIoTest, ModelKindNameRoundTrip) {
  for (ModelKind kind : AllModelKinds()) {
    const auto parsed = ModelKindFromName(ModelKindName(kind));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(ModelKindFromName("gpt-17").has_value());
}

TEST(TraceIoTest, EmptyTraceRoundTrips) {
  std::stringstream buffer;
  WriteTraceCsv(buffer, {});
  const auto parsed = ReadTraceCsv(buffer);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->empty());
}

TEST(TraceIoTest, RejectsEmptyInput) {
  std::istringstream empty("");
  std::string error;
  EXPECT_FALSE(ReadTraceCsv(empty, &error).has_value());
  EXPECT_NE(error.find("empty"), std::string::npos);
}

TEST(TraceIoTest, RejectsWrongHeader) {
  std::istringstream bad("id,foo\n1,2\n");
  std::string error;
  EXPECT_FALSE(ReadTraceCsv(bad, &error).has_value());
  EXPECT_NE(error.find("header"), std::string::npos);
}

TEST(TraceIoTest, RejectsUnknownModel) {
  std::istringstream bad(
      "job_id,model,submit_time,requested_gpus,batch_size,user_configured\n"
      "0,alexnet,0,1,128,0\n");
  std::string error;
  EXPECT_FALSE(ReadTraceCsv(bad, &error).has_value());
  EXPECT_NE(error.find("unknown model"), std::string::npos);
}

TEST(TraceIoTest, RejectsMalformedFields) {
  const std::string header =
      "job_id,model,submit_time,requested_gpus,batch_size,user_configured\n";
  for (const std::string row : {
           "x,resnet18-cifar10,0,1,128,0\n",     // Bad id.
           "0,resnet18-cifar10,-5,1,128,0\n",    // Negative submit.
           "0,resnet18-cifar10,0,0,128,0\n",     // Zero GPUs.
           "0,resnet18-cifar10,0,1,abc,0\n",     // Bad batch.
           "0,resnet18-cifar10,0,1,128,2\n",     // Bad flag.
           "0,resnet18-cifar10,0,1,128\n",       // Missing field.
       }) {
    std::istringstream bad(header + row);
    std::string error;
    EXPECT_FALSE(ReadTraceCsv(bad, &error).has_value()) << row;
    EXPECT_FALSE(error.empty());
  }
}

TEST(TraceIoTest, RejectsNonFiniteAndOverflowingNumbers) {
  const std::string header =
      "job_id,model,submit_time,requested_gpus,batch_size,user_configured\n";
  for (const std::string row : {
           "0,resnet18-cifar10,inf,1,128,0\n",     // Infinite submit time.
           "0,resnet18-cifar10,nan,1,128,0\n",     // NaN submit time.
           "0,resnet18-cifar10,1e999,1,128,0\n",   // Double overflow (ERANGE).
           "0,resnet18-cifar10,-1e999,1,128,0\n",  // Negative overflow.
           "99999999999999999999999,resnet18-cifar10,0,1,128,0\n",  // Long overflow.
           "0,resnet18-cifar10,0,1,99999999999999999999999,0\n",    // Batch overflow.
       }) {
    std::istringstream bad(header + row);
    std::string error;
    EXPECT_FALSE(ReadTraceCsv(bad, &error).has_value()) << row;
    EXPECT_FALSE(error.empty()) << row;
    EXPECT_NE(error.find("line 2"), std::string::npos) << error;
  }
}

TEST(TraceIoTest, SubmitTimesRoundTripBitExactly) {
  // Snapshot-embedded traces (sim/checkpoint.h) replay through ReadTraceCsv
  // on resume; submit times must survive the text round trip bit-for-bit or
  // resumed runs diverge from uninterrupted ones.
  std::vector<JobSpec> jobs(3);
  for (size_t i = 0; i < jobs.size(); ++i) {
    jobs[i].job_id = i;
    jobs[i].model = ModelKind::kResNet18Cifar10;
    jobs[i].requested_gpus = 1;
    jobs[i].batch_size = 128;
  }
  jobs[0].submit_time = 0.1;                    // Not representable in binary.
  jobs[1].submit_time = 1234.5678901234567;     // Needs all 17 digits.
  jobs[2].submit_time = 3.0000000000000004;     // One ulp above 3.
  std::stringstream buffer;
  WriteTraceCsv(buffer, jobs);
  const auto parsed = ReadTraceCsv(buffer);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), jobs.size());
  for (size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ((*parsed)[i].submit_time, jobs[i].submit_time) << i;
  }
}

TEST(TraceIoTest, ToleratesCarriageReturnsAndBlankLines) {
  std::istringstream input(
      "job_id,model,submit_time,requested_gpus,batch_size,user_configured\r\n"
      "0,neumf-movielens,12.5,2,1024,1\r\n"
      "\n"
      "1,yolov3-voc,99,4,32,0\n");
  const auto parsed = ReadTraceCsv(input);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ((*parsed)[0].model, ModelKind::kNeuMFMovieLens);
  EXPECT_TRUE((*parsed)[0].user_configured);
  EXPECT_EQ((*parsed)[1].model, ModelKind::kYoloV3Voc);
  EXPECT_EQ((*parsed)[1].requested_gpus, 4);
}

}  // namespace
}  // namespace pollux
