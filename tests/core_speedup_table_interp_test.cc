// Property tests for the SpeedupTable's geometric grid + interpolation: the
// interpolated speedup must stay close to the exact (per-K optimized)
// speedup everywhere, since scheduling quality depends on it.

#include <gtest/gtest.h>

#include "core/speedup_table.h"

namespace pollux {
namespace {

GoodputModel MakeModel(double phi) {
  ThroughputParams params;
  params.alpha_grad = 0.04;
  params.beta_grad = 3e-4;
  params.alpha_sync_local = 0.02;
  params.beta_sync_local = 0.001;
  params.alpha_sync_node = 0.09;
  params.beta_sync_node = 0.005;
  params.gamma = 2.0;
  return GoodputModel(params, phi, 128);
}

BatchLimits MakeLimits() { return BatchLimits{128, 32768, 1024}; }

class SpeedupInterpolationSweep : public ::testing::TestWithParam<double> {};

TEST_P(SpeedupInterpolationSweep, CloseToExactEverywhere) {
  const GoodputModel model = MakeModel(GetParam());
  const BatchLimits limits = MakeLimits();
  const SpeedupTable table(model, limits, 64);
  for (int k = 1; k <= 64; ++k) {
    for (int nodes : {1, 2}) {
      const double exact = Speedup(model, Placement{k, nodes}, limits);
      const double interpolated = table.At(k, nodes);
      EXPECT_NEAR(interpolated, exact, 0.03 * exact + 1e-9)
          << "K=" << k << " N=" << nodes << " phi=" << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(NoiseScales, SpeedupInterpolationSweep,
                         ::testing::Values(0.0, 100.0, 1000.0, 20000.0, 1e6));

TEST(SpeedupTableGridTest, GridPointsAreExact) {
  const GoodputModel model = MakeModel(1000.0);
  const BatchLimits limits = MakeLimits();
  const SpeedupTable table(model, limits, 64);
  // Dense region and max are always grid points.
  for (int k : {1, 2, 3, 4, 5, 6, 7, 8, 64}) {
    EXPECT_NEAR(table.At(k, 2), Speedup(model, Placement{k, 2}, limits), 1e-9) << k;
  }
}

TEST(SpeedupTableGridTest, MonotoneInGpusForWellBehavedModel) {
  // With zero retrogression slopes, speedup should be nondecreasing in K —
  // and so should the interpolated table.
  ThroughputParams params;
  params.alpha_grad = 0.04;
  params.beta_grad = 3e-4;
  params.alpha_sync_local = 0.02;
  params.alpha_sync_node = 0.09;
  params.gamma = 2.0;
  const GoodputModel model(params, 5000.0, 128);
  const SpeedupTable table(model, MakeLimits(), 64);
  double previous = 0.0;
  for (int k = 1; k <= 64; ++k) {
    const double speedup = table.At(k, 2);
    EXPECT_GE(speedup, previous - 1e-9) << "K=" << k;
    previous = speedup;
  }
}

TEST(SpeedupTableGridTest, SmallMaxGpusIsDense) {
  const GoodputModel model = MakeModel(1000.0);
  const SpeedupTable table(model, MakeLimits(), 4);
  EXPECT_EQ(table.max_gpus(), 4);
  for (int k = 1; k <= 4; ++k) {
    EXPECT_NEAR(table.At(k, 1), Speedup(model, Placement{k, 1}, MakeLimits()), 1e-9);
  }
}

TEST(SpeedupTableGridTest, EmptyTableBehaviour) {
  SpeedupTable table;
  EXPECT_TRUE(table.empty());
  EXPECT_DOUBLE_EQ(table.At(4, 1), 0.0);
  EXPECT_EQ(table.BatchSizeAt(4, 1), 0);
}

}  // namespace
}  // namespace pollux
