// Crash-consistent checkpoint/restore and scheduler-failover recovery:
// warm resumes are byte-identical to uninterrupted runs across every
// (policy x engine x fault-profile x seed) combination, snapshots round-trip
// through save -> load -> save bit-exactly, torn/corrupt/future-version
// snapshots are detected with clear errors and fall back to the previous
// snapshot, cold scheduler recovery completes every job, and the bench-config
// codec embedded in each snapshot round-trips every run-defining knob.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/common.h"
#include "obs/metrics.h"
#include "sim/checkpoint.h"
#include "sim/pollux_policy.h"
#include "sim/simulator.h"
#include "workload/trace_gen.h"

namespace pollux {
namespace {

std::vector<JobSpec> SmallTrace(uint64_t seed) {
  TraceOptions options;
  options.num_jobs = 10;
  options.duration = 1800.0;
  options.max_gpus = 8;
  options.seed = seed;
  auto jobs = GenerateTrace(options);
  for (auto& job : jobs) {
    // Keep the sweep fast: long-running models become small ones.
    if (job.model != ModelKind::kResNet18Cifar10 && job.model != ModelKind::kNeuMFMovieLens) {
      job.model = ModelKind::kNeuMFMovieLens;
      job.batch_size = 2048;
      job.requested_gpus = std::min(job.requested_gpus, 4);
    }
  }
  return jobs;
}

BenchSimConfig SmallConfig(SimEngine engine, const char* fault_profile, uint64_t seed) {
  BenchSimConfig config;
  config.engine = engine;
  config.nodes = 2;
  config.gpus_per_node = 4;
  config.ga_population = 12;
  config.ga_generations = 6;
  config.seed = seed;
  config.check_invariants = true;
  EXPECT_TRUE(FaultProfileByName(fault_profile, &config.faults));
  if (config.faults.enabled()) {
    // The profiles' day-scale MTBFs never fire inside a short trace; shrink
    // them so the sweep actually exercises crash/repair around resumes.
    config.faults.mtbf_node = 1800.0;
    config.faults.repair_time = 120.0;
  }
  return config;
}

// Exact textual fingerprint of a run: every job field, every event, every
// timeline sample, and the summary scalars at full double precision. Two
// runs with equal fingerprints are byte-identical for every exported CSV.
std::string FormatResult(const SimResult& result, bool skip_sched_crash_events = false) {
  std::ostringstream out;
  out.precision(17);
  out << "makespan=" << result.makespan << " node_seconds=" << result.node_seconds
      << " timed_out=" << result.timed_out << '\n';
  for (const auto& job : result.jobs) {
    out << job.job_id << ' ' << ModelKindName(job.model) << ' ' << JobCategoryName(job.category)
        << ' ' << job.submit_time << ' ' << job.start_time << ' ' << job.finish_time << ' '
        << job.gpu_time << ' ' << job.num_restarts << ' ' << job.num_evictions << ' '
        << job.num_restart_failures << ' ' << job.backoff_seconds << ' ' << job.avg_efficiency
        << ' ' << job.avg_throughput << ' ' << job.avg_goodput << ' ' << job.completed << '\n';
  }
  for (const auto& event : result.events) {
    if (skip_sched_crash_events && event.kind == SimEventKind::kSchedCrash) {
      continue;
    }
    out << event.time << ' ' << SimEventKindName(event.kind) << ' ' << event.job_id << ' '
        << event.gpus << ' ' << event.nodes << '\n';
  }
  for (const auto& sample : result.timeline) {
    out << sample.time << ' ' << sample.nodes << ' ' << sample.total_gpus << ' '
        << sample.gpus_in_use << ' ' << sample.running_jobs << ' ' << sample.mean_efficiency
        << ' ' << sample.utility << ' ' << sample.max_batch_size << '\n';
  }
  return out.str();
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::string FreshDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/pollux_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

// ---------------------------------------------------------------------------
// Warm-resume determinism sweep.
// ---------------------------------------------------------------------------

struct CheckpointCase {
  const char* policy;
  const char* engine;  // "event" | "ticked"
  const char* faults;  // "none" | "light"
  uint64_t seed;
};

class CheckpointResumeSweep : public ::testing::TestWithParam<CheckpointCase> {};

TEST_P(CheckpointResumeSweep, ResumeIsByteIdenticalToUninterruptedRun) {
  const CheckpointCase c = GetParam();
  SimEngine engine = SimEngine::kEvent;
  ASSERT_TRUE(SimEngineByName(c.engine, &engine));
  const BenchSimConfig config = SmallConfig(engine, c.faults, c.seed);
  const std::vector<JobSpec> trace = SmallTrace(c.seed);

  const SimResult full = RunImportedTrace(c.policy, config, trace);
  ASSERT_FALSE(full.timed_out);
  ASSERT_FALSE(full.halted);

  const std::string dir = FreshDir(std::string("ckpt_") + c.policy + "_" + c.engine + "_" +
                                   c.faults + "_" + std::to_string(c.seed));
  BenchSimConfig halted_config = config;
  halted_config.checkpoint_every = 300.0;
  halted_config.checkpoint_dir = dir;
  halted_config.halt_after_checkpoint = 600.0;
  const SimResult halted = RunImportedTrace(c.policy, halted_config, trace);
  ASSERT_TRUE(halted.halted);
  ASSERT_FALSE(ListSnapshotFiles(dir).empty());

  SimResult resumed;
  std::string policy;
  std::string error;
  ASSERT_TRUE(ResumeBenchFromSnapshot(dir, BenchResumeOptions{}, &resumed, &policy, &error))
      << error;
  EXPECT_EQ(policy, c.policy);
  EXPECT_FALSE(resumed.halted);
  EXPECT_EQ(FormatResult(resumed), FormatResult(full));
  std::filesystem::remove_all(dir);
}

std::string CaseName(const ::testing::TestParamInfo<CheckpointCase>& info) {
  std::string name = std::string(info.param.policy) + "_" + info.param.engine + "_" +
                     info.param.faults + "_seed" + std::to_string(info.param.seed);
  std::replace(name.begin(), name.end(), '-', '_');
  return name;
}

INSTANTIATE_TEST_SUITE_P(PolicyEngineFaultSeed, CheckpointResumeSweep,
                         ::testing::Values(CheckpointCase{"pollux", "event", "none", 1},
                                           CheckpointCase{"pollux", "ticked", "none", 1},
                                           CheckpointCase{"pollux", "event", "light", 2},
                                           CheckpointCase{"pollux", "ticked", "light", 2},
                                           CheckpointCase{"pollux-fixed-batch", "event", "none", 3},
                                           CheckpointCase{"tiresias", "event", "light", 1},
                                           CheckpointCase{"tiresias", "ticked", "none", 2},
                                           CheckpointCase{"fifo", "event", "none", 2},
                                           CheckpointCase{"optimus", "event", "light", 3},
                                           CheckpointCase{"optimus", "ticked", "none", 1}),
                         CaseName);

// ---------------------------------------------------------------------------
// Snapshot format round trip.
// ---------------------------------------------------------------------------

SchedConfig SmallSchedConfig(uint64_t seed) {
  SchedConfig sched_config;
  sched_config.ga.population_size = 12;
  sched_config.ga.generations = 6;
  sched_config.ga.seed = seed;
  return sched_config;
}

TEST(SnapshotRoundTripTest, SaveLoadSaveIsByteIdentical) {
  const uint64_t seed = 5;
  const std::vector<JobSpec> trace = SmallTrace(seed);
  const std::string dir = FreshDir("ckpt_roundtrip");
  std::filesystem::create_directories(dir);
  SimOptions options;
  options.engine = SimEngine::kEvent;
  options.cluster = ClusterSpec::Homogeneous(2, 4);
  options.seed = seed;
  ASSERT_TRUE(FaultProfileByName("light", &options.faults));
  options.faults.mtbf_node = 1800.0;
  options.faults.repair_time = 120.0;
  options.checkpoint_every = 600.0;
  options.checkpoint_dir = dir;
  options.halt_after_checkpoint = 600.0;
  {
    PolluxPolicy policy(options.cluster, SmallSchedConfig(seed));
    const SimResult halted = Simulator(options, trace, &policy).Run();
    ASSERT_TRUE(halted.halted);
  }
  std::string error;
  const std::string path = ResolveSnapshotPath(dir, &error);
  ASSERT_FALSE(path.empty()) << error;

  SimOptions resume_options = options;
  resume_options.checkpoint_every = 0.0;
  resume_options.checkpoint_dir.clear();
  resume_options.halt_after_checkpoint = 0.0;
  PolluxPolicy policy(options.cluster, SmallSchedConfig(seed));
  Simulator sim(resume_options, trace, &policy);
  ASSERT_TRUE(sim.LoadSnapshot(path, &error)) << error;
  const std::string resaved = dir + "/resaved.bin";
  ASSERT_TRUE(sim.SaveSnapshot(resaved, &error)) << error;
  EXPECT_EQ(ReadFileBytes(resaved), ReadFileBytes(path));
  std::filesystem::remove_all(dir);
}

TEST(SnapshotRoundTripTest, LoadRejectsMismatchedRunConfiguration) {
  const uint64_t seed = 6;
  const std::vector<JobSpec> trace = SmallTrace(seed);
  const std::string dir = FreshDir("ckpt_mismatch");
  std::filesystem::create_directories(dir);
  SimOptions options;
  options.engine = SimEngine::kEvent;
  options.cluster = ClusterSpec::Homogeneous(2, 4);
  options.seed = seed;
  options.checkpoint_every = 600.0;
  options.checkpoint_dir = dir;
  options.halt_after_checkpoint = 600.0;
  {
    PolluxPolicy policy(options.cluster, SmallSchedConfig(seed));
    ASSERT_TRUE(Simulator(options, trace, &policy).Run().halted);
  }
  std::string error;
  const std::string path = ResolveSnapshotPath(dir, &error);
  ASSERT_FALSE(path.empty()) << error;

  // A different seed is an incompatible run configuration.
  SimOptions other = options;
  other.seed = seed + 1;
  PolluxPolicy policy(options.cluster, SmallSchedConfig(seed));
  Simulator sim(other, trace, &policy);
  EXPECT_FALSE(sim.LoadSnapshot(path, &error));
  EXPECT_NE(error.find("incompatible run configuration"), std::string::npos) << error;
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Torn / corrupt / future-version snapshots.
// ---------------------------------------------------------------------------

// Produces a directory with two valid snapshots (t=300 and t=600) plus the
// uninterrupted reference result for the same run.
struct CorruptFixture {
  std::string dir;
  std::vector<std::string> snapshots;  // Sorted ascending by time.
  SimResult full;
};

CorruptFixture MakeCorruptFixture(const std::string& name) {
  CorruptFixture fixture;
  const uint64_t seed = 7;
  const BenchSimConfig config = SmallConfig(SimEngine::kEvent, "none", seed);
  const std::vector<JobSpec> trace = SmallTrace(seed);
  fixture.full = RunImportedTrace("pollux", config, trace);
  fixture.dir = FreshDir(name);
  BenchSimConfig halted_config = config;
  halted_config.checkpoint_every = 300.0;
  halted_config.checkpoint_dir = fixture.dir;
  halted_config.halt_after_checkpoint = 600.0;
  EXPECT_TRUE(RunImportedTrace("pollux", halted_config, trace).halted);
  fixture.snapshots = ListSnapshotFiles(fixture.dir);
  EXPECT_EQ(fixture.snapshots.size(), 2u);
  return fixture;
}

uint64_t CorruptCount() {
  return obs::MetricsRegistry::Global().GetCounter("sim.checkpoint.corrupt")->value();
}

TEST(CorruptSnapshotTest, TruncatedSnapshotFallsBackToPreviousOne) {
  const CorruptFixture fixture = MakeCorruptFixture("ckpt_truncated");
  const std::string& newest = fixture.snapshots.back();
  const std::string bytes = ReadFileBytes(newest);
  WriteFileBytes(newest, bytes.substr(0, bytes.size() / 2));

  obs::MetricsRegistry::Global().SetEnabled(true);
  const uint64_t corrupt_before = CorruptCount();
  SimResult resumed;
  std::string policy;
  std::string error;
  ASSERT_TRUE(ResumeBenchFromSnapshot(fixture.dir, BenchResumeOptions{}, &resumed, &policy,
                                      &error))
      << error;
  EXPECT_GE(CorruptCount(), corrupt_before + 1);
  obs::MetricsRegistry::Global().SetEnabled(false);
  // The fallback snapshot still reproduces the uninterrupted run exactly.
  EXPECT_EQ(FormatResult(resumed), FormatResult(fixture.full));
  std::filesystem::remove_all(fixture.dir);
}

TEST(CorruptSnapshotTest, FlippedCrcByteIsDetectedAndFallsBack) {
  const CorruptFixture fixture = MakeCorruptFixture("ckpt_badcrc");
  const std::string& newest = fixture.snapshots.back();
  std::string bytes = ReadFileBytes(newest);
  ASSERT_GT(bytes.size(), 4u);
  bytes[bytes.size() - 1] = static_cast<char>(bytes[bytes.size() - 1] ^ 0xFF);
  WriteFileBytes(newest, bytes);

  // Direct-file resume reports the CRC failure instead of loading garbage.
  SimResult resumed;
  std::string policy;
  std::string error;
  EXPECT_FALSE(
      ResumeBenchFromSnapshot(newest, BenchResumeOptions{}, &resumed, &policy, &error));
  EXPECT_NE(error.find("CRC mismatch"), std::string::npos) << error;

  // Directory resume skips it and falls back to the previous snapshot.
  obs::MetricsRegistry::Global().SetEnabled(true);
  const uint64_t corrupt_before = CorruptCount();
  error.clear();
  ASSERT_TRUE(ResumeBenchFromSnapshot(fixture.dir, BenchResumeOptions{}, &resumed, &policy,
                                      &error))
      << error;
  EXPECT_GE(CorruptCount(), corrupt_before + 1);
  obs::MetricsRegistry::Global().SetEnabled(false);
  EXPECT_EQ(FormatResult(resumed), FormatResult(fixture.full));
  std::filesystem::remove_all(fixture.dir);
}

TEST(CorruptSnapshotTest, AllSnapshotsCorruptIsAClearError) {
  const CorruptFixture fixture = MakeCorruptFixture("ckpt_allbad");
  for (const std::string& path : fixture.snapshots) {
    const std::string bytes = ReadFileBytes(path);
    WriteFileBytes(path, bytes.substr(0, 16));  // Keep the magic, lose the rest.
  }
  SimResult resumed;
  std::string policy;
  std::string error;
  EXPECT_FALSE(
      ResumeBenchFromSnapshot(fixture.dir, BenchResumeOptions{}, &resumed, &policy, &error));
  EXPECT_NE(error.find("torn or corrupt"), std::string::npos) << error;
  std::filesystem::remove_all(fixture.dir);
}

TEST(CorruptSnapshotTest, FutureFormatVersionIsRejectedWithClearError) {
  const CorruptFixture fixture = MakeCorruptFixture("ckpt_future");
  const std::string& newest = fixture.snapshots.back();
  std::string bytes = ReadFileBytes(newest);
  ASSERT_GT(bytes.size(), 16u);
  // Bump the version word (offset 8, little-endian) and re-seal the CRC so
  // the version check itself is what fires.
  bytes[8] = 99;
  const uint32_t crc = Crc32(bytes.data() + 8, bytes.size() - 12);
  for (int i = 0; i < 4; ++i) {
    bytes[bytes.size() - 4 + static_cast<size_t>(i)] =
        static_cast<char>((crc >> (8 * i)) & 0xFF);
  }
  WriteFileBytes(newest, bytes);
  SimResult resumed;
  std::string policy;
  std::string error;
  EXPECT_FALSE(
      ResumeBenchFromSnapshot(newest, BenchResumeOptions{}, &resumed, &policy, &error));
  EXPECT_NE(error.find("newer than supported"), std::string::npos) << error;
  std::filesystem::remove_all(fixture.dir);
}

// ---------------------------------------------------------------------------
// Scheduler-crash recovery.
// ---------------------------------------------------------------------------

TEST(SchedulerCrashRecoveryTest, WarmRecoveryIsByteInvisible) {
  const uint64_t seed = 4;
  const std::vector<JobSpec> trace = SmallTrace(seed);
  const BenchSimConfig base = SmallConfig(SimEngine::kEvent, "light", seed);
  BenchSimConfig crashing = base;
  crashing.faults.mtbf_sched = 600.0;
  crashing.faults.sched_recovery = SchedRecovery::kWarm;
  const SimResult without = RunImportedTrace("pollux", base, trace);
  const SimResult with = RunImportedTrace("pollux", crashing, trace);
  int crashes = 0;
  for (const auto& event : with.events) {
    crashes += event.kind == SimEventKind::kSchedCrash ? 1 : 0;
  }
  ASSERT_GT(crashes, 0);
  // Warm restores are lossless: apart from the sched_crash log entries the
  // crashing run is byte-identical to the crash-free one.
  EXPECT_EQ(FormatResult(with, /*skip_sched_crash_events=*/true), FormatResult(without));
}

TEST(SchedulerCrashRecoveryTest, ColdRecoveryCompletesAllJobsAndExportsMetrics) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  registry.Reset();
  registry.SetEnabled(true);
  const uint64_t seed = 4;
  const std::vector<JobSpec> trace = SmallTrace(seed);
  SimOptions options;
  options.cluster = ClusterSpec::Homogeneous(2, 4);
  options.seed = seed;
  options.check_invariants = true;
  options.faults.mtbf_sched = 600.0;
  options.faults.sched_recovery = SchedRecovery::kCold;
  PolluxPolicy policy(options.cluster, SmallSchedConfig(seed));
  const SimResult result = Simulator(options, trace, &policy).Run();
  registry.SetEnabled(false);
  ASSERT_FALSE(result.timed_out);
  int crashes = 0;
  for (const auto& event : result.events) {
    crashes += event.kind == SimEventKind::kSchedCrash ? 1 : 0;
  }
  ASSERT_GT(crashes, 0);
  for (const auto& job : result.jobs) {
    EXPECT_TRUE(job.completed) << "job " << job.job_id;
    EXPECT_LE(job.num_restart_failures, 20) << "job " << job.job_id;
  }
  EXPECT_EQ(registry.GetCounter("sim.recovery.scheduler_crashes")->value(),
            static_cast<uint64_t>(crashes));
  EXPECT_EQ(registry.GetCounter("sim.recovery.cold_resets")->value(),
            static_cast<uint64_t>(crashes));
  EXPECT_EQ(registry.GetCounter("sim.recovery.warm_restores")->value(), 0u);
  EXPECT_GT(registry.GetCounter("sim.recovery.agents_reset")->value(), 0u);
  registry.Reset();
}

TEST(SchedulerCrashRecoveryTest, ColdRecoveryIsDeterministicPerSeed) {
  const uint64_t seed = 9;
  const std::vector<JobSpec> trace = SmallTrace(seed);
  BenchSimConfig config = SmallConfig(SimEngine::kEvent, "none", seed);
  config.faults.mtbf_sched = 700.0;
  config.faults.sched_recovery = SchedRecovery::kCold;
  const SimResult a = RunImportedTrace("pollux", config, trace);
  const SimResult b = RunImportedTrace("pollux", config, trace);
  EXPECT_EQ(FormatResult(a), FormatResult(b));
}

// ---------------------------------------------------------------------------
// Bench-config codec (the snapshot's embedded driver configuration).
// ---------------------------------------------------------------------------

TEST(BenchConfigCodecTest, RoundTripsEveryRunDefiningField) {
  BenchSimConfig config;
  config.engine = SimEngine::kTicked;
  config.nodes = 3;
  config.gpus_per_node = 2;
  config.jobs = 17;
  config.duration_hours = 1.25;
  config.load = 0.75;
  config.user_configured_fraction = 0.5;
  config.interference_slowdown = 0.33;
  config.interference_avoidance = false;
  config.weight_lambda = 0.125;
  config.ga_population = 9;
  config.ga_generations = 4;
  config.threads = 2;
  config.sched_interval = 45.0;
  config.restart_penalty = 0.1234567890123456;
  config.tick = 0.5;
  config.observation_noise = 0.01;
  config.gns_noise = 0.02;
  config.seed = 987654321;
  config.faults.mtbf_node = 1234.5;
  config.faults.repair_time = 77.7;
  config.faults.straggler_frac = 0.25;
  config.faults.straggler_slowdown = 1.75;
  config.faults.report_drop_rate = 0.05;
  config.faults.restart_fail_rate = 0.1;
  config.faults.restart_backoff_init = 10.0;
  config.faults.restart_backoff_cap = 300.0;
  config.faults.mtbf_sched = 900.0;
  config.faults.sched_recovery = SchedRecovery::kCold;
  config.check_invariants = true;
  config.round_time_budget = 0.25;

  BenchSimConfig decoded;
  ASSERT_TRUE(DecodeBenchSimConfig(EncodeBenchSimConfig(config), &decoded));
  EXPECT_EQ(decoded.engine, config.engine);
  EXPECT_EQ(decoded.nodes, config.nodes);
  EXPECT_EQ(decoded.gpus_per_node, config.gpus_per_node);
  EXPECT_EQ(decoded.jobs, config.jobs);
  EXPECT_EQ(decoded.duration_hours, config.duration_hours);
  EXPECT_EQ(decoded.load, config.load);
  EXPECT_EQ(decoded.user_configured_fraction, config.user_configured_fraction);
  EXPECT_EQ(decoded.interference_slowdown, config.interference_slowdown);
  EXPECT_EQ(decoded.interference_avoidance, config.interference_avoidance);
  EXPECT_EQ(decoded.weight_lambda, config.weight_lambda);
  EXPECT_EQ(decoded.ga_population, config.ga_population);
  EXPECT_EQ(decoded.ga_generations, config.ga_generations);
  EXPECT_EQ(decoded.threads, config.threads);
  EXPECT_EQ(decoded.sched_interval, config.sched_interval);
  EXPECT_EQ(decoded.restart_penalty, config.restart_penalty);
  EXPECT_EQ(decoded.tick, config.tick);
  EXPECT_EQ(decoded.observation_noise, config.observation_noise);
  EXPECT_EQ(decoded.gns_noise, config.gns_noise);
  EXPECT_EQ(decoded.seed, config.seed);
  EXPECT_EQ(decoded.faults.mtbf_node, config.faults.mtbf_node);
  EXPECT_EQ(decoded.faults.repair_time, config.faults.repair_time);
  EXPECT_EQ(decoded.faults.straggler_frac, config.faults.straggler_frac);
  EXPECT_EQ(decoded.faults.straggler_slowdown, config.faults.straggler_slowdown);
  EXPECT_EQ(decoded.faults.report_drop_rate, config.faults.report_drop_rate);
  EXPECT_EQ(decoded.faults.restart_fail_rate, config.faults.restart_fail_rate);
  EXPECT_EQ(decoded.faults.restart_backoff_init, config.faults.restart_backoff_init);
  EXPECT_EQ(decoded.faults.restart_backoff_cap, config.faults.restart_backoff_cap);
  EXPECT_EQ(decoded.faults.mtbf_sched, config.faults.mtbf_sched);
  EXPECT_EQ(decoded.faults.sched_recovery, config.faults.sched_recovery);
  EXPECT_EQ(decoded.check_invariants, config.check_invariants);
  EXPECT_EQ(decoded.round_time_budget, config.round_time_budget);
}

TEST(BenchConfigCodecTest, CheckpointKnobsAreRunLocalAndNotEncoded) {
  BenchSimConfig config;
  config.checkpoint_every = 300.0;
  config.checkpoint_dir = "/tmp/somewhere";
  config.halt_after_checkpoint = 600.0;
  const std::string encoded = EncodeBenchSimConfig(config);
  EXPECT_EQ(encoded.find("checkpoint"), std::string::npos);
  EXPECT_EQ(encoded.find("halt"), std::string::npos);
  BenchSimConfig decoded;
  ASSERT_TRUE(DecodeBenchSimConfig(encoded, &decoded));
  EXPECT_EQ(decoded.checkpoint_every, 0.0);
  EXPECT_TRUE(decoded.checkpoint_dir.empty());
  EXPECT_EQ(decoded.halt_after_checkpoint, 0.0);
}

TEST(BenchConfigCodecTest, RejectsGarbageAndUnknownKeys) {
  BenchSimConfig decoded;
  EXPECT_FALSE(DecodeBenchSimConfig("nodes=abc\n", &decoded));
  EXPECT_FALSE(DecodeBenchSimConfig("future_knob=1\n", &decoded));
  EXPECT_FALSE(DecodeBenchSimConfig("no_equals_sign\n", &decoded));
  EXPECT_FALSE(DecodeBenchSimConfig("engine=quantum\n", &decoded));
  EXPECT_TRUE(DecodeBenchSimConfig("", &decoded));  // Empty config = defaults.
}

}  // namespace
}  // namespace pollux
