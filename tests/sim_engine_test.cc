// Unit tests for the discrete-event engine primitives: deterministic queue
// ordering and tie-breaking, grid-clock arithmetic, recurring-timer
// semantics (including the interval-shorter-than-tick lag the legacy loop
// exhibits), and progress-integral completion solving.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/engine/event_queue.h"
#include "sim/engine/progress_integrator.h"
#include "sim/engine/sim_clock.h"
#include "sim/engine/timers.h"
#include "workload/model_profile.h"

namespace pollux {
namespace {

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue<int> queue;
  queue.Push(5.0, 0, 1);
  queue.Push(1.0, 0, 2);
  queue.Push(3.0, 0, 3);
  EXPECT_EQ(queue.size(), 3u);
  EXPECT_EQ(queue.Pop().payload, 2);
  EXPECT_EQ(queue.Pop().payload, 3);
  EXPECT_EQ(queue.Pop().payload, 1);
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueueTest, SameTimeBreaksTiesByPriorityThenSequence) {
  EventQueue<std::string> queue;
  queue.Push(2.0, 3, "sched");
  queue.Push(2.0, 0, "submit");
  queue.Push(2.0, 1, "fault");
  queue.Push(2.0, 1, "fault2");  // Same priority: insertion order wins.
  queue.Push(1.0, 9, "earlier");
  EXPECT_EQ(queue.Pop().payload, "earlier");
  EXPECT_EQ(queue.Pop().payload, "submit");
  EXPECT_EQ(queue.Pop().payload, "fault");
  EXPECT_EQ(queue.Pop().payload, "fault2");
  EXPECT_EQ(queue.Pop().payload, "sched");
}

TEST(EventQueueTest, PopOrderIsAPureFunctionOfPushes) {
  // Two queues fed the same pushes pop identically — determinism does not
  // depend on heap internals.
  EventQueue<int> a;
  EventQueue<int> b;
  for (int i = 0; i < 100; ++i) {
    const double time = (i * 37) % 10;
    a.Push(time, i % 3, i);
    b.Push(time, i % 3, i);
  }
  while (!a.empty()) {
    ASSERT_FALSE(b.empty());
    EXPECT_EQ(a.Pop().payload, b.Pop().payload);
  }
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(a.pushes(), 100u);
}

TEST(SimClockTest, GridCeilLandsOnTickBoundaries) {
  const SimClock clock(1.0);
  EXPECT_EQ(clock.GridCeil(0.0), 0.0);
  EXPECT_EQ(clock.GridCeil(-5.0), 0.0);
  EXPECT_EQ(clock.GridCeil(12.3), 13.0);
  EXPECT_EQ(clock.GridCeil(13.0), 13.0);
  const SimClock coarse(7.0);
  EXPECT_EQ(coarse.GridCeil(30.0), 35.0);
  EXPECT_EQ(coarse.GridCeil(35.0), 35.0);
  EXPECT_EQ(coarse.GridCeil(35.5), 42.0);
}

TEST(SimClockTest, GridCeilSlackReplicatesTickedThresholdTest) {
  // The ticked loop fires a handler at the first tick where
  // now + 1e-9 >= threshold; a threshold epsilon-above a boundary still
  // fires on that boundary.
  const SimClock clock(1.0);
  EXPECT_EQ(clock.GridCeilSlack(13.0), 13.0);
  EXPECT_EQ(clock.GridCeilSlack(13.0 + 5e-10), 13.0);
  EXPECT_EQ(clock.GridCeilSlack(13.0 + 1e-8), 14.0);
}

TEST(SimClockTest, TicksBetweenCountsGridSteps) {
  const SimClock clock(2.0);
  EXPECT_EQ(clock.TicksBetween(0.0, 10.0), 5);
  EXPECT_EQ(clock.TicksBetween(4.0, 4.0), 0);
  EXPECT_EQ(clock.TicksBetween(10.0, 4.0), 0);
}

TEST(RecurringTimerTest, FiresOnGridAtOrAfterThreshold) {
  // interval=30, tick=7: thresholds 30, 60, 90 fire at grid points 35, 63,
  // 91 — exactly where the ticked loop's `now + 1e-9 >= next` lands.
  const SimClock clock(7.0);
  RecurringTimer timer(30.0, 30.0);
  EXPECT_EQ(timer.NextFireTime(clock), 35.0);
  timer.Fired(35.0);
  EXPECT_EQ(timer.NextFireTime(clock), 63.0);
  timer.Fired(63.0);
  EXPECT_EQ(timer.NextFireTime(clock), 91.0);
}

TEST(RecurringTimerTest, IntervalShorterThanTickFiresOncePerTick) {
  // The ticked loop tests each threshold once per tick, so a 10 s interval
  // under a 30 s tick fires every tick while the threshold lags behind.
  const SimClock clock(30.0);
  RecurringTimer timer(0.0, 10.0);
  EXPECT_EQ(timer.NextFireTime(clock), 0.0);
  timer.Fired(0.0);
  // Threshold is 10 -> grid 30, but never the boundary it just fired on.
  EXPECT_EQ(timer.NextFireTime(clock), 30.0);
  timer.Fired(30.0);
  EXPECT_EQ(timer.NextFireTime(clock), 60.0);
}

TEST(ProgressIntegratorTest, NoBreakpointMatchesEulerStepExactly) {
  const ModelProfile& profile = GetModelProfile(ModelKind::kNeuMFMovieLens);
  const long batch = profile.base_batch_size;
  const double throughput = 5000.0;
  // Start far from any decay point with little remaining work.
  const double progress = profile.TotalExamples() - 500.0;
  const double fraction = progress / profile.TotalExamples();
  for (double point : profile.gns.decay_points) {
    ASSERT_TRUE(point <= fraction || point > 1.0)
        << "test assumes no breakpoint between start and finish";
  }
  const double rate = throughput * profile.TrueEfficiency(batch, fraction);
  const double euler = (profile.TotalExamples() - progress) / rate;
  const double solved = SolveCompletionTime(profile, batch, throughput, progress, 1.0);
  EXPECT_EQ(solved, euler);  // Bitwise: same arithmetic, no sub-stepping.
}

TEST(ProgressIntegratorTest, CrossingABreakpointRefinesCompletion) {
  // A decay point just before the finish line boosts phi, which RAISES
  // statistical efficiency at batch > m0 (EFFICIENCY = (phi+m0)/(phi+m)),
  // so the piecewise solution finishes sooner than the single Euler step
  // that freezes pre-jump efficiency.
  ModelProfile profile = GetModelProfile(ModelKind::kNeuMFMovieLens);
  profile.gns.decay_points = {0.999};
  profile.gns.decay_boost = 50.0;
  const long batch = profile.base_batch_size * 16;
  const double throughput = 50000.0;
  const double progress = profile.TotalExamples() * 0.998;
  const double fraction = progress / profile.TotalExamples();
  const double rate = throughput * profile.TrueEfficiency(batch, fraction);
  const double euler = (profile.TotalExamples() - progress) / rate;
  const double max_step = euler * 10.0;
  const double solved = SolveCompletionTime(profile, batch, throughput, progress, max_step);
  EXPECT_LT(solved, euler);
  EXPECT_GT(solved, 0.0);
}

TEST(ProgressIntegratorTest, ResultIsClampedToMaxStep) {
  // A phi *collapse* at the breakpoint (boost < 1) tanks efficiency at
  // batch > m0; the tail crawls and the result clamps to the step bound.
  ModelProfile profile = GetModelProfile(ModelKind::kNeuMFMovieLens);
  profile.gns.decay_points = {0.999};
  profile.gns.decay_boost = 1e-9;
  const long batch = profile.base_batch_size * 16;
  const double progress = profile.TotalExamples() * 0.998;
  const double solved = SolveCompletionTime(profile, batch, 50000.0, progress, 1.0);
  EXPECT_LE(solved, 1.0);
  EXPECT_GT(solved, 0.0);
}

TEST(ProgressIntegratorTest, DegenerateInputsReturnZero) {
  const ModelProfile& profile = GetModelProfile(ModelKind::kNeuMFMovieLens);
  EXPECT_EQ(SolveCompletionTime(profile, 256, 0.0, 0.0, 1.0), 0.0);
  EXPECT_EQ(SolveCompletionTime(profile, 256, 100.0, profile.TotalExamples(), 1.0), 0.0);
  EXPECT_EQ(SolveCompletionTime(profile, 256, 100.0, 0.0, 0.0), 0.0);
}

}  // namespace
}  // namespace pollux
