#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace pollux {
namespace {

TEST(StatsTest, MeanAndVariance) {
  const std::vector<double> values = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(Mean(values), 5.0);
  EXPECT_NEAR(Variance(values), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(StdDev(values), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(StatsTest, EmptyAndSingleton) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({3.0}), 0.0);
  EXPECT_DOUBLE_EQ(Percentile({}, 50.0), 0.0);
}

TEST(StatsTest, PercentileInterpolates) {
  const std::vector<double> values = {10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(Percentile(values, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 50.0), 25.0);
  EXPECT_DOUBLE_EQ(Median(values), 25.0);
  // Out-of-range quantiles clamp.
  EXPECT_DOUBLE_EQ(Percentile(values, -5.0), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 105.0), 40.0);
}

TEST(StatsTest, SummaryFields) {
  const std::vector<double> values = {1.0, 2.0, 3.0, 4.0, 5.0};
  const Summary s = Summarize(values);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.p50, 3.0);
}

TEST(StatsTest, RunningStatsMatchesBatch) {
  const std::vector<double> values = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  RunningStats running;
  for (double v : values) {
    running.Add(v);
  }
  EXPECT_EQ(running.count(), values.size());
  EXPECT_NEAR(running.mean(), Mean(values), 1e-12);
  EXPECT_NEAR(running.variance(), Variance(values), 1e-12);
  EXPECT_DOUBLE_EQ(running.min(), 2.0);
  EXPECT_DOUBLE_EQ(running.max(), 9.0);
  EXPECT_NEAR(running.sum(), 40.0, 1e-12);
}

TEST(StatsTest, RunningStatsMerge) {
  RunningStats a;
  RunningStats b;
  RunningStats all;
  for (int i = 0; i < 10; ++i) {
    const double v = static_cast<double>(i * i);
    (i < 4 ? a : b).Add(v);
    all.Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(StatsTest, RunningStatsMergeWithEmpty) {
  RunningStats a;
  RunningStats empty;
  a.Add(5.0);
  a.Merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.Merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 5.0);
}

TEST(StatsTest, HistogramBinsAndClamps) {
  Histogram hist(0.0, 10.0, 5);
  hist.Add(0.5);   // bin 0
  hist.Add(3.0);   // bin 1
  hist.Add(9.99);  // bin 4
  hist.Add(-5.0);  // clamps to bin 0
  hist.Add(42.0);  // clamps to bin 4
  EXPECT_EQ(hist.total(), 5u);
  EXPECT_EQ(hist.bin_count(0), 2u);
  EXPECT_EQ(hist.bin_count(1), 1u);
  EXPECT_EQ(hist.bin_count(4), 2u);
  EXPECT_DOUBLE_EQ(hist.bin_lo(1), 2.0);
}

}  // namespace
}  // namespace pollux
