#include "workload/trace_gen.h"

#include <gtest/gtest.h>

#include <map>

namespace pollux {
namespace {

TraceOptions DefaultOptions(uint64_t seed = 1) {
  TraceOptions options;
  options.num_jobs = 160;
  options.seed = seed;
  return options;
}

TEST(DiurnalTest, WindowPeaksAtFourthHourAtThreeTimesFirstHour) {
  // Fig. 6: the sampled 8-hour window peaks in its fourth hour at 3x the
  // rate of the first hour.
  const double first = WindowHourWeight(0);
  double peak = 0.0;
  int peak_hour = 0;
  for (int h = 0; h < 8; ++h) {
    if (WindowHourWeight(h) > peak) {
      peak = WindowHourWeight(h);
      peak_hour = h;
    }
  }
  EXPECT_EQ(peak_hour, 3);
  EXPECT_NEAR(peak / first, 3.0, 0.01);
}

TEST(DiurnalTest, FullDayCurveIsPositiveAndWraps) {
  for (int h = -24; h < 48; ++h) {
    EXPECT_GT(DiurnalWeight24(h), 0.0);
  }
  EXPECT_DOUBLE_EQ(DiurnalWeight24(0), DiurnalWeight24(24));
}

TEST(TraceGenTest, JobsSortedAndNumbered) {
  const auto jobs = GenerateTrace(DefaultOptions());
  ASSERT_EQ(jobs.size(), 160u);
  for (size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(jobs[i].job_id, i);
    if (i > 0) {
      EXPECT_GE(jobs[i].submit_time, jobs[i - 1].submit_time);
    }
    EXPECT_GE(jobs[i].submit_time, 0.0);
    EXPECT_LT(jobs[i].submit_time, 8.0 * 3600.0);
  }
}

TEST(TraceGenTest, DeterministicGivenSeed) {
  const auto a = GenerateTrace(DefaultOptions(42));
  const auto b = GenerateTrace(DefaultOptions(42));
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].model, b[i].model);
    EXPECT_DOUBLE_EQ(a[i].submit_time, b[i].submit_time);
    EXPECT_EQ(a[i].requested_gpus, b[i].requested_gpus);
    EXPECT_EQ(a[i].batch_size, b[i].batch_size);
  }
}

TEST(TraceGenTest, LoadFactorScalesJobCount) {
  TraceOptions options = DefaultOptions();
  options.load_factor = 0.5;
  EXPECT_EQ(GenerateTrace(options).size(), 80u);
  options.load_factor = 2.0;
  EXPECT_EQ(GenerateTrace(options).size(), 320u);
}

TEST(TraceGenTest, ModelMixMatchesTable1) {
  TraceOptions options = DefaultOptions(3);
  options.num_jobs = 4000;
  const auto jobs = GenerateTrace(options);
  std::map<ModelKind, int> counts;
  for (const auto& job : jobs) {
    ++counts[job.model];
  }
  const double n = static_cast<double>(jobs.size());
  EXPECT_NEAR(counts[ModelKind::kResNet18Cifar10] / n, 0.38, 0.04);
  EXPECT_NEAR(counts[ModelKind::kNeuMFMovieLens] / n, 0.38, 0.04);
  EXPECT_NEAR(counts[ModelKind::kDeepSpeech2] / n, 0.17, 0.03);
  EXPECT_NEAR(counts[ModelKind::kYoloV3Voc] / n, 0.05, 0.02);
  EXPECT_NEAR(counts[ModelKind::kResNet50ImageNet] / n, 0.02, 0.01);
}

TEST(TraceGenTest, SubmissionRateFollowsDiurnalShape) {
  TraceOptions options = DefaultOptions(5);
  options.num_jobs = 8000;
  const auto jobs = GenerateTrace(options);
  std::vector<int> per_hour(8, 0);
  for (const auto& job : jobs) {
    ++per_hour[static_cast<size_t>(job.submit_time / 3600.0)];
  }
  // The peak (4th hour) should receive roughly 3x the first hour's jobs.
  EXPECT_NEAR(static_cast<double>(per_hour[3]) / per_hour[0], 3.0, 0.6);
}

TEST(TraceGenTest, TunedConfigsAreValidAndEfficient) {
  Rng rng(11);
  for (ModelKind kind : AllModelKinds()) {
    const ModelProfile& profile = GetModelProfile(kind);
    for (int trial = 0; trial < 5; ++trial) {
      const JobConfig config = SampleTunedConfig(profile, 4, 64, rng);
      EXPECT_GE(config.num_gpus, 1);
      EXPECT_LE(config.num_gpus, 64);
      EXPECT_GE(config.batch_size, profile.base_batch_size);
      EXPECT_LE(config.batch_size, profile.Limits().MaxFeasible(config.num_gpus));
      if (config.num_gpus > 1) {
        // Sec. 5.2: tuned jobs sit in the 50%-80% scaling-efficiency band.
        const double speedup = TrueSpeedup(profile, config.num_gpus, 4, 0.4);
        const double fraction = speedup / config.num_gpus;
        EXPECT_GE(fraction, 0.45) << profile.name << " K=" << config.num_gpus;
        EXPECT_LE(fraction, 0.85) << profile.name << " K=" << config.num_gpus;
      }
    }
  }
}

TEST(TraceGenTest, UserConfigsSkewSmall) {
  Rng rng(13);
  const ModelProfile& profile = GetModelProfile(ModelKind::kResNet18Cifar10);
  int singles = 0;
  const int trials = 400;
  for (int trial = 0; trial < trials; ++trial) {
    const JobConfig config = SampleUserConfig(profile, 4, 64, rng);
    EXPECT_GE(config.num_gpus, 1);
    EXPECT_LE(config.num_gpus, 16);
    EXPECT_GE(config.batch_size, profile.base_batch_size);
    EXPECT_LE(config.batch_size, profile.Limits().MaxFeasible(config.num_gpus));
    if (config.num_gpus == 1) {
      ++singles;
    }
  }
  EXPECT_NEAR(static_cast<double>(singles) / trials, 0.70, 0.08);
}

TEST(TraceGenTest, UserConfiguredFractionIsRespected) {
  TraceOptions options = DefaultOptions(17);
  options.num_jobs = 2000;
  options.user_configured_fraction = 1.0 / 3.0;
  const auto jobs = GenerateTrace(options);
  int user = 0;
  for (const auto& job : jobs) {
    if (job.user_configured) {
      ++user;
    }
  }
  EXPECT_NEAR(static_cast<double>(user) / jobs.size(), 1.0 / 3.0, 0.05);
}

TEST(TraceGenTest, TrueSpeedupReasonable) {
  const ModelProfile& profile = GetModelProfile(ModelKind::kResNet50ImageNet);
  EXPECT_NEAR(TrueSpeedup(profile, 1, 4, 0.4), 1.0, 1e-6);
  const double speedup8 = TrueSpeedup(profile, 8, 4, 0.4);
  EXPECT_GT(speedup8, 1.0);
  EXPECT_LT(speedup8, 8.0);
}

}  // namespace
}  // namespace pollux
