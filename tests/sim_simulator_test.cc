#include "sim/simulator.h"

#include <gtest/gtest.h>

#include "baselines/tiresias.h"
#include "sim/pollux_policy.h"

namespace pollux {
namespace {

JobSpec MakeJob(uint64_t id, ModelKind model, double submit, int gpus, long batch) {
  JobSpec spec;
  spec.job_id = id;
  spec.model = model;
  spec.submit_time = submit;
  spec.requested_gpus = gpus;
  spec.batch_size = batch;
  return spec;
}

SchedConfig FastSchedConfig(uint64_t seed = 3) {
  SchedConfig config;
  config.ga.population_size = 16;
  config.ga.generations = 8;
  config.ga.seed = seed;
  return config;
}

SimOptions FastSimOptions(int nodes = 2, uint64_t seed = 1) {
  SimOptions options;
  options.cluster = ClusterSpec::Homogeneous(nodes, 4);
  options.seed = seed;
  options.tick = 1.0;
  return options;
}

TEST(SimulatorTest, SingleJobCompletesUnderPollux) {
  const SimOptions options = FastSimOptions();
  PolluxPolicy policy(options.cluster, FastSchedConfig());
  std::vector<JobSpec> trace = {MakeJob(0, ModelKind::kResNet18Cifar10, 0.0, 4, 512)};
  Simulator sim(options, trace, &policy);
  const SimResult result = sim.Run();
  ASSERT_EQ(result.jobs.size(), 1u);
  EXPECT_FALSE(result.timed_out);
  EXPECT_TRUE(result.jobs[0].completed);
  EXPECT_GT(result.jobs[0].Jct(), 0.0);
  EXPECT_GT(result.jobs[0].gpu_time, 0.0);
  EXPECT_GT(result.jobs[0].avg_goodput, 0.0);
  EXPECT_LE(result.jobs[0].avg_goodput, result.jobs[0].avg_throughput + 1e-9);
  EXPECT_GE(result.jobs[0].start_time, result.jobs[0].submit_time);
  EXPECT_EQ(result.makespan, result.jobs[0].finish_time);
}

TEST(SimulatorTest, DeterministicGivenSeed) {
  std::vector<JobSpec> trace = {MakeJob(0, ModelKind::kResNet18Cifar10, 0.0, 4, 512),
                                MakeJob(1, ModelKind::kNeuMFMovieLens, 100.0, 2, 1024)};
  auto run = [&]() {
    const SimOptions options = FastSimOptions(2, 9);
    PolluxPolicy policy(options.cluster, FastSchedConfig(4));
    Simulator sim(options, trace, &policy);
    return sim.Run();
  };
  const SimResult a = run();
  const SimResult b = run();
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.jobs[i].finish_time, b.jobs[i].finish_time);
    EXPECT_EQ(a.jobs[i].num_restarts, b.jobs[i].num_restarts);
  }
}

TEST(SimulatorTest, TimelineNeverOvercommitsCluster) {
  const SimOptions options = FastSimOptions(2, 11);
  PolluxPolicy policy(options.cluster, FastSchedConfig(5));
  std::vector<JobSpec> trace;
  for (uint64_t id = 0; id < 4; ++id) {
    trace.push_back(MakeJob(id, ModelKind::kNeuMFMovieLens, 60.0 * static_cast<double>(id), 2,
                            2048));
  }
  Simulator sim(options, trace, &policy);
  const SimResult result = sim.Run();
  EXPECT_FALSE(result.timed_out);
  for (const auto& sample : result.timeline) {
    EXPECT_LE(sample.gpus_in_use, options.cluster.TotalGpus());
    EXPECT_GE(sample.mean_efficiency, 0.0);
    EXPECT_LE(sample.mean_efficiency, 1.0 + 1e-9);
    EXPECT_GE(sample.utility, 0.0);
    EXPECT_LE(sample.utility, 1.0 + 1e-9);
  }
}

TEST(SimulatorTest, PolluxJobExperiencesRestartsAsItScalesOut) {
  // A single scalable job starts on one GPU and doubles its footprint as the
  // exploration cap grows; each reallocation is a checkpoint-restart.
  const SimOptions options = FastSimOptions(2, 13);
  PolluxPolicy policy(options.cluster, FastSchedConfig(6));
  std::vector<JobSpec> trace = {MakeJob(0, ModelKind::kResNet18Cifar10, 0.0, 1, 128)};
  Simulator sim(options, trace, &policy);
  const SimResult result = sim.Run();
  EXPECT_GE(result.jobs[0].num_restarts, 1);
}

TEST(SimulatorTest, LargerRestartDelayNeverHelps) {
  std::vector<JobSpec> trace = {MakeJob(0, ModelKind::kResNet18Cifar10, 0.0, 1, 128)};
  auto run = [&](double delay) {
    SimOptions options = FastSimOptions(2, 17);
    options.restart_delay = delay;
    PolluxPolicy policy(options.cluster, FastSchedConfig(7));
    Simulator sim(options, trace, &policy);
    return sim.Run().jobs[0].Jct();
  };
  EXPECT_LE(run(0.0), run(300.0) + 1e-6);
}

TEST(SimulatorTest, InterferenceSlowsSharedDistributedJobs) {
  // Two 6-GPU jobs on a 3-node x 4-GPU cluster must share a node, making
  // both distributed jobs interfere.
  std::vector<JobSpec> trace = {MakeJob(0, ModelKind::kResNet18Cifar10, 0.0, 6, 1024),
                                MakeJob(1, ModelKind::kResNet18Cifar10, 0.0, 6, 1024)};
  auto run = [&](double slowdown) {
    SimOptions options = FastSimOptions(3, 19);
    options.interference_slowdown = slowdown;
    TiresiasPolicy policy;
    Simulator sim(options, trace, &policy);
    return sim.Run();
  };
  const SimResult clean = run(0.0);
  const SimResult interfered = run(0.5);
  ASSERT_TRUE(clean.jobs[0].completed);
  ASSERT_TRUE(interfered.jobs[0].completed);
  EXPECT_GT(interfered.JctSummary().mean, 1.2 * clean.JctSummary().mean);
}

TEST(SimulatorTest, TiresiasHonorsRequestedGpuCounts) {
  SimOptions options = FastSimOptions(2, 23);
  TiresiasPolicy policy;
  std::vector<JobSpec> trace = {MakeJob(0, ModelKind::kResNet18Cifar10, 0.0, 3, 512)};
  Simulator sim(options, trace, &policy);
  const SimResult result = sim.Run();
  EXPECT_TRUE(result.jobs[0].completed);
  // gpu_time / run duration ~= 3 GPUs held.
  const double held =
      result.jobs[0].gpu_time / (result.jobs[0].finish_time - result.jobs[0].start_time);
  EXPECT_NEAR(held, 3.0, 0.3);
}

TEST(SimulatorTest, JobsSubmittedLaterStartLater) {
  SimOptions options = FastSimOptions(2, 29);
  TiresiasPolicy policy;
  std::vector<JobSpec> trace = {MakeJob(0, ModelKind::kNeuMFMovieLens, 0.0, 2, 1024),
                                MakeJob(1, ModelKind::kNeuMFMovieLens, 1800.0, 2, 1024)};
  Simulator sim(options, trace, &policy);
  const SimResult result = sim.Run();
  EXPECT_GE(result.jobs[1].start_time, 1800.0);
  EXPECT_TRUE(result.jobs[1].completed);
}

}  // namespace
}  // namespace pollux
