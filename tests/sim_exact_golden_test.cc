// Golden-file guard for the --sched-mode ladder invariant (DESIGN.md §13):
// exact mode must stay byte-identical to the pre-ladder scheduler. The
// checked-in goldens under tests/golden/ were produced by
//
//   pollux_simulate --policy=pollux --jobs=20 --duration_hours=1 --seed=1 \
//       --jobs_csv=exact_mode_jobs.csv --events_csv=exact_mode_events.csv
//
// before the ladder landed. This test re-runs the same configuration
// in-process, renders the per-job results and event log with exactly the
// formatting pollux_simulate uses, and compares bytes. Any diff means exact
// mode stopped reproducing the paper-faithful scheduler — regenerating the
// goldens is only legitimate for an intentional behavior change.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "bench/common.h"
#include "sim/simulator.h"
#include "util/csv.h"
#include "workload/model_profile.h"

#ifndef POLLUX_TEST_DATA_DIR
#error "POLLUX_TEST_DATA_DIR must point at tests/golden (set in tests/CMakeLists.txt)"
#endif

namespace pollux {
namespace {

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open golden file " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// Renders result.jobs exactly as pollux_simulate's --jobs_csv writer does.
std::string RenderJobsCsv(const SimResult& result) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.WriteRow({"job_id", "model", "category", "submit_s", "start_s", "finish_s", "jct_s",
                "gpu_seconds", "restarts", "evictions", "restart_failures", "backoff_s",
                "avg_efficiency", "avg_throughput", "avg_goodput", "completed"});
  for (const auto& job : result.jobs) {
    csv.WriteRow({std::to_string(job.job_id), ModelKindName(job.model),
                  JobCategoryName(job.category), FormatDouble(job.submit_time, 1),
                  FormatDouble(job.start_time, 1), FormatDouble(job.finish_time, 1),
                  FormatDouble(job.Jct(), 1), FormatDouble(job.gpu_time, 1),
                  std::to_string(job.num_restarts), std::to_string(job.num_evictions),
                  std::to_string(job.num_restart_failures),
                  FormatDouble(job.backoff_seconds, 1), FormatDouble(job.avg_efficiency, 4),
                  FormatDouble(job.avg_throughput, 2), FormatDouble(job.avg_goodput, 2),
                  job.completed ? "1" : "0"});
  }
  return out.str();
}

// Renders result.events exactly as pollux_simulate's --events_csv writer does.
std::string RenderEventsCsv(const SimResult& result) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.WriteRow({"time_s", "event", "job_id", "gpus", "nodes"});
  for (const auto& event : result.events) {
    csv.WriteRow({FormatDouble(event.time, 1), SimEventKindName(event.kind),
                  std::to_string(event.job_id), std::to_string(event.gpus),
                  std::to_string(event.nodes)});
  }
  return out.str();
}

BenchSimConfig GoldenConfig() {
  // Matches `--policy=pollux --jobs=20 --duration_hours=1 --seed=1` with every
  // other flag at its default.
  BenchSimConfig config;
  config.jobs = 20;
  config.duration_hours = 1.0;
  config.seed = 1;
  return config;
}

TEST(ExactModeGoldenTest, JobsAndEventsAreByteIdentical) {
  BenchSimConfig config = GoldenConfig();
  ASSERT_EQ(config.sched_mode, SchedMode::kExact);
  const SimResult result = RunImportedTrace("pollux", config, MakeBenchTrace(config));

  const std::string golden_dir = POLLUX_TEST_DATA_DIR;
  EXPECT_EQ(RenderJobsCsv(result), ReadFileOrDie(golden_dir + "/exact_mode_jobs.csv"))
      << "exact-mode per-job results diverged from the pre-ladder golden";
  EXPECT_EQ(RenderEventsCsv(result), ReadFileOrDie(golden_dir + "/exact_mode_events.csv"))
      << "exact-mode event log diverged from the pre-ladder golden";
}

TEST(ExactModeGoldenTest, ThreadCountDoesNotChangeExactResults) {
  BenchSimConfig config = GoldenConfig();
  config.threads = 4;
  const SimResult result = RunImportedTrace("pollux", config, MakeBenchTrace(config));
  EXPECT_EQ(RenderJobsCsv(result),
            ReadFileOrDie(std::string(POLLUX_TEST_DATA_DIR) + "/exact_mode_jobs.csv"));
}

TEST(ExactModeGoldenTest, CheapModesStayDeterministicAcrossThreads) {
  // The ladder's cheap modes need not match exact, but each must be
  // seed-deterministic at any --threads (the CI double-run cmp contract).
  for (SchedMode mode : {SchedMode::kIncremental, SchedMode::kFirstMatch}) {
    BenchSimConfig config = GoldenConfig();
    config.sched_mode = mode;
    config.threads = 1;
    const SimResult serial = RunImportedTrace("pollux", config, MakeBenchTrace(config));
    config.threads = 4;
    const SimResult threaded = RunImportedTrace("pollux", config, MakeBenchTrace(config));
    EXPECT_EQ(RenderJobsCsv(serial), RenderJobsCsv(threaded))
        << "mode " << SchedModeName(mode);
    EXPECT_EQ(RenderEventsCsv(serial), RenderEventsCsv(threaded))
        << "mode " << SchedModeName(mode);
  }
}

}  // namespace
}  // namespace pollux
