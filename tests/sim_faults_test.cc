// Fault injection and graceful degradation (the robustness subsystem):
// deterministic fault streams, node crash -> eviction -> re-queue with no job
// ever lost, straggler-inflated observations rejected by the robust fitter,
// report loss -> staleness clamping, checkpoint-restart retries with capped
// backoff, and the scheduler's known-feasible fallback when the GA result is
// unusable (infeasible or over its wall-clock budget).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/agent.h"
#include "core/model_fitter.h"
#include "core/sched.h"
#include "sim/fault_injector.h"
#include "sim/pollux_policy.h"
#include "sim/simulator.h"
#include "workload/trace_gen.h"

namespace pollux {
namespace {

// ---------------------------------------------------------------------------
// FaultInjector unit tests.
// ---------------------------------------------------------------------------

TEST(FaultInjectorTest, NextTransitionTimeIsInfiniteWhenAllFaultsDisabled) {
  FaultOptions options;  // Every knob zero.
  FaultInjector injector(options, 4, 42);
  EXPECT_TRUE(std::isinf(injector.NextTransitionTime()));
  EXPECT_TRUE(injector.Poll(1e12).empty());
  EXPECT_EQ(injector.PollSchedulerCrashes(1e12), 0);
  // Bernoulli-only fault classes never arm a transition either: the event
  // engine must not schedule fault polls for them.
  options.report_drop_rate = 0.5;
  options.restart_fail_rate = 0.5;
  FaultInjector bernoulli_only(options, 4, 42);
  EXPECT_TRUE(std::isinf(bernoulli_only.NextTransitionTime()));
  EXPECT_TRUE(bernoulli_only.Poll(1e12).empty());
  EXPECT_EQ(bernoulli_only.PollSchedulerCrashes(1e12), 0);
}

TEST(FaultInjectorTest, NextTransitionTimeZeroMtbfDisablesEachClassIndependently) {
  FaultOptions node_only;
  node_only.mtbf_node = 500.0;
  FaultInjector nodes(node_only, 2, 7);
  EXPECT_TRUE(std::isfinite(nodes.NextTransitionTime()));
  EXPECT_EQ(nodes.PollSchedulerCrashes(1e12), 0);

  FaultOptions sched_only;
  sched_only.mtbf_sched = 500.0;
  FaultInjector sched(sched_only, 2, 7);
  EXPECT_TRUE(std::isfinite(sched.NextTransitionTime()));
  EXPECT_TRUE(sched.Poll(1e12).empty());
  EXPECT_GT(sched.PollSchedulerCrashes(1e6), 0);
}

TEST(FaultInjectorTest, NextTransitionTimeTracksEarliestArmedTransition) {
  FaultOptions options;
  options.mtbf_node = 300.0;
  options.repair_time = 60.0;
  options.mtbf_sched = 700.0;
  FaultInjector injector(options, 4, 11);
  const double next = injector.NextTransitionTime();
  ASSERT_TRUE(std::isfinite(next));
  ASSERT_GT(next, 0.0);
  // Nothing fires strictly before the armed time...
  EXPECT_TRUE(injector.Poll(std::nextafter(next, 0.0)).empty());
  EXPECT_EQ(injector.PollSchedulerCrashes(std::nextafter(next, 0.0)), 0);
  // ...polling exactly at it consumes it (node transition or sched crash)...
  const size_t node_fires = injector.Poll(next).size();
  const int sched_fires = injector.PollSchedulerCrashes(next);
  EXPECT_GE(node_fires + static_cast<size_t>(sched_fires), 1u);
  // ...and the armed time then moves strictly past the consumed one.
  EXPECT_GT(injector.NextTransitionTime(), next);
}

TEST(FaultInjectorTest, DegenerateTinyMtbfTerminatesAndAlternates) {
  FaultOptions options;
  options.mtbf_node = 1e-3;   // Crash almost immediately, always.
  options.repair_time = 1e-3;  // Clamped internally so retries terminate.
  FaultInjector injector(options, 1, 3);
  const auto transitions = injector.Poll(30.0);
  ASSERT_FALSE(transitions.empty());
  bool failed = false;
  for (const auto& transition : transitions) {
    EXPECT_EQ(transition.node, 0);
    EXPECT_NE(transition.failed, failed);  // Strict crash/repair alternation.
    failed = transition.failed;
  }
  EXPECT_EQ(injector.NodeFailed(0), failed);
  EXPECT_GT(injector.NextTransitionTime(), 30.0);
}

TEST(FaultInjectorTest, TransitionExactlyOnTickBoundaryFiresOnceInclusively) {
  FaultOptions options;
  options.mtbf_node = 100.0;
  options.repair_time = 25.0;
  FaultInjector injector(options, 1, 5);
  FaultInjector::State state = injector.GetState();
  state.nodes[0].next_transition = 10.0;  // Exactly on the 1 s tick grid.
  injector.SetState(state);
  // The tick *before* the boundary sees nothing; the boundary tick fires it
  // (Poll is inclusive, matching the engines' "due at exactly t" handling).
  EXPECT_TRUE(injector.Poll(9.0).empty());
  const auto fired = injector.Poll(10.0);
  ASSERT_FALSE(fired.empty());
  EXPECT_EQ(fired[0].node, 0);
  EXPECT_TRUE(fired[0].failed);
  // Re-polling the same boundary replays nothing.
  EXPECT_TRUE(injector.Poll(10.0).empty());
}

TEST(FaultInjectorTest, SchedulerCrashBoundaryIsInclusiveAndRearms) {
  FaultOptions options;
  options.mtbf_sched = 400.0;
  FaultInjector injector(options, 1, 13);
  FaultInjector::State state = injector.GetState();
  state.next_sched_crash = 60.0;  // Exactly on a scheduling-round boundary.
  injector.SetState(state);
  EXPECT_EQ(injector.PollSchedulerCrashes(59.0), 0);
  EXPECT_GE(injector.PollSchedulerCrashes(60.0), 1);
  EXPECT_EQ(injector.PollSchedulerCrashes(60.0), 0);
  EXPECT_GT(injector.NextTransitionTime(), 60.0);
}

TEST(FaultInjectorTest, SchedulerCrashStreamDoesNotPerturbNodeStreams) {
  FaultOptions node_only;
  node_only.mtbf_node = 200.0;
  node_only.repair_time = 50.0;
  FaultOptions with_sched = node_only;
  with_sched.mtbf_sched = 500.0;
  FaultInjector a(node_only, 4, 42);
  FaultInjector b(with_sched, 4, 42);
  for (double t : {250.0, 1000.0, 4000.0}) {
    const auto ta = a.Poll(t);
    const auto tb = b.Poll(t);
    ASSERT_EQ(ta.size(), tb.size()) << "t=" << t;
    for (size_t i = 0; i < ta.size(); ++i) {
      EXPECT_EQ(ta[i].node, tb[i].node);
      EXPECT_EQ(ta[i].failed, tb[i].failed);
    }
  }
  EXPECT_GT(b.PollSchedulerCrashes(1e6), 0);
}

TEST(FaultInjectorTest, LazyGridPollingMatchesPerTickPolling) {
  // The event engine polls faults only at the tick-grid point covering
  // NextTransitionTime; the ticked engine polls every tick. Both must see
  // the same transitions in the same order with the same RNG draws.
  FaultOptions options;
  options.mtbf_node = 150.0;
  options.repair_time = 40.0;
  options.mtbf_sched = 400.0;
  const double tick = 1.0;
  const double horizon = 2000.0;
  FaultInjector dense(options, 3, 9);
  FaultInjector lazy(options, 3, 9);
  std::vector<FaultInjector::NodeTransition> dense_log;
  std::vector<FaultInjector::NodeTransition> lazy_log;
  int dense_crashes = 0;
  int lazy_crashes = 0;
  for (double t = tick; t <= horizon; t += tick) {
    for (const auto& transition : dense.Poll(t)) {
      dense_log.push_back(transition);
    }
    dense_crashes += dense.PollSchedulerCrashes(t);
  }
  while (true) {
    const double next = lazy.NextTransitionTime();
    if (!std::isfinite(next)) {
      break;
    }
    const double grid = std::ceil(next / tick) * tick;
    if (grid > horizon) {
      break;
    }
    for (const auto& transition : lazy.Poll(grid)) {
      lazy_log.push_back(transition);
    }
    lazy_crashes += lazy.PollSchedulerCrashes(grid);
  }
  ASSERT_EQ(lazy_log.size(), dense_log.size());
  for (size_t i = 0; i < dense_log.size(); ++i) {
    EXPECT_EQ(lazy_log[i].node, dense_log[i].node) << i;
    EXPECT_EQ(lazy_log[i].failed, dense_log[i].failed) << i;
  }
  EXPECT_EQ(lazy_crashes, dense_crashes);
}

TEST(FaultOptionsTest, DisabledByDefaultAndProfilesParse) {
  FaultOptions options;
  EXPECT_FALSE(options.enabled());

  EXPECT_TRUE(FaultProfileByName("none", &options));
  EXPECT_FALSE(options.enabled());
  EXPECT_TRUE(FaultProfileByName("light", &options));
  EXPECT_TRUE(options.enabled());
  EXPECT_GT(options.mtbf_node, 0.0);
  EXPECT_TRUE(FaultProfileByName("heavy", &options));
  EXPECT_TRUE(options.enabled());
  EXPECT_FALSE(FaultProfileByName("catastrophic", &options));
}

TEST(FaultInjectorTest, TransitionsAreDeterministicPerSeed) {
  FaultOptions options;
  options.mtbf_node = 200.0;
  options.repair_time = 50.0;
  FaultInjector a(options, 4, 42);
  FaultInjector b(options, 4, 42);
  for (double t : {100.0, 500.0, 1000.0, 5000.0}) {
    const auto ta = a.Poll(t);
    const auto tb = b.Poll(t);
    ASSERT_EQ(ta.size(), tb.size()) << "t=" << t;
    for (size_t i = 0; i < ta.size(); ++i) {
      EXPECT_EQ(ta[i].node, tb[i].node);
      EXPECT_EQ(ta[i].failed, tb[i].failed);
    }
  }
}

TEST(FaultInjectorTest, PollTogglesPerNodeStateInOrder) {
  FaultOptions options;
  options.mtbf_node = 100.0;
  options.repair_time = 20.0;
  FaultInjector injector(options, 3, 7);
  std::vector<bool> failed(3, false);
  const auto transitions = injector.Poll(5000.0);
  ASSERT_FALSE(transitions.empty());
  for (const auto& transition : transitions) {
    ASSERT_GE(transition.node, 0);
    ASSERT_LT(transition.node, 3);
    // Each transition flips that node's state.
    EXPECT_NE(transition.failed, failed[static_cast<size_t>(transition.node)]);
    failed[static_cast<size_t>(transition.node)] = transition.failed;
  }
  for (int n = 0; n < 3; ++n) {
    EXPECT_EQ(injector.NodeFailed(n), failed[static_cast<size_t>(n)]);
  }
  // Polling the same instant again replays nothing.
  EXPECT_TRUE(injector.Poll(5000.0).empty());
}

TEST(FaultInjectorTest, StragglersSlowOnlyJobsTouchingThem) {
  FaultOptions all;
  all.straggler_frac = 1.0;
  all.straggler_slowdown = 2.0;
  FaultInjector everywhere(all, 2, 1);
  EXPECT_DOUBLE_EQ(everywhere.JobSlowdown({4, 0}), 2.0);
  EXPECT_DOUBLE_EQ(everywhere.JobSlowdown({0, 0}), 1.0);

  FaultOptions none;
  none.straggler_frac = 0.0;
  none.report_drop_rate = 0.01;  // Keep enabled() true.
  FaultInjector nowhere(none, 2, 1);
  EXPECT_DOUBLE_EQ(nowhere.JobSlowdown({4, 4}), 1.0);
}

TEST(FaultInjectorTest, RestartFailureRateIsClampedSoRetriesTerminate) {
  FaultOptions options;
  options.restart_fail_rate = 1.0;  // Clamped to 0.95 internally.
  FaultInjector injector(options, 1, 9);
  int failures = 0;
  while (injector.RestartFails() && failures < 10000) {
    ++failures;
  }
  EXPECT_GT(failures, 0);
  EXPECT_LT(failures, 10000);
}

TEST(FaultInjectorTest, ResizeKeepsSurvivorsAndAddsFreshNodes) {
  FaultOptions options;
  options.mtbf_node = 100.0;
  options.repair_time = 1e9;  // Crashes never repair within the test.
  FaultInjector injector(options, 2, 3);
  injector.Poll(1000.0);
  const bool node0 = injector.NodeFailed(0);
  const bool node1 = injector.NodeFailed(1);
  injector.OnClusterResize(4, 1000.0);
  EXPECT_EQ(injector.NodeFailed(0), node0);
  EXPECT_EQ(injector.NodeFailed(1), node1);
  EXPECT_FALSE(injector.NodeFailed(2));  // New nodes start healthy.
  EXPECT_FALSE(injector.NodeFailed(3));
  injector.OnClusterResize(1, 1000.0);
  EXPECT_EQ(injector.num_failed_nodes(), node0 ? 1 : 0);
}

// ---------------------------------------------------------------------------
// Robust estimation: MAD outlier rejection and the divergence guard.
// ---------------------------------------------------------------------------

ThroughputParams FitterGroundTruth() {
  ThroughputParams params;
  params.alpha_grad = 0.04;
  params.beta_grad = 3e-4;
  params.alpha_sync_local = 0.02;
  params.beta_sync_local = 0.001;
  params.alpha_sync_node = 0.08;
  params.beta_sync_node = 0.004;
  params.gamma = 1.8;
  return params;
}

std::vector<ThroughputObservation> CleanObservations(const ThroughputParams& truth) {
  std::vector<ThroughputObservation> data;
  for (int k : {1, 2, 4, 8}) {
    for (int n : {1, 2}) {
      if (n == 2 && k < 2) {
        continue;
      }
      for (long m : {128L, 512L, 2048L}) {
        ThroughputObservation obs;
        obs.placement = Placement{k, n};
        obs.batch_size = m;
        obs.iter_time = IterTime(truth, obs.placement, static_cast<double>(m));
        data.push_back(obs);
      }
    }
  }
  return data;
}

TEST(RobustFitterTest, MadRejectionRemovesStragglerInflatedObservations) {
  const auto truth = FitterGroundTruth();
  auto data = CleanObservations(truth);
  // A straggler node inflates a handful of configurations well above the
  // surface the rest of the data agrees on.
  for (size_t i : {2u, 9u, 15u}) {
    data[i].iter_time *= 2.5;
  }
  FitOptions options;
  options.max_gpus_seen = 8;
  options.max_nodes_seen = 2;
  options.multi_starts = 4;

  const FitResult naive = FitThroughputParams(data, options);
  EXPECT_EQ(naive.outliers_rejected, 0);

  options.outlier_mad_threshold = 3.5;
  const FitResult robust = FitThroughputParams(data, options);
  EXPECT_GE(robust.outliers_rejected, 1);
  EXPECT_LE(robust.outliers_rejected, 3);
  // The refit on survivors explains the clean surface better than the naive
  // fit that had to compromise with the inflated points.
  const auto clean = CleanObservations(truth);
  EXPECT_LT(ThroughputRmsle(robust.params, clean), ThroughputRmsle(naive.params, clean));
}

TEST(RobustFitterTest, CleanDataIsNotRejected) {
  const auto data = CleanObservations(FitterGroundTruth());
  FitOptions options;
  options.max_gpus_seen = 8;
  options.max_nodes_seen = 2;
  options.outlier_mad_threshold = 3.5;
  const FitResult fit = FitThroughputParams(data, options);
  EXPECT_EQ(fit.outliers_rejected, 0);
}

TEST(RobustAgentTest, DivergenceGuardKeepsPreviousTheta) {
  AgentConfig config;
  config.robust_fitting = true;
  config.outlier_mad_threshold = 0.0;  // Isolate the guard from rejection.
  config.max_fit_rmsle = 1e-9;         // Any real fit residual trips it.
  BatchLimits limits;
  limits.min_batch = 64;
  limits.max_batch_total = 8192;
  limits.max_batch_per_gpu = 1024;
  PolluxAgent agent(1, 128, 0.1, limits, config);
  const ThroughputParams prior = agent.model().params();
  agent.NotifyAllocation(Placement{2, 1});
  // Inconsistent telemetry: identical configurations with wildly different
  // iteration times cannot be fit below the (absurdly strict) threshold.
  agent.RecordIteration(Placement{1, 1}, 128, 0.1);
  agent.RecordIteration(Placement{2, 1}, 256, 5.0);
  agent.RecordIteration(Placement{2, 1}, 512, 0.01);
  agent.RecordIteration(Placement{1, 1}, 1024, 3.0);
  (void)agent.MakeReport();
  EXPECT_GE(agent.fits_rejected(), 1);
  // The model still carries the prior instead of the diverged fit.
  EXPECT_DOUBLE_EQ(agent.model().params().beta_grad, prior.beta_grad);
  EXPECT_DOUBLE_EQ(agent.model().params().gamma, prior.gamma);
}

TEST(RobustAgentTest, ReasonableFitsAreAcceptedUnderDefaultGuard) {
  AgentConfig config;
  config.robust_fitting = true;  // Default max_fit_rmsle = 1.5.
  BatchLimits limits;
  limits.min_batch = 64;
  limits.max_batch_total = 8192;
  limits.max_batch_per_gpu = 1024;
  PolluxAgent agent(1, 128, 0.1, limits, config);
  agent.NotifyAllocation(Placement{4, 1});
  const auto truth = FitterGroundTruth();
  for (const auto& obs : CleanObservations(truth)) {
    if (obs.placement.num_nodes == 1 && obs.placement.num_gpus <= 4) {
      agent.RecordIteration(obs.placement, obs.batch_size, obs.iter_time);
    }
  }
  (void)agent.MakeReport();
  EXPECT_EQ(agent.fits_rejected(), 0);
}

// ---------------------------------------------------------------------------
// Scheduler fallback: feasibility validation, projection, wall-clock budget.
// ---------------------------------------------------------------------------

GoodputModel SchedModel(double phi = 1000.0) {
  ThroughputParams params;
  params.alpha_grad = 0.05;
  params.beta_grad = 2e-4;
  params.alpha_sync_local = 0.03;
  params.beta_sync_local = 0.002;
  params.alpha_sync_node = 0.1;
  params.beta_sync_node = 0.005;
  params.gamma = 2.0;
  return GoodputModel(params, phi, 128);
}

SchedJobReport SchedReport(uint64_t id, int cap = 16) {
  SchedJobReport report;
  report.agent.job_id = id;
  report.agent.model = SchedModel();
  report.agent.limits.min_batch = 128;
  report.agent.limits.max_batch_total = 16384;
  report.agent.limits.max_batch_per_gpu = 1024;
  report.agent.max_gpus_cap = cap;
  return report;
}

SchedConfig SchedSmallConfig() {
  SchedConfig config;
  config.ga.population_size = 16;
  config.ga.generations = 10;
  config.ga.seed = 5;
  return config;
}

TEST(SchedFallbackTest, AllocationsFeasibleDetectsViolations) {
  const ClusterSpec cluster{{4, 0, 2}};  // Node 1 is failed (masked to zero).
  EXPECT_TRUE(PolluxSched::AllocationsFeasible(cluster, {}));
  EXPECT_TRUE(PolluxSched::AllocationsFeasible(cluster, {{1, {4, 0, 0}}, {2, {0, 0, 2}}}));
  // Over-committed node.
  EXPECT_FALSE(PolluxSched::AllocationsFeasible(cluster, {{1, {3, 0, 0}}, {2, {2, 0, 0}}}));
  // GPUs on the failed node.
  EXPECT_FALSE(PolluxSched::AllocationsFeasible(cluster, {{1, {0, 1, 0}}}));
  // Negative entries and rows wider than the cluster.
  EXPECT_FALSE(PolluxSched::AllocationsFeasible(cluster, {{1, {-1, 0, 0}}}));
  EXPECT_FALSE(PolluxSched::AllocationsFeasible(cluster, {{1, {1, 0, 0, 1}}}));
}

TEST(SchedFallbackTest, TinyBudgetFallsBackToProjectedAllocations) {
  PolluxSched normal(ClusterSpec::Homogeneous(2, 4), SchedSmallConfig());
  EXPECT_FALSE(normal.Schedule({SchedReport(1)}).empty());
  EXPECT_EQ(normal.fallback_rounds(), 0u);

  SchedConfig config = SchedSmallConfig();
  config.round_time_budget = 1e-12;  // Any real round overruns this.
  PolluxSched sched(ClusterSpec::Homogeneous(2, 4), config);
  SchedJobReport report = SchedReport(1);
  report.current_allocation = {2, 1};
  const auto allocations = sched.Schedule({report});
  EXPECT_GE(sched.fallback_rounds(), 1u);
  // The fallback is exactly the current allocation (it fits the cluster).
  ASSERT_EQ(allocations.size(), 1u);
  EXPECT_EQ(allocations.at(1), (std::vector<int>{2, 1}));
}

TEST(SchedFallbackTest, ProjectionDropsFailedNodesAndTrimsToCapacity) {
  const ClusterSpec degraded{{0, 4}};  // Node 0 crashed.
  PolluxSched sched(degraded, SchedSmallConfig());
  SchedJobReport a = SchedReport(1);
  a.current_allocation = {2, 2};
  SchedJobReport b = SchedReport(2);
  b.current_allocation = {0, 3};
  const auto projected = sched.ProjectOntoCluster({a, b});
  EXPECT_EQ(projected.at(1), (std::vector<int>{0, 2}));
  // Job 2 is trimmed to the remaining capacity on the surviving node.
  EXPECT_EQ(projected.at(2), (std::vector<int>{0, 2}));
  EXPECT_TRUE(PolluxSched::AllocationsFeasible(degraded, projected));
}

TEST(SchedFallbackTest, StaleReportClampsJobToItsCurrentSize) {
  PolluxSched sched(ClusterSpec::Homogeneous(2, 4), SchedSmallConfig());
  SchedJobReport report = SchedReport(1, /*cap=*/16);
  report.current_allocation = {1, 0};
  report.report_age = 600.0;  // Far past the default stale_report_age.
  const auto allocations = sched.Schedule({report});
  int total = 0;
  for (int g : allocations.at(1)) {
    total += g;
  }
  // A stale job is never grown past its current single GPU.
  EXPECT_LE(total, 1);

  // The same job with fresh telemetry expands onto the idle cluster.
  report.report_age = 0.0;
  PolluxSched fresh(ClusterSpec::Homogeneous(2, 4), SchedSmallConfig());
  const auto grown = fresh.Schedule({report});
  int grown_total = 0;
  for (int g : grown.at(1)) {
    grown_total += g;
  }
  EXPECT_GT(grown_total, 1);
}

// ---------------------------------------------------------------------------
// End-to-end simulator runs under injected faults.
// ---------------------------------------------------------------------------

std::vector<JobSpec> FaultTrace(uint64_t seed, int num_jobs = 10) {
  TraceOptions options;
  options.num_jobs = num_jobs;
  options.duration = 1800.0;
  options.max_gpus = 8;
  options.seed = seed;
  auto jobs = GenerateTrace(options);
  for (auto& job : jobs) {
    // Keep runtimes short so the fault sweep stays fast.
    if (job.model != ModelKind::kResNet18Cifar10 && job.model != ModelKind::kNeuMFMovieLens) {
      job.model = ModelKind::kNeuMFMovieLens;
      job.batch_size = 2048;
      job.requested_gpus = std::min(job.requested_gpus, 4);
    }
  }
  return jobs;
}

SimResult RunFaultSim(const FaultOptions& faults, uint64_t seed) {
  SimOptions options;
  options.cluster = ClusterSpec::Homogeneous(2, 4);
  options.seed = seed;
  options.faults = faults;
  options.check_invariants = true;
  SchedConfig sched_config;
  sched_config.ga.population_size = 12;
  sched_config.ga.generations = 6;
  sched_config.ga.seed = seed;
  PolluxPolicy policy(options.cluster, sched_config);
  return Simulator(options, FaultTrace(seed), &policy).Run();
}

int CountEvents(const SimResult& result, SimEventKind kind) {
  int count = 0;
  for (const auto& event : result.events) {
    count += event.kind == kind ? 1 : 0;
  }
  return count;
}

TEST(SimFaultsTest, NodeCrashEvictsRequeuesAndLosesNoJob) {
  FaultOptions faults;
  faults.mtbf_node = 1500.0;
  faults.repair_time = 120.0;
  const SimResult result = RunFaultSim(faults, 1);
  EXPECT_FALSE(result.timed_out);
  EXPECT_GE(CountEvents(result, SimEventKind::kNodeFail), 1);
  // Every eviction is logged, and evicted jobs were re-queued and finished:
  // no job is ever lost.
  int evictions = 0;
  ASSERT_EQ(result.jobs.size(), 10u);
  for (const auto& job : result.jobs) {
    EXPECT_TRUE(job.completed) << "job " << job.job_id;
    evictions += job.num_evictions;
  }
  EXPECT_EQ(evictions, CountEvents(result, SimEventKind::kEvict));
  EXPECT_GE(evictions, 1);
}

TEST(SimFaultsTest, DeterministicPerSeedUnderFaults) {
  FaultOptions faults;
  faults.mtbf_node = 1500.0;
  faults.repair_time = 120.0;
  faults.straggler_frac = 0.5;
  faults.report_drop_rate = 0.2;
  faults.restart_fail_rate = 0.3;
  const SimResult a = RunFaultSim(faults, 2);
  const SimResult b = RunFaultSim(faults, 2);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].finish_time, b.jobs[i].finish_time);
    EXPECT_EQ(a.jobs[i].gpu_time, b.jobs[i].gpu_time);
    EXPECT_EQ(a.jobs[i].num_evictions, b.jobs[i].num_evictions);
    EXPECT_EQ(a.jobs[i].num_restart_failures, b.jobs[i].num_restart_failures);
    EXPECT_EQ(a.jobs[i].backoff_seconds, b.jobs[i].backoff_seconds);
  }
  ASSERT_EQ(a.events.size(), b.events.size());
  for (size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].time, b.events[i].time);
    EXPECT_EQ(static_cast<int>(a.events[i].kind), static_cast<int>(b.events[i].kind));
    EXPECT_EQ(a.events[i].job_id, b.events[i].job_id);
  }
}

TEST(SimFaultsTest, DroppedReportsAreLoggedAndJobsStillFinish) {
  FaultOptions faults;
  faults.report_drop_rate = 1.0;  // Every periodic report is lost.
  const SimResult result = RunFaultSim(faults, 3);
  EXPECT_FALSE(result.timed_out);
  EXPECT_GE(CountEvents(result, SimEventKind::kReportDrop), 1);
  for (const auto& job : result.jobs) {
    EXPECT_TRUE(job.completed) << "job " << job.job_id;
  }
}

TEST(SimFaultsTest, RestartRetriesAccumulateBackoff) {
  FaultOptions faults;
  faults.restart_fail_rate = 0.6;
  const SimResult result = RunFaultSim(faults, 4);
  EXPECT_FALSE(result.timed_out);
  int failures = 0;
  double backoff = 0.0;
  for (const auto& job : result.jobs) {
    EXPECT_TRUE(job.completed) << "job " << job.job_id;
    failures += job.num_restart_failures;
    backoff += job.backoff_seconds;
    // Backoff only accrues alongside failures, starting at the initial value.
    if (job.num_restart_failures > 0) {
      EXPECT_GE(job.backoff_seconds, faults.restart_backoff_init);
    } else {
      EXPECT_DOUBLE_EQ(job.backoff_seconds, 0.0);
    }
  }
  EXPECT_GE(failures, 1);
  EXPECT_GT(backoff, 0.0);
  EXPECT_EQ(failures, CountEvents(result, SimEventKind::kRestartFailure));
}

TEST(SimFaultsTest, ZeroFaultKnobsAreByteIdenticalToPlainRuns) {
  // All knobs zero: no injector is constructed, so the trace must be
  // byte-identical to a run that never mentions faults — including with the
  // invariant checker enabled (observation must not perturb the system).
  SimOptions plain;
  plain.cluster = ClusterSpec::Homogeneous(2, 4);
  plain.seed = 1;
  SchedConfig sched_config;
  sched_config.ga.population_size = 12;
  sched_config.ga.generations = 6;
  sched_config.ga.seed = 1;
  PolluxPolicy policy_a(plain.cluster, sched_config);
  const SimResult a = Simulator(plain, FaultTrace(1), &policy_a).Run();

  SimOptions checked = plain;
  checked.faults = FaultOptions{};  // Explicit zeros.
  checked.check_invariants = true;
  PolluxPolicy policy_b(checked.cluster, sched_config);
  const SimResult b = Simulator(checked, FaultTrace(1), &policy_b).Run();

  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].finish_time, b.jobs[i].finish_time);
    EXPECT_EQ(a.jobs[i].gpu_time, b.jobs[i].gpu_time);
    EXPECT_EQ(a.jobs[i].num_restarts, b.jobs[i].num_restarts);
    EXPECT_EQ(a.jobs[i].num_evictions, 0);
    EXPECT_EQ(b.jobs[i].num_evictions, 0);
  }
  ASSERT_EQ(a.events.size(), b.events.size());
  for (size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].time, b.events[i].time);
    EXPECT_EQ(static_cast<int>(a.events[i].kind), static_cast<int>(b.events[i].kind));
  }
}

}  // namespace
}  // namespace pollux
