#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/json.h"

namespace pollux {
namespace obs {
namespace {

// Each test works on its own registry instance so it never depends on (or
// disturbs) what instrumented library code did to the global one.
TEST(MetricsTest, DisabledInstrumentsAreNoOps) {
  MetricsRegistry registry;
  ASSERT_FALSE(registry.enabled());
  Counter* counter = registry.GetCounter("c");
  Gauge* gauge = registry.GetGauge("g");
  Histogram* histogram = registry.GetHistogram("h");
  counter->Add(7);
  gauge->Set(3.5);
  histogram->Record(0.25);
  EXPECT_EQ(counter->value(), 0u);
  EXPECT_EQ(gauge->value(), 0.0);
  EXPECT_EQ(histogram->count(), 0u);
  EXPECT_EQ(histogram->min(), 0.0);
  EXPECT_EQ(histogram->Quantile(0.5), 0.0);
}

TEST(MetricsTest, HandlesAreStableAndKindChecked) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("sched.rounds");
  EXPECT_EQ(counter, registry.GetCounter("sched.rounds"));
  EXPECT_NE(counter, registry.GetCounter("sched.other"));
  EXPECT_DEATH(registry.GetGauge("sched.rounds"), "sched.rounds");
}

TEST(MetricsTest, ConcurrentCounterIncrementsSumExactly) {
  MetricsRegistry registry;
  registry.SetEnabled(true);
  Counter* counter = registry.GetCounter("c");
  Histogram* histogram = registry.GetHistogram("h");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter, histogram] {
      for (int i = 0; i < kPerThread; ++i) {
        counter->Add();
        histogram->Record(1.0);
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(counter->value(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(histogram->count(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(histogram->sum(), static_cast<double>(kThreads) * kPerThread);
}

TEST(MetricsTest, GaugeKeepsLastValue) {
  MetricsRegistry registry;
  registry.SetEnabled(true);
  Gauge* gauge = registry.GetGauge("g");
  gauge->Set(1.0);
  gauge->Set(-2.5);
  EXPECT_EQ(gauge->value(), -2.5);
}

TEST(MetricsTest, HistogramTracksExtremesAndMean) {
  MetricsRegistry registry;
  registry.SetEnabled(true);
  Histogram* histogram = registry.GetHistogram("h");
  histogram->Record(0.001);
  histogram->Record(0.01);
  histogram->Record(10.0);
  EXPECT_EQ(histogram->count(), 3u);
  EXPECT_DOUBLE_EQ(histogram->min(), 0.001);
  EXPECT_DOUBLE_EQ(histogram->max(), 10.0);
  EXPECT_NEAR(histogram->mean(), 10.011 / 3.0, 1e-12);
}

TEST(MetricsTest, HistogramQuantilesWithinBucketResolution) {
  MetricsRegistry registry;
  registry.SetEnabled(true);
  Histogram* histogram = registry.GetHistogram("h");
  // 1..1000 ms: p50 ~ 0.5 s, p99 ~ 0.99 s. Log buckets with 8 per octave
  // give ~9% worst-case relative error.
  for (int i = 1; i <= 1000; ++i) {
    histogram->Record(i * 1e-3);
  }
  EXPECT_NEAR(histogram->Quantile(0.5), 0.5, 0.5 * 0.10);
  EXPECT_NEAR(histogram->Quantile(0.95), 0.95, 0.95 * 0.10);
  EXPECT_NEAR(histogram->Quantile(0.99), 0.99, 0.99 * 0.10);
  // Quantiles are clamped into [min, max].
  EXPECT_GE(histogram->Quantile(0.0), histogram->min());
  EXPECT_LE(histogram->Quantile(1.0), histogram->max());
}

TEST(MetricsTest, HistogramSingleSampleQuantilesAreExact) {
  MetricsRegistry registry;
  registry.SetEnabled(true);
  Histogram* histogram = registry.GetHistogram("h");
  histogram->Record(0.125);
  // Clamping to [min, max] collapses every quantile onto the one sample.
  EXPECT_DOUBLE_EQ(histogram->Quantile(0.5), 0.125);
  EXPECT_DOUBLE_EQ(histogram->Quantile(0.99), 0.125);
}

TEST(MetricsTest, ResetZeroesInstrumentsButKeepsHandles) {
  MetricsRegistry registry;
  registry.SetEnabled(true);
  Counter* counter = registry.GetCounter("c");
  Histogram* histogram = registry.GetHistogram("h");
  counter->Add(5);
  histogram->Record(2.0);
  registry.Reset();
  EXPECT_EQ(counter->value(), 0u);
  EXPECT_EQ(histogram->count(), 0u);
  EXPECT_EQ(histogram->min(), 0.0);
  counter->Add();
  EXPECT_EQ(counter->value(), 1u);
  EXPECT_EQ(counter, registry.GetCounter("c"));
}

TEST(MetricsTest, JsonExportParsesAndContainsEveryInstrument) {
  MetricsRegistry registry;
  registry.SetEnabled(true);
  registry.GetCounter("sched.rounds")->Add(3);
  registry.GetGauge("sched.last_utility")->Set(0.75);
  Histogram* histogram = registry.GetHistogram("sched.round_time_s");
  histogram->Record(0.001);
  histogram->Record(0.004);
  const std::string json = registry.ToJson();
  std::string error;
  EXPECT_TRUE(JsonParseOk(json, &error)) << error << "\n" << json;
  EXPECT_NE(json.find("\"sched.rounds\": 3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"sched.last_utility\""), std::string::npos);
  EXPECT_NE(json.find("\"sched.round_time_s\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

TEST(MetricsTest, JsonEscapesNonFiniteGaugesToZero) {
  MetricsRegistry registry;
  registry.SetEnabled(true);
  registry.GetGauge("g")->Set(std::nan(""));
  const std::string json = registry.ToJson();
  std::string error;
  EXPECT_TRUE(JsonParseOk(json, &error)) << error << "\n" << json;
  EXPECT_EQ(json.find("nan"), std::string::npos) << json;
}

}  // namespace
}  // namespace obs
}  // namespace pollux
