#include "sim/autoscale.h"

#include <gtest/gtest.h>

#include "baselines/or_policy.h"
#include "sim/simulator.h"

namespace pollux {
namespace {

JobSnapshot BigJobSnapshot() {
  JobSnapshot snapshot;
  snapshot.job_id = 0;
  ThroughputParams params;
  params.alpha_grad = 0.02;
  params.beta_grad = 0.01;
  params.alpha_sync_local = 0.08;
  params.beta_sync_local = 0.004;
  params.alpha_sync_node = 0.25;
  params.beta_sync_node = 0.012;
  params.gamma = 2.2;
  snapshot.agent.job_id = 0;
  snapshot.agent.model = GoodputModel(params, 2000.0, 200);
  snapshot.agent.limits.min_batch = 200;
  snapshot.agent.limits.max_batch_total = 32000;
  snapshot.agent.limits.max_batch_per_gpu = 256;
  snapshot.agent.max_gpus_cap = 64;
  snapshot.batch_size = 200;
  return snapshot;
}

SchedulerContext MakeContext(const ClusterSpec& cluster, const JobSnapshot& job) {
  SchedulerContext context;
  context.cluster = &cluster;
  context.jobs.push_back(job);
  return context;
}

TEST(ThroughputAutoscalerTest, EmptyClusterShrinksToMin) {
  ThroughputAutoscaler autoscaler(2, 16, 0.5);
  const ClusterSpec cluster = ClusterSpec::Homogeneous(8, 4);
  SchedulerContext context;
  context.cluster = &cluster;
  EXPECT_EQ(autoscaler.DecideNodes(context, 8, 4), 2);
}

TEST(ThroughputAutoscalerTest, ScalesOutForScalableJob) {
  ThroughputAutoscaler autoscaler(1, 16, 0.5);
  const ClusterSpec cluster = ClusterSpec::Homogeneous(1, 4);
  const auto context = MakeContext(cluster, BigJobSnapshot());
  // A ResNet-50-like job at the throughput-maximizing batch scales well, so
  // the throughput-only rule asks for many nodes immediately.
  EXPECT_GT(autoscaler.DecideNodes(context, 1, 4), 4);
}

TEST(ThroughputAutoscalerTest, StricterThresholdRequestsFewerNodes) {
  const ClusterSpec cluster = ClusterSpec::Homogeneous(1, 4);
  const auto context = MakeContext(cluster, BigJobSnapshot());
  ThroughputAutoscaler loose(1, 16, 0.3);
  ThroughputAutoscaler strict(1, 16, 0.9);
  EXPECT_GE(loose.DecideNodes(context, 1, 4), strict.DecideNodes(context, 1, 4));
}

TEST(OrPolicyTest, UsesThroughputOnlyBatchRule) {
  ThroughputOnlyPolicy policy(ClusterSpec::Homogeneous(2, 4), SchedConfig{});
  EXPECT_TRUE(policy.adapts_batch_size());
  EXPECT_TRUE(policy.throughput_only_batch());
  EXPECT_STREQ(policy.name(), "or-et-al");
}

TEST(AutoscaleSimTest, OrPolicyRunsMaxFeasibleBatch) {
  // Under the Or et al. policy, a running job's batch size must equal the
  // largest feasible batch for its allocation.
  JobSpec job;
  job.job_id = 0;
  job.model = ModelKind::kResNet18Cifar10;
  job.batch_size = 128;
  job.requested_gpus = 1;

  SimOptions options;
  options.cluster = ClusterSpec::Homogeneous(1, 4);
  options.seed = 5;
  SchedConfig sched_config;
  sched_config.ga.population_size = 8;
  sched_config.ga.generations = 4;
  ThroughputOnlyPolicy policy(options.cluster, sched_config);
  Simulator sim(options, {job}, &policy);
  const SimResult result = sim.Run();
  EXPECT_TRUE(result.jobs[0].completed);
  // Max feasible batch for <= 4 GPUs (1024/GPU) appears in the timeline.
  long max_batch = 0;
  for (const auto& sample : result.timeline) {
    max_batch = std::max(max_batch, sample.max_batch_size);
  }
  EXPECT_GE(max_batch, 2048);
}

TEST(AutoscaleSimTest, GoodputAutoscalerGrowsClusterOverTraining) {
  JobSpec job;
  job.job_id = 0;
  job.model = ModelKind::kResNet50ImageNet;
  job.batch_size = 200;
  job.requested_gpus = 1;

  SimOptions options;
  options.cluster = ClusterSpec::Homogeneous(1, 4);
  options.gpus_per_node = 4;
  options.autoscale_interval = 300.0;
  options.seed = 3;
  SchedConfig sched_config;
  sched_config.ga.population_size = 12;
  sched_config.ga.generations = 6;
  PolluxPolicy policy(options.cluster, sched_config);
  AutoscaleConfig autoscale;
  autoscale.min_nodes = 1;
  autoscale.max_nodes = 8;
  GoodputAutoscaler autoscaler(autoscale, &policy);
  Simulator sim(options, {job}, &policy, &autoscaler);
  const SimResult result = sim.Run();
  ASSERT_TRUE(result.jobs[0].completed);

  // Early cluster smaller than late cluster (phi grows over training).
  int early_max = 0;
  int late_max = 0;
  for (const auto& sample : result.timeline) {
    if (sample.time < 0.2 * result.makespan) {
      early_max = std::max(early_max, sample.nodes);
    } else if (sample.time > 0.7 * result.makespan) {
      late_max = std::max(late_max, sample.nodes);
    }
  }
  EXPECT_LT(early_max, late_max);
  EXPECT_LE(late_max, 8);
  // Elastic provisioning costs less than holding max_nodes throughout.
  EXPECT_LT(result.node_seconds, result.makespan * 8.0);
}

TEST(AutoscaleSimTest, GoodputCheaperThanThroughputDriven) {
  // The Fig. 10 headline at test scale: goodput-driven provisioning spends
  // fewer node-seconds than throughput-driven for the same job.
  JobSpec job;
  job.job_id = 0;
  job.model = ModelKind::kResNet50ImageNet;
  job.batch_size = 200;
  job.requested_gpus = 1;

  auto run = [&](bool goodput) {
    SimOptions options;
    options.cluster = ClusterSpec::Homogeneous(1, 4);
    options.gpus_per_node = 4;
    options.autoscale_interval = 300.0;
    options.seed = 9;
    SchedConfig sched_config;
    sched_config.ga.population_size = 12;
    sched_config.ga.generations = 6;
    if (goodput) {
      PolluxPolicy policy(options.cluster, sched_config);
      AutoscaleConfig autoscale;
      autoscale.min_nodes = 1;
      autoscale.max_nodes = 8;
      GoodputAutoscaler autoscaler(autoscale, &policy);
      return Simulator(options, {job}, &policy, &autoscaler).Run();
    }
    ThroughputOnlyPolicy policy(options.cluster, sched_config);
    ThroughputAutoscaler autoscaler(1, 8, 0.5);
    return Simulator(options, {job}, &policy, &autoscaler).Run();
  };
  const SimResult goodput = run(true);
  const SimResult throughput = run(false);
  ASSERT_TRUE(goodput.jobs[0].completed);
  ASSERT_TRUE(throughput.jobs[0].completed);
  EXPECT_LT(goodput.node_seconds, throughput.node_seconds);
}

TEST(UtilizationTest, BoundedAndPositiveOnBusyCluster) {
  JobSpec job;
  job.job_id = 0;
  job.model = ModelKind::kResNet18Cifar10;
  job.batch_size = 512;
  job.requested_gpus = 4;

  SimOptions options;
  options.cluster = ClusterSpec::Homogeneous(1, 4);
  options.seed = 2;
  SchedConfig sched_config;
  sched_config.ga.population_size = 8;
  sched_config.ga.generations = 4;
  PolluxPolicy policy(options.cluster, sched_config);
  const SimResult result = Simulator(options, {job}, &policy).Run();
  EXPECT_GT(result.AvgUtilization(), 0.1);
  EXPECT_LE(result.AvgUtilization(), 1.0 + 1e-9);
}

}  // namespace
}  // namespace pollux
