// Hostile-input tests for the pollux_schedd frame codec (service/wire.h):
// a decoder fed truncated, bad-magic, oversized, bit-flipped, or random bytes
// must report the right distinct FrameStatus, never read out of bounds
// (ASan/UBSan jobs run this suite), and never misparse garbage as a frame.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "service/wire.h"
#include "util/rng.h"

namespace pollux {
namespace service {
namespace {

TEST(WireTest, RoundTripEmptyAndPayload) {
  for (const std::string& payload : {std::string(), std::string("hello"),
                                     std::string(100000, 'x')}) {
    const std::string bytes = EncodeFrame(kMsgReport, payload);
    EXPECT_EQ(bytes.size(), kFrameHeaderSize + payload.size() + kFrameTrailerSize);
    Frame frame;
    size_t consumed = 0;
    ASSERT_EQ(DecodeFrame(bytes, kDefaultMaxFrameBytes, &frame, &consumed),
              FrameStatus::kOk);
    EXPECT_EQ(consumed, bytes.size());
    EXPECT_EQ(frame.type, static_cast<uint32_t>(kMsgReport));
    EXPECT_EQ(frame.payload, payload);
  }
}

TEST(WireTest, TruncationAtEveryBoundaryNeedsMore) {
  const std::string bytes = EncodeFrame(kMsgRunRound, "payload-bytes");
  for (size_t len = 0; len < bytes.size(); ++len) {
    const std::string prefix = bytes.substr(0, len);
    Frame frame;
    size_t consumed = 1;
    EXPECT_EQ(DecodeFrame(prefix, kDefaultMaxFrameBytes, &frame, &consumed),
              FrameStatus::kNeedMore)
        << "prefix length " << len;
  }
}

TEST(WireTest, BadMagicRejectedImmediately) {
  std::string bytes = EncodeFrame(kMsgPing, "");
  bytes[0] ^= 0x01;
  Frame frame;
  size_t consumed = 1;
  EXPECT_EQ(DecodeFrame(bytes, kDefaultMaxFrameBytes, &frame, &consumed),
            FrameStatus::kBadMagic);
  EXPECT_EQ(consumed, 0u);
  // A garbage stream is rejected from its first four bytes — it can never
  // stall a connection as an eternally incomplete frame.
  EXPECT_EQ(DecodeFrame(std::string("XXXX"), kDefaultMaxFrameBytes, &frame, &consumed),
            FrameStatus::kBadMagic);
}

TEST(WireTest, CrcFlipAnywhereIsDetected) {
  const std::string clean = EncodeFrame(kMsgSubmitJob, "abcdef");
  // Flip one bit at every position after the magic (header, payload, CRC).
  for (size_t i = 4; i < clean.size(); ++i) {
    std::string bytes = clean;
    bytes[i] ^= 0x40;
    Frame frame;
    size_t consumed = 1;
    const FrameStatus status = DecodeFrame(bytes, kDefaultMaxFrameBytes, &frame, &consumed);
    // A flip in the length field may instead declare an oversized or longer
    // frame (kNeedMore); everything else must surface as a CRC mismatch.
    if (i >= 8 && i < 16) {
      EXPECT_NE(status, FrameStatus::kOk) << "flip at " << i;
    } else {
      EXPECT_EQ(status, FrameStatus::kBadCrc) << "flip at " << i;
    }
  }
}

TEST(WireTest, OversizedDeclaredLength) {
  const std::string bytes = EncodeFrame(kMsgReport, std::string(2048, 'z'));
  Frame frame;
  size_t consumed = 1;
  EXPECT_EQ(DecodeFrame(bytes, /*max_payload=*/1024, &frame, &consumed),
            FrameStatus::kOversized);
  EXPECT_EQ(consumed, 0u);
  // The same frame decodes under a limit it fits.
  EXPECT_EQ(DecodeFrame(bytes, 2048, &frame, &consumed), FrameStatus::kOk);
}

TEST(WireTest, BackToBackFramesDecodeInOrder) {
  std::string stream;
  for (uint32_t i = 0; i < 5; ++i) {
    stream += EncodeFrame(kMsgAck, std::string(i, 'a' + static_cast<char>(i)));
  }
  for (uint32_t i = 0; i < 5; ++i) {
    Frame frame;
    size_t consumed = 0;
    ASSERT_EQ(DecodeFrame(stream, kDefaultMaxFrameBytes, &frame, &consumed),
              FrameStatus::kOk);
    EXPECT_EQ(frame.payload.size(), i);
    stream.erase(0, consumed);
  }
  EXPECT_TRUE(stream.empty());
}

TEST(WireTest, FuzzRandomBytesNeverCrash) {
  Rng rng(20260809);
  for (int iteration = 0; iteration < 2000; ++iteration) {
    const size_t len = static_cast<size_t>(rng.UniformInt(0, 256));
    std::string bytes(len, '\0');
    for (char& c : bytes) c = static_cast<char>(rng.UniformInt(0, 255));
    Frame frame;
    size_t consumed = 0;
    const FrameStatus status = DecodeFrame(bytes, 1 << 16, &frame, &consumed);
    if (status == FrameStatus::kOk) {
      // Vanishingly unlikely (needs a valid magic AND CRC), but if it
      // happens the consumed count must stay in bounds.
      EXPECT_LE(consumed, bytes.size());
    } else {
      EXPECT_EQ(consumed, 0u);
    }
  }
}

TEST(WireTest, FuzzMutatedValidFramesNeverCrash) {
  Rng rng(42);
  const std::string clean = EncodeFrame(kMsgReport, std::string(64, 'p'));
  for (int iteration = 0; iteration < 2000; ++iteration) {
    std::string bytes = clean;
    const int mutations = static_cast<int>(rng.UniformInt(1, 4));
    for (int m = 0; m < mutations; ++m) {
      const size_t pos = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(bytes.size()) - 1));
      bytes[pos] = static_cast<char>(rng.UniformInt(0, 255));
    }
    if (rng.Bernoulli(0.5)) {
      bytes.resize(static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(bytes.size()))));
    }
    Frame frame;
    size_t consumed = 0;
    (void)DecodeFrame(bytes, 1 << 16, &frame, &consumed);  // must not crash
    EXPECT_LE(consumed, bytes.size());
  }
}

TEST(WireTest, ErrorAndNackPayloadRoundTrip) {
  uint32_t code = 0;
  std::string detail;
  ASSERT_TRUE(DecodeErrorPayload(EncodeError(kErrBadCrc, "crc"), &code, &detail));
  EXPECT_EQ(code, static_cast<uint32_t>(kErrBadCrc));
  EXPECT_EQ(detail, "crc");
  ASSERT_TRUE(DecodeErrorPayload(EncodeNack(kNackQueueFull, "full"), &code, &detail));
  EXPECT_EQ(code, static_cast<uint32_t>(kNackQueueFull));
  EXPECT_EQ(detail, "full");
  EXPECT_FALSE(DecodeErrorPayload("xy", &code, &detail));
}

TEST(WireTest, NamesAreStable) {
  EXPECT_STREQ(FrameStatusName(FrameStatus::kBadCrc), "bad_crc");
  EXPECT_STREQ(ErrCodeName(kErrOversized), "oversized");
  EXPECT_STREQ(NackReasonName(kNackDraining), "draining");
  EXPECT_STREQ(MsgTypeName(kMsgRunRound), "run_round");
}

}  // namespace
}  // namespace service
}  // namespace pollux
