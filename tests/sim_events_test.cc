#include <gtest/gtest.h>

#include <map>

#include "sim/pollux_policy.h"
#include "sim/simulator.h"

namespace pollux {
namespace {

SimResult RunSmallWorkload() {
  std::vector<JobSpec> trace;
  for (uint64_t id = 0; id < 3; ++id) {
    JobSpec job;
    job.job_id = id;
    job.model = ModelKind::kNeuMFMovieLens;
    job.submit_time = 120.0 * static_cast<double>(id);
    job.requested_gpus = 2;
    job.batch_size = 2048;
    trace.push_back(job);
  }
  SimOptions options;
  options.cluster = ClusterSpec::Homogeneous(2, 4);
  options.seed = 7;
  SchedConfig sched_config;
  sched_config.ga.population_size = 12;
  sched_config.ga.generations = 6;
  PolluxPolicy policy(options.cluster, sched_config);
  return Simulator(options, trace, &policy).Run();
}

TEST(SimEventsTest, EveryJobHasSubmitStartComplete) {
  const SimResult result = RunSmallWorkload();
  std::map<uint64_t, int> submits;
  std::map<uint64_t, int> starts;
  std::map<uint64_t, int> completes;
  for (const auto& event : result.events) {
    switch (event.kind) {
      case SimEventKind::kSubmit:
        ++submits[event.job_id];
        break;
      case SimEventKind::kStart:
        ++starts[event.job_id];
        break;
      case SimEventKind::kComplete:
        ++completes[event.job_id];
        break;
      default:
        break;
    }
  }
  for (uint64_t id = 0; id < 3; ++id) {
    EXPECT_EQ(submits[id], 1) << id;
    EXPECT_EQ(starts[id], 1) << id;
    EXPECT_EQ(completes[id], 1) << id;
  }
}

TEST(SimEventsTest, EventsAreCausallyOrderedPerJob) {
  const SimResult result = RunSmallWorkload();
  std::map<uint64_t, double> submit_time;
  std::map<uint64_t, double> start_time;
  for (const auto& event : result.events) {
    if (event.kind == SimEventKind::kSubmit) {
      submit_time[event.job_id] = event.time;
    } else if (event.kind == SimEventKind::kStart) {
      start_time[event.job_id] = event.time;
      EXPECT_GE(event.time, submit_time[event.job_id]);
    } else if (event.kind == SimEventKind::kComplete) {
      EXPECT_GE(event.time, start_time[event.job_id]);
    }
  }
}

TEST(SimEventsTest, ReallocationEventsCarryPlacements) {
  const SimResult result = RunSmallWorkload();
  int reallocations = 0;
  for (const auto& event : result.events) {
    if (event.kind == SimEventKind::kReallocate) {
      ++reallocations;
      EXPECT_GT(event.gpus, 0);
      EXPECT_GT(event.nodes, 0);
      EXPECT_GE(event.gpus, event.nodes);
    }
  }
  EXPECT_GT(reallocations, 0);  // At least the initial placements.
}

TEST(SimEventsTest, KindNamesAreStable) {
  EXPECT_STREQ(SimEventKindName(SimEventKind::kSubmit), "submit");
  EXPECT_STREQ(SimEventKindName(SimEventKind::kStart), "start");
  EXPECT_STREQ(SimEventKindName(SimEventKind::kReallocate), "reallocate");
  EXPECT_STREQ(SimEventKindName(SimEventKind::kPreempt), "preempt");
  EXPECT_STREQ(SimEventKindName(SimEventKind::kComplete), "complete");
  EXPECT_STREQ(SimEventKindName(SimEventKind::kClusterResize), "cluster_resize");
  EXPECT_STREQ(SimEventKindName(SimEventKind::kNodeFail), "node_fail");
  EXPECT_STREQ(SimEventKindName(SimEventKind::kNodeRepair), "node_repair");
  EXPECT_STREQ(SimEventKindName(SimEventKind::kEvict), "evict");
  EXPECT_STREQ(SimEventKindName(SimEventKind::kRestartFailure), "restart_failure");
  EXPECT_STREQ(SimEventKindName(SimEventKind::kReportDrop), "report_drop");
  EXPECT_STREQ(SimEventKindName(SimEventKind::kSchedCrash), "sched_crash");
}

}  // namespace
}  // namespace pollux
