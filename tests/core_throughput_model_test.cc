#include "core/throughput_model.h"

#include <gtest/gtest.h>

#include <cmath>

namespace pollux {
namespace {

ThroughputParams TypicalParams() {
  ThroughputParams params;
  params.alpha_grad = 0.05;
  params.beta_grad = 2e-4;
  params.alpha_sync_local = 0.03;
  params.beta_sync_local = 0.002;
  params.alpha_sync_node = 0.1;
  params.beta_sync_node = 0.005;
  params.gamma = 2.0;
  return params;
}

TEST(ThroughputModelTest, SingleGpuHasNoSync) {
  const auto params = TypicalParams();
  EXPECT_DOUBLE_EQ(SyncTime(params, Placement{1, 1}), 0.0);
  EXPECT_DOUBLE_EQ(IterTime(params, Placement{1, 1}, 100.0),
                   GradTime(params, Placement{1, 1}, 100.0));
}

TEST(ThroughputModelTest, GradTimeScalesWithLocalBatch) {
  const auto params = TypicalParams();
  // Same per-GPU batch => same grad time.
  EXPECT_DOUBLE_EQ(GradTime(params, Placement{1, 1}, 100.0),
                   GradTime(params, Placement{4, 1}, 400.0));
  // Doubling the global batch at fixed K doubles the variable part.
  const double t1 = GradTime(params, Placement{2, 1}, 200.0);
  const double t2 = GradTime(params, Placement{2, 1}, 400.0);
  EXPECT_NEAR(t2 - t1, params.beta_grad * 100.0, 1e-12);
}

TEST(ThroughputModelTest, SyncRegimesAtKEquals2) {
  const auto params = TypicalParams();
  // K=2 on one node uses local parameters with zero retrogression term.
  EXPECT_DOUBLE_EQ(SyncTime(params, Placement{2, 1}), params.alpha_sync_local);
  // K=2 across two nodes uses node parameters.
  EXPECT_DOUBLE_EQ(SyncTime(params, Placement{2, 2}), params.alpha_sync_node);
  // Retrogression grows linearly in K - 2.
  EXPECT_DOUBLE_EQ(SyncTime(params, Placement{6, 2}),
                   params.alpha_sync_node + 4.0 * params.beta_sync_node);
}

TEST(ThroughputModelTest, CoLocatedSyncIsFaster) {
  const auto params = TypicalParams();
  EXPECT_LT(SyncTime(params, Placement{4, 1}), SyncTime(params, Placement{4, 2}));
}

TEST(ThroughputModelTest, GammaOneIsSum) {
  auto params = TypicalParams();
  params.gamma = 1.0;
  const Placement placement{4, 2};
  const double expected = GradTime(params, placement, 512.0) + SyncTime(params, placement);
  EXPECT_NEAR(IterTime(params, placement, 512.0), expected, 1e-12);
}

TEST(ThroughputModelTest, LargeGammaApproachesMax) {
  auto params = TypicalParams();
  params.gamma = 500.0;
  const Placement placement{4, 2};
  const double grad = GradTime(params, placement, 512.0);
  const double sync = SyncTime(params, placement);
  EXPECT_NEAR(IterTime(params, placement, 512.0), std::max(grad, sync), 1e-3);
}

TEST(ThroughputModelTest, IterTimeBetweenMaxAndSum) {
  const auto params = TypicalParams();
  const Placement placement{8, 2};
  const double grad = GradTime(params, placement, 1024.0);
  const double sync = SyncTime(params, placement);
  const double iter = IterTime(params, placement, 1024.0);
  EXPECT_GE(iter, std::max(grad, sync));
  EXPECT_LE(iter, grad + sync + 1e-12);
}

TEST(ThroughputModelTest, GammaBelowOneIsClampedToSum) {
  auto params = TypicalParams();
  params.gamma = 0.5;  // Invalid; model clamps to 1.
  const Placement placement{4, 2};
  const double expected = GradTime(params, placement, 512.0) + SyncTime(params, placement);
  EXPECT_NEAR(IterTime(params, placement, 512.0), expected, 1e-12);
}

TEST(ThroughputModelTest, ZeroGpusYieldsZeroThroughput) {
  const auto params = TypicalParams();
  EXPECT_DOUBLE_EQ(ModelThroughput(params, Placement{0, 0}, 128.0), 0.0);
  EXPECT_DOUBLE_EQ(ModelThroughput(params, Placement{1, 1}, 0.0), 0.0);
}

TEST(ThroughputModelTest, LargerBatchEnablesBetterScaling) {
  // The Fig. 1a phenomenon: with a small batch, throughput saturates via
  // Amdahl's law; a larger batch keeps scaling further.
  const auto params = TypicalParams();
  auto scaling = [&](double m) {
    return ModelThroughput(params, Placement{16, 4}, m) /
           ModelThroughput(params, Placement{1, 1}, m);
  };
  EXPECT_GT(scaling(2048.0), scaling(512.0));
}

// Property sweep: throughput is nondecreasing in K (fixed batch, single
// node regime to isolate Amdahl behaviour) for a family of parameter sets
// with zero retrogression.
struct ScalingCase {
  double alpha_grad;
  double beta_grad;
  double alpha_sync;
  double gamma;
};

class ThroughputScalingSweep : public ::testing::TestWithParam<ScalingCase> {};

TEST_P(ThroughputScalingSweep, MonotoneInGpus) {
  const ScalingCase c = GetParam();
  ThroughputParams params;
  params.alpha_grad = c.alpha_grad;
  params.beta_grad = c.beta_grad;
  params.alpha_sync_local = c.alpha_sync;
  params.gamma = c.gamma;
  double previous = 0.0;
  for (int k = 1; k <= 32; ++k) {
    const double throughput = ModelThroughput(params, Placement{k, 1}, 1024.0);
    EXPECT_GE(throughput, previous - 1e-9) << "K=" << k;
    previous = throughput;
  }
}

INSTANTIATE_TEST_SUITE_P(ParamFamilies, ThroughputScalingSweep,
                         ::testing::Values(ScalingCase{0.01, 1e-4, 0.02, 1.0},
                                           ScalingCase{0.05, 5e-4, 0.05, 2.0},
                                           ScalingCase{0.0, 1e-3, 0.1, 3.0},
                                           ScalingCase{0.1, 1e-5, 0.0, 1.5}));

}  // namespace
}  // namespace pollux
