#include "core/genetic.h"

#include <gtest/gtest.h>

#include "core/speedup_table.h"

namespace pollux {
namespace {

GoodputModel TypicalModel(double phi = 1000.0) {
  ThroughputParams params;
  params.alpha_grad = 0.05;
  params.beta_grad = 2e-4;
  params.alpha_sync_local = 0.03;
  params.beta_sync_local = 0.002;
  params.alpha_sync_node = 0.1;
  params.beta_sync_node = 0.005;
  params.gamma = 2.0;
  return GoodputModel(params, phi, 128);
}

BatchLimits TypicalLimits() {
  BatchLimits limits;
  limits.min_batch = 128;
  limits.max_batch_total = 16384;
  limits.max_batch_per_gpu = 1024;
  return limits;
}

SchedJobInfo MakeJob(uint64_t id, int cap, double phi = 1000.0) {
  SchedJobInfo info;
  info.job_id = id;
  info.speedups = SpeedupTable(TypicalModel(phi), TypicalLimits(), 64);
  info.max_gpus_cap = cap;
  return info;
}

GaOptions SmallGa(uint64_t seed = 7) {
  GaOptions options;
  options.population_size = 20;
  options.generations = 15;
  options.seed = seed;
  return options;
}

TEST(GeneticRepairTest, EnforcesNodeCapacity) {
  GeneticOptimizer ga(ClusterSpec::Homogeneous(2, 4), SmallGa());
  std::vector<SchedJobInfo> jobs = {MakeJob(1, 64), MakeJob(2, 64)};
  AllocationMatrix matrix(2, 2);
  matrix.at(0, 0) = 4;
  matrix.at(1, 0) = 4;  // Node 0 over-committed (8 > 4).
  ga.Repair(matrix, jobs);
  EXPECT_TRUE(matrix.WithinCapacity(ga.cluster()));
}

TEST(GeneticRepairTest, EnforcesExplorationCap) {
  GeneticOptimizer ga(ClusterSpec::Homogeneous(4, 4), SmallGa());
  std::vector<SchedJobInfo> jobs = {MakeJob(1, 2)};
  AllocationMatrix matrix(1, 4);
  matrix.at(0, 0) = 4;
  matrix.at(0, 1) = 4;
  ga.Repair(matrix, jobs);
  EXPECT_LE(matrix.JobPlacement(0).num_gpus, 2);
}

TEST(GeneticRepairTest, InterferenceAvoidance) {
  GaOptions options = SmallGa();
  options.interference_avoidance = true;
  GeneticOptimizer ga(ClusterSpec::Homogeneous(3, 4), options);
  std::vector<SchedJobInfo> jobs = {MakeJob(1, 64), MakeJob(2, 64)};
  AllocationMatrix matrix(2, 3);
  // Both jobs distributed and sharing node 1.
  matrix.at(0, 0) = 4;
  matrix.at(0, 1) = 2;
  matrix.at(1, 1) = 2;
  matrix.at(1, 2) = 4;
  ga.Repair(matrix, jobs);
  // No node may host two distributed jobs.
  for (size_t n = 0; n < 3; ++n) {
    int distributed = 0;
    for (size_t j = 0; j < 2; ++j) {
      if (matrix.at(j, n) > 0 && matrix.IsDistributed(j)) {
        ++distributed;
      }
    }
    EXPECT_LE(distributed, 1) << "node " << n;
  }
}

TEST(GeneticRepairTest, InterferenceAvoidanceCanBeDisabled) {
  GaOptions options = SmallGa();
  options.interference_avoidance = false;
  GeneticOptimizer ga(ClusterSpec::Homogeneous(3, 4), options);
  std::vector<SchedJobInfo> jobs = {MakeJob(1, 64), MakeJob(2, 64)};
  AllocationMatrix matrix(2, 3);
  matrix.at(0, 0) = 4;
  matrix.at(0, 1) = 2;
  matrix.at(1, 1) = 2;
  matrix.at(1, 2) = 4;
  ga.Repair(matrix, jobs);
  // Shared node survives when avoidance is off (capacity is respected).
  EXPECT_EQ(matrix.at(0, 1), 2);
  EXPECT_EQ(matrix.at(1, 1), 2);
}

TEST(GeneticRepairTest, IdempotentOnFeasibleMatrix) {
  GeneticOptimizer ga(ClusterSpec::Homogeneous(2, 4), SmallGa());
  std::vector<SchedJobInfo> jobs = {MakeJob(1, 8), MakeJob(2, 8)};
  AllocationMatrix matrix(2, 2);
  matrix.at(0, 0) = 4;
  matrix.at(1, 1) = 4;
  AllocationMatrix copy = matrix;
  ga.Repair(matrix, jobs);
  EXPECT_EQ(matrix, copy);
}

TEST(GeneticCrossoverTest, RowsComeFromParents) {
  GeneticOptimizer ga(ClusterSpec::Homogeneous(2, 4), SmallGa());
  AllocationMatrix a(3, 2);
  AllocationMatrix b(3, 2);
  for (size_t j = 0; j < 3; ++j) {
    a.at(j, 0) = 1;
    b.at(j, 1) = 2;
  }
  const AllocationMatrix child = ga.Crossover(a, b);
  for (size_t j = 0; j < 3; ++j) {
    const bool from_a = child.at(j, 0) == 1 && child.at(j, 1) == 0;
    const bool from_b = child.at(j, 0) == 0 && child.at(j, 1) == 2;
    EXPECT_TRUE(from_a || from_b) << "row " << j;
  }
}

TEST(GeneticMutateTest, StaysWithinNodeRange) {
  GeneticOptimizer ga(ClusterSpec::Homogeneous(3, 4), SmallGa());
  AllocationMatrix matrix(4, 3);
  for (int trial = 0; trial < 50; ++trial) {
    ga.Mutate(matrix);
    for (size_t j = 0; j < 4; ++j) {
      for (size_t n = 0; n < 3; ++n) {
        EXPECT_GE(matrix.at(j, n), 0);
        EXPECT_LE(matrix.at(j, n), 4);
      }
    }
  }
}

TEST(GeneticOptimizeTest, EmptyJobsYieldEmptyMatrix) {
  GeneticOptimizer ga(ClusterSpec::Homogeneous(2, 4), SmallGa());
  const auto result = ga.Optimize({});
  EXPECT_EQ(result.best.num_jobs(), 0u);
  EXPECT_DOUBLE_EQ(result.fitness, 0.0);
}

TEST(GeneticOptimizeTest, SingleJobGetsResourcesUpToCap) {
  GeneticOptimizer ga(ClusterSpec::Homogeneous(4, 4), SmallGa());
  std::vector<SchedJobInfo> jobs = {MakeJob(1, 8)};
  const auto result = ga.Optimize(jobs);
  const Placement placement = result.best.JobPlacement(0);
  EXPECT_GE(placement.num_gpus, 4);  // Scalable job should be given GPUs.
  EXPECT_LE(placement.num_gpus, 8);  // But never beyond the exploration cap.
  EXPECT_TRUE(result.best.WithinCapacity(ga.cluster()));
}

TEST(GeneticOptimizeTest, ResultAlwaysFeasible) {
  GeneticOptimizer ga(ClusterSpec::Homogeneous(4, 4), SmallGa(11));
  std::vector<SchedJobInfo> jobs;
  for (uint64_t id = 1; id <= 6; ++id) {
    jobs.push_back(MakeJob(id, 1 << (id % 5)));
  }
  const auto result = ga.Optimize(jobs);
  EXPECT_TRUE(result.best.WithinCapacity(ga.cluster()));
  for (size_t j = 0; j < jobs.size(); ++j) {
    EXPECT_LE(result.best.JobPlacement(j).num_gpus, jobs[j].max_gpus_cap);
  }
}

TEST(GeneticOptimizeTest, FitnessNeverBelowIncumbent) {
  // The incumbent allocation is seeded into the population, so the GA can
  // never return something worse than leaving allocations unchanged.
  GeneticOptimizer ga(ClusterSpec::Homogeneous(4, 4), SmallGa(13));
  std::vector<SchedJobInfo> jobs = {MakeJob(1, 16), MakeJob(2, 16)};
  jobs[0].current_allocation = {4, 0, 0, 0};
  jobs[1].current_allocation = {0, 4, 0, 0};
  AllocationMatrix incumbent(2, 4);
  incumbent.SetRow(0, jobs[0].current_allocation);
  incumbent.SetRow(1, jobs[1].current_allocation);
  const double incumbent_fitness = Fitness(jobs, incumbent, 0.25);
  const auto result = ga.Optimize(jobs);
  EXPECT_GE(result.fitness, incumbent_fitness - 1e-9);
}

TEST(GeneticOptimizeTest, PersistedPopulationTracksJobChurn) {
  GeneticOptimizer ga(ClusterSpec::Homogeneous(2, 4), SmallGa(17));
  std::vector<SchedJobInfo> round1 = {MakeJob(1, 8), MakeJob(2, 8)};
  ga.Optimize(round1);
  // Job 1 leaves; job 3 arrives.
  std::vector<SchedJobInfo> round2 = {MakeJob(2, 8), MakeJob(3, 8)};
  const auto result = ga.Optimize(round2);
  EXPECT_EQ(result.best.num_jobs(), 2u);
  EXPECT_TRUE(result.best.WithinCapacity(ga.cluster()));
}

TEST(GeneticOptimizeTest, DeterministicGivenSeed) {
  std::vector<SchedJobInfo> jobs = {MakeJob(1, 8), MakeJob(2, 8), MakeJob(3, 8)};
  GeneticOptimizer ga1(ClusterSpec::Homogeneous(4, 4), SmallGa(42));
  GeneticOptimizer ga2(ClusterSpec::Homogeneous(4, 4), SmallGa(42));
  const auto r1 = ga1.Optimize(jobs);
  const auto r2 = ga2.Optimize(jobs);
  EXPECT_EQ(r1.best, r2.best);
  EXPECT_DOUBLE_EQ(r1.fitness, r2.fitness);
}

TEST(GeneticOptimizeTest, PrefersScalableJobs) {
  // Job 1 has an enormous noise scale (scales well); job 2 has phi = 0 (more
  // GPUs help little because larger batches are statistically worthless).
  GaOptions options = SmallGa(19);
  options.generations = 30;
  GeneticOptimizer ga(ClusterSpec::Homogeneous(2, 4), options);
  std::vector<SchedJobInfo> jobs = {MakeJob(1, 8, 1e6), MakeJob(2, 8, 0.0)};
  const auto result = ga.Optimize(jobs);
  EXPECT_GT(result.best.JobPlacement(0).num_gpus, result.best.JobPlacement(1).num_gpus);
}

TEST(GeneticOptimizeTest, SetClusterResetsPopulation) {
  GeneticOptimizer ga(ClusterSpec::Homogeneous(2, 4), SmallGa(23));
  std::vector<SchedJobInfo> jobs = {MakeJob(1, 8)};
  ga.Optimize(jobs);
  ga.SetCluster(ClusterSpec::Homogeneous(4, 4));
  const auto result = ga.Optimize(jobs);
  EXPECT_EQ(result.best.num_nodes(), 4u);
  EXPECT_TRUE(result.best.WithinCapacity(ga.cluster()));
}

}  // namespace
}  // namespace pollux
