#include "core/adascale.h"

#include <gtest/gtest.h>

#include "core/efficiency.h"

namespace pollux {
namespace {

TEST(AdaScaleTest, GainIsOneAtBaseBatch) {
  AdaScaleState state(128, 0.1);
  state.Update({1280.0, 1.0}, 128);  // phi = 1280.
  EXPECT_NEAR(state.GainAt(128), 1.0, 1e-12);
  EXPECT_NEAR(state.LearningRateAt(128), 0.1, 1e-12);
}

TEST(AdaScaleTest, GainMatchesEqn5) {
  AdaScaleState state(128, 0.1, 0.0);
  state.Update({1280.0, 1.0}, 128);
  const double phi = state.phi();
  EXPECT_NEAR(phi, 1280.0, 1e-9);
  for (long m : {256L, 512L, 4096L}) {
    const double expected = (phi / 128.0 + 1.0) / (phi / static_cast<double>(m) + 1.0);
    EXPECT_NEAR(state.GainAt(m), expected, 1e-12);
    EXPECT_NEAR(state.LearningRateAt(m), 0.1 * expected, 1e-12);
  }
}

TEST(AdaScaleTest, EfficiencyMatchesEqn7) {
  AdaScaleState state(128, 0.1, 0.0);
  state.Update({640.0, 1.0}, 128);
  const double phi = state.phi();
  for (long m : {128L, 512L, 2048L}) {
    EXPECT_NEAR(state.EfficiencyAt(m),
                StatisticalEfficiency(phi, 128.0, static_cast<double>(m)), 1e-12);
  }
}

TEST(AdaScaleTest, ScaleInvariantIterationsAccumulateGains) {
  AdaScaleState state(128, 0.1, 0.0);
  double expected = 0.0;
  for (int step = 0; step < 10; ++step) {
    const double gain = state.Update({1280.0, 1.0}, 512);
    expected += gain;
    EXPECT_GT(gain, 1.0);
    EXPECT_LE(gain, 4.0);
  }
  EXPECT_NEAR(state.scale_invariant_iterations(), expected, 1e-12);
  EXPECT_EQ(state.steps(), 10);
}

TEST(AdaScaleTest, LargeBatchNeverBeatsProportionalScaling) {
  AdaScaleState state(100, 1.0, 0.0);
  state.Update({500.0, 1.0}, 100);
  // r_t <= m / m0: one big-batch step can never beat m/m0 small steps.
  for (long m : {200L, 400L, 1000L}) {
    EXPECT_LE(state.GainAt(m), static_cast<double>(m) / 100.0 + 1e-12);
    EXPECT_GE(state.GainAt(m), 1.0 - 1e-12);
  }
}

TEST(AdaScaleTest, SmoothingReducesSampleNoiseImpact) {
  AdaScaleState smooth(128, 0.1, 0.9);
  AdaScaleState raw(128, 0.1, 0.0);
  for (int i = 0; i < 20; ++i) {
    smooth.Update({1000.0, 1.0}, 128);
    raw.Update({1000.0, 1.0}, 128);
  }
  // One outlier sample.
  smooth.Update({100000.0, 1.0}, 128);
  raw.Update({100000.0, 1.0}, 128);
  EXPECT_LT(smooth.phi(), raw.phi());
}

}  // namespace
}  // namespace pollux
