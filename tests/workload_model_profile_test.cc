#include "workload/model_profile.h"

#include <gtest/gtest.h>

namespace pollux {
namespace {

TEST(GnsCurveTest, MonotoneBetweenDecays) {
  GnsCurve curve{100.0, 1000.0, {}, 1.0};
  double previous = 0.0;
  for (double p = 0.0; p <= 1.0; p += 0.05) {
    const double phi = curve.PhiAt(p);
    EXPECT_GE(phi, previous);
    previous = phi;
  }
  EXPECT_NEAR(curve.PhiAt(0.0), 100.0, 1e-9);
  EXPECT_NEAR(curve.PhiAt(1.0), 1000.0, 1e-6);
}

TEST(GnsCurveTest, DecayBoostsMultiply) {
  GnsCurve curve{100.0, 100.0, {0.3, 0.6}, 3.0};
  EXPECT_NEAR(curve.PhiAt(0.1), 100.0, 1e-9);
  EXPECT_NEAR(curve.PhiAt(0.4), 300.0, 1e-9);
  EXPECT_NEAR(curve.PhiAt(0.9), 900.0, 1e-9);
}

TEST(GnsCurveTest, ClampsProgress) {
  GnsCurve curve{100.0, 1000.0, {0.5}, 2.0};
  EXPECT_DOUBLE_EQ(curve.PhiAt(-1.0), curve.PhiAt(0.0));
  EXPECT_DOUBLE_EQ(curve.PhiAt(2.0), curve.PhiAt(1.0));
}

TEST(ModelProfileTest, RegistryCoversAllFiveModels) {
  EXPECT_EQ(AllModelKinds().size(), 5u);
  for (ModelKind kind : AllModelKinds()) {
    const ModelProfile& profile = GetModelProfile(kind);
    EXPECT_EQ(profile.kind, kind);
    EXPECT_FALSE(profile.name.empty());
    EXPECT_GT(profile.base_batch_size, 0);
    EXPECT_GT(profile.base_lr, 0.0);
    EXPECT_GT(profile.TotalExamples(), 0.0);
    EXPECT_GE(profile.max_batch_total, profile.base_batch_size);
  }
}

TEST(ModelProfileTest, CategoriesMatchTable1) {
  EXPECT_EQ(GetModelProfile(ModelKind::kResNet50ImageNet).category, JobCategory::kXLarge);
  EXPECT_EQ(GetModelProfile(ModelKind::kYoloV3Voc).category, JobCategory::kLarge);
  EXPECT_EQ(GetModelProfile(ModelKind::kDeepSpeech2).category, JobCategory::kMedium);
  EXPECT_EQ(GetModelProfile(ModelKind::kResNet18Cifar10).category, JobCategory::kSmall);
  EXPECT_EQ(GetModelProfile(ModelKind::kNeuMFMovieLens).category, JobCategory::kSmall);
}

// Single-GPU completion time (at the base batch size) must land inside each
// model's GPU-time category band — this is what anchors the synthetic
// workload to the Microsoft trace's job-size distribution.
class CategoryTimeSweep : public ::testing::TestWithParam<ModelKind> {};

TEST_P(CategoryTimeSweep, SingleGpuTimeInCategoryBand) {
  const ModelProfile& profile = GetModelProfile(GetParam());
  const double throughput = profile.TrueThroughput(Placement{1, 1}, profile.base_batch_size);
  ASSERT_GT(throughput, 0.0);
  const double hours = profile.TotalExamples() / throughput / 3600.0;
  switch (profile.category) {
    case JobCategory::kSmall:
      EXPECT_LE(hours, 1.0);
      break;
    case JobCategory::kMedium:
      EXPECT_GT(hours, 1.0);
      EXPECT_LE(hours, 10.0);
      break;
    case JobCategory::kLarge:
      EXPECT_GT(hours, 10.0);
      EXPECT_LE(hours, 100.0);
      break;
    case JobCategory::kXLarge:
      EXPECT_GT(hours, 100.0);
      EXPECT_LE(hours, 1000.0);
      break;
  }
}

INSTANTIATE_TEST_SUITE_P(AllModels, CategoryTimeSweep,
                         ::testing::ValuesIn(AllModelKinds()),
                         [](const ::testing::TestParamInfo<ModelKind>& info) {
                           std::string name = ModelKindName(info.param);
                           for (char& c : name) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

class ProfileSanitySweep : public ::testing::TestWithParam<ModelKind> {};

TEST_P(ProfileSanitySweep, EfficiencyAndGoodputShapes) {
  const ModelProfile& profile = GetModelProfile(GetParam());
  // Efficiency at m0 is 1 and decreases with batch size at any progress.
  for (double progress : {0.0, 0.5, 1.0}) {
    EXPECT_NEAR(profile.TrueEfficiency(profile.base_batch_size, progress), 1.0, 1e-9);
    const double eff_mid = profile.TrueEfficiency(2 * profile.base_batch_size, progress);
    const double eff_big = profile.TrueEfficiency(8 * profile.base_batch_size, progress);
    EXPECT_LT(eff_big, eff_mid);
    EXPECT_GT(eff_big, 0.0);
  }
  // Later training tolerates large batches at least as well as early.
  EXPECT_GE(profile.TrueEfficiency(8 * profile.base_batch_size, 0.95),
            profile.TrueEfficiency(8 * profile.base_batch_size, 0.05));
  // Goodput never exceeds throughput.
  const Placement placement{4, 1};
  const long m = 4 * profile.base_batch_size;
  EXPECT_LE(profile.TrueGoodput(placement, m, 0.5),
            profile.TrueThroughput(placement, m) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(AllModels, ProfileSanitySweep, ::testing::ValuesIn(AllModelKinds()),
                         [](const ::testing::TestParamInfo<ModelKind>& info) {
                           std::string name = ModelKindName(info.param);
                           for (char& c : name) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

TEST(ModelProfileTest, ResNet18MatchesFig1aShape) {
  // Fig. 1a: at batch size 2048 ResNet18 keeps scaling to 16 GPUs, while at
  // batch size 512 throughput saturates much earlier.
  const ModelProfile& profile = GetModelProfile(ModelKind::kResNet18Cifar10);
  auto scaling = [&](long m) {
    return profile.TrueThroughput(Placement{16, 4}, m) /
           profile.TrueThroughput(Placement{4, 1}, m);
  };
  EXPECT_GT(scaling(2048), 1.5 * scaling(512) / 1.5);  // Large batch scales better...
  EXPECT_GT(scaling(2048), scaling(512));              // ...strictly.
}

TEST(ModelProfileTest, JobCategoryNames) {
  EXPECT_STREQ(JobCategoryName(JobCategory::kSmall), "small");
  EXPECT_STREQ(JobCategoryName(JobCategory::kXLarge), "xlarge");
  EXPECT_STREQ(ModelKindName(ModelKind::kNeuMFMovieLens), "neumf-movielens");
}

}  // namespace
}  // namespace pollux
