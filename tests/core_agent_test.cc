#include "core/agent.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace pollux {
namespace {

ThroughputParams GroundTruth() {
  ThroughputParams params;
  params.alpha_grad = 0.03;
  params.beta_grad = 5e-4;
  params.alpha_sync_local = 0.02;
  params.beta_sync_local = 0.001;
  params.alpha_sync_node = 0.09;
  params.beta_sync_node = 0.004;
  params.gamma = 2.0;
  return ThroughputParams(params);
}

BatchLimits TypicalLimits() {
  BatchLimits limits;
  limits.min_batch = 128;
  limits.max_batch_total = 16384;
  limits.max_batch_per_gpu = 1024;
  return limits;
}

PolluxAgent MakeAgent(uint64_t id = 1) { return PolluxAgent(id, 128, 0.1, TypicalLimits()); }

// Feeds the agent noiseless iteration-time observations from the ground
// truth across the given placements and batch sizes.
void FeedObservations(PolluxAgent& agent, const std::vector<Placement>& placements) {
  const auto truth = GroundTruth();
  for (const auto& placement : placements) {
    agent.NotifyAllocation(placement);
    for (long m : {128L, 256L, 512L, 1024L}) {
      agent.RecordIteration(placement, m, IterTime(truth, placement, static_cast<double>(m)));
    }
  }
}

TEST(AgentTest, InitialReportCarriesPerfectScalingPrior) {
  PolluxAgent agent = MakeAgent();
  const AgentReport report = agent.MakeReport();
  EXPECT_EQ(report.job_id, 1u);
  // Never allocated yet: jobs must start on a single GPU (Sec. 3).
  EXPECT_EQ(report.max_gpus_cap, 1);
  agent.NotifyAllocation(Placement{1, 1});
  EXPECT_EQ(agent.MakeReport().max_gpus_cap, 2);
  // Prior: no sync overheads at all.
  EXPECT_DOUBLE_EQ(report.model.params().alpha_sync_local, 0.0);
  EXPECT_DOUBLE_EQ(report.model.params().alpha_sync_node, 0.0);
}

TEST(AgentTest, TracksLifetimeMaxima) {
  PolluxAgent agent = MakeAgent();
  agent.NotifyAllocation(Placement{4, 2});
  agent.NotifyAllocation(Placement{2, 1});
  EXPECT_EQ(agent.max_gpus_seen(), 4);
  EXPECT_EQ(agent.max_nodes_seen(), 2);
  EXPECT_EQ(agent.MakeReport().max_gpus_cap, 8);
}

TEST(AgentTest, IgnoresDegenerateObservations) {
  PolluxAgent agent = MakeAgent();
  agent.RecordIteration(Placement{0, 0}, 128, 1.0);
  agent.RecordIteration(Placement{1, 1}, 0, 1.0);
  agent.RecordIteration(Placement{1, 1}, 128, -1.0);
  EXPECT_EQ(agent.distinct_configurations(), 0u);
}

TEST(AgentTest, DeduplicatesConfigurations) {
  PolluxAgent agent = MakeAgent();
  for (int i = 0; i < 10; ++i) {
    agent.RecordIteration(Placement{1, 1}, 128, 0.1);
  }
  agent.RecordIteration(Placement{2, 1}, 128, 0.1);
  // N regimes collapse: {4,2} and {4,3} are the same configuration.
  agent.RecordIteration(Placement{4, 2}, 128, 0.1);
  agent.RecordIteration(Placement{4, 3}, 128, 0.1);
  EXPECT_EQ(agent.distinct_configurations(), 3u);
}

TEST(AgentTest, FittedModelPredictsHeldOutConfigs) {
  PolluxAgent agent = MakeAgent();
  FeedObservations(agent, {Placement{1, 1}, Placement{2, 1}, Placement{4, 1}, Placement{4, 2},
                           Placement{8, 2}, Placement{16, 4}});
  const AgentReport report = agent.MakeReport();
  const auto truth = GroundTruth();
  for (const auto& placement : {Placement{6, 2}, Placement{12, 3}}) {
    const double predicted = IterTime(report.model.params(), placement, 768.0);
    const double actual = IterTime(truth, placement, 768.0);
    EXPECT_NEAR(predicted / actual, 1.0, 0.15);
  }
}

TEST(AgentTest, PhiComesFromSmoothedSamples) {
  PolluxAgent agent = MakeAgent();
  for (int i = 0; i < 100; ++i) {
    agent.RecordGradientStats({500.0, 1.0});
  }
  EXPECT_NEAR(agent.phi(), 500.0, 1e-6);
  const AgentReport report = agent.MakeReport();
  EXPECT_NEAR(report.model.phi(), 500.0, 1e-6);
}

TEST(AgentTest, TuneBatchSizeGrowsWithNoiseScale) {
  PolluxAgent early = MakeAgent();
  PolluxAgent late = MakeAgent();
  FeedObservations(early, {Placement{1, 1}, Placement{4, 1}, Placement{8, 2}});
  FeedObservations(late, {Placement{1, 1}, Placement{4, 1}, Placement{8, 2}});
  for (int i = 0; i < 50; ++i) {
    early.RecordGradientStats({200.0, 1.0});
    late.RecordGradientStats({20000.0, 1.0});
  }
  early.MakeReport();
  late.MakeReport();
  const auto choice_early = early.TuneBatchSize(Placement{8, 2});
  const auto choice_late = late.TuneBatchSize(Placement{8, 2});
  EXPECT_LE(choice_early.batch_size, choice_late.batch_size);
  EXPECT_GE(choice_early.batch_size, 128);
}

TEST(AgentTest, LearningRateFollowsAdaScale) {
  PolluxAgent agent = MakeAgent();
  for (int i = 0; i < 50; ++i) {
    agent.RecordGradientStats({1280.0, 1.0});  // phi = 1280.
  }
  EXPECT_NEAR(agent.LearningRateAt(128), 0.1, 1e-9);
  const double expected_gain = (1280.0 / 128.0 + 1.0) / (1280.0 / 512.0 + 1.0);
  EXPECT_NEAR(agent.LearningRateAt(512), 0.1 * expected_gain, 1e-9);
}

TEST(AgentTest, RefitsOnlyWhenConfigurationsChange) {
  // Feeding more samples of the same configurations must not change the
  // fitted params (the fit is skipped), but a new configuration triggers a
  // refit.
  PolluxAgent agent = MakeAgent();
  FeedObservations(agent, {Placement{1, 1}, Placement{2, 1}});
  const auto params1 = agent.MakeReport().model.params();
  FeedObservations(agent, {Placement{1, 1}, Placement{2, 1}});  // Same configs.
  const auto params2 = agent.MakeReport().model.params();
  EXPECT_DOUBLE_EQ(params1.alpha_grad, params2.alpha_grad);
  EXPECT_DOUBLE_EQ(params1.beta_grad, params2.beta_grad);
  FeedObservations(agent, {Placement{8, 2}});  // New config: refit.
  const auto params3 = agent.MakeReport().model.params();
  // After seeing multi-node data the node-sync parameters can become nonzero.
  EXPECT_GE(params3.alpha_sync_node, 0.0);
  EXPECT_EQ(agent.distinct_configurations(), 12u);
}

TEST(AgentTest, NoisyObservationsStillYieldUsableModel) {
  PolluxAgent agent = MakeAgent();
  Rng rng(99);
  const auto truth = GroundTruth();
  for (const auto& placement :
       {Placement{1, 1}, Placement{2, 1}, Placement{4, 1}, Placement{8, 2}}) {
    agent.NotifyAllocation(placement);
    for (long m : {128L, 256L, 512L}) {
      for (int rep = 0; rep < 20; ++rep) {
        const double observed = IterTime(truth, placement, static_cast<double>(m)) *
                                std::exp(rng.Normal(0.0, 0.05));
        agent.RecordIteration(placement, m, observed);
      }
    }
  }
  const AgentReport report = agent.MakeReport();
  const double predicted = IterTime(report.model.params(), Placement{8, 2}, 512.0);
  const double actual = IterTime(truth, Placement{8, 2}, 512.0);
  EXPECT_NEAR(predicted / actual, 1.0, 0.2);
}

}  // namespace
}  // namespace pollux
