// Live-daemon tests for pollux_schedd (service/daemon.h): client lifecycle
// end-to-end over a real Unix socket, hostile byte streams that must close
// one connection but never the daemon, malformed payloads that must not even
// close the connection, drain-mode NACK push-back, and the crash-tolerance
// contract (abrupt Stop + restart from checkpoints replays identical
// decisions).

#include <gtest/gtest.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <map>
#include <thread>
#include <memory>
#include <string>
#include <vector>

#include "core/goodput.h"
#include "service/client.h"
#include "service/daemon.h"
#include "service/tenant.h"
#include "service/wire.h"

namespace pollux {
namespace service {
namespace {

AgentReport MakeAgent(uint64_t job_id, double phi = 1000.0) {
  ThroughputParams params;
  params.alpha_grad = 0.05;
  params.beta_grad = 2e-4;
  params.alpha_sync_local = 0.03;
  params.beta_sync_local = 0.002;
  params.alpha_sync_node = 0.1;
  params.beta_sync_node = 0.005;
  params.gamma = 2.0;
  AgentReport agent;
  agent.job_id = job_id;
  agent.model = GoodputModel(params, phi, 128);
  agent.limits.min_batch = 128;
  agent.limits.max_batch_total = 16384;
  agent.limits.max_batch_per_gpu = 1024;
  agent.max_gpus_cap = 8;
  return agent;
}

SchedJobReport MakeReport(uint64_t job_id, uint64_t seq, double phi = 1000.0) {
  SchedJobReport report;
  report.agent = MakeAgent(job_id, phi);
  report.gpu_time = static_cast<double>(seq) * 120.0;
  report.report_age = 0.0;
  report.seq = seq;
  return report;
}

TenantSetup MakeSetup(uint64_t tenant_id) {
  TenantSetup setup;
  setup.tenant_id = tenant_id;
  setup.cluster.gpus_per_node.assign(4, 4);
  setup.sched.ga.population_size = 16;
  setup.sched.ga.generations = 8;
  setup.sched.ga.seed = 7;
  setup.sched.mode = SchedMode::kIncremental;
  return setup;
}

// A fresh short socket path per test (sun_path is only ~100 bytes).
std::string SocketPath(const char* tag) {
  return "/tmp/plxd_t_" + std::to_string(::getpid()) + "_" + tag + ".sock";
}

struct DaemonUnderTest {
  explicit DaemonUnderTest(ScheddOptions options)
      : daemon(std::make_unique<ScheddDaemon>(options)) {
    std::string error;
    started = daemon->Start(&error);
    EXPECT_TRUE(started) << error;
  }
  ~DaemonUnderTest() {
    if (started) {
      daemon->Stop();
      daemon->Wait();
    }
  }
  std::unique_ptr<ScheddDaemon> daemon;
  bool started = false;
};

ScheddClientOptions ClientOptions(const std::string& socket_path) {
  ScheddClientOptions options;
  options.socket_path = socket_path;
  options.request_timeout = 10.0;
  options.backoff_initial = 0.005;
  options.backoff_max = 0.05;
  return options;
}

// Raw byte-level access for hostile-input tests: no framing, no handshake.
class RawConn {
 public:
  explicit RawConn(const std::string& path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) return;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    ::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~RawConn() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool ok() const { return fd_ >= 0; }

  bool Send(const std::string& bytes) {
    size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent, 0);
      if (n <= 0) return false;
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  // Reads until one frame decodes. Sets *eof when the daemon closed the
  // connection after (or instead of) the frame.
  bool ReadFrame(Frame* frame, bool* eof, int timeout_ms = 5000) {
    *eof = false;
    bool got = false;
    for (;;) {
      if (!got) {
        size_t consumed = 0;
        const FrameStatus status =
            DecodeFrame(inbuf_, kDefaultMaxFrameBytes, frame, &consumed);
        if (status == FrameStatus::kOk) {
          inbuf_.erase(0, consumed);
          got = true;
          if (*eof) return true;  // already saw the close
        } else if (status != FrameStatus::kNeedMore) {
          return false;
        }
      }
      pollfd pfd{fd_, POLLIN, 0};
      const int ready = ::poll(&pfd, 1, got ? 200 : timeout_ms);
      if (ready <= 0) return got;  // timeout: report what we have
      char buf[4096];
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) {
        *eof = true;
        return got;
      }
      inbuf_.append(buf, static_cast<size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string inbuf_;
};

void ExpectErrorReply(RawConn& conn, const std::string& bytes, ErrCode want,
                      bool want_eof) {
  ASSERT_TRUE(conn.Send(bytes));
  Frame frame;
  bool eof = false;
  ASSERT_TRUE(conn.ReadFrame(&frame, &eof));
  EXPECT_EQ(frame.type, static_cast<uint32_t>(kMsgError));
  uint32_t code = 0;
  std::string detail;
  ASSERT_TRUE(DecodeErrorPayload(frame.payload, &code, &detail));
  EXPECT_EQ(code, static_cast<uint32_t>(want)) << ErrCodeName(static_cast<ErrCode>(code));
  if (want_eof) {
    // The daemon must hang up after a framing failure (the stream can no
    // longer be trusted to be frame-aligned).
    Frame ignored;
    conn.ReadFrame(&ignored, &eof, 2000);
    EXPECT_TRUE(eof);
  }
}

uint32_t RawErrCode(const ScheddClient::RawReply& reply) {
  uint32_t code = 0;
  std::string detail;
  if (!DecodeErrorPayload(reply.payload, &code, &detail)) return 0;
  return code;
}

TEST(ScheddDaemonTest, EndToEndLifecycle) {
  const std::string socket_path = SocketPath("e2e");
  ScheddOptions options;
  options.socket_path = socket_path;
  options.shards = 2;
  DaemonUnderTest daemon(options);
  ASSERT_TRUE(daemon.started);

  ScheddClient client(ClientOptions(socket_path));
  std::string error;
  ASSERT_TRUE(client.Connect(&error)) << error;
  EXPECT_TRUE(client.Ping(&error)) << error;

  const TenantSetup setup = MakeSetup(1);
  ASSERT_TRUE(client.CreateTenant(setup, &error)) << error;
  // Idempotent re-create with the identical shape is an ack...
  EXPECT_TRUE(client.CreateTenant(setup, &error)) << error;
  // ...but a different shape for the same id is refused.
  TenantSetup other = setup;
  other.cluster.gpus_per_node.assign(2, 8);
  EXPECT_FALSE(client.CreateTenant(other, &error));

  for (uint64_t job = 1; job <= 3; ++job) {
    ASSERT_TRUE(client.SubmitJob(1, MakeAgent(job, 900.0 + 50.0 * job), 0.0, &error))
        << error;
  }
  std::vector<SchedJobReport> batch;
  for (uint64_t job = 1; job <= 3; ++job) batch.push_back(MakeReport(job, 1));
  uint64_t accepted = 0;
  ASSERT_TRUE(client.Report(1, batch, &accepted, &error)) << error;
  EXPECT_EQ(accepted, 3u);

  RoundDecisions first;
  ASSERT_TRUE(client.RunRound(1, 0, &first, &error)) << error;
  EXPECT_FALSE(first.cached);
  EXPECT_TRUE(PolluxSched::AllocationsFeasible(setup.cluster, first.rows));
  // Replaying the executed round returns the cached decisions verbatim.
  RoundDecisions replay;
  ASSERT_TRUE(client.RunRound(1, 0, &replay, &error)) << error;
  EXPECT_TRUE(replay.cached);
  EXPECT_EQ(replay.rows, first.rows);
  // A wild round index is a typed, non-retryable error.
  RoundDecisions bad;
  EXPECT_FALSE(client.RunRound(1, 7, &bad, &error));

  EXPECT_TRUE(client.CancelJob(1, 3, &error)) << error;
  EXPECT_FALSE(client.CancelJob(1, 99, &error));
  // Operations against a tenant that does not exist are typed errors too.
  EXPECT_FALSE(client.SubmitJob(77, MakeAgent(1), 0.0, &error));

  std::map<std::string, uint64_t> stats;
  ASSERT_TRUE(client.Stats(&stats, &error)) << error;
  EXPECT_EQ(stats["tenants"], 1u);
  EXPECT_EQ(stats["jobs"], 2u);
  EXPECT_EQ(stats["rounds"], 1u);
  EXPECT_GE(stats["errors"], 3u);
  EXPECT_EQ(stats["bad_frames"], 0u);
}

TEST(ScheddDaemonTest, HostileBytesCloseOnlyThatConnection) {
  const std::string socket_path = SocketPath("hostile");
  ScheddOptions options;
  options.socket_path = socket_path;
  options.shards = 1;
  options.max_frame_bytes = 1 << 16;
  DaemonUnderTest daemon(options);
  ASSERT_TRUE(daemon.started);

  // Garbage from byte zero: bad magic, typed error, hangup.
  {
    RawConn conn(socket_path);
    ASSERT_TRUE(conn.ok());
    ExpectErrorReply(conn, std::string(64, 'X'), kErrBadMagic, /*want_eof=*/true);
  }
  // A bit flip inside an otherwise valid frame: CRC error, hangup.
  {
    RawConn conn(socket_path);
    ASSERT_TRUE(conn.ok());
    std::string bytes = EncodeFrame(kMsgPing, "");
    bytes[5] ^= 0x10;  // type field; magic stays intact
    ExpectErrorReply(conn, bytes, kErrBadCrc, /*want_eof=*/true);
  }
  // A header declaring a payload beyond the daemon's cap: oversized, hangup,
  // and the daemon never waits for (or buffers) the declared gigabyte.
  {
    RawConn conn(socket_path);
    ASSERT_TRUE(conn.ok());
    BinWriter header;
    header.PutU32(kFrameMagic);
    header.PutU32(kMsgPing);
    header.PutU64(uint64_t{1} << 30);
    ExpectErrorReply(conn, header.str(), kErrOversized, /*want_eof=*/true);
  }
  // After all that abuse the daemon still serves fresh connections.
  ScheddClient client(ClientOptions(socket_path));
  std::string error;
  ASSERT_TRUE(client.Connect(&error)) << error;
  EXPECT_TRUE(client.Ping(&error)) << error;
  const ScheddStats stats = daemon.daemon->Stats();
  EXPECT_EQ(stats.bad_frames, 3u);
  EXPECT_GE(stats.conns_closed, 3u);
}

TEST(ScheddDaemonTest, MalformedPayloadsKeepTheConnection) {
  const std::string socket_path = SocketPath("malformed");
  ScheddOptions options;
  options.socket_path = socket_path;
  options.shards = 1;
  DaemonUnderTest daemon(options);
  ASSERT_TRUE(daemon.started);

  ScheddClient client(ClientOptions(socket_path));
  std::string error;
  ASSERT_TRUE(client.Connect(&error)) << error;

  // Valid frame, garbage payload: per-request error, connection survives.
  auto reply = client.Call(kMsgSubmitJob, "ab");
  ASSERT_TRUE(reply.ok) << reply.error;
  EXPECT_EQ(reply.type, static_cast<uint32_t>(kMsgError));
  EXPECT_EQ(RawErrCode(reply), static_cast<uint32_t>(kErrMalformedPayload));

  // A tenant id followed by truncated setup bytes: still only a request error.
  {
    BinWriter out;
    out.PutU64(1);
    out.PutU32(999);
    reply = client.Call(kMsgCreateTenant, out.str());
    ASSERT_TRUE(reply.ok) << reply.error;
    EXPECT_EQ(reply.type, static_cast<uint32_t>(kMsgError));
    EXPECT_EQ(RawErrCode(reply), static_cast<uint32_t>(kErrMalformedPayload));
  }
  // Unknown message type: typed error, connection survives.
  reply = client.Call(999, "");
  ASSERT_TRUE(reply.ok) << reply.error;
  EXPECT_EQ(RawErrCode(reply), static_cast<uint32_t>(kErrUnknownType));

  // A hello with the wrong protocol version is refused with a version error.
  {
    BinWriter out;
    out.PutU32(kProtocolVersion + 41);
    reply = client.Call(kMsgHello, out.str());
    ASSERT_TRUE(reply.ok) << reply.error;
    EXPECT_EQ(RawErrCode(reply), static_cast<uint32_t>(kErrVersionMismatch));
  }

  // Same connection, still healthy.
  EXPECT_TRUE(client.Ping(&error)) << error;
  const ScheddStats stats = daemon.daemon->Stats();
  EXPECT_GE(stats.malformed, 2u);
  EXPECT_EQ(stats.bad_frames, 0u);
}

TEST(ScheddDaemonTest, DrainNacksTenantWorkButAnswersPing) {
  const std::string socket_path = SocketPath("drain");
  ScheddOptions options;
  options.socket_path = socket_path;
  options.shards = 1;
  DaemonUnderTest daemon(options);
  ASSERT_TRUE(daemon.started);

  ScheddClient client(ClientOptions(socket_path));
  std::string error;
  ASSERT_TRUE(client.Connect(&error)) << error;
  ASSERT_TRUE(client.CreateTenant(MakeSetup(1), &error)) << error;

  daemon.daemon->RequestDrain();
  ASSERT_TRUE(daemon.daemon->draining());

  // Tenant-scoped work now draws a retryable NACK(draining)...
  BinWriter out;
  out.PutU64(1);
  PutAgentReport(out, MakeAgent(5));
  out.PutDouble(0.0);
  auto reply = client.Call(kMsgSubmitJob, out.str());
  ASSERT_TRUE(reply.ok) << reply.error;
  EXPECT_EQ(reply.type, static_cast<uint32_t>(kMsgNack));
  EXPECT_EQ(RawErrCode(reply), static_cast<uint32_t>(kNackDraining));
  // ...while connection-level liveness checks still answer.
  EXPECT_TRUE(client.Ping(&error)) << error;
  EXPECT_GE(daemon.daemon->Stats().drain_nacks, 1u);
}

TEST(ScheddDaemonTest, AbruptStopThenRestartReplaysIdenticalDecisions) {
  const std::string socket_path = SocketPath("restart");
  const auto checkpoint_dir =
      std::filesystem::temp_directory_path() / "pollux_daemon_test_restart";
  std::filesystem::remove_all(checkpoint_dir);

  ScheddOptions options;
  options.socket_path = socket_path;
  options.shards = 2;
  options.checkpoint_dir = checkpoint_dir.string();
  options.checkpoint_every_rounds = 1;
  options.checkpoint_keep = 2;

  std::vector<RoundDecisions> history;
  {
    DaemonUnderTest daemon(options);
    ASSERT_TRUE(daemon.started);
    ScheddClient client(ClientOptions(socket_path));
    std::string error;
    ASSERT_TRUE(client.Connect(&error)) << error;
    ASSERT_TRUE(client.CreateTenant(MakeSetup(1), &error)) << error;
    for (uint64_t job = 1; job <= 4; ++job) {
      ASSERT_TRUE(client.SubmitJob(1, MakeAgent(job, 800.0 + 100.0 * job), 0.0, &error))
          << error;
    }
    for (uint64_t round = 0; round < 3; ++round) {
      std::vector<SchedJobReport> batch;
      for (uint64_t job = 1; job <= 4; ++job) {
        batch.push_back(MakeReport(job, round + 1, 800.0 + 100.0 * job));
      }
      uint64_t accepted = 0;
      ASSERT_TRUE(client.Report(1, batch, &accepted, &error)) << error;
      RoundDecisions decisions;
      ASSERT_TRUE(client.RunRound(1, round, &decisions, &error)) << error;
      history.push_back(decisions);
    }
    EXPECT_GE(daemon.daemon->Stats().checkpoints, 3u);
    // DaemonUnderTest's destructor calls Stop(): the kill -9 analogue — no
    // drain, no final checkpoint, queued work dropped.
  }

  {
    DaemonUnderTest daemon(options);
    ASSERT_TRUE(daemon.started);
    EXPECT_EQ(daemon.daemon->Stats().restored, 1u);
    ScheddClient client(ClientOptions(socket_path));
    std::string error;
    ASSERT_TRUE(client.Connect(&error)) << error;
    // The restored daemon replays the last executed round from cache,
    // byte-equal to what the first incarnation answered.
    RoundDecisions replay;
    ASSERT_TRUE(client.RunRound(1, 2, &replay, &error)) << error;
    EXPECT_TRUE(replay.cached);
    EXPECT_EQ(replay.rows, history[2].rows);
    // And the next round proceeds from the restored state.
    std::vector<SchedJobReport> batch;
    for (uint64_t job = 1; job <= 4; ++job) {
      batch.push_back(MakeReport(job, 4, 800.0 + 100.0 * job));
    }
    uint64_t accepted = 0;
    ASSERT_TRUE(client.Report(1, batch, &accepted, &error)) << error;
    RoundDecisions next;
    ASSERT_TRUE(client.RunRound(1, 3, &next, &error)) << error;
    EXPECT_FALSE(next.cached);
    EXPECT_TRUE(PolluxSched::AllocationsFeasible(MakeSetup(1).cluster, next.rows));
  }
  std::filesystem::remove_all(checkpoint_dir);
}

TEST(ScheddDaemonTest, OverloadShedsWithQueueCapOne) {
  const std::string socket_path = SocketPath("shed");
  ScheddOptions options;
  options.socket_path = socket_path;
  options.shards = 1;
  options.ingest_queue_cap = 1;
  DaemonUnderTest daemon(options);
  ASSERT_TRUE(daemon.started);

  ScheddClient leader(ClientOptions(socket_path));
  std::string error;
  ASSERT_TRUE(leader.Connect(&error)) << error;
  ASSERT_TRUE(leader.CreateTenant(MakeSetup(1), &error)) << error;
  for (uint64_t job = 1; job <= 8; ++job) {
    ASSERT_TRUE(leader.SubmitJob(1, MakeAgent(job), 0.0, &error)) << error;
  }

  // Hammer the tenant from several connections at once. With a queue cap of
  // one, concurrent reports must shed — yet every client eventually succeeds
  // through NACK backoff, so overload degrades throughput, not correctness.
  constexpr int kClients = 6;
  constexpr int kReportsPerClient = 10;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      ScheddClientOptions client_options = ClientOptions(socket_path);
      client_options.jitter_seed = static_cast<uint64_t>(c) + 1;
      ScheddClient client(client_options);
      std::string thread_error;
      if (!client.Connect(&thread_error)) {
        ++failures;
        return;
      }
      for (int r = 0; r < kReportsPerClient; ++r) {
        std::vector<SchedJobReport> batch;
        for (uint64_t job = 1; job <= 8; ++job) {
          batch.push_back(MakeReport(job, static_cast<uint64_t>(r) + 1));
        }
        uint64_t accepted = 0;
        if (!client.Report(1, batch, &accepted, &thread_error)) ++failures;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  // The work all landed even if some of it was pushed back.
  std::map<std::string, uint64_t> stats;
  ASSERT_TRUE(leader.Stats(&stats, &error)) << error;
  EXPECT_EQ(stats["jobs"], 8u);
}

}  // namespace
}  // namespace service
}  // namespace pollux
