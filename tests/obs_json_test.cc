#include "obs/json.h"

#include <gtest/gtest.h>

#include <string>

namespace pollux {
namespace obs {
namespace {

TEST(JsonParseOkTest, AcceptsValidDocuments) {
  EXPECT_TRUE(JsonParseOk("{}"));
  EXPECT_TRUE(JsonParseOk("[]"));
  EXPECT_TRUE(JsonParseOk("  {\"a\": [1, 2.5, -3e-2], \"b\": {\"c\": null}}  "));
  EXPECT_TRUE(JsonParseOk("\"lone string\""));
  EXPECT_TRUE(JsonParseOk("[true, false, null]"));
  EXPECT_TRUE(JsonParseOk("{\"esc\": \"a\\\"b\\\\c\\u00e9\\n\"}"));
}

TEST(JsonParseOkTest, RejectsMalformedDocuments) {
  std::string error;
  EXPECT_FALSE(JsonParseOk("", &error));
  EXPECT_FALSE(JsonParseOk("{", &error));
  EXPECT_FALSE(JsonParseOk("{\"a\": }", &error));
  EXPECT_FALSE(JsonParseOk("{\"a\": 1,}", &error));
  EXPECT_FALSE(JsonParseOk("[1 2]", &error));
  EXPECT_FALSE(JsonParseOk("{'a': 1}", &error));
  EXPECT_FALSE(JsonParseOk("nan", &error));
  EXPECT_FALSE(JsonParseOk("{\"a\": 01}", &error));
  EXPECT_FALSE(JsonParseOk("{} trailing", &error));
  EXPECT_FALSE(error.empty());
}

TEST(JsonParseOkTest, RejectsUnterminatedStringAndBadEscape) {
  EXPECT_FALSE(JsonParseOk("\"abc"));
  EXPECT_FALSE(JsonParseOk("\"\\x\""));
  EXPECT_FALSE(JsonParseOk("\"\\u12\""));
}

TEST(JsonParseOkTest, BoundsRecursionDepth) {
  std::string deep;
  for (int i = 0; i < 1000; ++i) {
    deep += "[";
  }
  for (int i = 0; i < 1000; ++i) {
    deep += "]";
  }
  std::string error;
  EXPECT_FALSE(JsonParseOk(deep, &error));
  EXPECT_NE(error.find("deep"), std::string::npos) << error;
}

}  // namespace
}  // namespace obs
}  // namespace pollux
