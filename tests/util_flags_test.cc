#include "util/flags.h"

#include <gtest/gtest.h>

namespace pollux {
namespace {

std::vector<char*> MakeArgv(std::vector<std::string>& storage) {
  std::vector<char*> argv;
  for (auto& s : storage) {
    argv.push_back(s.data());
  }
  return argv;
}

FlagParser MakeParser() {
  FlagParser parser;
  parser.DefineInt("jobs", 160, "number of jobs");
  parser.DefineDouble("load", 1.0, "relative load");
  parser.DefineString("policy", "pollux", "scheduling policy");
  parser.DefineBool("interference", false, "enable interference");
  return parser;
}

TEST(FlagsTest, DefaultsApply) {
  FlagParser parser = MakeParser();
  std::vector<std::string> args = {"prog"};
  auto argv = MakeArgv(args);
  ASSERT_TRUE(parser.Parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(parser.GetInt("jobs"), 160);
  EXPECT_DOUBLE_EQ(parser.GetDouble("load"), 1.0);
  EXPECT_EQ(parser.GetString("policy"), "pollux");
  EXPECT_FALSE(parser.GetBool("interference"));
}

TEST(FlagsTest, EqualsForm) {
  FlagParser parser = MakeParser();
  std::vector<std::string> args = {"prog", "--jobs=42", "--load=0.5", "--policy=tiresias"};
  auto argv = MakeArgv(args);
  ASSERT_TRUE(parser.Parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(parser.GetInt("jobs"), 42);
  EXPECT_DOUBLE_EQ(parser.GetDouble("load"), 0.5);
  EXPECT_EQ(parser.GetString("policy"), "tiresias");
}

TEST(FlagsTest, SpaceSeparatedForm) {
  FlagParser parser = MakeParser();
  std::vector<std::string> args = {"prog", "--jobs", "7"};
  auto argv = MakeArgv(args);
  ASSERT_TRUE(parser.Parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(parser.GetInt("jobs"), 7);
}

TEST(FlagsTest, BooleanForms) {
  FlagParser parser = MakeParser();
  std::vector<std::string> args = {"prog", "--interference"};
  auto argv = MakeArgv(args);
  ASSERT_TRUE(parser.Parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_TRUE(parser.GetBool("interference"));

  FlagParser parser2 = MakeParser();
  std::vector<std::string> args2 = {"prog", "--interference=true", "--no-interference"};
  auto argv2 = MakeArgv(args2);
  ASSERT_TRUE(parser2.Parse(static_cast<int>(argv2.size()), argv2.data()));
  EXPECT_FALSE(parser2.GetBool("interference"));
}

TEST(FlagsTest, UnknownFlagFails) {
  FlagParser parser = MakeParser();
  std::vector<std::string> args = {"prog", "--bogus=1"};
  auto argv = MakeArgv(args);
  EXPECT_FALSE(parser.Parse(static_cast<int>(argv.size()), argv.data()));
}

TEST(FlagsTest, MalformedIntFails) {
  FlagParser parser = MakeParser();
  std::vector<std::string> args = {"prog", "--jobs=abc"};
  auto argv = MakeArgv(args);
  EXPECT_FALSE(parser.Parse(static_cast<int>(argv.size()), argv.data()));

  FlagParser parser2 = MakeParser();
  std::vector<std::string> args2 = {"prog", "--jobs=12x"};
  auto argv2 = MakeArgv(args2);
  EXPECT_FALSE(parser2.Parse(static_cast<int>(argv2.size()), argv2.data()));

  FlagParser parser3 = MakeParser();
  std::vector<std::string> args3 = {"prog", "--jobs="};
  auto argv3 = MakeArgv(args3);
  EXPECT_FALSE(parser3.Parse(static_cast<int>(argv3.size()), argv3.data()));
}

TEST(FlagsTest, MalformedDoubleFails) {
  FlagParser parser = MakeParser();
  std::vector<std::string> args = {"prog", "--load=fast"};
  auto argv = MakeArgv(args);
  EXPECT_FALSE(parser.Parse(static_cast<int>(argv.size()), argv.data()));

  FlagParser parser2 = MakeParser();
  std::vector<std::string> args2 = {"prog", "--load", "1.5.2"};
  auto argv2 = MakeArgv(args2);
  EXPECT_FALSE(parser2.Parse(static_cast<int>(argv2.size()), argv2.data()));
}

TEST(FlagsTest, MalformedBoolFails) {
  FlagParser parser = MakeParser();
  std::vector<std::string> args = {"prog", "--interference=maybe"};
  auto argv = MakeArgv(args);
  EXPECT_FALSE(parser.Parse(static_cast<int>(argv.size()), argv.data()));
}

TEST(FlagsTest, WellFormedValuesStillParse) {
  FlagParser parser = MakeParser();
  std::vector<std::string> args = {"prog", "--jobs=-3", "--load=1e-2", "--interference=yes"};
  auto argv = MakeArgv(args);
  ASSERT_TRUE(parser.Parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(parser.GetInt("jobs"), -3);
  EXPECT_DOUBLE_EQ(parser.GetDouble("load"), 1e-2);
  EXPECT_TRUE(parser.GetBool("interference"));
}

TEST(FlagsTest, HelpReturnsFalse) {
  FlagParser parser = MakeParser();
  std::vector<std::string> args = {"prog", "--help"};
  auto argv = MakeArgv(args);
  EXPECT_FALSE(parser.Parse(static_cast<int>(argv.size()), argv.data()));
}

TEST(FlagsTest, MissingValueFails) {
  FlagParser parser = MakeParser();
  std::vector<std::string> args = {"prog", "--jobs"};
  auto argv = MakeArgv(args);
  EXPECT_FALSE(parser.Parse(static_cast<int>(argv.size()), argv.data()));
}

// help_requested() is what lets binaries map Parse() == false onto the
// unified exit codes (bench/common.h): --help exits 0, a bad flag exits 2.
TEST(FlagsTest, HelpRequestedDistinguishesHelpFromUsageErrors) {
  FlagParser parser = MakeParser();
  std::vector<std::string> help_args = {"prog", "--help"};
  auto help_argv = MakeArgv(help_args);
  EXPECT_FALSE(parser.Parse(static_cast<int>(help_argv.size()), help_argv.data()));
  EXPECT_TRUE(parser.help_requested());

  std::vector<std::string> bad_args = {"prog", "--not-a-flag=1"};
  auto bad_argv = MakeArgv(bad_args);
  EXPECT_FALSE(parser.Parse(static_cast<int>(bad_argv.size()), bad_argv.data()));
  EXPECT_FALSE(parser.help_requested());

  // A later clean parse resets the sticky help state.
  std::vector<std::string> ok_args = {"prog", "--jobs=1"};
  auto ok_argv = MakeArgv(ok_args);
  EXPECT_TRUE(parser.Parse(static_cast<int>(ok_argv.size()), ok_argv.data()));
  EXPECT_FALSE(parser.help_requested());
}

TEST(FlagsTest, UnknownFlagSuggestsClosestName) {
  FlagParser parser = MakeParser();
  // One edit away.
  EXPECT_EQ(parser.SuggestFlag("jbs"), "jobs");
  EXPECT_EQ(parser.SuggestFlag("polcy"), "policy");
  // Two edits (transposition counts as two here).
  EXPECT_EQ(parser.SuggestFlag("laod"), "load");
  // An exact miss with nothing close suggests nothing.
  EXPECT_EQ(parser.SuggestFlag("verbosity"), "");
  EXPECT_EQ(parser.SuggestFlag(""), "");
  // Parsing still fails on the near-miss (the hint is stderr-only).
  std::vector<std::string> args = {"prog", "--jbs=3"};
  auto argv = MakeArgv(args);
  EXPECT_FALSE(parser.Parse(static_cast<int>(argv.size()), argv.data()));
}

}  // namespace
}  // namespace pollux
