#include "sim/placement.h"

#include <gtest/gtest.h>

namespace pollux {
namespace {

int RowTotal(const std::vector<int>& row) {
  int total = 0;
  for (int g : row) {
    total += g;
  }
  return total;
}

TEST(PlacementTest, ConsolidatesOntoSingleNodeWhenPossible) {
  const ClusterSpec cluster = ClusterSpec::Homogeneous(4, 4);
  const auto rows = PlaceConsolidated(cluster, {{1, 4}, {2, 3}}, {});
  EXPECT_EQ(RowTotal(rows.at(1)), 4);
  EXPECT_EQ(RowTotal(rows.at(2)), 3);
  // Each fits on one node.
  int nodes1 = 0;
  int nodes2 = 0;
  for (size_t n = 0; n < 4; ++n) {
    nodes1 += rows.at(1)[n] > 0 ? 1 : 0;
    nodes2 += rows.at(2)[n] > 0 ? 1 : 0;
  }
  EXPECT_EQ(nodes1, 1);
  EXPECT_EQ(nodes2, 1);
}

TEST(PlacementTest, SpillsAcrossNodesWhenNeeded) {
  const ClusterSpec cluster = ClusterSpec::Homogeneous(4, 4);
  const auto rows = PlaceConsolidated(cluster, {{1, 10}}, {});
  EXPECT_EQ(RowTotal(rows.at(1)), 10);
  int nodes = 0;
  for (int g : rows.at(1)) {
    EXPECT_LE(g, 4);
    nodes += g > 0 ? 1 : 0;
  }
  EXPECT_EQ(nodes, 3);  // 4 + 4 + 2 is the tightest packing.
}

TEST(PlacementTest, KeepsExistingPlacementWhenSizeMatches) {
  const ClusterSpec cluster = ClusterSpec::Homogeneous(3, 4);
  std::map<uint64_t, std::vector<int>> current = {{1, {0, 2, 0}}};
  const auto rows = PlaceConsolidated(cluster, {{1, 2}, {2, 4}}, current);
  EXPECT_EQ(rows.at(1), (std::vector<int>{0, 2, 0}));
  EXPECT_EQ(RowTotal(rows.at(2)), 4);
}

TEST(PlacementTest, ZeroRequestGivesZeroRow) {
  const ClusterSpec cluster = ClusterSpec::Homogeneous(2, 4);
  const auto rows = PlaceConsolidated(cluster, {{1, 0}}, {});
  EXPECT_EQ(RowTotal(rows.at(1)), 0);
}

TEST(PlacementTest, OverCapacityRequestWaits) {
  const ClusterSpec cluster = ClusterSpec::Homogeneous(2, 4);
  const auto rows = PlaceConsolidated(cluster, {{1, 6}, {2, 6}}, {});
  // Only one of the two 6-GPU requests fits an 8-GPU cluster.
  const int placed = (RowTotal(rows.at(1)) > 0 ? 1 : 0) + (RowTotal(rows.at(2)) > 0 ? 1 : 0);
  EXPECT_EQ(placed, 1);
}

TEST(PlacementTest, NeverExceedsNodeCapacity) {
  const ClusterSpec cluster = ClusterSpec::Homogeneous(4, 4);
  std::map<uint64_t, std::vector<int>> current = {{1, {4, 0, 0, 0}}, {2, {0, 4, 0, 0}}};
  const auto rows =
      PlaceConsolidated(cluster, {{1, 4}, {2, 4}, {3, 4}, {4, 4}, {5, 2}}, current);
  std::vector<int> usage(4, 0);
  for (const auto& [id, row] : rows) {
    for (size_t n = 0; n < 4; ++n) {
      usage[n] += row[n];
    }
  }
  for (int u : usage) {
    EXPECT_LE(u, 4);
  }
  // The kept placements survive.
  EXPECT_EQ(rows.at(1), (std::vector<int>{4, 0, 0, 0}));
  EXPECT_EQ(rows.at(2), (std::vector<int>{0, 4, 0, 0}));
}

TEST(PlacementTest, ShrunkClusterDropsStaleRows) {
  const ClusterSpec cluster = ClusterSpec::Homogeneous(2, 2);
  // Current row claims 4 GPUs on node 0, but nodes now have only 2.
  std::map<uint64_t, std::vector<int>> current = {{1, {4, 0}}};
  const auto rows = PlaceConsolidated(cluster, {{1, 4}}, current);
  std::vector<int> usage(2, 0);
  for (size_t n = 0; n < 2; ++n) {
    usage[n] += rows.at(1)[n];
    EXPECT_LE(usage[n], 2);
  }
  EXPECT_EQ(RowTotal(rows.at(1)), 4);  // Re-placed as 2 + 2.
}

}  // namespace
}  // namespace pollux
