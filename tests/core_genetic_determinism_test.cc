// The scheduling contract of the parallel GA: the allocation matrix and
// fitness PolluxSched computes must be BIT-identical regardless of how many
// ThreadPool workers evaluated the population, and regardless of whether the
// speedup memoization cache is enabled. (EXPECT_EQ on doubles is exact
// equality, i.e. bitwise for non-NaN values.)

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/eval_cache.h"
#include "core/genetic.h"
#include "core/sched.h"
#include "core/speedup_table.h"

namespace pollux {
namespace {

GoodputModel TypicalModel(double phi = 1000.0) {
  ThroughputParams params;
  params.alpha_grad = 0.05;
  params.beta_grad = 2e-4;
  params.alpha_sync_local = 0.03;
  params.beta_sync_local = 0.002;
  params.alpha_sync_node = 0.1;
  params.beta_sync_node = 0.005;
  params.gamma = 2.0;
  return GoodputModel(params, phi, 128);
}

BatchLimits TypicalLimits() {
  BatchLimits limits;
  limits.min_batch = 128;
  limits.max_batch_total = 16384;
  limits.max_batch_per_gpu = 1024;
  return limits;
}

SchedJobInfo MakeJob(uint64_t id, int cap, double phi = 1000.0) {
  SchedJobInfo info;
  info.job_id = id;
  info.speedups = SpeedupTable(TypicalModel(phi), TypicalLimits(), 32);
  info.max_gpus_cap = cap;
  info.progress_bucket = static_cast<uint16_t>(id % 5);
  return info;
}

// A few job mixes of different sizes/scalability, including running jobs
// (restart penalties) and capped jobs.
std::vector<SchedJobInfo> JobMix(int mix) {
  std::vector<SchedJobInfo> jobs;
  switch (mix) {
    case 0:  // Small homogeneous mix.
      for (uint64_t id = 1; id <= 4; ++id) {
        jobs.push_back(MakeJob(id, 8));
      }
      break;
    case 1:  // Heterogeneous caps and scalability.
      for (uint64_t id = 1; id <= 10; ++id) {
        jobs.push_back(MakeJob(id, 1 << (id % 5), id % 3 == 0 ? 1e5 : 500.0));
      }
      break;
    default:  // Larger mix with incumbents holding GPUs.
      for (uint64_t id = 1; id <= 24; ++id) {
        jobs.push_back(MakeJob(id, 8, 100.0 * static_cast<double>(id)));
      }
      jobs[0].current_allocation = {4, 0, 0, 0, 0, 0, 0, 0};
      jobs[1].current_allocation = {0, 4, 0, 0, 0, 0, 0, 0};
      jobs[2].current_allocation = {0, 0, 2, 2, 0, 0, 0, 0};
      break;
  }
  return jobs;
}

GaOptions BaseOptions(uint64_t seed) {
  GaOptions options;
  options.population_size = 16;
  options.generations = 10;
  options.seed = seed;
  return options;
}

// Runs `rounds` consecutive scheduling rounds (exercising the persisted
// population) and returns the last result.
GeneticOptimizer::Result RunRounds(GeneticOptimizer& ga, const std::vector<SchedJobInfo>& jobs,
                                   int rounds) {
  GeneticOptimizer::Result result;
  for (int r = 0; r < rounds; ++r) {
    result = ga.Optimize(jobs);
  }
  return result;
}

TEST(GeneticDeterminismTest, BitIdenticalAcrossThreadCounts) {
  const int hardware = static_cast<int>(std::thread::hardware_concurrency());
  for (uint64_t seed : {7u, 42u, 12345u}) {
    for (int mix = 0; mix < 3; ++mix) {
      const auto jobs = JobMix(mix);
      GaOptions serial = BaseOptions(seed);
      serial.threads = 1;
      GeneticOptimizer ga1(ClusterSpec::Homogeneous(8, 4), serial);
      const auto baseline = RunRounds(ga1, jobs, 2);

      for (int threads : {4, hardware > 0 ? hardware : 2}) {
        GaOptions parallel = BaseOptions(seed);
        parallel.threads = threads;
        GeneticOptimizer gan(ClusterSpec::Homogeneous(8, 4), parallel);
        const auto result = RunRounds(gan, jobs, 2);
        EXPECT_EQ(result.best, baseline.best)
            << "seed " << seed << " mix " << mix << " threads " << threads;
        EXPECT_EQ(result.fitness, baseline.fitness)
            << "seed " << seed << " mix " << mix << " threads " << threads;
        EXPECT_EQ(result.utility, baseline.utility)
            << "seed " << seed << " mix " << mix << " threads " << threads;
      }
    }
  }
}

TEST(GeneticDeterminismTest, AutoThreadCountMatchesSerial) {
  const auto jobs = JobMix(1);
  GaOptions serial = BaseOptions(99);
  GeneticOptimizer ga1(ClusterSpec::Homogeneous(8, 4), serial);
  GaOptions automatic = BaseOptions(99);
  automatic.threads = 0;  // hardware_concurrency
  GeneticOptimizer ga0(ClusterSpec::Homogeneous(8, 4), automatic);
  const auto a = ga1.Optimize(jobs);
  const auto b = ga0.Optimize(jobs);
  EXPECT_EQ(a.best, b.best);
  EXPECT_EQ(a.fitness, b.fitness);
}

TEST(GeneticDeterminismTest, MemoizationDoesNotChangeResults) {
  for (int threads : {1, 4}) {
    for (int mix = 0; mix < 3; ++mix) {
      const auto jobs = JobMix(mix);
      GaOptions with_cache = BaseOptions(21);
      with_cache.threads = threads;
      with_cache.memoize = true;
      GaOptions without_cache = with_cache;
      without_cache.memoize = false;
      GeneticOptimizer ga_cached(ClusterSpec::Homogeneous(8, 4), with_cache);
      GeneticOptimizer ga_uncached(ClusterSpec::Homogeneous(8, 4), without_cache);
      const auto cached = RunRounds(ga_cached, jobs, 2);
      const auto uncached = RunRounds(ga_uncached, jobs, 2);
      EXPECT_EQ(cached.best, uncached.best) << "threads " << threads << " mix " << mix;
      EXPECT_EQ(cached.fitness, uncached.fitness) << "threads " << threads << " mix " << mix;
    }
  }
}

TEST(GeneticDeterminismTest, CacheAbsorbsRepeatEvaluations) {
  const auto jobs = JobMix(2);
  GaOptions options = BaseOptions(5);
  GeneticOptimizer ga(ClusterSpec::Homogeneous(8, 4), options);
  ga.Optimize(jobs);
  const EvalCacheStats stats = ga.cache_stats();
  // Every (job, K, N) shape misses once and hits on each of the hundreds of
  // re-evaluations in the round.
  EXPECT_GT(stats.hits, stats.misses);
  EXPECT_GT(stats.entries, 0u);
  EXPECT_GT(stats.HitRate(), 0.5);
}

TEST(GeneticDeterminismTest, DisabledCacheCountsNothing) {
  const auto jobs = JobMix(0);
  GaOptions options = BaseOptions(5);
  options.memoize = false;
  GeneticOptimizer ga(ClusterSpec::Homogeneous(8, 4), options);
  ga.Optimize(jobs);
  const EvalCacheStats stats = ga.cache_stats();
  EXPECT_EQ(stats.hits + stats.misses, 0u);
}

TEST(GeneticDeterminismTest, RepeatedRunsOfSameOptimizerConfigAgree) {
  // Same seed + same thread count run twice from scratch: identical, i.e. the
  // pool introduces no hidden state across Optimize calls.
  const auto jobs = JobMix(1);
  for (int threads : {1, 4}) {
    GaOptions options = BaseOptions(77);
    options.threads = threads;
    GeneticOptimizer ga_a(ClusterSpec::Homogeneous(8, 4), options);
    GeneticOptimizer ga_b(ClusterSpec::Homogeneous(8, 4), options);
    const auto a = RunRounds(ga_a, jobs, 3);
    const auto b = RunRounds(ga_b, jobs, 3);
    EXPECT_EQ(a.best, b.best) << "threads " << threads;
    EXPECT_EQ(a.fitness, b.fitness) << "threads " << threads;
  }
}

TEST(EvalCacheTest, RoundTripsValuesAndAux) {
  EvalCache cache;
  EvalCache::Key key{.job_id = 9, .model_fp = 1234, .replicas = 8, .nodes = 2,
                     .progress_bucket = 3};
  EvalCache::Value value;
  EXPECT_FALSE(cache.Lookup(key, &value));
  cache.Insert(key, {2.5, 4096});
  ASSERT_TRUE(cache.Lookup(key, &value));
  EXPECT_EQ(value.value, 2.5);
  EXPECT_EQ(value.aux, 4096);
  // A key differing in any one field is a distinct entry.
  EvalCache::Key other = key;
  other.model_fp = 1235;
  EXPECT_FALSE(cache.Lookup(other, &value));
  const EvalCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(EvalCacheTest, SurvivesShardGrowth) {
  // Far beyond the initial slot count, forcing several rehashes per shard;
  // every inserted key must remain retrievable with its exact value.
  EvalCache cache;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    EvalCache::Key key{.job_id = static_cast<uint64_t>(i), .model_fp = 7,
                       .replicas = static_cast<uint32_t>(i % 64), .nodes = 1,
                       .progress_bucket = 0};
    cache.Insert(key, {static_cast<double>(i) * 0.5, i});
  }
  for (int i = 0; i < n; ++i) {
    EvalCache::Key key{.job_id = static_cast<uint64_t>(i), .model_fp = 7,
                       .replicas = static_cast<uint32_t>(i % 64), .nodes = 1,
                       .progress_bucket = 0};
    EvalCache::Value value;
    ASSERT_TRUE(cache.Lookup(key, &value)) << i;
    EXPECT_EQ(value.value, static_cast<double>(i) * 0.5);
    EXPECT_EQ(value.aux, i);
  }
  EXPECT_EQ(cache.Stats().entries, static_cast<uint64_t>(n));
  cache.Clear();
  EXPECT_EQ(cache.Stats().entries, 0u);
}

TEST(EvalCacheTest, CapacityBoundEvictsInsteadOfGrowing) {
  EvalCache cache(/*max_entries_per_shard=*/32);
  for (int i = 0; i < 100000; ++i) {
    EvalCache::Key key{.job_id = static_cast<uint64_t>(i)};
    cache.Insert(key, {1.0, 0});
  }
  // Entries never exceed the bound; inserts keep succeeding (latest key is
  // always present right after insertion).
  EXPECT_LE(cache.Stats().entries, 32u * EvalCache::kNumShards);
  EvalCache::Key last{.job_id = 99999};
  EvalCache::Value value;
  EXPECT_TRUE(cache.Lookup(last, &value));
}

TEST(EvalCacheTest, CapacityBoundHoldsUnderConcurrentMixedLoad) {
  // Several threads hammer one small-capacity cache with interleaved inserts
  // and lookups over overlapping key ranges. The capacity bound must hold
  // throughout (epoch eviction under contention), every hit must return the
  // value its key was inserted with, and the stats counters must account for
  // every probe. Run under TSan (tools/run_sanitized_tests.sh) this also
  // exercises the shard locking for data races.
  constexpr size_t kPerShard = 64;
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 20000;
  EvalCache cache(kPerShard);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&cache, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        // Overlapping ranges: ~half the keys are shared across threads.
        const uint64_t id = static_cast<uint64_t>(i % 512 + (i % 2 == 0 ? 0 : t * 512));
        EvalCache::Key key{.job_id = id, .model_fp = 77};
        if (i % 3 == 0) {
          // The value is a pure function of the key, as in real use — so a
          // concurrent hit can never observe a "wrong" value.
          cache.Insert(key, {static_cast<double>(id) * 0.5, static_cast<long>(id)});
        } else {
          EvalCache::Value value;
          if (cache.Lookup(key, &value)) {
            EXPECT_EQ(value.value, static_cast<double>(id) * 0.5);
            EXPECT_EQ(value.aux, static_cast<long>(id));
          }
        }
      }
    });
  }
  for (auto& worker : workers) {
    worker.join();
  }
  const EvalCacheStats stats = cache.Stats();
  EXPECT_LE(stats.entries, kPerShard * EvalCache::kNumShards);
  // Every lookup was counted as a hit or a miss.
  const uint64_t lookups =
      static_cast<uint64_t>(kThreads) * (kOpsPerThread - (kOpsPerThread + 2) / 3);
  EXPECT_EQ(stats.hits + stats.misses, lookups);
  EXPECT_GT(stats.hits, 0u);
}

// Sched-level checks: the construction-time memoization (SchedConfig::
// memoize_tables) must be invisible in every scheduling output.

SchedJobReport MakeReport(uint64_t id, double phi, int cap, double gpu_time) {
  SchedJobReport report;
  report.agent.job_id = id;
  report.agent.model = TypicalModel(phi);
  report.agent.limits = TypicalLimits();
  report.agent.max_gpus_cap = cap;
  report.gpu_time = gpu_time;
  return report;
}

TEST(SchedMemoizationTest, TableCacheDoesNotChangeSchedules) {
  SchedConfig cached_config;
  cached_config.ga.population_size = 16;
  cached_config.ga.generations = 8;
  cached_config.ga.seed = 3;
  SchedConfig uncached_config = cached_config;
  uncached_config.memoize_tables = false;
  PolluxSched cached(ClusterSpec::Homogeneous(4, 4), cached_config);
  PolluxSched uncached(ClusterSpec::Homogeneous(4, 4), uncached_config);

  // Several rounds with evolving models/progress, as in a live simulation.
  for (int round = 0; round < 3; ++round) {
    std::vector<SchedJobReport> reports;
    for (uint64_t id = 1; id <= 6; ++id) {
      const double phi = 500.0 * static_cast<double>(id) + 10.0 * round;
      reports.push_back(MakeReport(id, phi, 8, 3600.0 * round));
    }
    const auto a = cached.Schedule(reports);
    const auto b = uncached.Schedule(reports);
    EXPECT_EQ(a, b) << "round " << round;
    EXPECT_EQ(cached.last_fitness(), uncached.last_fitness()) << "round " << round;
    EXPECT_EQ(cached.last_utility(), uncached.last_utility()) << "round " << round;
  }
  EXPECT_GT(cached.table_cache_stats().entries, 0u);
  EXPECT_EQ(uncached.table_cache_stats().hits + uncached.table_cache_stats().misses, 0u);
}

TEST(SchedMemoizationTest, UtilityProbesReuseTableEntries) {
  SchedConfig config;
  config.ga.population_size = 12;
  config.ga.generations = 8;
  config.ga.seed = 11;
  PolluxSched sched(ClusterSpec::Homogeneous(4, 4), config);
  std::vector<SchedJobReport> reports;
  for (uint64_t id = 1; id <= 6; ++id) {
    reports.push_back(MakeReport(id, 800.0 * static_cast<double>(id), 16, 0.0));
  }

  // First probe populates the cache; later probes at other cluster sizes
  // rebuild every table from hits (same models, so same fingerprints).
  const double u4 = sched.EvaluateUtilityAt(4, 4, reports);
  const auto after_first = sched.table_cache_stats();
  const double u8 = sched.EvaluateUtilityAt(8, 4, reports);
  const auto after_second = sched.table_cache_stats();
  EXPECT_GT(after_second.hits, after_first.hits);
  // A bigger hypothetical cluster can only help utility-optimal allocation;
  // mainly we care that both probes ran.
  EXPECT_GE(u8, 0.0);
  EXPECT_GE(u4, 0.0);

  // Probing the same size twice is fully memoized (same value, all hits).
  const auto before_repeat = sched.table_cache_stats();
  const double u4_again = sched.EvaluateUtilityAt(4, 4, reports);
  EXPECT_EQ(u4_again, u4);
  EXPECT_EQ(sched.table_cache_stats().misses, before_repeat.misses);
}

}  // namespace
}  // namespace pollux
