#include "core/allocation.h"

#include <gtest/gtest.h>

namespace pollux {
namespace {

TEST(ClusterSpecTest, HomogeneousTotals) {
  const ClusterSpec cluster = ClusterSpec::Homogeneous(16, 4);
  EXPECT_EQ(cluster.NumNodes(), 16);
  EXPECT_EQ(cluster.TotalGpus(), 64);
  EXPECT_EQ(cluster.MaxGpusPerNode(), 4);
}

TEST(ClusterSpecTest, HeterogeneousTotals) {
  ClusterSpec cluster;
  cluster.gpus_per_node = {8, 2, 4};
  EXPECT_EQ(cluster.NumNodes(), 3);
  EXPECT_EQ(cluster.TotalGpus(), 14);
  EXPECT_EQ(cluster.MaxGpusPerNode(), 8);
}

TEST(AllocationMatrixTest, StartsZeroed) {
  const AllocationMatrix matrix(3, 4);
  for (size_t j = 0; j < 3; ++j) {
    for (size_t n = 0; n < 4; ++n) {
      EXPECT_EQ(matrix.at(j, n), 0);
    }
  }
  EXPECT_EQ(matrix.JobPlacement(0), (Placement{0, 0}));
}

TEST(AllocationMatrixTest, PlacementCountsGpusAndNodes) {
  AllocationMatrix matrix(2, 3);
  matrix.at(0, 0) = 2;
  matrix.at(0, 2) = 1;
  matrix.at(1, 1) = 4;
  EXPECT_EQ(matrix.JobPlacement(0), (Placement{3, 2}));
  EXPECT_EQ(matrix.JobPlacement(1), (Placement{4, 1}));
  EXPECT_TRUE(matrix.IsDistributed(0));
  EXPECT_FALSE(matrix.IsDistributed(1));
}

TEST(AllocationMatrixTest, RowRoundTrip) {
  AllocationMatrix matrix(2, 3);
  matrix.SetRow(1, {1, 0, 2});
  EXPECT_EQ(matrix.Row(1), (std::vector<int>{1, 0, 2}));
  // Short rows only set the provided prefix.
  matrix.SetRow(0, {5});
  EXPECT_EQ(matrix.Row(0), (std::vector<int>{5, 0, 0}));
}

TEST(AllocationMatrixTest, NodeUsageSumsColumns) {
  AllocationMatrix matrix(2, 2);
  matrix.at(0, 0) = 3;
  matrix.at(1, 0) = 1;
  matrix.at(1, 1) = 2;
  EXPECT_EQ(matrix.NodeUsage(), (std::vector<int>{4, 2}));
}

TEST(AllocationMatrixTest, CapacityCheck) {
  const ClusterSpec cluster = ClusterSpec::Homogeneous(2, 4);
  AllocationMatrix matrix(2, 2);
  matrix.at(0, 0) = 3;
  matrix.at(1, 0) = 1;
  EXPECT_TRUE(matrix.WithinCapacity(cluster));
  matrix.at(1, 0) = 2;
  EXPECT_FALSE(matrix.WithinCapacity(cluster));
}

}  // namespace
}  // namespace pollux
