#include "optim/lbfgsb.h"

#include <gtest/gtest.h>

#include <cmath>

namespace pollux {
namespace {

constexpr double kInf = 1e30;

TEST(ProjectToBoxTest, ClampsEachCoordinate) {
  const auto projected = ProjectToBox({-1.0, 0.5, 9.0}, {0.0, 0.0, 0.0}, {1.0, 1.0, 1.0});
  EXPECT_DOUBLE_EQ(projected[0], 0.0);
  EXPECT_DOUBLE_EQ(projected[1], 0.5);
  EXPECT_DOUBLE_EQ(projected[2], 1.0);
}

TEST(FiniteDifferenceTest, MatchesAnalyticGradient) {
  const Objective f = [](const std::vector<double>& x) {
    return x[0] * x[0] + 3.0 * x[0] * x[1] + 2.0 * x[1] * x[1];
  };
  const std::vector<double> x = {1.5, -2.0};
  const auto grad = FiniteDifferenceGradient(f, x, {-kInf, -kInf}, {kInf, kInf}, 1e-6);
  EXPECT_NEAR(grad[0], 2.0 * x[0] + 3.0 * x[1], 1e-5);
  EXPECT_NEAR(grad[1], 3.0 * x[0] + 4.0 * x[1], 1e-5);
}

TEST(FiniteDifferenceTest, OneSidedAtBoundary) {
  const Objective f = [](const std::vector<double>& x) { return x[0] * x[0]; };
  // x sits exactly on the lower bound; gradient should still be ~2x.
  const auto grad = FiniteDifferenceGradient(f, {2.0}, {2.0}, {10.0}, 1e-6);
  EXPECT_NEAR(grad[0], 4.0, 1e-3);
}

TEST(LbfgsbTest, QuadraticUnconstrained) {
  BoundedProblem problem;
  problem.lower = {-kInf, -kInf};
  problem.upper = {kInf, kInf};
  problem.objective = [](const std::vector<double>& x) {
    return (x[0] - 1.0) * (x[0] - 1.0) + 10.0 * (x[1] + 2.0) * (x[1] + 2.0);
  };
  const auto result = MinimizeBounded(problem, {5.0, 5.0});
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.x[0], 1.0, 1e-4);
  EXPECT_NEAR(result.x[1], -2.0, 1e-4);
  EXPECT_NEAR(result.value, 0.0, 1e-7);
}

TEST(LbfgsbTest, ActiveBoundSolution) {
  // Unconstrained minimum at (1, -2), but the box forces x1 >= 0.
  BoundedProblem problem;
  problem.lower = {0.0, 0.0};
  problem.upper = {10.0, 10.0};
  problem.objective = [](const std::vector<double>& x) {
    return (x[0] - 1.0) * (x[0] - 1.0) + (x[1] + 2.0) * (x[1] + 2.0);
  };
  const auto result = MinimizeBounded(problem, {5.0, 5.0});
  EXPECT_NEAR(result.x[0], 1.0, 1e-4);
  EXPECT_NEAR(result.x[1], 0.0, 1e-6);
}

TEST(LbfgsbTest, RosenbrockWithAnalyticGradient) {
  BoundedProblem problem;
  problem.lower = {-5.0, -5.0};
  problem.upper = {5.0, 5.0};
  problem.objective = [](const std::vector<double>& x) {
    const double a = 1.0 - x[0];
    const double b = x[1] - x[0] * x[0];
    return a * a + 100.0 * b * b;
  };
  problem.gradient = [](const std::vector<double>& x) {
    const double b = x[1] - x[0] * x[0];
    return std::vector<double>{-2.0 * (1.0 - x[0]) - 400.0 * x[0] * b, 200.0 * b};
  };
  LbfgsbOptions options;
  options.max_iterations = 500;
  const auto result = MinimizeBounded(problem, {-1.2, 1.0}, options);
  EXPECT_NEAR(result.x[0], 1.0, 1e-3);
  EXPECT_NEAR(result.x[1], 1.0, 1e-3);
}

TEST(LbfgsbTest, RosenbrockWithFiniteDifferences) {
  BoundedProblem problem;
  problem.lower = {-5.0, -5.0};
  problem.upper = {5.0, 5.0};
  problem.objective = [](const std::vector<double>& x) {
    const double a = 1.0 - x[0];
    const double b = x[1] - x[0] * x[0];
    return a * a + 100.0 * b * b;
  };
  LbfgsbOptions options;
  options.max_iterations = 500;
  const auto result = MinimizeBounded(problem, {-1.2, 1.0}, options);
  EXPECT_NEAR(result.x[0], 1.0, 1e-2);
  EXPECT_NEAR(result.x[1], 1.0, 1e-2);
}

TEST(LbfgsbTest, StartOutsideBoxIsProjected) {
  BoundedProblem problem;
  problem.lower = {0.0};
  problem.upper = {1.0};
  problem.objective = [](const std::vector<double>& x) { return (x[0] - 0.25) * (x[0] - 0.25); };
  const auto result = MinimizeBounded(problem, {100.0});
  EXPECT_NEAR(result.x[0], 0.25, 1e-5);
}

TEST(LbfgsbTest, MultiStartEscapesPoorBasin) {
  // Double-well in 1D: local minimum near x = -1 (value ~1), global near
  // x = +1 (value ~0). A single start at -1.2 lands in the poor basin.
  BoundedProblem problem;
  problem.lower = {-3.0};
  problem.upper = {3.0};
  problem.objective = [](const std::vector<double>& x) {
    const double w = x[0] * x[0] - 1.0;
    return w * w + 0.5 * (1.0 - x[0]);
  };
  const auto single = MinimizeBounded(problem, {-1.2});
  Rng rng(7);
  const auto multi = MinimizeBoundedMultiStart(problem, {-1.2}, 8, rng);
  EXPECT_LE(multi.value, single.value + 1e-9);
  EXPECT_GT(multi.x[0], 0.0);
}

TEST(LbfgsbTest, FullyPinnedBoxReturnsImmediately) {
  BoundedProblem problem;
  problem.lower = {2.0, 3.0};
  problem.upper = {2.0, 3.0};
  problem.objective = [](const std::vector<double>& x) { return x[0] + x[1]; };
  const auto result = MinimizeBounded(problem, {0.0, 0.0});
  EXPECT_DOUBLE_EQ(result.x[0], 2.0);
  EXPECT_DOUBLE_EQ(result.x[1], 3.0);
  EXPECT_TRUE(result.converged);
}

// Property sweep: convex quadratics with varying conditioning must always be
// solved to high accuracy.
class LbfgsbConditioningSweep : public ::testing::TestWithParam<double> {};

TEST_P(LbfgsbConditioningSweep, SolvesIllConditionedQuadratic) {
  const double kappa = GetParam();
  BoundedProblem problem;
  problem.lower = {-kInf, -kInf};
  problem.upper = {kInf, kInf};
  problem.objective = [kappa](const std::vector<double>& x) {
    return x[0] * x[0] + kappa * x[1] * x[1];
  };
  LbfgsbOptions options;
  options.max_iterations = 1000;
  const auto result = MinimizeBounded(problem, {3.0, 3.0}, options);
  EXPECT_NEAR(result.x[0], 0.0, 1e-3);
  EXPECT_NEAR(result.x[1], 0.0, 1e-3);
}

INSTANTIATE_TEST_SUITE_P(Conditioning, LbfgsbConditioningSweep,
                         ::testing::Values(1.0, 10.0, 100.0, 1000.0, 10000.0));

}  // namespace
}  // namespace pollux
