// Engine equivalence sweep (seeds x fault profiles x all five policies):
// the event engine must reproduce the legacy ticked engine's trajectories —
// per-job JCTs within one tick (the event engine refines completion times
// inside the tick the ticked engine completed in), identical event *kind*
// counts, identical completion sets — and must itself be seed-deterministic
// and independent of the scheduler thread count.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "baselines/fifo.h"
#include "baselines/fixed_batch_policy.h"
#include "baselines/optimus.h"
#include "baselines/tiresias.h"
#include "sim/pollux_policy.h"
#include "sim/simulator.h"
#include "workload/trace_gen.h"

namespace pollux {
namespace {

struct EquivalenceCase {
  const char* policy;
  const char* fault_profile;  // "none" | "light" | "heavy"
  uint64_t seed;
};

std::vector<JobSpec> SmallTrace(uint64_t seed) {
  TraceOptions options;
  options.num_jobs = 10;
  options.duration = 1800.0;
  options.max_gpus = 8;
  options.seed = seed;
  auto jobs = GenerateTrace(options);
  for (auto& job : jobs) {
    // Keep the sweep fast: long-running models become small ones.
    if (job.model != ModelKind::kResNet18Cifar10 && job.model != ModelKind::kNeuMFMovieLens) {
      job.model = ModelKind::kNeuMFMovieLens;
      job.batch_size = 2048;
      job.requested_gpus = std::min(job.requested_gpus, 4);
    }
  }
  return jobs;
}

SimResult RunCase(const EquivalenceCase& c, SimEngine engine, int sched_threads = 1) {
  SimOptions options;
  options.engine = engine;
  options.cluster = ClusterSpec::Homogeneous(2, 4);
  options.seed = c.seed;
  options.sched_threads = sched_threads;
  options.check_invariants = true;
  EXPECT_TRUE(FaultProfileByName(c.fault_profile, &options.faults));
  if (options.faults.enabled()) {
    // The profiles' day-scale MTBFs never fire inside a short trace; shrink
    // them so the sweep actually exercises crash/repair under both engines.
    options.faults.mtbf_node = 1800.0;
    options.faults.repair_time = 120.0;
  }
  const auto trace = SmallTrace(c.seed);
  SchedConfig sched_config;
  sched_config.ga.population_size = 12;
  sched_config.ga.generations = 6;
  sched_config.ga.seed = c.seed;
  sched_config.ga.threads = sched_threads;
  const std::string policy = c.policy;
  if (policy == "pollux") {
    PolluxPolicy p(options.cluster, sched_config);
    return Simulator(options, trace, &p).Run();
  }
  if (policy == "pollux-fixed-batch") {
    FixedBatchPolluxPolicy p(options.cluster, sched_config);
    return Simulator(options, trace, &p).Run();
  }
  if (policy == "optimus") {
    OptimusPolicy p;
    return Simulator(options, trace, &p).Run();
  }
  if (policy == "fifo") {
    FifoPolicy p;
    return Simulator(options, trace, &p).Run();
  }
  TiresiasPolicy p;
  return Simulator(options, trace, &p).Run();
}

std::map<SimEventKind, size_t> EventKindCounts(const SimResult& result) {
  std::map<SimEventKind, size_t> counts;
  for (const auto& event : result.events) {
    ++counts[event.kind];
  }
  return counts;
}

std::set<uint64_t> CompletionSet(const SimResult& result) {
  std::set<uint64_t> completed;
  for (const auto& job : result.jobs) {
    if (job.completed) {
      completed.insert(job.job_id);
    }
  }
  return completed;
}

class EngineEquivalence : public ::testing::TestWithParam<EquivalenceCase> {};

TEST_P(EngineEquivalence, TickedAndEventEnginesAgree) {
  const EquivalenceCase c = GetParam();
  const SimResult ticked = RunCase(c, SimEngine::kTicked);
  const SimResult event = RunCase(c, SimEngine::kEvent);
  const double tick = 1.0;  // SimOptions default used by RunCase.

  // Identical completion sets and per-job JCTs within one tick.
  EXPECT_EQ(CompletionSet(ticked), CompletionSet(event));
  ASSERT_EQ(ticked.jobs.size(), event.jobs.size());
  for (size_t i = 0; i < ticked.jobs.size(); ++i) {
    const JobResult& a = ticked.jobs[i];
    const JobResult& b = event.jobs[i];
    ASSERT_EQ(a.job_id, b.job_id);
    EXPECT_EQ(a.completed, b.completed) << "job " << a.job_id;
    EXPECT_NEAR(a.Jct(), b.Jct(), tick) << "job " << a.job_id;
    EXPECT_EQ(a.start_time, b.start_time) << "job " << a.job_id;
    EXPECT_EQ(a.num_restarts, b.num_restarts) << "job " << a.job_id;
    EXPECT_EQ(a.num_evictions, b.num_evictions) << "job " << a.job_id;
    EXPECT_EQ(a.gpu_time, b.gpu_time) << "job " << a.job_id;
  }

  // Identical event kind counts (the engines take the same scheduling,
  // fault, and lifecycle decisions; only completion instants are refined).
  EXPECT_EQ(EventKindCounts(ticked), EventKindCounts(event));

  // Shared aggregates agree to within a tick of makespan.
  EXPECT_NEAR(ticked.makespan, event.makespan, tick);
  EXPECT_NEAR(ticked.node_seconds, event.node_seconds,
              1e-6 * std::max(1.0, ticked.node_seconds));
  EXPECT_EQ(ticked.timed_out, event.timed_out);
  ASSERT_EQ(ticked.timeline.size(), event.timeline.size());
  for (size_t i = 0; i < ticked.timeline.size(); ++i) {
    EXPECT_EQ(ticked.timeline[i].gpus_in_use, event.timeline[i].gpus_in_use) << "t" << i;
    EXPECT_EQ(ticked.timeline[i].running_jobs, event.timeline[i].running_jobs) << "t" << i;
  }
}

TEST_P(EngineEquivalence, EventEngineIsDeterministicAndThreadIndependent) {
  const EquivalenceCase c = GetParam();
  const SimResult a = RunCase(c, SimEngine::kEvent, /*sched_threads=*/1);
  const SimResult b = RunCase(c, SimEngine::kEvent, /*sched_threads=*/1);
  const SimResult threaded = RunCase(c, SimEngine::kEvent, /*sched_threads=*/4);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  ASSERT_EQ(a.jobs.size(), threaded.jobs.size());
  for (size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].finish_time, b.jobs[i].finish_time) << "rerun job " << i;
    EXPECT_EQ(a.jobs[i].gpu_time, b.jobs[i].gpu_time) << "rerun job " << i;
    EXPECT_EQ(a.jobs[i].finish_time, threaded.jobs[i].finish_time) << "threads job " << i;
    EXPECT_EQ(a.jobs[i].gpu_time, threaded.jobs[i].gpu_time) << "threads job " << i;
  }
  ASSERT_EQ(a.events.size(), b.events.size());
  ASSERT_EQ(a.events.size(), threaded.events.size());
  for (size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].time, b.events[i].time) << "rerun event " << i;
    EXPECT_EQ(a.events[i].kind, b.events[i].kind) << "rerun event " << i;
    EXPECT_EQ(a.events[i].time, threaded.events[i].time) << "threads event " << i;
    EXPECT_EQ(a.events[i].kind, threaded.events[i].kind) << "threads event " << i;
  }
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.makespan, threaded.makespan);
}

// The event engine's log is strictly monotone in time (the run above already
// aborts via check_invariants if not); spot-check it end to end here too so
// the property is asserted even in non-invariant builds.
TEST_P(EngineEquivalence, EventEngineLogIsMonotone) {
  const SimResult event = RunCase(GetParam(), SimEngine::kEvent);
  double last = 0.0;
  for (const auto& e : event.events) {
    EXPECT_GE(e.time + 1e-9, last) << SimEventKindName(e.kind);
    last = std::max(last, e.time);
  }
}

std::vector<EquivalenceCase> SweepCases() {
  std::vector<EquivalenceCase> cases;
  const char* policies[] = {"pollux", "pollux-fixed-batch", "optimus", "fifo", "tiresias"};
  // Every policy runs fault-free on two seeds; the fault profiles ride on
  // the two cheapest policies to keep the sweep fast.
  for (const char* policy : policies) {
    cases.push_back(EquivalenceCase{policy, "none", 1});
    cases.push_back(EquivalenceCase{policy, "none", 2});
  }
  for (const char* profile : {"light", "heavy"}) {
    cases.push_back(EquivalenceCase{"fifo", profile, 1});
    cases.push_back(EquivalenceCase{"tiresias", profile, 2});
    cases.push_back(EquivalenceCase{"pollux", profile, 3});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, EngineEquivalence, ::testing::ValuesIn(SweepCases()),
                         [](const ::testing::TestParamInfo<EquivalenceCase>& info) {
                           std::string name = info.param.policy;
                           for (char& ch : name) {
                             if (ch == '-') {
                               ch = '_';
                             }
                           }
                           return name + "_" + info.param.fault_profile + "_seed" +
                                  std::to_string(info.param.seed);
                         });

}  // namespace
}  // namespace pollux
