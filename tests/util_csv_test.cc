#include "util/csv.h"

#include <gtest/gtest.h>

#include <sstream>

namespace pollux {
namespace {

TEST(TablePrinterTest, AlignsColumnsAndPrintsAllRows) {
  TablePrinter table({"policy", "jct"});
  table.AddRow({"pollux", "1.2h"});
  table.AddRow({"tiresias+tuned", "2.4h"});
  std::ostringstream out;
  table.Print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("policy"), std::string::npos);
  EXPECT_NE(text.find("pollux"), std::string::npos);
  EXPECT_NE(text.find("tiresias+tuned"), std::string::npos);
  EXPECT_NE(text.find("----"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(TablePrinterTest, ShortRowsPadToHeaderWidth) {
  TablePrinter table({"a", "b", "c"});
  table.AddRow({"only"});
  std::ostringstream out;
  table.Print(out);
  EXPECT_NE(out.str().find("only"), std::string::npos);
}

TEST(CsvWriterTest, PlainRow) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.WriteRow({"a", "b", "c"});
  EXPECT_EQ(out.str(), "a,b,c\n");
}

TEST(CsvWriterTest, QuotesSpecialCharacters) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.WriteRow({"x,y", "he said \"hi\"", "line\nbreak"});
  EXPECT_EQ(out.str(), "\"x,y\",\"he said \"\"hi\"\"\",\"line\nbreak\"\n");
}

TEST(FormatTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
}

TEST(FormatTest, FormatDuration) {
  EXPECT_EQ(FormatDuration(7200.0), "2.00h");
  EXPECT_EQ(FormatDuration(90.0), "1.5m");
  EXPECT_EQ(FormatDuration(12.0), "12.0s");
}

}  // namespace
}  // namespace pollux
