#include <gtest/gtest.h>

#include <cmath>
#include <deque>

#include "baselines/optimus.h"
#include "baselines/tiresias.h"
#include "workload/model_profile.h"

namespace pollux {
namespace {

JobSnapshot MakeSnapshot(uint64_t id, double submit, int requested_gpus, long batch,
                         double gpu_time = 0.0, double remaining_iters = 1000.0) {
  // deque: push_back never invalidates the spec pointers handed to earlier
  // snapshots (a vector reallocation would leave them dangling).
  static std::deque<JobSpec>* specs = new std::deque<JobSpec>();
  specs->push_back(JobSpec{id, ModelKind::kResNet18Cifar10, submit, requested_gpus, batch, false});

  JobSnapshot snapshot;
  snapshot.job_id = id;
  snapshot.spec = &specs->back();
  snapshot.profile = &GetModelProfile(ModelKind::kResNet18Cifar10);
  snapshot.submit_time = submit;
  snapshot.gpu_time = gpu_time;
  snapshot.batch_size = batch;
  snapshot.oracle_remaining_iterations = remaining_iters;

  ThroughputParams params;
  params.alpha_grad = 0.02;
  params.beta_grad = 5e-4;
  params.alpha_sync_local = 0.02;
  params.beta_sync_local = 0.001;
  params.alpha_sync_node = 0.08;
  params.beta_sync_node = 0.004;
  params.gamma = 2.0;
  snapshot.agent.job_id = id;
  snapshot.agent.model = GoodputModel(params, 1000.0, 128);
  snapshot.agent.limits.min_batch = 128;
  snapshot.agent.limits.max_batch_total = 8192;
  snapshot.agent.limits.max_batch_per_gpu = 1024;
  snapshot.agent.max_gpus_cap = 64;
  return snapshot;
}

int RowTotal(const std::vector<int>& row) {
  int total = 0;
  for (int g : row) {
    total += g;
  }
  return total;
}

TEST(TiresiasTest, QueueIndexFromAttainedService) {
  TiresiasPolicy policy;
  EXPECT_EQ(policy.QueueOf(0.0), 0);
  EXPECT_EQ(policy.QueueOf(0.5 * 3600.0), 0);
  EXPECT_EQ(policy.QueueOf(2.0 * 3600.0), 1);
  EXPECT_EQ(policy.QueueOf(50.0 * 3600.0), 2);
}

TEST(TiresiasTest, GrantsExactlyRequestedGpus) {
  TiresiasPolicy policy;
  const ClusterSpec cluster = ClusterSpec::Homogeneous(2, 4);
  SchedulerContext context;
  context.cluster = &cluster;
  context.jobs.push_back(MakeSnapshot(1, 0.0, 3, 512));
  context.jobs.push_back(MakeSnapshot(2, 10.0, 4, 512));
  const auto rows = policy.Schedule(context);
  EXPECT_EQ(RowTotal(rows.at(1)), 3);
  EXPECT_EQ(RowTotal(rows.at(2)), 4);
}

TEST(TiresiasTest, LowServiceJobPreemptsHighService) {
  TiresiasPolicy policy;
  const ClusterSpec cluster = ClusterSpec::Homogeneous(1, 4);
  SchedulerContext context;
  context.cluster = &cluster;
  // Old job has consumed 5 GPU-hours (queue 1); newcomer is queue 0.
  context.jobs.push_back(MakeSnapshot(1, 0.0, 4, 512, 5.0 * 3600.0));
  context.jobs.push_back(MakeSnapshot(2, 100.0, 4, 512, 0.0));
  const auto rows = policy.Schedule(context);
  EXPECT_EQ(RowTotal(rows.at(1)), 0);  // Preempted.
  EXPECT_EQ(RowTotal(rows.at(2)), 4);  // Newcomer runs.
}

TEST(TiresiasTest, FifoWithinQueue) {
  TiresiasPolicy policy;
  const ClusterSpec cluster = ClusterSpec::Homogeneous(1, 4);
  SchedulerContext context;
  context.cluster = &cluster;
  context.jobs.push_back(MakeSnapshot(1, 500.0, 4, 512));
  context.jobs.push_back(MakeSnapshot(2, 100.0, 4, 512));
  const auto rows = policy.Schedule(context);
  EXPECT_EQ(RowTotal(rows.at(2)), 4);  // Earlier submit wins.
  EXPECT_EQ(RowTotal(rows.at(1)), 0);
}

TEST(OptimusTest, RemainingTimeDecreasesWithinANode) {
  const JobSnapshot job = MakeSnapshot(1, 0.0, 1, 1024);
  double previous = OptimusPolicy::EstimatedRemainingTime(job, 1, 4);
  for (int k = 2; k <= 4; ++k) {
    const double t = OptimusPolicy::EstimatedRemainingTime(job, k, 4);
    EXPECT_LT(t, previous) << "K=" << k;
    previous = t;
  }
  // Two full nodes beat one for a large batch, even though the cross-node
  // sync regime is slower per step.
  EXPECT_LT(OptimusPolicy::EstimatedRemainingTime(job, 8, 4),
            OptimusPolicy::EstimatedRemainingTime(job, 4, 4));
  EXPECT_TRUE(std::isinf(OptimusPolicy::EstimatedRemainingTime(job, 0, 4)));
}

TEST(OptimusTest, AllJobsGetAtLeastMinimumGpus) {
  OptimusPolicy policy;
  const ClusterSpec cluster = ClusterSpec::Homogeneous(4, 4);
  SchedulerContext context;
  context.cluster = &cluster;
  // Batch 2048 with 1024 per GPU => minimum 2 GPUs.
  context.jobs.push_back(MakeSnapshot(1, 0.0, 1, 2048));
  context.jobs.push_back(MakeSnapshot(2, 10.0, 1, 512));
  const auto rows = policy.Schedule(context);
  EXPECT_GE(RowTotal(rows.at(1)), 2);
  EXPECT_GE(RowTotal(rows.at(2)), 1);
}

TEST(OptimusTest, ShortJobFavoredUnderContention) {
  // Optimus targets the average JCT, so under contention the job that is
  // closest to finishing is admitted and grown first.
  OptimusPolicy policy;
  const ClusterSpec cluster = ClusterSpec::Homogeneous(1, 4);
  SchedulerContext context;
  context.cluster = &cluster;
  context.jobs.push_back(MakeSnapshot(1, 0.0, 1, 1024, 0.0, 1000000.0));
  context.jobs.push_back(MakeSnapshot(2, 10.0, 1, 1024, 0.0, 1000.0));
  const auto rows = policy.Schedule(context);
  EXPECT_GE(RowTotal(rows.at(2)), RowTotal(rows.at(1)));
  EXPECT_GT(RowTotal(rows.at(2)), 0);
  EXPECT_LE(RowTotal(rows.at(1)) + RowTotal(rows.at(2)), cluster.TotalGpus());
}

TEST(OptimusTest, LongJobsShareInsteadOfRunningSequentially) {
  // Two identical long jobs on a big cluster: the inverse-remaining-time
  // weighted waterfilling should split the spare capacity roughly evenly.
  OptimusPolicy policy;
  const ClusterSpec cluster = ClusterSpec::Homogeneous(4, 4);
  SchedulerContext context;
  context.cluster = &cluster;
  context.jobs.push_back(MakeSnapshot(1, 0.0, 1, 1024, 0.0, 500000.0));
  context.jobs.push_back(MakeSnapshot(2, 10.0, 1, 1024, 0.0, 500000.0));
  const auto rows = policy.Schedule(context);
  const int a = RowTotal(rows.at(1));
  const int b = RowTotal(rows.at(2));
  EXPECT_GT(a, 0);
  EXPECT_GT(b, 0);
  EXPECT_LE(std::abs(a - b), 4);
}

TEST(OptimusTest, EfficientGpuCountFindsScalingKnee) {
  const JobSnapshot job = MakeSnapshot(1, 0.0, 1, 1024);
  const int knee = OptimusPolicy::EfficientGpuCount(job, 4, 64, 0.5);
  EXPECT_GT(knee, 1);
  EXPECT_LT(knee, 64);
  // A stricter floor can only shrink the knee.
  EXPECT_LE(OptimusPolicy::EfficientGpuCount(job, 4, 64, 0.9), knee);
}

TEST(OptimusTest, UsesAllGpusWhenJobsScale) {
  OptimusPolicy policy;
  const ClusterSpec cluster = ClusterSpec::Homogeneous(2, 4);
  SchedulerContext context;
  context.cluster = &cluster;
  context.jobs.push_back(MakeSnapshot(1, 0.0, 1, 1024, 0.0, 50000.0));
  const auto rows = policy.Schedule(context);
  EXPECT_EQ(RowTotal(rows.at(1)), cluster.TotalGpus());
}

}  // namespace
}  // namespace pollux
