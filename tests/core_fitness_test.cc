#include "core/fitness.h"

#include <gtest/gtest.h>

#include "core/speedup_table.h"

namespace pollux {
namespace {

GoodputModel TypicalModel() {
  ThroughputParams params;
  params.alpha_grad = 0.05;
  params.beta_grad = 2e-4;
  params.alpha_sync_local = 0.03;
  params.beta_sync_local = 0.002;
  params.alpha_sync_node = 0.1;
  params.beta_sync_node = 0.005;
  params.gamma = 2.0;
  return GoodputModel(params, 1000.0, 128);
}

BatchLimits TypicalLimits() {
  BatchLimits limits;
  limits.min_batch = 128;
  limits.max_batch_total = 16384;
  limits.max_batch_per_gpu = 1024;
  return limits;
}

TEST(JobWeightTest, Eqn16Behaviour) {
  const double threshold = 4.0 * 3600.0;
  // At or below the threshold: weight 1.
  EXPECT_DOUBLE_EQ(JobWeight(0.0, threshold, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(JobWeight(threshold, threshold, 0.5), 1.0);
  // Above: decays as (thres/gpu_time)^lambda.
  EXPECT_NEAR(JobWeight(4.0 * threshold, threshold, 0.5), 0.5, 1e-12);
  EXPECT_NEAR(JobWeight(4.0 * threshold, threshold, 1.0), 0.25, 1e-12);
  // lambda = 0 disables decay entirely.
  EXPECT_DOUBLE_EQ(JobWeight(100.0 * threshold, threshold, 0.0), 1.0);
}

TEST(SpeedupTableTest, UnityAtOneGpu) {
  const SpeedupTable table(TypicalModel(), TypicalLimits(), 16);
  EXPECT_NEAR(table.At(1, 1), 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(table.At(0, 0), 0.0);
}

TEST(SpeedupTableTest, MatchesDirectSpeedup) {
  const GoodputModel model = TypicalModel();
  const BatchLimits limits = TypicalLimits();
  const SpeedupTable table(model, limits, 16);
  for (int k : {2, 4, 8, 16}) {
    EXPECT_NEAR(table.At(k, 1), Speedup(model, Placement{k, 1}, limits), 1e-9);
    EXPECT_NEAR(table.At(k, 2), Speedup(model, Placement{k, 2}, limits), 1e-9);
  }
}

TEST(SpeedupTableTest, ClampsBeyondTableMax) {
  const SpeedupTable table(TypicalModel(), TypicalLimits(), 8);
  EXPECT_DOUBLE_EQ(table.At(100, 2), table.At(8, 2));
}

TEST(SpeedupTableTest, BatchSizeLookups) {
  const GoodputModel model = TypicalModel();
  const BatchLimits limits = TypicalLimits();
  const SpeedupTable table(model, limits, 8);
  const auto direct = model.OptimizeBatchSize(Placement{4, 1}, limits);
  EXPECT_EQ(table.BatchSizeAt(4, 1), direct.batch_size);
  EXPECT_EQ(table.BatchSizeAt(0, 1), 0);
}

SchedJobInfo MakeJob(uint64_t id, int max_gpus = 16) {
  SchedJobInfo info;
  info.job_id = id;
  info.speedups = SpeedupTable(TypicalModel(), TypicalLimits(), max_gpus);
  info.max_gpus_cap = max_gpus;
  return info;
}

TEST(FitnessTest, RestartPenaltyAppliesOnlyOnChange) {
  SchedJobInfo job = MakeJob(1);
  job.current_allocation = {2, 0};
  AllocationMatrix same(1, 2);
  same.at(0, 0) = 2;
  AllocationMatrix moved(1, 2);
  moved.at(0, 1) = 2;
  const double unpenalized = PenalizedSpeedup(job, same, 0, 0.25);
  const double penalized = PenalizedSpeedup(job, moved, 0, 0.25);
  EXPECT_NEAR(unpenalized - penalized, 0.25, 1e-9);
}

TEST(FitnessTest, NoPenaltyForPreviouslyIdleJob) {
  SchedJobInfo job = MakeJob(1);  // No current allocation.
  AllocationMatrix matrix(1, 2);
  matrix.at(0, 0) = 2;
  EXPECT_NEAR(PenalizedSpeedup(job, matrix, 0, 0.25), job.speedups.At(2, 1), 1e-9);
}

TEST(FitnessTest, WeightedMean) {
  std::vector<SchedJobInfo> jobs = {MakeJob(1), MakeJob(2)};
  jobs[0].weight = 1.0;
  jobs[1].weight = 3.0;
  AllocationMatrix matrix(2, 2);
  matrix.at(0, 0) = 1;  // Speedup 1.
  matrix.at(1, 0) = 2;  // Speedup s2.
  const double s2 = jobs[1].speedups.At(2, 1);
  const double expected = (1.0 * 1.0 + 3.0 * s2) / 4.0;
  EXPECT_NEAR(Fitness(jobs, matrix, 0.25), expected, 1e-9);
}

TEST(FitnessTest, EmptyJobsIsZero) {
  EXPECT_DOUBLE_EQ(Fitness({}, AllocationMatrix(0, 2), 0.25), 0.0);
}

TEST(UtilityTest, Eqn17BoundsAndValues) {
  std::vector<SchedJobInfo> jobs = {MakeJob(1), MakeJob(2)};
  AllocationMatrix matrix(2, 2);
  matrix.at(0, 0) = 1;
  matrix.at(1, 1) = 1;
  // Two jobs each with speedup 1 on an 8-GPU cluster.
  EXPECT_NEAR(Utility(jobs, matrix, 8), 2.0 / 8.0, 1e-9);
  EXPECT_DOUBLE_EQ(Utility(jobs, matrix, 0), 0.0);
}

TEST(UtilityTest, NeverExceedsOne) {
  std::vector<SchedJobInfo> jobs = {MakeJob(1), MakeJob(2)};
  AllocationMatrix matrix(2, 2);
  matrix.at(0, 0) = 4;
  matrix.at(1, 1) = 4;
  // Speedups are sublinear, so utility = sum(speedup)/8 < 1.
  EXPECT_LE(Utility(jobs, matrix, 8), 1.0);
  EXPECT_GT(Utility(jobs, matrix, 8), 0.0);
}

}  // namespace
}  // namespace pollux
