#include <gtest/gtest.h>

#include <cmath>

#include "minidl/dataset.h"
#include "minidl/mlp.h"
#include "minidl/tensor.h"
#include "minidl/trainer.h"

namespace pollux {
namespace {

TEST(TensorTest, MatMulKnownValues) {
  Matrix a(2, 3);
  Matrix b(3, 2);
  for (size_t i = 0; i < 6; ++i) {
    a.data[i] = static_cast<double>(i + 1);       // [[1,2,3],[4,5,6]]
    b.data[i] = static_cast<double>(6 - i);       // [[6,5],[4,3],[2,1]]
  }
  const Matrix c = MatMul(a, b);
  EXPECT_DOUBLE_EQ(c.at(0, 0), 20.0);
  EXPECT_DOUBLE_EQ(c.at(0, 1), 14.0);
  EXPECT_DOUBLE_EQ(c.at(1, 0), 56.0);
  EXPECT_DOUBLE_EQ(c.at(1, 1), 41.0);
}

TEST(TensorTest, MatMulTransposedAgreesWithMatMul) {
  Matrix a(2, 3);
  Matrix bt(4, 3);
  for (size_t i = 0; i < a.data.size(); ++i) {
    a.data[i] = 0.1 * static_cast<double>(i) - 0.2;
  }
  for (size_t i = 0; i < bt.data.size(); ++i) {
    bt.data[i] = 0.3 * static_cast<double>(i) - 1.0;
  }
  Matrix b(3, 4);
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 4; ++j) {
      b.at(i, j) = bt.at(j, i);
    }
  }
  const Matrix via_t = MatMulTransposed(a, bt);
  const Matrix direct = MatMul(a, b);
  for (size_t i = 0; i < via_t.data.size(); ++i) {
    EXPECT_NEAR(via_t.data[i], direct.data[i], 1e-12);
  }
}

TEST(TensorTest, VectorHelpers) {
  std::vector<double> x = {1.0, 2.0};
  std::vector<double> y = {10.0, 20.0};
  Axpy(2.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], 12.0);
  EXPECT_DOUBLE_EQ(y[1], 24.0);
  EXPECT_DOUBLE_EQ(Dot(x, x), 5.0);
  EXPECT_DOUBLE_EQ(SquaredNorm(x), 5.0);
  Scale(x, 3.0);
  EXPECT_DOUBLE_EQ(x[1], 6.0);
}

TEST(DatasetTest, SyntheticShapesAndDeterminism) {
  const Dataset a = MakeSyntheticRegression(100, 8, 4, 0.1, 7);
  const Dataset b = MakeSyntheticRegression(100, 8, 4, 0.1, 7);
  EXPECT_EQ(a.size(), 100u);
  EXPECT_EQ(a.dim(), 8u);
  EXPECT_EQ(a.labels, b.labels);
  const Dataset c = MakeSyntheticRegression(100, 8, 4, 0.1, 8);
  EXPECT_NE(a.labels, c.labels);
}

TEST(DatasetTest, SamplerCoversEveryExampleEachEpoch) {
  MinibatchSampler sampler(10, 3);
  std::vector<int> counts(10, 0);
  for (int step = 0; step < 5; ++step) {
    for (size_t i : sampler.Next(2)) {
      ++counts[i];
    }
  }
  for (int c : counts) {
    EXPECT_EQ(c, 1);  // Exactly one epoch consumed.
  }
  sampler.Next(1);
  EXPECT_EQ(sampler.epochs_completed(), 1u);
}

TEST(MlpTest, GradientMatchesFiniteDifferences) {
  const Dataset data = MakeSyntheticRegression(16, 5, 3, 0.1, 11);
  Mlp model(5, 4, 13);
  std::vector<size_t> indices = {0, 1, 2, 3, 4, 5, 6, 7};
  std::vector<double> gradient;
  model.LossAndGradient(data, indices, &gradient);
  std::vector<double> params = model.params();
  const double h = 1e-6;
  for (size_t i = 0; i < params.size(); i += 7) {  // Spot-check a subset.
    std::vector<double> bumped = params;
    bumped[i] += h;
    Mlp plus = model;
    plus.set_params(bumped);
    bumped[i] -= 2.0 * h;
    Mlp minus = model;
    minus.set_params(bumped);
    const double fd = (plus.Loss(data, indices) - minus.Loss(data, indices)) / (2.0 * h);
    EXPECT_NEAR(gradient[i], fd, 1e-5) << "param " << i;
  }
}

TEST(MlpTest, LinearGradientMatchesFiniteDifferences) {
  const Dataset data = MakeSyntheticRegression(16, 4, 0, 0.1, 17);
  Mlp model(4, 0, 19);
  std::vector<size_t> indices = {1, 3, 5, 7};
  std::vector<double> gradient;
  model.LossAndGradient(data, indices, &gradient);
  std::vector<double> params = model.params();
  const double h = 1e-6;
  for (size_t i = 0; i < params.size(); ++i) {
    std::vector<double> bumped = params;
    bumped[i] += h;
    Mlp plus = model;
    plus.set_params(bumped);
    bumped[i] -= 2.0 * h;
    Mlp minus = model;
    minus.set_params(bumped);
    const double fd = (plus.Loss(data, indices) - minus.Loss(data, indices)) / (2.0 * h);
    EXPECT_NEAR(gradient[i], fd, 1e-5);
  }
}

TEST(TrainerTest, SgdReducesLoss) {
  const Dataset data = MakeSyntheticRegression(512, 6, 0, 0.05, 23);
  Mlp model(6, 0, 29);
  TrainerOptions options;
  options.base_batch_size = 32;
  options.base_lr = 0.05;
  options.replicas = 1;
  options.seed = 31;
  DataParallelTrainer trainer(&model, &data, options);
  const double initial = trainer.FullLoss();
  for (int step = 0; step < 200; ++step) {
    trainer.Step(32);
  }
  EXPECT_LT(trainer.FullLoss(), 0.25 * initial);
}

TEST(TrainerTest, MultiReplicaEstimatesPositivePhi) {
  const Dataset data = MakeSyntheticRegression(1024, 6, 0, 0.5, 37);
  Mlp model(6, 0, 41);
  TrainerOptions options;
  options.base_batch_size = 32;
  options.base_lr = 0.02;
  options.replicas = 4;
  options.seed = 43;
  DataParallelTrainer trainer(&model, &data, options);
  for (int step = 0; step < 100; ++step) {
    trainer.Step(64);
  }
  EXPECT_GT(trainer.adascale().phi(), 0.0);
  EXPECT_GE(trainer.last_gain(), 1.0);
  EXPECT_LE(trainer.last_gain(), 2.0 + 1e-9);  // m/m0 = 2.
}

TEST(TrainerTest, SingleReplicaUsesDifferencedEstimator) {
  const Dataset data = MakeSyntheticRegression(1024, 6, 0, 0.5, 47);
  Mlp model(6, 0, 53);
  TrainerOptions options;
  options.base_batch_size = 32;
  options.base_lr = 0.02;
  options.replicas = 1;
  options.seed = 59;
  DataParallelTrainer trainer(&model, &data, options);
  for (int step = 0; step < 100; ++step) {
    trainer.Step(32);
  }
  // The differenced estimator (Sec. 3.1) kicks in from the second step.
  EXPECT_GT(trainer.adascale().tracker().sample_count(), 50u);
  EXPECT_GT(trainer.adascale().phi(), 0.0);
}

TEST(TrainerTest, ScaleInvariantIterationsTrackGains) {
  const Dataset data = MakeSyntheticRegression(1024, 6, 0, 0.5, 61);
  Mlp model(6, 0, 67);
  TrainerOptions options;
  options.base_batch_size = 32;
  options.replicas = 4;
  options.seed = 71;
  DataParallelTrainer trainer(&model, &data, options);
  for (int step = 0; step < 50; ++step) {
    trainer.Step(128);
  }
  EXPECT_EQ(trainer.steps(), 50);
  // Gains are in [1, 4], so progress is between 50 and 200 equivalent steps.
  EXPECT_GE(trainer.ScaleInvariantIterations(), 50.0);
  EXPECT_LE(trainer.ScaleInvariantIterations(), 200.0 + 1e-9);
}

TEST(TrainerTest, AdaScaleLargeBatchMatchesSmallBatchProgress) {
  // Train two identical models: one at m0 for N steps, one at 4x m0 with
  // AdaScale until it has accumulated the same scale-invariant progress.
  // Their final losses should be comparable — the property that makes
  // AdaScale's r_t a trustworthy progress measure (Sec. 2.2).
  const Dataset data = MakeSyntheticRegression(2048, 8, 0, 0.3, 73);
  Mlp small_model(8, 0, 79);
  Mlp large_model = small_model;

  TrainerOptions small_options;
  small_options.base_batch_size = 32;
  small_options.base_lr = 0.05;
  small_options.replicas = 1;
  small_options.seed = 83;
  DataParallelTrainer small(&small_model, &data, small_options);

  TrainerOptions large_options = small_options;
  large_options.replicas = 4;
  large_options.seed = 89;
  DataParallelTrainer large(&large_model, &data, large_options);

  for (int step = 0; step < 400; ++step) {
    small.Step(32);
  }
  while (large.ScaleInvariantIterations() < 400.0) {
    large.Step(128);
  }
  const double small_loss = small.FullLoss();
  const double large_loss = large.FullLoss();
  EXPECT_LT(large.steps(), 400);  // Fewer real steps at the larger batch.
  EXPECT_NEAR(large_loss / small_loss, 1.0, 0.35);
}

}  // namespace
}  // namespace pollux
