// End-to-end integration: a small mixed workload run under all three
// scheduling policies. These mirror the paper's headline comparison at a
// reduced scale so they stay fast as tests; the full-scale comparison lives
// in bench_table2_testbed.

#include <gtest/gtest.h>

#include "baselines/optimus.h"
#include "baselines/tiresias.h"
#include "sim/pollux_policy.h"
#include "sim/simulator.h"
#include "workload/trace_gen.h"

namespace pollux {
namespace {

std::vector<JobSpec> SmallTrace(uint64_t seed) {
  TraceOptions options;
  options.num_jobs = 10;
  options.duration = 1800.0;
  options.max_gpus = 8;
  options.gpus_per_node = 4;
  options.seed = seed;
  auto jobs = GenerateTrace(options);
  // Keep the test fast: only small/medium models.
  for (auto& job : jobs) {
    if (job.model == ModelKind::kResNet50ImageNet || job.model == ModelKind::kYoloV3Voc ||
        job.model == ModelKind::kDeepSpeech2) {
      job.model = ModelKind::kResNet18Cifar10;
      job.batch_size = 512;
      job.requested_gpus = std::min(job.requested_gpus, 4);
    }
  }
  return jobs;
}

SimOptions TestSimOptions(uint64_t seed) {
  SimOptions options;
  options.cluster = ClusterSpec::Homogeneous(2, 4);
  options.seed = seed;
  return options;
}

SimResult RunPolicy(const std::string& which, const std::vector<JobSpec>& trace, uint64_t seed) {
  const SimOptions options = TestSimOptions(seed);
  if (which == "pollux") {
    SchedConfig config;
    config.ga.population_size = 16;
    config.ga.generations = 8;
    config.ga.seed = seed;
    PolluxPolicy policy(options.cluster, config);
    return Simulator(options, trace, &policy).Run();
  }
  if (which == "optimus") {
    OptimusPolicy policy;
    return Simulator(options, trace, &policy).Run();
  }
  TiresiasPolicy policy;
  return Simulator(options, trace, &policy).Run();
}

TEST(IntegrationTest, AllPoliciesCompleteTheWorkload) {
  const auto trace = SmallTrace(7);
  for (const std::string policy : {"pollux", "optimus", "tiresias"}) {
    const SimResult result = RunPolicy(policy, trace, 7);
    EXPECT_FALSE(result.timed_out) << policy;
    ASSERT_EQ(result.jobs.size(), trace.size()) << policy;
    for (const auto& job : result.jobs) {
      EXPECT_TRUE(job.completed) << policy << " job " << job.job_id;
      EXPECT_GT(job.Jct(), 0.0) << policy;
    }
  }
}

TEST(IntegrationTest, PolluxMaintainsHigherStatisticalEfficiency) {
  // Sec. 5.2.1: Pollux maintains ~91% statistical efficiency vs ~74% for the
  // baselines, because it re-tunes batch sizes as phi evolves.
  const auto trace = SmallTrace(11);
  const SimResult pollux = RunPolicy("pollux", trace, 11);
  const SimResult tiresias = RunPolicy("tiresias", trace, 11);
  EXPECT_GE(pollux.AvgClusterEfficiency(), tiresias.AvgClusterEfficiency() - 0.05);
  EXPECT_GT(pollux.AvgClusterEfficiency(), 0.5);
}

TEST(IntegrationTest, PolluxBeatsTiresiasOnAverageJct) {
  const auto trace = SmallTrace(13);
  const SimResult pollux = RunPolicy("pollux", trace, 13);
  const SimResult tiresias = RunPolicy("tiresias", trace, 13);
  EXPECT_LT(pollux.JctSummary().mean, 1.15 * tiresias.JctSummary().mean);
}

TEST(IntegrationTest, OracleNeverTimesOutAndAdaptsGpus) {
  const auto trace = SmallTrace(17);
  const SimResult optimus = RunPolicy("optimus", trace, 17);
  EXPECT_FALSE(optimus.timed_out);
  // Optimus gives jobs more GPUs than Tiresias' fixed single-GPU requests
  // when the cluster has idle capacity, so some job must hold >1 GPU-time
  // than requested... at minimum, GPU time is positive for all jobs.
  for (const auto& job : optimus.jobs) {
    EXPECT_GT(job.gpu_time, 0.0);
  }
}

}  // namespace
}  // namespace pollux
