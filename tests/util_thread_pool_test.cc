#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace pollux {
namespace {

TEST(ThreadPoolTest, ZeroAndOneThreadRunInline) {
  for (int n : {0, 1}) {
    ThreadPool pool(n);
    EXPECT_EQ(pool.num_threads(), 1) << "requested " << n;
    int value = 0;
    pool.Submit([&] { value = 42; }).get();
    EXPECT_EQ(value, 42);
  }
}

TEST(ThreadPoolTest, NegativeThreadsMeansHardwareConcurrency) {
  ThreadPool pool(-1);
  EXPECT_GE(pool.num_threads(), 1);
}

TEST(ThreadPoolTest, SubmitReturnsTaskResult) {
  ThreadPool pool(4);
  auto future = pool.Submit([] { return 7 * 6; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPoolTest, SubmitPropagatesExceptions) {
  ThreadPool pool(4);
  auto future = pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPoolTest, SubmitPropagatesExceptionsInline) {
  ThreadPool pool(1);
  auto future = pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ParallelForRunsEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 4, 7}) {
    ThreadPool pool(threads);
    constexpr size_t kCount = 1000;
    std::vector<std::atomic<int>> runs(kCount);
    pool.ParallelFor(0, kCount, [&](size_t i) { runs[i].fetch_add(1); });
    for (size_t i = 0; i < kCount; ++i) {
      EXPECT_EQ(runs[i].load(), 1) << "index " << i << ", threads " << threads;
    }
  }
}

TEST(ThreadPoolTest, ParallelForRespectsNonZeroBegin) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> runs(10);
  pool.ParallelFor(4, 10, [&](size_t i) { runs[i].fetch_add(1); });
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(runs[i].load(), i >= 4 ? 1 : 0) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForEmptyAndInvertedRangesAreNoOps) {
  ThreadPool pool(2);
  int calls = 0;
  pool.ParallelFor(5, 5, [&](size_t) { ++calls; });
  pool.ParallelFor(9, 3, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPoolTest, ParallelForPropagatesWorkerExceptions) {
  for (int threads : {1, 4}) {
    ThreadPool pool(threads);
    std::atomic<int> ran{0};
    EXPECT_THROW(pool.ParallelFor(0, 100,
                                  [&](size_t i) {
                                    if (i == 37) {
                                      throw std::runtime_error("index 37");
                                    }
                                    ran.fetch_add(1);
                                  }),
                 std::runtime_error)
        << "threads " << threads;
    EXPECT_LE(ran.load(), 99);
  }
}

TEST(ThreadPoolTest, ParallelForCanBeReusedAfterException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelFor(0, 8, [](size_t) { throw std::runtime_error("x"); }),
               std::runtime_error);
  std::atomic<int> ran{0};
  pool.ParallelFor(0, 8, [&](size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 8);
}

TEST(ThreadPoolTest, StressTenThousandSmallTasks) {
  ThreadPool pool(4);
  constexpr int kTasks = 10000;
  std::atomic<long> sum{0};
  std::vector<std::future<void>> futures;
  futures.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    futures.push_back(pool.Submit([&sum, i] { sum.fetch_add(i, std::memory_order_relaxed); }));
  }
  for (auto& future : futures) {
    future.get();
  }
  EXPECT_EQ(sum.load(), static_cast<long>(kTasks) * (kTasks - 1) / 2);
}

TEST(ThreadPoolTest, StressParallelForLargeRange) {
  ThreadPool pool(4);
  constexpr size_t kCount = 10000;
  std::vector<double> out(kCount, 0.0);
  pool.ParallelFor(0, kCount, [&](size_t i) { out[i] = static_cast<double>(i) * 0.5; });
  double total = std::accumulate(out.begin(), out.end(), 0.0);
  EXPECT_DOUBLE_EQ(total, 0.5 * static_cast<double>(kCount) * (kCount - 1) / 2.0);
}

TEST(ThreadPoolTest, DestructionDrainsPendingTasks) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&done] { done.fetch_add(1); });
    }
  }  // ~ThreadPool joins after the queue drains.
  EXPECT_EQ(done.load(), 64);
}

}  // namespace
}  // namespace pollux
