#include "baselines/fifo.h"

#include <gtest/gtest.h>

#include <deque>

#include "sim/simulator.h"
#include "workload/model_profile.h"

namespace pollux {
namespace {

JobSnapshot MakeSnapshot(uint64_t id, double submit, int gpus,
                         std::vector<int> allocation = {}) {
  // deque: push_back never invalidates the spec pointers handed to earlier
  // snapshots (a vector reallocation would leave them dangling).
  static std::deque<JobSpec>* specs = new std::deque<JobSpec>();
  specs->push_back(JobSpec{id, ModelKind::kResNet18Cifar10, submit, gpus, 512, false});
  JobSnapshot snapshot;
  snapshot.job_id = id;
  snapshot.spec = &specs->back();
  snapshot.submit_time = submit;
  snapshot.allocation = std::move(allocation);
  return snapshot;
}

int RowTotal(const std::vector<int>& row) {
  int total = 0;
  for (int g : row) {
    total += g;
  }
  return total;
}

TEST(FifoTest, AdmitsInSubmissionOrder) {
  FifoPolicy policy;
  const ClusterSpec cluster = ClusterSpec::Homogeneous(1, 4);
  SchedulerContext context;
  context.cluster = &cluster;
  context.jobs.push_back(MakeSnapshot(1, 100.0, 3));
  context.jobs.push_back(MakeSnapshot(2, 50.0, 3));
  const auto rows = policy.Schedule(context);
  EXPECT_EQ(RowTotal(rows.at(2)), 3);  // Earlier submit admitted.
  EXPECT_EQ(RowTotal(rows.at(1)), 0);  // Later one waits.
}

TEST(FifoTest, NeverPreemptsRunningJobs) {
  FifoPolicy policy;
  const ClusterSpec cluster = ClusterSpec::Homogeneous(1, 4);
  SchedulerContext context;
  context.cluster = &cluster;
  // Job 9 submitted later but already running; a newly submitted earlier...
  // FIFO keeps the running job even though job 1's submit time precedes it.
  context.jobs.push_back(MakeSnapshot(9, 200.0, 4, {4}));
  context.jobs.push_back(MakeSnapshot(1, 100.0, 4));
  const auto rows = policy.Schedule(context);
  EXPECT_EQ(RowTotal(rows.at(9)), 4);
  EXPECT_EQ(RowTotal(rows.at(1)), 0);
}

TEST(FifoTest, HeadOfLineBlockingEndToEnd) {
  // A long job at the head of the queue blocks a short one under FIFO; the
  // short job's JCT includes the whole wait.
  std::vector<JobSpec> trace;
  JobSpec big;
  big.job_id = 0;
  big.model = ModelKind::kResNet18Cifar10;
  big.submit_time = 0.0;
  big.requested_gpus = 4;
  big.batch_size = 512;
  JobSpec small = big;
  small.job_id = 1;
  small.model = ModelKind::kNeuMFMovieLens;
  small.submit_time = 10.0;
  small.batch_size = 2048;

  SimOptions options;
  options.cluster = ClusterSpec::Homogeneous(1, 4);
  options.seed = 3;
  FifoPolicy policy;
  const SimResult result = Simulator(options, {big, small}, &policy).Run();
  ASSERT_TRUE(result.jobs[0].completed);
  ASSERT_TRUE(result.jobs[1].completed);
  // The small job cannot start before the big one finishes.
  EXPECT_GE(result.jobs[1].start_time, result.jobs[0].finish_time - 120.0);
}

}  // namespace
}  // namespace pollux
