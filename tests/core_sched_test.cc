#include "core/sched.h"

#include <gtest/gtest.h>

namespace pollux {
namespace {

GoodputModel TypicalModel(double phi = 1000.0) {
  ThroughputParams params;
  params.alpha_grad = 0.05;
  params.beta_grad = 2e-4;
  params.alpha_sync_local = 0.03;
  params.beta_sync_local = 0.002;
  params.alpha_sync_node = 0.1;
  params.beta_sync_node = 0.005;
  params.gamma = 2.0;
  return GoodputModel(params, phi, 128);
}

SchedJobReport MakeReport(uint64_t id, double phi = 1000.0, int cap = 16,
                          double gpu_time = 0.0) {
  SchedJobReport report;
  report.agent.job_id = id;
  report.agent.model = TypicalModel(phi);
  report.agent.limits.min_batch = 128;
  report.agent.limits.max_batch_total = 16384;
  report.agent.limits.max_batch_per_gpu = 1024;
  report.agent.max_gpus_cap = cap;
  report.gpu_time = gpu_time;
  return report;
}

SchedConfig SmallConfig(uint64_t seed = 5) {
  SchedConfig config;
  config.ga.population_size = 20;
  config.ga.generations = 15;
  config.ga.seed = seed;
  return config;
}

TEST(PolluxSchedTest, EmptyReportsProduceNothing) {
  PolluxSched sched(ClusterSpec::Homogeneous(2, 4), SmallConfig());
  EXPECT_TRUE(sched.Schedule({}).empty());
  EXPECT_DOUBLE_EQ(sched.last_utility(), 0.0);
}

TEST(PolluxSchedTest, AllocationsRespectCapacityAndCaps) {
  PolluxSched sched(ClusterSpec::Homogeneous(4, 4), SmallConfig());
  std::vector<SchedJobReport> reports;
  for (uint64_t id = 1; id <= 5; ++id) {
    reports.push_back(MakeReport(id, 1000.0, static_cast<int>(id * 2)));
  }
  const auto allocations = sched.Schedule(reports);
  ASSERT_EQ(allocations.size(), 5u);
  std::vector<int> usage(4, 0);
  for (const auto& [id, row] : allocations) {
    ASSERT_EQ(row.size(), 4u);
    int total = 0;
    for (size_t n = 0; n < row.size(); ++n) {
      EXPECT_GE(row[n], 0);
      usage[n] += row[n];
      total += row[n];
    }
    EXPECT_LE(total, static_cast<int>(id * 2)) << "job " << id;
  }
  for (int node_usage : usage) {
    EXPECT_LE(node_usage, 4);
  }
}

TEST(PolluxSchedTest, SingleJobObtainsGpus) {
  PolluxSched sched(ClusterSpec::Homogeneous(2, 4), SmallConfig());
  const auto allocations = sched.Schedule({MakeReport(7, 1e5, 8)});
  int total = 0;
  for (int g : allocations.at(7)) {
    total += g;
  }
  EXPECT_GE(total, 4);
  EXPECT_GT(sched.last_utility(), 0.0);
  EXPECT_LE(sched.last_utility(), 1.0);
}

TEST(PolluxSchedTest, WeightDecayShiftsGpusTowardYoungJobs) {
  // Two identical jobs, but job 1 already consumed 100 GPU-hours. With
  // weight decay enabled, job 2 should get at least as many GPUs.
  SchedConfig config = SmallConfig();
  config.weight_lambda = 1.0;
  config.ga.generations = 30;
  PolluxSched sched(ClusterSpec::Homogeneous(2, 4), config);
  std::vector<SchedJobReport> reports = {MakeReport(1, 1000.0, 16, 100.0 * 3600.0),
                                         MakeReport(2, 1000.0, 16, 0.0)};
  const auto allocations = sched.Schedule(reports);
  auto total = [&](uint64_t id) {
    int sum = 0;
    for (int g : allocations.at(id)) {
      sum += g;
    }
    return sum;
  };
  EXPECT_GE(total(2), total(1));
}

TEST(PolluxSchedTest, EvaluateUtilityDecreasesWithClusterSize) {
  PolluxSched sched(ClusterSpec::Homogeneous(4, 4), SmallConfig());
  std::vector<SchedJobReport> reports = {MakeReport(1, 1000.0, 8)};
  const double small = sched.EvaluateUtilityAt(1, 4, reports);
  const double large = sched.EvaluateUtilityAt(8, 4, reports);
  EXPECT_GT(small, large);
  EXPECT_DOUBLE_EQ(sched.EvaluateUtilityAt(0, 4, reports), 0.0);
  EXPECT_DOUBLE_EQ(sched.EvaluateUtilityAt(4, 4, {}), 0.0);
}

TEST(PolluxSchedTest, SetClusterChangesMatrixWidth) {
  PolluxSched sched(ClusterSpec::Homogeneous(2, 4), SmallConfig());
  sched.SetCluster(ClusterSpec::Homogeneous(6, 4));
  const auto allocations = sched.Schedule({MakeReport(1)});
  EXPECT_EQ(allocations.at(1).size(), 6u);
}

TEST(PolluxSchedTest, OldReportAgeNeverGrowsJob) {
  // A job whose last report is far older than stale_report_age (default 150 s)
  // must never be grown past its current size, no matter how attractive its
  // (dead) goodput model looks — here a huge phi that would otherwise claim
  // most of the idle cluster.
  PolluxSched sched(ClusterSpec::Homogeneous(2, 4), SmallConfig());
  SchedJobReport stale = MakeReport(1, /*phi=*/1e5, /*cap=*/16);
  stale.current_allocation = {1, 0};
  stale.report_age = 1e4;
  const auto allocations = sched.Schedule({stale});
  int total = 0;
  for (int gpus : allocations.at(1)) {
    total += gpus;
  }
  EXPECT_LE(total, 1);

  // Control: the identical job with fresh telemetry expands onto the idle
  // cluster, so the clamp above is doing the work.
  SchedJobReport fresh = stale;
  fresh.report_age = 0.0;
  PolluxSched unclamped(ClusterSpec::Homogeneous(2, 4), SmallConfig());
  const auto fresh_allocations = unclamped.Schedule({fresh});
  int fresh_total = 0;
  for (int gpus : fresh_allocations.at(1)) {
    fresh_total += gpus;
  }
  EXPECT_GT(fresh_total, 1);
}

TEST(PolluxSchedTest, UnusableGaOutputFallsBackAndCounts) {
  // An unusable GA round — output infeasible against the (degraded) cluster,
  // or over the wall-clock budget — must be discarded for the last
  // known-feasible allocation projected onto surviving nodes, and counted.
  // The infeasibility predicate itself:
  const ClusterSpec degraded{{4, 0}};  // Node 1 failed (masked to zero).
  EXPECT_FALSE(PolluxSched::AllocationsFeasible(degraded, {{1, {0, 1}}}));
  EXPECT_FALSE(PolluxSched::AllocationsFeasible(degraded, {{1, {5, 0}}}));
  EXPECT_TRUE(PolluxSched::AllocationsFeasible(degraded, {{1, {4, 0}}}));

  // Both unusable-round causes share one fallback path; the budget trigger
  // is the deterministic way to drive it end-to-end from the public API.
  SchedConfig config = SmallConfig();
  config.round_time_budget = 1e-12;  // Any real GA round overruns this.
  PolluxSched sched(ClusterSpec::Homogeneous(2, 4), config);
  EXPECT_EQ(sched.fallback_rounds(), 0u);
  SchedJobReport report = MakeReport(3);
  report.current_allocation = {2, 0};
  const auto allocations = sched.Schedule({report});
  EXPECT_EQ(sched.fallback_rounds(), 1u);
  // The fallback kept the job exactly at its known-feasible allocation.
  EXPECT_EQ(allocations.at(3), (std::vector<int>{2, 0}));
  // A second unusable round keeps counting.
  sched.Schedule({report});
  EXPECT_EQ(sched.fallback_rounds(), 2u);
}

SchedConfig LeaseConfig() {
  // lease span = 2 * 30 s = 60 s; eviction after a further 300 s of silence.
  SchedConfig config = SmallConfig();
  config.lease_intervals = 2;
  config.report_interval = 30.0;
  config.lease_grace = 300.0;
  config.stale_report_age = 0.0;  // isolate the lease machinery
  return config;
}

TEST(PolluxSchedTest, LeaseBoundaryAgeExactlyAtSpanStaysFresh) {
  // The lease predicate is strictly greater-than: a report whose age lands
  // exactly on the lease span (a report delivered right on schedule over a
  // slow link) is still fresh, one epsilon past it is held.
  PolluxSched sched(ClusterSpec::Homogeneous(2, 4), LeaseConfig());
  SchedJobReport report = MakeReport(1);
  report.current_allocation = {1, 0};
  report.report_age = 60.0;  // == lease_intervals * report_interval
  report.seq = 1;
  sched.Schedule({report});
  EXPECT_EQ(sched.lease_expirations(), 0u);

  report.report_age = 60.0 + 1e-9;
  report.seq = 2;
  const auto held = sched.Schedule({report});
  EXPECT_EQ(sched.lease_expirations(), 1u);
  EXPECT_EQ(sched.lease_evictions(), 0u);
  // Held means frozen at exactly the current allocation, not resized.
  EXPECT_EQ(held.at(1), (std::vector<int>{1, 0}));
}

TEST(PolluxSchedTest, LeaseGraceBoundaryAgeExactlyAtGraceIsHeldNotEvicted) {
  // Same strict inequality at the eviction edge: age == span + grace is the
  // last instant the job is merely held; only past it is the allocation
  // reclaimed.
  PolluxSched sched(ClusterSpec::Homogeneous(2, 4), LeaseConfig());
  SchedJobReport report = MakeReport(1);
  report.current_allocation = {2, 0};
  report.report_age = 360.0;  // == span (60) + grace (300)
  report.seq = 1;
  const auto held = sched.Schedule({report});
  EXPECT_EQ(sched.lease_expirations(), 1u);
  EXPECT_EQ(sched.lease_evictions(), 0u);
  EXPECT_EQ(held.at(1), (std::vector<int>{2, 0}));

  report.report_age = 360.0 + 1e-9;
  report.seq = 1;
  const auto evicted = sched.Schedule({report});
  EXPECT_EQ(sched.lease_evictions(), 1u);
  EXPECT_EQ(evicted.at(1), (std::vector<int>{0, 0}));
}

TEST(PolluxSchedTest, DuplicateSeqAfterPartitionHealIsCountedOnce) {
  // A partition heals and the transport replays the last pre-partition
  // report: same seq, now young again. The duplicate must be counted (the
  // round ran on old telemetry) but must not disturb the lease class, and
  // the next genuinely new report must not count.
  PolluxSched sched(ClusterSpec::Homogeneous(2, 4), LeaseConfig());
  SchedJobReport report = MakeReport(1);
  report.current_allocation = {1, 0};
  report.report_age = 0.0;
  report.seq = 7;
  sched.Schedule({report});
  EXPECT_EQ(sched.dup_reports(), 0u);

  // Partition: rounds keep running on the aging seq-7 report.
  report.report_age = 100.0;  // held
  sched.Schedule({report});
  EXPECT_EQ(sched.dup_reports(), 1u);
  EXPECT_EQ(sched.lease_expirations(), 1u);

  // Heal: the replayed duplicate arrives fresh. Counted as a dup, and the
  // job returns to a fresh lease without a phantom eviction.
  report.report_age = 0.0;
  sched.Schedule({report});
  EXPECT_EQ(sched.dup_reports(), 2u);
  EXPECT_EQ(sched.lease_evictions(), 0u);

  // An out-of-order stale replay (seq below the high-water mark) is also a
  // dup; the high-water mark must not regress because of it.
  report.seq = 5;
  sched.Schedule({report});
  EXPECT_EQ(sched.dup_reports(), 3u);

  // Genuinely new telemetry: no new dup.
  report.seq = 8;
  sched.Schedule({report});
  EXPECT_EQ(sched.dup_reports(), 3u);
  // And the mark advanced: replaying seq 7 now is again a dup.
  report.seq = 7;
  sched.Schedule({report});
  EXPECT_EQ(sched.dup_reports(), 4u);
}

}  // namespace
}  // namespace pollux
