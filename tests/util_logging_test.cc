#include "util/logging.h"

#include <gtest/gtest.h>

namespace pollux {
namespace {

// The logger writes to stderr; these tests cover the level gate and the
// stream helper's formatting path (output content is not captured).

TEST(LoggingTest, LevelRoundTrip) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(original);
}

TEST(LoggingTest, SuppressedMessagesDoNotCrash) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  LogMessage(LogLevel::kDebug, "suppressed");
  LogMessage(LogLevel::kInfo, "suppressed");
  Log(LogLevel::kWarning) << "suppressed " << 42;
  SetLogLevel(original);
}

TEST(LoggingTest, StreamHelperFormatsMixedTypes) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);  // Keep test output quiet.
  Log(LogLevel::kDebug) << "jobs=" << 3 << " util=" << 0.5 << " ok=" << true;
  SetLogLevel(original);
}

TEST(LoggingTest, EmittedMessageAtThreshold) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  LogMessage(LogLevel::kError, "(expected test log line)");
  SetLogLevel(original);
}

}  // namespace
}  // namespace pollux
