// Tests for GenerateHyperscaleTrace (DESIGN.md §13): the generator must be
// deterministic for a given seed regardless of --threads, emit stable job-id
// ordering, and keep every job within the requested bounds so hyperscale
// traces are always placeable.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "workload/trace_gen.h"

namespace pollux {
namespace {

HyperTraceOptions SmallOptions(uint64_t seed = 11) {
  HyperTraceOptions options;
  options.num_nodes = 200;
  options.gpus_per_node = 4;
  options.num_jobs = 3000;
  options.duration = 2.0 * 24.0 * 3600.0;
  options.max_request_gpus = 64;
  options.seed = seed;
  options.threads = 1;
  return options;
}

void ExpectSameTrace(const std::vector<JobSpec>& a, const std::vector<JobSpec>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].job_id, b[i].job_id) << "job " << i;
    EXPECT_EQ(a[i].model, b[i].model) << "job " << i;
    EXPECT_EQ(a[i].submit_time, b[i].submit_time) << "job " << i;
    EXPECT_EQ(a[i].requested_gpus, b[i].requested_gpus) << "job " << i;
    EXPECT_EQ(a[i].batch_size, b[i].batch_size) << "job " << i;
    EXPECT_EQ(a[i].user_configured, b[i].user_configured) << "job " << i;
  }
}

TEST(HyperscaleTraceTest, IdenticalAcrossThreadCounts) {
  HyperTraceOptions options = SmallOptions();
  const auto serial = GenerateHyperscaleTrace(options);
  options.threads = 8;
  const auto threaded = GenerateHyperscaleTrace(options);
  ExpectSameTrace(serial, threaded);
  options.threads = 0;  // all hardware threads
  ExpectSameTrace(serial, GenerateHyperscaleTrace(options));
}

TEST(HyperscaleTraceTest, StableJobIdOrdering) {
  const auto jobs = GenerateHyperscaleTrace(SmallOptions());
  ASSERT_EQ(jobs.size(), 3000u);
  for (size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(jobs[i].job_id, i);  // renumbered after the submit-time sort
    if (i > 0) {
      EXPECT_GE(jobs[i].submit_time, jobs[i - 1].submit_time);
    }
  }
}

TEST(HyperscaleTraceTest, JobsStayWithinBounds) {
  HyperTraceOptions options = SmallOptions();
  options.user_configured_fraction = 0.5;
  const auto jobs = GenerateHyperscaleTrace(options);
  const int cluster_gpus = options.num_nodes * options.gpus_per_node;
  const int gpu_ceiling = std::min(options.max_request_gpus, cluster_gpus);
  int user = 0;
  for (const auto& job : jobs) {
    EXPECT_GE(job.submit_time, 0.0);
    EXPECT_LE(job.submit_time, options.duration);
    EXPECT_GE(job.requested_gpus, 1);
    EXPECT_LE(job.requested_gpus, gpu_ceiling);
    EXPECT_GT(job.batch_size, 0);
    user += job.user_configured ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(user) / jobs.size(), 0.5, 0.05);
}

TEST(HyperscaleTraceTest, RequestCeilingClampedToTinyCluster) {
  HyperTraceOptions options = SmallOptions();
  options.num_nodes = 2;
  options.gpus_per_node = 2;
  options.num_jobs = 200;
  options.max_request_gpus = 64;  // larger than the cluster
  for (const auto& job : GenerateHyperscaleTrace(options)) {
    EXPECT_LE(job.requested_gpus, 4);  // every job stays placeable
  }
}

TEST(HyperscaleTraceTest, SeedsProduceDifferentTraces) {
  const auto a = GenerateHyperscaleTrace(SmallOptions(11));
  const auto b = GenerateHyperscaleTrace(SmallOptions(12));
  ASSERT_EQ(a.size(), b.size());
  size_t differing = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].submit_time != b[i].submit_time || a[i].model != b[i].model) {
      ++differing;
    }
  }
  EXPECT_GT(differing, a.size() / 2);
}

TEST(HyperscaleTraceTest, DegenerateSizesStayFinite) {
  HyperTraceOptions options = SmallOptions();
  options.num_jobs = 0;  // floored to one job
  EXPECT_EQ(GenerateHyperscaleTrace(options).size(), 1u);
  options.num_jobs = 1;
  options.duration = 0.0;  // floored internally to one diurnal hour
  const auto jobs = GenerateHyperscaleTrace(options);
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_GE(jobs[0].submit_time, 0.0);
  EXPECT_LE(jobs[0].submit_time, 3600.0);
}

}  // namespace
}  // namespace pollux
