#include "core/gns.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.h"

namespace pollux {
namespace {

// Generates K replica gradients at total batch m: each replica gradient is
// G + noise where the noise has total variance tr(Sigma)/(m/K), matching the
// sampling distribution of a batch-(m/K) gradient estimate.
std::vector<std::vector<double>> MakeReplicaGrads(Rng& rng, const std::vector<double>& true_grad,
                                                  double cov_trace, int replicas,
                                                  double total_batch) {
  const double local_batch = total_batch / replicas;
  const double per_dim_std =
      std::sqrt(cov_trace / local_batch / static_cast<double>(true_grad.size()));
  std::vector<std::vector<double>> grads(replicas);
  for (auto& grad : grads) {
    grad.resize(true_grad.size());
    for (size_t i = 0; i < grad.size(); ++i) {
      grad[i] = true_grad[i] + rng.Normal(0.0, per_dim_std);
    }
  }
  return grads;
}

TEST(GnsReplicaEstimatorTest, RejectsDegenerateInput) {
  std::vector<std::vector<double>> one = {{1.0, 2.0}};
  EXPECT_FALSE(EstimateGnsFromReplicas(one, 64.0).has_value());
  std::vector<std::vector<double>> mismatched = {{1.0, 2.0}, {1.0}};
  EXPECT_FALSE(EstimateGnsFromReplicas(mismatched, 64.0).has_value());
  std::vector<std::vector<double>> empty_dims = {{}, {}};
  EXPECT_FALSE(EstimateGnsFromReplicas(empty_dims, 64.0).has_value());
  std::vector<std::vector<double>> fine = {{1.0}, {1.0}};
  EXPECT_FALSE(EstimateGnsFromReplicas(fine, 0.0).has_value());
  EXPECT_TRUE(EstimateGnsFromReplicas(fine, 64.0).has_value());
}

TEST(GnsReplicaEstimatorTest, NoiselessGradientsGiveZeroVariance) {
  const std::vector<double> g = {0.5, -1.0, 2.0};
  std::vector<std::vector<double>> grads = {g, g, g, g};
  const auto sample = EstimateGnsFromReplicas(grads, 256.0);
  ASSERT_TRUE(sample.has_value());
  EXPECT_NEAR(sample->cov_trace, 0.0, 1e-12);
  EXPECT_NEAR(sample->grad_sqnorm, 0.25 + 1.0 + 4.0, 1e-12);
}

TEST(GnsReplicaEstimatorTest, UnbiasedOverManyTrials) {
  Rng rng(101);
  const std::vector<double> true_grad = {1.0, -0.5, 0.25, 2.0};
  const double true_sqnorm = 1.0 + 0.25 + 0.0625 + 4.0;
  const double true_cov_trace = 800.0;
  const double total_batch = 256.0;
  const int replicas = 4;
  double cov_sum = 0.0;
  double sqnorm_sum = 0.0;
  const int trials = 4000;
  for (int t = 0; t < trials; ++t) {
    const auto grads = MakeReplicaGrads(rng, true_grad, true_cov_trace, replicas, total_batch);
    const auto sample = EstimateGnsFromReplicas(grads, total_batch);
    ASSERT_TRUE(sample.has_value());
    cov_sum += sample->cov_trace;
    sqnorm_sum += sample->grad_sqnorm;
  }
  EXPECT_NEAR(cov_sum / trials, true_cov_trace, 0.05 * true_cov_trace);
  EXPECT_NEAR(sqnorm_sum / trials, true_sqnorm, 0.08 * true_sqnorm + 0.1);
}

TEST(GnsDifferencedEstimatorTest, RejectsDegenerateInput) {
  EXPECT_FALSE(EstimateGnsDifferenced({1.0}, {1.0, 2.0}, 64.0).has_value());
  EXPECT_FALSE(EstimateGnsDifferenced({}, {}, 64.0).has_value());
  EXPECT_FALSE(EstimateGnsDifferenced({1.0}, {1.0}, 0.0).has_value());
}

TEST(GnsDifferencedEstimatorTest, UnbiasedOverManyTrials) {
  Rng rng(202);
  const std::vector<double> true_grad = {1.0, -0.5, 0.25, 2.0};
  const double true_sqnorm = 1.0 + 0.25 + 0.0625 + 4.0;
  const double true_cov_trace = 400.0;
  const double batch = 128.0;
  const double per_dim_std = std::sqrt(true_cov_trace / batch / 4.0);
  double cov_sum = 0.0;
  double sqnorm_sum = 0.0;
  const int trials = 4000;
  for (int t = 0; t < trials; ++t) {
    std::vector<double> previous(4);
    std::vector<double> current(4);
    for (size_t i = 0; i < 4; ++i) {
      previous[i] = true_grad[i] + rng.Normal(0.0, per_dim_std);
      current[i] = true_grad[i] + rng.Normal(0.0, per_dim_std);
    }
    const auto sample = EstimateGnsDifferenced(previous, current, batch);
    ASSERT_TRUE(sample.has_value());
    cov_sum += sample->cov_trace;
    sqnorm_sum += sample->grad_sqnorm;
  }
  EXPECT_NEAR(cov_sum / trials, true_cov_trace, 0.05 * true_cov_trace);
  EXPECT_NEAR(sqnorm_sum / trials, true_sqnorm, 0.08 * true_sqnorm + 0.1);
}

TEST(GnsTrackerTest, InvalidUntilFirstSample) {
  GnsTracker tracker(0.9);
  EXPECT_FALSE(tracker.valid());
  EXPECT_DOUBLE_EQ(tracker.Phi(), 0.0);
  tracker.AddSample({10.0, 2.0});
  EXPECT_TRUE(tracker.valid());
}

TEST(GnsTrackerTest, ConstantSamplesConvergeToPhi) {
  GnsTracker tracker(0.9);
  for (int i = 0; i < 200; ++i) {
    tracker.AddSample({300.0, 3.0});
  }
  EXPECT_NEAR(tracker.Phi(), 100.0, 1e-9);
  EXPECT_NEAR(tracker.cov_trace(), 300.0, 1e-9);
  EXPECT_NEAR(tracker.grad_sqnorm(), 3.0, 1e-9);
}

TEST(GnsTrackerTest, BiasCorrectionMakesFirstSampleExact) {
  GnsTracker tracker(0.95);
  tracker.AddSample({50.0, 5.0});
  // Without bias correction the EMA would report 0.05 * the sample.
  EXPECT_NEAR(tracker.cov_trace(), 50.0, 1e-12);
  EXPECT_NEAR(tracker.Phi(), 10.0, 1e-12);
}

TEST(GnsTrackerTest, TracksShiftingNoise) {
  GnsTracker tracker(0.5);
  for (int i = 0; i < 50; ++i) {
    tracker.AddSample({100.0, 10.0});
  }
  EXPECT_NEAR(tracker.Phi(), 10.0, 0.1);
  // Noise scale grows 10x later in training.
  for (int i = 0; i < 50; ++i) {
    tracker.AddSample({1000.0, 10.0});
  }
  EXPECT_NEAR(tracker.Phi(), 100.0, 1.0);
}

TEST(GnsTrackerTest, DegenerateSqnormIsCapped) {
  GnsTracker tracker(0.0);
  tracker.AddSample({10.0, -1.0});
  EXPECT_GT(tracker.Phi(), 1e6);
  GnsTracker zero(0.0);
  zero.AddSample({0.0, 0.0});
  EXPECT_DOUBLE_EQ(zero.Phi(), 0.0);
}

TEST(GnsTrackerTest, ResetClearsState) {
  GnsTracker tracker(0.9);
  tracker.AddSample({100.0, 1.0});
  tracker.Reset();
  EXPECT_FALSE(tracker.valid());
  EXPECT_DOUBLE_EQ(tracker.Phi(), 0.0);
}

}  // namespace
}  // namespace pollux
