// TopologySpec parsing/materialization, ClusterSpec annotations, and the
// rack-regime SpeedupTable (DESIGN.md sec. 14).

#include "core/types.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/allocation.h"
#include "core/speedup_table.h"

namespace pollux {
namespace {

TEST(GpuTypeTest, ScalesAndNamesRoundTrip) {
  EXPECT_DOUBLE_EQ(GpuTypeScale(GpuType::kT4), 1.0);  // Baseline generation.
  EXPECT_GT(GpuTypeScale(GpuType::kA100), GpuTypeScale(GpuType::kV100));
  EXPECT_GT(GpuTypeScale(GpuType::kV100), GpuTypeScale(GpuType::kP100));
  for (int i = 0; i < kNumGpuTypes; ++i) {
    const GpuType type = static_cast<GpuType>(i);
    GpuType parsed = GpuType::kT4;
    ASSERT_TRUE(GpuTypeFromName(GpuTypeName(type), &parsed)) << GpuTypeName(type);
    EXPECT_EQ(parsed, type);
  }
  GpuType parsed = GpuType::kT4;
  EXPECT_TRUE(GpuTypeFromName("A100", &parsed));  // Case-insensitive.
  EXPECT_EQ(parsed, GpuType::kA100);
  EXPECT_FALSE(GpuTypeFromName("h100", &parsed));
}

TEST(ParseTopologyTest, AcceptsRxN) {
  TopologySpec spec;
  std::string error;
  ASSERT_TRUE(ParseTopology("4x8", 4, &spec, &error)) << error;
  EXPECT_EQ(spec.num_racks, 4);
  EXPECT_EQ(spec.nodes_per_rack, 8);
  EXPECT_EQ(spec.gpus_per_node, 4);
  EXPECT_EQ(spec.NumNodes(), 32);
  EXPECT_EQ(spec.TotalGpus(), 128);
}

TEST(ParseTopologyTest, RejectsMalformedShapes) {
  TopologySpec spec;
  for (const char* text : {"", "4", "x8", "4x", "0x4", "4x0", "-1x4", "4x8x2", "axb", "4 x 8"}) {
    std::string error;
    EXPECT_FALSE(ParseTopology(text, 4, &spec, &error)) << text;
    EXPECT_FALSE(error.empty()) << text;
  }
  std::string error;
  EXPECT_FALSE(ParseTopology("4x8", 0, &spec, &error));  // Needs positive GPUs.
}

TEST(ParseGpuMixTest, LargestRemainderContiguousBlocks) {
  TopologySpec spec;
  spec.num_racks = 1;
  spec.nodes_per_rack = 4;
  spec.gpus_per_node = 4;
  std::string error;
  ASSERT_TRUE(ParseGpuMix("a100:0.25,t4:0.75", &spec, &error)) << error;
  EXPECT_EQ(spec.node_gpu_type,
            (std::vector<GpuType>{GpuType::kA100, GpuType::kT4, GpuType::kT4, GpuType::kT4}));

  // Equal remainders break ties in listed order (stable sort).
  spec.nodes_per_rack = 3;
  ASSERT_TRUE(ParseGpuMix("v100:0.5,t4:0.5", &spec, &error)) << error;
  EXPECT_EQ(spec.node_gpu_type,
            (std::vector<GpuType>{GpuType::kV100, GpuType::kV100, GpuType::kT4}));
}

TEST(ParseGpuMixTest, RejectsMalformedMixes) {
  TopologySpec spec;
  spec.num_racks = 2;
  spec.nodes_per_rack = 2;
  spec.gpus_per_node = 4;
  for (const char* text :
       {"", "t4", "h100:1.0", "t4:0", "t4:-0.5", "t4:1.5", "t4:0.5", "a100:0.6,t4:0.6",
        "t4:abc"}) {
    std::string error;
    EXPECT_FALSE(ParseGpuMix(text, &spec, &error)) << text;
    EXPECT_FALSE(error.empty()) << text;
  }
  TopologySpec empty;
  empty.num_racks = 0;
  std::string error;
  EXPECT_FALSE(ParseGpuMix("t4:1.0", &empty, &error));
}

TEST(TopologySpecTest, FlatHomogeneousCarriesNoAnnotations) {
  const TopologySpec spec = TopologySpec::FlatHomogeneous(8, 4);
  EXPECT_TRUE(spec.IsFlat());
  const ClusterSpec cluster = spec.ToCluster();
  EXPECT_FALSE(cluster.HasTopology());
  EXPECT_EQ(cluster.NumRacks(), 1);
  EXPECT_EQ(cluster.NumNodes(), 8);
  EXPECT_EQ(cluster.TotalGpus(), 32);
  EXPECT_DOUBLE_EQ(cluster.rack_link_factor, 1.0);
  EXPECT_DOUBLE_EQ(cluster.GpuScaleOf(0), 1.0);
}

TEST(TopologySpecTest, AnnotatedClusterMaterialization) {
  TopologySpec spec;
  spec.num_racks = 2;
  spec.nodes_per_rack = 2;
  spec.gpus_per_node = 4;
  spec.rack_link_factor = 2.5;
  std::string error;
  ASSERT_TRUE(ParseGpuMix("a100:0.5,t4:0.5", &spec, &error)) << error;
  EXPECT_FALSE(spec.IsFlat());

  const ClusterSpec cluster = spec.ToCluster();
  ASSERT_TRUE(cluster.HasTopology());
  EXPECT_EQ(cluster.NumRacks(), 2);
  EXPECT_EQ(cluster.rack_of_node, (std::vector<int>{0, 0, 1, 1}));
  EXPECT_EQ(cluster.RackOf(3), 1);
  EXPECT_DOUBLE_EQ(cluster.GpuScaleOf(0), GpuTypeScale(GpuType::kA100));
  EXPECT_DOUBLE_EQ(cluster.GpuScaleOf(3), 1.0);
  EXPECT_DOUBLE_EQ(cluster.rack_link_factor, 2.5);

  const ClusterSpec stripped = cluster.WithoutTopology();
  EXPECT_FALSE(stripped.HasTopology());
  EXPECT_EQ(stripped.gpus_per_node, cluster.gpus_per_node);
  EXPECT_EQ(stripped.NumRacks(), 1);
  EXPECT_DOUBLE_EQ(stripped.GpuScaleOf(0), 1.0);
}

TEST(TopologySpecTest, SingleRackMixedGenerationsIsNotFlat) {
  TopologySpec spec;
  spec.num_racks = 1;
  spec.nodes_per_rack = 4;
  spec.gpus_per_node = 4;
  std::string error;
  ASSERT_TRUE(ParseGpuMix("v100:0.5,t4:0.5", &spec, &error)) << error;
  EXPECT_FALSE(spec.IsFlat());
  const ClusterSpec cluster = spec.ToCluster();
  EXPECT_TRUE(cluster.HasTopology());
  EXPECT_EQ(cluster.NumRacks(), 1);  // Heterogeneity without a rack tier.
}

TEST(AllocationRackSummaryTest, RackPlacementAndMinScale) {
  TopologySpec spec;
  spec.num_racks = 2;
  spec.nodes_per_rack = 2;
  spec.gpus_per_node = 4;
  std::string error;
  ASSERT_TRUE(ParseGpuMix("a100:0.5,t4:0.5", &spec, &error)) << error;
  const ClusterSpec cluster = spec.ToCluster();

  AllocationMatrix alloc(2, 4);
  alloc.at(0, 0) = 4;  // Rack 0 (A100).
  alloc.at(0, 2) = 4;  // Rack 1 (T4): cross-rack gang paced by the T4s.
  alloc.at(1, 1) = 2;  // Single A100 node.

  const RackPlacement gang = alloc.JobRackPlacement(0, cluster);
  EXPECT_EQ(gang.num_gpus, 8);
  EXPECT_EQ(gang.num_nodes, 2);
  EXPECT_EQ(gang.num_racks, 2);
  EXPECT_DOUBLE_EQ(alloc.JobMinGpuScale(0, cluster), 1.0);

  const RackPlacement local = alloc.JobRackPlacement(1, cluster);
  EXPECT_EQ(local.num_racks, 1);
  EXPECT_DOUBLE_EQ(alloc.JobMinGpuScale(1, cluster), GpuTypeScale(GpuType::kA100));

  // Flat clusters report a single rack; Flatten() round-trips to (K, N).
  const ClusterSpec flat = ClusterSpec::Homogeneous(4, 4);
  const RackPlacement on_flat = alloc.JobRackPlacement(0, flat);
  EXPECT_EQ(on_flat.num_racks, 1);
  EXPECT_EQ(on_flat.Flatten(), alloc.JobPlacement(0));
  EXPECT_DOUBLE_EQ(alloc.JobMinGpuScale(0, flat), 1.0);
}

GoodputModel MakeModel() {
  ThroughputParams params;
  params.alpha_grad = 0.04;
  params.beta_grad = 3e-4;
  params.alpha_sync_local = 0.02;
  params.beta_sync_local = 0.001;
  params.alpha_sync_node = 0.09;
  params.beta_sync_node = 0.005;
  params.gamma = 2.0;
  return GoodputModel(params, 1000.0, 128);
}

TEST(SpeedupTableRackRegimeTest, CrossRackNeverBeatsInRack) {
  const GoodputModel model = MakeModel();
  const BatchLimits limits{128, 32768, 1024};
  const SpeedupTable table(model, limits, 32, nullptr, 0, 0, /*rack_link_factor=*/2.5);
  ASSERT_TRUE(table.has_rack_regime());
  for (int k : {4, 8, 16, 32}) {
    const double co_located = table.At(RackPlacement{k, 1, 1});
    const double cross_node = table.At(RackPlacement{k, 2, 1});
    const double cross_rack = table.At(RackPlacement{k, 2, 2});
    EXPECT_GE(co_located, cross_node - 1e-9) << k;
    EXPECT_GE(cross_node, cross_rack - 1e-9) << k;
    EXPECT_GT(cross_rack, 0.0) << k;
    // The node regime is untouched by the rack extension.
    EXPECT_DOUBLE_EQ(cross_node, table.At(k, 2)) << k;
  }
}

TEST(SpeedupTableRackRegimeTest, FactorOneKeepsFlatTable) {
  const GoodputModel model = MakeModel();
  const BatchLimits limits{128, 32768, 1024};
  const SpeedupTable flat(model, limits, 16);
  const SpeedupTable unity(model, limits, 16, nullptr, 0, 0, /*rack_link_factor=*/1.0);
  EXPECT_FALSE(flat.has_rack_regime());
  EXPECT_FALSE(unity.has_rack_regime());
  for (int k = 1; k <= 16; ++k) {
    // Without a rack regime, cross-rack lookups fall back to the node regime.
    EXPECT_DOUBLE_EQ(flat.At(RackPlacement{k, 2, 2}), flat.At(k, 2)) << k;
    EXPECT_DOUBLE_EQ(unity.At(k, 2), flat.At(k, 2)) << k;
  }
}

}  // namespace
}  // namespace pollux
