#include "optim/golden_section.h"

#include <gtest/gtest.h>

#include <cmath>

namespace pollux {
namespace {

TEST(GoldenSectionTest, FindsParabolaPeak) {
  const auto result =
      GoldenSectionMaximize([](double x) { return -(x - 3.0) * (x - 3.0); }, 0.0, 10.0, 1e-6);
  EXPECT_NEAR(result.x, 3.0, 1e-4);
  EXPECT_NEAR(result.value, 0.0, 1e-8);
}

TEST(GoldenSectionTest, HandlesSwappedBounds) {
  const auto result =
      GoldenSectionMaximize([](double x) { return -(x - 3.0) * (x - 3.0); }, 10.0, 0.0, 1e-6);
  EXPECT_NEAR(result.x, 3.0, 1e-4);
}

TEST(GoldenSectionTest, MonotoneIncreasingPicksUpperEnd) {
  const auto result = GoldenSectionMaximize([](double x) { return x; }, 0.0, 5.0, 1e-6);
  EXPECT_NEAR(result.x, 5.0, 1e-3);
}

TEST(GoldenSectionTest, MonotoneDecreasingPicksLowerEnd) {
  const auto result = GoldenSectionMaximize([](double x) { return -x; }, 0.0, 5.0, 1e-6);
  EXPECT_NEAR(result.x, 0.0, 1e-3);
}

TEST(GoldenSectionTest, RespectsEvaluationBudget) {
  int calls = 0;
  GoldenSectionMaximize(
      [&](double x) {
        ++calls;
        return -x * x;
      },
      -1.0, 1.0, 1e-12, 20);
  EXPECT_LE(calls, 20);
}

TEST(GoldenSectionIntTest, ExhaustiveForSmallRange) {
  const auto result = GoldenSectionMaximizeInt(
      [](long x) { return -static_cast<double>((x - 4) * (x - 4)); }, 0, 10);
  EXPECT_EQ(result.best_x, 4);
  EXPECT_DOUBLE_EQ(result.value, 0.0);
}

TEST(GoldenSectionIntTest, SingletonRange) {
  const auto result = GoldenSectionMaximizeInt([](long x) { return static_cast<double>(x); }, 7, 7);
  EXPECT_EQ(result.best_x, 7);
}

// Property sweep: the integer golden-section search must recover the exact
// peak of a shifted concave function across a variety of peak locations and
// range sizes.
class GoldenSectionPeakSweep : public ::testing::TestWithParam<long> {};

TEST_P(GoldenSectionPeakSweep, FindsExactIntegerPeak) {
  const long peak = GetParam();
  const auto f = [peak](long x) {
    const double d = static_cast<double>(x - peak);
    return -d * d;
  };
  const auto result = GoldenSectionMaximizeInt(f, 1, 100000);
  EXPECT_EQ(result.best_x, peak);
}

INSTANTIATE_TEST_SUITE_P(PeakLocations, GoldenSectionPeakSweep,
                         ::testing::Values(1L, 2L, 17L, 999L, 50000L, 99998L, 100000L));

// The goodput-vs-batch-size curve shape: increasing throughput saturating via
// Amdahl, decreasing efficiency. The integer search must land on the true
// argmax found by brute force.
class GoodputShapeSweep : public ::testing::TestWithParam<double> {};

TEST_P(GoodputShapeSweep, MatchesBruteForce) {
  const double phi = GetParam();
  const double m0 = 128.0;
  const auto goodput = [&](long m) {
    const double md = static_cast<double>(m);
    const double throughput = md / (0.1 + 1e-4 * md);
    const double efficiency = (phi + m0) / (phi + md);
    return throughput * efficiency;
  };
  long best = 128;
  double best_value = goodput(128);
  for (long m = 128; m <= 8192; ++m) {
    if (goodput(m) > best_value) {
      best_value = goodput(m);
      best = m;
    }
  }
  const auto result = GoldenSectionMaximizeInt(goodput, 128, 8192);
  EXPECT_NEAR(result.value, best_value, best_value * 1e-6);
  EXPECT_NEAR(static_cast<double>(result.best_x), static_cast<double>(best), 2.0);
}

INSTANTIATE_TEST_SUITE_P(NoiseScales, GoodputShapeSweep,
                         ::testing::Values(10.0, 100.0, 1000.0, 10000.0, 100000.0));

}  // namespace
}  // namespace pollux
