#include "core/model_fitter.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace pollux {
namespace {

ThroughputParams GroundTruth() {
  ThroughputParams params;
  params.alpha_grad = 0.04;
  params.beta_grad = 3e-4;
  params.alpha_sync_local = 0.02;
  params.beta_sync_local = 0.001;
  params.alpha_sync_node = 0.08;
  params.beta_sync_node = 0.004;
  params.gamma = 1.8;
  return params;
}

// Full grid of observations over K, node regime, and batch size.
std::vector<ThroughputObservation> MakeObservations(const ThroughputParams& truth,
                                                    double noise_sigma, uint64_t seed) {
  Rng rng(seed);
  std::vector<ThroughputObservation> data;
  for (int k : {1, 2, 4, 8, 16}) {
    for (int n : {1, 2}) {
      if (n == 2 && k < 2) {
        continue;
      }
      for (long m : {128L, 256L, 512L, 1024L, 2048L}) {
        ThroughputObservation obs;
        obs.placement = Placement{k, n};
        obs.batch_size = m;
        obs.iter_time = IterTime(truth, obs.placement, static_cast<double>(m));
        if (noise_sigma > 0.0) {
          obs.iter_time *= std::exp(rng.Normal(0.0, noise_sigma));
        }
        data.push_back(obs);
      }
    }
  }
  return data;
}

TEST(ThroughputRmsleTest, ZeroForExactParams) {
  const auto truth = GroundTruth();
  const auto data = MakeObservations(truth, 0.0, 1);
  EXPECT_NEAR(ThroughputRmsle(truth, data), 0.0, 1e-9);
}

TEST(ThroughputRmsleTest, PositiveForWrongParams) {
  const auto truth = GroundTruth();
  const auto data = MakeObservations(truth, 0.0, 1);
  ThroughputParams wrong = truth;
  wrong.alpha_grad *= 3.0;
  EXPECT_GT(ThroughputRmsle(wrong, data), 0.01);
}

TEST(ThroughputRmsleTest, EmptyObservationsAreZero) {
  EXPECT_DOUBLE_EQ(ThroughputRmsle(GroundTruth(), {}), 0.0);
}

TEST(ModelFitterTest, RecoversPredictionsFromNoiselessData) {
  const auto truth = GroundTruth();
  const auto data = MakeObservations(truth, 0.0, 1);
  FitOptions options;
  options.max_gpus_seen = 16;
  options.max_nodes_seen = 4;
  options.multi_starts = 4;
  const FitResult fit = FitThroughputParams(data, options);
  EXPECT_LT(fit.rmsle, 0.02);
  // The individual parameters need not be identified, but predictions on
  // held-out configurations must match the ground truth closely.
  for (int k : {3, 6, 12}) {
    for (long m : {384L, 1536L}) {
      const Placement placement{k, 2};
      const double predicted = IterTime(fit.params, placement, static_cast<double>(m));
      const double actual = IterTime(truth, placement, static_cast<double>(m));
      EXPECT_NEAR(predicted / actual, 1.0, 0.1) << "K=" << k << " m=" << m;
    }
  }
}

TEST(ModelFitterTest, ToleratesMeasurementNoise) {
  const auto truth = GroundTruth();
  const auto data = MakeObservations(truth, 0.05, 7);
  FitOptions options;
  options.max_gpus_seen = 16;
  options.max_nodes_seen = 4;
  options.multi_starts = 4;
  const FitResult fit = FitThroughputParams(data, options);
  for (int k : {2, 8}) {
    const Placement placement{k, 1};
    const double predicted = IterTime(fit.params, placement, 512.0);
    const double actual = IterTime(truth, placement, 512.0);
    EXPECT_NEAR(predicted / actual, 1.0, 0.2) << "K=" << k;
  }
}

TEST(ModelFitterTest, PriorPinsSyncParamsForSingleGpuJob) {
  const auto truth = GroundTruth();
  std::vector<ThroughputObservation> data;
  for (long m : {128L, 256L, 512L, 1024L}) {
    ThroughputObservation obs;
    obs.placement = Placement{1, 1};
    obs.batch_size = m;
    obs.iter_time = IterTime(truth, obs.placement, static_cast<double>(m));
    data.push_back(obs);
  }
  FitOptions options;
  options.max_gpus_seen = 1;
  options.max_nodes_seen = 1;
  const FitResult fit = FitThroughputParams(data, options);
  // Perfect-scaling prior: all sync parameters pinned to zero.
  EXPECT_DOUBLE_EQ(fit.params.alpha_sync_local, 0.0);
  EXPECT_DOUBLE_EQ(fit.params.beta_sync_local, 0.0);
  EXPECT_DOUBLE_EQ(fit.params.alpha_sync_node, 0.0);
  EXPECT_DOUBLE_EQ(fit.params.beta_sync_node, 0.0);
  // The grad parameters are identified from single-GPU data alone.
  EXPECT_NEAR(fit.params.alpha_grad, truth.alpha_grad, 0.02);
  EXPECT_NEAR(fit.params.beta_grad, truth.beta_grad, 1e-4);
}

TEST(ModelFitterTest, PriorPinsNodeParamsForSingleNodeJob) {
  const auto truth = GroundTruth();
  std::vector<ThroughputObservation> data;
  for (int k : {1, 2, 4}) {
    for (long m : {128L, 512L, 1024L}) {
      ThroughputObservation obs;
      obs.placement = Placement{k, 1};
      obs.batch_size = m;
      obs.iter_time = IterTime(truth, obs.placement, static_cast<double>(m));
      data.push_back(obs);
    }
  }
  FitOptions options;
  options.max_gpus_seen = 4;
  options.max_nodes_seen = 1;
  const FitResult fit = FitThroughputParams(data, options);
  EXPECT_DOUBLE_EQ(fit.params.alpha_sync_node, 0.0);
  EXPECT_DOUBLE_EQ(fit.params.beta_sync_node, 0.0);
  // Local sync params are free since multiple GPUs were used.
  EXPECT_LT(fit.rmsle, 0.05);
}

TEST(ModelFitterTest, PriorPinsRetrogressionForTwoGpuJob) {
  const auto truth = GroundTruth();
  std::vector<ThroughputObservation> data;
  for (int k : {1, 2}) {
    ThroughputObservation obs;
    obs.placement = Placement{k, k};
    obs.batch_size = 256;
    obs.iter_time = IterTime(truth, obs.placement, 256.0);
    data.push_back(obs);
  }
  FitOptions options;
  options.max_gpus_seen = 2;
  options.max_nodes_seen = 2;
  const FitResult fit = FitThroughputParams(data, options);
  EXPECT_DOUBLE_EQ(fit.params.beta_sync_local, 0.0);
  EXPECT_DOUBLE_EQ(fit.params.beta_sync_node, 0.0);
}

TEST(ModelFitterTest, GammaStaysInBounds) {
  const auto data = MakeObservations(GroundTruth(), 0.1, 11);
  FitOptions options;
  options.max_gpus_seen = 16;
  options.max_nodes_seen = 4;
  const FitResult fit = FitThroughputParams(data, options);
  EXPECT_GE(fit.params.gamma, 1.0);
  EXPECT_LE(fit.params.gamma, 10.0);
  EXPECT_GE(fit.params.alpha_grad, 0.0);
  EXPECT_GE(fit.params.beta_grad, 0.0);
}

TEST(ModelFitterTest, EmptyObservationsReturnDefault) {
  const FitResult fit = FitThroughputParams({}, {});
  EXPECT_DOUBLE_EQ(fit.rmsle, 0.0);
}

}  // namespace
}  // namespace pollux
