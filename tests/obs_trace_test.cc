#include "obs/trace.h"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "sim/pollux_policy.h"
#include "sim/simulator.h"

namespace pollux {
namespace obs {
namespace {

TEST(TraceTest, DisabledRecorderEmitsNothing) {
  TraceRecorder recorder;
  ASSERT_FALSE(recorder.enabled());
  recorder.EmitComplete("span", 0.0, 10.0);
  recorder.EmitSimSpan("job", 3, 0.0, 5.0);
  recorder.EmitSimInstant("fault", 1, 2.0);
  recorder.SetTrackName(TraceRecorder::kSimPid, 3, "job 3");
  EXPECT_TRUE(recorder.Snapshot().empty());
}

TEST(TraceTest, SpansNestAndCarryThreadTrack) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Clear();
  recorder.SetEnabled(true);
  {
    TRACE_SCOPE("outer");
    { TRACE_SCOPE("inner"); }
  }
  recorder.SetEnabled(false);
  const std::vector<TraceRecorder::Event> events = recorder.Snapshot();
  recorder.Clear();
  ASSERT_EQ(events.size(), 2u);
  // Inner closes (and is pushed) first; both land on the same thread track.
  const TraceRecorder::Event& inner = events[0];
  const TraceRecorder::Event& outer = events[1];
  EXPECT_EQ(inner.name, "inner");
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(inner.pid, TraceRecorder::kWallPid);
  EXPECT_EQ(inner.tid, outer.tid);
  // Proper nesting: outer starts no later and ends no earlier than inner.
  EXPECT_LE(outer.ts_us, inner.ts_us);
  EXPECT_GE(outer.ts_us + outer.dur_us, inner.ts_us + inner.dur_us);
}

TEST(TraceTest, BufferIsBoundedAndDropsAreCounted) {
  TraceRecorder recorder;
  recorder.SetEnabled(true);
  recorder.SetMaxEvents(4);
  for (int i = 0; i < 10; ++i) {
    recorder.EmitSimInstant("e", 0, static_cast<double>(i));
  }
  EXPECT_EQ(recorder.Snapshot().size(), 4u);
  EXPECT_EQ(recorder.dropped(), 6u);
  recorder.Clear();
  EXPECT_EQ(recorder.dropped(), 0u);
}

TEST(TraceTest, JsonExportParsesAndNamesTracks) {
  TraceRecorder recorder;
  recorder.SetEnabled(true);
  recorder.EmitComplete("ga_round \"quoted\"\n", 1.0, 2.0);
  recorder.EmitSimSpan("job span", 7, 0.5, 3.0);
  recorder.EmitSimInstant("node_fail", 1, 2.0);
  recorder.SetTrackName(TraceRecorder::kSimPid, 7, "job 7");
  std::ostringstream out;
  recorder.WriteJson(out);
  const std::string json = out.str();
  std::string error;
  EXPECT_TRUE(JsonParseOk(json, &error)) << error << "\n" << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("pollux (wall clock)"), std::string::npos);
  EXPECT_NE(json.find("cluster (simulated time)"), std::string::npos);
  EXPECT_NE(json.find("job 7"), std::string::npos);
  // Sim seconds scale to microseconds, instants carry thread scope.
  EXPECT_NE(json.find("\"ts\": 500000"), std::string::npos) << json;
  EXPECT_NE(json.find("\"s\": \"t\""), std::string::npos);
  // Escaping kept the JSON well-formed.
  EXPECT_NE(json.find("ga_round \\\"quoted\\\"\\n"), std::string::npos);
}

// The observability contract: instruments observe, never steer. A simulation
// with metrics + tracing enabled must produce results identical to a
// zero-knob run, field for field.
TEST(TraceTest, GoldenRunIsIdenticalWithObservabilityEnabled) {
  JobSpec job0;
  job0.job_id = 0;
  job0.model = ModelKind::kResNet18Cifar10;
  job0.submit_time = 0.0;
  job0.requested_gpus = 4;
  job0.batch_size = 512;
  JobSpec job1 = job0;
  job1.job_id = 1;
  job1.model = ModelKind::kNeuMFMovieLens;
  job1.submit_time = 100.0;
  job1.requested_gpus = 2;
  job1.batch_size = 1024;
  const std::vector<JobSpec> trace = {job0, job1};

  const auto run = [&trace] {
    SimOptions options;
    options.cluster = ClusterSpec::Homogeneous(2, 4);
    options.seed = 11;
    options.tick = 1.0;
    SchedConfig config;
    config.ga.population_size = 16;
    config.ga.generations = 8;
    config.ga.seed = 11;
    PolluxPolicy policy(options.cluster, config);
    return Simulator(options, trace, &policy).Run();
  };

  const SimResult plain = run();

  MetricsRegistry::Global().SetEnabled(true);
  TraceRecorder::Global().SetEnabled(true);
  const SimResult observed = run();
  MetricsRegistry::Global().SetEnabled(false);
  TraceRecorder::Global().SetEnabled(false);

  // The observed run actually recorded something... (the default event
  // engine counts dispatched events; the legacy ticked loop counts ticks)
  EXPECT_GT(MetricsRegistry::Global().GetCounter("sim.engine.events")->value(), 0u);
  EXPECT_FALSE(TraceRecorder::Global().Snapshot().empty());
  MetricsRegistry::Global().Reset();
  TraceRecorder::Global().Clear();

  // ...and changed nothing. Exact double equality is intentional.
  EXPECT_EQ(plain.makespan, observed.makespan);
  EXPECT_EQ(plain.node_seconds, observed.node_seconds);
  EXPECT_EQ(plain.timed_out, observed.timed_out);
  ASSERT_EQ(plain.events.size(), observed.events.size());
  for (size_t i = 0; i < plain.events.size(); ++i) {
    EXPECT_EQ(plain.events[i].time, observed.events[i].time);
    EXPECT_EQ(plain.events[i].kind, observed.events[i].kind);
    EXPECT_EQ(plain.events[i].job_id, observed.events[i].job_id);
    EXPECT_EQ(plain.events[i].gpus, observed.events[i].gpus);
  }
  ASSERT_EQ(plain.jobs.size(), observed.jobs.size());
  for (size_t i = 0; i < plain.jobs.size(); ++i) {
    EXPECT_EQ(plain.jobs[i].start_time, observed.jobs[i].start_time);
    EXPECT_EQ(plain.jobs[i].finish_time, observed.jobs[i].finish_time);
    EXPECT_EQ(plain.jobs[i].gpu_time, observed.jobs[i].gpu_time);
    EXPECT_EQ(plain.jobs[i].num_restarts, observed.jobs[i].num_restarts);
    EXPECT_EQ(plain.jobs[i].completed, observed.jobs[i].completed);
    EXPECT_EQ(plain.jobs[i].avg_goodput, observed.jobs[i].avg_goodput);
    EXPECT_EQ(plain.jobs[i].avg_throughput, observed.jobs[i].avg_throughput);
    EXPECT_EQ(plain.jobs[i].avg_efficiency, observed.jobs[i].avg_efficiency);
  }
}

}  // namespace
}  // namespace obs
}  // namespace pollux
