// Seeded chaos schedules for the degraded control plane (DESIGN.md §12):
// every fault class (node crash/repair, stragglers, report drops, restart
// failures, scheduler crashes) combined with every network fault class
// (latency/jitter, burst loss, duplication, reordering, node and rack
// partitions) at once, with invariant checking on for every run. Asserts
// per-seed byte-reproducibility, ticked/event engine agreement, and that
// every job completes once the chaos heals — no job is ever lost.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "bench/common.h"
#include "sim/netmodel.h"
#include "sim/pollux_policy.h"
#include "sim/simulator.h"
#include "workload/trace_gen.h"

namespace pollux {
namespace {

std::vector<JobSpec> ChaosTrace(uint64_t seed) {
  TraceOptions options;
  options.num_jobs = 10;
  options.duration = 1800.0;
  options.max_gpus = 8;
  options.seed = seed;
  auto jobs = GenerateTrace(options);
  for (auto& job : jobs) {
    // Keep the schedule fast: long-running models become small ones.
    if (job.model != ModelKind::kResNet18Cifar10 && job.model != ModelKind::kNeuMFMovieLens) {
      job.model = ModelKind::kNeuMFMovieLens;
      job.batch_size = 2048;
      job.requested_gpus = std::min(job.requested_gpus, 4);
    }
  }
  return jobs;
}

// The named profiles use production-scale MTBFs that never fire inside a
// short trace; shrink them so partitions, bursts, and crashes all actually
// happen (several times) per run.
NetOptions ChaosNet(const std::string& profile) {
  NetOptions net;
  EXPECT_TRUE(NetProfileByName(profile, &net));
  if (net.mtbf_partition > 0.0) {
    net.mtbf_partition = 600.0;
    net.partition_duration = 90.0;
  }
  if (net.mtbf_rack_partition > 0.0) {
    net.mtbf_rack_partition = 1200.0;
    net.rack_partition_duration = 120.0;
    net.rack_size = 2;
  }
  return net;
}

FaultOptions ChaosFaults() {
  FaultOptions faults;
  EXPECT_TRUE(FaultProfileByName("heavy", &faults));
  faults.mtbf_node = 1500.0;
  faults.repair_time = 120.0;
  faults.mtbf_sched = 2000.0;
  return faults;
}

SimResult RunChaos(const std::string& profile, uint64_t seed, SimEngine engine,
                   bool with_faults = true) {
  SimOptions options;
  options.engine = engine;
  options.cluster = ClusterSpec::Homogeneous(2, 4);
  options.seed = seed;
  options.check_invariants = true;
  options.net = ChaosNet(profile);
  if (with_faults) {
    options.faults = ChaosFaults();
  }
  SchedConfig sched_config;
  sched_config.ga.population_size = 12;
  sched_config.ga.generations = 6;
  sched_config.ga.seed = seed;
  if (options.net.enabled()) {
    sched_config.lease_intervals = options.net.lease_intervals;
    sched_config.lease_grace = options.net.lease_grace;
    sched_config.degraded_coverage = options.net.degraded_coverage;
  }
  PolluxPolicy policy(options.cluster, sched_config);
  return Simulator(options, ChaosTrace(seed), &policy).Run();
}

// Bit-exact fingerprint of everything seed-determinism promises: full-
// precision per-job trajectories plus the complete lifecycle event log.
std::string Fingerprint(const SimResult& result) {
  std::ostringstream out;
  out.precision(17);
  for (const auto& job : result.jobs) {
    out << job.job_id << ' ' << job.submit_time << ' ' << job.start_time << ' '
        << job.finish_time << ' ' << job.gpu_time << ' ' << job.num_restarts << ' '
        << job.num_evictions << ' ' << job.num_restart_failures << ' ' << job.backoff_seconds
        << ' ' << job.avg_goodput << ' ' << job.completed << '\n';
  }
  for (const auto& event : result.events) {
    out << event.time << ' ' << static_cast<int>(event.kind) << ' ' << event.job_id << ' '
        << event.gpus << ' ' << event.nodes << '\n';
  }
  out << result.makespan << ' ' << result.node_seconds << '\n';
  return out.str();
}

std::set<uint64_t> CompletionSet(const SimResult& result) {
  std::set<uint64_t> completed;
  for (const auto& job : result.jobs) {
    if (job.completed) {
      completed.insert(job.job_id);
    }
  }
  return completed;
}

std::map<SimEventKind, size_t> EventKindCounts(const SimResult& result) {
  std::map<SimEventKind, size_t> counts;
  for (const auto& event : result.events) {
    ++counts[event.kind];
  }
  return counts;
}

struct ChaosCase {
  const char* profile;
  uint64_t seed;
};

class ChaosSchedule : public ::testing::TestWithParam<ChaosCase> {};

TEST_P(ChaosSchedule, ByteReproduciblePerSeedOnBothEngines) {
  const ChaosCase c = GetParam();
  for (const SimEngine engine : {SimEngine::kEvent, SimEngine::kTicked}) {
    const SimResult first = RunChaos(c.profile, c.seed, engine);
    const SimResult second = RunChaos(c.profile, c.seed, engine);
    EXPECT_EQ(Fingerprint(first), Fingerprint(second))
        << c.profile << " seed " << c.seed << " engine " << static_cast<int>(engine);
  }
}

TEST_P(ChaosSchedule, TickedAndEventEnginesAgree) {
  const ChaosCase c = GetParam();
  const SimResult ticked = RunChaos(c.profile, c.seed, SimEngine::kTicked);
  const SimResult event = RunChaos(c.profile, c.seed, SimEngine::kEvent);
  EXPECT_EQ(CompletionSet(ticked), CompletionSet(event));
  EXPECT_EQ(EventKindCounts(ticked), EventKindCounts(event));
  ASSERT_EQ(ticked.jobs.size(), event.jobs.size());
  for (size_t i = 0; i < ticked.jobs.size(); ++i) {
    // One tick (SimOptions default 1.0): the event engine refines completion
    // instants inside the tick the ticked engine completed in.
    EXPECT_NEAR(ticked.jobs[i].Jct(), event.jobs[i].Jct(), 1.0)
        << "job " << ticked.jobs[i].job_id;
    EXPECT_EQ(ticked.jobs[i].num_evictions, event.jobs[i].num_evictions)
        << "job " << ticked.jobs[i].job_id;
  }
}

TEST_P(ChaosSchedule, EveryJobCompletesAfterTheChaosHeals) {
  const ChaosCase c = GetParam();
  const SimResult result = RunChaos(c.profile, c.seed, SimEngine::kEvent);
  EXPECT_FALSE(result.timed_out);
  EXPECT_EQ(CompletionSet(result).size(), result.jobs.size());
  for (const auto& job : result.jobs) {
    EXPECT_TRUE(job.completed) << "job " << job.job_id << " never finished";
  }
}

INSTANTIATE_TEST_SUITE_P(Profiles, ChaosSchedule,
                         ::testing::Values(ChaosCase{"lan", 1}, ChaosCase{"flaky", 1},
                                           ChaosCase{"flaky", 2}, ChaosCase{"partitioned", 1},
                                           ChaosCase{"partitioned", 3}),
                         [](const ::testing::TestParamInfo<ChaosCase>& info) {
                           return std::string(info.param.profile) + "_seed" +
                                  std::to_string(info.param.seed);
                         });

// --net-profile=none must be indistinguishable from a build without the
// network model at all: the profile leaves every knob zero, NetOptions
// reports disabled, and the run is byte-identical to one that never set
// options.net.
TEST(ChaosNoneProfile, ByteIdenticalToNetModelDisabled) {
  NetOptions none;
  ASSERT_TRUE(NetProfileByName("none", &none));
  EXPECT_FALSE(none.enabled());

  SimOptions options;
  options.cluster = ClusterSpec::Homogeneous(2, 4);
  options.seed = 5;
  options.check_invariants = true;
  const auto trace = ChaosTrace(5);
  SchedConfig sched_config;
  sched_config.ga.population_size = 12;
  sched_config.ga.generations = 6;
  sched_config.ga.seed = 5;

  PolluxPolicy baseline_policy(options.cluster, sched_config);
  const SimResult baseline = Simulator(options, trace, &baseline_policy).Run();

  options.net = none;
  PolluxPolicy none_policy(options.cluster, sched_config);
  const SimResult with_none = Simulator(options, trace, &none_policy).Run();
  EXPECT_EQ(Fingerprint(baseline), Fingerprint(with_none));
}

}  // namespace
}  // namespace pollux
