// Cross-policy property sweep: for every scheduling policy and several trace
// seeds, a small workload must satisfy the simulator's conservation laws —
// every job completes, no timeline sample over-commits the cluster, JCTs are
// positive, GPU-time is consistent, and results are reproducible.

#include <gtest/gtest.h>

#include <string>

#include "baselines/fixed_batch_policy.h"
#include "baselines/optimus.h"
#include "baselines/tiresias.h"
#include "sim/placement.h"
#include "sim/pollux_policy.h"
#include "sim/simulator.h"
#include "workload/trace_gen.h"

namespace pollux {
namespace {

struct SweepCase {
  const char* policy;
  uint64_t seed;
};

void PrintTo(const SweepCase& c, std::ostream* os) {
  *os << c.policy << "_seed" << c.seed;
}

std::vector<JobSpec> SweepTrace(uint64_t seed) {
  TraceOptions options;
  options.num_jobs = 12;
  options.duration = 1800.0;
  options.max_gpus = 8;
  options.seed = seed;
  auto jobs = GenerateTrace(options);
  for (auto& job : jobs) {
    // Keep the sweep fast: replace long-running models with small ones.
    if (job.model != ModelKind::kResNet18Cifar10 && job.model != ModelKind::kNeuMFMovieLens) {
      job.model = ModelKind::kNeuMFMovieLens;
      job.batch_size = 2048;
      job.requested_gpus = std::min(job.requested_gpus, 4);
    }
  }
  return jobs;
}

SimResult RunCase(const SweepCase& sweep) {
  SimOptions options;
  options.cluster = ClusterSpec::Homogeneous(2, 4);
  options.seed = sweep.seed;
  const auto trace = SweepTrace(sweep.seed);
  SchedConfig sched_config;
  sched_config.ga.population_size = 12;
  sched_config.ga.generations = 6;
  sched_config.ga.seed = sweep.seed;
  const std::string policy = sweep.policy;
  if (policy == "pollux") {
    PolluxPolicy p(options.cluster, sched_config);
    return Simulator(options, trace, &p).Run();
  }
  if (policy == "pollux-fixed-batch") {
    FixedBatchPolluxPolicy p(options.cluster, sched_config);
    return Simulator(options, trace, &p).Run();
  }
  if (policy == "optimus") {
    OptimusPolicy p;
    return Simulator(options, trace, &p).Run();
  }
  TiresiasPolicy p;
  return Simulator(options, trace, &p).Run();
}

class PolicySweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(PolicySweep, ConservationLaws) {
  const SimResult result = RunCase(GetParam());
  EXPECT_FALSE(result.timed_out);
  ASSERT_EQ(result.jobs.size(), 12u);
  for (const auto& job : result.jobs) {
    EXPECT_TRUE(job.completed) << "job " << job.job_id;
    EXPECT_GT(job.Jct(), 0.0);
    EXPECT_GE(job.start_time, job.submit_time);
    EXPECT_GE(job.finish_time, job.start_time);
    EXPECT_GT(job.gpu_time, 0.0);
    // GPU-time cannot exceed cluster capacity x wall time while running.
    EXPECT_LE(job.gpu_time, 8.0 * (job.finish_time - job.start_time) + 1e-6);
    EXPECT_GT(job.avg_efficiency, 0.0);
    EXPECT_LE(job.avg_efficiency, 1.0 + 1e-9);
    EXPECT_LE(job.avg_goodput, job.avg_throughput + 1e-9);
    EXPECT_LE(job.finish_time, result.makespan + 1e-9);
  }
  for (const auto& sample : result.timeline) {
    EXPECT_LE(sample.gpus_in_use, sample.total_gpus);
    EXPECT_GE(sample.gpus_in_use, 0);
  }
}

TEST_P(PolicySweep, DeterministicAcrossRuns) {
  const SimResult a = RunCase(GetParam());
  const SimResult b = RunCase(GetParam());
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.jobs[i].finish_time, b.jobs[i].finish_time);
    EXPECT_DOUBLE_EQ(a.jobs[i].gpu_time, b.jobs[i].gpu_time);
  }
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesAndSeeds, PolicySweep,
    ::testing::Values(SweepCase{"pollux", 1}, SweepCase{"pollux", 2},
                      SweepCase{"pollux-fixed-batch", 1}, SweepCase{"optimus", 1},
                      SweepCase{"optimus", 2}, SweepCase{"tiresias", 1},
                      SweepCase{"tiresias", 2}),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      std::string name = info.param.policy;
      for (char& c : name) {
        if (c == '-') {
          c = '_';
        }
      }
      return name + "_seed" + std::to_string(info.param.seed);
    });

// Golden-trace regression: a fixed-seed end-to-end Pollux simulation must
// produce byte-stable summary metrics (avg JCT, makespan, per-job finish
// times) across repeated runs AND across scheduler thread counts — the
// parallel GA and its memoization cache may not perturb a single bit of the
// simulated outcome. EXPECT_EQ on doubles is exact (bitwise for non-NaN).
class GoldenTraceTest : public ::testing::Test {
 protected:
  static SimResult RunGolden(int sched_threads, bool memoize = true) {
    SimOptions options;
    options.cluster = ClusterSpec::Homogeneous(2, 4);
    options.seed = 1;
    options.sched_threads = sched_threads;
    SchedConfig sched_config;
    sched_config.ga.population_size = 12;
    sched_config.ga.generations = 6;
    sched_config.ga.seed = 1;
    sched_config.ga.threads = options.sched_threads;
    sched_config.ga.memoize = memoize;
    sched_config.memoize_tables = memoize;
    PolluxPolicy policy(options.cluster, sched_config);
    return Simulator(options, SweepTrace(1), &policy).Run();
  }

  static void ExpectIdentical(const SimResult& a, const SimResult& b, const char* label) {
    EXPECT_EQ(a.JctSummary().mean, b.JctSummary().mean) << label;
    EXPECT_EQ(a.JctSummary().p99, b.JctSummary().p99) << label;
    EXPECT_EQ(a.makespan, b.makespan) << label;
    ASSERT_EQ(a.jobs.size(), b.jobs.size()) << label;
    for (size_t i = 0; i < a.jobs.size(); ++i) {
      EXPECT_EQ(a.jobs[i].finish_time, b.jobs[i].finish_time) << label << " job " << i;
      EXPECT_EQ(a.jobs[i].gpu_time, b.jobs[i].gpu_time) << label << " job " << i;
      EXPECT_EQ(a.jobs[i].num_restarts, b.jobs[i].num_restarts) << label << " job " << i;
    }
    ASSERT_EQ(a.timeline.size(), b.timeline.size()) << label;
    for (size_t i = 0; i < a.timeline.size(); ++i) {
      EXPECT_EQ(a.timeline[i].gpus_in_use, b.timeline[i].gpus_in_use) << label << " t" << i;
      EXPECT_EQ(a.timeline[i].utility, b.timeline[i].utility) << label << " t" << i;
    }
  }
};

TEST_F(GoldenTraceTest, SummaryMetricsByteStableAcrossRuns) {
  const SimResult first = RunGolden(1);
  const SimResult second = RunGolden(1);
  ExpectIdentical(first, second, "rerun");
  // Sanity: the golden run actually scheduled work.
  EXPECT_FALSE(first.timed_out);
  EXPECT_GT(first.JctSummary().mean, 0.0);
  EXPECT_GT(first.makespan, 0.0);
}

TEST_F(GoldenTraceTest, SummaryMetricsByteStableAcrossThreadCounts) {
  const SimResult serial = RunGolden(1);
  for (int threads : {2, 4, 0 /* hardware concurrency */}) {
    const SimResult parallel = RunGolden(threads);
    ExpectIdentical(serial, parallel,
                    ("threads=" + std::to_string(threads)).c_str());
  }
}

TEST_F(GoldenTraceTest, SummaryMetricsByteStableWithoutMemoization) {
  ExpectIdentical(RunGolden(4, /*memoize=*/true), RunGolden(4, /*memoize=*/false), "memo");
}

// The event engine (the default) is byte-deterministic per seed down to the
// full event log: times, kinds, and payloads — not just summary metrics.
TEST_F(GoldenTraceTest, EventEngineEventLogByteStableAcrossRuns) {
  const SimResult a = RunGolden(1);
  const SimResult b = RunGolden(1);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].time, b.events[i].time) << "event " << i;
    EXPECT_EQ(a.events[i].kind, b.events[i].kind) << "event " << i;
    EXPECT_EQ(a.events[i].job_id, b.events[i].job_id) << "event " << i;
    EXPECT_EQ(a.events[i].gpus, b.events[i].gpus) << "event " << i;
    EXPECT_EQ(a.events[i].nodes, b.events[i].nodes) << "event " << i;
  }
  EXPECT_EQ(a.node_seconds, b.node_seconds);
}

// Fault-injection sweep: across seeds and both Pollux and a static baseline,
// the simulator's invariant checker (enabled here, aborts on violation) must
// hold and no job may be lost — every submission appears in the result and
// completes despite crashes, stragglers, report loss, and restart failures.
class FaultSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FaultSweep, InvariantsHoldAndNoJobIsLost) {
  const uint64_t seed = GetParam();
  SimOptions options;
  options.cluster = ClusterSpec::Homogeneous(2, 4);
  options.seed = seed;
  options.check_invariants = true;
  options.faults.mtbf_node = 1800.0;
  options.faults.repair_time = 120.0;
  options.faults.straggler_frac = 0.25;
  options.faults.straggler_slowdown = 1.5;
  options.faults.report_drop_rate = 0.1;
  options.faults.restart_fail_rate = 0.2;
  const auto trace = SweepTrace(seed);
  SchedConfig sched_config;
  sched_config.ga.population_size = 12;
  sched_config.ga.generations = 6;
  sched_config.ga.seed = seed;
  {
    PolluxPolicy policy(options.cluster, sched_config);
    const SimResult result = Simulator(options, trace, &policy).Run();
    EXPECT_FALSE(result.timed_out);
    ASSERT_EQ(result.jobs.size(), trace.size());
    for (const auto& job : result.jobs) {
      EXPECT_TRUE(job.completed) << "pollux job " << job.job_id;
    }
  }
  {
    TiresiasPolicy policy;
    const SimResult result = Simulator(options, trace, &policy).Run();
    EXPECT_FALSE(result.timed_out);
    ASSERT_EQ(result.jobs.size(), trace.size());
    for (const auto& job : result.jobs) {
      EXPECT_TRUE(job.completed) << "tiresias job " << job.job_id;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(FaultSeeds, FaultSweep, ::testing::Values(1u, 2u, 3u),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

TEST(HeterogeneousClusterTest, PolluxHandlesUnevenNodes) {
  SimOptions options;
  options.cluster.gpus_per_node = {8, 2, 4};  // Uneven.
  options.seed = 3;
  const auto trace = SweepTrace(3);
  SchedConfig sched_config;
  sched_config.ga.population_size = 12;
  sched_config.ga.generations = 6;
  PolluxPolicy policy(options.cluster, sched_config);
  const SimResult result = Simulator(options, trace, &policy).Run();
  EXPECT_FALSE(result.timed_out);
  for (const auto& sample : result.timeline) {
    EXPECT_LE(sample.gpus_in_use, 14);
  }
  for (const auto& job : result.jobs) {
    EXPECT_TRUE(job.completed);
  }
}

TEST(HeterogeneousClusterTest, PlacementRespectsPerNodeCapacity) {
  ClusterSpec cluster;
  cluster.gpus_per_node = {1, 6, 2};
  const auto rows = PlaceConsolidated(cluster, {{1, 6}, {2, 3}}, {});
  std::vector<int> usage(3, 0);
  for (const auto& [id, row] : rows) {
    for (size_t n = 0; n < 3; ++n) {
      usage[n] += row[n];
      EXPECT_LE(usage[n], cluster.gpus_per_node[n]);
    }
  }
}

}  // namespace
}  // namespace pollux
