#include "core/session.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace pollux {
namespace {

SessionOptions MakeOptions(long report_every = 10) {
  SessionOptions options;
  options.job_id = 1;
  options.base_batch_size = 64;
  options.base_lr = 0.1;
  options.limits.min_batch = 64;
  options.limits.max_batch_total = 4096;
  options.limits.max_batch_per_gpu = 512;
  options.report_every_steps = report_every;
  return options;
}

// K replica gradients with true |G|^2 = 1 and tr(Sigma) = phi.
std::vector<std::vector<double>> MakeGrads(Rng& rng, double phi, int replicas, long batch) {
  const size_t dim = 16;
  const double per_dim_std =
      std::sqrt(phi / (static_cast<double>(batch) / replicas) / static_cast<double>(dim));
  const double mean = 1.0 / std::sqrt(static_cast<double>(dim));
  std::vector<std::vector<double>> grads(static_cast<size_t>(replicas));
  for (auto& grad : grads) {
    grad.resize(dim);
    for (double& g : grad) {
      g = mean + rng.Normal(0.0, per_dim_std);
    }
  }
  return grads;
}

TEST(SessionTest, LearningRateIsBaseAtBaseBatch) {
  PolluxSession session(MakeOptions());
  session.SetPlacement(Placement{2, 1});
  Rng rng(3);
  for (int step = 0; step < 5; ++step) {
    const auto grads = MakeGrads(rng, 500.0, 2, 64);
    const auto decision = session.EndStepWithDuration(grads, 64, 0.1);
    EXPECT_NEAR(decision.learning_rate, 0.1, 1e-9);
    EXPECT_NEAR(decision.gain, 1.0, 1e-9);
  }
  EXPECT_EQ(session.steps(), 5);
}

TEST(SessionTest, LargerBatchScalesLearningRate) {
  PolluxSession session(MakeOptions());
  session.SetPlacement(Placement{4, 1});
  Rng rng(5);
  PolluxSession::StepDecision decision;
  for (int step = 0; step < 50; ++step) {
    const auto grads = MakeGrads(rng, 640.0, 4, 256);
    decision = session.EndStepWithDuration(grads, 256, 0.1);
  }
  EXPECT_GT(decision.gain, 1.0);
  EXPECT_LE(decision.gain, 4.0 + 1e-9);
  EXPECT_NEAR(decision.learning_rate, 0.1 * decision.gain, 1e-9);
  EXPECT_GT(session.phi(), 0.0);
}

TEST(SessionTest, SingleReplicaFallsBackToDifferencedEstimator) {
  PolluxSession session(MakeOptions());
  session.SetPlacement(Placement{1, 1});
  Rng rng(7);
  for (int step = 0; step < 30; ++step) {
    const auto grads = MakeGrads(rng, 320.0, 1, 64);
    session.EndStepWithDuration(grads, 64, 0.1);
  }
  // First step has no previous gradient; the remaining 29 produce samples.
  EXPECT_GT(session.adascale().tracker().sample_count(), 20u);
  EXPECT_GT(session.phi(), 0.0);
}

TEST(SessionTest, PlacementChangeResetsDifferencing) {
  PolluxSession session(MakeOptions());
  session.SetPlacement(Placement{1, 1});
  Rng rng(9);
  auto grads = MakeGrads(rng, 320.0, 1, 64);
  session.EndStepWithDuration(grads, 64, 0.1);
  const size_t samples_before = session.adascale().tracker().sample_count();
  session.SetPlacement(Placement{2, 1});
  // Single-replica step right after a placement change: no differencing pair.
  grads = MakeGrads(rng, 320.0, 1, 64);
  session.EndStepWithDuration(grads, 64, 0.1);
  EXPECT_EQ(session.adascale().tracker().sample_count(), samples_before);
}

TEST(SessionTest, PeriodicReportRefreshesRecommendedBatch) {
  PolluxSession session(MakeOptions(/*report_every=*/10));
  session.SetPlacement(Placement{4, 1});
  Rng rng(11);
  int reports = 0;
  long last_recommendation = 0;
  for (int step = 0; step < 40; ++step) {
    const auto grads = MakeGrads(rng, 3200.0, 4, 128);
    const auto decision = session.EndStepWithDuration(grads, 128, 0.05);
    if (decision.reported) {
      ++reports;
    }
    last_recommendation = decision.recommended_batch_size;
  }
  EXPECT_EQ(reports, 4);
  // With a large noise scale and 4 GPUs, the goodput model recommends a batch
  // beyond m0.
  EXPECT_GT(last_recommendation, 64);
  EXPECT_LE(last_recommendation, 2048);
}

TEST(SessionTest, ReportCarriesFittedModel) {
  PolluxSession session(MakeOptions());
  session.SetPlacement(Placement{2, 1});
  Rng rng(13);
  for (int step = 0; step < 20; ++step) {
    const auto grads = MakeGrads(rng, 500.0, 2, 64);
    session.EndStepWithDuration(grads, 64, 0.12);
  }
  const AgentReport report = session.Report();
  EXPECT_EQ(report.job_id, 1u);
  EXPECT_GT(report.model.phi(), 0.0);
  // One configuration observed: (K=2, m=64) at ~0.12 s.
  const double predicted = IterTime(report.model.params(), Placement{2, 1}, 64.0);
  EXPECT_NEAR(predicted, 0.12, 0.03);
}

TEST(SessionTest, WallClockTimingPath) {
  PolluxSession session(MakeOptions());
  session.SetPlacement(Placement{1, 1});
  Rng rng(17);
  session.BeginStep();
  const auto grads = MakeGrads(rng, 320.0, 1, 64);
  const auto decision = session.EndStep(grads, 64);
  EXPECT_GE(decision.learning_rate, 0.0);
  EXPECT_GE(session.agent().distinct_configurations(), 0u);
}

}  // namespace
}  // namespace pollux
