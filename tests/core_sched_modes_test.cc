// Tests for the --sched-mode quality/speed ladder (DESIGN.md §13):
//   exact       — full GA over all jobs (covered by core_sched_test.cc),
//   incremental — re-optimize only dirty jobs, keep warm allocations,
//   first-match — O(jobs) greedy placement.
// Both cheap modes return sparse decision maps: a job omitted from the result
// keeps its current allocation (the scheduler contract in sim/scheduler.h).

#include <gtest/gtest.h>

#include <map>
#include <numeric>
#include <vector>

#include "core/sched.h"

namespace pollux {
namespace {

GoodputModel TypicalModel(double phi = 1000.0) {
  ThroughputParams params;
  params.alpha_grad = 0.05;
  params.beta_grad = 2e-4;
  params.alpha_sync_local = 0.03;
  params.beta_sync_local = 0.002;
  params.alpha_sync_node = 0.1;
  params.beta_sync_node = 0.005;
  params.gamma = 2.0;
  return GoodputModel(params, phi, 128);
}

SchedJobReport MakeReport(uint64_t id, double phi = 1000.0, int cap = 16,
                          double gpu_time = 0.0) {
  SchedJobReport report;
  report.agent.job_id = id;
  report.agent.model = TypicalModel(phi);
  report.agent.limits.min_batch = 128;
  report.agent.limits.max_batch_total = 16384;
  report.agent.limits.max_batch_per_gpu = 1024;
  report.agent.max_gpus_cap = cap;
  report.gpu_time = gpu_time;
  return report;
}

SchedConfig ModeConfig(SchedMode mode, uint64_t seed = 5) {
  SchedConfig config;
  config.ga.population_size = 20;
  config.ga.generations = 15;
  config.ga.seed = seed;
  config.mode = mode;
  return config;
}

int RowTotal(const std::vector<int>& row) {
  return std::accumulate(row.begin(), row.end(), 0);
}

// Applies a sparse decision map on top of the previous allocations, per the
// scheduler contract: omitted jobs keep what they had.
void ApplyDecisions(const std::map<uint64_t, std::vector<int>>& decisions,
                    std::map<uint64_t, std::vector<int>>* allocations) {
  for (const auto& [id, row] : decisions) {
    (*allocations)[id] = row;
  }
}

void AssertFeasible(const std::map<uint64_t, std::vector<int>>& allocations, int num_nodes,
                    int gpus_per_node) {
  std::vector<int> usage(num_nodes, 0);
  for (const auto& [id, row] : allocations) {
    ASSERT_LE(row.size(), static_cast<size_t>(num_nodes)) << "job " << id;
    for (size_t n = 0; n < row.size(); ++n) {
      EXPECT_GE(row[n], 0) << "job " << id;
      usage[n] += row[n];
    }
  }
  for (int n = 0; n < num_nodes; ++n) {
    EXPECT_LE(usage[n], gpus_per_node) << "node " << n;
  }
}

TEST(SchedModeTest, NameRoundTrip) {
  for (SchedMode mode :
       {SchedMode::kExact, SchedMode::kIncremental, SchedMode::kFirstMatch}) {
    SchedMode parsed = SchedMode::kExact;
    ASSERT_TRUE(SchedModeByName(SchedModeName(mode), &parsed));
    EXPECT_EQ(parsed, mode);
  }
  SchedMode parsed = SchedMode::kIncremental;
  EXPECT_FALSE(SchedModeByName("fastest", &parsed));
  EXPECT_EQ(parsed, SchedMode::kIncremental);  // untouched on failure
  EXPECT_FALSE(SchedModeByName("", &parsed));
}

TEST(SchedModeTest, FirstMatchPlacesQueuedJobsFeasibly) {
  PolluxSched sched(ClusterSpec::Homogeneous(4, 4), ModeConfig(SchedMode::kFirstMatch));
  std::vector<SchedJobReport> reports;
  for (uint64_t id = 1; id <= 5; ++id) {
    reports.push_back(MakeReport(id, 1000.0, 4));
  }
  const auto decisions = sched.Schedule(reports);
  // Four cap-4 jobs saturate the 16-GPU cluster; the fifth stays queued
  // (omitted from the sparse map) rather than evicting anyone.
  ASSERT_EQ(decisions.size(), 4u);
  EXPECT_EQ(decisions.count(5), 0u);
  for (const auto& [id, row] : decisions) {
    EXPECT_GE(RowTotal(row), 1) << "job " << id;
    EXPECT_LE(RowTotal(row), 4) << "job " << id;
  }
  AssertFeasible(decisions, 4, 4);
}

TEST(SchedModeTest, FirstMatchOmitsUnchangedJobs) {
  PolluxSched sched(ClusterSpec::Homogeneous(2, 4), ModeConfig(SchedMode::kFirstMatch));
  // The cluster is full: two jobs each holding one saturated node. Neither
  // can grow, so first-match must return an empty (all-unchanged) map.
  SchedJobReport a = MakeReport(1, 1000.0, 8);
  a.current_allocation = {4, 0};
  SchedJobReport b = MakeReport(2, 1000.0, 8);
  b.current_allocation = {0, 4};
  EXPECT_TRUE(sched.Schedule({a, b}).empty());
}

TEST(SchedModeTest, FirstMatchGrowsRunningJobsInPlace) {
  PolluxSched sched(ClusterSpec::Homogeneous(2, 4), ModeConfig(SchedMode::kFirstMatch));
  SchedJobReport a = MakeReport(1, 1000.0, 8);
  a.current_allocation = {2, 0};
  const auto decisions = sched.Schedule({a});
  ASSERT_EQ(decisions.count(1), 1u);
  // Grows on its own node first; only node 0 was occupied, so the extra GPUs
  // land there before spilling.
  EXPECT_EQ(decisions.at(1)[0], 4);
  AssertFeasible(decisions, 2, 4);
}

TEST(SchedModeTest, FirstMatchClampsOversubscribedRows) {
  // A stale allocation can exceed the (shrunken) cluster; first-match must
  // clamp it to capacity rather than emit an infeasible row.
  PolluxSched sched(ClusterSpec::Homogeneous(2, 2), ModeConfig(SchedMode::kFirstMatch));
  SchedJobReport a = MakeReport(1, 1000.0, 2);
  a.current_allocation = {4, 4};
  const auto decisions = sched.Schedule({a});
  ASSERT_EQ(decisions.count(1), 1u);
  AssertFeasible(decisions, 2, 2);
}

TEST(SchedModeTest, FirstMatchLeavesExcessJobsQueued) {
  // One-node cluster, two jobs: the second has nowhere to go and must stay
  // queued (omitted), not evict the first.
  PolluxSched sched(ClusterSpec::Homogeneous(1, 2), ModeConfig(SchedMode::kFirstMatch));
  SchedJobReport a = MakeReport(1, 1000.0, 8);
  a.current_allocation = {2};
  SchedJobReport b = MakeReport(2, 1000.0, 8);
  const auto decisions = sched.Schedule({a, b});
  EXPECT_EQ(decisions.count(2), 0u);
  EXPECT_EQ(decisions.count(1), 0u);  // already saturated, unchanged
}

TEST(SchedModeTest, FirstMatchIgnoresGaThreadCount) {
  std::vector<SchedJobReport> reports;
  for (uint64_t id = 1; id <= 6; ++id) {
    reports.push_back(MakeReport(id, 500.0 * static_cast<double>(id), 8));
  }
  SchedConfig one = ModeConfig(SchedMode::kFirstMatch);
  one.ga.threads = 1;
  SchedConfig many = ModeConfig(SchedMode::kFirstMatch);
  many.ga.threads = 4;
  PolluxSched sched_one(ClusterSpec::Homogeneous(3, 4), one);
  PolluxSched sched_many(ClusterSpec::Homogeneous(3, 4), many);
  EXPECT_EQ(sched_one.Schedule(reports), sched_many.Schedule(reports));
}

TEST(SchedModeTest, IncrementalFirstRoundOptimizesEveryJob) {
  PolluxSched sched(ClusterSpec::Homogeneous(4, 4), ModeConfig(SchedMode::kIncremental));
  std::vector<SchedJobReport> reports;
  for (uint64_t id = 1; id <= 4; ++id) {
    reports.push_back(MakeReport(id, 1000.0, 8));
  }
  const auto decisions = sched.Schedule(reports);
  // Every job is new, hence dirty; each should be granted GPUs somewhere.
  AssertFeasible(decisions, 4, 4);
  int placed = 0;
  for (const auto& [id, row] : decisions) {
    placed += RowTotal(row) > 0 ? 1 : 0;
  }
  EXPECT_GE(placed, 1);
  EXPECT_GT(sched.last_utility(), 0.0);
}

TEST(SchedModeTest, IncrementalSecondRoundWithUnchangedStateIsEmpty) {
  PolluxSched sched(ClusterSpec::Homogeneous(4, 4), ModeConfig(SchedMode::kIncremental));
  std::vector<SchedJobReport> reports;
  for (uint64_t id = 1; id <= 4; ++id) {
    reports.push_back(MakeReport(id, 1000.0, 8));
  }
  std::map<uint64_t, std::vector<int>> allocations;
  ApplyDecisions(sched.Schedule(reports), &allocations);
  // Feed the granted allocations back unchanged: every job is clean and the
  // round must not move anyone.
  for (auto& report : reports) {
    auto it = allocations.find(report.agent.job_id);
    if (it != allocations.end()) {
      report.current_allocation = it->second;
    }
  }
  EXPECT_TRUE(sched.Schedule(reports).empty());
}

TEST(SchedModeTest, IncrementalReoptimizesOnlyDriftedJobs) {
  PolluxSched sched(ClusterSpec::Homogeneous(4, 4), ModeConfig(SchedMode::kIncremental));
  std::vector<SchedJobReport> reports;
  for (uint64_t id = 1; id <= 4; ++id) {
    reports.push_back(MakeReport(id, 1000.0, 8));
  }
  std::map<uint64_t, std::vector<int>> allocations;
  ApplyDecisions(sched.Schedule(reports), &allocations);
  for (auto& report : reports) {
    auto it = allocations.find(report.agent.job_id);
    if (it != allocations.end()) {
      report.current_allocation = it->second;
    }
  }
  // Drift job 3's statistical-efficiency state well past dirty_rel_change.
  reports[2].agent.model = TypicalModel(2500.0);
  const auto decisions = sched.Schedule(reports);
  for (const auto& [id, row] : decisions) {
    EXPECT_EQ(id, 3u) << "clean job " << id << " was re-optimized";
  }
}

TEST(SchedModeTest, IncrementalDeterministicAcrossThreadCounts) {
  std::vector<SchedJobReport> reports;
  for (uint64_t id = 1; id <= 8; ++id) {
    reports.push_back(MakeReport(id, 400.0 * static_cast<double>(id), 4));
  }
  SchedConfig one = ModeConfig(SchedMode::kIncremental);
  one.ga.threads = 1;
  one.shard_jobs = 2;  // force several shards so the pool actually fans out
  SchedConfig many = one;
  many.ga.threads = 4;
  PolluxSched sched_one(ClusterSpec::Homogeneous(6, 4), one);
  PolluxSched sched_many(ClusterSpec::Homogeneous(6, 4), many);
  for (int round = 0; round < 3; ++round) {
    const auto decisions_one = sched_one.Schedule(reports);
    const auto decisions_many = sched_many.Schedule(reports);
    ASSERT_EQ(decisions_one, decisions_many) << "round " << round;
    for (auto& report : reports) {
      auto it = decisions_one.find(report.agent.job_id);
      if (it != decisions_one.end()) {
        report.current_allocation = it->second;
      }
    }
  }
}

TEST(SchedModeTest, IncrementalSetClusterDirtiesEveryJob) {
  PolluxSched sched(ClusterSpec::Homogeneous(2, 4), ModeConfig(SchedMode::kIncremental));
  std::vector<SchedJobReport> reports = {MakeReport(1, 1000.0, 8), MakeReport(2, 1000.0, 8)};
  std::map<uint64_t, std::vector<int>> allocations;
  ApplyDecisions(sched.Schedule(reports), &allocations);
  for (auto& report : reports) {
    auto it = allocations.find(report.agent.job_id);
    if (it != allocations.end()) {
      report.current_allocation = it->second;
    }
  }
  ASSERT_TRUE(sched.Schedule(reports).empty());
  // Capacity change: everyone must be reconsidered next round.
  sched.SetCluster(ClusterSpec::Homogeneous(4, 4));
  for (auto& report : reports) {
    report.current_allocation.resize(4, 0);
  }
  const auto state = sched.GetState();
  EXPECT_TRUE(state.incremental.empty());  // snapshots were invalidated
  sched.Schedule(reports);
  const auto after = sched.GetState();
  EXPECT_EQ(after.incremental.size(), 2u);  // rebuilt from fresh optimization
  for (const auto& [id, snap] : after.incremental) {
    EXPECT_EQ(snap.rounds_clean, 0u) << "job " << id;
  }
}

TEST(SchedModeTest, IncrementalPeriodicRefreshResetsCleanCounter) {
  SchedConfig config = ModeConfig(SchedMode::kIncremental);
  config.refresh_rounds = 2;
  PolluxSched sched(ClusterSpec::Homogeneous(2, 4), config);
  std::vector<SchedJobReport> reports = {MakeReport(1, 1000.0, 8)};
  std::map<uint64_t, std::vector<int>> allocations;
  ApplyDecisions(sched.Schedule(reports), &allocations);
  for (auto& report : reports) {
    auto it = allocations.find(report.agent.job_id);
    if (it != allocations.end()) {
      report.current_allocation = it->second;
    }
  }
  sched.Schedule(reports);  // clean round: counter advances to 1
  EXPECT_EQ(sched.GetState().incremental.at(1).rounds_clean, 1u);
  sched.Schedule(reports);  // counter would hit refresh_rounds: forced dirty
  EXPECT_EQ(sched.GetState().incremental.at(1).rounds_clean, 0u);
}

TEST(SchedModeTest, IncrementalStateRoundTripsThroughGetSet) {
  PolluxSched sched(ClusterSpec::Homogeneous(2, 4), ModeConfig(SchedMode::kIncremental));
  std::vector<SchedJobReport> reports = {MakeReport(1, 1000.0, 8), MakeReport(2, 2000.0, 8)};
  sched.Schedule(reports);
  const PolluxSched::State state = sched.GetState();
  EXPECT_EQ(state.incremental.size(), 2u);
  EXPECT_EQ(state.incremental_round, 1u);

  PolluxSched other(ClusterSpec::Homogeneous(2, 4), ModeConfig(SchedMode::kIncremental));
  other.SetState(state);
  const PolluxSched::State restored = other.GetState();
  EXPECT_EQ(restored.incremental_round, state.incremental_round);
  ASSERT_EQ(restored.incremental.size(), state.incremental.size());
  for (const auto& [id, snap] : state.incremental) {
    const auto& copy = restored.incremental.at(id);
    EXPECT_EQ(copy.phi, snap.phi) << "job " << id;
    EXPECT_EQ(copy.cap, snap.cap) << "job " << id;
    EXPECT_EQ(copy.bucket, snap.bucket) << "job " << id;
    EXPECT_EQ(copy.rounds_clean, snap.rounds_clean) << "job " << id;
  }
}

TEST(SchedModeTest, ExactModeIgnoresIncrementalConfigKnobs) {
  // Exact mode must behave identically whatever the incremental tuning says —
  // the golden-identity guarantee (DESIGN.md §13).
  std::vector<SchedJobReport> reports;
  for (uint64_t id = 1; id <= 3; ++id) {
    reports.push_back(MakeReport(id, 1000.0, 8));
  }
  SchedConfig plain = ModeConfig(SchedMode::kExact);
  SchedConfig tuned = ModeConfig(SchedMode::kExact);
  tuned.dirty_rel_change = 0.5;
  tuned.shard_jobs = 2;
  tuned.refresh_rounds = 3;
  PolluxSched sched_plain(ClusterSpec::Homogeneous(3, 4), plain);
  PolluxSched sched_tuned(ClusterSpec::Homogeneous(3, 4), tuned);
  EXPECT_EQ(sched_plain.Schedule(reports), sched_tuned.Schedule(reports));
}

TEST(SchedModeTest, QueueAdmissionDefersBacklogBeyondFreeCapacity) {
  // 4-GPU cluster, 10 queued jobs: every placement consumes at least one GPU,
  // so at most 4 of them can possibly land this round. The pre-filter admits
  // the first 4 in report order and defers the other 6 (omitted from the
  // sparse map — they simply stay queued) instead of dragging all 10 through
  // GA shards.
  SchedConfig config = ModeConfig(SchedMode::kIncremental);
  config.queue_admission = true;
  PolluxSched sched(ClusterSpec::Homogeneous(2, 2), config);
  std::vector<SchedJobReport> reports;
  for (uint64_t id = 1; id <= 10; ++id) {
    reports.push_back(MakeReport(id, 1000.0, 4));
  }
  const auto decisions = sched.Schedule(reports);
  EXPECT_EQ(sched.queue_skipped(), 6u);
  for (uint64_t id = 5; id <= 10; ++id) {
    EXPECT_EQ(decisions.count(id), 0u) << "deferred job " << id << " got a row";
  }
  AssertFeasible(decisions, 2, 2);
}

TEST(SchedModeTest, QueueAdmissionOffIsTheDefaultAndAdmitsEverything) {
  SchedConfig config = ModeConfig(SchedMode::kIncremental);
  EXPECT_FALSE(config.queue_admission);
  PolluxSched sched(ClusterSpec::Homogeneous(2, 2), config);
  std::vector<SchedJobReport> reports;
  for (uint64_t id = 1; id <= 10; ++id) {
    reports.push_back(MakeReport(id, 1000.0, 4));
  }
  sched.Schedule(reports);
  EXPECT_EQ(sched.queue_skipped(), 0u);
}

TEST(SchedModeTest, QueueAdmissionNeverDefersRunningJobs) {
  // A running job re-optimized because its model drifted is dirty for a real
  // reason — the filter only gates jobs that hold nothing. Single 2-GPU node:
  // job 1 runs (and drifts), three queued jobs compete for the 2 free-after-
  // dirty-rows GPUs, so exactly one is deferred and it is the last by report
  // order.
  SchedConfig config = ModeConfig(SchedMode::kIncremental);
  config.queue_admission = true;
  PolluxSched sched(ClusterSpec::Homogeneous(1, 2), config);
  std::vector<SchedJobReport> reports = {MakeReport(1, 1000.0, 2)};
  std::map<uint64_t, std::vector<int>> allocations;
  ApplyDecisions(sched.Schedule(reports), &allocations);
  for (auto& report : reports) {
    auto it = allocations.find(report.agent.job_id);
    if (it != allocations.end()) {
      report.current_allocation = it->second;
    }
  }
  ASSERT_TRUE(sched.Schedule(reports).empty());  // warm and clean
  EXPECT_EQ(sched.queue_skipped(), 0u);

  reports[0].agent.model = TypicalModel(2500.0);  // drift: dirty but running
  reports.push_back(MakeReport(2, 1000.0, 2));
  reports.push_back(MakeReport(3, 1000.0, 2));
  reports.push_back(MakeReport(4, 1000.0, 2));
  const auto decisions = sched.Schedule(reports);
  EXPECT_EQ(sched.queue_skipped(), 1u);
  EXPECT_EQ(decisions.count(4), 0u);  // last queued job by report order
  AssertFeasible(decisions, 1, 2);
}

TEST(SchedModeTest, QueueAdmissionIsInertInExactMode) {
  // The filter lives on the incremental path; exact mode with the flag set
  // must stay byte-identical to exact mode without it (golden identity).
  std::vector<SchedJobReport> reports;
  for (uint64_t id = 1; id <= 6; ++id) {
    reports.push_back(MakeReport(id, 1000.0, 4));
  }
  SchedConfig plain = ModeConfig(SchedMode::kExact);
  SchedConfig filtered = ModeConfig(SchedMode::kExact);
  filtered.queue_admission = true;
  PolluxSched sched_plain(ClusterSpec::Homogeneous(2, 2), plain);
  PolluxSched sched_filtered(ClusterSpec::Homogeneous(2, 2), filtered);
  EXPECT_EQ(sched_plain.Schedule(reports), sched_filtered.Schedule(reports));
  EXPECT_EQ(sched_filtered.queue_skipped(), 0u);
}

TEST(SchedModeTest, QueueAdmissionStateSurvivesGetSet) {
  // queue_skipped is part of the accounting a warm restart must not lose.
  SchedConfig config = ModeConfig(SchedMode::kIncremental);
  config.queue_admission = true;
  PolluxSched sched(ClusterSpec::Homogeneous(2, 2), config);
  std::vector<SchedJobReport> reports;
  for (uint64_t id = 1; id <= 10; ++id) {
    reports.push_back(MakeReport(id, 1000.0, 4));
  }
  sched.Schedule(reports);
  ASSERT_GT(sched.queue_skipped(), 0u);
  PolluxSched other(ClusterSpec::Homogeneous(2, 2), config);
  other.SetState(sched.GetState());
  EXPECT_EQ(other.queue_skipped(), sched.queue_skipped());
}

}  // namespace
}  // namespace pollux
