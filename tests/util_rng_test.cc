#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace pollux {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 4);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformCoversRange) {
  Rng rng(9);
  double lo = 1e9;
  double hi = -1e9;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.Uniform(-2.0, 5.0);
    EXPECT_GE(x, -2.0);
    EXPECT_LT(x, 5.0);
    lo = std::min(lo, x);
    hi = std::max(hi, x);
  }
  EXPECT_LT(lo, -1.5);
  EXPECT_GT(hi, 4.5);
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t x = rng.UniformInt(3, 6);
    EXPECT_GE(x, 3);
    EXPECT_LE(x, 6);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(RngTest, UniformIntDegenerateRange) {
  Rng rng(13);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.UniformInt(5, 5), 5);
  }
}

TEST(RngTest, NormalMoments) {
  Rng rng(17);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal(2.0, 3.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(var, 9.0, 0.3);
}

TEST(RngTest, LogNormalMedian) {
  Rng rng(19);
  std::vector<double> samples;
  for (int i = 0; i < 20001; ++i) {
    samples.push_back(rng.LogNormal(4.0, 0.5));
  }
  std::nth_element(samples.begin(), samples.begin() + 10000, samples.end());
  EXPECT_NEAR(samples[10000], 4.0, 0.15);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(23);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    sum += rng.Exponential(2.0);
  }
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, PoissonMeanSmallAndLarge) {
  Rng rng(29);
  double small_sum = 0.0;
  double large_sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    small_sum += static_cast<double>(rng.Poisson(3.0));
    large_sum += static_cast<double>(rng.Poisson(200.0));
  }
  EXPECT_NEAR(small_sum / n, 3.0, 0.1);
  EXPECT_NEAR(large_sum / n, 200.0, 1.0);
  EXPECT_EQ(rng.Poisson(0.0), 0);
  EXPECT_EQ(rng.Poisson(-1.0), 0);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(31);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, WeightedIndexRespectsWeights) {
  Rng rng(37);
  std::vector<double> weights = {0.0, 1.0, 3.0};
  std::vector<int> counts(3, 0);
  const int n = 30000;
  for (int i = 0; i < n; ++i) {
    ++counts[rng.WeightedIndex(weights)];
  }
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[1], 3.0, 0.3);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(41);
  std::vector<int> items = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = items;
  rng.Shuffle(shuffled);
  std::vector<int> sorted = shuffled;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, items);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(43);
  Rng child = parent.Fork();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.NextU64() == child.NextU64()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 4);
}

}  // namespace
}  // namespace pollux
