// TenantDomain tests (service/tenant.h): snapshot byte-identity (the crash-
// tolerance keystone), round idempotency, checkpoint/restore with corrupt-
// file fallback, and hostile-input rejection of malformed snapshots/setups.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/goodput.h"
#include "service/tenant.h"
#include "service/wire.h"

namespace pollux {
namespace service {
namespace {

AgentReport MakeAgent(uint64_t job_id, double phi = 1000.0) {
  ThroughputParams params;
  params.alpha_grad = 0.05;
  params.beta_grad = 2e-4;
  params.alpha_sync_local = 0.03;
  params.beta_sync_local = 0.002;
  params.alpha_sync_node = 0.1;
  params.beta_sync_node = 0.005;
  params.gamma = 2.0;
  AgentReport agent;
  agent.job_id = job_id;
  agent.model = GoodputModel(params, phi, 128);
  agent.limits.min_batch = 128;
  agent.limits.max_batch_total = 16384;
  agent.limits.max_batch_per_gpu = 1024;
  agent.max_gpus_cap = 8;
  return agent;
}

SchedJobReport MakeReport(uint64_t job_id, uint64_t seq, double phi = 1000.0) {
  SchedJobReport report;
  report.agent = MakeAgent(job_id, phi);
  report.gpu_time = static_cast<double>(seq) * 120.0;
  report.report_age = 0.0;
  report.seq = seq;
  return report;
}

TenantSetup MakeSetup(uint64_t tenant_id, SchedMode mode = SchedMode::kIncremental) {
  TenantSetup setup;
  setup.tenant_id = tenant_id;
  setup.cluster.gpus_per_node.assign(4, 4);
  setup.sched.ga.population_size = 16;
  setup.sched.ga.generations = 8;
  setup.sched.ga.seed = 7;
  setup.sched.mode = mode;
  return setup;
}

std::string TempDir(const char* name) {
  const auto dir = std::filesystem::temp_directory_path() /
                   (std::string("pollux_tenant_test_") + name);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

// Drives `rounds` epochs of a deterministic little workload.
void Drive(TenantDomain& domain, int rounds, int jobs = 6) {
  for (int j = 0; j < jobs; ++j) {
    domain.SubmitJob(MakeAgent(static_cast<uint64_t>(j) + 1, 800.0 + 100.0 * j), 0.0);
  }
  for (int r = 0; r < rounds; ++r) {
    for (int j = 0; j < jobs; ++j) {
      domain.Ingest(MakeReport(static_cast<uint64_t>(j) + 1, static_cast<uint64_t>(r) + 1,
                               800.0 + 100.0 * j));
    }
    RoundDecisions decisions;
    ASSERT_EQ(domain.RunRound(static_cast<uint64_t>(r), &decisions),
              TenantDomain::RoundStatus::kExecuted);
    EXPECT_EQ(decisions.round, static_cast<uint64_t>(r));
    EXPECT_FALSE(decisions.cached);
  }
}

TEST(TenantSetupTest, CodecRoundTrip) {
  TenantSetup setup = MakeSetup(42, SchedMode::kFirstMatch);
  setup.cluster.rack_of_node = {0, 0, 1, 1};
  setup.cluster.node_gpu_scale = {1.0, 1.0, 0.5, 0.5};
  setup.sched.queue_admission = true;
  setup.sched.lease_intervals = 3;
  BinWriter out;
  PutTenantSetup(out, setup);
  BinReader in(out.str());
  TenantSetup parsed;
  parsed.tenant_id = 42;
  ASSERT_TRUE(GetTenantSetup(in, &parsed));
  EXPECT_TRUE(in.AtEnd());
  BinWriter again;
  PutTenantSetup(again, parsed);
  EXPECT_EQ(out.str(), again.str());
  EXPECT_EQ(parsed.sched.mode, SchedMode::kFirstMatch);
  EXPECT_TRUE(parsed.sched.queue_admission);
}

TEST(TenantSetupTest, RejectsMalformedShapes) {
  // Empty cluster.
  {
    TenantSetup setup = MakeSetup(1);
    setup.cluster.gpus_per_node.clear();
    BinWriter out;
    PutTenantSetup(out, setup);
    BinReader in(out.str());
    TenantSetup parsed;
    EXPECT_FALSE(GetTenantSetup(in, &parsed));
  }
  // Mismatched rack annotation length.
  {
    TenantSetup setup = MakeSetup(1);
    setup.cluster.rack_of_node = {0};
    BinWriter out;
    PutTenantSetup(out, setup);
    BinReader in(out.str());
    TenantSetup parsed;
    EXPECT_FALSE(GetTenantSetup(in, &parsed));
  }
  // Truncation at every prefix must fail cleanly, never crash.
  {
    BinWriter out;
    PutTenantSetup(out, MakeSetup(1));
    const std::string full = out.str();
    for (size_t len = 0; len < full.size(); len += 3) {
      const std::string prefix = full.substr(0, len);
      BinReader in(prefix);
      TenantSetup parsed;
      EXPECT_FALSE(GetTenantSetup(in, &parsed) && in.AtEnd()) << "prefix " << len;
    }
  }
}

TEST(TenantDomainTest, RoundIdempotency) {
  TenantDomain domain(MakeSetup(1));
  Drive(domain, 3);
  // Replay of the last executed round: cached, identical rows, no state step.
  RoundDecisions replay;
  ASSERT_EQ(domain.RunRound(2, &replay), TenantDomain::RoundStatus::kCached);
  EXPECT_TRUE(replay.cached);
  EXPECT_EQ(replay.round, 2u);
  EXPECT_EQ(domain.next_round(), 3u);
  EXPECT_EQ(domain.rounds(), 3u);
  // Too old or too new: refused.
  RoundDecisions decisions;
  EXPECT_EQ(domain.RunRound(1, &decisions), TenantDomain::RoundStatus::kBadRound);
  EXPECT_EQ(domain.RunRound(4, &decisions), TenantDomain::RoundStatus::kBadRound);
  // The next round proceeds normally afterwards.
  EXPECT_EQ(domain.RunRound(3, &decisions), TenantDomain::RoundStatus::kExecuted);
}

TEST(TenantDomainTest, IngestIsDaemonAuthoritativeForAllocations) {
  TenantDomain domain(MakeSetup(1));
  domain.SubmitJob(MakeAgent(1), 0.0);
  SchedJobReport hostile = MakeReport(1, 1);
  hostile.current_allocation = {4, 4, 4, 4};  // client claims the whole cluster
  ASSERT_TRUE(domain.Ingest(hostile));
  RoundDecisions decisions;
  ASSERT_EQ(domain.RunRound(0, &decisions), TenantDomain::RoundStatus::kExecuted);
  // The scheduler saw the job as queued (no allocation), not as owning 16
  // GPUs: whatever it decided fits the 4x4 cluster.
  EXPECT_TRUE(PolluxSched::AllocationsFeasible(domain.setup().cluster, decisions.rows));
  // Unknown jobs are rejected and counted.
  EXPECT_FALSE(domain.Ingest(MakeReport(99, 1)));
  EXPECT_EQ(domain.reports_rejected(), 1u);
}

TEST(TenantDomainTest, SnapshotRoundTripsByteIdentically) {
  for (SchedMode mode :
       {SchedMode::kExact, SchedMode::kIncremental, SchedMode::kFirstMatch}) {
    TenantDomain domain(MakeSetup(9, mode));
    Drive(domain, 3);
    const std::string snapshot = domain.EncodeSnapshot();
    std::string error;
    auto restored = TenantDomain::FromSnapshot(snapshot, &error);
    ASSERT_NE(restored, nullptr) << error;
    EXPECT_EQ(restored->EncodeSnapshot(), snapshot) << SchedModeName(mode);
    // The restored domain replays the cached round and then continues with
    // decisions identical to the original.
    RoundDecisions from_original, from_restored;
    ASSERT_EQ(restored->RunRound(2, &from_restored), TenantDomain::RoundStatus::kCached);
    ASSERT_EQ(domain.RunRound(2, &from_original), TenantDomain::RoundStatus::kCached);
    EXPECT_EQ(from_restored.rows, from_original.rows);
    for (int j = 0; j < 6; ++j) {
      domain.Ingest(MakeReport(static_cast<uint64_t>(j) + 1, 4, 800.0 + 100.0 * j));
      restored->Ingest(MakeReport(static_cast<uint64_t>(j) + 1, 4, 800.0 + 100.0 * j));
    }
    ASSERT_EQ(domain.RunRound(3, &from_original), TenantDomain::RoundStatus::kExecuted);
    ASSERT_EQ(restored->RunRound(3, &from_restored), TenantDomain::RoundStatus::kExecuted);
    EXPECT_EQ(from_restored.rows, from_original.rows) << SchedModeName(mode);
    EXPECT_EQ(restored->EncodeSnapshot(), domain.EncodeSnapshot());
  }
}

TEST(TenantDomainTest, MalformedSnapshotsRejectedCleanly) {
  TenantDomain domain(MakeSetup(2));
  Drive(domain, 2);
  const std::string snapshot = domain.EncodeSnapshot();
  std::string error;
  // Wrong version word.
  {
    std::string bytes = snapshot;
    bytes[0] = static_cast<char>(0x7f);
    EXPECT_EQ(TenantDomain::FromSnapshot(bytes, &error), nullptr);
  }
  // Truncations (every 97 bytes keeps the test fast) and trailing garbage.
  for (size_t len = 0; len < snapshot.size(); len += 97) {
    EXPECT_EQ(TenantDomain::FromSnapshot(snapshot.substr(0, len), &error), nullptr)
        << "prefix " << len;
  }
  EXPECT_EQ(TenantDomain::FromSnapshot(snapshot + "extra", &error), nullptr);
}

TEST(TenantDomainTest, CheckpointRestoreNewestFallsBackPastCorruption) {
  const std::string dir = TempDir("ckpt");
  TenantDomain domain(MakeSetup(3));
  Drive(domain, 2);
  std::string error;
  ASSERT_TRUE(domain.SaveCheckpoint(dir, /*keep=*/8, &error)) << error;
  const std::string good = domain.EncodeSnapshot();

  // Advance and checkpoint again, then corrupt the newest file.
  for (int j = 0; j < 6; ++j) {
    domain.Ingest(MakeReport(static_cast<uint64_t>(j) + 1, 3, 800.0 + 100.0 * j));
  }
  RoundDecisions decisions;
  ASSERT_EQ(domain.RunRound(2, &decisions), TenantDomain::RoundStatus::kExecuted);
  ASSERT_TRUE(domain.SaveCheckpoint(dir, 8, &error)) << error;
  auto files = ListSnapshotFiles(dir);
  ASSERT_EQ(files.size(), 2u);
  {
    std::ofstream out(files.back(), std::ios::binary | std::ios::trunc);
    out << "torn";
  }
  auto restored = TenantDomain::RestoreNewest(dir, &error);
  ASSERT_NE(restored, nullptr) << error;
  EXPECT_EQ(restored->EncodeSnapshot(), good);  // fell back to the older file
  EXPECT_EQ(restored->next_round(), 2u);

  std::filesystem::remove_all(dir);
}

TEST(TenantDomainTest, CheckpointPruneKeepsNewest) {
  const std::string dir = TempDir("prune");
  TenantDomain domain(MakeSetup(4));
  Drive(domain, 4);
  std::string error;
  // One checkpoint per round boundary; keep=2 must prune to the newest two.
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 6; ++j) {
      domain.Ingest(
          MakeReport(static_cast<uint64_t>(j) + 1, static_cast<uint64_t>(i) + 5));
    }
    RoundDecisions decisions;
    ASSERT_EQ(domain.RunRound(4 + static_cast<uint64_t>(i), &decisions),
              TenantDomain::RoundStatus::kExecuted);
    ASSERT_TRUE(domain.SaveCheckpoint(dir, /*keep=*/2, &error)) << error;
  }
  EXPECT_EQ(ListSnapshotFiles(dir).size(), 2u);
  auto restored = TenantDomain::RestoreNewest(dir, &error);
  ASSERT_NE(restored, nullptr) << error;
  EXPECT_EQ(restored->next_round(), domain.next_round());
  std::filesystem::remove_all(dir);
}

TEST(TenantDomainTest, DecisionsPayloadRoundTrip) {
  RoundDecisions decisions;
  decisions.round = 17;
  decisions.degraded = true;
  decisions.cached = true;
  decisions.utility = 3.25;
  decisions.rows[5] = {1, 0, 2};
  decisions.rows[9] = {};
  const std::string payload = EncodeDecisionsPayload(decisions);
  RoundDecisions parsed;
  ASSERT_TRUE(DecodeDecisionsPayload(payload, &parsed));
  EXPECT_EQ(parsed.round, 17u);
  EXPECT_TRUE(parsed.degraded);
  EXPECT_TRUE(parsed.cached);
  EXPECT_EQ(parsed.utility, 3.25);
  EXPECT_EQ(parsed.rows, decisions.rows);
  EXPECT_FALSE(DecodeDecisionsPayload(payload.substr(0, payload.size() - 1), &parsed));
  EXPECT_FALSE(DecodeDecisionsPayload(payload + "x", &parsed));
}

}  // namespace
}  // namespace service
}  // namespace pollux
