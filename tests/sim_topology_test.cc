// Simulator-level topology coverage (DESIGN.md sec. 14): heterogeneous runs
// are deterministic, the topology-blind A/B arm still completes every job,
// snapshot v3 round-trips the topology section bit-exactly, resumed
// heterogeneous runs match uninterrupted ones, and malformed cluster-shape
// flags exit with the usage code.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/common.h"
#include "sim/checkpoint.h"
#include "sim/pollux_policy.h"
#include "sim/simulator.h"
#include "workload/trace_gen.h"

namespace pollux {
namespace {

BenchSimConfig TopologyConfig(uint64_t seed) {
  BenchSimConfig config;
  config.nodes = 4;
  config.gpus_per_node = 4;
  config.racks = 2;  // 2 racks x 2 nodes.
  config.rack_link_factor = 2.5;
  config.gpu_mix = "a100:0.5,t4:0.5";
  config.sync_heavy_fraction = 0.5;
  config.jobs = 10;
  config.duration_hours = 0.5;
  config.ga_population = 12;
  config.ga_generations = 6;
  config.seed = seed;
  config.check_invariants = true;
  return config;
}

// Exact textual fingerprint of a run (full double precision); equal
// fingerprints imply byte-identical exported CSVs.
std::string FormatResult(const SimResult& result) {
  std::ostringstream out;
  out.precision(17);
  out << "makespan=" << result.makespan << " node_seconds=" << result.node_seconds << '\n';
  for (const auto& job : result.jobs) {
    out << job.job_id << ' ' << job.submit_time << ' ' << job.start_time << ' '
        << job.finish_time << ' ' << job.gpu_time << ' ' << job.num_restarts << ' '
        << job.avg_efficiency << ' ' << job.avg_throughput << ' ' << job.avg_goodput << ' '
        << job.completed << '\n';
  }
  for (const auto& event : result.events) {
    out << event.time << ' ' << static_cast<int>(event.kind) << ' ' << event.job_id << ' '
        << event.gpus << ' ' << event.nodes << '\n';
  }
  return out.str();
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string FreshDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/pollux_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(SimTopologyTest, HeterogeneousRunIsDeterministic) {
  for (SimEngine engine : {SimEngine::kEvent, SimEngine::kTicked}) {
    BenchSimConfig config = TopologyConfig(11);
    config.engine = engine;
    const SimResult first = RunBenchPolicy("pollux", config);
    const SimResult second = RunBenchPolicy("pollux", config);
    EXPECT_EQ(FormatResult(first), FormatResult(second));
    EXPECT_FALSE(first.jobs.empty());
  }
}

TEST(SimTopologyTest, BlindArmCompletesEveryJob) {
  BenchSimConfig config = TopologyConfig(12);
  config.topology_blind = true;
  const SimResult blind = RunBenchPolicy("pollux", config);
  config.topology_blind = false;
  const SimResult aware = RunBenchPolicy("pollux", config);
  ASSERT_EQ(blind.jobs.size(), aware.jobs.size());
  for (const auto& job : blind.jobs) {
    EXPECT_TRUE(job.completed) << job.job_id;
  }
  for (const auto& job : aware.jobs) {
    EXPECT_TRUE(job.completed) << job.job_id;
  }
}

TEST(SimTopologyTest, SnapshotV3RoundTripsTopologySection) {
  const uint64_t seed = 13;
  const BenchSimConfig config = TopologyConfig(seed);
  const std::vector<JobSpec> trace = MakeBenchTrace(config);
  const std::string dir = FreshDir("topology_roundtrip");
  std::filesystem::create_directories(dir);

  SimOptions options = SimOptionsFromBenchConfig(config);
  ASSERT_TRUE(options.cluster.HasTopology());
  options.checkpoint_every = 300.0;
  options.checkpoint_dir = dir;
  options.halt_after_checkpoint = 300.0;
  {
    PolluxPolicy policy(options.cluster, SchedConfigFromBenchConfig(config));
    ASSERT_TRUE(Simulator(options, trace, &policy).Run().halted);
  }
  std::string error;
  const std::string path = ResolveSnapshotPath(dir, &error);
  ASSERT_FALSE(path.empty()) << error;

  SimOptions resume_options = options;
  resume_options.checkpoint_every = 0.0;
  resume_options.checkpoint_dir.clear();
  resume_options.halt_after_checkpoint = 0.0;
  PolluxPolicy policy(options.cluster, SchedConfigFromBenchConfig(config));
  Simulator sim(resume_options, trace, &policy);
  ASSERT_TRUE(sim.LoadSnapshot(path, &error)) << error;
  const std::string resaved = dir + "/resaved.bin";
  ASSERT_TRUE(sim.SaveSnapshot(resaved, &error)) << error;
  EXPECT_EQ(ReadFileBytes(resaved), ReadFileBytes(path));
  std::filesystem::remove_all(dir);
}

TEST(SimTopologyTest, HeterogeneousResumeMatchesUninterruptedRun) {
  const uint64_t seed = 14;
  const BenchSimConfig config = TopologyConfig(seed);
  const std::vector<JobSpec> trace = MakeBenchTrace(config);

  const SimResult full = RunImportedTrace("pollux", config, trace);
  ASSERT_FALSE(full.halted);

  const std::string dir = FreshDir("topology_resume");
  BenchSimConfig halted_config = config;
  halted_config.checkpoint_every = 300.0;
  halted_config.checkpoint_dir = dir;
  halted_config.halt_after_checkpoint = 600.0;
  ASSERT_TRUE(RunImportedTrace("pollux", halted_config, trace).halted);
  ASSERT_FALSE(ListSnapshotFiles(dir).empty());

  SimResult resumed;
  std::string policy;
  std::string error;
  ASSERT_TRUE(ResumeBenchFromSnapshot(dir, BenchResumeOptions{}, &resumed, &policy, &error))
      << error;
  EXPECT_EQ(policy, "pollux");
  EXPECT_EQ(FormatResult(resumed), FormatResult(full));
  std::filesystem::remove_all(dir);
}

// --------------------------------------------------------------------------
// Cluster-shape flag validation: malformed shapes exit with kExitUsage (2)
// from ConfigFromFlags, shared by pollux_simulate and every bench binary.
// --------------------------------------------------------------------------

void ParseAndBuildConfig(const char* flag) {
  FlagParser flags;
  AddCommonFlags(flags);
  std::string arg(flag);
  char prog[] = "bench_under_test";
  char* argv[] = {prog, arg.data()};
  if (!flags.Parse(2, argv)) {
    std::exit(kExitRuntime);  // Parse failures are not the exit we assert on.
  }
  ConfigFromFlags(flags);
  std::exit(kExitOk);  // Config accepted.
}

using SimTopologyFlagDeathTest = ::testing::Test;

TEST(SimTopologyFlagDeathTest, MalformedClusterShapesExitWithUsageCode) {
  for (const char* flag :
       {"--nodes=0", "--nodes=-4", "--gpus_per_node=0", "--gpus_per_node=-1",
        "--topology=bogus", "--topology=0x4", "--gpu-mix=h100:1.0", "--gpu-mix=t4:0.5",
        "--rack-link-factor=0.5", "--sync-heavy=1.5"}) {
    EXPECT_EXIT(ParseAndBuildConfig(flag), ::testing::ExitedWithCode(kExitUsage), "") << flag;
  }
}

TEST(SimTopologyFlagDeathTest, WellFormedShapesAreAccepted) {
  for (const char* flag :
       {"--nodes=8", "--topology=2x4", "--gpu-mix=a100:0.25,t4:0.75", "--rack-link-factor=3",
        "--sync-heavy=0.5"}) {
    EXPECT_EXIT(ParseAndBuildConfig(flag), ::testing::ExitedWithCode(kExitOk), "") << flag;
  }
}

}  // namespace
}  // namespace pollux
