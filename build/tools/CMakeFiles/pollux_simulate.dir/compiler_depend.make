# Empty compiler generated dependencies file for pollux_simulate.
# This may be replaced when dependencies are built.
