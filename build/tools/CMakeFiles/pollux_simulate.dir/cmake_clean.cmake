file(REMOVE_RECURSE
  "CMakeFiles/pollux_simulate.dir/pollux_simulate.cc.o"
  "CMakeFiles/pollux_simulate.dir/pollux_simulate.cc.o.d"
  "pollux_simulate"
  "pollux_simulate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pollux_simulate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
