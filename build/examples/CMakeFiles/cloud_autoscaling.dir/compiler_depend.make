# Empty compiler generated dependencies file for cloud_autoscaling.
# This may be replaced when dependencies are built.
