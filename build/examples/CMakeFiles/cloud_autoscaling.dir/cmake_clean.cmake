file(REMOVE_RECURSE
  "CMakeFiles/cloud_autoscaling.dir/cloud_autoscaling.cpp.o"
  "CMakeFiles/cloud_autoscaling.dir/cloud_autoscaling.cpp.o.d"
  "cloud_autoscaling"
  "cloud_autoscaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloud_autoscaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
