
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/adaptive_training.cpp" "examples/CMakeFiles/adaptive_training.dir/adaptive_training.cpp.o" "gcc" "examples/CMakeFiles/adaptive_training.dir/adaptive_training.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baselines/CMakeFiles/pollux_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/minidl/CMakeFiles/pollux_minidl.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pollux_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/pollux_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pollux_core.dir/DependInfo.cmake"
  "/root/repo/build/src/optim/CMakeFiles/pollux_optim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pollux_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
