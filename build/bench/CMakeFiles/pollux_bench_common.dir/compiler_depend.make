# Empty compiler generated dependencies file for pollux_bench_common.
# This may be replaced when dependencies are built.
