file(REMOVE_RECURSE
  "CMakeFiles/pollux_bench_common.dir/common.cc.o"
  "CMakeFiles/pollux_bench_common.dir/common.cc.o.d"
  "libpollux_bench_common.a"
  "libpollux_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pollux_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
