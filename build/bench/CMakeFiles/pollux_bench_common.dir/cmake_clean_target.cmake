file(REMOVE_RECURSE
  "libpollux_bench_common.a"
)
