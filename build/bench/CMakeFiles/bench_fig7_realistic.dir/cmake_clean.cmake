file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_realistic.dir/bench_fig7_realistic.cc.o"
  "CMakeFiles/bench_fig7_realistic.dir/bench_fig7_realistic.cc.o.d"
  "bench_fig7_realistic"
  "bench_fig7_realistic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_realistic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
