# Empty dependencies file for bench_fig7_realistic.
# This may be replaced when dependencies are built.
