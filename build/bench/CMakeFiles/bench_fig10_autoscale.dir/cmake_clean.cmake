file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_autoscale.dir/bench_fig10_autoscale.cc.o"
  "CMakeFiles/bench_fig10_autoscale.dir/bench_fig10_autoscale.cc.o.d"
  "bench_fig10_autoscale"
  "bench_fig10_autoscale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_autoscale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
