file(REMOVE_RECURSE
  "CMakeFiles/bench_fidelity.dir/bench_fidelity.cc.o"
  "CMakeFiles/bench_fidelity.dir/bench_fidelity.cc.o.d"
  "bench_fidelity"
  "bench_fidelity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fidelity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
