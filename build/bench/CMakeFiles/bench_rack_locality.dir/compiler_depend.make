# Empty compiler generated dependencies file for bench_rack_locality.
# This may be replaced when dependencies are built.
