file(REMOVE_RECURSE
  "CMakeFiles/bench_rack_locality.dir/bench_rack_locality.cc.o"
  "CMakeFiles/bench_rack_locality.dir/bench_rack_locality.cc.o.d"
  "bench_rack_locality"
  "bench_rack_locality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rack_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
