file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_testbed.dir/bench_table2_testbed.cc.o"
  "CMakeFiles/bench_table2_testbed.dir/bench_table2_testbed.cc.o.d"
  "bench_table2_testbed"
  "bench_table2_testbed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
