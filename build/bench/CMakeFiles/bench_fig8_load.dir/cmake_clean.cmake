file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_load.dir/bench_fig8_load.cc.o"
  "CMakeFiles/bench_fig8_load.dir/bench_fig8_load.cc.o.d"
  "bench_fig8_load"
  "bench_fig8_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
