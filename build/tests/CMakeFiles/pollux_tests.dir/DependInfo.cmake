
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/baselines_fifo_test.cc" "tests/CMakeFiles/pollux_tests.dir/baselines_fifo_test.cc.o" "gcc" "tests/CMakeFiles/pollux_tests.dir/baselines_fifo_test.cc.o.d"
  "/root/repo/tests/baselines_test.cc" "tests/CMakeFiles/pollux_tests.dir/baselines_test.cc.o" "gcc" "tests/CMakeFiles/pollux_tests.dir/baselines_test.cc.o.d"
  "/root/repo/tests/core_adascale_test.cc" "tests/CMakeFiles/pollux_tests.dir/core_adascale_test.cc.o" "gcc" "tests/CMakeFiles/pollux_tests.dir/core_adascale_test.cc.o.d"
  "/root/repo/tests/core_agent_test.cc" "tests/CMakeFiles/pollux_tests.dir/core_agent_test.cc.o" "gcc" "tests/CMakeFiles/pollux_tests.dir/core_agent_test.cc.o.d"
  "/root/repo/tests/core_allocation_test.cc" "tests/CMakeFiles/pollux_tests.dir/core_allocation_test.cc.o" "gcc" "tests/CMakeFiles/pollux_tests.dir/core_allocation_test.cc.o.d"
  "/root/repo/tests/core_autoscaler_test.cc" "tests/CMakeFiles/pollux_tests.dir/core_autoscaler_test.cc.o" "gcc" "tests/CMakeFiles/pollux_tests.dir/core_autoscaler_test.cc.o.d"
  "/root/repo/tests/core_efficiency_test.cc" "tests/CMakeFiles/pollux_tests.dir/core_efficiency_test.cc.o" "gcc" "tests/CMakeFiles/pollux_tests.dir/core_efficiency_test.cc.o.d"
  "/root/repo/tests/core_fitness_test.cc" "tests/CMakeFiles/pollux_tests.dir/core_fitness_test.cc.o" "gcc" "tests/CMakeFiles/pollux_tests.dir/core_fitness_test.cc.o.d"
  "/root/repo/tests/core_genetic_test.cc" "tests/CMakeFiles/pollux_tests.dir/core_genetic_test.cc.o" "gcc" "tests/CMakeFiles/pollux_tests.dir/core_genetic_test.cc.o.d"
  "/root/repo/tests/core_gns_test.cc" "tests/CMakeFiles/pollux_tests.dir/core_gns_test.cc.o" "gcc" "tests/CMakeFiles/pollux_tests.dir/core_gns_test.cc.o.d"
  "/root/repo/tests/core_goodput_test.cc" "tests/CMakeFiles/pollux_tests.dir/core_goodput_test.cc.o" "gcc" "tests/CMakeFiles/pollux_tests.dir/core_goodput_test.cc.o.d"
  "/root/repo/tests/core_model_fitter_test.cc" "tests/CMakeFiles/pollux_tests.dir/core_model_fitter_test.cc.o" "gcc" "tests/CMakeFiles/pollux_tests.dir/core_model_fitter_test.cc.o.d"
  "/root/repo/tests/core_rack_model_test.cc" "tests/CMakeFiles/pollux_tests.dir/core_rack_model_test.cc.o" "gcc" "tests/CMakeFiles/pollux_tests.dir/core_rack_model_test.cc.o.d"
  "/root/repo/tests/core_sched_test.cc" "tests/CMakeFiles/pollux_tests.dir/core_sched_test.cc.o" "gcc" "tests/CMakeFiles/pollux_tests.dir/core_sched_test.cc.o.d"
  "/root/repo/tests/core_session_test.cc" "tests/CMakeFiles/pollux_tests.dir/core_session_test.cc.o" "gcc" "tests/CMakeFiles/pollux_tests.dir/core_session_test.cc.o.d"
  "/root/repo/tests/core_speedup_table_interp_test.cc" "tests/CMakeFiles/pollux_tests.dir/core_speedup_table_interp_test.cc.o" "gcc" "tests/CMakeFiles/pollux_tests.dir/core_speedup_table_interp_test.cc.o.d"
  "/root/repo/tests/core_throughput_model_test.cc" "tests/CMakeFiles/pollux_tests.dir/core_throughput_model_test.cc.o" "gcc" "tests/CMakeFiles/pollux_tests.dir/core_throughput_model_test.cc.o.d"
  "/root/repo/tests/minidl_optimizer_test.cc" "tests/CMakeFiles/pollux_tests.dir/minidl_optimizer_test.cc.o" "gcc" "tests/CMakeFiles/pollux_tests.dir/minidl_optimizer_test.cc.o.d"
  "/root/repo/tests/minidl_test.cc" "tests/CMakeFiles/pollux_tests.dir/minidl_test.cc.o" "gcc" "tests/CMakeFiles/pollux_tests.dir/minidl_test.cc.o.d"
  "/root/repo/tests/optim_golden_section_test.cc" "tests/CMakeFiles/pollux_tests.dir/optim_golden_section_test.cc.o" "gcc" "tests/CMakeFiles/pollux_tests.dir/optim_golden_section_test.cc.o.d"
  "/root/repo/tests/optim_lbfgsb_test.cc" "tests/CMakeFiles/pollux_tests.dir/optim_lbfgsb_test.cc.o" "gcc" "tests/CMakeFiles/pollux_tests.dir/optim_lbfgsb_test.cc.o.d"
  "/root/repo/tests/sim_autoscale_test.cc" "tests/CMakeFiles/pollux_tests.dir/sim_autoscale_test.cc.o" "gcc" "tests/CMakeFiles/pollux_tests.dir/sim_autoscale_test.cc.o.d"
  "/root/repo/tests/sim_events_test.cc" "tests/CMakeFiles/pollux_tests.dir/sim_events_test.cc.o" "gcc" "tests/CMakeFiles/pollux_tests.dir/sim_events_test.cc.o.d"
  "/root/repo/tests/sim_integration_test.cc" "tests/CMakeFiles/pollux_tests.dir/sim_integration_test.cc.o" "gcc" "tests/CMakeFiles/pollux_tests.dir/sim_integration_test.cc.o.d"
  "/root/repo/tests/sim_placement_test.cc" "tests/CMakeFiles/pollux_tests.dir/sim_placement_test.cc.o" "gcc" "tests/CMakeFiles/pollux_tests.dir/sim_placement_test.cc.o.d"
  "/root/repo/tests/sim_property_test.cc" "tests/CMakeFiles/pollux_tests.dir/sim_property_test.cc.o" "gcc" "tests/CMakeFiles/pollux_tests.dir/sim_property_test.cc.o.d"
  "/root/repo/tests/sim_simulator_test.cc" "tests/CMakeFiles/pollux_tests.dir/sim_simulator_test.cc.o" "gcc" "tests/CMakeFiles/pollux_tests.dir/sim_simulator_test.cc.o.d"
  "/root/repo/tests/util_csv_test.cc" "tests/CMakeFiles/pollux_tests.dir/util_csv_test.cc.o" "gcc" "tests/CMakeFiles/pollux_tests.dir/util_csv_test.cc.o.d"
  "/root/repo/tests/util_flags_test.cc" "tests/CMakeFiles/pollux_tests.dir/util_flags_test.cc.o" "gcc" "tests/CMakeFiles/pollux_tests.dir/util_flags_test.cc.o.d"
  "/root/repo/tests/util_logging_test.cc" "tests/CMakeFiles/pollux_tests.dir/util_logging_test.cc.o" "gcc" "tests/CMakeFiles/pollux_tests.dir/util_logging_test.cc.o.d"
  "/root/repo/tests/util_rng_test.cc" "tests/CMakeFiles/pollux_tests.dir/util_rng_test.cc.o" "gcc" "tests/CMakeFiles/pollux_tests.dir/util_rng_test.cc.o.d"
  "/root/repo/tests/util_stats_test.cc" "tests/CMakeFiles/pollux_tests.dir/util_stats_test.cc.o" "gcc" "tests/CMakeFiles/pollux_tests.dir/util_stats_test.cc.o.d"
  "/root/repo/tests/workload_model_profile_test.cc" "tests/CMakeFiles/pollux_tests.dir/workload_model_profile_test.cc.o" "gcc" "tests/CMakeFiles/pollux_tests.dir/workload_model_profile_test.cc.o.d"
  "/root/repo/tests/workload_trace_gen_test.cc" "tests/CMakeFiles/pollux_tests.dir/workload_trace_gen_test.cc.o" "gcc" "tests/CMakeFiles/pollux_tests.dir/workload_trace_gen_test.cc.o.d"
  "/root/repo/tests/workload_trace_io_test.cc" "tests/CMakeFiles/pollux_tests.dir/workload_trace_io_test.cc.o" "gcc" "tests/CMakeFiles/pollux_tests.dir/workload_trace_io_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baselines/CMakeFiles/pollux_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pollux_core.dir/DependInfo.cmake"
  "/root/repo/build/src/minidl/CMakeFiles/pollux_minidl.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pollux_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/pollux_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/optim/CMakeFiles/pollux_optim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pollux_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
