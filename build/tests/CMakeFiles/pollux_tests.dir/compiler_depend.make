# Empty compiler generated dependencies file for pollux_tests.
# This may be replaced when dependencies are built.
