# Empty dependencies file for pollux_sim.
# This may be replaced when dependencies are built.
