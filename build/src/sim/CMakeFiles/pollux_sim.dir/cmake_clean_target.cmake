file(REMOVE_RECURSE
  "libpollux_sim.a"
)
