file(REMOVE_RECURSE
  "CMakeFiles/pollux_sim.dir/autoscale.cc.o"
  "CMakeFiles/pollux_sim.dir/autoscale.cc.o.d"
  "CMakeFiles/pollux_sim.dir/placement.cc.o"
  "CMakeFiles/pollux_sim.dir/placement.cc.o.d"
  "CMakeFiles/pollux_sim.dir/pollux_policy.cc.o"
  "CMakeFiles/pollux_sim.dir/pollux_policy.cc.o.d"
  "CMakeFiles/pollux_sim.dir/simulator.cc.o"
  "CMakeFiles/pollux_sim.dir/simulator.cc.o.d"
  "libpollux_sim.a"
  "libpollux_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pollux_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
