file(REMOVE_RECURSE
  "CMakeFiles/pollux_optim.dir/golden_section.cc.o"
  "CMakeFiles/pollux_optim.dir/golden_section.cc.o.d"
  "CMakeFiles/pollux_optim.dir/lbfgsb.cc.o"
  "CMakeFiles/pollux_optim.dir/lbfgsb.cc.o.d"
  "libpollux_optim.a"
  "libpollux_optim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pollux_optim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
