# Empty compiler generated dependencies file for pollux_optim.
# This may be replaced when dependencies are built.
