
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/optim/golden_section.cc" "src/optim/CMakeFiles/pollux_optim.dir/golden_section.cc.o" "gcc" "src/optim/CMakeFiles/pollux_optim.dir/golden_section.cc.o.d"
  "/root/repo/src/optim/lbfgsb.cc" "src/optim/CMakeFiles/pollux_optim.dir/lbfgsb.cc.o" "gcc" "src/optim/CMakeFiles/pollux_optim.dir/lbfgsb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/pollux_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
