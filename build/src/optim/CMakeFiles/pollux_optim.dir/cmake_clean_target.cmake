file(REMOVE_RECURSE
  "libpollux_optim.a"
)
