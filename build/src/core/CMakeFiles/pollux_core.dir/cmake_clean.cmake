file(REMOVE_RECURSE
  "CMakeFiles/pollux_core.dir/adascale.cc.o"
  "CMakeFiles/pollux_core.dir/adascale.cc.o.d"
  "CMakeFiles/pollux_core.dir/agent.cc.o"
  "CMakeFiles/pollux_core.dir/agent.cc.o.d"
  "CMakeFiles/pollux_core.dir/allocation.cc.o"
  "CMakeFiles/pollux_core.dir/allocation.cc.o.d"
  "CMakeFiles/pollux_core.dir/autoscaler.cc.o"
  "CMakeFiles/pollux_core.dir/autoscaler.cc.o.d"
  "CMakeFiles/pollux_core.dir/efficiency.cc.o"
  "CMakeFiles/pollux_core.dir/efficiency.cc.o.d"
  "CMakeFiles/pollux_core.dir/fitness.cc.o"
  "CMakeFiles/pollux_core.dir/fitness.cc.o.d"
  "CMakeFiles/pollux_core.dir/genetic.cc.o"
  "CMakeFiles/pollux_core.dir/genetic.cc.o.d"
  "CMakeFiles/pollux_core.dir/gns.cc.o"
  "CMakeFiles/pollux_core.dir/gns.cc.o.d"
  "CMakeFiles/pollux_core.dir/goodput.cc.o"
  "CMakeFiles/pollux_core.dir/goodput.cc.o.d"
  "CMakeFiles/pollux_core.dir/model_fitter.cc.o"
  "CMakeFiles/pollux_core.dir/model_fitter.cc.o.d"
  "CMakeFiles/pollux_core.dir/rack_model.cc.o"
  "CMakeFiles/pollux_core.dir/rack_model.cc.o.d"
  "CMakeFiles/pollux_core.dir/sched.cc.o"
  "CMakeFiles/pollux_core.dir/sched.cc.o.d"
  "CMakeFiles/pollux_core.dir/session.cc.o"
  "CMakeFiles/pollux_core.dir/session.cc.o.d"
  "CMakeFiles/pollux_core.dir/speedup_table.cc.o"
  "CMakeFiles/pollux_core.dir/speedup_table.cc.o.d"
  "CMakeFiles/pollux_core.dir/throughput_model.cc.o"
  "CMakeFiles/pollux_core.dir/throughput_model.cc.o.d"
  "libpollux_core.a"
  "libpollux_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pollux_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
