# Empty dependencies file for pollux_core.
# This may be replaced when dependencies are built.
