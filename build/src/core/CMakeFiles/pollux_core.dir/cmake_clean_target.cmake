file(REMOVE_RECURSE
  "libpollux_core.a"
)
