
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adascale.cc" "src/core/CMakeFiles/pollux_core.dir/adascale.cc.o" "gcc" "src/core/CMakeFiles/pollux_core.dir/adascale.cc.o.d"
  "/root/repo/src/core/agent.cc" "src/core/CMakeFiles/pollux_core.dir/agent.cc.o" "gcc" "src/core/CMakeFiles/pollux_core.dir/agent.cc.o.d"
  "/root/repo/src/core/allocation.cc" "src/core/CMakeFiles/pollux_core.dir/allocation.cc.o" "gcc" "src/core/CMakeFiles/pollux_core.dir/allocation.cc.o.d"
  "/root/repo/src/core/autoscaler.cc" "src/core/CMakeFiles/pollux_core.dir/autoscaler.cc.o" "gcc" "src/core/CMakeFiles/pollux_core.dir/autoscaler.cc.o.d"
  "/root/repo/src/core/efficiency.cc" "src/core/CMakeFiles/pollux_core.dir/efficiency.cc.o" "gcc" "src/core/CMakeFiles/pollux_core.dir/efficiency.cc.o.d"
  "/root/repo/src/core/fitness.cc" "src/core/CMakeFiles/pollux_core.dir/fitness.cc.o" "gcc" "src/core/CMakeFiles/pollux_core.dir/fitness.cc.o.d"
  "/root/repo/src/core/genetic.cc" "src/core/CMakeFiles/pollux_core.dir/genetic.cc.o" "gcc" "src/core/CMakeFiles/pollux_core.dir/genetic.cc.o.d"
  "/root/repo/src/core/gns.cc" "src/core/CMakeFiles/pollux_core.dir/gns.cc.o" "gcc" "src/core/CMakeFiles/pollux_core.dir/gns.cc.o.d"
  "/root/repo/src/core/goodput.cc" "src/core/CMakeFiles/pollux_core.dir/goodput.cc.o" "gcc" "src/core/CMakeFiles/pollux_core.dir/goodput.cc.o.d"
  "/root/repo/src/core/model_fitter.cc" "src/core/CMakeFiles/pollux_core.dir/model_fitter.cc.o" "gcc" "src/core/CMakeFiles/pollux_core.dir/model_fitter.cc.o.d"
  "/root/repo/src/core/rack_model.cc" "src/core/CMakeFiles/pollux_core.dir/rack_model.cc.o" "gcc" "src/core/CMakeFiles/pollux_core.dir/rack_model.cc.o.d"
  "/root/repo/src/core/sched.cc" "src/core/CMakeFiles/pollux_core.dir/sched.cc.o" "gcc" "src/core/CMakeFiles/pollux_core.dir/sched.cc.o.d"
  "/root/repo/src/core/session.cc" "src/core/CMakeFiles/pollux_core.dir/session.cc.o" "gcc" "src/core/CMakeFiles/pollux_core.dir/session.cc.o.d"
  "/root/repo/src/core/speedup_table.cc" "src/core/CMakeFiles/pollux_core.dir/speedup_table.cc.o" "gcc" "src/core/CMakeFiles/pollux_core.dir/speedup_table.cc.o.d"
  "/root/repo/src/core/throughput_model.cc" "src/core/CMakeFiles/pollux_core.dir/throughput_model.cc.o" "gcc" "src/core/CMakeFiles/pollux_core.dir/throughput_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/optim/CMakeFiles/pollux_optim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pollux_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
