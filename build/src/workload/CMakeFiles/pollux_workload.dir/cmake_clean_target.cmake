file(REMOVE_RECURSE
  "libpollux_workload.a"
)
