file(REMOVE_RECURSE
  "CMakeFiles/pollux_workload.dir/model_profile.cc.o"
  "CMakeFiles/pollux_workload.dir/model_profile.cc.o.d"
  "CMakeFiles/pollux_workload.dir/trace_gen.cc.o"
  "CMakeFiles/pollux_workload.dir/trace_gen.cc.o.d"
  "CMakeFiles/pollux_workload.dir/trace_io.cc.o"
  "CMakeFiles/pollux_workload.dir/trace_io.cc.o.d"
  "libpollux_workload.a"
  "libpollux_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pollux_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
