# Empty dependencies file for pollux_workload.
# This may be replaced when dependencies are built.
