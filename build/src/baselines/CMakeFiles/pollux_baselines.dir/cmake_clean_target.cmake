file(REMOVE_RECURSE
  "libpollux_baselines.a"
)
