# Empty compiler generated dependencies file for pollux_baselines.
# This may be replaced when dependencies are built.
