file(REMOVE_RECURSE
  "CMakeFiles/pollux_baselines.dir/fifo.cc.o"
  "CMakeFiles/pollux_baselines.dir/fifo.cc.o.d"
  "CMakeFiles/pollux_baselines.dir/fixed_batch_policy.cc.o"
  "CMakeFiles/pollux_baselines.dir/fixed_batch_policy.cc.o.d"
  "CMakeFiles/pollux_baselines.dir/optimus.cc.o"
  "CMakeFiles/pollux_baselines.dir/optimus.cc.o.d"
  "CMakeFiles/pollux_baselines.dir/or_policy.cc.o"
  "CMakeFiles/pollux_baselines.dir/or_policy.cc.o.d"
  "CMakeFiles/pollux_baselines.dir/tiresias.cc.o"
  "CMakeFiles/pollux_baselines.dir/tiresias.cc.o.d"
  "libpollux_baselines.a"
  "libpollux_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pollux_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
