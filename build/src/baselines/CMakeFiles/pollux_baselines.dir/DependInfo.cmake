
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/fifo.cc" "src/baselines/CMakeFiles/pollux_baselines.dir/fifo.cc.o" "gcc" "src/baselines/CMakeFiles/pollux_baselines.dir/fifo.cc.o.d"
  "/root/repo/src/baselines/fixed_batch_policy.cc" "src/baselines/CMakeFiles/pollux_baselines.dir/fixed_batch_policy.cc.o" "gcc" "src/baselines/CMakeFiles/pollux_baselines.dir/fixed_batch_policy.cc.o.d"
  "/root/repo/src/baselines/optimus.cc" "src/baselines/CMakeFiles/pollux_baselines.dir/optimus.cc.o" "gcc" "src/baselines/CMakeFiles/pollux_baselines.dir/optimus.cc.o.d"
  "/root/repo/src/baselines/or_policy.cc" "src/baselines/CMakeFiles/pollux_baselines.dir/or_policy.cc.o" "gcc" "src/baselines/CMakeFiles/pollux_baselines.dir/or_policy.cc.o.d"
  "/root/repo/src/baselines/tiresias.cc" "src/baselines/CMakeFiles/pollux_baselines.dir/tiresias.cc.o" "gcc" "src/baselines/CMakeFiles/pollux_baselines.dir/tiresias.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/pollux_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/pollux_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pollux_core.dir/DependInfo.cmake"
  "/root/repo/build/src/optim/CMakeFiles/pollux_optim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pollux_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
