
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/minidl/dataset.cc" "src/minidl/CMakeFiles/pollux_minidl.dir/dataset.cc.o" "gcc" "src/minidl/CMakeFiles/pollux_minidl.dir/dataset.cc.o.d"
  "/root/repo/src/minidl/mlp.cc" "src/minidl/CMakeFiles/pollux_minidl.dir/mlp.cc.o" "gcc" "src/minidl/CMakeFiles/pollux_minidl.dir/mlp.cc.o.d"
  "/root/repo/src/minidl/optimizer.cc" "src/minidl/CMakeFiles/pollux_minidl.dir/optimizer.cc.o" "gcc" "src/minidl/CMakeFiles/pollux_minidl.dir/optimizer.cc.o.d"
  "/root/repo/src/minidl/tensor.cc" "src/minidl/CMakeFiles/pollux_minidl.dir/tensor.cc.o" "gcc" "src/minidl/CMakeFiles/pollux_minidl.dir/tensor.cc.o.d"
  "/root/repo/src/minidl/trainer.cc" "src/minidl/CMakeFiles/pollux_minidl.dir/trainer.cc.o" "gcc" "src/minidl/CMakeFiles/pollux_minidl.dir/trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pollux_core.dir/DependInfo.cmake"
  "/root/repo/build/src/optim/CMakeFiles/pollux_optim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pollux_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
