file(REMOVE_RECURSE
  "libpollux_minidl.a"
)
