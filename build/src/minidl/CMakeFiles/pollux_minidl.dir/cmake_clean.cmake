file(REMOVE_RECURSE
  "CMakeFiles/pollux_minidl.dir/dataset.cc.o"
  "CMakeFiles/pollux_minidl.dir/dataset.cc.o.d"
  "CMakeFiles/pollux_minidl.dir/mlp.cc.o"
  "CMakeFiles/pollux_minidl.dir/mlp.cc.o.d"
  "CMakeFiles/pollux_minidl.dir/optimizer.cc.o"
  "CMakeFiles/pollux_minidl.dir/optimizer.cc.o.d"
  "CMakeFiles/pollux_minidl.dir/tensor.cc.o"
  "CMakeFiles/pollux_minidl.dir/tensor.cc.o.d"
  "CMakeFiles/pollux_minidl.dir/trainer.cc.o"
  "CMakeFiles/pollux_minidl.dir/trainer.cc.o.d"
  "libpollux_minidl.a"
  "libpollux_minidl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pollux_minidl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
