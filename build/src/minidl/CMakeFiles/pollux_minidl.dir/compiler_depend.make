# Empty compiler generated dependencies file for pollux_minidl.
# This may be replaced when dependencies are built.
