# Empty compiler generated dependencies file for pollux_util.
# This may be replaced when dependencies are built.
