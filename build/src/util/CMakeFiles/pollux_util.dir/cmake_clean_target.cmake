file(REMOVE_RECURSE
  "libpollux_util.a"
)
