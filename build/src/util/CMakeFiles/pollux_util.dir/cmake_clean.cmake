file(REMOVE_RECURSE
  "CMakeFiles/pollux_util.dir/csv.cc.o"
  "CMakeFiles/pollux_util.dir/csv.cc.o.d"
  "CMakeFiles/pollux_util.dir/flags.cc.o"
  "CMakeFiles/pollux_util.dir/flags.cc.o.d"
  "CMakeFiles/pollux_util.dir/logging.cc.o"
  "CMakeFiles/pollux_util.dir/logging.cc.o.d"
  "CMakeFiles/pollux_util.dir/rng.cc.o"
  "CMakeFiles/pollux_util.dir/rng.cc.o.d"
  "CMakeFiles/pollux_util.dir/stats.cc.o"
  "CMakeFiles/pollux_util.dir/stats.cc.o.d"
  "libpollux_util.a"
  "libpollux_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pollux_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
