// pollux_simulate: command-line driver for the cluster simulator.
//
// Runs any scheduling policy over a synthesized or imported workload trace
// and reports the outcome; optionally archives the trace and exports
// machine-readable CSVs of the per-job results and the cluster timeline.
//
//   pollux_simulate --policy=pollux --jobs=160 --seed=1
//   pollux_simulate --policy=tiresias --trace=trace.csv --jobs_csv=out.csv
//   pollux_simulate --save_trace=trace.csv   # synthesize + archive, no run
//   pollux_simulate --checkpoint-every=600 --checkpoint-dir=ckpt  # + snapshots
//   pollux_simulate --resume-from=ckpt      # resume the newest valid snapshot

#include <fstream>
#include <iostream>

#include "bench/common.h"
#include "util/csv.h"
#include "workload/trace_io.h"

namespace pollux {
namespace {

// Prints the summary table and writes the optional CSVs; shared by the fresh
// and the --resume-from paths so resumed runs report identically. Returns the
// process exit code (see kExit* in bench/common.h): 0 ok, 1 timed out,
// 3 halted after a checkpoint.
int ReportResult(const FlagParser& flags, const std::string& policy, const SimResult& result) {
  const Summary jct = result.JctSummary();
  TablePrinter table({"metric", "value"});
  table.AddRow({"policy", policy});
  table.AddRow({"jobs", std::to_string(result.jobs.size())});
  table.AddRow({"avg JCT", FormatDuration(jct.mean)});
  table.AddRow({"p50 JCT", FormatDuration(jct.p50)});
  table.AddRow({"p99 JCT", FormatDuration(jct.p99)});
  table.AddRow({"makespan", FormatDuration(result.makespan)});
  table.AddRow(
      {"avg stat. efficiency", FormatDouble(100.0 * result.AvgClusterEfficiency(), 1) + "%"});
  table.AddRow({"node-hours", FormatDouble(result.node_seconds / 3600.0, 0)});
  table.AddRow({"timed out", result.timed_out ? "YES" : "no"});
  if (result.halted) {
    table.AddRow({"halted", "after checkpoint (resume with --resume-from)"});
  }
  table.Print(std::cout);

  if (!flags.GetString("jobs_csv").empty()) {
    std::ofstream out(flags.GetString("jobs_csv"));
    CsvWriter csv(out);
    csv.WriteRow({"job_id", "model", "category", "submit_s", "start_s", "finish_s", "jct_s",
                  "gpu_seconds", "restarts", "evictions", "restart_failures", "backoff_s",
                  "avg_efficiency", "avg_throughput", "avg_goodput", "completed"});
    for (const auto& job : result.jobs) {
      csv.WriteRow({std::to_string(job.job_id), ModelKindName(job.model),
                    JobCategoryName(job.category), FormatDouble(job.submit_time, 1),
                    FormatDouble(job.start_time, 1), FormatDouble(job.finish_time, 1),
                    FormatDouble(job.Jct(), 1), FormatDouble(job.gpu_time, 1),
                    std::to_string(job.num_restarts), std::to_string(job.num_evictions),
                    std::to_string(job.num_restart_failures),
                    FormatDouble(job.backoff_seconds, 1), FormatDouble(job.avg_efficiency, 4),
                    FormatDouble(job.avg_throughput, 2), FormatDouble(job.avg_goodput, 2),
                    job.completed ? "1" : "0"});
    }
    std::printf("wrote per-job results to %s\n", flags.GetString("jobs_csv").c_str());
  }
  if (!flags.GetString("timeline_csv").empty()) {
    std::ofstream out(flags.GetString("timeline_csv"));
    CsvWriter csv(out);
    csv.WriteRow({"time_s", "nodes", "gpus_in_use", "running_jobs", "mean_efficiency",
                  "utility", "max_batch_size"});
    for (const auto& sample : result.timeline) {
      csv.WriteRow({FormatDouble(sample.time, 0), std::to_string(sample.nodes),
                    std::to_string(sample.gpus_in_use), std::to_string(sample.running_jobs),
                    FormatDouble(sample.mean_efficiency, 4), FormatDouble(sample.utility, 4),
                    std::to_string(sample.max_batch_size)});
    }
    std::printf("wrote timeline to %s\n", flags.GetString("timeline_csv").c_str());
  }
  if (!flags.GetString("events_csv").empty()) {
    std::ofstream out(flags.GetString("events_csv"));
    CsvWriter csv(out);
    csv.WriteRow({"time_s", "event", "job_id", "gpus", "nodes"});
    for (const auto& event : result.events) {
      csv.WriteRow({FormatDouble(event.time, 1), SimEventKindName(event.kind),
                    std::to_string(event.job_id), std::to_string(event.gpus),
                    std::to_string(event.nodes)});
    }
    std::printf("wrote %zu events to %s\n", result.events.size(),
                flags.GetString("events_csv").c_str());
  }
  if (result.halted) {
    return kExitHalted;
  }
  return result.timed_out ? kExitRuntime : kExitOk;
}

int Main(int argc, char** argv) {
  FlagParser flags;
  AddCommonFlags(flags);
  flags.DefineString("policy", "pollux",
                     "pollux | pollux-fixed-batch | optimus | tiresias");
  flags.DefineString("trace", "", "CSV trace to replay (default: synthesize)");
  flags.DefineString("save_trace", "", "write the (synthesized) trace to this CSV file");
  flags.DefineString("jobs_csv", "", "write per-job results to this CSV file");
  flags.DefineString("timeline_csv", "", "write the cluster timeline to this CSV file");
  flags.DefineString("events_csv", "", "write the lifecycle event log to this CSV file");
  flags.DefineString("resume-from", "",
                     "resume from this snapshot file, or the newest valid snapshot "
                     "in this directory (policy/trace/config come from the snapshot)");
  if (!flags.Parse(argc, argv)) {
    return flags.help_requested() ? kExitOk : kExitUsage;
  }
  ObsSession obs(flags);
  const BenchSimConfig config = ConfigFromFlags(flags);
  if ((config.checkpoint_every > 0.0) != !config.checkpoint_dir.empty()) {
    std::fprintf(stderr, "--checkpoint-every and --checkpoint-dir must be set together\n");
    return kExitUsage;
  }

  if (!flags.GetString("resume-from").empty()) {
    SimResult result;
    std::string policy;
    std::string error;
    BenchResumeOptions resume;
    resume.checkpoint_every = config.checkpoint_every;
    resume.checkpoint_dir = config.checkpoint_dir;
    resume.halt_after_checkpoint = config.halt_after_checkpoint;
    if (!ResumeBenchFromSnapshot(flags.GetString("resume-from"), resume, &result, &policy,
                                 &error)) {
      std::fprintf(stderr, "cannot resume from %s: %s\n", flags.GetString("resume-from").c_str(),
                   error.c_str());
      return kExitRuntime;
    }
    return ReportResult(flags, policy, result);
  }

  const std::string& policy = flags.GetString("policy");

  // Resolve the trace: import or synthesize.
  std::vector<JobSpec> trace;
  if (!flags.GetString("trace").empty()) {
    std::ifstream in(flags.GetString("trace"));
    if (!in) {
      std::fprintf(stderr, "cannot open trace file %s\n", flags.GetString("trace").c_str());
      return kExitRuntime;
    }
    std::string error;
    auto parsed = ReadTraceCsv(in, &error);
    if (!parsed.has_value()) {
      std::fprintf(stderr, "bad trace: %s\n", error.c_str());
      return kExitRuntime;
    }
    trace = std::move(*parsed);
  } else {
    trace = MakeBenchTrace(config);
  }
  if (!flags.GetString("save_trace").empty()) {
    std::ofstream out(flags.GetString("save_trace"));
    WriteTraceCsv(out, trace);
    std::printf("wrote %zu jobs to %s\n", trace.size(), flags.GetString("save_trace").c_str());
  }

  // Run: RunImportedTrace applies every config knob (RunBenchPolicy is the
  // same call over a synthesized trace), so both paths share one wiring.
  const SimResult result = RunImportedTrace(policy, config, trace);
  return ReportResult(flags, policy, result);
}

}  // namespace
}  // namespace pollux

int main(int argc, char** argv) { return pollux::Main(argc, argv); }
