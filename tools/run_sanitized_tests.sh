#!/usr/bin/env bash
# Builds the test suite under a sanitizer and runs it.
#
#   tools/run_sanitized_tests.sh            # ThreadSanitizer (default)
#   tools/run_sanitized_tests.sh tsan       # ThreadSanitizer
#   tools/run_sanitized_tests.sh asan       # AddressSanitizer + UBSan
#   tools/run_sanitized_tests.sh ubsan      # UBSan alone (fastest)
#   tools/run_sanitized_tests.sh tsan -R ThreadPool   # extra args go to ctest
#
# Each sanitizer gets its own build directory (build-tsan / build-asan /
# build-ubsan) so instrumented and plain objects never mix. Exits non-zero on
# any test failure or sanitizer report.

set -euo pipefail
cd "$(dirname "$0")/.."

san="${1:-tsan}"
shift || true
case "$san" in
  tsan|asan|ubsan) ;;
  *) echo "usage: $0 [tsan|asan|ubsan] [ctest args...]" >&2; exit 2 ;;
esac

build_dir="build-$san"
cmake -B "$build_dir" -S . -DPOLLUX_SANITIZE="$san" -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$build_dir" -j "$(nproc)" --target pollux_tests

# halt_on_error turns any report into a test failure instead of a log line.
export TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1 ${TSAN_OPTIONS:-}"
export ASAN_OPTIONS="halt_on_error=1 detect_leaks=1 ${ASAN_OPTIONS:-}"
export UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1 ${UBSAN_OPTIONS:-}"

ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)" "$@"
