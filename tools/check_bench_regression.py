#!/usr/bin/env python3
"""Gate CI on benchmark drift.

Compares a metrics.json produced by --metrics-out against a checked-in
baseline (BENCH_BASELINE.json) and exits non-zero when any tracked metric
drifts beyond its per-metric relative tolerance, or when a tracked metric is
missing from the run.

Baseline format:

    {
      "command": "<how the metrics file was produced, for humans>",
      "metrics": {
        "sim.avg_goodput":        {"value": 16067.37, "rel_tol": 0.05},
        "sched.round_time_s.p50": {"value": 0.0009,   "rel_tol": 5.0}
      }
    }

Metric keys resolve against metrics.json in this order: counters, gauges,
then histograms. Histogram fields are addressed with a dotted suffix, e.g.
"sched.round_time_s.p50" reads field "p50" of histogram "sched.round_time_s"
(fields: count, sum, min, max, mean, p50, p95, p99).

Deterministic simulation metrics (goodput, JCT, event counts) should carry a
tight tolerance — they only move when scheduling behavior changes. Wall-time
metrics are noisy on shared CI runners and need a loose one.

The baseline may also carry named suites next to the top-level metrics, each
with its own command and tracked set:

    {
      "metrics": { ... },               <- default suite (no --suite flag)
      "suites": {
        "hyperscale-smoke": {"command": "...", "metrics": { ... }}
      }
    }

Usage: check_bench_regression.py [--allow-missing] [--suite NAME]
                                 [--update-baseline] METRICS_JSON BASELINE_JSON

With --allow-missing, a tracked metric absent from the run is a warning
instead of a failure (exit 0 if everything present is within tolerance).
Use it while a baseline entry is newer than the bench that emits the metric
— e.g. right after adding a metric, before the first baseline-refresh run.
Malformed files still exit 2.

With --suite NAME, the tracked set is baseline["suites"][NAME]["metrics"]
instead of the top-level "metrics" object.

With --update-baseline, instead of gating, every tracked metric's "value" is
regenerated from the metrics file (tolerances and all other baseline content
are preserved) and the baseline is rewritten in place as indented JSON. A
tracked metric missing from the run is an error (exit 2) unless
--allow-missing is also given. This replaces hand-editing baseline values
after an intentional behavior change.
"""

import json
import sys

HISTOGRAM_FIELDS = ("count", "sum", "min", "max", "mean", "p50", "p95", "p99")


def resolve(metrics, key):
    """Returns the numeric value for a dotted baseline key, or None."""
    for section in ("counters", "gauges"):
        value = metrics.get(section, {}).get(key)
        if value is not None:
            return value
    histograms = metrics.get("histograms", {})
    if "." in key:
        name, field = key.rsplit(".", 1)
        if field in HISTOGRAM_FIELDS and name in histograms:
            return histograms[name].get(field)
    return None


def fail(message):
    """Prints an actionable error (no traceback) and returns the usage-error code."""
    print(f"check_bench_regression: error: {message}", file=sys.stderr)
    return 2


def load_json(path, what):
    """Returns (parsed, None) or (None, error_message)."""
    try:
        with open(path) as f:
            return json.load(f), None
    except OSError as e:
        return None, f"cannot read {what} {path}: {e.strerror or e}"
    except json.JSONDecodeError as e:
        return None, (
            f"{what} {path} is not valid JSON (line {e.lineno}, column {e.colno}): "
            f"{e.msg}. Was the producing run interrupted?"
        )


def update(metrics, metrics_path, baseline, baseline_path, tracked, allow_missing):
    """--update-baseline: refresh tracked values in place and rewrite the file."""
    updated = 0
    skipped = 0
    for key in sorted(tracked):
        spec = tracked[key]
        if not isinstance(spec, dict) or "value" not in spec:
            return fail(
                f'baseline entry "{key}" must be an object with a "value" key '
                f'(e.g. {{"value": 1.0, "rel_tol": 0.05}}), got: {json.dumps(spec)}'
            )
        actual = resolve(metrics, key)
        if actual is None:
            if allow_missing:
                print(f"{key}: missing from the run, keeping {spec['value']}")
                skipped += 1
                continue
            return fail(
                f'metric "{key}" is missing from {metrics_path}; refusing to update the '
                "baseline from an incomplete run (pass --allow-missing to keep old values)"
            )
        try:
            actual = float(actual)
        except (TypeError, ValueError):
            return fail(f'metric "{key}" in {metrics_path} is not numeric: {json.dumps(actual)}')
        print(f"{key}: {spec['value']} -> {actual:.12g}")
        spec["value"] = actual
        updated += 1
    try:
        with open(baseline_path, "w") as f:
            json.dump(baseline, f, indent=2)
            f.write("\n")
    except OSError as e:
        return fail(f"cannot write baseline file {baseline_path}: {e.strerror or e}")
    print(f"\nwrote {baseline_path}: {updated} value(s) updated, {skipped} kept")
    return 0


def main(argv):
    allow_missing = False
    update_baseline = False
    suite = None
    paths = []
    args = argv[1:]
    i = 0
    while i < len(args):
        arg = args[i]
        if arg == "--allow-missing":
            allow_missing = True
        elif arg == "--update-baseline":
            update_baseline = True
        elif arg == "--suite":
            if i + 1 >= len(args):
                return fail("--suite requires a suite name")
            suite = args[i + 1]
            i += 1
        elif arg.startswith("--suite="):
            suite = arg.split("=", 1)[1]
        elif arg.startswith("--"):
            return fail(f"unknown flag {arg}")
        else:
            paths.append(arg)
        i += 1
    if len(paths) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    metrics_path, baseline_path = paths
    metrics, error = load_json(metrics_path, "metrics file")
    if error:
        return fail(error)
    baseline, error = load_json(baseline_path, "baseline file")
    if error:
        return fail(error)
    if not isinstance(metrics, dict):
        return fail(
            f"metrics file {metrics_path} must be a JSON object, got {type(metrics).__name__}"
        )
    if not isinstance(baseline, dict):
        return fail(
            f"baseline file {baseline_path} must be a JSON object, got {type(baseline).__name__}"
        )

    if suite is not None:
        suites = baseline.get("suites", {})
        if not isinstance(suites, dict) or not isinstance(suites.get(suite), dict):
            known = ", ".join(sorted(suites)) if isinstance(suites, dict) and suites else "none"
            return fail(f'baseline file {baseline_path} has no suite "{suite}" (known: {known})')
        tracked = suites[suite].get("metrics", {})
    else:
        tracked = baseline.get("metrics", {})
    if not isinstance(tracked, dict) or not tracked:
        where = f'suite "{suite}"' if suite is not None else f"baseline file {baseline_path}"
        return fail(
            f'{where} tracks no metrics: expected a non-empty "metrics" object '
            "(see the baseline format in this script's docstring)"
        )

    if update_baseline:
        return update(metrics, metrics_path, baseline, baseline_path, tracked, allow_missing)

    failures = 0
    missing = 0
    width = max(len(k) for k in tracked)
    print(f"{'metric':<{width}}  {'baseline':>12}  {'actual':>12}  {'drift':>8}  {'tol':>6}")
    for key in sorted(tracked):
        spec = tracked[key]
        if not isinstance(spec, dict) or "value" not in spec:
            return fail(
                f'baseline entry "{key}" must be an object with a "value" key '
                f'(e.g. {{"value": 1.0, "rel_tol": 0.05}}), got: {json.dumps(spec)}'
            )
        try:
            base = float(spec["value"])
            tol = float(spec.get("rel_tol", 0.05))
        except (TypeError, ValueError):
            return fail(
                f'baseline entry "{key}" has a non-numeric "value" or "rel_tol": '
                f"{json.dumps(spec)}"
            )
        actual = resolve(metrics, key)
        if actual is None:
            if allow_missing:
                print(
                    f"{key:<{width}}  {base:>12.6g}  {'MISSING':>12}  "
                    "<-- skipped (--allow-missing)"
                )
                missing += 1
            else:
                print(
                    f"{key:<{width}}  {base:>12.6g}  {'MISSING':>12}  "
                    "<-- not in the metrics file (produced with --metrics-out by the right bench?)"
                )
                failures += 1
            continue
        try:
            actual = float(actual)
        except (TypeError, ValueError):
            return fail(f'metric "{key}" in {metrics_path} is not numeric: {json.dumps(actual)}')
        denom = abs(base) if base != 0.0 else 1.0
        drift = abs(actual - base) / denom
        verdict = "" if drift <= tol else "  <-- REGRESSION"
        if drift > tol:
            failures += 1
        print(f"{key:<{width}}  {base:>12.6g}  {actual:>12.6g}  {drift:>7.1%}  {tol:>6.0%}{verdict}")

    if failures:
        print(f"\n{failures} metric(s) breached tolerance", file=sys.stderr)
        return 1
    if missing:
        print(
            f"\nwarning: {missing} tracked metric(s) missing from the run (allowed)",
            file=sys.stderr,
        )
    print("\nall tracked metrics within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
