#!/usr/bin/env python3
"""Gate CI on benchmark drift.

Compares a metrics.json produced by --metrics-out against a checked-in
baseline (BENCH_BASELINE.json) and exits non-zero when any tracked metric
drifts beyond its per-metric relative tolerance, or when a tracked metric is
missing from the run.

Baseline format:

    {
      "command": "<how the metrics file was produced, for humans>",
      "metrics": {
        "sim.avg_goodput":        {"value": 16067.37, "rel_tol": 0.05},
        "sched.round_time_s.p50": {"value": 0.0009,   "rel_tol": 5.0}
      }
    }

Metric keys resolve against metrics.json in this order: counters, gauges,
then histograms. Histogram fields are addressed with a dotted suffix, e.g.
"sched.round_time_s.p50" reads field "p50" of histogram "sched.round_time_s"
(fields: count, sum, min, max, mean, p50, p95, p99).

Deterministic simulation metrics (goodput, JCT, event counts) should carry a
tight tolerance — they only move when scheduling behavior changes. Wall-time
metrics are noisy on shared CI runners and need a loose one.

Usage: check_bench_regression.py METRICS_JSON BASELINE_JSON
"""

import json
import sys

HISTOGRAM_FIELDS = ("count", "sum", "min", "max", "mean", "p50", "p95", "p99")


def resolve(metrics, key):
    """Returns the numeric value for a dotted baseline key, or None."""
    for section in ("counters", "gauges"):
        value = metrics.get(section, {}).get(key)
        if value is not None:
            return value
    histograms = metrics.get("histograms", {})
    if "." in key:
        name, field = key.rsplit(".", 1)
        if field in HISTOGRAM_FIELDS and name in histograms:
            return histograms[name].get(field)
    return None


def main(argv):
    if len(argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(argv[1]) as f:
        metrics = json.load(f)
    with open(argv[2]) as f:
        baseline = json.load(f)

    tracked = baseline.get("metrics", {})
    if not tracked:
        print("baseline tracks no metrics", file=sys.stderr)
        return 2

    failures = 0
    width = max(len(k) for k in tracked)
    print(f"{'metric':<{width}}  {'baseline':>12}  {'actual':>12}  {'drift':>8}  {'tol':>6}")
    for key in sorted(tracked):
        spec = tracked[key]
        base = float(spec["value"])
        tol = float(spec.get("rel_tol", 0.05))
        actual = resolve(metrics, key)
        if actual is None:
            print(f"{key:<{width}}  {base:>12.6g}  {'MISSING':>12}")
            failures += 1
            continue
        actual = float(actual)
        denom = abs(base) if base != 0.0 else 1.0
        drift = abs(actual - base) / denom
        verdict = "" if drift <= tol else "  <-- REGRESSION"
        if drift > tol:
            failures += 1
        print(f"{key:<{width}}  {base:>12.6g}  {actual:>12.6g}  {drift:>7.1%}  {tol:>6.0%}{verdict}")

    if failures:
        print(f"\n{failures} metric(s) breached tolerance", file=sys.stderr)
        return 1
    print("\nall tracked metrics within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
