// pollux_schedd: the scheduler-as-a-service daemon (DESIGN.md §15).
//
// Serves multi-tenant Pollux scheduling over a Unix-domain socket. Runs until
// SIGTERM/SIGINT, then drains gracefully: new work is NACKed, queued requests
// finish, every tenant writes a final checkpoint, and the process exits with
// kExitHalted (3) — the same "stopped after a durable checkpoint" code the
// simulator uses for --halt-after. A later start with the same
// --checkpoint-dir warm-restores every tenant (kill -9 recovery rides the
// same path via the periodic per-round checkpoints).
//
// Exit codes (bench/common.h convention): 0 --help, 1 runtime failure,
// 2 usage error, 3 drained after a signal.

#include <errno.h>
#include <signal.h>
#include <unistd.h>

#include <cstdio>
#include <string>

#include "bench/common.h"
#include "service/daemon.h"
#include "util/flags.h"

namespace {

// Self-pipe for async-signal-safe shutdown: the handler writes one byte, the
// main thread blocks reading it.
int g_signal_pipe[2] = {-1, -1};

void OnSignal(int) {
  const char byte = 0;
  (void)!write(g_signal_pipe[1], &byte, 1);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pollux;
  using namespace pollux::service;

  FlagParser flags;
  flags.DefineString("socket", "", "Unix-domain socket path to listen on (required)");
  flags.DefineInt("shards", 2, "Tenant worker threads (tenants map by tenant_id % shards)");
  flags.DefineInt("queue-cap", 256,
                  "Pending requests per tenant before shedding with NACK queue_full");
  flags.DefineInt("outbox-cap-mb", 8,
                  "Outbound buffer per connection, MiB; a slower consumer is disconnected");
  flags.DefineInt("max-frame-mb", 4, "Largest accepted frame payload, MiB");
  flags.DefineString("checkpoint-dir", "",
                     "Per-tenant checkpoint directory (empty disables crash tolerance)");
  flags.DefineInt("checkpoint-every", 1,
                  "Checkpoint a tenant every N executed rounds (0 = only on drain)");
  flags.DefineInt("checkpoint-keep", 2, "Snapshots retained per tenant");
  AddObsFlags(flags);
  if (!flags.Parse(argc, argv)) {
    return flags.help_requested() ? kExitOk : kExitUsage;
  }
  if (flags.GetString("socket").empty()) {
    fprintf(stderr, "pollux_schedd: --socket is required\n");
    return kExitUsage;
  }
  if (flags.GetInt("shards") < 1 || flags.GetInt("queue-cap") < 1 ||
      flags.GetInt("outbox-cap-mb") < 1 || flags.GetInt("max-frame-mb") < 1) {
    fprintf(stderr, "pollux_schedd: --shards/--queue-cap/--outbox-cap-mb/--max-frame-mb "
                    "must be positive\n");
    return kExitUsage;
  }

  ObsSession obs(flags);

  ScheddOptions options;
  options.socket_path = flags.GetString("socket");
  options.shards = static_cast<int>(flags.GetInt("shards"));
  options.ingest_queue_cap = static_cast<size_t>(flags.GetInt("queue-cap"));
  options.outbox_cap_bytes = static_cast<size_t>(flags.GetInt("outbox-cap-mb")) << 20;
  options.max_frame_bytes = static_cast<size_t>(flags.GetInt("max-frame-mb")) << 20;
  options.checkpoint_dir = flags.GetString("checkpoint-dir");
  options.checkpoint_every_rounds = static_cast<int>(flags.GetInt("checkpoint-every"));
  options.checkpoint_keep = static_cast<int>(flags.GetInt("checkpoint-keep"));

  if (pipe(g_signal_pipe) != 0) {
    perror("pollux_schedd: pipe");
    return kExitRuntime;
  }
  signal(SIGPIPE, SIG_IGN);

  ScheddDaemon daemon(options);
  std::string error;
  if (!daemon.Start(&error)) {
    fprintf(stderr, "pollux_schedd: start failed: %s\n", error.c_str());
    return kExitRuntime;
  }
  const ScheddStats startup = daemon.Stats();
  fprintf(stderr, "pollux_schedd: listening on %s (shards=%d, restored %llu tenants)\n",
          options.socket_path.c_str(), options.shards,
          static_cast<unsigned long long>(startup.restored));

  struct sigaction action = {};
  action.sa_handler = OnSignal;
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);

  char byte = 0;
  while (read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
  }

  fprintf(stderr, "pollux_schedd: draining (checkpoint + exit)\n");
  daemon.RequestDrain();
  daemon.Wait();
  const ScheddStats stats = daemon.Stats();
  fprintf(stderr,
          "pollux_schedd: drained: tenants=%llu jobs=%llu rounds=%llu checkpoints=%llu "
          "sheds=%llu bad_frames=%llu\n",
          static_cast<unsigned long long>(stats.tenants),
          static_cast<unsigned long long>(stats.jobs),
          static_cast<unsigned long long>(stats.rounds),
          static_cast<unsigned long long>(stats.checkpoints),
          static_cast<unsigned long long>(stats.sheds),
          static_cast<unsigned long long>(stats.bad_frames));
  return kExitHalted;
}
