// Discrete-event cluster simulator (Sec. 5.3).
//
// The simulator replays a trace of job submissions under one of two control
// loops (SimEngine): the legacy fixed-increment tick loop, or the default
// discrete-event engine that jumps between scheduled events (reports,
// scheduling rounds, autoscaling, fault transitions, submissions) and
// advances job progress across the spans in between — same trajectories,
// without paying per-tick overhead during inactivity. Each job's actual
// speed comes from its model profile's hidden
// ground truth (throughput params + GNS trajectory); its PolluxAgent only
// sees noisy observations and must model the job online, exactly as in a
// real deployment. Reproduced system effects, matching the paper's
// simulator: placement-dependent synchronization time, 30-second
// checkpoint-restart delays on reallocation, and optional network
// interference between distributed jobs sharing a node. Progress is
// accounted in reference examples so both system throughput and statistical
// efficiency determine completion times.

#ifndef POLLUX_SIM_SIMULATOR_H_
#define POLLUX_SIM_SIMULATOR_H_

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/allocation.h"
#include "sim/autoscale.h"
#include "sim/checkpoint.h"
#include "sim/fault_injector.h"
#include "sim/netmodel.h"
#include "sim/scheduler.h"
#include "util/rng.h"
#include "util/stats.h"
#include "workload/trace_gen.h"

namespace pollux {

// Which control loop drives the simulation.
//
// kTicked is the legacy fixed-increment loop: one pass of every handler per
// tick, O(max_time / tick) iterations regardless of activity. kEvent is the
// discrete-event engine (src/sim/engine/): handlers run only at scheduled
// event times and job progress is advanced across the idle spans in between,
// with completion times solved from the progress integral. Both engines
// produce the same trajectories — per-job completion times agree to within
// one tick (exactly, absent GNS breakpoints in the final step) and event
// kind counts match — which sim_engine_equivalence_test asserts.
enum class SimEngine {
  kTicked,
  kEvent,
};

// "ticked" | "event" -> engine; returns false for anything else.
bool SimEngineByName(const std::string& name, SimEngine* engine);
const char* SimEngineName(SimEngine engine);

struct SimOptions {
  ClusterSpec cluster;
  // Control loop. The event engine is the default; kTicked keeps the legacy
  // per-tick loop selectable (--engine=ticked) for equivalence testing.
  SimEngine engine = SimEngine::kEvent;
  double tick = 1.0;                   // Simulation step, seconds.
  double sched_interval = 60.0;        // PolluxSched cadence (Sec. 5.1).
  double report_interval = 30.0;       // PolluxAgent cadence (Sec. 5.1).
  double restart_delay = 30.0;         // Checkpoint-restart cost (Sec. 5.3).
  double interference_slowdown = 0.0;  // Fig. 9 injection: 0, 0.25, 0.5.
  double observation_noise = 0.05;     // Lognormal sigma on profiled T_iter.
  double gns_noise = 0.10;             // Lognormal sigma on gradient moments.
  double max_time = 14.0 * 24.0 * 3600.0;
  uint64_t seed = 1;
  // Worker threads the scheduling policy may use per round (Pollux policies
  // forward this to GaOptions::threads; the simulated outcome is identical
  // for every value). 1 = single-threaded, 0 = hardware concurrency.
  int sched_threads = 1;

  // Cloud autoscaling (Fig. 10): when an autoscaler is attached, the cluster
  // is resized to its decision every autoscale_interval.
  double autoscale_interval = 300.0;
  int gpus_per_node = 4;

  // Fault injection (node crashes, stragglers, report loss, restart
  // failures). All-zero knobs (the default) mean no injector is constructed
  // and simulated traces are byte-identical to fault-free behavior.
  FaultOptions faults;
  // Control-plane network model (latency/jitter, loss and loss bursts,
  // duplication, reordering, node/rack partitions). All-zero knobs (the
  // default, --net-profile=none) mean no NetModel is constructed: reports and
  // decisions move synchronously and runs are byte-identical to
  // pre-netmodel behavior. When enabled, reports/decisions travel as
  // sequence-numbered in-flight messages and node liveness is lease-based
  // (NetOptions::lease_intervals) unless NetOptions::naive_masking asks for
  // the instant-masking baseline. See DESIGN.md §12.
  NetOptions net;
  // Topology A/B baseline arm (bench_topology): the physical cluster keeps
  // its rack/GPU-type annotations (ground-truth job speeds stay
  // topology-aware) but every cluster the *scheduler* sees is stripped to the
  // flat model, so placement decisions cannot exploit rack locality or GPU
  // generations. No effect when the cluster has no topology annotations.
  bool scheduler_topology_blind = false;
  // Run the simulator's invariant checker (capacity conservation, no
  // lost/double-completed jobs, near-monotone event log) every scheduling
  // round; violations abort. Cheap, but off by default.
  bool check_invariants = false;

  // Crash-consistent checkpointing (DESIGN.md §11): every checkpoint_every
  // simulated seconds, a full snapshot of the run state is written to
  // checkpoint_dir (ckpt-<ms>.bin + .json sidecar). 0 disables. Resuming from
  // a snapshot continues the run byte-identically to an uninterrupted one.
  double checkpoint_every = 0.0;
  std::string checkpoint_dir;
  // Deterministic kill switch for crash-resume testing: stop the run (with
  // SimResult::halted set) right after the first snapshot written at or past
  // this simulated time. 0 disables. Never persisted into snapshots, so a
  // resumed run does not re-halt.
  double halt_after_checkpoint = 0.0;
};

struct JobResult {
  uint64_t job_id = 0;
  ModelKind model = ModelKind::kResNet18Cifar10;
  JobCategory category = JobCategory::kSmall;
  double submit_time = 0.0;
  double start_time = -1.0;
  double finish_time = -1.0;
  double gpu_time = 0.0;
  int num_restarts = 0;
  // Fault accounting: allocations lost to node crashes (disjoint from
  // num_restarts' voluntary reallocations), failed checkpoint-restore
  // attempts, and the total retry backoff the job sat through.
  int num_evictions = 0;
  int num_restart_failures = 0;
  double backoff_seconds = 0.0;
  bool completed = false;
  // Time-averaged statistics while the job was running.
  double avg_efficiency = 0.0;
  double avg_throughput = 0.0;
  double avg_goodput = 0.0;

  double Jct() const { return finish_time - submit_time; }
};

// Structured lifecycle event, for post-hoc analysis and debugging.
enum class SimEventKind {
  kSubmit,          // Job arrived.
  kStart,           // Job ran its first iteration.
  kReallocate,      // Job's allocation changed (gpus/nodes = new placement).
  kPreempt,         // Job's allocation dropped to zero.
  kComplete,        // Job finished.
  kClusterResize,   // Autoscaler changed the node count (nodes = new count).
  kNodeFail,        // Node crashed (nodes = node index).
  kNodeRepair,      // Node came back (nodes = node index).
  kEvict,           // Job lost its allocation to a node crash.
  kRestartFailure,  // One checkpoint-restore attempt failed (gpus = attempt).
  kReportDrop,      // An agent report was lost in transit.
  kSchedCrash,      // Scheduler process crashed and recovered (warm or cold).
  kNetPartition,    // Control-plane partition began (nodes = node index, or
                    // gpus = 1 with nodes = rack index for rack scope).
  kNetHeal,         // Control-plane partition healed (same addressing).
  kDecisionBounce,  // A delivered allocation decision conflicted with the
                    // physical cluster (lease-masked telemetry) and was
                    // rejected at apply time.
};

const char* SimEventKindName(SimEventKind kind);

struct SimEvent {
  double time = 0.0;
  SimEventKind kind = SimEventKind::kSubmit;
  uint64_t job_id = 0;  // Unused for kClusterResize.
  int gpus = 0;
  int nodes = 0;
};

// One sample of cluster-level state, recorded every scheduling interval.
struct ClusterSample {
  double time = 0.0;
  int nodes = 0;
  int total_gpus = 0;
  int gpus_in_use = 0;
  int running_jobs = 0;
  double mean_efficiency = 0.0;  // True statistical efficiency of running jobs.
  double utility = 0.0;          // Pollux policies only; 0 otherwise.
  long max_batch_size = 0;       // Largest batch among running jobs.
};

struct SimResult {
  std::vector<JobResult> jobs;
  std::vector<ClusterSample> timeline;
  std::vector<SimEvent> events;
  double makespan = 0.0;
  double node_seconds = 0.0;  // For cloud cost accounting.
  bool timed_out = false;
  // The run stopped early at SimOptions::halt_after_checkpoint (the snapshot
  // on disk carries the state to resume from).
  bool halted = false;

  Summary JctSummary() const;
  // Time-weighted average of ClusterSample::mean_efficiency over samples with
  // at least one running job.
  double AvgClusterEfficiency() const;
  // Average fraction of cluster GPUs in use over samples with at least one
  // active job.
  double AvgUtilization() const;
  double AvgJobThroughput() const;
  double AvgJobGoodput() const;
};

class Simulator {
 public:
  // `scheduler` must outlive the simulator; `autoscaler` may be null.
  Simulator(SimOptions options, std::vector<JobSpec> trace, Scheduler* scheduler,
            ClusterAutoscaler* autoscaler = nullptr);
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimResult Run();

  // Driver payload embedded in every snapshot (policy name, driver config
  // serialization, trace CSV) so a resume can rebuild the run without the
  // original command line. Set before Run() when checkpointing is enabled.
  void SetSnapshotExtra(SnapshotExtra extra) { snapshot_extra_ = std::move(extra); }

  // Writes a full crash-consistent snapshot of the current run state. Returns
  // false (with `error` set) on I/O failure. Call either between Run()s via
  // LoadSnapshot, or rely on SimOptions::checkpoint_every for periodic writes.
  bool SaveSnapshot(const std::string& path, std::string* error);

  // Restores the run state captured by SaveSnapshot. Must be called before
  // Run(), on a simulator constructed with the same configuration, trace, and
  // scheduler type as the one that wrote the snapshot. Returns false (with
  // `error` set) for torn/corrupt/mismatched snapshots; the simulator is not
  // safe to Run() after a failed load.
  bool LoadSnapshot(const std::string& path, std::string* error);

 private:
  struct Job;

  void ActivateSubmissions(double now);
  void RefreshReports(double now);
  // Control-plane network hooks (no-ops when net_ is null): partition
  // transitions + due message deliveries (reports, decisions, heartbeats),
  // the per-round decision send, and the lease view of the cluster the
  // scheduler sees in place of the physical one.
  void ProcessNet(double now);
  void DeliverNetMessage(const NetModel::Message& message, double now);
  void SendDecision(Job& job, const std::vector<int>& row, double now);
  const ClusterSpec& SchedulerClusterView(double now);
  // Applies SimOptions::scheduler_topology_blind: the cluster handed to the
  // scheduler (rounds and OnClusterChanged) with annotations stripped when
  // the blind A/B arm is on; `physical` itself otherwise.
  const ClusterSpec& SchedulerVisible(const ClusterSpec& physical);
  void RunSchedulingRound(double now);
  void RunAutoscaling(double now);
  void ProcessFaults(double now);
  void AdvanceJobs(double now, double dt);
  // Ground-truth iteration time for the job's current placement and batch.
  // Flat clusters use the profile's 7-parameter truth unchanged (bit-for-bit
  // the pre-topology arithmetic); annotated clusters price the (K, N, R)
  // placement through the rack-tier model and pace the job at its slowest
  // GPU generation.
  double TrueJobIterTime(const Job& job) const;
  void ApplyAllocation(Job& job, const std::vector<int>& row, double now);
  void RecordTimelineSample(double now);
  void CheckInvariants(double now);
  bool AllJobsFinished() const;
  // Drops finished jobs from active_ (order-preserving two-pointer pass).
  void CompactActive() const;
  std::vector<JobSnapshot> BuildSnapshots(double now);
  bool JobSuffersInterference(const Job& job) const;

  // Control loops. Both return the final simulation time (the clock value the
  // shared finalization uses for unfinished jobs). RunTicked is the legacy
  // fixed-increment loop; RunEvent drives the handlers above from the
  // deterministic event queue in src/sim/engine/ (see DESIGN.md §10).
  double RunTicked();
  double RunEvent();
  // Event-engine job advancement over the handler-free span [from, to):
  // per-job with span-invariant factors hoisted, or tick-interleaved across
  // jobs when interference couples them. Completions inside the span are
  // discovered here and their exact times solved from the progress integral.
  void AdvanceSpan(double from, double to);
  void AdvanceJobSpan(Job& job, double from, double to);
  // Routes a lifecycle event to the log. The event engine buffers between
  // queue dispatches and flushes in time order so the log stays monotone
  // even though jobs are advanced one at a time.
  void Emit(SimEvent event);
  void FlushPendingEvents();

  // Injected scheduler-process crash (sim/fault_injector's scheduler_crash
  // class): warm recovery reloads the control-plane state losslessly; cold
  // recovery resets the scheduler and every job's agent to a freshly
  // restarted process with no snapshot.
  void RecoverScheduler(double now);

  // Periodic checkpoint write into options_.checkpoint_dir; failures are
  // logged and the run continues (a missed checkpoint is not fatal).
  void WritePeriodicSnapshot(double now);

  SimOptions options_;
  // The scheduler-visible cluster: crashed nodes have their capacity masked
  // to zero until repaired. `base_cluster_` keeps the physical capacities.
  ClusterSpec cluster_;
  ClusterSpec base_cluster_;
  Scheduler* scheduler_;
  ClusterAutoscaler* autoscaler_;
  Rng rng_;
  std::unique_ptr<FaultInjector> faults_;
  // Control-plane network model (null when every NetOptions knob is zero).
  std::unique_ptr<NetModel> net_;
  // Lease-based liveness bookkeeping (net_ only): last heartbeat delivery
  // per node, the lease-view cluster handed to the scheduler, and open
  // partition spans (keyed by (rack?, index)) for the trace timeline.
  std::vector<double> last_heard_;
  ClusterSpec sched_view_;
  // Scratch for SchedulerVisible when scheduler_topology_blind is on.
  ClusterSpec blind_view_;
  std::map<std::pair<int, int>, double> partition_started_;
  std::vector<JobSpec> trace_;
  std::vector<std::unique_ptr<Job>> jobs_;
  // Ascending indexes into jobs_ of not-yet-finished jobs. Lazily compacted
  // by CompactActive(); the hot per-tick/per-event loops (report refresh,
  // snapshot build, job advancement) iterate this instead of all of jobs_,
  // which keeps their cost O(active) instead of O(total submitted) on
  // 10^5-job hyperscale traces. Mutable: const readers (AllJobsFinished)
  // compact too.
  mutable std::vector<size_t> active_;
  size_t next_submission_ = 0;
  // Invariant-checker cursor into result_.events (only new events are
  // scanned each round) and per-job completion counts.
  size_t checked_events_ = 0;
  double max_event_time_ = 0.0;
  // Event-engine state: buffered lifecycle events awaiting an in-time-order
  // flush, and the count of queue entries dispatched (sim.engine.events).
  bool event_mode_ = false;
  std::vector<SimEvent> pending_events_;
  uint64_t engine_events_ = 0;
  SimResult result_;

  // Control-loop cursors captured at the snapshot point so a resumed run
  // continues the exact handler schedule of the interrupted one. `valid`
  // marks a pending resume (set by LoadSnapshot, consumed by the engines).
  struct LoopState {
    bool valid = false;
    double now = 0.0;
    // Ticked-loop thresholds.
    double next_report = 0.0;
    double next_sched = 0.0;
    double next_autoscale = 0.0;
    double next_checkpoint = 0.0;
    // Event-engine RecurringTimer states (threshold, last_fire) and the
    // dispatch count feeding sim.engine.events.
    double report_threshold = 0.0, report_last = 0.0;
    double sched_threshold = 0.0, sched_last = 0.0;
    double autoscale_threshold = 0.0, autoscale_last = 0.0;
    double ckpt_threshold = 0.0, ckpt_last = 0.0;
    uint64_t engine_events = 0;
  };
  LoopState loop_;
  SnapshotExtra snapshot_extra_;
};

}  // namespace pollux

#endif  // POLLUX_SIM_SIMULATOR_H_
