// Cluster autoscaling strategies for the cloud experiments (Sec. 4.2.2,
// Sec. 5.3.3 / Fig. 10).
//
// GoodputAutoscaler is Pollux's utility-band policy: it binary-searches the
// node count whose achievable UTILITY (Eqn. 17) is closest to the band's
// midpoint, evaluating candidates with what-if genetic-algorithm runs.
//
// ThroughputAutoscaler reproduces the Or et al. baseline: it models job
// performance with system throughput only (no statistical efficiency), so it
// scales out as soon as the throughput-per-GPU stays above a utilization
// threshold — early and aggressively, regardless of training progress.

#ifndef POLLUX_SIM_AUTOSCALE_H_
#define POLLUX_SIM_AUTOSCALE_H_

#include "core/autoscaler.h"
#include "sim/pollux_policy.h"
#include "sim/scheduler.h"

namespace pollux {

class ClusterAutoscaler {
 public:
  virtual ~ClusterAutoscaler() = default;

  // Returns the desired number of nodes for the next interval.
  virtual int DecideNodes(const SchedulerContext& context, int current_nodes,
                          int gpus_per_node) = 0;
  virtual const char* name() const = 0;
};

// Pollux goodput/utility-driven autoscaling. Must be wired to the PolluxPolicy
// whose scheduler state it probes.
class GoodputAutoscaler : public ClusterAutoscaler {
 public:
  GoodputAutoscaler(AutoscaleConfig config, PolluxPolicy* policy)
      : config_(config), policy_(policy) {}

  int DecideNodes(const SchedulerContext& context, int current_nodes,
                  int gpus_per_node) override;
  const char* name() const override { return "pollux-goodput"; }

 private:
  AutoscaleConfig config_;
  PolluxPolicy* policy_;
};

// Or et al.-style throughput-based autoscaling: pick the largest node count
// whose predicted throughput-per-GPU (at the throughput-maximizing batch
// size) stays above `utilization_threshold` of the single-GPU throughput.
class ThroughputAutoscaler : public ClusterAutoscaler {
 public:
  ThroughputAutoscaler(int min_nodes, int max_nodes, double utilization_threshold)
      : min_nodes_(min_nodes), max_nodes_(max_nodes), threshold_(utilization_threshold) {}

  int DecideNodes(const SchedulerContext& context, int current_nodes,
                  int gpus_per_node) override;
  const char* name() const override { return "throughput"; }

 private:
  int min_nodes_;
  int max_nodes_;
  double threshold_;
};

}  // namespace pollux

#endif  // POLLUX_SIM_AUTOSCALE_H_
