// Scheduler-interface adapter that drives PolluxSched from the simulator.

#ifndef POLLUX_SIM_POLLUX_POLICY_H_
#define POLLUX_SIM_POLLUX_POLICY_H_

#include "core/sched.h"
#include "sim/scheduler.h"

namespace pollux {

class PolluxPolicy : public Scheduler {
 public:
  PolluxPolicy(ClusterSpec cluster, SchedConfig config);

  std::map<uint64_t, std::vector<int>> Schedule(const SchedulerContext& context) override;
  bool adapts_batch_size() const override { return true; }
  void OnClusterChanged(const ClusterSpec& cluster) override;
  const char* name() const override { return "pollux"; }

  // Checkpoint/restore of the full control-plane state: the sched's cluster
  // view, GA search state, diagnostics, and the cached reports. LoadState
  // restores the cluster before the GA state (SetCluster clears the persisted
  // population), so a restored policy's next round is byte-identical to the
  // interrupted run's.
  void SaveState(std::string* blob) const override;
  bool LoadState(const std::string& blob) override;
  void ResetControlState() override;

  PolluxSched& sched() { return sched_; }
  const PolluxSched& sched() const { return sched_; }

  // The reports built during the most recent Schedule call (reused by the
  // goodput autoscaler's what-if probes).
  const std::vector<SchedJobReport>& last_reports() const { return last_reports_; }

 private:
  PolluxSched sched_;
  std::vector<SchedJobReport> last_reports_;
};

}  // namespace pollux

#endif  // POLLUX_SIM_POLLUX_POLICY_H_
