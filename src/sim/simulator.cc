#include "sim/simulator.h"

#include <algorithm>
#include <cmath>

#include "sim/pollux_policy.h"
#include "util/logging.h"

namespace pollux {
namespace {

constexpr double kProgressEpsilon = 1e-6;

Placement PlacementOf(const std::vector<int>& row) {
  Placement placement;
  for (int gpus : row) {
    if (gpus > 0) {
      placement.num_gpus += gpus;
      ++placement.num_nodes;
    }
  }
  return placement;
}

}  // namespace

const char* SimEventKindName(SimEventKind kind) {
  switch (kind) {
    case SimEventKind::kSubmit:
      return "submit";
    case SimEventKind::kStart:
      return "start";
    case SimEventKind::kReallocate:
      return "reallocate";
    case SimEventKind::kPreempt:
      return "preempt";
    case SimEventKind::kComplete:
      return "complete";
    case SimEventKind::kClusterResize:
      return "cluster_resize";
  }
  return "?";
}

struct Simulator::Job {
  Job(const JobSpec& job_spec, const ModelProfile& model_profile, bool adaptive_batch,
      Rng job_rng)
      : spec(job_spec),
        profile(&model_profile),
        agent(job_spec.job_id, model_profile.base_batch_size, model_profile.base_lr,
              model_profile.Limits()),
        rng(job_rng),
        batch(adaptive_batch ? model_profile.base_batch_size
                             : std::max(job_spec.batch_size, model_profile.base_batch_size)) {}

  JobSpec spec;
  const ModelProfile* profile;
  PolluxAgent agent;
  Rng rng;

  std::vector<int> alloc;  // GPUs per node; empty until first allocation.
  Placement placement;
  long batch;
  double progress = 0.0;  // Reference examples completed.
  bool finished = false;
  double restart_until = 0.0;
  double start_time = -1.0;
  double finish_time = -1.0;
  double gpu_time = 0.0;
  int restarts = 0;
  bool has_report = false;
  AgentReport report;

  // Time integrals while running.
  double run_seconds = 0.0;
  double eff_integral = 0.0;
  double tput_integral = 0.0;
  double goodput_integral = 0.0;

  double TotalExamples() const { return profile->TotalExamples(); }
  double ProgressFraction() const {
    return std::clamp(progress / TotalExamples(), 0.0, 1.0);
  }
  bool Running(double now) const {
    return !finished && placement.num_gpus > 0 && now >= restart_until;
  }
};

Simulator::Simulator(SimOptions options, std::vector<JobSpec> trace, Scheduler* scheduler,
                     ClusterAutoscaler* autoscaler)
    : options_(std::move(options)),
      cluster_(options_.cluster),
      scheduler_(scheduler),
      autoscaler_(autoscaler),
      rng_(options_.seed),
      trace_(std::move(trace)) {
  std::sort(trace_.begin(), trace_.end(),
            [](const JobSpec& a, const JobSpec& b) { return a.submit_time < b.submit_time; });
}

Simulator::~Simulator() = default;

void Simulator::ActivateSubmissions(double now) {
  while (next_submission_ < trace_.size() && trace_[next_submission_].submit_time <= now) {
    const JobSpec& spec = trace_[next_submission_];
    jobs_.push_back(std::make_unique<Job>(spec, GetModelProfile(spec.model),
                                          scheduler_->adapts_batch_size(), rng_.Fork()));
    result_.events.push_back(
        SimEvent{spec.submit_time, SimEventKind::kSubmit, spec.job_id, 0, 0});
    ++next_submission_;
  }
}

void Simulator::RefreshReports(double now) {
  for (auto& job : jobs_) {
    if (job->finished) {
      continue;
    }
    job->report = job->agent.MakeReport();
    job->has_report = true;
    if (scheduler_->adapts_batch_size() && job->placement.num_gpus > 0) {
      if (scheduler_->throughput_only_batch()) {
        // Or et al.: throughput increases with batch size, so the largest
        // feasible batch is "optimal" under a throughput-only model.
        job->batch = job->agent.limits().MaxFeasible(job->placement.num_gpus);
      } else {
        const auto choice = job->agent.TuneBatchSize(job->placement);
        if (choice.batch_size > 0) {
          job->batch = choice.batch_size;
        }
      }
    }
  }
  (void)now;
}

std::vector<JobSnapshot> Simulator::BuildSnapshots(double now) {
  std::vector<JobSnapshot> snapshots;
  for (auto& job : jobs_) {
    if (job->finished) {
      continue;
    }
    if (!job->has_report) {
      job->report = job->agent.MakeReport();
      job->has_report = true;
    }
    JobSnapshot snapshot;
    snapshot.job_id = job->spec.job_id;
    snapshot.spec = &job->spec;
    snapshot.profile = job->profile;
    snapshot.agent = job->report;
    snapshot.gpu_time = job->gpu_time;
    if (job->placement.num_gpus > 0) {
      snapshot.allocation = job->alloc;
    }
    snapshot.submit_time = job->spec.submit_time;
    snapshot.batch_size = job->batch;
    const double efficiency =
        job->profile->TrueEfficiency(job->batch, job->ProgressFraction());
    const double per_iteration = static_cast<double>(job->batch) * efficiency;
    snapshot.oracle_remaining_iterations =
        per_iteration > 0.0 ? (job->TotalExamples() - job->progress) / per_iteration : 0.0;
    snapshot.oracle_single_gpu_remaining =
        snapshot.oracle_remaining_iterations *
        job->profile->TrueIterTime(Placement{1, 1}, job->batch);
    snapshots.push_back(std::move(snapshot));
  }
  (void)now;
  return snapshots;
}

void Simulator::ApplyAllocation(Job& job, const std::vector<int>& row, double now) {
  std::vector<int> new_row = row;
  new_row.resize(cluster_.gpus_per_node.size(), 0);
  std::vector<int> old_row = job.alloc;
  old_row.resize(cluster_.gpus_per_node.size(), 0);
  if (new_row == old_row) {
    return;
  }
  const Placement new_placement = PlacementOf(new_row);
  if (job.placement.num_gpus > 0) {
    ++job.restarts;  // Had resources: must checkpoint before moving.
  }
  result_.events.push_back(SimEvent{
      now, new_placement.num_gpus > 0 ? SimEventKind::kReallocate : SimEventKind::kPreempt,
      job.spec.job_id, new_placement.num_gpus, new_placement.num_nodes});
  job.alloc = std::move(new_row);
  job.placement = new_placement;
  if (new_placement.num_gpus > 0) {
    job.restart_until = now + options_.restart_delay;
    job.agent.NotifyAllocation(new_placement);
    if (scheduler_->adapts_batch_size()) {
      if (scheduler_->throughput_only_batch()) {
        job.batch = job.agent.limits().MaxFeasible(new_placement.num_gpus);
      } else {
        const auto choice = job.agent.TuneBatchSize(new_placement);
        if (choice.batch_size > 0) {
          job.batch = choice.batch_size;
        }
      }
    }
  }
}

void Simulator::RunSchedulingRound(double now) {
  SchedulerContext context;
  context.now = now;
  context.cluster = &cluster_;
  context.jobs = BuildSnapshots(now);
  const auto decisions = scheduler_->Schedule(context);
  for (auto& job : jobs_) {
    if (job->finished) {
      continue;
    }
    const auto it = decisions.find(job->spec.job_id);
    if (it != decisions.end()) {
      ApplyAllocation(*job, it->second, now);
    }
  }
}

void Simulator::RunAutoscaling(double now) {
  SchedulerContext context;
  context.now = now;
  context.cluster = &cluster_;
  context.jobs = BuildSnapshots(now);
  const int current = cluster_.NumNodes();
  const int target = autoscaler_->DecideNodes(context, current, options_.gpus_per_node);
  if (target == current || target <= 0) {
    return;
  }
  Log(LogLevel::kInfo) << "autoscale at t=" << now << ": " << current << " -> " << target
                       << " nodes";
  result_.events.push_back(SimEvent{now, SimEventKind::kClusterResize, 0, 0, target});
  cluster_ = ClusterSpec::Homogeneous(target, options_.gpus_per_node);
  scheduler_->OnClusterChanged(cluster_);
  for (auto& job : jobs_) {
    if (job->finished || job->alloc.empty()) {
      continue;
    }
    bool lost_gpus = false;
    for (size_t n = static_cast<size_t>(target); n < job->alloc.size(); ++n) {
      if (job->alloc[n] > 0) {
        lost_gpus = true;
      }
    }
    job->alloc.resize(static_cast<size_t>(target), 0);
    if (lost_gpus) {
      // The job's replicas on released nodes are gone; it checkpoints and
      // waits for the next scheduling round.
      job->alloc.assign(static_cast<size_t>(target), 0);
      job->placement = Placement{};
      ++job->restarts;
    }
  }
}

bool Simulator::JobSuffersInterference(const Job& job) const {
  if (options_.interference_slowdown <= 0.0 || job.placement.num_nodes < 2) {
    return false;
  }
  for (size_t n = 0; n < job.alloc.size(); ++n) {
    if (job.alloc[n] <= 0) {
      continue;
    }
    for (const auto& other : jobs_) {
      if (other.get() == &job || other->finished || other->placement.num_nodes < 2) {
        continue;
      }
      if (n < other->alloc.size() && other->alloc[n] > 0) {
        return true;
      }
    }
  }
  return false;
}

void Simulator::AdvanceJobs(double now, double dt) {
  for (auto& job : jobs_) {
    if (!job->Running(now)) {
      continue;
    }
    if (job->start_time < 0.0) {
      job->start_time = now;
      result_.events.push_back(SimEvent{now, SimEventKind::kStart, job->spec.job_id,
                                        job->placement.num_gpus, job->placement.num_nodes});
    }
    const double slow =
        JobSuffersInterference(*job) ? 1.0 - options_.interference_slowdown : 1.0;
    const double iter_time = job->profile->TrueIterTime(job->placement, job->batch);
    if (iter_time <= 0.0) {
      continue;
    }
    const double throughput = static_cast<double>(job->batch) / iter_time * slow;
    const double efficiency =
        job->profile->TrueEfficiency(job->batch, job->ProgressFraction());
    const double rate = throughput * efficiency;
    const double remaining = job->TotalExamples() - job->progress;
    double step = dt;
    bool completes = false;
    if (rate * dt >= remaining - kProgressEpsilon) {
      step = remaining / rate;
      completes = true;
    }
    job->progress += rate * step;
    job->gpu_time += job->placement.num_gpus * step;
    job->run_seconds += step;
    job->eff_integral += efficiency * step;
    job->tput_integral += throughput * step;
    job->goodput_integral += rate * step;

    // Profiling: the agent observes the iteration time (inflated by any
    // interference) with multiplicative measurement noise, plus one gradient
    // moment sample per tick.
    const double observed_iter =
        iter_time / slow * std::exp(job->rng.Normal(0.0, options_.observation_noise));
    job->agent.RecordIteration(job->placement, job->batch, observed_iter);
    const double phi = job->profile->gns.PhiAt(job->ProgressFraction());
    GnsSample sample;
    sample.cov_trace = phi * std::exp(job->rng.Normal(0.0, options_.gns_noise));
    sample.grad_sqnorm = std::exp(job->rng.Normal(0.0, options_.gns_noise));
    job->agent.RecordGradientStats(sample);

    if (completes) {
      job->finished = true;
      job->finish_time = now + step;
      job->alloc.assign(job->alloc.size(), 0);
      job->placement = Placement{};
      result_.events.push_back(
          SimEvent{job->finish_time, SimEventKind::kComplete, job->spec.job_id, 0, 0});
    }
  }
}

void Simulator::RecordTimelineSample(double now) {
  ClusterSample sample;
  sample.time = now;
  sample.nodes = cluster_.NumNodes();
  sample.total_gpus = cluster_.TotalGpus();
  double eff_sum = 0.0;
  for (const auto& job : jobs_) {
    if (job->finished || job->placement.num_gpus <= 0) {
      continue;
    }
    ++sample.running_jobs;
    sample.gpus_in_use += job->placement.num_gpus;
    eff_sum += job->profile->TrueEfficiency(job->batch, job->ProgressFraction());
    sample.max_batch_size = std::max(sample.max_batch_size, job->batch);
  }
  if (sample.running_jobs > 0) {
    sample.mean_efficiency = eff_sum / sample.running_jobs;
  }
  if (const auto* pollux = dynamic_cast<const PolluxPolicy*>(scheduler_)) {
    sample.utility = pollux->sched().last_utility();
  }
  result_.timeline.push_back(sample);
}

bool Simulator::AllJobsFinished() const {
  if (next_submission_ < trace_.size()) {
    return false;
  }
  for (const auto& job : jobs_) {
    if (!job->finished) {
      return false;
    }
  }
  return true;
}

SimResult Simulator::Run() {
  double now = 0.0;
  double next_report = 0.0;
  double next_sched = 0.0;
  double next_autoscale = options_.autoscale_interval;
  while (now < options_.max_time) {
    ActivateSubmissions(now);
    if (now + 1e-9 >= next_report) {
      RefreshReports(now);
      next_report += options_.report_interval;
    }
    if (now + 1e-9 >= next_sched) {
      RunSchedulingRound(now);
      RecordTimelineSample(now);
      next_sched += options_.sched_interval;
    }
    if (autoscaler_ != nullptr && now + 1e-9 >= next_autoscale) {
      RunAutoscaling(now);
      next_autoscale += options_.autoscale_interval;
    }
    if (AllJobsFinished()) {
      break;
    }
    AdvanceJobs(now, options_.tick);
    result_.node_seconds += cluster_.NumNodes() * options_.tick;
    now += options_.tick;
  }

  result_.timed_out = !AllJobsFinished();
  result_.makespan = 0.0;
  for (const auto& job : jobs_) {
    JobResult job_result;
    job_result.job_id = job->spec.job_id;
    job_result.model = job->spec.model;
    job_result.category = job->profile->category;
    job_result.submit_time = job->spec.submit_time;
    job_result.start_time = job->start_time;
    job_result.finish_time = job->finished ? job->finish_time : now;
    job_result.gpu_time = job->gpu_time;
    job_result.num_restarts = job->restarts;
    job_result.completed = job->finished;
    if (job->run_seconds > 0.0) {
      job_result.avg_efficiency = job->eff_integral / job->run_seconds;
      job_result.avg_throughput = job->tput_integral / job->run_seconds;
      job_result.avg_goodput = job->goodput_integral / job->run_seconds;
    }
    result_.makespan = std::max(result_.makespan, job_result.finish_time);
    result_.jobs.push_back(job_result);
  }
  return result_;
}

Summary SimResult::JctSummary() const {
  std::vector<double> jcts;
  jcts.reserve(jobs.size());
  for (const auto& job : jobs) {
    jcts.push_back(job.Jct());
  }
  return Summarize(jcts);
}

double SimResult::AvgClusterEfficiency() const {
  double total = 0.0;
  int samples = 0;
  for (const auto& sample : timeline) {
    if (sample.running_jobs > 0) {
      total += sample.mean_efficiency;
      ++samples;
    }
  }
  return samples > 0 ? total / samples : 0.0;
}

double SimResult::AvgUtilization() const {
  double total = 0.0;
  int samples = 0;
  for (const auto& sample : timeline) {
    if (sample.running_jobs > 0 && sample.total_gpus > 0) {
      // gpus_in_use relative to the cluster size at that instant (the
      // denominator matters under autoscaling).
      total += static_cast<double>(sample.gpus_in_use) / sample.total_gpus;
      ++samples;
    }
  }
  return samples > 0 ? total / samples : 0.0;
}

double SimResult::AvgJobThroughput() const {
  double total = 0.0;
  for (const auto& job : jobs) {
    total += job.avg_throughput;
  }
  return jobs.empty() ? 0.0 : total / static_cast<double>(jobs.size());
}

double SimResult::AvgJobGoodput() const {
  double total = 0.0;
  for (const auto& job : jobs) {
    total += job.avg_goodput;
  }
  return jobs.empty() ? 0.0 : total / static_cast<double>(jobs.size());
}

}  // namespace pollux
