#include "sim/simulator.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/engine/event_queue.h"
#include "sim/engine/progress_integrator.h"
#include "sim/engine/sim_clock.h"
#include "sim/engine/timers.h"
#include "sim/pollux_policy.h"
#include "util/logging.h"

namespace pollux {
namespace {

constexpr double kProgressEpsilon = 1e-6;

// Sim-time trace tracks (pid kSimPid): jobs use their job id, nodes are
// offset so the two id spaces can't collide; the scheduler control plane gets
// its own track above both, and rack-scoped partition spans above that.
constexpr uint64_t kNodeTrackBase = uint64_t{1} << 40;
constexpr uint64_t kSchedTrack = kNodeTrackBase * 2;
constexpr uint64_t kRackTrackBase = kNodeTrackBase * 3;

struct SimMetrics {
  obs::Counter* ticks;
  obs::Counter* engine_events;
  obs::Gauge* engine_events_per_s;
  obs::Gauge* run_wall_s;
  obs::Counter* events_by_kind[15];
  obs::Gauge* failed_nodes;
  obs::Gauge* masked_gpus;
  obs::Counter* net_sent;
  obs::Counter* net_delivered;
  obs::Counter* net_lost;
  obs::Counter* net_duplicated;
  obs::Counter* net_retries;
  obs::Counter* net_dup_reports;
  obs::Counter* net_decisions_suppressed;
  obs::Counter* net_decisions_bounced;
  obs::Counter* net_partitions;
  obs::Gauge* net_in_flight;
  obs::Histogram* net_delivery_delay;
  obs::Gauge* avg_goodput;
  obs::Gauge* avg_throughput;
  obs::Gauge* avg_efficiency;
  obs::Gauge* avg_jct_s;
  obs::Gauge* makespan_s;
  obs::Counter* checkpoint_writes;
  obs::Counter* checkpoint_resumes;
  obs::Counter* sched_crashes;
  obs::Counter* warm_restores;
  obs::Counter* cold_resets;
  obs::Counter* agents_reset;

  static const SimMetrics& Get() {
    static const SimMetrics metrics;
    return metrics;
  }

 private:
  SimMetrics() {
    auto& registry = obs::MetricsRegistry::Global();
    ticks = registry.GetCounter("sim.ticks");
    engine_events = registry.GetCounter("sim.engine.events");
    engine_events_per_s = registry.GetGauge("sim.engine.events_per_s");
    run_wall_s = registry.GetGauge("sim.run_wall_s");
    for (int kind = 0; kind <= static_cast<int>(SimEventKind::kDecisionBounce); ++kind) {
      events_by_kind[kind] = registry.GetCounter(
          std::string("sim.events.") + SimEventKindName(static_cast<SimEventKind>(kind)));
    }
    failed_nodes = registry.GetGauge("sim.failed_nodes");
    masked_gpus = registry.GetGauge("sim.masked_gpus");
    net_sent = registry.GetCounter("net.messages_sent");
    net_delivered = registry.GetCounter("net.messages_delivered");
    net_lost = registry.GetCounter("net.messages_lost");
    net_duplicated = registry.GetCounter("net.messages_duplicated");
    net_retries = registry.GetCounter("net.retries");
    net_dup_reports = registry.GetCounter("net.dup_reports");
    net_decisions_suppressed = registry.GetCounter("net.decisions_suppressed");
    net_decisions_bounced = registry.GetCounter("net.decisions_bounced");
    net_partitions = registry.GetCounter("net.partitions");
    net_in_flight = registry.GetGauge("net.in_flight");
    net_delivery_delay = registry.GetHistogram("net.delivery_delay_s");
    avg_goodput = registry.GetGauge("sim.avg_goodput");
    avg_throughput = registry.GetGauge("sim.avg_throughput");
    avg_efficiency = registry.GetGauge("sim.avg_efficiency");
    avg_jct_s = registry.GetGauge("sim.avg_jct_s");
    makespan_s = registry.GetGauge("sim.makespan_s");
    checkpoint_writes = registry.GetCounter("sim.checkpoint.writes");
    checkpoint_resumes = registry.GetCounter("sim.checkpoint.resumes");
    sched_crashes = registry.GetCounter("sim.recovery.scheduler_crashes");
    warm_restores = registry.GetCounter("sim.recovery.warm_restores");
    cold_resets = registry.GetCounter("sim.recovery.cold_resets");
    agents_reset = registry.GetCounter("sim.recovery.agents_reset");
  }
};

// Every lifecycle event flows through here so the structured log and the
// per-kind counters can never disagree.
void AppendEvent(SimResult& result, SimEvent event) {
  if (obs::MetricsRegistry::Global().enabled()) {
    SimMetrics::Get().events_by_kind[static_cast<int>(event.kind)]->Add();
  }
  result.events.push_back(event);
}

Placement PlacementOf(const std::vector<int>& row) {
  Placement placement;
  for (int gpus : row) {
    if (gpus > 0) {
      placement.num_gpus += gpus;
      ++placement.num_nodes;
    }
  }
  return placement;
}

// The node hosting a job's rank-0 agent process (first node with GPUs), or -1
// for queued jobs whose agent is co-located with the scheduler.
int AgentHostNode(const std::vector<int>& alloc) {
  for (size_t n = 0; n < alloc.size(); ++n) {
    if (alloc[n] > 0) {
      return static_cast<int>(n);
    }
  }
  return -1;
}

}  // namespace

bool SimEngineByName(const std::string& name, SimEngine* engine) {
  if (name.empty() || name == "event") {
    *engine = SimEngine::kEvent;
    return true;
  }
  if (name == "ticked") {
    *engine = SimEngine::kTicked;
    return true;
  }
  return false;
}

const char* SimEngineName(SimEngine engine) {
  return engine == SimEngine::kTicked ? "ticked" : "event";
}

const char* SimEventKindName(SimEventKind kind) {
  switch (kind) {
    case SimEventKind::kSubmit:
      return "submit";
    case SimEventKind::kStart:
      return "start";
    case SimEventKind::kReallocate:
      return "reallocate";
    case SimEventKind::kPreempt:
      return "preempt";
    case SimEventKind::kComplete:
      return "complete";
    case SimEventKind::kClusterResize:
      return "cluster_resize";
    case SimEventKind::kNodeFail:
      return "node_fail";
    case SimEventKind::kNodeRepair:
      return "node_repair";
    case SimEventKind::kEvict:
      return "evict";
    case SimEventKind::kRestartFailure:
      return "restart_failure";
    case SimEventKind::kReportDrop:
      return "report_drop";
    case SimEventKind::kSchedCrash:
      return "sched_crash";
    case SimEventKind::kNetPartition:
      return "net_partition";
    case SimEventKind::kNetHeal:
      return "net_heal";
    case SimEventKind::kDecisionBounce:
      return "decision_bounce";
  }
  return "?";
}

struct Simulator::Job {
  Job(const JobSpec& job_spec, const ModelProfile& model_profile, bool adaptive_batch,
      Rng job_rng, AgentConfig agent_config)
      : spec(job_spec),
        profile(&model_profile),
        agent(job_spec.job_id, model_profile.base_batch_size, model_profile.base_lr,
              model_profile.Limits(), agent_config),
        rng(job_rng),
        batch(adaptive_batch ? model_profile.base_batch_size
                             : std::max(job_spec.batch_size, model_profile.base_batch_size)) {}

  JobSpec spec;
  const ModelProfile* profile;
  PolluxAgent agent;
  Rng rng;

  std::vector<int> alloc;  // GPUs per node; empty until first allocation.
  Placement placement;
  long batch;
  double progress = 0.0;  // Reference examples completed.
  bool finished = false;
  double restart_until = 0.0;
  double start_time = -1.0;
  double finish_time = -1.0;
  double gpu_time = 0.0;
  int restarts = 0;
  int evictions = 0;
  int restart_failures = 0;
  double backoff_seconds = 0.0;
  bool has_report = false;
  // Time the report the scheduler last received was *produced* (drops don't
  // update it; under the network model delivery lags production, so report
  // age includes transit time).
  double last_report_time = -1.0;
  AgentReport report;
  // Highest per-channel sequence numbers delivered so far: older or duplicate
  // reports/decisions that arrive out of order are discarded.
  uint64_t report_seq = 0;
  uint64_t decision_seq = 0;

  // Time integrals while running.
  double run_seconds = 0.0;
  double eff_integral = 0.0;
  double tput_integral = 0.0;
  double goodput_integral = 0.0;

  double TotalExamples() const { return profile->TotalExamples(); }
  double ProgressFraction() const {
    return std::clamp(progress / TotalExamples(), 0.0, 1.0);
  }
  bool Running(double now) const {
    return !finished && placement.num_gpus > 0 && now >= restart_until;
  }
};

Simulator::Simulator(SimOptions options, std::vector<JobSpec> trace, Scheduler* scheduler,
                     ClusterAutoscaler* autoscaler)
    : options_(std::move(options)),
      cluster_(options_.cluster),
      base_cluster_(options_.cluster),
      scheduler_(scheduler),
      autoscaler_(autoscaler),
      rng_(options_.seed),
      trace_(std::move(trace)) {
  std::sort(trace_.begin(), trace_.end(),
            [](const JobSpec& a, const JobSpec& b) { return a.submit_time < b.submit_time; });
  if (options_.faults.enabled()) {
    // The injector draws from streams derived from (seed ^ salt), so the
    // main simulation stream (job noise forks) is untouched.
    faults_ = std::make_unique<FaultInjector>(options_.faults, cluster_.NumNodes(),
                                              options_.seed ^ 0xFA017ULL);
  }
  if (options_.net.enabled()) {
    // Distinct salt: the network model's streams never collide with the
    // fault injector's even under identical seeds.
    net_ = std::make_unique<NetModel>(options_.net, cluster_.NumNodes(),
                                      options_.seed ^ 0x5E7A11ULL);
    last_heard_.assign(cluster_.gpus_per_node.size(), 0.0);
  }
}

Simulator::~Simulator() = default;

void Simulator::Emit(SimEvent event) {
  if (event_mode_) {
    // The event engine advances jobs one at a time across a span, so raw
    // emission order interleaves jobs arbitrarily; events are buffered and
    // flushed sorted by time once per queue dispatch, which keeps the log
    // strictly monotone (the tightened invariant) and preserves the ticked
    // engine's same-instant ordering (stable sort keeps insertion order).
    pending_events_.push_back(event);
    return;
  }
  AppendEvent(result_, event);
}

void Simulator::FlushPendingEvents() {
  if (pending_events_.empty()) {
    return;
  }
  std::stable_sort(pending_events_.begin(), pending_events_.end(),
                   [](const SimEvent& a, const SimEvent& b) { return a.time < b.time; });
  for (SimEvent& event : pending_events_) {
    AppendEvent(result_, event);
  }
  pending_events_.clear();
}

void Simulator::ActivateSubmissions(double now) {
  AgentConfig agent_config;
  if (options_.faults.enabled()) {
    // Under fault injection the agents run their robust-estimation path:
    // straggler-inflated iteration times are MAD-rejected before the RMSLE
    // fit and diverged fits keep the previous theta_sys.
    agent_config.robust_fitting = true;
  }
  while (next_submission_ < trace_.size() && trace_[next_submission_].submit_time <= now) {
    const JobSpec& spec = trace_[next_submission_];
    jobs_.push_back(std::make_unique<Job>(spec, GetModelProfile(spec.model),
                                          scheduler_->adapts_batch_size(), rng_.Fork(),
                                          agent_config));
    active_.push_back(jobs_.size() - 1);
    Emit(SimEvent{spec.submit_time, SimEventKind::kSubmit, spec.job_id, 0, 0});
    ++next_submission_;
  }
}

void Simulator::CompactActive() const {
  size_t kept = 0;
  for (size_t idx : active_) {
    if (!jobs_[idx]->finished) {
      active_[kept++] = idx;
    }
  }
  active_.resize(kept);
}

void Simulator::RefreshReports(double now) {
  TRACE_SCOPE("sim.refresh_reports");
  const bool metrics_on = obs::MetricsRegistry::Global().enabled();
  CompactActive();
  for (size_t active_idx : active_) {
    Job* const job = jobs_[active_idx].get();
    // The agent always refreshes locally; the *delivery* to the scheduler
    // can be lost. A dropped report leaves the scheduler holding the
    // previous one, whose age keeps growing.
    AgentReport fresh = job->agent.MakeReport();
    const bool dropped = faults_ != nullptr && options_.faults.report_drop_rate > 0.0 &&
                         faults_->DropReport();
    if (dropped) {
      Emit(SimEvent{now, SimEventKind::kReportDrop, job->spec.job_id, 0, 0});
    } else if (net_ != nullptr) {
      // The report travels as a sequence-numbered message; the agent retries
      // lost attempts with capped jittered backoff at send time. A message
      // whose every attempt is lost counts as a drop, like the legacy path.
      const NetModel::SendOutcome outcome =
          net_->SendReport(job->spec.job_id, AgentHostNode(job->alloc), fresh, now);
      if (metrics_on) {
        const SimMetrics& metrics = SimMetrics::Get();
        metrics.net_sent->Add();
        metrics.net_retries->Add(static_cast<uint64_t>(outcome.attempts - 1));
        if (outcome.duplicated) {
          metrics.net_duplicated->Add();
        }
        if (!outcome.delivered) {
          metrics.net_lost->Add();
        }
      }
      if (!outcome.delivered) {
        Emit(SimEvent{now, SimEventKind::kReportDrop, job->spec.job_id, 0, 0});
      }
    } else {
      job->report = std::move(fresh);
      job->has_report = true;
      job->last_report_time = now;
    }
    if (scheduler_->adapts_batch_size() && job->placement.num_gpus > 0) {
      if (scheduler_->throughput_only_batch()) {
        // Or et al.: throughput increases with batch size, so the largest
        // feasible batch is "optimal" under a throughput-only model.
        job->batch = job->agent.limits().MaxFeasible(job->placement.num_gpus);
      } else {
        const auto choice = job->agent.TuneBatchSize(job->placement);
        if (choice.batch_size > 0) {
          job->batch = choice.batch_size;
        }
      }
    }
  }
  if (net_ != nullptr) {
    // Liveness heartbeats from every physically-up node, once per report
    // interval. RNG-free by contract: blocked under partition, delivered
    // after the base latency otherwise.
    for (size_t n = 0; n < cluster_.gpus_per_node.size(); ++n) {
      if (cluster_.gpus_per_node[n] > 0) {
        net_->SendHeartbeat(static_cast<int>(n), now);
      }
    }
  }
}

std::vector<JobSnapshot> Simulator::BuildSnapshots(double now) {
  std::vector<JobSnapshot> snapshots;
  CompactActive();
  snapshots.reserve(active_.size());
  for (size_t active_idx : active_) {
    Job* const job = jobs_[active_idx].get();
    if (!job->has_report) {
      job->report = job->agent.MakeReport();
      job->has_report = true;
      job->last_report_time = now;
    }
    JobSnapshot snapshot;
    snapshot.job_id = job->spec.job_id;
    snapshot.spec = &job->spec;
    snapshot.profile = job->profile;
    snapshot.agent = job->report;
    snapshot.gpu_time = job->gpu_time;
    if (job->placement.num_gpus > 0) {
      snapshot.allocation = job->alloc;
    }
    snapshot.submit_time = job->spec.submit_time;
    snapshot.batch_size = job->batch;
    const double efficiency =
        job->profile->TrueEfficiency(job->batch, job->ProgressFraction());
    const double per_iteration = static_cast<double>(job->batch) * efficiency;
    snapshot.oracle_remaining_iterations =
        per_iteration > 0.0 ? (job->TotalExamples() - job->progress) / per_iteration : 0.0;
    snapshot.oracle_single_gpu_remaining =
        snapshot.oracle_remaining_iterations *
        job->profile->TrueIterTime(Placement{1, 1}, job->batch);
    snapshot.report_age = job->last_report_time >= 0.0 ? now - job->last_report_time : 0.0;
    snapshot.report_seq = job->report_seq;
    snapshots.push_back(std::move(snapshot));
  }
  return snapshots;
}

void Simulator::ApplyAllocation(Job& job, const std::vector<int>& row, double now) {
  std::vector<int> new_row = row;
  new_row.resize(cluster_.gpus_per_node.size(), 0);
  std::vector<int> old_row = job.alloc;
  old_row.resize(cluster_.gpus_per_node.size(), 0);
  if (new_row == old_row) {
    return;
  }
  const Placement new_placement = PlacementOf(new_row);
  if (job.placement.num_gpus > 0) {
    ++job.restarts;  // Had resources: must checkpoint before moving.
  }
  Emit(SimEvent{
      now, new_placement.num_gpus > 0 ? SimEventKind::kReallocate : SimEventKind::kPreempt,
      job.spec.job_id, new_placement.num_gpus, new_placement.num_nodes});
  job.alloc = std::move(new_row);
  job.placement = new_placement;
  if (new_placement.num_gpus > 0) {
    double delay = options_.restart_delay;
    if (faults_ != nullptr && options_.faults.restart_fail_rate > 0.0) {
      // Checkpoint-restore attempts can fail; each failure costs the full
      // restart delay plus a capped exponentially growing backoff before the
      // retry. Drawn from a dedicated stream, so determinism per seed holds.
      double backoff = options_.faults.restart_backoff_init;
      while (faults_->RestartFails()) {
        ++job.restart_failures;
        Emit(SimEvent{now, SimEventKind::kRestartFailure, job.spec.job_id,
                                      job.restart_failures, 0});
        job.backoff_seconds += backoff;
        delay += backoff + options_.restart_delay;
        backoff = std::min(2.0 * backoff, options_.faults.restart_backoff_cap);
      }
    }
    job.restart_until = now + delay;
    job.agent.NotifyAllocation(new_placement);
    if (scheduler_->adapts_batch_size()) {
      if (scheduler_->throughput_only_batch()) {
        job.batch = job.agent.limits().MaxFeasible(new_placement.num_gpus);
      } else {
        const auto choice = job.agent.TuneBatchSize(new_placement);
        if (choice.batch_size > 0) {
          job.batch = choice.batch_size;
        }
      }
    }
  }
}

void Simulator::RunSchedulingRound(double now) {
  TRACE_SCOPE("sim.sched_round");
  CompactActive();
  if (active_.empty()) {
    // Entirely empty round: nothing submitted-and-unfinished, so there is
    // nothing to snapshot, no decision to make, and no event to emit. Skip
    // the whole round body (including the O(nodes) lease-view rebuild) while
    // the fixed round cadence keeps firing. Schedulers see no difference:
    // with zero jobs every policy returns zero decisions, and PolluxSched's
    // empty-round early-return does not count toward sched.rounds.
    return;
  }
  SchedulerContext context;
  context.now = now;
  context.cluster = &SchedulerVisible(net_ != nullptr ? SchedulerClusterView(now) : cluster_);
  context.jobs = BuildSnapshots(now);
  const auto decisions = scheduler_->Schedule(context);
  CompactActive();
  for (size_t active_idx : active_) {
    Job* const job = jobs_[active_idx].get();
    const auto it = decisions.find(job->spec.job_id);
    if (it == decisions.end()) {
      continue;
    }
    if (net_ == nullptr) {
      ApplyAllocation(*job, it->second, now);
      continue;
    }
    // Under the network model only *changed* rows travel: a decision message
    // per job per change, not per round (no-op decisions would only add
    // suppression noise at the receiver).
    std::vector<int> new_row = it->second;
    new_row.resize(cluster_.gpus_per_node.size(), 0);
    std::vector<int> old_row = job->alloc;
    old_row.resize(cluster_.gpus_per_node.size(), 0);
    if (new_row != old_row) {
      SendDecision(*job, new_row, now);
    }
  }
}

void Simulator::SendDecision(Job& job, const std::vector<int>& row, double now) {
  const NetModel::SendOutcome outcome =
      net_->SendDecision(job.spec.job_id, AgentHostNode(job.alloc), row, now);
  if (obs::MetricsRegistry::Global().enabled()) {
    const SimMetrics& metrics = SimMetrics::Get();
    metrics.net_sent->Add();
    metrics.net_retries->Add(static_cast<uint64_t>(outcome.attempts - 1));
    if (outcome.duplicated) {
      metrics.net_duplicated->Add();
    }
    if (!outcome.delivered) {
      // The decision never reaches the agent; the scheduler self-corrects
      // next round when the job's snapshot still shows the old allocation.
      metrics.net_lost->Add();
    }
  }
}

const ClusterSpec& Simulator::SchedulerClusterView(double now) {
  if (options_.net.naive_masking || options_.net.lease_intervals <= 0) {
    // Instant-masking baseline: the scheduler sees the physically masked
    // capacity immediately, as if liveness were free and perfect.
    return cluster_;
  }
  // Lease view: the scheduler only distrusts a node after its lease expires —
  // lease_intervals heartbeat periods plus transit slack, so a healthy node
  // is never masked spuriously. Until then a crashed node still looks alive
  // (decisions placed there bounce at apply time); conversely a repaired node
  // is readmitted at its first heartbeat delivery.
  sched_view_ = base_cluster_;
  const double lease = options_.net.lease_intervals * options_.report_interval +
                       2.0 * (options_.net.latency + options_.net.jitter) + options_.tick;
  for (size_t n = 0; n < sched_view_.gpus_per_node.size(); ++n) {
    const double heard = n < last_heard_.size() ? last_heard_[n] : 0.0;
    if (now - heard > lease) {
      sched_view_.gpus_per_node[n] = 0;
    }
  }
  return sched_view_;
}

const ClusterSpec& Simulator::SchedulerVisible(const ClusterSpec& physical) {
  if (!options_.scheduler_topology_blind || !physical.HasTopology()) {
    return physical;
  }
  blind_view_ = physical.WithoutTopology();
  return blind_view_;
}

void Simulator::RunAutoscaling(double now) {
  SchedulerContext context;
  context.now = now;
  context.cluster = &cluster_;
  context.jobs = BuildSnapshots(now);
  const int current = cluster_.NumNodes();
  const int target = autoscaler_->DecideNodes(context, current, options_.gpus_per_node);
  if (target == current || target <= 0) {
    return;
  }
  Log(LogLevel::kInfo) << "autoscale at t=" << now << ": " << current << " -> " << target
                       << " nodes";
  Emit(SimEvent{now, SimEventKind::kClusterResize, 0, 0, target});
  base_cluster_ = ClusterSpec::Homogeneous(target, options_.gpus_per_node);
  if (options_.cluster.HasTopology()) {
    // Preserve the topology annotations through the resize: racks keep the
    // configured arity and new nodes repeat the original per-node GPU-type
    // pattern, so a grown cluster adds whole racks of the same mix instead
    // of silently degrading to the flat model.
    const ClusterSpec& proto = options_.cluster;
    int nodes_per_rack = 0;
    for (int rack : proto.rack_of_node) {
      nodes_per_rack += rack == 0 ? 1 : 0;
    }
    nodes_per_rack = std::max(nodes_per_rack, 1);
    const size_t proto_nodes = proto.rack_of_node.size();
    base_cluster_.rack_link_factor = proto.rack_link_factor;
    base_cluster_.rack_of_node.resize(static_cast<size_t>(target));
    base_cluster_.gpu_type_of_node.resize(static_cast<size_t>(target));
    base_cluster_.node_gpu_scale.resize(static_cast<size_t>(target));
    for (int n = 0; n < target; ++n) {
      const size_t src = proto_nodes > 0 ? static_cast<size_t>(n) % proto_nodes : 0;
      base_cluster_.rack_of_node[static_cast<size_t>(n)] = n / nodes_per_rack;
      base_cluster_.gpu_type_of_node[static_cast<size_t>(n)] =
          src < proto.gpu_type_of_node.size() ? proto.gpu_type_of_node[src] : 0;
      base_cluster_.node_gpu_scale[static_cast<size_t>(n)] =
          src < proto.node_gpu_scale.size() ? proto.node_gpu_scale[src] : 1.0;
    }
  }
  cluster_ = base_cluster_;
  if (faults_ != nullptr) {
    faults_->OnClusterResize(target, now);
    for (int n = 0; n < target; ++n) {
      if (faults_->NodeFailed(n)) {
        cluster_.gpus_per_node[static_cast<size_t>(n)] = 0;
      }
    }
  }
  if (net_ != nullptr) {
    net_->OnClusterResize(target, now);
    // Newly provisioned nodes start with a fresh lease (heard "now"), not an
    // expired one from before they existed.
    last_heard_.resize(static_cast<size_t>(target), now);
  }
  scheduler_->OnClusterChanged(SchedulerVisible(cluster_));
  for (auto& job : jobs_) {
    if (job->finished || job->alloc.empty()) {
      continue;
    }
    bool lost_gpus = false;
    for (size_t n = static_cast<size_t>(target); n < job->alloc.size(); ++n) {
      if (job->alloc[n] > 0) {
        lost_gpus = true;
      }
    }
    job->alloc.resize(static_cast<size_t>(target), 0);
    if (lost_gpus) {
      // The job's replicas on released nodes are gone; it checkpoints and
      // waits for the next scheduling round.
      job->alloc.assign(static_cast<size_t>(target), 0);
      job->placement = Placement{};
      ++job->restarts;
    }
  }
}

void Simulator::ProcessFaults(double now) {
  if (faults_ == nullptr) {
    return;
  }
  if (options_.faults.mtbf_sched > 0.0) {
    // Scheduler crashes are polled before node transitions so both engines
    // (per-tick and lazy event polls) replay the same recovery order.
    const int crashes = faults_->PollSchedulerCrashes(now);
    for (int crash = 0; crash < crashes; ++crash) {
      RecoverScheduler(now);
    }
  }
  const auto transitions = faults_->Poll(now);
  for (const auto& transition : transitions) {
    const size_t node = static_cast<size_t>(transition.node);
    if (node >= cluster_.gpus_per_node.size()) {
      continue;  // Node was released by the autoscaler in the meantime.
    }
    if (transition.failed) {
      Emit(SimEvent{now, SimEventKind::kNodeFail, 0, 0, transition.node});
      obs::TraceRecorder::Global().EmitSimInstant(
          "node_fail", kNodeTrackBase + static_cast<uint64_t>(transition.node), now);
      cluster_.gpus_per_node[node] = 0;
      // Synchronous data-parallel jobs cannot survive losing replicas: every
      // job touching the node checkpoints (at its last 30 s checkpoint) and
      // re-queues for the next scheduling round.
      for (auto& job : jobs_) {
        if (job->finished || node >= job->alloc.size() || job->alloc[node] <= 0) {
          continue;
        }
        ++job->evictions;
        job->alloc.assign(job->alloc.size(), 0);
        job->placement = Placement{};
        Emit(
                    SimEvent{now, SimEventKind::kEvict, job->spec.job_id, 0, transition.node});
        obs::TraceRecorder::Global().EmitSimInstant("evict", job->spec.job_id, now);
      }
    } else {
      Emit(SimEvent{now, SimEventKind::kNodeRepair, 0, 0, transition.node});
      obs::TraceRecorder::Global().EmitSimInstant(
          "node_repair", kNodeTrackBase + static_cast<uint64_t>(transition.node), now);
      cluster_.gpus_per_node[node] = base_cluster_.gpus_per_node[node];
    }
  }
  if (obs::MetricsRegistry::Global().enabled() && faults_ != nullptr) {
    const SimMetrics& metrics = SimMetrics::Get();
    metrics.failed_nodes->Set(static_cast<double>(faults_->num_failed_nodes()));
    metrics.masked_gpus->Set(
        static_cast<double>(base_cluster_.TotalGpus() - cluster_.TotalGpus()));
  }
  if (!transitions.empty() &&
      !(net_ != nullptr && !options_.net.naive_masking && options_.net.lease_intervals > 0)) {
    // Failed nodes are masked out of the schedulers' capacity model (the GA
    // mutates/repairs against zero-capacity columns; consolidated placement
    // sees zero free GPUs there). Under lease-based liveness the scheduler
    // must NOT learn of the transition instantly — it only finds out through
    // missed heartbeats, via SchedulerClusterView at the next round.
    scheduler_->OnClusterChanged(SchedulerVisible(cluster_));
  }
}

void Simulator::RecoverScheduler(double now) {
  const bool warm = options_.faults.sched_recovery == SchedRecovery::kWarm;
  Emit(SimEvent{now, SimEventKind::kSchedCrash, 0, 0, 0});
  obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
  if (recorder.enabled()) {
    recorder.SetTrackName(obs::TraceRecorder::kSimPid, kSchedTrack, "scheduler");
    recorder.EmitSimInstant(warm ? "sched_crash (warm)" : "sched_crash (cold)", kSchedTrack,
                            now);
  }
  const bool metrics_on = obs::MetricsRegistry::Global().enabled();
  if (metrics_on) {
    SimMetrics::Get().sched_crashes->Add();
  }
  if (warm) {
    // Warm recovery: the restarted scheduler process reloads the latest
    // control-plane snapshot — in simulation, an in-memory round trip through
    // the same serialization the on-disk checkpoints use. Lossless, so the
    // run continues byte-identically to one without the crash.
    std::string blob;
    scheduler_->SaveState(&blob);
    if (!scheduler_->LoadState(blob)) {
      Log(LogLevel::kError) << "warm scheduler recovery rejected its own state at t=" << now;
    }
    if (metrics_on) {
      SimMetrics::Get().warm_restores->Add();
    }
    return;
  }
  // Cold recovery: no snapshot survives the crash. The scheduler rebuilds its
  // queues/population from scratch and every unfinished job's agent process
  // restarts with no fitted model or observation history — jobs keep running
  // on their current allocation and batch size while the models refit.
  scheduler_->ResetControlState();
  AgentConfig agent_config;
  if (options_.faults.enabled()) {
    agent_config.robust_fitting = true;
  }
  uint64_t reset = 0;
  for (auto& job : jobs_) {
    if (job->finished) {
      continue;
    }
    job->agent = PolluxAgent(job->spec.job_id, job->profile->base_batch_size,
                             job->profile->base_lr, job->profile->Limits(), agent_config);
    if (job->placement.num_gpus > 0) {
      job->agent.NotifyAllocation(job->placement);
    }
    job->has_report = false;
    job->last_report_time = -1.0;
    job->report = AgentReport{};
    ++reset;
  }
  if (metrics_on) {
    SimMetrics::Get().cold_resets->Add();
    SimMetrics::Get().agents_reset->Add(reset);
  }
  Log(LogLevel::kInfo) << "scheduler crash at t=" << now << ": cold recovery reset " << reset
                       << " agents";
}

void Simulator::ProcessNet(double now) {
  if (net_ == nullptr) {
    return;
  }
  const bool metrics_on = obs::MetricsRegistry::Global().enabled();
  obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
  for (const auto& transition : net_->PollTransitions(now)) {
    const std::pair<int, int> key{transition.rack ? 1 : 0, transition.index};
    const uint64_t track = transition.rack
                               ? kRackTrackBase + static_cast<uint64_t>(transition.index)
                               : kNodeTrackBase + static_cast<uint64_t>(transition.index);
    if (transition.down) {
      Emit(SimEvent{now, SimEventKind::kNetPartition, 0, transition.rack ? 1 : 0,
                    transition.index});
      partition_started_[key] = transition.time;
      if (metrics_on) {
        SimMetrics::Get().net_partitions->Add();
      }
      if (recorder.enabled() && transition.rack) {
        recorder.SetTrackName(obs::TraceRecorder::kSimPid, track,
                              "rack " + std::to_string(transition.index));
      }
    } else {
      Emit(SimEvent{now, SimEventKind::kNetHeal, 0, transition.rack ? 1 : 0,
                    transition.index});
      const auto it = partition_started_.find(key);
      if (it != partition_started_.end()) {
        if (recorder.enabled()) {
          recorder.EmitSimSpan(transition.rack ? "rack_partition" : "net_partition", track,
                               it->second, transition.time - it->second);
        }
        partition_started_.erase(it);
      }
    }
  }
  // Deliveries. Heartbeats and reports apply in delivery order; decisions
  // delivered at the same instant apply releases (shrinks) before grows, so
  // a GA rebalance whose messages land together does not spuriously bounce
  // the growing job on capacity the shrinking job is about to release.
  const std::vector<NetModel::Message> due = net_->PopDue(now + 1e-9);
  std::vector<const NetModel::Message*> grows;
  for (const auto& message : due) {
    if (message.kind == NetModel::MsgKind::kDecision) {
      long current = 0;
      for (const auto& job : jobs_) {
        if (job->spec.job_id == message.job_id && !job->finished) {
          current = job->placement.num_gpus;
          break;
        }
      }
      if (PlacementOf(message.row).num_gpus > current) {
        grows.push_back(&message);
        continue;
      }
    }
    DeliverNetMessage(message, now);
  }
  for (const NetModel::Message* message : grows) {
    DeliverNetMessage(*message, now);
  }
  if (metrics_on) {
    SimMetrics::Get().net_in_flight->Set(static_cast<double>(net_->InFlight()));
  }
}

void Simulator::DeliverNetMessage(const NetModel::Message& message, double now) {
  const bool metrics_on = obs::MetricsRegistry::Global().enabled();
  if (message.kind == NetModel::MsgKind::kHeartbeat) {
    if (message.node >= 0 && static_cast<size_t>(message.node) < last_heard_.size()) {
      last_heard_[static_cast<size_t>(message.node)] = now;
    }
    return;
  }
  if (metrics_on) {
    const SimMetrics& metrics = SimMetrics::Get();
    metrics.net_delivered->Add();
    metrics.net_delivery_delay->Record(now - message.sent_at);
  }
  Job* target = nullptr;
  for (auto& job : jobs_) {
    if (job->spec.job_id == message.job_id) {
      target = job.get();
      break;
    }
  }
  if (target == nullptr || target->finished) {
    return;  // The job completed while the message was in flight.
  }
  if (message.kind == NetModel::MsgKind::kReport) {
    if (message.payload_seq <= target->report_seq) {
      // Duplicate, or overtaken by a newer report that arrived first.
      if (metrics_on) {
        SimMetrics::Get().net_dup_reports->Add();
      }
      return;
    }
    target->report_seq = message.payload_seq;
    target->report = message.report;
    target->has_report = true;
    // Age counts from production, so transit delay ages the report too.
    target->last_report_time = message.sent_at;
    return;
  }
  // Allocation decision.
  if (message.payload_seq <= target->decision_seq) {
    // A duplicate copy, or a stale decision overtaken by a newer one.
    if (metrics_on) {
      SimMetrics::Get().net_decisions_suppressed->Add();
    }
    return;
  }
  target->decision_seq = message.payload_seq;
  // The decision was computed against the scheduler's (possibly lease-stale)
  // view; re-validate against the *physical* masked capacity at apply time.
  // Rows that no longer fit — the node crashed or was released while the
  // message was in flight, or the lease view overstated capacity — bounce:
  // the job keeps its current allocation and the scheduler retries from
  // fresher telemetry next round.
  std::vector<int> row = message.row;
  row.resize(cluster_.gpus_per_node.size(), 0);
  bool feasible = true;
  for (size_t n = cluster_.gpus_per_node.size(); n < message.row.size(); ++n) {
    if (message.row[n] > 0) {
      feasible = false;  // Targets a node the autoscaler released.
    }
  }
  if (feasible) {
    std::vector<long> usage(cluster_.gpus_per_node.size(), 0);
    for (const auto& job : jobs_) {
      if (job->finished || job.get() == target) {
        continue;
      }
      for (size_t n = 0; n < job->alloc.size() && n < usage.size(); ++n) {
        usage[n] += job->alloc[n];
      }
    }
    for (size_t n = 0; n < row.size(); ++n) {
      if (row[n] > 0 && usage[n] + row[n] > cluster_.gpus_per_node[n]) {
        feasible = false;
        break;
      }
    }
  }
  if (!feasible) {
    Emit(SimEvent{now, SimEventKind::kDecisionBounce, message.job_id,
                  PlacementOf(message.row).num_gpus, 0});
    if (metrics_on) {
      SimMetrics::Get().net_decisions_bounced->Add();
    }
    return;
  }
  ApplyAllocation(*target, row, now);
}

bool Simulator::JobSuffersInterference(const Job& job) const {
  if (options_.interference_slowdown <= 0.0 || job.placement.num_nodes < 2) {
    return false;
  }
  for (size_t n = 0; n < job.alloc.size(); ++n) {
    if (job.alloc[n] <= 0) {
      continue;
    }
    for (const auto& other : jobs_) {
      if (other.get() == &job || other->finished || other->placement.num_nodes < 2) {
        continue;
      }
      if (n < other->alloc.size() && other->alloc[n] > 0) {
        return true;
      }
    }
  }
  return false;
}

double Simulator::TrueJobIterTime(const Job& job) const {
  if (!cluster_.HasTopology()) {
    return job.profile->TrueIterTime(job.placement, job.batch);
  }
  // Summarize the row as (K, N, R) against the physical topology and find
  // the slowest GPU generation in the gang (synchronous data parallelism
  // paces every replica at the slowest one).
  std::vector<char> rack_seen(static_cast<size_t>(cluster_.NumRacks()), 0);
  RackPlacement placement;
  double scale = 1.0;
  bool any = false;
  for (size_t n = 0; n < job.alloc.size(); ++n) {
    if (job.alloc[n] <= 0) {
      continue;
    }
    placement.num_gpus += job.alloc[n];
    ++placement.num_nodes;
    const int rack = cluster_.RackOf(static_cast<int>(n));
    if (rack >= 0 && static_cast<size_t>(rack) < rack_seen.size() && !rack_seen[rack]) {
      rack_seen[static_cast<size_t>(rack)] = 1;
      ++placement.num_racks;
    }
    const double node_scale = cluster_.GpuScaleOf(static_cast<int>(n));
    scale = any ? std::min(scale, node_scale) : node_scale;
    any = true;
  }
  if (!any) {
    return job.profile->TrueIterTime(job.placement, job.batch);
  }
  return job.profile->TrueRackIterTime(placement, job.batch, cluster_.rack_link_factor, scale);
}

void Simulator::AdvanceJobs(double now, double dt) {
  CompactActive();
  for (size_t active_idx : active_) {
    Job* const job = jobs_[active_idx].get();
    if (!job->Running(now)) {
      continue;
    }
    if (job->start_time < 0.0) {
      job->start_time = now;
      Emit(SimEvent{now, SimEventKind::kStart, job->spec.job_id,
                                    job->placement.num_gpus, job->placement.num_nodes});
    }
    double slow = JobSuffersInterference(*job) ? 1.0 - options_.interference_slowdown : 1.0;
    if (faults_ != nullptr) {
      // A straggler node inflates the whole job's iteration time (synchronous
      // training paces at the slowest replica).
      slow /= faults_->JobSlowdown(job->alloc);
    }
    const double iter_time = TrueJobIterTime(*job);
    if (iter_time <= 0.0) {
      continue;
    }
    const double throughput = static_cast<double>(job->batch) / iter_time * slow;
    const double efficiency =
        job->profile->TrueEfficiency(job->batch, job->ProgressFraction());
    const double rate = throughput * efficiency;
    const double remaining = job->TotalExamples() - job->progress;
    const double progress_before = job->progress;
    double step = dt;
    bool completes = false;
    if (rate * dt >= remaining - kProgressEpsilon) {
      step = remaining / rate;
      completes = true;
    }
    job->progress += rate * step;
    job->gpu_time += job->placement.num_gpus * step;
    job->run_seconds += step;
    job->eff_integral += efficiency * step;
    job->tput_integral += throughput * step;
    job->goodput_integral += rate * step;

    // Profiling: the agent observes the iteration time (inflated by any
    // interference) with multiplicative measurement noise, plus one gradient
    // moment sample per tick.
    const double observed_iter =
        iter_time / slow * std::exp(job->rng.Normal(0.0, options_.observation_noise));
    job->agent.RecordIteration(job->placement, job->batch, observed_iter);
    const double phi = job->profile->gns.PhiAt(job->ProgressFraction());
    GnsSample sample;
    sample.cov_trace = phi * std::exp(job->rng.Normal(0.0, options_.gns_noise));
    sample.grad_sqnorm = std::exp(job->rng.Normal(0.0, options_.gns_noise));
    job->agent.RecordGradientStats(sample);

    if (completes) {
      job->finished = true;
      double final_step = step;
      if (options_.engine == SimEngine::kEvent) {
        // Exact completion time: re-solve the last step across any GNS
        // breakpoints it crosses. Progress/integral accounting above stays
        // on the Euler step so both engines accumulate identical state;
        // only the recorded completion instant is refined.
        final_step =
            SolveCompletionTime(*job->profile, job->batch, throughput, progress_before, dt);
      }
      job->finish_time = now + final_step;
      // Release the dense per-node row outright (not just zero it): at 10^5
      // jobs x 10^4 nodes the completed rows would otherwise pin gigabytes.
      // PlacementOf(empty) and every reader treat an empty row as "no GPUs".
      job->alloc.clear();
      job->alloc.shrink_to_fit();
      job->placement = Placement{};
      Emit(SimEvent{job->finish_time, SimEventKind::kComplete, job->spec.job_id, 0, 0});
    }
  }
}

void Simulator::AdvanceJobSpan(Job& job, double from, double to) {
  if (job.finished || job.placement.num_gpus <= 0) {
    return;
  }
  const double tick = options_.tick;
  double now = from;
  if (job.restart_until > now) {
    // Skip the checkpoint-restart wait entirely: the job resumes at the
    // first tick boundary at or after restart_until (the ticked loop's
    // exact `now >= restart_until` comparison).
    const double resume = SimClock(tick).GridCeil(job.restart_until);
    if (resume >= to) {
      return;
    }
    now = std::max(now, resume);
  }
  if (job.start_time < 0.0) {
    job.start_time = now;
    Emit(SimEvent{now, SimEventKind::kStart, job.spec.job_id, job.placement.num_gpus,
                  job.placement.num_nodes});
  }
  // Placement, batch, and fault state are all event-bound, so these factors
  // are invariant across the span and hoisted out of the per-tick loop.
  // Interference is not (it reads other jobs' state mid-tick): this path is
  // only taken when interference injection is off.
  double slow = 1.0;
  if (faults_ != nullptr) {
    slow /= faults_->JobSlowdown(job.alloc);
  }
  const double iter_time = TrueJobIterTime(job);
  if (iter_time <= 0.0) {
    return;
  }
  const double throughput = static_cast<double>(job.batch) / iter_time * slow;
  const double observed_base = iter_time / slow;
  const int num_gpus = job.placement.num_gpus;
  for (; now < to; now += tick) {
    const double efficiency = job.profile->TrueEfficiency(job.batch, job.ProgressFraction());
    const double rate = throughput * efficiency;
    const double remaining = job.TotalExamples() - job.progress;
    const double progress_before = job.progress;
    double step = tick;
    bool completes = false;
    if (rate * tick >= remaining - kProgressEpsilon) {
      step = remaining / rate;
      completes = true;
    }
    job.progress += rate * step;
    job.gpu_time += num_gpus * step;
    job.run_seconds += step;
    job.eff_integral += efficiency * step;
    job.tput_integral += throughput * step;
    job.goodput_integral += rate * step;

    const double observed_iter =
        observed_base * std::exp(job.rng.Normal(0.0, options_.observation_noise));
    job.agent.RecordIteration(job.placement, job.batch, observed_iter);
    const double phi = job.profile->gns.PhiAt(job.ProgressFraction());
    GnsSample sample;
    sample.cov_trace = phi * std::exp(job.rng.Normal(0.0, options_.gns_noise));
    sample.grad_sqnorm = std::exp(job.rng.Normal(0.0, options_.gns_noise));
    job.agent.RecordGradientStats(sample);

    if (completes) {
      job.finished = true;
      const double final_step =
          SolveCompletionTime(*job.profile, job.batch, throughput, progress_before, tick);
      job.finish_time = now + final_step;
      job.alloc.clear();
      job.alloc.shrink_to_fit();
      job.placement = Placement{};
      Emit(SimEvent{job.finish_time, SimEventKind::kComplete, job.spec.job_id, 0, 0});
      return;
    }
  }
}

void Simulator::AdvanceSpan(double from, double to) {
  if (to <= from) {
    return;
  }
  if (options_.interference_slowdown > 0.0) {
    // Interference couples jobs within a tick (a completion mid-tick speeds
    // up its node neighbors the same tick), so the jobs must advance
    // interleaved, exactly like the ticked loop.
    for (double now = from; now < to; now += options_.tick) {
      AdvanceJobs(now, options_.tick);
    }
    return;
  }
  CompactActive();
  for (size_t active_idx : active_) {
    AdvanceJobSpan(*jobs_[active_idx], from, to);
  }
}

void Simulator::RecordTimelineSample(double now) {
  ClusterSample sample;
  sample.time = now;
  sample.nodes = cluster_.NumNodes();
  sample.total_gpus = cluster_.TotalGpus();
  double eff_sum = 0.0;
  CompactActive();
  for (size_t active_idx : active_) {
    const Job* const job = jobs_[active_idx].get();
    if (job->placement.num_gpus <= 0) {
      continue;
    }
    ++sample.running_jobs;
    sample.gpus_in_use += job->placement.num_gpus;
    eff_sum += job->profile->TrueEfficiency(job->batch, job->ProgressFraction());
    sample.max_batch_size = std::max(sample.max_batch_size, job->batch);
  }
  if (sample.running_jobs > 0) {
    sample.mean_efficiency = eff_sum / sample.running_jobs;
  }
  if (const auto* pollux = dynamic_cast<const PolluxPolicy*>(scheduler_)) {
    sample.utility = pollux->sched().last_utility();
  }
  result_.timeline.push_back(sample);
}

void Simulator::CheckInvariants(double now) {
  const auto fail = [&](const char* what) {
    std::fprintf(stderr, "simulator invariant violated at t=%.1f: %s\n", now, what);
    std::abort();
  };
  // 1. GPU capacity: per-node usage never exceeds the effective (fault-
  // masked) capacity, and no allocation survives on a failed node.
  std::vector<long> usage(cluster_.gpus_per_node.size(), 0);
  for (const auto& job : jobs_) {
    if (job->finished) {
      continue;
    }
    for (size_t n = 0; n < job->alloc.size(); ++n) {
      if (job->alloc[n] < 0) {
        fail("negative GPU allocation");
      }
      if (n < usage.size()) {
        usage[n] += job->alloc[n];
      } else if (job->alloc[n] > 0) {
        fail("allocation on a node outside the cluster");
      }
    }
  }
  for (size_t n = 0; n < usage.size(); ++n) {
    if (usage[n] > cluster_.gpus_per_node[n]) {
      fail("node capacity exceeded");
    }
  }
  // 2. No job lost or double-completed: every activated job is tracked, its
  // progress is within bounds, and finished implies released resources.
  for (const auto& job : jobs_) {
    if (job->progress < -kProgressEpsilon ||
        job->progress > job->TotalExamples() * (1.0 + 1e-9) + kProgressEpsilon) {
      fail("job progress out of bounds");
    }
    if (job->finished && job->placement.num_gpus != 0) {
      fail("finished job still holds GPUs");
    }
  }
  // 3. Event log monotonicity, and no job completes twice. The event engine
  // flushes its log sorted by time, so it is held to strict (non-decreasing)
  // order; the legacy ticked loop appends completions mid-tick and
  // submissions between ticks in handler order, so it keeps its historical
  // one-tick jitter allowance. Only events appended since the last check are
  // scanned.
  const double monotone_slack =
      (options_.engine == SimEngine::kTicked ? options_.tick : 0.0) + 1e-9;
  for (; checked_events_ < result_.events.size(); ++checked_events_) {
    const SimEvent& event = result_.events[checked_events_];
    if (event.time + monotone_slack < max_event_time_) {
      fail("event log not monotone in time");
    }
    max_event_time_ = std::max(max_event_time_, event.time);
    if (event.kind == SimEventKind::kComplete) {
      for (const auto& job : jobs_) {
        if (job->spec.job_id == event.job_id && !job->finished) {
          fail("completion event for an unfinished job");
        }
      }
      for (size_t e = 0; e < checked_events_; ++e) {
        if (result_.events[e].kind == SimEventKind::kComplete &&
            result_.events[e].job_id == event.job_id) {
          fail("job completed twice");
        }
      }
    }
  }
}

bool Simulator::AllJobsFinished() const {
  if (next_submission_ < trace_.size()) {
    return false;
  }
  CompactActive();
  return active_.empty();
}

double Simulator::RunTicked() {
  constexpr double kNever = std::numeric_limits<double>::infinity();
  const bool checkpointing =
      options_.checkpoint_every > 0.0 && !options_.checkpoint_dir.empty();
  double now = 0.0;
  double next_report = 0.0;
  double next_sched = 0.0;
  double next_autoscale = options_.autoscale_interval;
  double next_checkpoint = checkpointing ? options_.checkpoint_every : kNever;
  bool skip_handlers = false;
  if (loop_.valid) {
    // Resuming: the snapshot was written right after the handler block of the
    // tick at loop_.now, so the first iteration skips straight to the
    // completion check and job advancement.
    now = loop_.now;
    next_report = loop_.next_report;
    next_sched = loop_.next_sched;
    next_autoscale = loop_.next_autoscale;
    next_checkpoint = checkpointing ? loop_.next_checkpoint : kNever;
    loop_.valid = false;
    skip_handlers = true;
  }
  while (now < options_.max_time) {
    if (!skip_handlers) {
      ActivateSubmissions(now);
      ProcessFaults(now);
      ProcessNet(now);
      if (now + 1e-9 >= next_report) {
        RefreshReports(now);
        next_report += options_.report_interval;
      }
      if (now + 1e-9 >= next_sched) {
        RunSchedulingRound(now);
        RecordTimelineSample(now);
        next_sched += options_.sched_interval;
      }
      if (autoscaler_ != nullptr && now + 1e-9 >= next_autoscale) {
        RunAutoscaling(now);
        next_autoscale += options_.autoscale_interval;
      }
      if (options_.check_invariants) {
        CheckInvariants(now);
      }
      if (now + 1e-9 >= next_checkpoint) {
        next_checkpoint += options_.checkpoint_every;
        loop_.valid = true;
        loop_.now = now;
        loop_.next_report = next_report;
        loop_.next_sched = next_sched;
        loop_.next_autoscale = next_autoscale;
        loop_.next_checkpoint = next_checkpoint;
        WritePeriodicSnapshot(now);
        loop_.valid = false;
        if (options_.halt_after_checkpoint > 0.0 &&
            now + 1e-9 >= options_.halt_after_checkpoint) {
          result_.halted = true;
          return now;
        }
      }
    }
    skip_handlers = false;
    if (AllJobsFinished()) {
      break;
    }
    AdvanceJobs(now, options_.tick);
    result_.node_seconds += cluster_.NumNodes() * options_.tick;
    now += options_.tick;
    SimMetrics::Get().ticks->Add();
  }
  return now;
}

double Simulator::RunEvent() {
  event_mode_ = true;
  const SimClock clock(options_.tick);
  // Queue priorities replay the ticked loop's intra-tick handler order for
  // same-instant events.
  enum : int {
    kSubmission = 0,
    kFaultPoll = 1,
    kNet = 2,
    kReport = 3,
    kSched = 4,
    kAutoscale = 5,
    kCheckpoint = 6,
  };
  EventQueue<int> queue;
  RecurringTimer report_timer(0.0, options_.report_interval);
  RecurringTimer sched_timer(0.0, options_.sched_interval);
  RecurringTimer autoscale_timer(options_.autoscale_interval, options_.autoscale_interval);
  const bool checkpointing =
      options_.checkpoint_every > 0.0 && !options_.checkpoint_dir.empty();
  RecurringTimer ckpt_timer(options_.checkpoint_every, options_.checkpoint_every);
  double resume_from = 0.0;
  uint64_t dispatched = 0;
  if (loop_.valid) {
    // Resuming: restore every timer's (threshold, last_fire) so the handler
    // schedule continues exactly where the interrupted run left off, and the
    // dispatch count so sim.engine.events covers the whole logical run.
    resume_from = loop_.now;
    report_timer.RestoreState(loop_.report_threshold, loop_.report_last);
    sched_timer.RestoreState(loop_.sched_threshold, loop_.sched_last);
    autoscale_timer.RestoreState(loop_.autoscale_threshold, loop_.autoscale_last);
    ckpt_timer.RestoreState(loop_.ckpt_threshold, loop_.ckpt_last);
    dispatched = loop_.engine_events;
    loop_.valid = false;
  }
  queue.Push(report_timer.NextFireTime(clock), kReport, kReport);
  queue.Push(sched_timer.NextFireTime(clock), kSched, kSched);
  if (autoscaler_ != nullptr) {
    queue.Push(autoscale_timer.NextFireTime(clock), kAutoscale, kAutoscale);
  }
  if (checkpointing) {
    queue.Push(ckpt_timer.NextFireTime(clock), kCheckpoint, kCheckpoint);
  }
  // Fresh runs enqueue the whole trace (next_submission_ is 0); resumed runs
  // only the not-yet-activated suffix.
  for (size_t i = next_submission_; i < trace_.size(); ++i) {
    queue.Push(clock.GridCeil(trace_[i].submit_time), kSubmission, kSubmission);
  }
  // Fault polls are armed lazily at the grid point covering the injector's
  // earliest pending transition. Poll only draws RNG when a transition
  // actually fires, so polling at exactly those instants replays the ticked
  // engine's per-tick draw sequence. Stale queued polls (re-armed earlier
  // by a resize) are harmless no-ops.
  double armed_fault_poll = std::numeric_limits<double>::infinity();
  const auto arm_fault_poll = [&] {
    if (faults_ == nullptr) {
      return;
    }
    const double at = clock.GridCeil(faults_->NextTransitionTime());
    if (std::isfinite(at) && at < armed_fault_poll) {
      queue.Push(at, kFaultPoll, kFaultPoll);
      armed_fault_poll = at;
    }
  };
  arm_fault_poll();
  // Net events (partition transitions + message deliveries) are armed the
  // same lazy way. Transitions land on the exact grid point (the ticked loop
  // compares them without slack via Partitioned()); deliveries use the
  // threshold slack to match the ticked loop's PopDue(now + 1e-9) scan.
  double armed_net = std::numeric_limits<double>::infinity();
  const auto arm_net = [&] {
    if (net_ == nullptr) {
      return;
    }
    double at = clock.GridCeil(net_->NextTransitionTime());
    const double delivery = net_->NextDeliveryTime();
    if (std::isfinite(delivery)) {
      at = std::min(at, clock.GridCeilSlack(delivery));
    }
    if (std::isfinite(at) && at < armed_net) {
      queue.Push(at, kNet, kNet);
      armed_net = at;
    }
  };
  arm_net();

  bool checkpoint_due = false;
  const auto dispatch_at = [&](double t) {
    while (!queue.empty() && queue.Top().time == t) {
      const int what = queue.Pop().payload;
      if (what == kCheckpoint) {
        // Checkpoints are invisible to the simulation: excluded from the
        // dispatch count (so sim.engine.events matches a run without them)
        // and deferred until after this instant's flush/invariants so the
        // snapshot captures a consistent post-dispatch state.
        checkpoint_due = true;
        ckpt_timer.Fired(t);
        queue.Push(ckpt_timer.NextFireTime(clock), kCheckpoint, kCheckpoint);
        continue;
      }
      ++dispatched;
      switch (what) {
        case kSubmission:
          ActivateSubmissions(t);
          break;
        case kFaultPoll:
          if (t >= armed_fault_poll) {
            armed_fault_poll = std::numeric_limits<double>::infinity();
          }
          ProcessFaults(t);
          arm_fault_poll();
          break;
        case kNet:
          if (t >= armed_net) {
            armed_net = std::numeric_limits<double>::infinity();
          }
          ProcessNet(t);
          arm_net();
          break;
        case kReport:
          RefreshReports(t);
          // Reports and heartbeats just entered the channel; arm their
          // delivery instants.
          arm_net();
          report_timer.Fired(t);
          queue.Push(report_timer.NextFireTime(clock), kReport, kReport);
          break;
        case kSched:
          RunSchedulingRound(t);
          // Decision messages may now be in flight.
          arm_net();
          RecordTimelineSample(t);
          sched_timer.Fired(t);
          queue.Push(sched_timer.NextFireTime(clock), kSched, kSched);
          break;
        case kAutoscale:
          RunAutoscaling(t);
          // The resize may have added nodes whose first transition precedes
          // the currently armed poll (fault or partition track).
          arm_fault_poll();
          arm_net();
          autoscale_timer.Fired(t);
          queue.Push(autoscale_timer.NextFireTime(clock), kAutoscale, kAutoscale);
          break;
        default:
          break;
      }
    }
  };

  double advanced_to = resume_from;
  double final_now = -1.0;
  while (!queue.empty()) {
    const double t = queue.Top().time;
    if (t >= options_.max_time) {
      break;  // The ticked loop only runs handlers while now < max_time.
    }
    const double span_start = advanced_to;
    AdvanceSpan(span_start, t);
    advanced_to = t;
    if (AllJobsFinished()) {
      // The ticked loop breaks at the first tick boundary after the last
      // completion, right after running any handlers due at that instant;
      // node_seconds only counts ticks before it.
      double t_end = span_start;
      for (const auto& job : jobs_) {
        t_end = std::max(t_end, clock.GridCeil(job->finish_time));
      }
      result_.node_seconds += cluster_.NumNodes() * (t_end - span_start);
      if (t_end == t) {
        dispatch_at(t);
      }
      FlushPendingEvents();
      final_now = t_end;
      break;
    }
    result_.node_seconds += cluster_.NumNodes() * (t - span_start);
    dispatch_at(t);
    FlushPendingEvents();
    if (options_.check_invariants) {
      CheckInvariants(t);
    }
    if (checkpoint_due) {
      checkpoint_due = false;
      loop_.valid = true;
      loop_.now = t;
      loop_.report_threshold = report_timer.threshold();
      loop_.report_last = report_timer.last_fire();
      loop_.sched_threshold = sched_timer.threshold();
      loop_.sched_last = sched_timer.last_fire();
      loop_.autoscale_threshold = autoscale_timer.threshold();
      loop_.autoscale_last = autoscale_timer.last_fire();
      loop_.ckpt_threshold = ckpt_timer.threshold();
      loop_.ckpt_last = ckpt_timer.last_fire();
      loop_.engine_events = dispatched;
      WritePeriodicSnapshot(t);
      loop_.valid = false;
      if (options_.halt_after_checkpoint > 0.0 &&
          t + 1e-9 >= options_.halt_after_checkpoint) {
        engine_events_ = dispatched;
        SimMetrics::Get().engine_events->Add(dispatched);
        event_mode_ = false;
        result_.halted = true;
        return t;
      }
    }
  }
  if (final_now < 0.0) {
    // Horizon reached (or, defensively, an empty queue): advance the
    // remaining span exactly as the ticked loop would before stopping.
    const double t_final = clock.GridCeil(options_.max_time);
    AdvanceSpan(advanced_to, t_final);
    result_.node_seconds += cluster_.NumNodes() * (t_final - advanced_to);
    FlushPendingEvents();
    final_now = t_final;
  }
  engine_events_ = dispatched;
  SimMetrics::Get().engine_events->Add(dispatched);
  event_mode_ = false;
  return final_now;
}

namespace {

void PutAgentState(BinWriter& out, const PolluxAgent::State& state) {
  out.PutU64(state.observations.size());
  for (const auto& observation : state.observations) {
    out.PutI64(observation.gpus);
    out.PutI64(observation.node_regime);
    out.PutI64(observation.batch_bucket);
    PutRunningStats(out, observation.iter_time);
    PutRunningStats(out, observation.batch_size);
  }
  out.PutDouble(state.tracker.cov_ema);
  out.PutDouble(state.tracker.sqnorm_ema);
  out.PutDouble(state.tracker.weight);
  out.PutU64(state.tracker.count);
  const ThroughputParams& params = state.model_params;
  out.PutDouble(params.alpha_grad);
  out.PutDouble(params.beta_grad);
  out.PutDouble(params.alpha_sync_local);
  out.PutDouble(params.beta_sync_local);
  out.PutDouble(params.alpha_sync_node);
  out.PutDouble(params.beta_sync_node);
  out.PutDouble(params.gamma);
  out.PutDouble(state.model_phi);
  out.PutI64(state.model_base_batch);
  out.PutI64(state.max_gpus_seen);
  out.PutI64(state.max_nodes_seen);
  out.PutU64(state.last_fit_configs);
  out.PutI64(state.fits_rejected);
  out.PutI64(state.outliers_rejected);
}

PolluxAgent::State GetAgentState(BinReader& in) {
  PolluxAgent::State state;
  const uint64_t observations = in.GetU64();
  if (!in.ok()) {
    return state;
  }
  state.observations.reserve(static_cast<size_t>(observations));
  for (uint64_t i = 0; i < observations && in.ok(); ++i) {
    PolluxAgent::State::Observation observation;
    observation.gpus = static_cast<int>(in.GetI64());
    observation.node_regime = static_cast<int>(in.GetI64());
    observation.batch_bucket = static_cast<long>(in.GetI64());
    observation.iter_time = GetRunningStats(in);
    observation.batch_size = GetRunningStats(in);
    state.observations.push_back(observation);
  }
  state.tracker.cov_ema = in.GetDouble();
  state.tracker.sqnorm_ema = in.GetDouble();
  state.tracker.weight = in.GetDouble();
  state.tracker.count = static_cast<size_t>(in.GetU64());
  ThroughputParams params;
  params.alpha_grad = in.GetDouble();
  params.beta_grad = in.GetDouble();
  params.alpha_sync_local = in.GetDouble();
  params.beta_sync_local = in.GetDouble();
  params.alpha_sync_node = in.GetDouble();
  params.beta_sync_node = in.GetDouble();
  params.gamma = in.GetDouble();
  state.model_params = params;
  state.model_phi = in.GetDouble();
  state.model_base_batch = static_cast<long>(in.GetI64());
  state.max_gpus_seen = static_cast<int>(in.GetI64());
  state.max_nodes_seen = static_cast<int>(in.GetI64());
  state.last_fit_configs = static_cast<size_t>(in.GetU64());
  state.fits_rejected = static_cast<int>(in.GetI64());
  state.outliers_rejected = static_cast<int>(in.GetI64());
  return state;
}

bool LoadFail(std::string* error, const std::string& path, const std::string& message) {
  if (error != nullptr) {
    *error = path + ": " + message;
  }
  return false;
}

}  // namespace

bool Simulator::SaveSnapshot(const std::string& path, std::string* error) {
  std::map<uint32_t, std::string> sections;
  sections[kTagExtra] = EncodeSnapshotExtra(snapshot_extra_);
  {
    // Core scalars plus a config echo validated on load: a snapshot resumed
    // under a different engine, seed, tick, or trace cannot silently produce
    // a diverged run.
    BinWriter out;
    out.PutU32(options_.engine == SimEngine::kEvent ? 1 : 0);
    out.PutU64(options_.seed);
    out.PutDouble(options_.tick);
    out.PutU64(trace_.size());
    out.PutIntVec(cluster_.gpus_per_node);
    out.PutIntVec(base_cluster_.gpus_per_node);
    PutRngState(out, rng_.GetState());
    out.PutU64(next_submission_);
    out.PutU64(checked_events_);
    out.PutDouble(max_event_time_);
    sections[kTagSimCore] = out.str();
  }
  {
    BinWriter out;
    out.PutU64(jobs_.size());
    for (const auto& job : jobs_) {
      out.PutU64(job->spec.job_id);
      PutAgentState(out, job->agent.GetState());
      PutRngState(out, job->rng.GetState());
      out.PutIntVec(job->alloc);
      out.PutI64(job->batch);
      out.PutDouble(job->progress);
      out.PutBool(job->finished);
      out.PutDouble(job->restart_until);
      out.PutDouble(job->start_time);
      out.PutDouble(job->finish_time);
      out.PutDouble(job->gpu_time);
      out.PutI64(job->restarts);
      out.PutI64(job->evictions);
      out.PutI64(job->restart_failures);
      out.PutDouble(job->backoff_seconds);
      out.PutBool(job->has_report);
      out.PutDouble(job->last_report_time);
      PutAgentReport(out, job->report);
      out.PutU64(job->report_seq);
      out.PutU64(job->decision_seq);
      out.PutDouble(job->run_seconds);
      out.PutDouble(job->eff_integral);
      out.PutDouble(job->tput_integral);
      out.PutDouble(job->goodput_integral);
    }
    sections[kTagJobs] = out.str();
  }
  {
    BinWriter out;
    out.PutBool(faults_ != nullptr);
    if (faults_ != nullptr) {
      const FaultInjector::State state = faults_->GetState();
      PutRngState(out, state.report_rng);
      PutRngState(out, state.restart_rng);
      PutRngState(out, state.sched_rng);
      out.PutDouble(state.next_sched_crash);
      out.PutU64(state.nodes.size());
      for (const auto& node : state.nodes) {
        PutRngState(out, node.rng);
        out.PutBool(node.failed);
        out.PutBool(node.straggler);
        out.PutDouble(node.next_transition);
      }
      out.PutU64(state.nodes_created);
    }
    sections[kTagFaults] = out.str();
  }
  {
    BinWriter out;
    out.PutBool(net_ != nullptr);
    if (net_ != nullptr) {
      const NetModel::State state = net_->GetState();
      const auto put_channels = [&out](const std::vector<NetModel::State::Channel>& channels) {
        out.PutU64(channels.size());
        for (const auto& channel : channels) {
          out.PutU64(channel.job_id);
          PutRngState(out, channel.rng);
          out.PutDouble(channel.burst_until);
          out.PutU64(channel.next_seq);
        }
      };
      put_channels(state.report_channels);
      put_channels(state.decision_channels);
      const auto put_tracks = [&out](const std::vector<NetModel::State::Track>& tracks) {
        out.PutU64(tracks.size());
        for (const auto& track : tracks) {
          PutRngState(out, track.rng);
          out.PutBool(track.head_down);
          out.PutDouble(track.tail_time);
          out.PutU64(track.pending.size());
          for (double flip : track.pending) {
            out.PutDouble(flip);
          }
        }
      };
      put_tracks(state.node_tracks);
      put_tracks(state.rack_tracks);
      out.PutU64(state.messages.size());
      for (const NetModel::Message& message : state.messages) {
        out.PutU32(static_cast<uint32_t>(message.kind));
        out.PutDouble(message.deliver_at);
        out.PutU64(message.seq);
        out.PutU64(message.job_id);
        out.PutI64(message.node);
        out.PutU64(message.payload_seq);
        out.PutDouble(message.sent_at);
        PutAgentReport(out, message.report);
        out.PutIntVec(message.row);
      }
      out.PutU64(state.next_msg_seq);
      out.PutU64(state.node_tracks_created);
      out.PutU64(state.rack_tracks_created);
      out.PutU64(last_heard_.size());
      for (double heard : last_heard_) {
        out.PutDouble(heard);
      }
      out.PutU64(partition_started_.size());
      for (const auto& [key, start] : partition_started_) {
        out.PutU32(static_cast<uint32_t>(key.first));
        out.PutI64(key.second);
        out.PutDouble(start);
      }
    }
    sections[kTagNet] = out.str();
  }
  {
    std::string blob;
    scheduler_->SaveState(&blob);
    sections[kTagScheduler] = std::move(blob);
  }
  {
    // Topology annotations for both cluster copies (v3). The section is
    // written even for flat runs (two false flags) so save -> load -> save is
    // byte-identical; it matters after an autoscale resize, where the
    // annotation vectors no longer match the construction-time options.
    BinWriter out;
    const auto put_topology = [&out](const ClusterSpec& cluster) {
      out.PutBool(cluster.HasTopology());
      if (cluster.HasTopology()) {
        out.PutDouble(cluster.rack_link_factor);
        out.PutIntVec(cluster.rack_of_node);
        out.PutIntVec(cluster.gpu_type_of_node);
        out.PutU64(cluster.node_gpu_scale.size());
        for (double scale : cluster.node_gpu_scale) {
          out.PutDouble(scale);
        }
      }
    };
    put_topology(cluster_);
    put_topology(base_cluster_);
    sections[kTagTopology] = out.str();
  }
  {
    BinWriter out;
    out.PutU64(result_.events.size());
    for (const auto& event : result_.events) {
      out.PutDouble(event.time);
      out.PutU32(static_cast<uint32_t>(event.kind));
      out.PutU64(event.job_id);
      out.PutI64(event.gpus);
      out.PutI64(event.nodes);
    }
    out.PutU64(result_.timeline.size());
    for (const auto& sample : result_.timeline) {
      out.PutDouble(sample.time);
      out.PutI64(sample.nodes);
      out.PutI64(sample.total_gpus);
      out.PutI64(sample.gpus_in_use);
      out.PutI64(sample.running_jobs);
      out.PutDouble(sample.mean_efficiency);
      out.PutDouble(sample.utility);
      out.PutI64(sample.max_batch_size);
    }
    out.PutDouble(result_.node_seconds);
    sections[kTagResult] = out.str();
  }
  {
    BinWriter out;
    out.PutBool(loop_.valid);
    out.PutDouble(loop_.now);
    out.PutDouble(loop_.next_report);
    out.PutDouble(loop_.next_sched);
    out.PutDouble(loop_.next_autoscale);
    out.PutDouble(loop_.next_checkpoint);
    out.PutDouble(loop_.report_threshold);
    out.PutDouble(loop_.report_last);
    out.PutDouble(loop_.sched_threshold);
    out.PutDouble(loop_.sched_last);
    out.PutDouble(loop_.autoscale_threshold);
    out.PutDouble(loop_.autoscale_last);
    out.PutDouble(loop_.ckpt_threshold);
    out.PutDouble(loop_.ckpt_last);
    out.PutU64(loop_.engine_events);
    sections[kTagLoop] = out.str();
  }

  SnapshotMeta meta;
  meta.sim_time = loop_.now;
  meta.engine = SimEngineName(options_.engine);
  meta.policy = snapshot_extra_.policy;
  meta.seed = options_.seed;
  meta.jobs_submitted = jobs_.size();
  for (const auto& job : jobs_) {
    meta.jobs_finished += job->finished ? 1 : 0;
  }
  meta.events = result_.events.size();
  if (!WriteSnapshotFile(path, sections, meta, error)) {
    return false;
  }
  if (obs::MetricsRegistry::Global().enabled()) {
    SimMetrics::Get().checkpoint_writes->Add();
  }
  return true;
}

bool Simulator::LoadSnapshot(const std::string& path, std::string* error) {
  std::map<uint32_t, std::string> sections;
  if (!ReadSnapshotFile(path, &sections, error)) {
    return false;
  }
  for (const uint32_t tag :
       {kTagSimCore, kTagJobs, kTagFaults, kTagScheduler, kTagResult, kTagLoop, kTagNet}) {
    if (sections.find(tag) == sections.end()) {
      return LoadFail(error, path, "missing section " + std::to_string(tag));
    }
  }

  {
    BinReader in(sections[kTagSimCore]);
    const uint32_t engine = in.GetU32();
    const uint64_t seed = in.GetU64();
    const double tick = in.GetDouble();
    const uint64_t trace_size = in.GetU64();
    if (!in.ok() || engine != (options_.engine == SimEngine::kEvent ? 1u : 0u) ||
        seed != options_.seed || tick != options_.tick || trace_size != trace_.size()) {
      return LoadFail(error, path,
                      "snapshot was written under an incompatible run configuration "
                      "(engine/seed/tick/trace mismatch)");
    }
    cluster_.gpus_per_node = in.GetIntVec();
    base_cluster_.gpus_per_node = in.GetIntVec();
    rng_.SetState(GetRngState(in));
    next_submission_ = static_cast<size_t>(in.GetU64());
    checked_events_ = static_cast<size_t>(in.GetU64());
    max_event_time_ = in.GetDouble();
    if (!in.ok() || !in.AtEnd() || next_submission_ > trace_.size()) {
      return LoadFail(error, path, "malformed core section");
    }
  }

  {
    BinReader in(sections[kTagJobs]);
    const uint64_t count = in.GetU64();
    if (!in.ok() || count != next_submission_) {
      return LoadFail(error, path, "job count does not match the submission cursor");
    }
    AgentConfig agent_config;
    if (options_.faults.enabled()) {
      agent_config.robust_fitting = true;
    }
    jobs_.clear();
    for (uint64_t i = 0; i < count && in.ok(); ++i) {
      const uint64_t job_id = in.GetU64();
      const JobSpec& spec = trace_[static_cast<size_t>(i)];
      if (spec.job_id != job_id) {
        return LoadFail(error, path, "job order does not match the trace");
      }
      auto job = std::make_unique<Job>(spec, GetModelProfile(spec.model),
                                       scheduler_->adapts_batch_size(), Rng(0), agent_config);
      job->agent.SetState(GetAgentState(in));
      job->rng.SetState(GetRngState(in));
      job->alloc = in.GetIntVec();
      job->placement = PlacementOf(job->alloc);
      job->batch = static_cast<long>(in.GetI64());
      job->progress = in.GetDouble();
      job->finished = in.GetBool();
      job->restart_until = in.GetDouble();
      job->start_time = in.GetDouble();
      job->finish_time = in.GetDouble();
      job->gpu_time = in.GetDouble();
      job->restarts = static_cast<int>(in.GetI64());
      job->evictions = static_cast<int>(in.GetI64());
      job->restart_failures = static_cast<int>(in.GetI64());
      job->backoff_seconds = in.GetDouble();
      job->has_report = in.GetBool();
      job->last_report_time = in.GetDouble();
      job->report = GetAgentReport(in);
      job->report_seq = in.GetU64();
      job->decision_seq = in.GetU64();
      job->run_seconds = in.GetDouble();
      job->eff_integral = in.GetDouble();
      job->tput_integral = in.GetDouble();
      job->goodput_integral = in.GetDouble();
      jobs_.push_back(std::move(job));
    }
    if (!in.ok() || !in.AtEnd()) {
      return LoadFail(error, path, "malformed job section");
    }
    active_.clear();
    for (size_t i = 0; i < jobs_.size(); ++i) {
      if (!jobs_[i]->finished) {
        active_.push_back(i);
      }
    }
  }

  if (const auto topology_it = sections.find(kTagTopology); topology_it != sections.end()) {
    BinReader in(topology_it->second);
    const auto get_topology = [&in](ClusterSpec* cluster) {
      if (in.GetBool()) {
        cluster->rack_link_factor = in.GetDouble();
        cluster->rack_of_node = in.GetIntVec();
        cluster->gpu_type_of_node = in.GetIntVec();
        const uint64_t scales = in.GetU64();
        if (scales > (uint64_t{1} << 20)) {
          in.MarkBad();
          return;
        }
        cluster->node_gpu_scale.clear();
        for (uint64_t n = 0; n < scales && in.ok(); ++n) {
          cluster->node_gpu_scale.push_back(in.GetDouble());
        }
      } else {
        cluster->rack_link_factor = 1.0;
        cluster->rack_of_node.clear();
        cluster->gpu_type_of_node.clear();
        cluster->node_gpu_scale.clear();
      }
    };
    get_topology(&cluster_);
    get_topology(&base_cluster_);
    if (!in.ok() || !in.AtEnd()) {
      return LoadFail(error, path, "malformed topology section");
    }
  }
  // (Snapshots written before v3 have no kTagTopology section; the
  // construction-time annotations from SimOptions::cluster stay in force.)

  {
    BinReader in(sections[kTagFaults]);
    const bool present = in.GetBool();
    if (present != (faults_ != nullptr)) {
      return LoadFail(error, path, "fault-injection configuration mismatch");
    }
    if (present) {
      FaultInjector::State state;
      state.report_rng = GetRngState(in);
      state.restart_rng = GetRngState(in);
      state.sched_rng = GetRngState(in);
      state.next_sched_crash = in.GetDouble();
      const uint64_t nodes = in.GetU64();
      if (!in.ok() || nodes > (uint64_t{1} << 20)) {
        return LoadFail(error, path, "malformed fault section");
      }
      for (uint64_t n = 0; n < nodes && in.ok(); ++n) {
        FaultInjector::State::Node node;
        node.rng = GetRngState(in);
        node.failed = in.GetBool();
        node.straggler = in.GetBool();
        node.next_transition = in.GetDouble();
        state.nodes.push_back(node);
      }
      state.nodes_created = in.GetU64();
      if (!in.ok() || !in.AtEnd()) {
        return LoadFail(error, path, "malformed fault section");
      }
      faults_->SetState(state);
    }
  }

  {
    BinReader in(sections[kTagNet]);
    const bool present = in.GetBool();
    if (present != (net_ != nullptr)) {
      return LoadFail(error, path, "network-model configuration mismatch");
    }
    if (present) {
      NetModel::State state;
      const auto get_channels = [&in](std::vector<NetModel::State::Channel>* channels) {
        const uint64_t count = in.GetU64();
        if (count > (uint64_t{1} << 24)) {
          return false;
        }
        for (uint64_t i = 0; i < count && in.ok(); ++i) {
          NetModel::State::Channel channel;
          channel.job_id = in.GetU64();
          channel.rng = GetRngState(in);
          channel.burst_until = in.GetDouble();
          channel.next_seq = in.GetU64();
          channels->push_back(std::move(channel));
        }
        return in.ok();
      };
      const auto get_tracks = [&in](std::vector<NetModel::State::Track>* tracks) {
        const uint64_t count = in.GetU64();
        if (count > (uint64_t{1} << 20)) {
          return false;
        }
        for (uint64_t i = 0; i < count && in.ok(); ++i) {
          NetModel::State::Track track;
          track.rng = GetRngState(in);
          track.head_down = in.GetBool();
          track.tail_time = in.GetDouble();
          const uint64_t pending = in.GetU64();
          if (pending > (uint64_t{1} << 24)) {
            return false;
          }
          for (uint64_t p = 0; p < pending && in.ok(); ++p) {
            track.pending.push_back(in.GetDouble());
          }
          tracks->push_back(std::move(track));
        }
        return in.ok();
      };
      if (!get_channels(&state.report_channels) || !get_channels(&state.decision_channels) ||
          !get_tracks(&state.node_tracks) || !get_tracks(&state.rack_tracks)) {
        return LoadFail(error, path, "malformed network section");
      }
      const uint64_t messages = in.GetU64();
      if (!in.ok() || messages > (uint64_t{1} << 24)) {
        return LoadFail(error, path, "malformed network section");
      }
      for (uint64_t i = 0; i < messages && in.ok(); ++i) {
        NetModel::Message message;
        const uint32_t kind = in.GetU32();
        if (kind > static_cast<uint32_t>(NetModel::MsgKind::kHeartbeat)) {
          return LoadFail(error, path, "unknown message kind in snapshot");
        }
        message.kind = static_cast<NetModel::MsgKind>(kind);
        message.deliver_at = in.GetDouble();
        message.seq = in.GetU64();
        message.job_id = in.GetU64();
        message.node = static_cast<int>(in.GetI64());
        message.payload_seq = in.GetU64();
        message.sent_at = in.GetDouble();
        message.report = GetAgentReport(in);
        message.row = in.GetIntVec();
        state.messages.push_back(std::move(message));
      }
      state.next_msg_seq = in.GetU64();
      state.node_tracks_created = in.GetU64();
      state.rack_tracks_created = in.GetU64();
      const uint64_t heard = in.GetU64();
      if (!in.ok() || heard > (uint64_t{1} << 20)) {
        return LoadFail(error, path, "malformed network section");
      }
      last_heard_.clear();
      for (uint64_t n = 0; n < heard && in.ok(); ++n) {
        last_heard_.push_back(in.GetDouble());
      }
      const uint64_t partitions = in.GetU64();
      if (!in.ok() || partitions > (uint64_t{1} << 20)) {
        return LoadFail(error, path, "malformed network section");
      }
      partition_started_.clear();
      for (uint64_t i = 0; i < partitions && in.ok(); ++i) {
        const int rack = static_cast<int>(in.GetU32());
        const int index = static_cast<int>(in.GetI64());
        partition_started_[{rack, index}] = in.GetDouble();
      }
      if (!in.ok() || !in.AtEnd()) {
        return LoadFail(error, path, "malformed network section");
      }
      net_->SetState(state);
    }
  }

  if (!scheduler_->LoadState(sections[kTagScheduler])) {
    return LoadFail(error, path,
                    std::string("scheduler '") + scheduler_->name() +
                        "' rejected the snapshot's control-plane state");
  }

  {
    BinReader in(sections[kTagResult]);
    const uint64_t events = in.GetU64();
    result_.events.clear();
    for (uint64_t i = 0; i < events && in.ok(); ++i) {
      SimEvent event;
      event.time = in.GetDouble();
      const uint32_t kind = in.GetU32();
      if (kind > static_cast<uint32_t>(SimEventKind::kDecisionBounce)) {
        return LoadFail(error, path, "unknown event kind in snapshot");
      }
      event.kind = static_cast<SimEventKind>(kind);
      event.job_id = in.GetU64();
      event.gpus = static_cast<int>(in.GetI64());
      event.nodes = static_cast<int>(in.GetI64());
      result_.events.push_back(event);
    }
    const uint64_t samples = in.GetU64();
    result_.timeline.clear();
    for (uint64_t i = 0; i < samples && in.ok(); ++i) {
      ClusterSample sample;
      sample.time = in.GetDouble();
      sample.nodes = static_cast<int>(in.GetI64());
      sample.total_gpus = static_cast<int>(in.GetI64());
      sample.gpus_in_use = static_cast<int>(in.GetI64());
      sample.running_jobs = static_cast<int>(in.GetI64());
      sample.mean_efficiency = in.GetDouble();
      sample.utility = in.GetDouble();
      sample.max_batch_size = static_cast<long>(in.GetI64());
      result_.timeline.push_back(sample);
    }
    result_.node_seconds = in.GetDouble();
    if (!in.ok() || !in.AtEnd()) {
      return LoadFail(error, path, "malformed result section");
    }
  }

  {
    BinReader in(sections[kTagLoop]);
    loop_.valid = in.GetBool();
    loop_.now = in.GetDouble();
    loop_.next_report = in.GetDouble();
    loop_.next_sched = in.GetDouble();
    loop_.next_autoscale = in.GetDouble();
    loop_.next_checkpoint = in.GetDouble();
    loop_.report_threshold = in.GetDouble();
    loop_.report_last = in.GetDouble();
    loop_.sched_threshold = in.GetDouble();
    loop_.sched_last = in.GetDouble();
    loop_.autoscale_threshold = in.GetDouble();
    loop_.autoscale_last = in.GetDouble();
    loop_.ckpt_threshold = in.GetDouble();
    loop_.ckpt_last = in.GetDouble();
    loop_.engine_events = in.GetU64();
    if (!in.ok() || !in.AtEnd()) {
      return LoadFail(error, path, "malformed loop section");
    }
  }

  if (obs::MetricsRegistry::Global().enabled()) {
    // Replay the restored event log into the per-kind counters so the final
    // sim.events.* exports cover the whole logical run, not just the portion
    // after the resume.
    const SimMetrics& metrics = SimMetrics::Get();
    for (const auto& event : result_.events) {
      metrics.events_by_kind[static_cast<int>(event.kind)]->Add();
    }
    metrics.checkpoint_resumes->Add();
  }
  Log(LogLevel::kInfo) << "resumed from snapshot " << path << " at t=" << loop_.now << " ("
                       << jobs_.size() << " jobs, " << result_.events.size() << " events)";
  return true;
}

void Simulator::WritePeriodicSnapshot(double now) {
  const std::string path = options_.checkpoint_dir + "/" + SnapshotFileName(now);
  std::string error;
  if (!SaveSnapshot(path, &error)) {
    // A missed checkpoint is not fatal; the previous snapshot (if any) still
    // bounds the replay on recovery.
    Log(LogLevel::kWarning) << "checkpoint write failed at t=" << now << ": " << error;
  }
}

SimResult Simulator::Run() {
  const auto wall_start = std::chrono::steady_clock::now();
  const double now = options_.engine == SimEngine::kEvent ? RunEvent() : RunTicked();
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();

  if (options_.check_invariants) {
    CheckInvariants(now);
  }
  result_.timed_out = !AllJobsFinished();
  result_.makespan = 0.0;
  for (const auto& job : jobs_) {
    JobResult job_result;
    job_result.job_id = job->spec.job_id;
    job_result.model = job->spec.model;
    job_result.category = job->profile->category;
    job_result.submit_time = job->spec.submit_time;
    job_result.start_time = job->start_time;
    job_result.finish_time = job->finished ? job->finish_time : now;
    job_result.gpu_time = job->gpu_time;
    job_result.num_restarts = job->restarts;
    job_result.num_evictions = job->evictions;
    job_result.num_restart_failures = job->restart_failures;
    job_result.backoff_seconds = job->backoff_seconds;
    job_result.completed = job->finished;
    if (job->run_seconds > 0.0) {
      job_result.avg_efficiency = job->eff_integral / job->run_seconds;
      job_result.avg_throughput = job->tput_integral / job->run_seconds;
      job_result.avg_goodput = job->goodput_integral / job->run_seconds;
    }
    result_.makespan = std::max(result_.makespan, job_result.finish_time);
    result_.jobs.push_back(job_result);
  }
  obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
  if (recorder.enabled()) {
    // One sim-time span per job lifetime (start -> finish, or the horizon
    // for unfinished jobs), each on its own track.
    for (const auto& job : result_.jobs) {
      if (job.start_time < 0.0) {
        continue;
      }
      const uint64_t track = job.job_id;
      recorder.SetTrackName(obs::TraceRecorder::kSimPid, track,
                            "job " + std::to_string(job.job_id));
      recorder.EmitSimSpan(std::string(ModelKindName(job.model)) +
                               (job.completed ? "" : " (unfinished)"),
                           track, job.start_time, job.finish_time - job.start_time);
    }
  }
  if (obs::MetricsRegistry::Global().enabled()) {
    const SimMetrics& metrics = SimMetrics::Get();
    metrics.avg_goodput->Set(result_.AvgJobGoodput());
    metrics.avg_throughput->Set(result_.AvgJobThroughput());
    metrics.avg_efficiency->Set(result_.AvgClusterEfficiency());
    metrics.avg_jct_s->Set(result_.JctSummary().mean);
    metrics.makespan_s->Set(result_.makespan);
    metrics.run_wall_s->Set(wall_seconds);
    if (options_.engine == SimEngine::kEvent && wall_seconds > 0.0) {
      metrics.engine_events_per_s->Set(static_cast<double>(engine_events_) / wall_seconds);
    }
  }
  return result_;
}

Summary SimResult::JctSummary() const {
  std::vector<double> jcts;
  jcts.reserve(jobs.size());
  for (const auto& job : jobs) {
    jcts.push_back(job.Jct());
  }
  return Summarize(jcts);
}

double SimResult::AvgClusterEfficiency() const {
  double total = 0.0;
  int samples = 0;
  for (const auto& sample : timeline) {
    if (sample.running_jobs > 0) {
      total += sample.mean_efficiency;
      ++samples;
    }
  }
  return samples > 0 ? total / samples : 0.0;
}

double SimResult::AvgUtilization() const {
  double total = 0.0;
  int samples = 0;
  for (const auto& sample : timeline) {
    if (sample.running_jobs > 0 && sample.total_gpus > 0) {
      // gpus_in_use relative to the cluster size at that instant (the
      // denominator matters under autoscaling).
      total += static_cast<double>(sample.gpus_in_use) / sample.total_gpus;
      ++samples;
    }
  }
  return samples > 0 ? total / samples : 0.0;
}

double SimResult::AvgJobThroughput() const {
  double total = 0.0;
  for (const auto& job : jobs) {
    total += job.avg_throughput;
  }
  return jobs.empty() ? 0.0 : total / static_cast<double>(jobs.size());
}

double SimResult::AvgJobGoodput() const {
  double total = 0.0;
  for (const auto& job : jobs) {
    total += job.avg_goodput;
  }
  return jobs.empty() ? 0.0 : total / static_cast<double>(jobs.size());
}

}  // namespace pollux
