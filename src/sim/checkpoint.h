// Crash-consistent snapshot format for the cluster simulator (DESIGN.md §11).
//
// A snapshot is one binary file:
//
//   magic "PLXSNAP1"                                   (8 bytes)
//   u32   format version                               (kSnapshotVersion)
//   sections, each { u32 tag, u64 payload length, payload bytes }
//   u32   CRC-32 (IEEE) over everything between magic and CRC
//
// plus a human-readable JSON sidecar (`<file>.json`) mirroring the header
// metadata. Files are written to a temporary name and renamed into place, so
// a torn write can never shadow a previously valid snapshot. Readers validate
// magic, version, section framing, and CRC before any payload is parsed;
// truncated/corrupt/future-version files are rejected with a clear error
// (counted by sim.checkpoint.corrupt) and the directory helpers fall back to
// the previous snapshot.
//
// All integers are little-endian; doubles are serialized bit-exact (IEEE-754
// bit pattern), which the warm-recovery byte-identity guarantee depends on.

#ifndef POLLUX_SIM_CHECKPOINT_H_
#define POLLUX_SIM_CHECKPOINT_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/agent.h"
#include "core/sched.h"
#include "util/rng.h"
#include "util/stats.h"

namespace pollux {

// Version 2: kTagJobs rows gained per-channel delivery sequence numbers and
// the kTagNet section (control-plane network model state) was added.
// Version 3: the kTagTopology section (rack/GPU-type cluster annotations,
// DESIGN.md §14) was added. Older snapshots load fine — a missing topology
// section means the construction-time annotations stay in force.
inline constexpr uint32_t kSnapshotVersion = 3;

// Section tags. Unknown tags are preserved but ignored by readers, so later
// versions can add sections without breaking older payload parsers.
enum SnapshotTag : uint32_t {
  kTagExtra = 1,      // Driver payload: policy name, config text, trace CSV.
  kTagSimCore = 2,    // Simulator scalars: config echo, cluster, Rng, cursors.
  kTagJobs = 3,       // Per-job dynamic state, including the fitted agents.
  kTagFaults = 4,     // FaultInjector stream cursors + armed transitions.
  kTagScheduler = 5,  // Opaque Scheduler::SaveState blob.
  kTagResult = 6,     // Event log, timeline, node-second accounting.
  kTagLoop = 7,       // Engine loop state (tick thresholds / timer states).
  kTagNet = 8,        // NetModel streams/in-flight messages + lease liveness.
  kTagTopology = 9,   // Cluster topology annotations (racks, GPU types).
  kTagService = 10,   // pollux_schedd per-tenant domain state (service/tenant.h).
};

// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
uint32_t Crc32(const void* data, size_t size);

// Append-only little-endian binary encoder.
class BinWriter {
 public:
  void PutU32(uint32_t value);
  void PutU64(uint64_t value);
  void PutI64(int64_t value) { PutU64(static_cast<uint64_t>(value)); }
  void PutBool(bool value) { PutU32(value ? 1 : 0); }
  void PutDouble(double value);  // Bit-exact (incl. inf/NaN payloads).
  void PutString(const std::string& value);
  void PutIntVec(const std::vector<int>& values);
  const std::string& str() const { return buffer_; }

 private:
  std::string buffer_;
};

// Matching decoder. Reads past the end set a sticky failure flag and return
// zero values; callers check ok() once after decoding instead of per field.
// The referenced buffer must outlive the reader.
class BinReader {
 public:
  explicit BinReader(const std::string& data) : data_(data) {}

  uint32_t GetU32();
  uint64_t GetU64();
  int64_t GetI64() { return static_cast<int64_t>(GetU64()); }
  bool GetBool() { return GetU32() != 0; }
  double GetDouble();
  std::string GetString();
  std::vector<int> GetIntVec();

  bool ok() const { return ok_; }
  bool AtEnd() const { return pos_ == data_.size(); }
  void MarkBad() { ok_ = false; }

 private:
  const std::string& data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// Encode helpers for the state structs shared by several sections.
void PutRngState(BinWriter& out, const Rng::State& state);
Rng::State GetRngState(BinReader& in);
void PutRunningStats(BinWriter& out, const RunningStats::State& state);
RunningStats::State GetRunningStats(BinReader& in);
void PutAgentReport(BinWriter& out, const AgentReport& report);
AgentReport GetAgentReport(BinReader& in);

// PolluxSched control-plane state codec, shared by the simulator's
// PolluxPolicy blob and the pollux_schedd per-tenant snapshots. Split in two
// so PolluxPolicy can keep its historical blob layout (core fields, then the
// cached reports, then the incremental-mode state) byte-identical. Decoders
// set the reader's sticky failure flag on malformed or absurdly sized input.
void PutSchedJobReport(BinWriter& out, const SchedJobReport& report);
SchedJobReport GetSchedJobReport(BinReader& in);
void PutSchedStateCore(BinWriter& out, const PolluxSched::State& state);
void GetSchedStateCore(BinReader& in, PolluxSched::State* state);
void PutSchedStateIncremental(BinWriter& out, const PolluxSched::State& state);
void GetSchedStateIncremental(BinReader& in, PolluxSched::State* state);

// Driver payload embedded in every snapshot so a resume can reconstruct the
// run without any of the original command line: the policy name, the
// driver's own config serialization (opaque at this layer), and the full
// submission trace as CSV (workload/trace_io round-trips doubles exactly).
struct SnapshotExtra {
  std::string policy;
  std::string driver_config;
  std::string trace_csv;
};

std::string EncodeSnapshotExtra(const SnapshotExtra& extra);
bool DecodeSnapshotExtra(const std::string& payload, SnapshotExtra* extra);

// Metadata mirrored into the JSON sidecar for humans and tooling.
struct SnapshotMeta {
  double sim_time = 0.0;
  std::string engine;
  std::string policy;
  uint64_t seed = 0;
  uint64_t jobs_submitted = 0;
  uint64_t jobs_finished = 0;
  uint64_t events = 0;
};

// Assembles the container (magic + version + sections + CRC), writes it
// atomically (temp file + rename), and writes the JSON sidecar next to it.
bool WriteSnapshotFile(const std::string& path,
                       const std::map<uint32_t, std::string>& sections,
                       const SnapshotMeta& meta, std::string* error);

// Validates magic/version/CRC/section framing and fills `sections`. Returns
// false with a clear error for torn, corrupt, or future-version files and
// increments sim.checkpoint.corrupt.
bool ReadSnapshotFile(const std::string& path, std::map<uint32_t, std::string>* sections,
                      std::string* error);

// Reads and decodes only the driver payload section.
bool ReadSnapshotExtra(const std::string& path, SnapshotExtra* extra, std::string* error);

// "ckpt-<sim time in ms, zero padded>.bin": lexicographic order equals
// chronological order, which the directory helpers rely on.
std::string SnapshotFileName(double sim_time);

// All snapshot files in `dir` (full paths), oldest first.
std::vector<std::string> ListSnapshotFiles(const std::string& dir);

// Resolves a --resume-from operand: a snapshot file is returned as-is; for a
// directory, the newest snapshot that passes full validation is returned,
// skipping (and warning about) torn/corrupt/future-version files. Returns an
// empty string with `error` set when nothing valid is found.
std::string ResolveSnapshotPath(const std::string& path_or_dir, std::string* error);

}  // namespace pollux

#endif  // POLLUX_SIM_CHECKPOINT_H_
