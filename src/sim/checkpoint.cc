#include "sim/checkpoint.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <utility>

#include "obs/metrics.h"

namespace pollux {
namespace {

constexpr char kMagic[8] = {'P', 'L', 'X', 'S', 'N', 'A', 'P', '1'};
constexpr size_t kMagicSize = sizeof(kMagic);
constexpr size_t kCrcSize = 4;

struct CheckpointMetrics {
  obs::Counter* corrupt;

  static const CheckpointMetrics& Get() {
    static const CheckpointMetrics metrics;
    return metrics;
  }

 private:
  CheckpointMetrics() {
    corrupt = obs::MetricsRegistry::Global().GetCounter("sim.checkpoint.corrupt");
  }
};

bool Fail(std::string* error, const std::string& message) {
  if (error != nullptr) {
    *error = message;
  }
  return false;
}

// Any validation failure flows through here so the corrupt counter and the
// fallback logic can never disagree about what counts as a bad snapshot.
bool Corrupt(std::string* error, const std::string& message) {
  if (obs::MetricsRegistry::Global().enabled()) {
    CheckpointMetrics::Get().corrupt->Add();
  }
  return Fail(error, message);
}

const uint32_t* Crc32Table() {
  static const uint32_t* table = [] {
    static uint32_t entries[256];
    for (uint32_t n = 0; n < 256; ++n) {
      uint32_t c = n;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      entries[n] = c;
    }
    return entries;
  }();
  return table;
}

// Escapes the few characters that can appear in paths/policy names; the
// sidecar is advisory, but it must always be valid JSON.
std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

bool WriteFileAtomic(const std::string& path, const std::string& contents,
                     std::string* error) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Fail(error, "cannot open " + tmp + " for writing");
    }
    out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
    out.flush();
    if (!out) {
      return Fail(error, "short write to " + tmp);
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    return Fail(error, "cannot rename " + tmp + " to " + path + ": " + ec.message());
  }
  return true;
}

}  // namespace

uint32_t Crc32(const void* data, size_t size) {
  const uint32_t* table = Crc32Table();
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

void BinWriter::PutU32(uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    buffer_.push_back(static_cast<char>((value >> shift) & 0xFFu));
  }
}

void BinWriter::PutU64(uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    buffer_.push_back(static_cast<char>((value >> shift) & 0xFFu));
  }
}

void BinWriter::PutDouble(double value) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  PutU64(bits);
}

void BinWriter::PutString(const std::string& value) {
  PutU64(value.size());
  buffer_.append(value);
}

void BinWriter::PutIntVec(const std::vector<int>& values) {
  PutU64(values.size());
  for (int v : values) {
    PutI64(v);
  }
}

uint32_t BinReader::GetU32() {
  if (!ok_ || data_.size() - pos_ < 4) {
    ok_ = false;
    return 0;
  }
  uint32_t value = 0;
  for (int shift = 0; shift < 32; shift += 8) {
    value |= static_cast<uint32_t>(static_cast<unsigned char>(data_[pos_++])) << shift;
  }
  return value;
}

uint64_t BinReader::GetU64() {
  if (!ok_ || data_.size() - pos_ < 8) {
    ok_ = false;
    return 0;
  }
  uint64_t value = 0;
  for (int shift = 0; shift < 64; shift += 8) {
    value |= static_cast<uint64_t>(static_cast<unsigned char>(data_[pos_++])) << shift;
  }
  return value;
}

double BinReader::GetDouble() {
  const uint64_t bits = GetU64();
  double value = 0.0;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

std::string BinReader::GetString() {
  const uint64_t size = GetU64();
  if (!ok_ || data_.size() - pos_ < size) {
    ok_ = false;
    return std::string();
  }
  std::string value = data_.substr(pos_, size);
  pos_ += size;
  return value;
}

std::vector<int> BinReader::GetIntVec() {
  const uint64_t size = GetU64();
  // 8 bytes per element: bound the allocation by what the buffer can hold.
  if (!ok_ || (data_.size() - pos_) / 8 < size) {
    ok_ = false;
    return {};
  }
  std::vector<int> values(static_cast<size_t>(size));
  for (auto& v : values) {
    v = static_cast<int>(GetI64());
  }
  return values;
}

void PutRngState(BinWriter& out, const Rng::State& state) {
  for (uint64_t word : state.words) {
    out.PutU64(word);
  }
  out.PutDouble(state.cached_normal);
  out.PutBool(state.has_cached_normal);
}

Rng::State GetRngState(BinReader& in) {
  Rng::State state;
  for (auto& word : state.words) {
    word = in.GetU64();
  }
  state.cached_normal = in.GetDouble();
  state.has_cached_normal = in.GetBool();
  return state;
}

void PutRunningStats(BinWriter& out, const RunningStats::State& state) {
  out.PutU64(state.count);
  out.PutDouble(state.mean);
  out.PutDouble(state.m2);
  out.PutDouble(state.min);
  out.PutDouble(state.max);
}

RunningStats::State GetRunningStats(BinReader& in) {
  RunningStats::State state;
  state.count = static_cast<size_t>(in.GetU64());
  state.mean = in.GetDouble();
  state.m2 = in.GetDouble();
  state.min = in.GetDouble();
  state.max = in.GetDouble();
  return state;
}

void PutAgentReport(BinWriter& out, const AgentReport& report) {
  out.PutU64(report.job_id);
  const ThroughputParams& p = report.model.params();
  out.PutDouble(p.alpha_grad);
  out.PutDouble(p.beta_grad);
  out.PutDouble(p.alpha_sync_local);
  out.PutDouble(p.beta_sync_local);
  out.PutDouble(p.alpha_sync_node);
  out.PutDouble(p.beta_sync_node);
  out.PutDouble(p.gamma);
  out.PutDouble(report.model.phi());
  out.PutI64(report.model.base_batch_size());
  out.PutI64(report.limits.min_batch);
  out.PutI64(report.limits.max_batch_total);
  out.PutI64(report.limits.max_batch_per_gpu);
  out.PutI64(report.max_gpus_cap);
}

AgentReport GetAgentReport(BinReader& in) {
  AgentReport report;
  report.job_id = in.GetU64();
  ThroughputParams p;
  p.alpha_grad = in.GetDouble();
  p.beta_grad = in.GetDouble();
  p.alpha_sync_local = in.GetDouble();
  p.beta_sync_local = in.GetDouble();
  p.alpha_sync_node = in.GetDouble();
  p.beta_sync_node = in.GetDouble();
  p.gamma = in.GetDouble();
  const double phi = in.GetDouble();
  const long base_batch = static_cast<long>(in.GetI64());
  report.model = GoodputModel(p, phi, base_batch);
  report.limits.min_batch = static_cast<long>(in.GetI64());
  report.limits.max_batch_total = static_cast<long>(in.GetI64());
  report.limits.max_batch_per_gpu = static_cast<long>(in.GetI64());
  report.max_gpus_cap = static_cast<int>(in.GetI64());
  return report;
}

void PutSchedJobReport(BinWriter& out, const SchedJobReport& report) {
  PutAgentReport(out, report.agent);
  out.PutDouble(report.gpu_time);
  out.PutIntVec(report.current_allocation);
  out.PutDouble(report.report_age);
  out.PutU64(report.seq);
}

SchedJobReport GetSchedJobReport(BinReader& in) {
  SchedJobReport report;
  report.agent = GetAgentReport(in);
  report.gpu_time = in.GetDouble();
  report.current_allocation = in.GetIntVec();
  report.report_age = in.GetDouble();
  report.seq = in.GetU64();
  return report;
}

void PutSchedStateCore(BinWriter& out, const PolluxSched::State& state) {
  PutRngState(out, state.ga.rng);
  out.PutU64(state.ga.last_job_ids.size());
  for (uint64_t job_id : state.ga.last_job_ids) {
    out.PutU64(job_id);
  }
  out.PutU64(state.ga.population.size());
  for (const AllocationMatrix& matrix : state.ga.population) {
    out.PutU64(matrix.num_jobs());
    out.PutU64(matrix.num_nodes());
    for (size_t job = 0; job < matrix.num_jobs(); ++job) {
      for (size_t node = 0; node < matrix.num_nodes(); ++node) {
        out.PutI64(matrix.at(job, node));
      }
    }
  }
  out.PutDouble(state.last_utility);
  out.PutDouble(state.last_fitness);
  out.PutU64(state.fallback_rounds);
  out.PutU64(state.degraded_rounds);
  out.PutU64(state.lease_expirations);
  out.PutU64(state.lease_evictions);
  out.PutU64(state.dup_reports);
  out.PutU64(state.queue_skipped);
  out.PutU64(state.telemetry.size());
  for (const auto& [job_id, telemetry] : state.telemetry) {
    out.PutU64(job_id);
    out.PutU64(telemetry.first);
    out.PutU32(telemetry.second);
  }
}

void GetSchedStateCore(BinReader& in, PolluxSched::State* state) {
  state->ga.rng = GetRngState(in);
  const uint64_t job_ids = in.GetU64();
  for (uint64_t i = 0; i < job_ids && in.ok(); ++i) {
    state->ga.last_job_ids.push_back(in.GetU64());
  }
  const uint64_t population = in.GetU64();
  for (uint64_t i = 0; i < population && in.ok(); ++i) {
    const uint64_t num_jobs = in.GetU64();
    const uint64_t num_nodes = in.GetU64();
    if (!in.ok() || num_jobs > (uint64_t{1} << 20) || num_nodes > (uint64_t{1} << 20)) {
      in.MarkBad();
      return;
    }
    AllocationMatrix matrix(static_cast<size_t>(num_jobs), static_cast<size_t>(num_nodes));
    for (size_t job = 0; job < matrix.num_jobs(); ++job) {
      for (size_t node = 0; node < matrix.num_nodes(); ++node) {
        matrix.at(job, node) = static_cast<int>(in.GetI64());
      }
    }
    state->ga.population.push_back(std::move(matrix));
  }
  state->last_utility = in.GetDouble();
  state->last_fitness = in.GetDouble();
  state->fallback_rounds = in.GetU64();
  state->degraded_rounds = in.GetU64();
  state->lease_expirations = in.GetU64();
  state->lease_evictions = in.GetU64();
  state->dup_reports = in.GetU64();
  state->queue_skipped = in.GetU64();
  const uint64_t telemetry_entries = in.GetU64();
  for (uint64_t i = 0; i < telemetry_entries && in.ok(); ++i) {
    const uint64_t job_id = in.GetU64();
    const uint64_t last_seq = in.GetU64();
    const uint32_t last_class = in.GetU32();
    state->telemetry[job_id] = {last_seq, last_class};
  }
}

void PutSchedStateIncremental(BinWriter& out, const PolluxSched::State& state) {
  out.PutU64(state.incremental.size());
  for (const auto& [job_id, snap] : state.incremental) {
    out.PutU64(job_id);
    out.PutDouble(snap.params.alpha_grad);
    out.PutDouble(snap.params.beta_grad);
    out.PutDouble(snap.params.alpha_sync_local);
    out.PutDouble(snap.params.beta_sync_local);
    out.PutDouble(snap.params.alpha_sync_node);
    out.PutDouble(snap.params.beta_sync_node);
    out.PutDouble(snap.params.gamma);
    out.PutDouble(snap.phi);
    out.PutI64(snap.base_batch);
    out.PutI64(snap.cap);
    out.PutU32(snap.bucket);
    out.PutU32(snap.rounds_clean);
  }
  out.PutU64(state.incremental_round);
}

void GetSchedStateIncremental(BinReader& in, PolluxSched::State* state) {
  const uint64_t incremental_entries = in.GetU64();
  for (uint64_t i = 0; i < incremental_entries && in.ok(); ++i) {
    const uint64_t job_id = in.GetU64();
    PolluxSched::JobOptState snap;
    snap.params.alpha_grad = in.GetDouble();
    snap.params.beta_grad = in.GetDouble();
    snap.params.alpha_sync_local = in.GetDouble();
    snap.params.beta_sync_local = in.GetDouble();
    snap.params.alpha_sync_node = in.GetDouble();
    snap.params.beta_sync_node = in.GetDouble();
    snap.params.gamma = in.GetDouble();
    snap.phi = in.GetDouble();
    snap.base_batch = static_cast<long>(in.GetI64());
    snap.cap = static_cast<int>(in.GetI64());
    snap.bucket = static_cast<uint16_t>(in.GetU32());
    snap.rounds_clean = in.GetU32();
    state->incremental[job_id] = snap;
  }
  state->incremental_round = in.GetU64();
}

std::string EncodeSnapshotExtra(const SnapshotExtra& extra) {
  BinWriter out;
  out.PutString(extra.policy);
  out.PutString(extra.driver_config);
  out.PutString(extra.trace_csv);
  return out.str();
}

bool DecodeSnapshotExtra(const std::string& payload, SnapshotExtra* extra) {
  BinReader in(payload);
  extra->policy = in.GetString();
  extra->driver_config = in.GetString();
  extra->trace_csv = in.GetString();
  return in.ok() && in.AtEnd();
}

bool WriteSnapshotFile(const std::string& path,
                       const std::map<uint32_t, std::string>& sections,
                       const SnapshotMeta& meta, std::string* error) {
  std::string file(kMagic, kMagicSize);
  BinWriter body;
  body.PutU32(kSnapshotVersion);
  for (const auto& [tag, payload] : sections) {
    body.PutU32(tag);
    body.PutString(payload);
  }
  file += body.str();
  const uint32_t crc = Crc32(file.data() + kMagicSize, file.size() - kMagicSize);
  BinWriter crc_writer;
  crc_writer.PutU32(crc);
  file += crc_writer.str();
  if (!WriteFileAtomic(path, file, error)) {
    return false;
  }

  char buf[1024];
  std::snprintf(buf, sizeof(buf),
                "{\n"
                "  \"format\": \"pollux-snapshot\",\n"
                "  \"version\": %u,\n"
                "  \"file\": \"%s\",\n"
                "  \"crc32\": %u,\n"
                "  \"bytes\": %zu,\n"
                "  \"sim_time\": %.17g,\n"
                "  \"engine\": \"%s\",\n"
                "  \"policy\": \"%s\",\n"
                "  \"seed\": %llu,\n"
                "  \"jobs_submitted\": %llu,\n"
                "  \"jobs_finished\": %llu,\n"
                "  \"events\": %llu\n"
                "}\n",
                kSnapshotVersion,
                JsonEscape(std::filesystem::path(path).filename().string()).c_str(), crc,
                file.size(), meta.sim_time, JsonEscape(meta.engine).c_str(),
                JsonEscape(meta.policy).c_str(),
                static_cast<unsigned long long>(meta.seed),
                static_cast<unsigned long long>(meta.jobs_submitted),
                static_cast<unsigned long long>(meta.jobs_finished),
                static_cast<unsigned long long>(meta.events));
  // The sidecar is advisory metadata; a failure to write it is not fatal.
  std::string sidecar_error;
  if (!WriteFileAtomic(path + ".json", buf, &sidecar_error)) {
    std::fprintf(stderr, "warning: %s\n", sidecar_error.c_str());
  }
  return true;
}

bool ReadSnapshotFile(const std::string& path, std::map<uint32_t, std::string>* sections,
                      std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Fail(error, "cannot open snapshot " + path);
  }
  std::string file((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  if (file.size() < kMagicSize + 4 + kCrcSize) {
    return Corrupt(error, path + ": truncated snapshot (" + std::to_string(file.size()) +
                              " bytes)");
  }
  if (std::memcmp(file.data(), kMagic, kMagicSize) != 0) {
    return Corrupt(error, path + ": not a pollux snapshot (bad magic)");
  }
  const std::string stored_crc_bytes = file.substr(file.size() - kCrcSize);
  BinReader crc_reader(stored_crc_bytes);
  const uint32_t stored_crc = crc_reader.GetU32();
  const uint32_t actual_crc =
      Crc32(file.data() + kMagicSize, file.size() - kMagicSize - kCrcSize);
  if (stored_crc != actual_crc) {
    return Corrupt(error, path + ": CRC mismatch (torn or corrupt write)");
  }
  const std::string body = file.substr(kMagicSize, file.size() - kMagicSize - kCrcSize);
  BinReader reader(body);
  const uint32_t version = reader.GetU32();
  if (version > kSnapshotVersion) {
    return Corrupt(error, path + ": snapshot format version " + std::to_string(version) +
                              " is newer than supported version " +
                              std::to_string(kSnapshotVersion));
  }
  sections->clear();
  while (reader.ok() && !reader.AtEnd()) {
    const uint32_t tag = reader.GetU32();
    std::string payload = reader.GetString();
    if (!reader.ok()) {
      break;
    }
    (*sections)[tag] = std::move(payload);
  }
  if (!reader.ok()) {
    return Corrupt(error, path + ": truncated section framing");
  }
  return true;
}

bool ReadSnapshotExtra(const std::string& path, SnapshotExtra* extra, std::string* error) {
  std::map<uint32_t, std::string> sections;
  if (!ReadSnapshotFile(path, &sections, error)) {
    return false;
  }
  const auto it = sections.find(kTagExtra);
  if (it == sections.end()) {
    return Fail(error, path + ": snapshot has no driver payload section");
  }
  if (!DecodeSnapshotExtra(it->second, extra)) {
    return Corrupt(error, path + ": malformed driver payload section");
  }
  return true;
}

std::string SnapshotFileName(double sim_time) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "ckpt-%015lld.bin",
                static_cast<long long>(std::llround(sim_time * 1000.0)));
  return buf;
}

std::vector<std::string> ListSnapshotFiles(const std::string& dir) {
  std::vector<std::string> files;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) {
      continue;
    }
    const std::string name = entry.path().filename().string();
    if (name.rfind("ckpt-", 0) == 0 && name.size() > 4 &&
        name.compare(name.size() - 4, 4, ".bin") == 0) {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string ResolveSnapshotPath(const std::string& path_or_dir, std::string* error) {
  std::error_code ec;
  if (!std::filesystem::exists(path_or_dir, ec)) {
    Fail(error, "snapshot path " + path_or_dir + " does not exist");
    return std::string();
  }
  if (!std::filesystem::is_directory(path_or_dir, ec)) {
    return path_or_dir;
  }
  const std::vector<std::string> files = ListSnapshotFiles(path_or_dir);
  if (files.empty()) {
    Fail(error, "no snapshots (ckpt-*.bin) in directory " + path_or_dir);
    return std::string();
  }
  size_t skipped = 0;
  for (auto it = files.rbegin(); it != files.rend(); ++it) {
    std::map<uint32_t, std::string> sections;
    std::string candidate_error;
    if (ReadSnapshotFile(*it, &sections, &candidate_error)) {
      if (skipped > 0) {
        std::fprintf(stderr, "falling back to previous snapshot %s\n", it->c_str());
      }
      return *it;
    }
    ++skipped;
    std::fprintf(stderr, "skipping bad snapshot: %s\n", candidate_error.c_str());
  }
  Fail(error, "all " + std::to_string(files.size()) + " snapshots in " + path_or_dir +
                  " are torn or corrupt");
  return std::string();
}

}  // namespace pollux
