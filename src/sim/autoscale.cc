#include "sim/autoscale.h"

#include <algorithm>

namespace pollux {

int GoodputAutoscaler::DecideNodes(const SchedulerContext& context, int current_nodes,
                                   int gpus_per_node) {
  if (context.jobs.empty()) {
    return config_.min_nodes;
  }
  const double utility = policy_->sched().last_utility();
  const auto& reports = policy_->last_reports();
  const AutoscaleDecision decision =
      DecideNodeCount(config_, current_nodes, utility, [&](int nodes) {
        return policy_->sched().EvaluateUtilityAt(nodes, gpus_per_node, reports);
      });
  return decision.target_nodes;
}

int ThroughputAutoscaler::DecideNodes(const SchedulerContext& context, int current_nodes,
                                      int gpus_per_node) {
  (void)current_nodes;
  if (context.jobs.empty()) {
    return min_nodes_;
  }
  // Single large job is the Fig. 10 scenario; with several jobs, use the sum
  // of per-job throughput ratios.
  int best = min_nodes_;
  for (int nodes = min_nodes_; nodes <= max_nodes_; ++nodes) {
    double per_gpu_fraction = 0.0;
    for (const auto& job : context.jobs) {
      const auto& model = job.agent.model;
      const BatchLimits& limits = job.agent.limits;
      const int gpus = nodes * gpus_per_node;
      const Placement placement{gpus, nodes};
      // Throughput-maximizing batch: throughput increases with batch size, so
      // the largest feasible batch is optimal under a throughput-only model.
      const long batch = limits.MaxFeasible(gpus);
      const double many = model.ThroughputAt(placement, static_cast<double>(batch));
      const long base_batch = limits.MaxFeasible(1);
      const double one =
          model.ThroughputAt(Placement{1, 1}, static_cast<double>(base_batch));
      if (one <= 0.0) {
        continue;
      }
      per_gpu_fraction += many / (one * gpus);
    }
    per_gpu_fraction /= static_cast<double>(context.jobs.size());
    if (per_gpu_fraction >= threshold_) {
      best = nodes;
    }
  }
  return best;
}

}  // namespace pollux
