#include "sim/engine/progress_integrator.h"

#include <algorithm>
#include <limits>

namespace pollux {

double SolveCompletionTime(const ModelProfile& profile, long batch_size, double throughput,
                           double progress, double max_step) {
  const double total = profile.TotalExamples();
  double remaining = total - progress;
  if (remaining <= 0.0 || throughput <= 0.0 || max_step <= 0.0) {
    return 0.0;
  }
  double elapsed = 0.0;
  // A piece per decay point plus the final stretch; the bound is a safety
  // net against degenerate curves, far above any Table-1 profile.
  for (int piece = 0; piece < 64 && remaining > 0.0; ++piece) {
    const double fraction = std::clamp(progress / total, 0.0, 1.0);
    const double rate = throughput * profile.TrueEfficiency(batch_size, fraction);
    if (rate <= 0.0) {
      return max_step;
    }
    // Next LR-decay breakpoint strictly ahead of the current fraction. phi
    // picks up its decay_boost exactly at the breakpoint (PhiAt tests
    // p >= point), so evaluating the next piece at the boundary is correct.
    double next_boundary = std::numeric_limits<double>::infinity();
    for (double point : profile.gns.decay_points) {
      if (point > fraction && point < next_boundary) {
        next_boundary = point;
      }
    }
    const double to_boundary = next_boundary * total - progress;
    if (remaining <= to_boundary) {
      elapsed += remaining / rate;
      remaining = 0.0;
      break;
    }
    elapsed += to_boundary / rate;
    progress = next_boundary * total;
    remaining -= to_boundary;
  }
  return std::clamp(elapsed, 0.0, max_step);
}

}  // namespace pollux
