// Recurring-timer helper reproducing the legacy tick loop's periodic-handler
// semantics on top of the event queue.
//
// The ticked loop ran, once per tick:
//
//   if (now + 1e-9 >= next_fire) { Handler(now); next_fire += interval; }
//
// which has two consequences the event engine must preserve bit-for-bit:
//   1. Handlers fire at the first *tick boundary* at or after the threshold
//      (with 1e-9 slack), not at the raw threshold.
//   2. The threshold advances by `interval` per firing, not to `now`; when
//      interval < tick the threshold lags behind the clock and the handler
//      fires at most once per tick, every tick.
// NextFireTime encodes both rules.

#ifndef POLLUX_SIM_ENGINE_TIMERS_H_
#define POLLUX_SIM_ENGINE_TIMERS_H_

#include <algorithm>
#include <limits>

#include "sim/engine/sim_clock.h"

namespace pollux {

class RecurringTimer {
 public:
  // First firing threshold `start`, then every `interval` seconds.
  RecurringTimer(double start, double interval) : threshold_(start), interval_(interval) {}

  // The grid time of the next firing: the first tick boundary at or after
  // the threshold, but never the boundary the timer last fired on (the
  // ticked loop tested each threshold once per tick).
  double NextFireTime(const SimClock& clock) const {
    double at = clock.GridCeilSlack(threshold_);
    if (last_fire_ >= 0.0) {
      at = std::max(at, last_fire_ + clock.tick());
    }
    return at;
  }

  // Records a firing at grid time `now` and advances the threshold.
  void Fired(double now) {
    last_fire_ = now;
    threshold_ += interval_;
  }

  double threshold() const { return threshold_; }
  double interval() const { return interval_; }
  double last_fire() const { return last_fire_; }

  // Restores (threshold, last_fire) from a checkpoint so a resumed event loop
  // continues the exact firing schedule of the interrupted run.
  void RestoreState(double threshold, double last_fire) {
    threshold_ = threshold;
    last_fire_ = last_fire;
  }

 private:
  double threshold_;
  double interval_;
  double last_fire_ = -std::numeric_limits<double>::infinity();
};

}  // namespace pollux

#endif  // POLLUX_SIM_ENGINE_TIMERS_H_
