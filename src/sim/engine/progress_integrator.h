// Exact completion-time solving for the event engine.
//
// The fixed-tick engine completed jobs with a single Euler step
// (step = remaining / rate, efficiency frozen at the pre-step progress),
// which is exact only when no GNS breakpoint lies between the current
// progress and the finish line. SolveCompletionTime integrates the progress
// piecewise instead: efficiency is re-evaluated at every LR-decay breakpoint
// the job crosses (phi jumps by decay_boost there, Fig. 2a), yielding the
// time at which progress reaches TotalExamples under the piecewise-Euler
// rate model. When no breakpoint is crossed the result equals the Euler
// step bit-for-bit.

#ifndef POLLUX_SIM_ENGINE_PROGRESS_INTEGRATOR_H_
#define POLLUX_SIM_ENGINE_PROGRESS_INTEGRATOR_H_

#include "workload/model_profile.h"

namespace pollux {

// Time for the job to earn its last `TotalExamples() - progress` examples.
// `throughput` is the example throughput (batch / iter_time, already
// including any interference/straggler slowdown); `progress` is in examples.
// The result is clamped to [0, max_step] so a refined completion never
// escapes the advance span that contained the Euler completion.
double SolveCompletionTime(const ModelProfile& profile, long batch_size, double throughput,
                           double progress, double max_step);

}  // namespace pollux

#endif  // POLLUX_SIM_ENGINE_PROGRESS_INTEGRATOR_H_
