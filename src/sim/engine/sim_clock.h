// Simulation clock for the event engine.
//
// The event engine is tick-free in its control flow — it jumps straight from
// event to event — but the legacy fixed-tick loop defined the simulation's
// observable contract in units of the tick: profiling samples are drawn once
// per tick of running time, periodic handlers fire at the first tick boundary
// at or after their threshold, and fault/submission effects land on the tick
// grid. SimClock centralizes that grid arithmetic so the event engine
// reproduces the ticked engine's timing decisions exactly (see
// RecurringTimer in timers.h for the threshold-lag subtlety).

#ifndef POLLUX_SIM_ENGINE_SIM_CLOCK_H_
#define POLLUX_SIM_ENGINE_SIM_CLOCK_H_

#include <cmath>
#include <cstdint>

namespace pollux {

class SimClock {
 public:
  explicit SimClock(double tick) : tick_(tick > 0.0 ? tick : 1.0) {}

  double tick() const { return tick_; }
  double now() const { return now_; }

  // Moves the clock forward; time never runs backwards.
  void AdvanceTo(double t) {
    if (t > now_) {
      now_ = t;
    }
  }

  // Smallest grid point k*tick >= t. Exact comparison — used where the
  // ticked loop compared without slack (job restart_until, submissions,
  // fault transitions: all take effect at the next tick boundary).
  double GridCeil(double t) const {
    if (t <= 0.0) {
      return 0.0;
    }
    return std::ceil(t / tick_) * tick_;
  }

  // Grid ceiling with the ticked loop's 1e-9 threshold slack
  // (`now + 1e-9 >= threshold`), for periodic-handler fire times.
  double GridCeilSlack(double t) const { return GridCeil(t - 1e-9); }

  // Number of grid ticks in [from, to): the per-tick iterations the legacy
  // loop would have executed across that span. Both endpoints are expected
  // to be grid points.
  int64_t TicksBetween(double from, double to) const {
    if (to <= from) {
      return 0;
    }
    return std::llround((to - from) / tick_);
  }

 private:
  double tick_;
  double now_ = 0.0;
};

}  // namespace pollux

#endif  // POLLUX_SIM_ENGINE_SIM_CLOCK_H_
