// Deterministic event queue for the discrete-event simulation engine.
//
// A binary min-heap ordered by the explicit key (time, priority, sequence):
// earlier events first, then lower priority values (the simulator assigns one
// priority per handler class so same-instant events replay the legacy tick
// loop's intra-tick handler order), then insertion sequence. Because the full
// key is unique — the sequence number is a monotone push counter — the pop
// order is totally determined by the pushes and never depends on heap
// internals, iteration order, or platform. That property is what lets the
// event engine promise byte-identical runs per seed.

#ifndef POLLUX_SIM_ENGINE_EVENT_QUEUE_H_
#define POLLUX_SIM_ENGINE_EVENT_QUEUE_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace pollux {

template <typename Payload>
class EventQueue {
 public:
  struct Entry {
    double time = 0.0;
    int priority = 0;
    uint64_t seq = 0;
    Payload payload{};
  };

  void Push(double time, int priority, Payload payload) {
    heap_.push_back(Entry{time, priority, next_seq_++, std::move(payload)});
    std::push_heap(heap_.begin(), heap_.end(), After);
  }

  const Entry& Top() const { return heap_.front(); }

  Entry Pop() {
    std::pop_heap(heap_.begin(), heap_.end(), After);
    Entry entry = std::move(heap_.back());
    heap_.pop_back();
    return entry;
  }

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }
  // Total pushes over the queue's lifetime (the next sequence number).
  uint64_t pushes() const { return next_seq_; }

 private:
  // Max-heap comparator inverted into a min-queue: a sorts after b when its
  // key is strictly greater.
  static bool After(const Entry& a, const Entry& b) {
    if (a.time != b.time) {
      return a.time > b.time;
    }
    if (a.priority != b.priority) {
      return a.priority > b.priority;
    }
    return a.seq > b.seq;
  }

  std::vector<Entry> heap_;
  uint64_t next_seq_ = 0;
};

}  // namespace pollux

#endif  // POLLUX_SIM_ENGINE_EVENT_QUEUE_H_
