#include "sim/fault_injector.h"

#include <algorithm>
#include <limits>

namespace pollux {
namespace {

constexpr double kNever = std::numeric_limits<double>::infinity();

// splitmix64-style mix so node streams depend only on (seed, creation index).
uint64_t MixSeed(uint64_t seed, uint64_t stream) {
  uint64_t x = seed + 0x9e3779b97f4a7c15ULL * (stream + 1);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

bool SchedRecoveryByName(const std::string& name, SchedRecovery* recovery) {
  if (name.empty() || name == "warm") {
    *recovery = SchedRecovery::kWarm;
    return true;
  }
  if (name == "cold") {
    *recovery = SchedRecovery::kCold;
    return true;
  }
  return false;
}

const char* SchedRecoveryName(SchedRecovery recovery) {
  return recovery == SchedRecovery::kCold ? "cold" : "warm";
}

bool FaultProfileByName(const std::string& name, FaultOptions* options) {
  FaultOptions result;
  if (name.empty() || name == "none") {
    *options = result;
    return true;
  }
  if (name == "light") {
    result.mtbf_node = 24.0 * 3600.0;
    result.repair_time = 600.0;
    result.straggler_frac = 0.0625;
    result.straggler_slowdown = 1.3;
    result.report_drop_rate = 0.02;
    result.restart_fail_rate = 0.05;
    *options = result;
    return true;
  }
  if (name == "heavy") {
    result.mtbf_node = 6.0 * 3600.0;
    result.repair_time = 1800.0;
    result.straggler_frac = 0.25;
    result.straggler_slowdown = 1.75;
    result.report_drop_rate = 0.10;
    result.restart_fail_rate = 0.20;
    *options = result;
    return true;
  }
  return false;
}

FaultInjector::FaultInjector(FaultOptions options, int num_nodes, uint64_t seed)
    : options_(options),
      seed_(seed),
      report_rng_(MixSeed(seed, 0xaaaaULL)),
      restart_rng_(MixSeed(seed, 0xbbbbULL)),
      sched_rng_(MixSeed(seed, 0xccccULL)) {
  next_sched_crash_ = options_.mtbf_sched > 0.0
                          ? sched_rng_.Exponential(1.0 / options_.mtbf_sched)
                          : kNever;
  nodes_.reserve(static_cast<size_t>(num_nodes));
  for (int n = 0; n < num_nodes; ++n) {
    nodes_.push_back(MakeNode(n, 0.0));
  }
}

FaultInjector::NodeState FaultInjector::MakeNode(int index, double now) {
  (void)index;
  NodeState state;
  state.rng = Rng(MixSeed(seed_, nodes_created_++));
  state.straggler =
      options_.straggler_frac > 0.0 && state.rng.Bernoulli(options_.straggler_frac);
  state.next_transition = options_.mtbf_node > 0.0
                              ? now + state.rng.Exponential(1.0 / options_.mtbf_node)
                              : kNever;
  return state;
}

std::vector<FaultInjector::NodeTransition> FaultInjector::Poll(double now) {
  std::vector<NodeTransition> transitions;
  if (options_.mtbf_node <= 0.0) {
    return transitions;
  }
  // Replay every transition due by `now`, globally ordered by (time, node) so
  // the emitted sequence does not depend on per-node scan order.
  while (true) {
    int due = -1;
    for (size_t n = 0; n < nodes_.size(); ++n) {
      if (nodes_[n].next_transition <= now &&
          (due < 0 ||
           nodes_[n].next_transition < nodes_[static_cast<size_t>(due)].next_transition)) {
        due = static_cast<int>(n);
      }
    }
    if (due < 0) {
      break;
    }
    NodeState& node = nodes_[static_cast<size_t>(due)];
    const double at = node.next_transition;
    node.failed = !node.failed;
    node.next_transition =
        at + node.rng.Exponential(node.failed ? 1.0 / std::max(options_.repair_time, 1.0)
                                              : 1.0 / options_.mtbf_node);
    transitions.push_back(NodeTransition{due, node.failed});
  }
  return transitions;
}

double FaultInjector::NextTransitionTime() const {
  double next = next_sched_crash_;
  if (options_.mtbf_node <= 0.0) {
    return next;
  }
  for (const auto& node : nodes_) {
    next = std::min(next, node.next_transition);
  }
  return next;
}

int FaultInjector::PollSchedulerCrashes(double now) {
  int crashes = 0;
  while (next_sched_crash_ <= now) {
    ++crashes;
    next_sched_crash_ += sched_rng_.Exponential(1.0 / options_.mtbf_sched);
  }
  return crashes;
}

void FaultInjector::OnClusterResize(int num_nodes, double now) {
  const size_t target = static_cast<size_t>(num_nodes);
  if (target < nodes_.size()) {
    nodes_.resize(target);
    return;
  }
  while (nodes_.size() < target) {
    nodes_.push_back(MakeNode(static_cast<int>(nodes_.size()), now));
  }
}

double FaultInjector::JobSlowdown(const std::vector<int>& alloc) const {
  if (options_.straggler_frac <= 0.0 || options_.straggler_slowdown <= 1.0) {
    return 1.0;
  }
  for (size_t n = 0; n < alloc.size() && n < nodes_.size(); ++n) {
    if (alloc[n] > 0 && nodes_[n].straggler) {
      return options_.straggler_slowdown;
    }
  }
  return 1.0;
}

FaultInjector::State FaultInjector::GetState() const {
  State state;
  state.report_rng = report_rng_.GetState();
  state.restart_rng = restart_rng_.GetState();
  state.sched_rng = sched_rng_.GetState();
  state.next_sched_crash = next_sched_crash_;
  state.nodes.reserve(nodes_.size());
  for (const auto& node : nodes_) {
    State::Node saved;
    saved.rng = node.rng.GetState();
    saved.failed = node.failed;
    saved.straggler = node.straggler;
    saved.next_transition = node.next_transition;
    state.nodes.push_back(saved);
  }
  state.nodes_created = nodes_created_;
  return state;
}

void FaultInjector::SetState(const State& state) {
  report_rng_.SetState(state.report_rng);
  restart_rng_.SetState(state.restart_rng);
  sched_rng_.SetState(state.sched_rng);
  next_sched_crash_ = state.next_sched_crash;
  nodes_.clear();
  nodes_.reserve(state.nodes.size());
  for (const auto& saved : state.nodes) {
    NodeState node;
    node.rng.SetState(saved.rng);
    node.failed = saved.failed;
    node.straggler = saved.straggler;
    node.next_transition = saved.next_transition;
    nodes_.push_back(node);
  }
  nodes_created_ = state.nodes_created;
}

int FaultInjector::num_failed_nodes() const {
  int failed = 0;
  for (const auto& node : nodes_) {
    failed += node.failed ? 1 : 0;
  }
  return failed;
}

}  // namespace pollux
