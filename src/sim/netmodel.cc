#include "sim/netmodel.h"

#include <algorithm>
#include <limits>

namespace pollux {
namespace {

constexpr double kNever = std::numeric_limits<double>::infinity();
// Floor on every delivery latency: keeps deliver_at strictly after the send
// instant so both engines deliver on the next tick grid point, never within
// the sending handler's own dispatch.
constexpr double kMinLatency = 1e-6;
// Floor on partition dwell times so window generation always advances.
constexpr double kMinDwell = 1e-6;

// splitmix64-style mix so every stream depends only on (seed, stream id).
uint64_t MixSeed(uint64_t seed, uint64_t stream) {
  uint64_t x = seed + 0x9e3779b97f4a7c15ULL * (stream + 1);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Stream-id spaces: channels use 2*job_id (+1 for decisions) under the raw
// seed; partition tracks salt the seed so they can never collide with a
// channel stream.
constexpr uint64_t kNodeTrackSalt = 0x6e0d65ULL;
constexpr uint64_t kRackTrackSalt = 0x7ac45ULL;

}  // namespace

bool NetProfileByName(const std::string& name, NetOptions* options) {
  NetOptions result;
  if (name.empty() || name == "none") {
    *options = result;
    return true;
  }
  if (name == "lan") {
    result.latency = 0.1;
    result.jitter = 0.05;
    result.loss_rate = 0.005;
    *options = result;
    return true;
  }
  if (name == "flaky") {
    result.latency = 0.5;
    result.jitter = 1.5;
    result.loss_rate = 0.05;
    result.burst_rate = 0.02;
    result.burst_duration = 240.0;
    result.dup_rate = 0.03;
    result.reorder_rate = 0.05;
    result.reorder_extra = 10.0;
    *options = result;
    return true;
  }
  if (name == "partitioned") {
    result.latency = 0.5;
    result.jitter = 1.0;
    result.loss_rate = 0.02;
    result.burst_rate = 0.01;
    result.burst_duration = 180.0;
    result.dup_rate = 0.02;
    result.reorder_rate = 0.03;
    result.reorder_extra = 10.0;
    result.mtbf_partition = 2.0 * 3600.0;
    result.partition_duration = 240.0;
    result.mtbf_rack_partition = 4.0 * 3600.0;
    result.rack_partition_duration = 360.0;
    result.rack_size = 4;
    *options = result;
    return true;
  }
  return false;
}

NetModel::NetModel(NetOptions options, int num_nodes, uint64_t seed)
    : options_(options), seed_(seed) {
  OnClusterResize(num_nodes, 0.0);
}

NetModel::ChannelState& NetModel::GetChannel(std::map<uint64_t, ChannelState>& channels,
                                             uint64_t job_id, uint64_t stream) {
  auto it = channels.find(job_id);
  if (it == channels.end()) {
    ChannelState state;
    state.rng = Rng(MixSeed(seed_, stream));
    it = channels.emplace(job_id, std::move(state)).first;
  }
  return it->second;
}

void NetModel::EnqueueCopy(ChannelState& channel, const Message& message, double attempt) {
  double lat = options_.latency;
  if (options_.jitter > 0.0) {
    lat += channel.rng.Exponential(1.0 / options_.jitter);
  }
  if (options_.reorder_rate > 0.0 && channel.rng.Bernoulli(options_.reorder_rate)) {
    lat += channel.rng.Uniform(0.0, std::max(options_.reorder_extra, 0.0));
  }
  Message copy = message;
  copy.deliver_at = attempt + std::max(lat, kMinLatency);
  copy.seq = next_msg_seq_++;
  inflight_.insert(std::move(copy));
}

NetModel::SendOutcome NetModel::Send(ChannelState& channel, Message message, int node,
                                     double now) {
  SendOutcome outcome;
  message.payload_seq = ++channel.next_seq;
  message.sent_at = now;
  outcome.payload_seq = message.payload_seq;
  double attempt = now;
  double backoff = std::max(options_.retry_backoff_init, kMinDwell);
  const int max_attempts = 1 + std::max(options_.max_retries, 0);
  for (int tries = 0; tries < max_attempts; ++tries) {
    if (tries > 0) {
      // Capped jittered exponential backoff; the jitter draw happens even for
      // attempts that a partition will block, matching an agent that cannot
      // see the network state when it arms its retry timer.
      attempt += backoff * channel.rng.Uniform(0.5, 1.5);
      backoff = std::min(backoff * 2.0, std::max(options_.retry_backoff_cap, backoff));
    }
    outcome.attempts = tries + 1;
    if (node >= 0 && Partitioned(node, attempt)) {
      continue;  // Unreachable: no fate draw, the attempt just times out.
    }
    if (attempt < channel.burst_until) {
      continue;  // Channel is inside a loss burst: dropped, no fate draw.
    }
    if (options_.burst_rate > 0.0 && channel.rng.Bernoulli(options_.burst_rate)) {
      channel.burst_until =
          attempt + std::max(channel.rng.Exponential(1.0 / std::max(options_.burst_duration,
                                                                    kMinDwell)),
                             kMinDwell);
      continue;
    }
    if (options_.loss_rate > 0.0 && channel.rng.Bernoulli(options_.loss_rate)) {
      continue;
    }
    EnqueueCopy(channel, message, attempt);
    if (options_.dup_rate > 0.0 && channel.rng.Bernoulli(options_.dup_rate)) {
      EnqueueCopy(channel, message, attempt);
      outcome.duplicated = true;
    }
    outcome.delivered = true;
    break;
  }
  return outcome;
}

NetModel::SendOutcome NetModel::SendReport(uint64_t job_id, int node,
                                           const AgentReport& report, double now) {
  Message message;
  message.kind = MsgKind::kReport;
  message.job_id = job_id;
  message.node = node;
  message.report = report;
  return Send(GetChannel(report_channels_, job_id, 2 * job_id), std::move(message), node, now);
}

NetModel::SendOutcome NetModel::SendDecision(uint64_t job_id, int node,
                                             const std::vector<int>& row, double now) {
  Message message;
  message.kind = MsgKind::kDecision;
  message.job_id = job_id;
  message.node = node;
  message.row = row;
  return Send(GetChannel(decision_channels_, job_id, 2 * job_id + 1), std::move(message), node,
              now);
}

bool NetModel::SendHeartbeat(int node, double now) {
  if (node < 0 || Partitioned(node, now)) {
    return false;
  }
  Message message;
  message.kind = MsgKind::kHeartbeat;
  message.node = node;
  message.sent_at = now;
  message.deliver_at = now + std::max(options_.latency, kMinLatency);
  message.seq = next_msg_seq_++;
  inflight_.insert(std::move(message));
  return true;
}

std::vector<NetModel::Message> NetModel::PopDue(double now) {
  std::vector<Message> due;
  while (!inflight_.empty() && inflight_.begin()->deliver_at <= now) {
    due.push_back(*inflight_.begin());
    inflight_.erase(inflight_.begin());
  }
  return due;
}

double NetModel::NextDeliveryTime() const {
  return inflight_.empty() ? kNever : inflight_.begin()->deliver_at;
}

NetModel::Track NetModel::MakeTrack(uint64_t salt, uint64_t index) {
  Track track;
  track.rng = Rng(MixSeed(seed_ ^ salt, index));
  return track;
}

void NetModel::ExtendTrack(Track& track, double t, double mtbf, double duration) {
  while (track.tail_time <= t) {
    const bool tail_down = track.head_down != (track.pending.size() % 2 == 1);
    const double mean = tail_down ? duration : mtbf;
    track.tail_time +=
        std::max(track.rng.Exponential(1.0 / std::max(mean, kMinDwell)), kMinDwell);
    track.pending.push_back(track.tail_time);
  }
}

bool NetModel::TrackDownAt(Track& track, double t, double mtbf, double duration) {
  ExtendTrack(track, t, mtbf, duration);
  size_t flips = 0;
  for (double at : track.pending) {
    if (at > t) {
      break;
    }
    ++flips;
  }
  return track.head_down != (flips % 2 == 1);
}

bool NetModel::Partitioned(int node, double t) {
  if (node < 0) {
    return false;
  }
  if (options_.mtbf_partition > 0.0 && node < static_cast<int>(node_tracks_.size()) &&
      TrackDownAt(node_tracks_[static_cast<size_t>(node)], t, options_.mtbf_partition,
                  options_.partition_duration)) {
    return true;
  }
  if (options_.mtbf_rack_partition > 0.0 && options_.rack_size > 0) {
    const int rack = node / options_.rack_size;
    if (rack < static_cast<int>(rack_tracks_.size()) &&
        TrackDownAt(rack_tracks_[static_cast<size_t>(rack)], t, options_.mtbf_rack_partition,
                    options_.rack_partition_duration)) {
      return true;
    }
  }
  return false;
}

std::vector<NetModel::Transition> NetModel::PollTransitions(double now) {
  std::vector<Transition> transitions;
  auto drain = [&](std::vector<Track>& tracks, bool rack, double mtbf, double duration) {
    if (mtbf <= 0.0) {
      return;
    }
    for (size_t i = 0; i < tracks.size(); ++i) {
      Track& track = tracks[i];
      ExtendTrack(track, now, mtbf, duration);
      while (!track.pending.empty() && track.pending.front() <= now) {
        track.head_down = !track.head_down;
        transitions.push_back(
            Transition{track.pending.front(), static_cast<int>(i), rack, track.head_down});
        track.pending.pop_front();
      }
    }
  };
  drain(node_tracks_, false, options_.mtbf_partition, options_.partition_duration);
  drain(rack_tracks_, true, options_.mtbf_rack_partition, options_.rack_partition_duration);
  std::stable_sort(transitions.begin(), transitions.end(),
                   [](const Transition& a, const Transition& b) {
                     if (a.time != b.time) return a.time < b.time;
                     if (a.rack != b.rack) return !a.rack;
                     return a.index < b.index;
                   });
  return transitions;
}

double NetModel::NextTransitionTime() {
  double next = kNever;
  auto probe = [&](std::vector<Track>& tracks, double mtbf, double duration) {
    if (mtbf <= 0.0) {
      return;
    }
    for (Track& track : tracks) {
      if (track.pending.empty()) {
        ExtendTrack(track, track.tail_time, mtbf, duration);
      }
      next = std::min(next, track.pending.front());
    }
  };
  probe(node_tracks_, options_.mtbf_partition, options_.partition_duration);
  probe(rack_tracks_, options_.mtbf_rack_partition, options_.rack_partition_duration);
  return next;
}

void NetModel::OnClusterResize(int num_nodes, double now) {
  (void)now;  // Tracks generate windows from their own tails, not wall time.
  const size_t node_target = static_cast<size_t>(std::max(num_nodes, 0));
  if (node_target < node_tracks_.size()) {
    node_tracks_.resize(node_target);
  }
  while (node_tracks_.size() < node_target) {
    node_tracks_.push_back(MakeTrack(kNodeTrackSalt, node_tracks_created_++));
  }
  size_t rack_target = 0;
  if (options_.mtbf_rack_partition > 0.0 && options_.rack_size > 0) {
    rack_target = (node_target + static_cast<size_t>(options_.rack_size) - 1) /
                  static_cast<size_t>(options_.rack_size);
  }
  if (rack_target < rack_tracks_.size()) {
    rack_tracks_.resize(rack_target);
  }
  while (rack_tracks_.size() < rack_target) {
    rack_tracks_.push_back(MakeTrack(kRackTrackSalt, rack_tracks_created_++));
  }
}

NetModel::State NetModel::GetState() const {
  State state;
  auto save_channels = [](const std::map<uint64_t, ChannelState>& channels,
                          std::vector<State::Channel>* out) {
    out->reserve(channels.size());
    for (const auto& [job_id, channel] : channels) {
      State::Channel saved;
      saved.job_id = job_id;
      saved.rng = channel.rng.GetState();
      saved.burst_until = channel.burst_until;
      saved.next_seq = channel.next_seq;
      out->push_back(saved);
    }
  };
  save_channels(report_channels_, &state.report_channels);
  save_channels(decision_channels_, &state.decision_channels);
  auto save_tracks = [](const std::vector<Track>& tracks, std::vector<State::Track>* out) {
    out->reserve(tracks.size());
    for (const Track& track : tracks) {
      State::Track saved;
      saved.rng = track.rng.GetState();
      saved.head_down = track.head_down;
      saved.tail_time = track.tail_time;
      saved.pending.assign(track.pending.begin(), track.pending.end());
      out->push_back(std::move(saved));
    }
  };
  save_tracks(node_tracks_, &state.node_tracks);
  save_tracks(rack_tracks_, &state.rack_tracks);
  state.messages.assign(inflight_.begin(), inflight_.end());
  state.next_msg_seq = next_msg_seq_;
  state.node_tracks_created = node_tracks_created_;
  state.rack_tracks_created = rack_tracks_created_;
  return state;
}

void NetModel::SetState(const State& state) {
  auto load_channels = [](const std::vector<State::Channel>& saved,
                          std::map<uint64_t, ChannelState>* out) {
    out->clear();
    for (const State::Channel& channel : saved) {
      ChannelState loaded;
      loaded.rng.SetState(channel.rng);
      loaded.burst_until = channel.burst_until;
      loaded.next_seq = channel.next_seq;
      out->emplace(channel.job_id, std::move(loaded));
    }
  };
  load_channels(state.report_channels, &report_channels_);
  load_channels(state.decision_channels, &decision_channels_);
  auto load_tracks = [](const std::vector<State::Track>& saved, std::vector<Track>* out) {
    out->clear();
    out->reserve(saved.size());
    for (const State::Track& track : saved) {
      Track loaded;
      loaded.rng.SetState(track.rng);
      loaded.head_down = track.head_down;
      loaded.tail_time = track.tail_time;
      loaded.pending.assign(track.pending.begin(), track.pending.end());
      out->push_back(std::move(loaded));
    }
  };
  load_tracks(state.node_tracks, &node_tracks_);
  load_tracks(state.rack_tracks, &rack_tracks_);
  inflight_.clear();
  for (const Message& message : state.messages) {
    inflight_.insert(message);
  }
  next_msg_seq_ = state.next_msg_seq;
  node_tracks_created_ = state.node_tracks_created;
  rack_tracks_created_ = state.rack_tracks_created;
}

}  // namespace pollux
