// Scheduler interface for the discrete-time cluster simulator.
//
// Each scheduling interval the simulator hands the active scheduler a
// snapshot of every submitted-but-unfinished job and receives back a per-node
// GPU allocation for each. The snapshot deliberately contains a superset of
// what any one policy is allowed to use:
//   * Pollux uses the PolluxAgent report (goodput function);
//   * Optimus uses the fitted throughput model plus the oracle remaining
//     iteration count (Sec. 5.2's Optimus+Oracle);
//   * Tiresias uses only the user-requested GPU count and attained service.

#ifndef POLLUX_SIM_SCHEDULER_H_
#define POLLUX_SIM_SCHEDULER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/agent.h"
#include "core/allocation.h"
#include "workload/model_profile.h"
#include "workload/trace_gen.h"

namespace pollux {

struct JobSnapshot {
  uint64_t job_id = 0;
  const JobSpec* spec = nullptr;
  const ModelProfile* profile = nullptr;
  // Latest PolluxAgent report: fitted theta_sys, smoothed phi, limits, cap.
  AgentReport agent;
  // GPU-seconds consumed so far (Tiresias' attained service, Eqn. 16 input).
  double gpu_time = 0.0;
  // Current allocation (GPUs per node); empty when the job holds nothing.
  std::vector<int> allocation;
  double submit_time = 0.0;
  // Oracle information (Optimus+Oracle only, Sec. 5.2: "we run each job
  // ahead of time and provide Optimus with the exact number of iterations
  // until completion"): exact remaining training iterations at the job's
  // current batch size, and the exact single-GPU time those iterations would
  // take — a stable job-length key that does not depend on the online fit.
  double oracle_remaining_iterations = 0.0;
  double oracle_single_gpu_remaining = 0.0;
  // The batch size the job currently trains with.
  long batch_size = 0;
  // Seconds since the latest delivered agent report was *produced* (grows
  // past the report interval when reports are dropped or delayed in transit);
  // staleness is judged by the policy against this measured age.
  double report_age = 0.0;
  // Delivery sequence number of that report (0 when the control-plane
  // network model is off and reports arrive synchronously).
  uint64_t report_seq = 0;
};

struct SchedulerContext {
  double now = 0.0;
  const ClusterSpec* cluster = nullptr;
  std::vector<JobSnapshot> jobs;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  // Returns the GPUs-per-node row for each job id. Jobs omitted from the map
  // keep their current allocation.
  virtual std::map<uint64_t, std::vector<int>> Schedule(const SchedulerContext& context) = 0;

  // Whether jobs under this policy re-tune their batch size via the agent
  // (true only for Pollux-style co-adaptive policies).
  virtual bool adapts_batch_size() const { return false; }

  // Whether batch-size adaptation maximizes system throughput only (the
  // Or et al. cloud-autoscaling baseline of Sec. 5.3.3) instead of goodput.
  // Only meaningful when adapts_batch_size() is true.
  virtual bool throughput_only_batch() const { return false; }

  // Notification that the autoscaler changed the cluster shape.
  virtual void OnClusterChanged(const ClusterSpec& cluster) { (void)cluster; }

  // Control-plane state serialization for crash-consistent checkpoints
  // (sim/checkpoint.h). SaveState appends an opaque blob; LoadState must
  // accept exactly what SaveState produced and returns false on a malformed
  // blob. The default implementations cover stateless policies (FIFO,
  // Tiresias, Optimus): empty blob out, only an empty blob accepted back.
  virtual void SaveState(std::string* blob) const { blob->clear(); }
  virtual bool LoadState(const std::string& blob) { return blob.empty(); }

  // Cold crash recovery: drop all internal state, as a freshly restarted
  // scheduler process with no snapshot would.
  virtual void ResetControlState() {}

  virtual const char* name() const = 0;
};

}  // namespace pollux

#endif  // POLLUX_SIM_SCHEDULER_H_
