#include "sim/pollux_policy.h"

namespace pollux {

PolluxPolicy::PolluxPolicy(ClusterSpec cluster, SchedConfig config)
    : sched_(std::move(cluster), config) {}

std::map<uint64_t, std::vector<int>> PolluxPolicy::Schedule(const SchedulerContext& context) {
  // Track capacity changes the simulator applied between rounds (node
  // failures/repairs mask capacity in-place rather than calling
  // OnClusterChanged for every transition).
  if (!(sched_.cluster() == *context.cluster)) {
    sched_.SetCluster(*context.cluster);
  }
  last_reports_.clear();
  last_reports_.reserve(context.jobs.size());
  for (const auto& snapshot : context.jobs) {
    SchedJobReport report;
    report.agent = snapshot.agent;
    report.gpu_time = snapshot.gpu_time;
    report.current_allocation = snapshot.allocation;
    report.report_age = snapshot.report_age;
    report.stale = snapshot.report_stale;
    last_reports_.push_back(std::move(report));
  }
  return sched_.Schedule(last_reports_);
}

void PolluxPolicy::OnClusterChanged(const ClusterSpec& cluster) { sched_.SetCluster(cluster); }

}  // namespace pollux
