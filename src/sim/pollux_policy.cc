#include "sim/pollux_policy.h"

#include "sim/checkpoint.h"

namespace pollux {

PolluxPolicy::PolluxPolicy(ClusterSpec cluster, SchedConfig config)
    : sched_(std::move(cluster), config) {}

std::map<uint64_t, std::vector<int>> PolluxPolicy::Schedule(const SchedulerContext& context) {
  // Track capacity changes the simulator applied between rounds (node
  // failures/repairs mask capacity in-place rather than calling
  // OnClusterChanged for every transition).
  if (!(sched_.cluster() == *context.cluster)) {
    sched_.SetCluster(*context.cluster);
  }
  last_reports_.clear();
  last_reports_.reserve(context.jobs.size());
  for (const auto& snapshot : context.jobs) {
    SchedJobReport report;
    report.agent = snapshot.agent;
    report.gpu_time = snapshot.gpu_time;
    report.current_allocation = snapshot.allocation;
    report.report_age = snapshot.report_age;
    report.seq = snapshot.report_seq;
    last_reports_.push_back(std::move(report));
  }
  return sched_.Schedule(last_reports_);
}

void PolluxPolicy::OnClusterChanged(const ClusterSpec& cluster) { sched_.SetCluster(cluster); }

void PolluxPolicy::SaveState(std::string* blob) const {
  BinWriter out;
  out.PutIntVec(sched_.cluster().gpus_per_node);
  const PolluxSched::State state = sched_.GetState();
  PutRngState(out, state.ga.rng);
  out.PutU64(state.ga.last_job_ids.size());
  for (uint64_t job_id : state.ga.last_job_ids) {
    out.PutU64(job_id);
  }
  out.PutU64(state.ga.population.size());
  for (const AllocationMatrix& matrix : state.ga.population) {
    out.PutU64(matrix.num_jobs());
    out.PutU64(matrix.num_nodes());
    for (size_t job = 0; job < matrix.num_jobs(); ++job) {
      for (size_t node = 0; node < matrix.num_nodes(); ++node) {
        out.PutI64(matrix.at(job, node));
      }
    }
  }
  out.PutDouble(state.last_utility);
  out.PutDouble(state.last_fitness);
  out.PutU64(state.fallback_rounds);
  out.PutU64(state.degraded_rounds);
  out.PutU64(state.lease_expirations);
  out.PutU64(state.lease_evictions);
  out.PutU64(state.dup_reports);
  out.PutU64(state.telemetry.size());
  for (const auto& [job_id, telemetry] : state.telemetry) {
    out.PutU64(job_id);
    out.PutU64(telemetry.first);
    out.PutU32(telemetry.second);
  }
  out.PutU64(last_reports_.size());
  for (const SchedJobReport& report : last_reports_) {
    PutAgentReport(out, report.agent);
    out.PutDouble(report.gpu_time);
    out.PutIntVec(report.current_allocation);
    out.PutDouble(report.report_age);
    out.PutU64(report.seq);
  }
  out.PutU64(state.incremental.size());
  for (const auto& [job_id, snap] : state.incremental) {
    out.PutU64(job_id);
    out.PutDouble(snap.params.alpha_grad);
    out.PutDouble(snap.params.beta_grad);
    out.PutDouble(snap.params.alpha_sync_local);
    out.PutDouble(snap.params.beta_sync_local);
    out.PutDouble(snap.params.alpha_sync_node);
    out.PutDouble(snap.params.beta_sync_node);
    out.PutDouble(snap.params.gamma);
    out.PutDouble(snap.phi);
    out.PutI64(snap.base_batch);
    out.PutI64(snap.cap);
    out.PutU32(snap.bucket);
    out.PutU32(snap.rounds_clean);
  }
  out.PutU64(state.incremental_round);
  // Topology annotations travel with the blob so the restored scheduler's
  // cluster compares equal to the live one — otherwise the first Schedule()
  // after a resume would SetCluster (annotations missing) and wipe the
  // persisted GA population, diverging from the uninterrupted run. Appended
  // at the end so pre-topology blobs still load (the reader stops at
  // end-of-blob and keeps the flat cluster they describe).
  const ClusterSpec& sched_cluster = sched_.cluster();
  out.PutIntVec(sched_cluster.rack_of_node);
  out.PutIntVec(sched_cluster.gpu_type_of_node);
  out.PutU64(sched_cluster.node_gpu_scale.size());
  for (double scale : sched_cluster.node_gpu_scale) {
    out.PutDouble(scale);
  }
  out.PutDouble(sched_cluster.rack_link_factor);
  *blob = out.str();
}

bool PolluxPolicy::LoadState(const std::string& blob) {
  BinReader in(blob);
  ClusterSpec cluster;
  cluster.gpus_per_node = in.GetIntVec();
  if (!in.ok()) {
    return false;
  }
  PolluxSched::State state;
  state.ga.rng = GetRngState(in);
  const uint64_t job_ids = in.GetU64();
  for (uint64_t i = 0; i < job_ids && in.ok(); ++i) {
    state.ga.last_job_ids.push_back(in.GetU64());
  }
  const uint64_t population = in.GetU64();
  for (uint64_t i = 0; i < population && in.ok(); ++i) {
    const uint64_t num_jobs = in.GetU64();
    const uint64_t num_nodes = in.GetU64();
    if (!in.ok() || num_jobs > (uint64_t{1} << 20) || num_nodes > (uint64_t{1} << 20)) {
      return false;
    }
    AllocationMatrix matrix(static_cast<size_t>(num_jobs), static_cast<size_t>(num_nodes));
    for (size_t job = 0; job < matrix.num_jobs(); ++job) {
      for (size_t node = 0; node < matrix.num_nodes(); ++node) {
        matrix.at(job, node) = static_cast<int>(in.GetI64());
      }
    }
    state.ga.population.push_back(std::move(matrix));
  }
  state.last_utility = in.GetDouble();
  state.last_fitness = in.GetDouble();
  state.fallback_rounds = in.GetU64();
  state.degraded_rounds = in.GetU64();
  state.lease_expirations = in.GetU64();
  state.lease_evictions = in.GetU64();
  state.dup_reports = in.GetU64();
  const uint64_t telemetry_entries = in.GetU64();
  for (uint64_t i = 0; i < telemetry_entries && in.ok(); ++i) {
    const uint64_t job_id = in.GetU64();
    const uint64_t last_seq = in.GetU64();
    const uint32_t last_class = in.GetU32();
    state.telemetry[job_id] = {last_seq, last_class};
  }
  const uint64_t reports = in.GetU64();
  std::vector<SchedJobReport> restored_reports;
  for (uint64_t i = 0; i < reports && in.ok(); ++i) {
    SchedJobReport report;
    report.agent = GetAgentReport(in);
    report.gpu_time = in.GetDouble();
    report.current_allocation = in.GetIntVec();
    report.report_age = in.GetDouble();
    report.seq = in.GetU64();
    restored_reports.push_back(std::move(report));
  }
  const uint64_t incremental_entries = in.GetU64();
  for (uint64_t i = 0; i < incremental_entries && in.ok(); ++i) {
    const uint64_t job_id = in.GetU64();
    PolluxSched::JobOptState snap;
    snap.params.alpha_grad = in.GetDouble();
    snap.params.beta_grad = in.GetDouble();
    snap.params.alpha_sync_local = in.GetDouble();
    snap.params.beta_sync_local = in.GetDouble();
    snap.params.alpha_sync_node = in.GetDouble();
    snap.params.beta_sync_node = in.GetDouble();
    snap.params.gamma = in.GetDouble();
    snap.phi = in.GetDouble();
    snap.base_batch = static_cast<long>(in.GetI64());
    snap.cap = static_cast<int>(in.GetI64());
    snap.bucket = static_cast<uint16_t>(in.GetU32());
    snap.rounds_clean = in.GetU32();
    state.incremental[job_id] = snap;
  }
  state.incremental_round = in.GetU64();
  if (!in.ok()) {
    return false;
  }
  if (!in.AtEnd()) {
    // Trailing topology annotations (absent in pre-topology blobs).
    cluster.rack_of_node = in.GetIntVec();
    cluster.gpu_type_of_node = in.GetIntVec();
    const uint64_t scales = in.GetU64();
    if (!in.ok() || scales > (uint64_t{1} << 20)) {
      return false;
    }
    cluster.node_gpu_scale.resize(static_cast<size_t>(scales));
    for (uint64_t i = 0; i < scales && in.ok(); ++i) {
      cluster.node_gpu_scale[i] = in.GetDouble();
    }
    cluster.rack_link_factor = in.GetDouble();
  }
  if (!in.ok() || !in.AtEnd()) {
    return false;
  }
  // The cluster must be restored before the GA state: SetCluster clears the
  // persisted population (matrix shapes change with the cluster).
  sched_.SetCluster(cluster);
  sched_.SetState(state);
  last_reports_ = std::move(restored_reports);
  return true;
}

void PolluxPolicy::ResetControlState() {
  sched_.ResetSearchState();
  last_reports_.clear();
}

}  // namespace pollux
