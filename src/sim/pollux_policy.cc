#include "sim/pollux_policy.h"

#include "sim/checkpoint.h"

namespace pollux {

PolluxPolicy::PolluxPolicy(ClusterSpec cluster, SchedConfig config)
    : sched_(std::move(cluster), config) {}

std::map<uint64_t, std::vector<int>> PolluxPolicy::Schedule(const SchedulerContext& context) {
  // Track capacity changes the simulator applied between rounds (node
  // failures/repairs mask capacity in-place rather than calling
  // OnClusterChanged for every transition).
  if (!(sched_.cluster() == *context.cluster)) {
    sched_.SetCluster(*context.cluster);
  }
  last_reports_.clear();
  last_reports_.reserve(context.jobs.size());
  for (const auto& snapshot : context.jobs) {
    SchedJobReport report;
    report.agent = snapshot.agent;
    report.gpu_time = snapshot.gpu_time;
    report.current_allocation = snapshot.allocation;
    report.report_age = snapshot.report_age;
    report.seq = snapshot.report_seq;
    last_reports_.push_back(std::move(report));
  }
  return sched_.Schedule(last_reports_);
}

void PolluxPolicy::OnClusterChanged(const ClusterSpec& cluster) { sched_.SetCluster(cluster); }

void PolluxPolicy::SaveState(std::string* blob) const {
  BinWriter out;
  out.PutIntVec(sched_.cluster().gpus_per_node);
  const PolluxSched::State state = sched_.GetState();
  PutSchedStateCore(out, state);
  out.PutU64(last_reports_.size());
  for (const SchedJobReport& report : last_reports_) {
    PutSchedJobReport(out, report);
  }
  PutSchedStateIncremental(out, state);
  // Topology annotations travel with the blob so the restored scheduler's
  // cluster compares equal to the live one — otherwise the first Schedule()
  // after a resume would SetCluster (annotations missing) and wipe the
  // persisted GA population, diverging from the uninterrupted run. Appended
  // at the end so pre-topology blobs still load (the reader stops at
  // end-of-blob and keeps the flat cluster they describe).
  const ClusterSpec& sched_cluster = sched_.cluster();
  out.PutIntVec(sched_cluster.rack_of_node);
  out.PutIntVec(sched_cluster.gpu_type_of_node);
  out.PutU64(sched_cluster.node_gpu_scale.size());
  for (double scale : sched_cluster.node_gpu_scale) {
    out.PutDouble(scale);
  }
  out.PutDouble(sched_cluster.rack_link_factor);
  *blob = out.str();
}

bool PolluxPolicy::LoadState(const std::string& blob) {
  BinReader in(blob);
  ClusterSpec cluster;
  cluster.gpus_per_node = in.GetIntVec();
  if (!in.ok()) {
    return false;
  }
  PolluxSched::State state;
  GetSchedStateCore(in, &state);
  const uint64_t reports = in.GetU64();
  std::vector<SchedJobReport> restored_reports;
  for (uint64_t i = 0; i < reports && in.ok(); ++i) {
    restored_reports.push_back(GetSchedJobReport(in));
  }
  GetSchedStateIncremental(in, &state);
  if (!in.ok()) {
    return false;
  }
  if (!in.AtEnd()) {
    // Trailing topology annotations (absent in pre-topology blobs).
    cluster.rack_of_node = in.GetIntVec();
    cluster.gpu_type_of_node = in.GetIntVec();
    const uint64_t scales = in.GetU64();
    if (!in.ok() || scales > (uint64_t{1} << 20)) {
      return false;
    }
    cluster.node_gpu_scale.resize(static_cast<size_t>(scales));
    for (uint64_t i = 0; i < scales && in.ok(); ++i) {
      cluster.node_gpu_scale[i] = in.GetDouble();
    }
    cluster.rack_link_factor = in.GetDouble();
  }
  if (!in.ok() || !in.AtEnd()) {
    return false;
  }
  // The cluster must be restored before the GA state: SetCluster clears the
  // persisted population (matrix shapes change with the cluster).
  sched_.SetCluster(cluster);
  sched_.SetState(state);
  last_reports_ = std::move(restored_reports);
  return true;
}

void PolluxPolicy::ResetControlState() {
  sched_.ResetSearchState();
  last_reports_.clear();
}

}  // namespace pollux
