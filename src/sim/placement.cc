#include "sim/placement.h"

#include <algorithm>
#include <numeric>

namespace pollux {
namespace {

int RowTotal(const std::vector<int>& row) {
  int total = 0;
  for (int g : row) {
    total += g;
  }
  return total;
}

}  // namespace

std::map<uint64_t, std::vector<int>> PlaceConsolidated(
    const ClusterSpec& cluster, const std::vector<PlacementRequest>& requests,
    const std::map<uint64_t, std::vector<int>>& current) {
  const size_t num_nodes = cluster.gpus_per_node.size();
  std::vector<int> free = cluster.gpus_per_node;
  std::map<uint64_t, std::vector<int>> result;

  // Pass 1: keep existing placements whose size already matches the request.
  std::vector<PlacementRequest> remaining;
  for (const auto& request : requests) {
    if (request.num_gpus <= 0) {
      result[request.job_id] = std::vector<int>(num_nodes, 0);
      continue;
    }
    const auto it = current.find(request.job_id);
    if (it != current.end() && RowTotal(it->second) == request.num_gpus &&
        it->second.size() == num_nodes) {
      result[request.job_id] = it->second;
      for (size_t n = 0; n < num_nodes; ++n) {
        free[n] -= it->second[n];
      }
      continue;
    }
    remaining.push_back(request);
  }
  // Kept placements can momentarily over-commit if the cluster shrank; drop
  // kept rows on over-committed nodes back into the pool.
  for (size_t n = 0; n < num_nodes; ++n) {
    if (free[n] >= 0) {
      continue;
    }
    for (auto& [job_id, row] : result) {
      if (free[n] >= 0) {
        break;
      }
      if (row[n] > 0) {
        free[n] += row[n];
        const int total = RowTotal(row);
        row.assign(num_nodes, 0);
        remaining.push_back(PlacementRequest{job_id, total});
      }
    }
  }

  // Pass 2: place the rest, largest requests first, each packed onto the
  // fewest nodes by repeatedly taking the freest node.
  std::stable_sort(remaining.begin(), remaining.end(),
                   [](const PlacementRequest& a, const PlacementRequest& b) {
                     return a.num_gpus > b.num_gpus;
                   });
  for (const auto& request : remaining) {
    const int total_free = std::accumulate(free.begin(), free.end(), 0);
    std::vector<int> row(num_nodes, 0);
    if (request.num_gpus > total_free) {
      result[request.job_id] = row;  // Cannot place; job waits.
      continue;
    }
    int needed = request.num_gpus;
    // Prefer a single node that fits the whole request (tightest such node),
    // then spill to the freest nodes.
    int best_single = -1;
    for (size_t n = 0; n < num_nodes; ++n) {
      if (free[n] >= needed &&
          (best_single < 0 || free[n] < free[static_cast<size_t>(best_single)])) {
        best_single = static_cast<int>(n);
      }
    }
    if (best_single >= 0) {
      row[static_cast<size_t>(best_single)] = needed;
      free[static_cast<size_t>(best_single)] -= needed;
      needed = 0;
    }
    if (cluster.HasTopology()) {
      // Rack-affine spill: fill the freest node whose rack the job already
      // occupies before crossing racks (cross-rack sync is strictly slower).
      // When the job holds nothing yet (or its racks are full), seed from the
      // rack with the most free capacity. Gated on topology annotations, so
      // flat clusters take the legacy freest-node path byte-identically.
      const int num_racks = cluster.NumRacks();
      while (needed > 0) {
        std::vector<char> occupied(static_cast<size_t>(num_racks), 0);
        for (size_t n = 0; n < num_nodes; ++n) {
          if (row[n] > 0) {
            occupied[static_cast<size_t>(cluster.RackOf(static_cast<int>(n)))] = 1;
          }
        }
        int pick = -1;
        for (size_t n = 0; n < num_nodes; ++n) {
          if (free[n] > 0 && occupied[static_cast<size_t>(cluster.RackOf(static_cast<int>(n)))] &&
              (pick < 0 || free[n] > free[static_cast<size_t>(pick)])) {
            pick = static_cast<int>(n);
          }
        }
        if (pick < 0) {
          std::vector<int> rack_free(static_cast<size_t>(num_racks), 0);
          for (size_t n = 0; n < num_nodes; ++n) {
            rack_free[static_cast<size_t>(cluster.RackOf(static_cast<int>(n)))] += free[n];
          }
          int best_rack = 0;
          for (int r = 1; r < num_racks; ++r) {
            if (rack_free[static_cast<size_t>(r)] > rack_free[static_cast<size_t>(best_rack)]) {
              best_rack = r;
            }
          }
          for (size_t n = 0; n < num_nodes; ++n) {
            if (free[n] > 0 && cluster.RackOf(static_cast<int>(n)) == best_rack &&
                (pick < 0 || free[n] > free[static_cast<size_t>(pick)])) {
              pick = static_cast<int>(n);
            }
          }
          if (pick < 0) {
            // best_rack has no free node (all capacity elsewhere): fall back
            // to the globally freest node.
            for (size_t n = 0; n < num_nodes; ++n) {
              if (pick < 0 || free[n] > free[static_cast<size_t>(pick)]) {
                pick = static_cast<int>(n);
              }
            }
          }
        }
        const size_t chosen = static_cast<size_t>(pick);
        const int take = std::min(free[chosen], needed);
        row[chosen] += take;
        free[chosen] -= take;
        needed -= take;
      }
    } else {
      while (needed > 0) {
        size_t freest = 0;
        for (size_t n = 1; n < num_nodes; ++n) {
          if (free[n] > free[freest]) {
            freest = n;
          }
        }
        const int take = std::min(free[freest], needed);
        row[freest] += take;
        free[freest] -= take;
        needed -= take;
      }
    }
    result[request.job_id] = row;
  }
  return result;
}

}  // namespace pollux
