#include "sim/placement.h"

#include <algorithm>
#include <numeric>

namespace pollux {
namespace {

int RowTotal(const std::vector<int>& row) {
  int total = 0;
  for (int g : row) {
    total += g;
  }
  return total;
}

}  // namespace

std::map<uint64_t, std::vector<int>> PlaceConsolidated(
    const ClusterSpec& cluster, const std::vector<PlacementRequest>& requests,
    const std::map<uint64_t, std::vector<int>>& current) {
  const size_t num_nodes = cluster.gpus_per_node.size();
  std::vector<int> free = cluster.gpus_per_node;
  std::map<uint64_t, std::vector<int>> result;

  // Pass 1: keep existing placements whose size already matches the request.
  std::vector<PlacementRequest> remaining;
  for (const auto& request : requests) {
    if (request.num_gpus <= 0) {
      result[request.job_id] = std::vector<int>(num_nodes, 0);
      continue;
    }
    const auto it = current.find(request.job_id);
    if (it != current.end() && RowTotal(it->second) == request.num_gpus &&
        it->second.size() == num_nodes) {
      result[request.job_id] = it->second;
      for (size_t n = 0; n < num_nodes; ++n) {
        free[n] -= it->second[n];
      }
      continue;
    }
    remaining.push_back(request);
  }
  // Kept placements can momentarily over-commit if the cluster shrank; drop
  // kept rows on over-committed nodes back into the pool.
  for (size_t n = 0; n < num_nodes; ++n) {
    if (free[n] >= 0) {
      continue;
    }
    for (auto& [job_id, row] : result) {
      if (free[n] >= 0) {
        break;
      }
      if (row[n] > 0) {
        free[n] += row[n];
        const int total = RowTotal(row);
        row.assign(num_nodes, 0);
        remaining.push_back(PlacementRequest{job_id, total});
      }
    }
  }

  // Pass 2: place the rest, largest requests first, each packed onto the
  // fewest nodes by repeatedly taking the freest node.
  std::stable_sort(remaining.begin(), remaining.end(),
                   [](const PlacementRequest& a, const PlacementRequest& b) {
                     return a.num_gpus > b.num_gpus;
                   });
  for (const auto& request : remaining) {
    const int total_free = std::accumulate(free.begin(), free.end(), 0);
    std::vector<int> row(num_nodes, 0);
    if (request.num_gpus > total_free) {
      result[request.job_id] = row;  // Cannot place; job waits.
      continue;
    }
    int needed = request.num_gpus;
    // Prefer a single node that fits the whole request (tightest such node),
    // then spill to the freest nodes.
    int best_single = -1;
    for (size_t n = 0; n < num_nodes; ++n) {
      if (free[n] >= needed &&
          (best_single < 0 || free[n] < free[static_cast<size_t>(best_single)])) {
        best_single = static_cast<int>(n);
      }
    }
    if (best_single >= 0) {
      row[static_cast<size_t>(best_single)] = needed;
      free[static_cast<size_t>(best_single)] -= needed;
      needed = 0;
    }
    while (needed > 0) {
      size_t freest = 0;
      for (size_t n = 1; n < num_nodes; ++n) {
        if (free[n] > free[freest]) {
          freest = n;
        }
      }
      const int take = std::min(free[freest], needed);
      row[freest] += take;
      free[freest] -= take;
      needed -= take;
    }
    result[request.job_id] = row;
  }
  return result;
}

}  // namespace pollux
