// Consolidated placement helper shared by the non-Pollux baselines.
//
// Tiresias and Optimus decide a GPU *count* per job; this helper turns counts
// into per-node placements that (a) keep a job's existing placement when it
// already holds exactly the requested count (avoiding needless restarts) and
// (b) otherwise pack each job onto as few nodes as possible (both baselines
// co-locate replicas for efficient synchronization).

#ifndef POLLUX_SIM_PLACEMENT_H_
#define POLLUX_SIM_PLACEMENT_H_

#include <cstdint>
#include <map>
#include <vector>

#include "core/allocation.h"

namespace pollux {

struct PlacementRequest {
  uint64_t job_id = 0;
  int num_gpus = 0;
};

// Returns a per-node GPU row for every request (zero rows for num_gpus == 0
// or when capacity ran out). `current` maps job ids to their existing rows.
std::map<uint64_t, std::vector<int>> PlaceConsolidated(
    const ClusterSpec& cluster, const std::vector<PlacementRequest>& requests,
    const std::map<uint64_t, std::vector<int>>& current);

}  // namespace pollux

#endif  // POLLUX_SIM_PLACEMENT_H_
