// Deterministic control-plane network model for the cluster simulator.
//
// Training traffic (all-reduce) is out of scope; this models the *control
// plane* only: agent -> scheduler report messages, scheduler -> agent
// allocation decisions, and per-node liveness heartbeats. Messages experience
// configurable latency/jitter, independent and burst loss, duplication,
// reordering, and node- or rack-scoped network partitions with deterministic
// heal times. A partition blocks control messages but does NOT stop training:
// an already-allocated job keeps running through a partition (contrast with a
// node crash from FaultInjector, which evicts it).
//
// Determinism contract (mirrors FaultInjector):
//   - Every draw comes from a dedicated splitmix64-derived Rng stream: one
//     stream per (job, direction) channel and one per node/rack partition
//     track. A channel's draws depend only on its own send sequence, so
//     message interleaving across jobs never perturbs another channel.
//   - Heartbeats draw no randomness at all (fixed base latency, blocked under
//     partition), so enabling them is free of RNG side effects.
//   - All fate draws (loss, burst, duplication, latency, retry jitter) happen
//     at send time; in-flight messages are pure data. Runs are
//     byte-reproducible per seed and the full state round-trips through
//     checkpoints (kTagNet).
//   - With every knob at zero (`NetOptions::enabled()` false) the simulator
//     never constructs a NetModel, so `--net-profile=none` runs are
//     byte-identical to pre-netmodel behavior.

#ifndef POLLUX_SIM_NETMODEL_H_
#define POLLUX_SIM_NETMODEL_H_

#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/agent.h"
#include "util/rng.h"

namespace pollux {

struct NetOptions {
  // Base one-way delivery latency, seconds, applied to every message.
  double latency = 0.0;
  // Mean of an exponential jitter term added on top of the base latency.
  double jitter = 0.0;
  // Probability one send attempt is lost independently.
  double loss_rate = 0.0;
  // Probability one send attempt trips the channel into a loss burst, and the
  // mean burst length (exponential). During a burst every attempt on that
  // channel is dropped (correlated loss: a flapping ToR port, not coin flips).
  double burst_rate = 0.0;
  double burst_duration = 240.0;
  // Probability a delivered message is duplicated (second copy with its own
  // latency draw; receivers dedup by sequence number).
  double dup_rate = 0.0;
  // Probability a delivered message is delayed an extra Uniform(0, extra)
  // seconds, enough to overtake later sends (receivers keep newest-seq only).
  double reorder_rate = 0.0;
  double reorder_extra = 10.0;
  // Mean time between control-plane partitions of one node / one rack,
  // seconds (exponential inter-arrival per scope), and the mean partition
  // duration. 0 disables that partition scope.
  double mtbf_partition = 0.0;
  double partition_duration = 240.0;
  double mtbf_rack_partition = 0.0;
  double rack_partition_duration = 360.0;
  // Nodes per rack for rack-scoped partitions.
  int rack_size = 4;
  // Agent-side send retry: first backoff, doubling per attempt up to the cap,
  // each delay jittered by Uniform(0.5, 1.5); the message is dropped for good
  // after max_retries retries.
  double retry_backoff_init = 2.0;
  double retry_backoff_cap = 30.0;
  int max_retries = 6;

  // Scheduler-side liveness knobs (consumed by the simulator / PolluxSched,
  // carried here so one --net-* flag namespace configures the whole control
  // plane). A node's capacity is masked from the scheduler only after
  // `lease_intervals` report intervals pass without a heartbeat; a job whose
  // report lease expired is frozen (never grown) for `lease_grace` seconds
  // before it is evicted. When the fraction of jobs with fresh reports drops
  // below `degraded_coverage` the scheduler enters a degraded round: warm
  // allocations freeze and only fresh queued jobs are re-optimized.
  int lease_intervals = 3;
  double lease_grace = 300.0;
  double degraded_coverage = 0.4;
  // Baseline mode for bench_netfaults: binary instant liveness. The scheduler
  // sees the physically-masked cluster immediately and reclaims any job whose
  // report age exceeds the stale threshold, with no lease, grace, or degraded
  // rounds.
  bool naive_masking = false;

  bool enabled() const {
    return latency > 0.0 || jitter > 0.0 || loss_rate > 0.0 || burst_rate > 0.0 ||
           dup_rate > 0.0 || reorder_rate > 0.0 || mtbf_partition > 0.0 ||
           mtbf_rack_partition > 0.0;
  }
};

// Named presets for --net-profile. Returns true and fills `options` for
// "none" | "lan" | "flaky" | "partitioned"; returns false for anything else.
bool NetProfileByName(const std::string& name, NetOptions* options);

class NetModel {
 public:
  enum class MsgKind : uint32_t { kReport = 0, kDecision = 1, kHeartbeat = 2 };

  struct Message {
    MsgKind kind = MsgKind::kReport;
    double deliver_at = 0.0;
    // Global admission order; ties on deliver_at resolve by seq so delivery
    // order is deterministic.
    uint64_t seq = 0;
    uint64_t job_id = 0;  // kReport / kDecision.
    int node = -1;        // Agent host (kReport/kDecision) or heartbeat node.
    // Per-channel sequence number; receivers drop payload_seq <= last seen.
    uint64_t payload_seq = 0;
    double sent_at = 0.0;
    AgentReport report;    // kReport payload.
    std::vector<int> row;  // kDecision payload (GPUs per node).
  };

  struct SendOutcome {
    bool delivered = false;  // At least one copy is in flight.
    int attempts = 1;        // 1 + retries.
    bool duplicated = false;
    uint64_t payload_seq = 0;
  };

  // A node-/rack-scoped partition starting (down=true) or healing.
  struct Transition {
    double time = 0.0;
    int index = 0;  // Node index, or rack index when rack=true.
    bool rack = false;
    bool down = false;
  };

  NetModel(NetOptions options, int num_nodes, uint64_t seed);

  // Sends one message through the job's channel, replaying the agent's retry
  // loop (capped jittered exponential backoff) at send time. `node` is the
  // sender's (reports) or receiver's (decisions) host; -1 means co-located
  // with the scheduler and immune to partitions.
  SendOutcome SendReport(uint64_t job_id, int node, const AgentReport& report, double now);
  SendOutcome SendDecision(uint64_t job_id, int node, const std::vector<int>& row, double now);

  // Heartbeats draw no RNG: blocked when the node is partitioned at `now`,
  // otherwise delivered after the base latency. Returns whether it was sent.
  bool SendHeartbeat(int node, double now);

  // Removes and returns every in-flight message due by `now`, ordered by
  // (deliver_at, admission seq).
  std::vector<Message> PopDue(double now);

  // Earliest in-flight delivery time, +inf when nothing is in flight. Lets
  // the event engine arm delivery events lazily.
  double NextDeliveryTime() const;

  // Advances partition state to `now`; returns the partition/heal transitions
  // that fired since the previous poll in (time, node-before-rack, index)
  // order.
  std::vector<Transition> PollTransitions(double now);

  // Earliest pending partition transition, +inf when partitions are disabled.
  double NextTransitionTime();

  // Whether `node` is unreachable at time `t` (its own partition or its
  // rack's). `t` may be in the future: partition windows are generated ahead
  // deterministically, which the send-time retry replay relies on.
  bool Partitioned(int node, double t);

  // Reshapes per-node/rack tracks after an autoscaler resize; surviving
  // scopes keep their streams, new ones start healthy with fresh streams.
  void OnClusterResize(int num_nodes, double now);

  size_t InFlight() const { return inflight_.size(); }
  const NetOptions& options() const { return options_; }
  int num_racks() const { return static_cast<int>(rack_tracks_.size()); }

  // Full model state for checkpoint/restore: channel stream cursors and burst
  // windows, partition track cursors and pregenerated windows, in-flight
  // messages, and the admission counter. Options/seed are construction
  // parameters and not part of the state.
  struct State {
    struct Channel {
      uint64_t job_id = 0;
      Rng::State rng;
      double burst_until = 0.0;
      uint64_t next_seq = 0;
    };
    struct Track {
      Rng::State rng;
      bool head_down = false;
      double tail_time = 0.0;
      std::vector<double> pending;
    };
    std::vector<Channel> report_channels;
    std::vector<Channel> decision_channels;
    std::vector<Track> node_tracks;
    std::vector<Track> rack_tracks;
    std::vector<Message> messages;
    uint64_t next_msg_seq = 0;
    uint64_t node_tracks_created = 0;
    uint64_t rack_tracks_created = 0;
  };
  State GetState() const;
  void SetState(const State& state);

 private:
  struct ChannelState {
    Rng rng;
    // End of the current loss burst on this channel (0 when none).
    double burst_until = 0.0;
    // Next per-channel payload sequence number (first message gets 1).
    uint64_t next_seq = 0;
  };

  // Alternating up/down windows for one partition scope, generated lazily
  // from a dedicated stream. `pending` holds future state-flip times;
  // `head_down` is the state before pending.front(). Windows are generated on
  // demand past any queried time so future lookups (retry attempts) and
  // PollTransitions consume the same deterministic sequence.
  struct Track {
    Rng rng;
    bool head_down = false;
    double tail_time = 0.0;  // Time of the last generated flip.
    std::deque<double> pending;
  };

  struct MessageOrder {
    bool operator()(const Message& a, const Message& b) const {
      if (a.deliver_at != b.deliver_at) return a.deliver_at < b.deliver_at;
      return a.seq < b.seq;
    }
  };

  ChannelState& GetChannel(std::map<uint64_t, ChannelState>& channels, uint64_t job_id,
                           uint64_t stream);
  SendOutcome Send(ChannelState& channel, Message message, int node, double now);
  // Queues one copy sent at `attempt`; draws latency/jitter/reorder from the
  // channel stream.
  void EnqueueCopy(ChannelState& channel, const Message& message, double attempt);
  Track MakeTrack(uint64_t salt, uint64_t index);
  // Generates windows for `track` until its tail passes `t`.
  void ExtendTrack(Track& track, double t, double mtbf, double duration);
  bool TrackDownAt(Track& track, double t, double mtbf, double duration);

  NetOptions options_;
  uint64_t seed_;
  std::map<uint64_t, ChannelState> report_channels_;
  std::map<uint64_t, ChannelState> decision_channels_;
  std::vector<Track> node_tracks_;
  std::vector<Track> rack_tracks_;
  std::multiset<Message, MessageOrder> inflight_;
  uint64_t next_msg_seq_ = 0;
  // Monotone counters so scopes added by resizes get fresh streams.
  uint64_t node_tracks_created_ = 0;
  uint64_t rack_tracks_created_ = 0;
};

}  // namespace pollux

#endif  // POLLUX_SIM_NETMODEL_H_
