// Deterministic fault injection for the cluster simulator.
//
// The injector perturbs a simulated cluster with the failure modes a
// production GPU fleet actually exhibits: whole-node crashes with exponential
// inter-arrival and repair times, persistent per-node stragglers (one slow
// GPU or NIC drags every replica placed there), lost PolluxAgent reports, and
// checkpoint-restores that fail and must be retried with capped exponential
// backoff. Every draw comes from dedicated Rng streams forked from a single
// seed — per-node streams for crash/repair/straggler state, one stream for
// report drops, one for restart failures — so runs are byte-reproducible per
// seed and enabling one fault class never perturbs the draws of another.
//
// With every knob at zero (`FaultOptions::enabled()` false) the simulator
// never constructs an injector, so fault-free traces are byte-identical to
// pre-fault-subsystem behavior (asserted by sim_property_test's golden
// traces).

#ifndef POLLUX_SIM_FAULT_INJECTOR_H_
#define POLLUX_SIM_FAULT_INJECTOR_H_

#include <algorithm>
#include <string>
#include <vector>

#include "util/rng.h"

namespace pollux {

// How the simulator recovers from an injected scheduler-process crash.
//   kWarm: reload the latest in-memory snapshot of the control-plane state;
//          recovery is lossless and the run is byte-identical to one without
//          the crash.
//   kCold: the restarted process has no snapshot. Per-job agents lose their
//          fitted models and refit from fresh reports; the scheduler rebuilds
//          its queues/population from the surviving job state. A measured
//          graceful-degradation path (sim.recovery.* metrics).
enum class SchedRecovery {
  kWarm,
  kCold,
};

// "warm" | "cold" -> mode; returns false for anything else.
bool SchedRecoveryByName(const std::string& name, SchedRecovery* recovery);
const char* SchedRecoveryName(SchedRecovery recovery);

struct FaultOptions {
  // Mean time between crashes of one node, seconds (exponential
  // inter-arrival per node). 0 disables node crashes.
  double mtbf_node = 0.0;
  // Mean node repair time, seconds (exponential).
  double repair_time = 600.0;
  // Fraction of nodes that host a persistent straggler (slow GPU/link).
  double straggler_frac = 0.0;
  // Multiplier (>= 1) on the iteration time of any job with replicas on a
  // straggler node; synchronous data-parallel training runs at the pace of
  // its slowest replica.
  double straggler_slowdown = 1.5;
  // Probability an agent report is lost in transit to the scheduler.
  double report_drop_rate = 0.0;
  // Probability one checkpoint-restore attempt fails and is retried.
  double restart_fail_rate = 0.0;
  // First retry backoff and its cap; the backoff doubles per failed attempt.
  double restart_backoff_init = 15.0;
  double restart_backoff_cap = 240.0;
  // Mean time between scheduler-process crashes, seconds (exponential
  // inter-arrival). 0 disables the scheduler_crash fault class. Crashes are
  // drawn from a dedicated stream, so enabling them never perturbs the other
  // fault classes' draws.
  double mtbf_sched = 0.0;
  SchedRecovery sched_recovery = SchedRecovery::kWarm;

  bool enabled() const {
    return mtbf_node > 0.0 || straggler_frac > 0.0 || report_drop_rate > 0.0 ||
           restart_fail_rate > 0.0 || mtbf_sched > 0.0;
  }
};

// Named presets for --fault-profile. Returns true and fills `options` for
// "none" | "light" | "heavy"; returns false for anything else.
bool FaultProfileByName(const std::string& name, FaultOptions* options);

class FaultInjector {
 public:
  // A node going down (failed=true) or coming back (failed=false).
  struct NodeTransition {
    int node = 0;
    bool failed = false;
  };

  FaultInjector(FaultOptions options, int num_nodes, uint64_t seed);

  // Advances injector time to `now`; returns the crash/repair transitions
  // that fired since the previous Poll, in deterministic (time, node) order.
  std::vector<NodeTransition> Poll(double now);

  // Earliest pending transition time across all nodes and the scheduler-
  // crash stream, +inf when both fault classes are disabled. Lets the event
  // engine schedule fault polls lazily instead of polling every tick: Poll /
  // PollSchedulerCrashes draw RNG only when transitions actually fire, so
  // calling them exactly at (the tick grid point covering) this time replays
  // the same draw sequence as per-tick polling.
  double NextTransitionTime() const;

  // Number of scheduler-process crashes due by `now`; each one redraws the
  // next crash time from the dedicated stream. 0 when mtbf_sched is 0.
  int PollSchedulerCrashes(double now);

  // Reshapes per-node state after an autoscaler resize. Surviving nodes keep
  // their fault state and streams; new nodes start healthy with fresh
  // deterministic streams.
  void OnClusterResize(int num_nodes, double now);

  bool NodeFailed(int node) const { return nodes_[static_cast<size_t>(node)].failed; }

  // Iteration-time multiplier (>= 1) for a job with the given GPUs-per-node
  // allocation: the worst straggler among the nodes it touches.
  double JobSlowdown(const std::vector<int>& alloc) const;

  // One Bernoulli draw from the report-loss stream.
  bool DropReport() { return report_rng_.Bernoulli(options_.report_drop_rate); }

  // One Bernoulli draw from the restart-failure stream. The probability is
  // clamped below 1 so retry loops always terminate.
  bool RestartFails() {
    return restart_rng_.Bernoulli(std::min(options_.restart_fail_rate, 0.95));
  }

  const FaultOptions& options() const { return options_; }
  int num_failed_nodes() const;

  // Full injector state for checkpoint/restore: every Rng stream cursor,
  // per-node fault state and armed transition times, the armed scheduler
  // crash, and the stream-derivation counter. Options/seed are construction
  // parameters and not part of the state.
  struct State {
    struct Node {
      Rng::State rng;
      bool failed = false;
      bool straggler = false;
      double next_transition = 0.0;
    };
    Rng::State report_rng;
    Rng::State restart_rng;
    Rng::State sched_rng;
    double next_sched_crash = 0.0;
    std::vector<Node> nodes;
    uint64_t nodes_created = 0;
  };
  State GetState() const;
  void SetState(const State& state);

 private:
  struct NodeState {
    Rng rng;
    bool failed = false;
    bool straggler = false;
    double next_transition = 0.0;  // Next crash (healthy) or repair (failed).
  };

  NodeState MakeNode(int index, double now);

  FaultOptions options_;
  uint64_t seed_;
  Rng report_rng_;
  Rng restart_rng_;
  // Scheduler-crash stream and its armed next crash time (+inf when the
  // class is disabled).
  Rng sched_rng_;
  double next_sched_crash_ = 0.0;
  std::vector<NodeState> nodes_;
  // Monotone counter so nodes added by successive resizes get fresh streams.
  uint64_t nodes_created_ = 0;
};

}  // namespace pollux

#endif  // POLLUX_SIM_FAULT_INJECTOR_H_
