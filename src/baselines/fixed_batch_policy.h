// Ablation policy: PolluxSched's resource adaptation *without* batch-size
// co-adaptation. Jobs keep their submitted batch size forever while
// allocations still follow the goodput-driven genetic algorithm. Comparing
// this against full Pollux isolates the contribution of co-adapting the
// batch size and learning rate — the paper's core thesis.

#ifndef POLLUX_BASELINES_FIXED_BATCH_POLICY_H_
#define POLLUX_BASELINES_FIXED_BATCH_POLICY_H_

#include "sim/pollux_policy.h"

namespace pollux {

class FixedBatchPolluxPolicy : public PolluxPolicy {
 public:
  using PolluxPolicy::PolluxPolicy;

  bool adapts_batch_size() const override { return false; }
  const char* name() const override { return "pollux-fixed-batch"; }
};

}  // namespace pollux

#endif  // POLLUX_BASELINES_FIXED_BATCH_POLICY_H_
