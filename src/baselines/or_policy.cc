#include "baselines/or_policy.h"

// ThroughputOnlyPolicy is header-only behavior over PolluxPolicy; this
// translation unit anchors its vtable.

namespace pollux {}  // namespace pollux
