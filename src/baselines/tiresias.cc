#include "baselines/tiresias.h"

#include <algorithm>

#include "sim/placement.h"

namespace pollux {

int TiresiasPolicy::QueueOf(double gpu_time) const {
  int queue = 0;
  for (double threshold : config_.queue_thresholds) {
    if (gpu_time >= threshold) {
      ++queue;
    }
  }
  return queue;
}

std::map<uint64_t, std::vector<int>> TiresiasPolicy::Schedule(const SchedulerContext& context) {
  // Priority order: lower queue first (least attained service), FIFO within.
  std::vector<const JobSnapshot*> order;
  order.reserve(context.jobs.size());
  for (const auto& job : context.jobs) {
    order.push_back(&job);
  }
  std::stable_sort(order.begin(), order.end(), [&](const JobSnapshot* a, const JobSnapshot* b) {
    const int qa = QueueOf(a->gpu_time);
    const int qb = QueueOf(b->gpu_time);
    if (qa != qb) {
      return qa < qb;
    }
    return a->submit_time < b->submit_time;
  });

  // Admit jobs in priority order while their fixed requests fit.
  const int total_gpus = context.cluster->TotalGpus();
  int used = 0;
  std::vector<PlacementRequest> requests;
  std::map<uint64_t, std::vector<int>> current;
  for (const JobSnapshot* job : order) {
    const int wanted = std::max(1, job->spec != nullptr ? job->spec->requested_gpus : 1);
    if (used + wanted <= total_gpus) {
      requests.push_back(PlacementRequest{job->job_id, wanted});
      used += wanted;
    } else {
      requests.push_back(PlacementRequest{job->job_id, 0});  // Preempted/waiting.
    }
    if (!job->allocation.empty()) {
      current[job->job_id] = job->allocation;
    }
  }
  return PlaceConsolidated(*context.cluster, requests, current);
}

}  // namespace pollux
