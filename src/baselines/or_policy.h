// The Or et al. [MLSys 2020] cloud-elasticity baseline used in Fig. 10:
// like Pollux it grows the batch size when given more resources, but it
// models job performance with system throughput alone — so it always runs
// the largest feasible batch and (together with ThroughputAutoscaler)
// provisions nodes without regard for statistical efficiency.

#ifndef POLLUX_BASELINES_OR_POLICY_H_
#define POLLUX_BASELINES_OR_POLICY_H_

#include "sim/pollux_policy.h"

namespace pollux {

class ThroughputOnlyPolicy : public PolluxPolicy {
 public:
  using PolluxPolicy::PolluxPolicy;

  bool throughput_only_batch() const override { return true; }
  const char* name() const override { return "or-et-al"; }
};

}  // namespace pollux

#endif  // POLLUX_BASELINES_OR_POLICY_H_
