#include "baselines/fixed_batch_policy.h"

// FixedBatchPolluxPolicy is header-only behavior over PolluxPolicy; this
// translation unit anchors its vtable.

namespace pollux {}  // namespace pollux
