// Tiresias baseline [Gu et al., NSDI 2019], as evaluated in the paper
// (Sec. 5.2, "Tiresias+TunedJobs").
//
// Tiresias is non-resource-adaptive: each job runs with exactly the GPU count
// its user requested at submission. We reproduce its central mechanism,
// discretized two-dimensional least-attained-service (2D-LAS): jobs are
// binned into priority queues by attained GPU-time (service); lower-service
// queues run first, FIFO within a queue. Replicas are consolidated onto as
// few nodes as possible, and preemption falls out of re-evaluating the queue
// order every scheduling interval.

#ifndef POLLUX_BASELINES_TIRESIAS_H_
#define POLLUX_BASELINES_TIRESIAS_H_

#include <vector>

#include "sim/scheduler.h"

namespace pollux {

struct TiresiasConfig {
  // Queue boundaries on attained service (GPU-seconds). Defaults match the
  // paper's category scale: jobs demote after 1 and 10 GPU-hours.
  std::vector<double> queue_thresholds = {1.0 * 3600.0, 10.0 * 3600.0};
};

class TiresiasPolicy : public Scheduler {
 public:
  explicit TiresiasPolicy(TiresiasConfig config = {}) : config_(std::move(config)) {}

  std::map<uint64_t, std::vector<int>> Schedule(const SchedulerContext& context) override;
  const char* name() const override { return "tiresias"; }

  // Queue index for a given attained service (exposed for tests).
  int QueueOf(double gpu_time) const;

 private:
  TiresiasConfig config_;
};

}  // namespace pollux

#endif  // POLLUX_BASELINES_TIRESIAS_H_
