// FIFO baseline: the simplest non-resource-adaptive scheduler. Jobs are
// admitted strictly in submission order at their user-requested GPU counts
// and are never preempted; later jobs wait for capacity. Serves as the floor
// that Tiresias' least-attained-service mechanism improves on (head-of-line
// blocking by long-running jobs).

#ifndef POLLUX_BASELINES_FIFO_H_
#define POLLUX_BASELINES_FIFO_H_

#include "sim/scheduler.h"

namespace pollux {

class FifoPolicy : public Scheduler {
 public:
  std::map<uint64_t, std::vector<int>> Schedule(const SchedulerContext& context) override;
  const char* name() const override { return "fifo"; }
};

}  // namespace pollux

#endif  // POLLUX_BASELINES_FIFO_H_
