// Optimus+Oracle baseline [Peng et al., EuroSys 2018], as evaluated in the
// paper (Sec. 5.2).
//
// Optimus is only-resource-adaptive: it chooses each job's GPU count from a
// learned throughput model, but keeps the user's batch size fixed and is
// blind to statistical efficiency. Following the paper's methodology:
//   * it predicts throughput with the same Eqn.-11 model PolluxAgent fits
//     (rather than Optimus' original parameter-server-specific model), and
//   * it receives oracle knowledge of each job's exact remaining training
//     iterations.
// Since Optimus optimizes the *average* JCT, admission follows its oracle
// remaining-time estimates: jobs are admitted shortest-remaining-first, each
// sized to the knee of its predicted scaling curve (the largest GPU count
// that still achieves 50% scaling efficiency, but at least enough GPUs to
// fit its batch size). Whatever capacity is left is handed out greedily to
// the job whose estimated remaining time shrinks the most per extra GPU.

#ifndef POLLUX_BASELINES_OPTIMUS_H_
#define POLLUX_BASELINES_OPTIMUS_H_

#include "sim/scheduler.h"

namespace pollux {

struct OptimusConfig {
  // GPUs-per-node used to predict placements for candidate GPU counts.
  int gpus_per_node = 4;
};

class OptimusPolicy : public Scheduler {
 public:
  explicit OptimusPolicy(OptimusConfig config = {}) : config_(config) {}

  std::map<uint64_t, std::vector<int>> Schedule(const SchedulerContext& context) override;
  const char* name() const override { return "optimus+oracle"; }

  // Estimated completion time of a job on `num_gpus` GPUs (exposed for
  // tests): oracle_remaining_iterations * predicted iteration time.
  static double EstimatedRemainingTime(const JobSnapshot& job, int num_gpus, int gpus_per_node);

  // Largest GPU count (up to max_gpus) whose predicted throughput stays at or
  // above `efficiency_floor` of perfect scaling (exposed for tests).
  static int EfficientGpuCount(const JobSnapshot& job, int gpus_per_node, int max_gpus,
                               double efficiency_floor = 0.5);

 private:
  OptimusConfig config_;
};

}  // namespace pollux

#endif  // POLLUX_BASELINES_OPTIMUS_H_
