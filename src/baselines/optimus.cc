#include "baselines/optimus.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "core/throughput_model.h"
#include "sim/placement.h"

namespace pollux {
namespace {

Placement PackedPlacement(int num_gpus, int gpus_per_node) {
  Placement placement;
  placement.num_gpus = num_gpus;
  placement.num_nodes = (num_gpus + gpus_per_node - 1) / gpus_per_node;
  return placement;
}

}  // namespace

double OptimusPolicy::EstimatedRemainingTime(const JobSnapshot& job, int num_gpus,
                                             int gpus_per_node) {
  if (num_gpus <= 0) {
    return std::numeric_limits<double>::infinity();
  }
  const double iter_time =
      IterTime(job.agent.model.params(), PackedPlacement(num_gpus, gpus_per_node),
               static_cast<double>(job.batch_size));
  return job.oracle_remaining_iterations * iter_time;
}

int OptimusPolicy::EfficientGpuCount(const JobSnapshot& job, int gpus_per_node, int max_gpus,
                                     double efficiency_floor) {
  const double one = ModelThroughput(job.agent.model.params(), Placement{1, 1},
                                     static_cast<double>(job.batch_size));
  if (one <= 0.0) {
    return 1;
  }
  int best = 1;
  for (int k = 2; k <= max_gpus; ++k) {
    const double many = ModelThroughput(job.agent.model.params(),
                                        PackedPlacement(k, gpus_per_node),
                                        static_cast<double>(job.batch_size));
    if (many / (one * k) >= efficiency_floor) {
      best = k;
    }
  }
  return best;
}

std::map<uint64_t, std::vector<int>> OptimusPolicy::Schedule(const SchedulerContext& context) {
  const int total_gpus = context.cluster->TotalGpus();

  // Admission order: shortest predicted remaining time first (ties broken by
  // submission time), since Optimus targets the average JCT.
  std::vector<const JobSnapshot*> order;
  for (const auto& job : context.jobs) {
    order.push_back(&job);
  }
  std::stable_sort(order.begin(), order.end(), [&](const JobSnapshot* a, const JobSnapshot* b) {
    // Oracle single-GPU remaining time: a stable length key (Sec. 5.2's
    // idealization). Falls back to the fitted model when no oracle exists.
    const double ta = a->oracle_single_gpu_remaining > 0.0
                          ? a->oracle_single_gpu_remaining
                          : EstimatedRemainingTime(*a, 1, config_.gpus_per_node);
    const double tb = b->oracle_single_gpu_remaining > 0.0
                          ? b->oracle_single_gpu_remaining
                          : EstimatedRemainingTime(*b, 1, config_.gpus_per_node);
    if (ta != tb) {
      return ta < tb;
    }
    return a->submit_time < b->submit_time;
  });

  // Admission: shortest-remaining-first. Short jobs (under an hour of
  // estimated remaining work) are granted the knee of their scaling curve up
  // front — at their fixed batch sizes a minimal share would waste most of
  // their statistical efficiency — while longer jobs are admitted at their
  // minimum share and rely on the waterfilling pass below for growth.
  std::vector<int> gpus(order.size(), 0);
  int used = 0;
  for (size_t i = 0; i < order.size() && used < total_gpus; ++i) {
    const long per_gpu = std::max<long>(1, order[i]->agent.limits.max_batch_per_gpu);
    const int min_gpus = std::max(1, static_cast<int>(std::min<long>(
                                         (order[i]->batch_size + per_gpu - 1) / per_gpu,
                                         total_gpus)));
    // Every admitted job is sized to the knee of its predicted scaling curve
    // (at its fixed batch size a minimal share wastes most of its statistical
    // efficiency), capped at a quarter of the cluster so one long job cannot
    // monopolize admission.
    const int knee_cap = std::max(min_gpus, total_gpus / 4);
    const int wanted = std::max(
        min_gpus, std::min(knee_cap, EfficientGpuCount(*order[i], config_.gpus_per_node,
                                                       total_gpus)));
    const int granted = std::min(wanted, total_gpus - used);
    gpus[i] = granted;
    used += granted;
  }

  // Waterfill the remaining GPUs by diminishing marginal gains, weighted by
  // the inverse square of each job's estimated remaining time: this both
  // prioritizes jobs that are close to finishing (Optimus targets the
  // average JCT) and equalizes remaining times across long jobs instead of
  // running them sequentially. Besides +1 GPU we also consider completing
  // the next full node, since crossing a node boundary with a single GPU
  // can transiently hurt (local -> cross-node sync) even when a whole extra
  // node helps.
  while (used < total_gpus) {
    double best_gain = 0.0;
    int best_index = -1;
    int best_delta = 0;
    for (size_t i = 0; i < order.size(); ++i) {
      if (gpus[i] == 0) {
        continue;  // Not admitted this round.
      }
      const double now_time =
          EstimatedRemainingTime(*order[i], gpus[i], config_.gpus_per_node);
      if (now_time <= 0.0) {
        continue;
      }
      const int remainder = gpus[i] % config_.gpus_per_node;
      const int to_node_boundary = remainder == 0 ? config_.gpus_per_node
                                                  : config_.gpus_per_node - remainder;
      for (int delta : {1, to_node_boundary, to_node_boundary + config_.gpus_per_node}) {
        if (delta <= 0 || used + delta > total_gpus) {
          continue;
        }
        const double next_time =
            EstimatedRemainingTime(*order[i], gpus[i] + delta, config_.gpus_per_node);
        const double gain = (now_time - next_time) / (delta * now_time * now_time);
        if (gain > best_gain) {
          best_gain = gain;
          best_index = static_cast<int>(i);
          best_delta = delta;
        }
      }
    }
    if (best_index < 0) {
      break;  // No job benefits from more GPUs.
    }
    gpus[static_cast<size_t>(best_index)] += best_delta;
    used += best_delta;
  }

  // Hysteresis: a checkpoint-restart costs real time, so small adjustments
  // to a running job's share are not worth it. Keep the current count when
  // the target moved by less than 25%.
  std::vector<PlacementRequest> requests;
  std::map<uint64_t, std::vector<int>> current;
  for (size_t i = 0; i < order.size(); ++i) {
    int target = gpus[i];
    const int held = std::accumulate(order[i]->allocation.begin(),
                                     order[i]->allocation.end(), 0);
    if (held > 0 && target > 0 && target != held &&
        std::abs(target - held) <= std::max(1, held / 4)) {
      target = held;
    }
    requests.push_back(PlacementRequest{order[i]->job_id, target});
    if (!order[i]->allocation.empty()) {
      current[order[i]->job_id] = order[i]->allocation;
    }
  }
  return PlaceConsolidated(*context.cluster, requests, current);
}

}  // namespace pollux
