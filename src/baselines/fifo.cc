#include "baselines/fifo.h"

#include <algorithm>

#include "sim/placement.h"

namespace pollux {

std::map<uint64_t, std::vector<int>> FifoPolicy::Schedule(const SchedulerContext& context) {
  std::vector<const JobSnapshot*> order;
  for (const auto& job : context.jobs) {
    order.push_back(&job);
  }
  std::stable_sort(order.begin(), order.end(), [](const JobSnapshot* a, const JobSnapshot* b) {
    return a->submit_time < b->submit_time;
  });

  const int total_gpus = context.cluster->TotalGpus();
  int used = 0;
  std::vector<PlacementRequest> requests;
  std::map<uint64_t, std::vector<int>> current;
  for (const JobSnapshot* job : order) {
    const int wanted = std::max(1, job->spec != nullptr ? job->spec->requested_gpus : 1);
    // Running jobs always keep their allocation (no preemption); waiting jobs
    // are admitted in order while capacity lasts.
    const bool running = !job->allocation.empty();
    if (running || used + wanted <= total_gpus) {
      requests.push_back(PlacementRequest{job->job_id, wanted});
      used += wanted;
    } else {
      requests.push_back(PlacementRequest{job->job_id, 0});
    }
    if (running) {
      current[job->job_id] = job->allocation;
    }
  }
  return PlaceConsolidated(*context.cluster, requests, current);
}

}  // namespace pollux
