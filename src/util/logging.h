// Leveled logging with a process-global threshold. The simulator logs
// scheduling decisions at kDebug; benches default to kWarning so output stays
// readable.

#ifndef POLLUX_UTIL_LOGGING_H_
#define POLLUX_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace pollux {

enum class LogLevel {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
};

// Sets/gets the process-global minimum level that is emitted.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Emits one formatted line to stderr if `level` passes the threshold.
void LogMessage(LogLevel level, const std::string& message);

// Stream-style helper: Log(LogLevel::kInfo) << "jobs=" << n;
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream();

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

inline LogStream Log(LogLevel level) { return LogStream(level); }

}  // namespace pollux

#endif  // POLLUX_UTIL_LOGGING_H_
