// Tiny command-line flag parser used by the bench/example binaries.
// Supports --key=value and --key value forms plus boolean --flag /
// --no-flag. Unknown flags and malformed values (e.g. --seed=abc) are
// errors so typos fail loudly instead of silently becoming defaults.

#ifndef POLLUX_UTIL_FLAGS_H_
#define POLLUX_UTIL_FLAGS_H_

#include <map>
#include <string>
#include <vector>

namespace pollux {

class FlagParser {
 public:
  // Registers a flag with a default value and help text. Must be called
  // before Parse().
  void DefineInt(const std::string& name, int64_t default_value, const std::string& help);
  void DefineDouble(const std::string& name, double default_value, const std::string& help);
  void DefineString(const std::string& name, const std::string& default_value,
                    const std::string& help);
  void DefineBool(const std::string& name, bool default_value, const std::string& help);

  // Parses argv. Returns false (after printing usage) on --help or any
  // malformed/unknown flag. Unknown flags get a "did you mean --x?" hint
  // when a defined flag is within edit distance 2.
  bool Parse(int argc, char** argv);

  // Whether the last Parse() returned false because of --help/-h (exit code 0)
  // rather than a malformed command line (exit code 2).
  bool help_requested() const { return help_requested_; }

  int64_t GetInt(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  const std::string& GetString(const std::string& name) const;
  bool GetBool(const std::string& name) const;

  // Closest defined flag name within edit distance 2 of `name` (ties break
  // alphabetically), or "" when nothing is close. Used for the unknown-flag
  // hint; exposed for tests.
  std::string SuggestFlag(const std::string& name) const;

  void PrintUsage(const std::string& program) const;

 private:
  enum class Type { kInt, kDouble, kString, kBool };
  struct Flag {
    Type type;
    std::string value;
    std::string help;
  };

  bool SetValue(const std::string& name, const std::string& value);
  void ReportUnknown(const std::string& name) const;

  std::map<std::string, Flag> flags_;
  bool help_requested_ = false;
};

}  // namespace pollux

#endif  // POLLUX_UTIL_FLAGS_H_
