// Deterministic pseudo-random number generation for simulations.
//
// Everything in the simulator and the benchmarks must be reproducible from a
// single 64-bit seed, so we implement a small, fast, well-understood PRNG
// (xoshiro256**, seeded via splitmix64) rather than relying on the
// implementation-defined distributions in <random>. All distribution sampling
// is implemented in this file so results are identical across platforms and
// standard libraries.

#ifndef POLLUX_UTIL_RNG_H_
#define POLLUX_UTIL_RNG_H_

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

namespace pollux {

// xoshiro256** generator. Satisfies the UniformRandomBitGenerator concept so
// it can also be plugged into <algorithm> utilities if needed.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~uint64_t{0}; }

  // Raw 64 random bits.
  uint64_t NextU64();
  result_type operator()() { return NextU64(); }

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  // Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Standard normal via Box-Muller (cached second value).
  double Normal();

  // Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  // Lognormal such that the *median* of the distribution is `median` and the
  // underlying normal has standard deviation `sigma_log`.
  double LogNormal(double median, double sigma_log);

  // Exponential with the given rate (mean 1/rate).
  double Exponential(double rate);

  // Poisson-distributed count with the given mean (Knuth for small means,
  // normal approximation for large ones).
  int64_t Poisson(double mean);

  // True with probability p.
  bool Bernoulli(double p);

  // Samples an index in [0, weights.size()) proportionally to weights.
  // Requires at least one strictly positive weight.
  size_t WeightedIndex(const std::vector<double>& weights);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap(items[i - 1], items[j]);
    }
  }

  // Derives an independent child generator; used to give each job / component
  // its own stream so adding components does not perturb others.
  Rng Fork();

  // Full generator state, for checkpoint/restore. Restoring a saved state
  // resumes the exact draw sequence, including the cached Box-Muller normal.
  struct State {
    std::array<uint64_t, 4> words = {};
    double cached_normal = 0.0;
    bool has_cached_normal = false;
  };
  State GetState() const { return State{state_, cached_normal_, has_cached_normal_}; }
  void SetState(const State& state) {
    state_ = state.words;
    cached_normal_ = state.cached_normal;
    has_cached_normal_ = state.has_cached_normal;
  }

 private:
  std::array<uint64_t, 4> state_;
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace pollux

#endif  // POLLUX_UTIL_RNG_H_
