#include "util/flags.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace pollux {

namespace {

// Levenshtein distance, early-exiting via the length gap. Flag names are
// short, so the quadratic row buffer is negligible.
size_t EditDistance(const std::string& a, const std::string& b) {
  std::vector<size_t> row(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) {
    row[j] = j;
  }
  for (size_t i = 1; i <= a.size(); ++i) {
    size_t diag = row[0];
    row[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      const size_t subst = diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      diag = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, subst});
    }
  }
  return row[b.size()];
}

}  // namespace

void FlagParser::DefineInt(const std::string& name, int64_t default_value,
                           const std::string& help) {
  flags_[name] = Flag{Type::kInt, std::to_string(default_value), help};
}

void FlagParser::DefineDouble(const std::string& name, double default_value,
                              const std::string& help) {
  flags_[name] = Flag{Type::kDouble, std::to_string(default_value), help};
}

void FlagParser::DefineString(const std::string& name, const std::string& default_value,
                              const std::string& help) {
  flags_[name] = Flag{Type::kString, default_value, help};
}

void FlagParser::DefineBool(const std::string& name, bool default_value, const std::string& help) {
  flags_[name] = Flag{Type::kBool, default_value ? "true" : "false", help};
}

std::string FlagParser::SuggestFlag(const std::string& name) const {
  // An edit distance above 2 is no longer a plausible typo for names this
  // short; the map's sorted order makes ties alphabetical, hence stable.
  size_t best = 3;
  std::string suggestion;
  for (const auto& [candidate, flag] : flags_) {
    const size_t gap = candidate.size() > name.size() ? candidate.size() - name.size()
                                                      : name.size() - candidate.size();
    if (gap >= best) {
      continue;
    }
    const size_t distance = EditDistance(name, candidate);
    if (distance < best) {
      best = distance;
      suggestion = candidate;
    }
  }
  return suggestion;
}

void FlagParser::ReportUnknown(const std::string& name) const {
  const std::string suggestion = SuggestFlag(name);
  if (suggestion.empty()) {
    std::fprintf(stderr, "unknown flag: --%s\n", name.c_str());
  } else {
    std::fprintf(stderr, "unknown flag: --%s (did you mean --%s?)\n", name.c_str(),
                 suggestion.c_str());
  }
}

bool FlagParser::SetValue(const std::string& name, const std::string& value) {
  auto it = flags_.find(name);
  if (it == flags_.end()) {
    ReportUnknown(name);
    return false;
  }
  // Values are type-checked at parse time so a malformed value ("--seed=abc")
  // fails loudly instead of silently becoming 0.
  switch (it->second.type) {
    case Type::kInt: {
      char* end = nullptr;
      errno = 0;
      (void)std::strtoll(value.c_str(), &end, 10);
      if (value.empty() || end == nullptr || *end != '\0' || errno == ERANGE) {
        std::fprintf(stderr, "flag --%s expects an integer, got \"%s\"\n", name.c_str(),
                     value.c_str());
        return false;
      }
      break;
    }
    case Type::kDouble: {
      char* end = nullptr;
      errno = 0;
      (void)std::strtod(value.c_str(), &end);
      if (value.empty() || end == nullptr || *end != '\0' || errno == ERANGE) {
        std::fprintf(stderr, "flag --%s expects a number, got \"%s\"\n", name.c_str(),
                     value.c_str());
        return false;
      }
      break;
    }
    case Type::kBool: {
      if (value != "true" && value != "false" && value != "1" && value != "0" && value != "yes" &&
          value != "no") {
        std::fprintf(stderr, "flag --%s expects a boolean (true/false/1/0/yes/no), got \"%s\"\n",
                     name.c_str(), value.c_str());
        return false;
      }
      break;
    }
    case Type::kString:
      break;
  }
  it->second.value = value;
  return true;
}

bool FlagParser::Parse(int argc, char** argv) {
  help_requested_ = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      PrintUsage(argv[0]);
      help_requested_ = true;
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected positional argument: %s\n", arg.c_str());
      return false;
    }
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      if (!SetValue(arg.substr(0, eq), arg.substr(eq + 1))) {
        return false;
      }
      continue;
    }
    // --no-flag form for booleans.
    if (arg.rfind("no-", 0) == 0) {
      const std::string name = arg.substr(3);
      auto it = flags_.find(name);
      if (it != flags_.end() && it->second.type == Type::kBool) {
        it->second.value = "false";
        continue;
      }
    }
    auto it = flags_.find(arg);
    if (it != flags_.end() && it->second.type == Type::kBool) {
      it->second.value = "true";
      continue;
    }
    // --key value form.
    if (i + 1 < argc) {
      if (!SetValue(arg, argv[++i])) {
        return false;
      }
      continue;
    }
    if (flags_.find(arg) == flags_.end()) {
      ReportUnknown(arg);
      return false;
    }
    std::fprintf(stderr, "flag --%s is missing a value\n", arg.c_str());
    return false;
  }
  return true;
}

int64_t FlagParser::GetInt(const std::string& name) const {
  return std::strtoll(flags_.at(name).value.c_str(), nullptr, 10);
}

double FlagParser::GetDouble(const std::string& name) const {
  return std::strtod(flags_.at(name).value.c_str(), nullptr);
}

const std::string& FlagParser::GetString(const std::string& name) const {
  return flags_.at(name).value;
}

bool FlagParser::GetBool(const std::string& name) const {
  const std::string& v = flags_.at(name).value;
  return v == "true" || v == "1" || v == "yes";
}

void FlagParser::PrintUsage(const std::string& program) const {
  std::fprintf(stderr, "usage: %s [flags]\n", program.c_str());
  for (const auto& [name, flag] : flags_) {
    std::fprintf(stderr, "  --%s (default: %s)\n      %s\n", name.c_str(), flag.value.c_str(),
                 flag.help.c_str());
  }
}

}  // namespace pollux
