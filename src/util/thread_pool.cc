#include "util/thread_pool.h"

#include <atomic>
#include <chrono>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace pollux {
namespace {

struct PoolMetrics {
  obs::Counter* tasks;
  obs::Gauge* queue_depth;
  obs::Histogram* task_latency_s;

  static const PoolMetrics& Get() {
    static const PoolMetrics metrics;
    return metrics;
  }

 private:
  PoolMetrics() {
    auto& registry = obs::MetricsRegistry::Global();
    tasks = registry.GetCounter("threadpool.tasks");
    queue_depth = registry.GetGauge("threadpool.queue_depth");
    task_latency_s = registry.GetHistogram("threadpool.task_latency_s");
  }
};

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 0) {
    num_threads = static_cast<int>(std::thread::hardware_concurrency());
  }
  const int workers = num_threads > 1 ? num_threads - 1 : 0;
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::NoteEnqueued(size_t depth) {
  if (obs::MetricsRegistry::Global().enabled()) {
    PoolMetrics::Get().queue_depth->Set(static_cast<double>(depth));
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stopping_ with a drained queue.
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    if (obs::MetricsRegistry::Global().enabled()) {
      const PoolMetrics& metrics = PoolMetrics::Get();
      metrics.tasks->Add();
      TRACE_SCOPE("pool_task");
      const auto start = std::chrono::steady_clock::now();
      task();  // packaged_task captures exceptions into its future.
      metrics.task_latency_s->Record(
          std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count());
    } else {
      task();  // packaged_task captures exceptions into its future.
    }
  }
}

void ThreadPool::ParallelFor(size_t begin, size_t end,
                             const std::function<void(size_t)>& fn) {
  if (begin >= end) {
    return;
  }
  const size_t count = end - begin;
  if (workers_.empty() || count == 1) {
    for (size_t i = begin; i < end; ++i) {
      fn(i);
    }
    return;
  }

  // One shared claim counter; each thread (workers + caller) pulls the next
  // unclaimed index until the range is exhausted. Dynamic claiming keeps
  // threads busy when per-index cost is uneven (e.g. GA repair loops).
  auto next = std::make_shared<std::atomic<size_t>>(begin);
  auto first_error = std::make_shared<std::atomic<bool>>(false);
  std::mutex error_mutex;
  std::exception_ptr stored_error;

  const auto drain = [next, first_error, end, &fn, &error_mutex, &stored_error] {
    for (;;) {
      const size_t i = next->fetch_add(1, std::memory_order_relaxed);
      if (i >= end || first_error->load(std::memory_order_relaxed)) {
        return;
      }
      try {
        fn(i);
      } catch (...) {
        first_error->store(true, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!stored_error) {
          stored_error = std::current_exception();
        }
        return;
      }
    }
  };

  // Never dispatch more helpers than indexes; Submit's futures double as the
  // completion barrier.
  const size_t helpers = std::min(workers_.size(), count - 1);
  std::vector<std::future<void>> pending;
  pending.reserve(helpers);
  for (size_t w = 0; w < helpers; ++w) {
    pending.push_back(Submit(drain));
  }
  drain();
  for (auto& future : pending) {
    future.get();  // drain() never throws; get() only synchronizes.
  }
  if (stored_error) {
    std::rethrow_exception(stored_error);
  }
}

}  // namespace pollux
