#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace pollux {

double Mean(const std::vector<double>& values) {
  if (values.empty()) {
    return 0.0;
  }
  double total = 0.0;
  for (double v : values) {
    total += v;
  }
  return total / static_cast<double>(values.size());
}

double Variance(const std::vector<double>& values) {
  if (values.size() < 2) {
    return 0.0;
  }
  const double mean = Mean(values);
  double accum = 0.0;
  for (double v : values) {
    accum += (v - mean) * (v - mean);
  }
  return accum / static_cast<double>(values.size() - 1);
}

double StdDev(const std::vector<double>& values) { return std::sqrt(Variance(values)); }

double Percentile(std::vector<double> values, double q) {
  if (values.empty()) {
    return 0.0;
  }
  std::sort(values.begin(), values.end());
  const double clamped = std::clamp(q, 0.0, 100.0);
  const double rank = clamped / 100.0 * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double Median(std::vector<double> values) { return Percentile(std::move(values), 50.0); }

double Min(const std::vector<double>& values) {
  return values.empty() ? 0.0 : *std::min_element(values.begin(), values.end());
}

double Max(const std::vector<double>& values) {
  return values.empty() ? 0.0 : *std::max_element(values.begin(), values.end());
}

double Sum(const std::vector<double>& values) {
  double total = 0.0;
  for (double v : values) {
    total += v;
  }
  return total;
}

Summary Summarize(const std::vector<double>& values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) {
    return s;
  }
  s.mean = Mean(values);
  s.stddev = StdDev(values);
  s.min = Min(values);
  s.p50 = Percentile(values, 50.0);
  s.p90 = Percentile(values, 90.0);
  s.p99 = Percentile(values, 99.0);
  s.max = Max(values);
  return s;
}

void RunningStats::Add(double value) {
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double total = static_cast<double>(count_ + other.count_);
  const double delta = other.mean_ - mean_;
  m2_ += other.m2_ +
         delta * delta * static_cast<double>(count_) * static_cast<double>(other.count_) / total;
  mean_ += delta * static_cast<double>(other.count_) / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, size_t bins) : lo_(lo), hi_(hi), counts_(bins, 0) {}

void Histogram::Add(double value) {
  const double span = hi_ - lo_;
  double frac = (value - lo_) / span;
  frac = std::clamp(frac, 0.0, 1.0);
  size_t bin = static_cast<size_t>(frac * static_cast<double>(counts_.size()));
  bin = std::min(bin, counts_.size() - 1);
  ++counts_[bin];
  ++total_;
}

double Histogram::bin_lo(size_t bin) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(bin) / static_cast<double>(counts_.size());
}

}  // namespace pollux
