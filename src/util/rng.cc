#include "util/rng.h"

#include <cmath>

namespace pollux {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& word : state_) {
    word = SplitMix64(s);
  }
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 top bits -> [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) {
    // Full 64-bit range requested.
    return static_cast<int64_t>(NextU64());
  }
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = max() - max() % span;
  uint64_t draw = NextU64();
  while (draw >= limit) {
    draw = NextU64();
  }
  return lo + static_cast<int64_t>(draw % span);
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = NextDouble();
  while (u1 <= 1e-300) {
    u1 = NextDouble();
  }
  const double u2 = NextDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::Normal(double mean, double stddev) { return mean + stddev * Normal(); }

double Rng::LogNormal(double median, double sigma_log) {
  return median * std::exp(sigma_log * Normal());
}

double Rng::Exponential(double rate) {
  double u = NextDouble();
  while (u <= 1e-300) {
    u = NextDouble();
  }
  return -std::log(u) / rate;
}

int64_t Rng::Poisson(double mean) {
  if (mean <= 0.0) {
    return 0;
  }
  if (mean > 64.0) {
    // Normal approximation with continuity correction.
    const double draw = Normal(mean, std::sqrt(mean));
    return draw < 0.0 ? 0 : static_cast<int64_t>(draw + 0.5);
  }
  const double threshold = std::exp(-mean);
  int64_t count = -1;
  double product = 1.0;
  do {
    ++count;
    product *= NextDouble();
  } while (product > threshold);
  return count;
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    total += w > 0.0 ? w : 0.0;
  }
  double draw = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (draw < w) {
      return i;
    }
    draw -= w;
  }
  return weights.size() - 1;
}

Rng Rng::Fork() { return Rng(NextU64()); }

}  // namespace pollux
