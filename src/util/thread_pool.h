// Fixed-size worker pool for CPU-bound fan-out (no work stealing).
//
// PolluxSched's genetic algorithm evaluates ~population_size independent
// individuals per generation; ParallelFor() spreads such index ranges over a
// fixed set of workers (the calling thread participates, so a pool of N
// workers applies N+1 threads to a loop). Tasks must be independent: the
// pool makes no ordering guarantees beyond "every index runs exactly once
// and ParallelFor returns only after all of them finished". Exceptions
// thrown by tasks are captured and rethrown on the calling thread (Submit()
// propagates through the returned future, ParallelFor rethrows the first
// one observed).
//
// Determinism contract: the pool itself introduces no randomness. Callers
// that need bit-identical results across worker counts must make each index
// self-contained (e.g. give each its own pre-forked Rng stream) — see
// GeneticOptimizer for the pattern.

#ifndef POLLUX_UTIL_THREAD_POOL_H_
#define POLLUX_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace pollux {

class ThreadPool {
 public:
  // `num_threads` counts the calling thread: a pool constructed with 0 or 1
  // spawns no workers and runs everything inline, so `ThreadPool(n)` applies
  // exactly max(1, n) threads to a ParallelFor. Negative values mean "use
  // std::thread::hardware_concurrency()".
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Total threads a ParallelFor uses (workers + the calling thread), >= 1.
  int num_threads() const { return static_cast<int>(workers_.size()) + 1; }

  // Enqueues a task; the future rethrows anything the task throws.
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    if (workers_.empty()) {
      (*task)();  // Inline mode: run on the caller.
      return result;
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.push([task] { (*task)(); });
      NoteEnqueued(queue_.size());
    }
    cv_.notify_one();
    return result;
  }

  // Runs fn(i) for every i in [begin, end), spread over all threads via an
  // atomic index counter; blocks until the whole range is done. The first
  // exception thrown by any invocation is rethrown here (remaining indexes
  // may or may not run once a task has thrown).
  void ParallelFor(size_t begin, size_t end, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();
  // Observability hook (metrics queue-depth gauge); called with mutex_ held.
  static void NoteEnqueued(size_t depth);

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace pollux

#endif  // POLLUX_UTIL_THREAD_POOL_H_
