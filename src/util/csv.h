// Tabular output helpers: the benchmark binaries print the same rows/series
// the paper reports. TablePrinter renders an aligned console table; CsvWriter
// emits machine-readable CSV for plotting.

#ifndef POLLUX_UTIL_CSV_H_
#define POLLUX_UTIL_CSV_H_

#include <ostream>
#include <string>
#include <vector>

namespace pollux {

// Collects rows of string cells and prints them with aligned columns.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);
  // Renders the table (header, separator, rows) to the stream.
  void Print(std::ostream& out) const;

  size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Minimal CSV writer with RFC-4180-style quoting of cells that contain
// commas, quotes, or newlines.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  void WriteRow(const std::vector<std::string>& cells);

 private:
  std::ostream& out_;
};

// Formats a double with the given number of decimal places.
std::string FormatDouble(double value, int decimals = 2);

// Formats seconds as e.g. "1.2h" / "43m" / "12s" for human-readable tables.
std::string FormatDuration(double seconds);

}  // namespace pollux

#endif  // POLLUX_UTIL_CSV_H_
