#include "util/csv.h"

#include <algorithm>
#include <cstdio>

namespace pollux {

TablePrinter::TablePrinter(std::vector<std::string> header) : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print(std::ostream& out) const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "" : "  ");
      out << row[c];
      for (size_t pad = row[c].size(); pad < widths[c]; ++pad) {
        out << ' ';
      }
    }
    out << '\n';
  };
  print_row(header_);
  size_t total = 0;
  for (size_t w : widths) {
    total += w;
  }
  total += 2 * (widths.size() - 1);
  for (size_t i = 0; i < total; ++i) {
    out << '-';
  }
  out << '\n';
  for (const auto& row : rows_) {
    print_row(row);
  }
}

void CsvWriter::WriteRow(const std::vector<std::string>& cells) {
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) {
      out_ << ',';
    }
    const std::string& cell = cells[i];
    const bool needs_quotes = cell.find_first_of(",\"\n") != std::string::npos;
    if (!needs_quotes) {
      out_ << cell;
      continue;
    }
    out_ << '"';
    for (char ch : cell) {
      if (ch == '"') {
        out_ << "\"\"";
      } else {
        out_ << ch;
      }
    }
    out_ << '"';
  }
  out_ << '\n';
}

std::string FormatDouble(double value, int decimals) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
  return buffer;
}

std::string FormatDuration(double seconds) {
  char buffer[64];
  if (seconds >= 3600.0) {
    std::snprintf(buffer, sizeof(buffer), "%.2fh", seconds / 3600.0);
  } else if (seconds >= 60.0) {
    std::snprintf(buffer, sizeof(buffer), "%.1fm", seconds / 60.0);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.1fs", seconds);
  }
  return buffer;
}

}  // namespace pollux
