#include "util/logging.h"

#include <atomic>
#include <cstdio>

namespace pollux {
namespace {

// Atomic so worker threads (ThreadPool tasks, instrumented hot paths) can
// log while another thread adjusts the level; relaxed ordering is enough
// for a monotone filter threshold.
std::atomic<LogLevel> g_level{LogLevel::kWarning};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

void LogMessage(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(GetLogLevel())) {
    return;
  }
  std::fprintf(stderr, "[%s] %s\n", LevelName(level), message.c_str());
}

LogStream::~LogStream() { LogMessage(level_, stream_.str()); }

}  // namespace pollux
