// Descriptive statistics used throughout the simulator and the benchmark
// harnesses: one-shot summaries over vectors plus a Welford-style running
// accumulator for streaming metrics.

#ifndef POLLUX_UTIL_STATS_H_
#define POLLUX_UTIL_STATS_H_

#include <cstddef>
#include <limits>
#include <vector>

namespace pollux {

// Arithmetic mean; 0 for an empty range.
double Mean(const std::vector<double>& values);

// Unbiased (n-1) sample variance; 0 when fewer than two values.
double Variance(const std::vector<double>& values);

double StdDev(const std::vector<double>& values);

// Linear-interpolation percentile, q in [0, 100]. Copies and sorts internally.
double Percentile(std::vector<double> values, double q);

double Median(std::vector<double> values);

double Min(const std::vector<double>& values);
double Max(const std::vector<double>& values);
double Sum(const std::vector<double>& values);

// Five-number-style summary of a sample.
struct Summary {
  size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

Summary Summarize(const std::vector<double>& values);

// Numerically stable streaming mean/variance (Welford).
class RunningStats {
 public:
  void Add(double value);
  void Merge(const RunningStats& other);

  size_t count() const { return count_; }
  double mean() const { return mean_; }
  // Unbiased sample variance; 0 when fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(count_); }

  // Accumulator state, for checkpoint/restore (min/max are +/-inf while
  // empty; serializers must preserve the bit patterns).
  struct State {
    size_t count = 0;
    double mean = 0.0;
    double m2 = 0.0;
    double min = std::numeric_limits<double>::infinity();
    double max = -std::numeric_limits<double>::infinity();
  };
  State GetState() const { return State{count_, mean_, m2_, min_, max_}; }
  void SetState(const State& state) {
    count_ = state.count;
    mean_ = state.mean;
    m2_ = state.m2;
    min_ = state.min;
    max_ = state.max;
  }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Fixed-bin histogram over [lo, hi); out-of-range samples clamp to the edge
// bins. Used for the trace-shape benchmark (Fig. 6).
class Histogram {
 public:
  Histogram(double lo, double hi, size_t bins);

  void Add(double value);
  size_t bin_count(size_t bin) const { return counts_[bin]; }
  size_t bins() const { return counts_.size(); }
  size_t total() const { return total_; }
  // Inclusive lower edge of the given bin.
  double bin_lo(size_t bin) const;

 private:
  double lo_;
  double hi_;
  std::vector<size_t> counts_;
  size_t total_ = 0;
};

}  // namespace pollux

#endif  // POLLUX_UTIL_STATS_H_
