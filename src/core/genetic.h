// The genetic algorithm PolluxSched runs every scheduling interval
// (Sec. 4.2.1, Fig. 5). Each individual is an allocation matrix; one
// generation applies mutation, tournament-selected crossover, and repair
// (node capacity, per-job exploration caps, and optionally the interference-
// avoidance constraint), then keeps the fittest individuals. The population
// is persisted across calls to bootstrap the next scheduling interval.
//
// Offspring are independent, so each generation's brood is produced and
// evaluated in parallel on a ThreadPool. Every offspring draws from its own
// Rng stream, forked from the master generator in a fixed order before the
// parallel region, which makes results bit-identical for any worker count
// (asserted by core_genetic_determinism_test). Fitness evaluation memoizes
// raw SPEEDUP_j(K, N) lookups through a sharded EvalCache that is cleared at
// the start of every round (speedup tables are rebuilt per round).

#ifndef POLLUX_CORE_GENETIC_H_
#define POLLUX_CORE_GENETIC_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/allocation.h"
#include "core/eval_cache.h"
#include "core/fitness.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace pollux {

struct GaOptions {
  int population_size = 100;
  int generations = 100;
  int tournament_size = 3;
  double restart_penalty = 0.25;
  // Disallow two multi-node jobs from sharing any node (Sec. 4.2.1).
  bool interference_avoidance = true;
  uint64_t seed = 42;
  // Worker threads for offspring generation + fitness evaluation. 1 runs
  // single-threaded; 0 or negative means std::thread::hardware_concurrency().
  // The returned allocations are identical for every value.
  int threads = 1;
  // Memoize SPEEDUP_j(K, N) lookups per round (never changes results).
  bool memoize = true;
};

class GeneticOptimizer {
 public:
  GeneticOptimizer(ClusterSpec cluster, GaOptions options);

  struct Result {
    AllocationMatrix best;
    double fitness = 0.0;
    double utility = 0.0;  // Eqn. 17 of the best matrix.
  };

  // Runs the configured number of generations for the given job set and
  // returns the fittest allocation matrix. Jobs are matched to the persisted
  // population by job_id, so jobs may arrive/depart between calls.
  Result Optimize(const std::vector<SchedJobInfo>& jobs);

  // Replaces the cluster (used by the autoscaler when nodes are added or
  // released). Clears the persisted population since matrix shapes change.
  void SetCluster(ClusterSpec cluster);

  const ClusterSpec& cluster() const { return cluster_; }

  // Cumulative speedup-memoization counters across all Optimize() calls.
  EvalCacheStats cache_stats() const { return cache_.Stats(); }

  // Search state for checkpoint/restore: the master Rng cursor plus the
  // persisted population and the job ids it was bred for. Restore after any
  // SetCluster call (SetCluster clears the population). The memo cache is
  // deliberately excluded — results are bit-identical with or without it.
  struct State {
    Rng::State rng;
    std::vector<uint64_t> last_job_ids;
    std::vector<AllocationMatrix> population;
  };
  State GetState() const { return State{rng_.GetState(), last_job_ids_, population_}; }
  void SetState(const State& state) {
    rng_.SetState(state.rng);
    last_job_ids_ = state.last_job_ids;
    population_ = state.population;
  }

  // Cold recovery: forget the persisted population and re-seed the master
  // Rng from configuration, as a freshly restarted scheduler process would.
  void ResetSearchState() {
    rng_ = Rng(options_.seed);
    last_job_ids_.clear();
    population_.clear();
  }

  // Exposed for testing: enforces all feasibility constraints in place.
  void Repair(AllocationMatrix& matrix, const std::vector<SchedJobInfo>& jobs);

  // Exposed for testing: each cell mutates with probability 1/num_nodes to a
  // uniform value in [0, node capacity].
  void Mutate(AllocationMatrix& matrix);

  // Exposed for testing: offspring takes each row from one of the parents.
  AllocationMatrix Crossover(const AllocationMatrix& a, const AllocationMatrix& b);

 private:
  void SeedPopulation(const std::vector<SchedJobInfo>& jobs);
  void EnsurePool();

  // Stream-explicit operators: everything an offspring needs runs against
  // the Rng handed in, never against rng_, so offspring can be produced
  // concurrently from pre-forked streams.
  void MutateWith(AllocationMatrix& matrix, Rng& rng) const;
  // Topology-mode mutation: half of all mutations are redirected into the
  // job's primary rack, so the search prefers filling a node, then a rack,
  // before spilling (DESIGN.md sec. 14). Only used when cluster_ carries
  // topology annotations; the flat path's RNG sequence is untouched.
  void MutateRackAffineWith(AllocationMatrix& matrix, Rng& rng) const;
  // Topology-mode repair stage: deterministically moves a rack-spanning
  // job's minority-rack GPUs into free capacity in its primary rack.
  void CompactRacks(AllocationMatrix& matrix) const;
  AllocationMatrix CrossoverWith(const AllocationMatrix& a, const AllocationMatrix& b,
                                 Rng& rng) const;
  void RepairWith(AllocationMatrix& matrix, const std::vector<SchedJobInfo>& jobs,
                  Rng& rng) const;
  size_t TournamentPickWith(const std::vector<double>& fitnesses, Rng& rng) const;

  void BuildRackIndex();

  ClusterSpec cluster_;
  // Node ids per rack, built once per SetCluster; empty outside topology mode.
  std::vector<std::vector<int>> rack_nodes_;
  GaOptions options_;
  Rng rng_;
  std::unique_ptr<ThreadPool> pool_;
  EvalCache cache_;
  std::vector<uint64_t> last_job_ids_;
  std::vector<AllocationMatrix> population_;
};

}  // namespace pollux

#endif  // POLLUX_CORE_GENETIC_H_
