// Gradient noise scale estimation (Sec. 3.1).
//
// The GNS phi = tr(Sigma) / |G|^2 is estimated from two moment estimators:
//   * EstimateGnsFromReplicas: the standard multi-replica estimator
//     [McCandlish et al. 2018, Johnson et al. 2020] that contrasts the mean
//     squared norm of per-replica gradients (batch m/K) against the squared
//     norm of the averaged gradient (batch m).
//   * EstimateGnsDifferenced: the single-replica differenced estimator
//     [Wang & Yu 2017] used by Pollux "when there is only a single process",
//     based on consecutive gradient estimates.
//
// Both return unbiased estimates of (tr(Sigma), |G|^2), where Sigma is the
// single-example gradient covariance and G the true gradient. Individual
// estimates are extremely noisy, so GnsTracker smooths them with bias-
// corrected exponential moving averages before exposing phi.

#ifndef POLLUX_CORE_GNS_H_
#define POLLUX_CORE_GNS_H_

#include <optional>
#include <span>
#include <vector>

namespace pollux {

// One unbiased sample of the gradient moment statistics.
struct GnsSample {
  // Estimate of tr(Sigma): total variance contributed by a single example.
  double cov_trace = 0.0;
  // Estimate of |G|^2: squared norm of the true (full-batch) gradient.
  double grad_sqnorm = 0.0;
};

// Multi-replica estimator. `replica_grads` holds K >= 2 local gradients, each
// computed on total_batch / K examples. Returns nullopt when K < 2 or the
// inputs are degenerate (mismatched sizes, non-positive batch).
std::optional<GnsSample> EstimateGnsFromReplicas(
    std::span<const std::vector<double>> replica_grads, double total_batch);

// Differenced estimator from two consecutive gradient estimates at the same
// batch size. Assumes the true gradient changes slowly across one iteration.
std::optional<GnsSample> EstimateGnsDifferenced(const std::vector<double>& previous,
                                                const std::vector<double>& current,
                                                double batch_size);

// Smooths GnsSamples with bias-corrected EMAs and exposes the current phi.
// Variance and squared-norm are smoothed separately, as in AdaScale.
class GnsTracker {
 public:
  // `smoothing` is the EMA retention factor in [0, 1); 0 keeps only the most
  // recent sample.
  explicit GnsTracker(double smoothing = 0.95);

  void AddSample(const GnsSample& sample);
  void Reset();

  bool valid() const { return count_ > 0; }
  size_t sample_count() const { return count_; }

  // Bias-corrected smoothed moments.
  double cov_trace() const;
  double grad_sqnorm() const;

  // Smoothed gradient noise scale, clamped to >= 0. Returns 0 until the first
  // sample arrives.
  double Phi() const;

  // EMA state, for checkpoint/restore (the smoothing factor is configuration
  // and is not part of the state).
  struct State {
    double cov_ema = 0.0;
    double sqnorm_ema = 0.0;
    double weight = 0.0;
    size_t count = 0;
  };
  State GetState() const { return State{cov_ema_, sqnorm_ema_, weight_, count_}; }
  void SetState(const State& state) {
    cov_ema_ = state.cov_ema;
    sqnorm_ema_ = state.sqnorm_ema;
    weight_ = state.weight;
    count_ = state.count;
  }

 private:
  double smoothing_;
  double cov_ema_ = 0.0;
  double sqnorm_ema_ = 0.0;
  double weight_ = 0.0;  // Accumulated EMA normalization for bias correction.
  size_t count_ = 0;
};

}  // namespace pollux

#endif  // POLLUX_CORE_GNS_H_
