#include "core/rack_model.h"

#include <algorithm>
#include <cmath>

#include "optim/lbfgsb.h"
#include "util/rng.h"

namespace pollux {
namespace {

constexpr double kLogEpsilon = 1e-8;

RackThroughputParams UnpackRackParams(const std::vector<double>& x) {
  RackThroughputParams params;
  params.alpha_grad = x[0];
  params.beta_grad = x[1];
  params.alpha_sync_local = x[2];
  params.beta_sync_local = x[3];
  params.alpha_sync_node = x[4];
  params.beta_sync_node = x[5];
  params.alpha_sync_rack = x[6];
  params.beta_sync_rack = x[7];
  params.gamma = x[8];
  return params;
}

}  // namespace

double RackGradTime(const RackThroughputParams& params, const RackPlacement& placement,
                    double batch_size) {
  if (placement.num_gpus <= 0) {
    return 0.0;
  }
  return params.alpha_grad + params.beta_grad * batch_size / placement.num_gpus;
}

double RackSyncTime(const RackThroughputParams& params, const RackPlacement& placement) {
  const int k = placement.num_gpus;
  if (k <= 1) {
    return 0.0;
  }
  if (placement.num_nodes <= 1) {
    return params.alpha_sync_local + params.beta_sync_local * (k - 2);
  }
  if (placement.num_racks <= 1) {
    return params.alpha_sync_node + params.beta_sync_node * (k - 2);
  }
  return params.alpha_sync_rack + params.beta_sync_rack * (k - 2);
}

double RackIterTime(const RackThroughputParams& params, const RackPlacement& placement,
                    double batch_size) {
  const double grad = RackGradTime(params, placement, batch_size);
  const double sync = RackSyncTime(params, placement);
  if (sync <= 0.0) {
    return grad;
  }
  if (grad <= 0.0) {
    return sync;
  }
  const double gamma = params.gamma < 1.0 ? 1.0 : params.gamma;
  const double hi = grad > sync ? grad : sync;
  const double lo = grad > sync ? sync : grad;
  return hi * std::pow(1.0 + std::pow(lo / hi, gamma), 1.0 / gamma);
}

double RackModelThroughput(const RackThroughputParams& params, const RackPlacement& placement,
                           double batch_size) {
  if (placement.num_gpus <= 0 || batch_size <= 0.0) {
    return 0.0;
  }
  const double iter = RackIterTime(params, placement, batch_size);
  return iter > 0.0 ? batch_size / iter : 0.0;
}

double RackThroughputRmsle(const RackThroughputParams& params,
                           const std::vector<RackThroughputObservation>& observations) {
  if (observations.empty()) {
    return 0.0;
  }
  double total = 0.0;
  for (const auto& obs : observations) {
    const double predicted =
        RackIterTime(params, obs.placement, static_cast<double>(obs.batch_size));
    const double diff = std::log(predicted + kLogEpsilon) - std::log(obs.iter_time + kLogEpsilon);
    total += diff * diff;
  }
  return std::sqrt(total / static_cast<double>(observations.size()));
}

RackFitResult FitRackThroughputParams(const std::vector<RackThroughputObservation>& observations,
                                      const RackFitOptions& options) {
  RackFitResult result;
  if (observations.empty()) {
    return result;
  }

  // Layout: [a_grad, b_grad, a_loc, b_loc, a_node, b_node, a_rack, b_rack, gamma].
  std::vector<double> lower(9, 0.0);
  std::vector<double> upper = {options.max_alpha, options.max_beta, options.max_alpha,
                               options.max_beta,  options.max_alpha, options.max_beta,
                               options.max_alpha, options.max_beta,  10.0};
  lower[8] = 1.0;
  lower[1] = 1e-8;  // Gradient computation is never free (see model_fitter.cc).

  // Prior-driven exploration pins, extended to the rack tier.
  if (options.max_gpus_seen <= 1) {
    upper[2] = upper[3] = upper[4] = upper[5] = upper[6] = upper[7] = 0.0;
  }
  if (options.max_nodes_seen <= 1) {
    upper[4] = upper[5] = upper[6] = upper[7] = 0.0;
  }
  if (options.max_racks_seen <= 1) {
    upper[6] = upper[7] = 0.0;
  }
  if (options.max_gpus_seen <= 2) {
    upper[3] = upper[5] = upper[7] = 0.0;
  }

  BoundedProblem problem;
  problem.lower = lower;
  problem.upper = upper;
  constexpr double kSyncRidge = 1e-3;
  problem.objective = [&](const std::vector<double>& x) {
    return RackThroughputRmsle(UnpackRackParams(x), observations) +
           kSyncRidge * (x[2] + x[3] + x[4] + x[5] + x[6] + x[7]);
  };

  std::vector<double> x0 = {0.01, std::min(1e-4, upper[1]), std::min(0.05, upper[2]),
                            std::min(0.005, upper[3]), std::min(0.1, upper[4]),
                            std::min(0.005, upper[5]), std::min(0.2, upper[6]),
                            std::min(0.01, upper[7]), 1.5};
  LbfgsbOptions lbfgs_options;
  lbfgs_options.max_iterations = 100;
  Rng rng(options.seed);
  const LbfgsbResult fit =
      MinimizeBoundedMultiStart(problem, x0, options.multi_starts, rng, lbfgs_options);
  result.params = UnpackRackParams(fit.x);
  result.rmsle = fit.value;
  result.evaluations = fit.evaluations;
  return result;
}

}  // namespace pollux
