// Sharded memoization cache for scheduler-side goodput/speedup evaluation.
//
// Two hot paths share this cache type (separate instances):
//
//  1. Speedup-table construction (PolluxSched::BuildJobInfos): every grid
//     point runs a golden-section search over the batch size (Eqn. 13),
//     ~50 goodput evaluations each. The cloud autoscaler's utility probes
//     (EvaluateUtilityAt) rebuild every job's table once per probed cluster
//     size with the *same* goodput model, so all probes after the first are
//     pure cache hits; scheduling rounds whose models did not change between
//     intervals reuse entries the same way. Keys carry an exact 64-bit
//     fingerprint of (theta_sys, phi, m0, limits), so a re-fitted model can
//     never be served values from a previous revision.
//
//  2. Genetic-algorithm fitness (GeneticOptimizer): each matrix evaluation
//     reduces every job's row to its placement shape (K GPUs, N nodes) and
//     looks SPEEDUP_j(K, N) up in the job's table. Distinct (job, K, N)
//     shapes are few compared to the number of row evaluations per round, so
//     repeats skip the table's binary search + interpolation. This instance
//     is cleared at the start of every Optimize() call (tables are rebuilt
//     per round), which makes cached values exact within a round.
//
// Shards are open-addressed flat tables (linear probing, power-of-two
// capacity) rather than node-based maps: the hit path is one uncontended
// mutex acquisition plus a short probe over contiguous slots. Keys are
// stored verbatim — the hash only picks the shard and the starting slot, so
// a hit can never alias a different evaluation. Each shard clears itself
// when it reaches max_entries_per_shard (epoch-style eviction), which bounds
// memory across arbitrarily long simulations; because a hit returns the
// exact value the miss path would recompute, eviction timing can never
// change scheduling results (asserted by core_genetic_determinism_test).
//
// Thread safety: lookups/inserts take a per-shard mutex, and the hit/miss
// counters are relaxed atomics, so concurrent evaluation from ThreadPool
// workers is safe.

#ifndef POLLUX_CORE_EVAL_CACHE_H_
#define POLLUX_CORE_EVAL_CACHE_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace pollux {

struct EvalCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t entries = 0;

  double HitRate() const {
    const uint64_t total = hits + misses;
    return total > 0 ? static_cast<double>(hits) / static_cast<double>(total) : 0.0;
  }
};

class EvalCache {
 public:
  static constexpr int kNumShards = 16;

  // One evaluation shape. Every field is stored verbatim (no lossy packing),
  // so equal keys always denote the same computation.
  struct Key {
    uint64_t job_id = 0;
    // Fingerprint of the goodput model + batch limits the value was computed
    // from (ModelFingerprint() in goodput.h); 0 for table-lookup entries,
    // whose table is fixed for the cache's lifetime-between-Clear()s.
    uint64_t model_fp = 0;
    uint32_t replicas = 0;  // K: total GPUs of the placement.
    uint16_t nodes = 0;     // N clamped to {0, 1, 2+}; the model only splits on that.
    uint16_t progress_bucket = 0;

    bool operator==(const Key&) const = default;
  };

  // Cached result: the evaluated goodput/speedup plus one auxiliary long
  // (the optimal batch size for table-construction entries; unused by the
  // fitness path).
  struct Value {
    double value = 0.0;
    long aux = 0;
  };

  explicit EvalCache(size_t max_entries_per_shard = kDefaultMaxEntriesPerShard)
      : max_entries_per_shard_(max_entries_per_shard) {}

  // True and fills `value` on a hit; counts the probe either way.
  bool Lookup(const Key& key, Value* value);

  // Records a computed value (last writer wins; all writers of one key hold
  // the same deterministic value, so the race on "who inserts" is benign).
  void Insert(const Key& key, const Value& value);

  // Convenience wrapper: returns the cached value or computes-and-caches it.
  template <typename ComputeFn>
  Value GetOrCompute(const Key& key, const ComputeFn& compute) {
    Value value;
    if (Lookup(key, &value)) {
      return value;
    }
    value = compute();
    Insert(key, value);
    return value;
  }

  // Drops all entries; counters keep accumulating across rounds unless
  // ResetStats() is also called.
  void Clear();
  void ResetStats();

  EvalCacheStats Stats() const;

  size_t max_entries_per_shard() const { return max_entries_per_shard_; }

 private:
  // 16 shards x 8192 entries x ~48 bytes caps one cache at a few MiB.
  static constexpr size_t kDefaultMaxEntriesPerShard = 8192;
  static constexpr size_t kInitialSlots = 64;  // Power of two.

  static uint64_t HashKey(const Key& key) {
    // splitmix64-style mix over the packed fields.
    uint64_t x = key.job_id ^ (key.model_fp * 0x9e3779b97f4a7c15ULL) ^
                 (static_cast<uint64_t>(key.replicas) << 32) ^
                 (static_cast<uint64_t>(key.nodes) << 16) ^ key.progress_bucket;
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  struct Slot {
    Key key;
    Value value;
    bool used = false;
  };

  struct Shard {
    mutable std::mutex mutex;
    std::vector<Slot> slots;  // Empty or a power-of-two size.
    size_t size = 0;
  };

  // Index of the slot holding `key`, or of the first free slot of its probe
  // sequence. Requires the shard mutex and a non-empty slot array.
  static size_t ProbeFor(const Shard& shard, const Key& key, uint64_t hash);

  // Doubles the slot array when load exceeds ~70%. Requires the shard mutex.
  void GrowIfNeeded(Shard& shard);

  Shard& ShardFor(uint64_t hash) {
    return shards_[hash % static_cast<uint64_t>(kNumShards)];
  }

  std::array<Shard, kNumShards> shards_;
  size_t max_entries_per_shard_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
};

}  // namespace pollux

#endif  // POLLUX_CORE_EVAL_CACHE_H_
