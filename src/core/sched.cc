#include "core/sched.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace pollux {
namespace {

// Handles resolved once; every per-round update is a relaxed atomic op.
struct SchedMetrics {
  obs::Counter* rounds;
  obs::Counter* fallback_rounds;
  obs::Counter* degraded_rounds;
  obs::Counter* lease_expirations;
  obs::Counter* lease_evictions;
  obs::Counter* dup_reports;
  obs::Gauge* lease_held_jobs;
  obs::Gauge* lease_coverage;
  obs::Histogram* round_time_s;
  obs::Gauge* last_utility;
  obs::Gauge* last_fitness;
  obs::Gauge* table_cache_hits;
  obs::Gauge* table_cache_misses;
  obs::Gauge* table_cache_hit_rate;
  obs::Gauge* eval_cache_hits;
  obs::Gauge* eval_cache_misses;
  obs::Gauge* eval_cache_hit_rate;

  static const SchedMetrics& Get() {
    static const SchedMetrics metrics;
    return metrics;
  }

 private:
  SchedMetrics() {
    auto& registry = obs::MetricsRegistry::Global();
    rounds = registry.GetCounter("sched.rounds");
    fallback_rounds = registry.GetCounter("sched.fallback_rounds");
    degraded_rounds = registry.GetCounter("sched.degraded_rounds");
    lease_expirations = registry.GetCounter("sched.lease.expirations");
    lease_evictions = registry.GetCounter("sched.lease.evictions");
    dup_reports = registry.GetCounter("sched.dup_reports");
    lease_held_jobs = registry.GetGauge("sched.lease.held_jobs");
    lease_coverage = registry.GetGauge("sched.lease.coverage");
    round_time_s = registry.GetHistogram("sched.round_time_s");
    last_utility = registry.GetGauge("sched.last_utility");
    last_fitness = registry.GetGauge("sched.last_fitness");
    table_cache_hits = registry.GetGauge("sched.table_cache.hits");
    table_cache_misses = registry.GetGauge("sched.table_cache.misses");
    table_cache_hit_rate = registry.GetGauge("sched.table_cache.hit_rate");
    eval_cache_hits = registry.GetGauge("sched.eval_cache.hits");
    eval_cache_misses = registry.GetGauge("sched.eval_cache.misses");
    eval_cache_hit_rate = registry.GetGauge("sched.eval_cache.hit_rate");
  }
};

// Coarse log2 quantization of attained GPU-time (minutes doubling per
// bucket). Only used to key the speedup memoization cache: two reports of
// the same job in different buckets never share cache entries, so values
// computed from an earlier model revision cannot leak forward.
uint16_t ProgressBucket(double gpu_time) {
  if (gpu_time <= 0.0) {
    return 0;
  }
  const double bucket = std::floor(std::log2(1.0 + gpu_time / 60.0));
  return static_cast<uint16_t>(std::min(bucket, 1023.0)) + 1;
}

}  // namespace

PolluxSched::PolluxSched(ClusterSpec cluster, SchedConfig config)
    : config_(config), optimizer_(std::move(cluster), config.ga) {}

std::vector<SchedJobInfo> PolluxSched::BuildJobInfos(const std::vector<SchedJobReport>& reports,
                                                     int max_gpus) const {
  std::vector<SchedJobInfo> jobs;
  jobs.reserve(reports.size());
  for (const auto& report : reports) {
    SchedJobInfo info;
    info.job_id = report.agent.job_id;
    // The exploration cap bounds how many GPUs this job can receive, so the
    // speedup table never needs entries beyond it.
    const int table_gpus = std::min(max_gpus, std::max(1, report.agent.max_gpus_cap));
    info.progress_bucket = ProgressBucket(report.gpu_time);
    info.speedups =
        SpeedupTable(report.agent.model, report.agent.limits, table_gpus,
                     config_.memoize_tables ? &table_cache_ : nullptr, info.job_id,
                     info.progress_bucket);
    info.weight = JobWeight(report.gpu_time, config_.gpu_time_threshold, config_.weight_lambda);
    info.current_allocation = report.current_allocation;
    info.max_gpus_cap = std::max(1, report.agent.max_gpus_cap);
    bool stale = config_.stale_report_age > 0.0 && report.report_age > config_.stale_report_age;
    if (config_.lease_intervals > 0) {
      stale = stale ||
              report.report_age > config_.lease_intervals * config_.report_interval;
    }
    if (stale) {
      // No fresh telemetry: hold the job at (at most) its current size
      // rather than growing it on a goodput model we cannot trust.
      int current = 0;
      for (int gpus : report.current_allocation) {
        current += gpus;
      }
      info.max_gpus_cap = std::max(1, std::min(info.max_gpus_cap, current));
    }
    jobs.push_back(std::move(info));
  }
  return jobs;
}

std::map<uint64_t, std::vector<int>> PolluxSched::Schedule(
    const std::vector<SchedJobReport>& reports) {
  std::map<uint64_t, std::vector<int>> allocations;
  if (reports.empty()) {
    last_utility_ = 0.0;
    last_fitness_ = 0.0;
    return allocations;
  }
  TRACE_SCOPE("sched_round");
  const auto round_start = std::chrono::steady_clock::now();
  const bool lease_mode = config_.lease_intervals > 0 && !config_.naive_masking;
  const uint64_t expirations_before = lease_expirations_;
  const uint64_t evictions_before = lease_evictions_;
  const uint64_t dups_before = dup_reports_;
  const std::vector<Lease> lease = ClassifyLeases(reports);
  size_t fresh = 0;
  size_t held = 0;
  for (Lease state : lease) {
    fresh += state == Lease::kFresh ? 1 : 0;
    held += state == Lease::kHeld ? 1 : 0;
  }
  const double coverage = static_cast<double>(fresh) / static_cast<double>(reports.size());
  const bool degraded =
      lease_mode && config_.degraded_coverage > 0.0 && coverage < config_.degraded_coverage;
  bool fallback = false;
  if (degraded) {
    // Too little of the fleet is reporting to trust a full re-optimization:
    // freeze what is warm, pack only the fresh queued jobs.
    ++degraded_rounds_;
    allocations = DegradedRound(reports, lease);
  } else {
    const std::vector<SchedJobInfo> jobs =
        BuildJobInfos(reports, optimizer_.cluster().TotalGpus());
    const GeneticOptimizer::Result result = optimizer_.Optimize(jobs);
    last_utility_ = result.utility;
    last_fitness_ = result.fitness;
    for (size_t j = 0; j < jobs.size(); ++j) {
      allocations[jobs[j].job_id] = result.best.Row(j);
    }
    // Graceful degradation: never apply an allocation that overflows the
    // (possibly fault-degraded) cluster, and never let one runaway GA round
    // stall the whole scheduler past its budget — fall back to the last
    // known-feasible allocation projected onto surviving nodes.
    fallback = !AllocationsFeasible(optimizer_.cluster(), allocations);
    if (!fallback && config_.round_time_budget > 0.0) {
      const double ga_elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - round_start)
              .count();
      fallback = ga_elapsed > config_.round_time_budget;
    }
    if (fallback) {
      ++fallback_rounds_;
      allocations = ProjectOntoCluster(reports);
    }
  }
  if (lease_mode || config_.naive_masking) {
    ApplyLeaseOverrides(reports, lease, &allocations);
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - round_start).count();
  if (obs::MetricsRegistry::Global().enabled()) {
    const SchedMetrics& metrics = SchedMetrics::Get();
    metrics.rounds->Add();
    if (fallback) {
      metrics.fallback_rounds->Add();
    }
    if (degraded) {
      metrics.degraded_rounds->Add();
    }
    metrics.lease_expirations->Add(lease_expirations_ - expirations_before);
    metrics.lease_evictions->Add(lease_evictions_ - evictions_before);
    metrics.dup_reports->Add(dup_reports_ - dups_before);
    metrics.lease_held_jobs->Set(static_cast<double>(held));
    metrics.lease_coverage->Set(coverage);
    metrics.round_time_s->Record(elapsed);
    metrics.last_utility->Set(last_utility_);
    metrics.last_fitness->Set(last_fitness_);
    const EvalCacheStats tables = table_cache_.Stats();
    metrics.table_cache_hits->Set(static_cast<double>(tables.hits));
    metrics.table_cache_misses->Set(static_cast<double>(tables.misses));
    metrics.table_cache_hit_rate->Set(tables.HitRate());
    const EvalCacheStats evals = optimizer_.cache_stats();
    metrics.eval_cache_hits->Set(static_cast<double>(evals.hits));
    metrics.eval_cache_misses->Set(static_cast<double>(evals.misses));
    metrics.eval_cache_hit_rate->Set(evals.HitRate());
  }
  return allocations;
}

bool PolluxSched::AllocationsFeasible(
    const ClusterSpec& cluster, const std::map<uint64_t, std::vector<int>>& allocations) {
  const size_t num_nodes = cluster.gpus_per_node.size();
  std::vector<int> usage(num_nodes, 0);
  for (const auto& [job_id, row] : allocations) {
    if (row.size() > num_nodes) {
      return false;
    }
    for (size_t n = 0; n < row.size(); ++n) {
      if (row[n] < 0) {
        return false;
      }
      usage[n] += row[n];
      if (usage[n] > cluster.gpus_per_node[n]) {
        return false;
      }
    }
  }
  return true;
}

std::vector<PolluxSched::Lease> PolluxSched::ClassifyLeases(
    const std::vector<SchedJobReport>& reports) {
  std::vector<Lease> lease(reports.size(), Lease::kFresh);
  const bool lease_mode = config_.lease_intervals > 0 && !config_.naive_masking;
  if (!lease_mode && !config_.naive_masking) {
    return lease;
  }
  const double lease_age = config_.lease_intervals * config_.report_interval;
  std::map<uint64_t, JobTelemetry> next;
  for (size_t i = 0; i < reports.size(); ++i) {
    const SchedJobReport& report = reports[i];
    if (config_.naive_masking) {
      if (config_.stale_report_age > 0.0 && report.report_age > config_.stale_report_age) {
        lease[i] = Lease::kEvicted;
      }
    } else if (report.report_age > lease_age + config_.lease_grace) {
      lease[i] = Lease::kEvicted;
    } else if (report.report_age > lease_age) {
      lease[i] = Lease::kHeld;
    }
    const auto prev = telemetry_.find(report.agent.job_id);
    JobTelemetry telemetry;
    if (prev != telemetry_.end()) {
      // Monotonic-staleness tracking: a seq that failed to advance means the
      // round ran on the same (or duplicate) telemetry as the previous one.
      if (report.seq > 0 && report.seq <= prev->second.last_seq) {
        ++dup_reports_;
      }
      telemetry.last_seq = std::max(report.seq, prev->second.last_seq);
      const Lease was = static_cast<Lease>(prev->second.last_class);
      if (lease[i] == Lease::kHeld && was == Lease::kFresh) {
        ++lease_expirations_;
      }
      if (lease[i] == Lease::kEvicted && was != Lease::kEvicted) {
        ++lease_evictions_;
      }
    } else {
      telemetry.last_seq = report.seq;
      if (lease[i] == Lease::kHeld) {
        ++lease_expirations_;
      }
      if (lease[i] == Lease::kEvicted) {
        ++lease_evictions_;
      }
    }
    telemetry.last_class = static_cast<uint32_t>(lease[i]);
    next[report.agent.job_id] = telemetry;
  }
  // Finished jobs drop out of the reports; prune their telemetry.
  telemetry_ = std::move(next);
  return lease;
}

std::map<uint64_t, std::vector<int>> PolluxSched::DegradedRound(
    const std::vector<SchedJobReport>& reports, const std::vector<Lease>& lease) const {
  const ClusterSpec& cluster = optimizer_.cluster();
  const size_t num_nodes = cluster.gpus_per_node.size();
  std::map<uint64_t, std::vector<int>> allocations;
  ClusterSpec residual = cluster;
  std::vector<size_t> queued;
  for (size_t i = 0; i < reports.size(); ++i) {
    const SchedJobReport& report = reports[i];
    std::vector<int> row = report.current_allocation;
    row.resize(num_nodes, 0);
    int total = 0;
    for (int gpus : row) {
      total += gpus;
    }
    if (lease[i] != Lease::kEvicted && total > 0) {
      // Warm and not reclaimed: freeze verbatim, whatever the lease state.
      for (size_t n = 0; n < num_nodes; ++n) {
        residual.gpus_per_node[n] = std::max(0, residual.gpus_per_node[n] - row[n]);
      }
      allocations[report.agent.job_id] = std::move(row);
      continue;
    }
    allocations[report.agent.job_id] = std::vector<int>(num_nodes, 0);
    if (lease[i] == Lease::kFresh) {
      queued.push_back(i);
    }
  }
  if (queued.empty() || residual.TotalGpus() <= 0) {
    return allocations;
  }
  // Re-optimize only the fresh queued jobs over the residual capacity with a
  // probe GA (fresh seed each round; the persisted population's matrix shape
  // does not match this sub-problem).
  std::vector<SchedJobReport> fresh_reports;
  fresh_reports.reserve(queued.size());
  for (size_t i : queued) {
    fresh_reports.push_back(reports[i]);
  }
  const std::vector<SchedJobInfo> jobs = BuildJobInfos(fresh_reports, residual.TotalGpus());
  GaOptions options = config_.ga;
  options.generations = std::max(1, options.generations / 4);
  GeneticOptimizer probe(residual, options);
  const GeneticOptimizer::Result result = probe.Optimize(jobs);
  for (size_t j = 0; j < jobs.size(); ++j) {
    allocations[jobs[j].job_id] = result.best.Row(j);
  }
  return allocations;
}

void PolluxSched::ApplyLeaseOverrides(const std::vector<SchedJobReport>& reports,
                                      const std::vector<Lease>& lease,
                                      std::map<uint64_t, std::vector<int>>* allocations) const {
  const ClusterSpec& cluster = optimizer_.cluster();
  const size_t num_nodes = cluster.gpus_per_node.size();
  std::vector<int> free = cluster.gpus_per_node;
  // Pin held rows first: a held job keeps exactly what it physically holds,
  // even on a node the lease view has masked (the allocation is real; the
  // scheduler just cannot hear about it). Free capacity may go negative on
  // such nodes, which correctly starves fresh jobs off them.
  for (size_t i = 0; i < reports.size(); ++i) {
    const SchedJobReport& report = reports[i];
    if (lease[i] == Lease::kHeld) {
      std::vector<int> row = report.current_allocation;
      row.resize(num_nodes, 0);
      for (size_t n = 0; n < num_nodes; ++n) {
        free[n] -= row[n];
      }
      (*allocations)[report.agent.job_id] = std::move(row);
    } else if (lease[i] == Lease::kEvicted) {
      (*allocations)[report.agent.job_id] = std::vector<int>(num_nodes, 0);
    }
  }
  for (size_t i = 0; i < reports.size(); ++i) {
    if (lease[i] != Lease::kFresh) {
      continue;
    }
    std::vector<int>& row = (*allocations)[reports[i].agent.job_id];
    row.resize(num_nodes, 0);
    for (size_t n = 0; n < num_nodes; ++n) {
      row[n] = std::clamp(row[n], 0, std::max(free[n], 0));
      free[n] -= row[n];
    }
  }
}

std::map<uint64_t, std::vector<int>> PolluxSched::ProjectOntoCluster(
    const std::vector<SchedJobReport>& reports) const {
  const ClusterSpec& cluster = optimizer_.cluster();
  const size_t num_nodes = cluster.gpus_per_node.size();
  std::vector<int> free = cluster.gpus_per_node;
  std::map<uint64_t, std::vector<int>> allocations;
  for (const auto& report : reports) {
    std::vector<int> row = report.current_allocation;
    row.resize(num_nodes, 0);
    for (size_t n = 0; n < num_nodes; ++n) {
      row[n] = std::clamp(row[n], 0, free[n]);
      free[n] -= row[n];
    }
    allocations[report.agent.job_id] = std::move(row);
  }
  return allocations;
}

double PolluxSched::EvaluateUtilityAt(int num_nodes, int gpus_per_node,
                                      const std::vector<SchedJobReport>& reports) const {
  if (reports.empty() || num_nodes <= 0) {
    return 0.0;
  }
  const ClusterSpec hypothetical = ClusterSpec::Homogeneous(num_nodes, gpus_per_node);
  const std::vector<SchedJobInfo> jobs = BuildJobInfos(reports, hypothetical.TotalGpus());
  GaOptions options = config_.ga;
  // A what-if evaluation can afford a smaller budget than the applied round.
  options.generations = std::max(1, options.generations / 4);
  GeneticOptimizer probe(hypothetical, options);
  return probe.Optimize(jobs).utility;
}

void PolluxSched::SetCluster(ClusterSpec cluster) { optimizer_.SetCluster(std::move(cluster)); }

}  // namespace pollux
