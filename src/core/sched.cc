#include "core/sched.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace pollux {
namespace {

// Handles resolved once; every per-round update is a relaxed atomic op.
struct SchedMetrics {
  obs::Counter* rounds;
  obs::Counter* fallback_rounds;
  obs::Counter* degraded_rounds;
  obs::Counter* lease_expirations;
  obs::Counter* lease_evictions;
  obs::Counter* dup_reports;
  obs::Counter* queue_skipped;
  obs::Gauge* lease_held_jobs;
  obs::Gauge* lease_coverage;
  obs::Histogram* round_time_s;
  obs::Gauge* last_utility;
  obs::Gauge* last_fitness;
  obs::Gauge* table_cache_hits;
  obs::Gauge* table_cache_misses;
  obs::Gauge* table_cache_hit_rate;
  obs::Gauge* eval_cache_hits;
  obs::Gauge* eval_cache_misses;
  obs::Gauge* eval_cache_hit_rate;

  static const SchedMetrics& Get() {
    static const SchedMetrics metrics;
    return metrics;
  }

 private:
  SchedMetrics() {
    auto& registry = obs::MetricsRegistry::Global();
    rounds = registry.GetCounter("sched.rounds");
    fallback_rounds = registry.GetCounter("sched.fallback_rounds");
    degraded_rounds = registry.GetCounter("sched.degraded_rounds");
    lease_expirations = registry.GetCounter("sched.lease.expirations");
    lease_evictions = registry.GetCounter("sched.lease.evictions");
    dup_reports = registry.GetCounter("sched.dup_reports");
    queue_skipped = registry.GetCounter("sched.queue.skipped");
    lease_held_jobs = registry.GetGauge("sched.lease.held_jobs");
    lease_coverage = registry.GetGauge("sched.lease.coverage");
    round_time_s = registry.GetHistogram("sched.round_time_s");
    last_utility = registry.GetGauge("sched.last_utility");
    last_fitness = registry.GetGauge("sched.last_fitness");
    table_cache_hits = registry.GetGauge("sched.table_cache.hits");
    table_cache_misses = registry.GetGauge("sched.table_cache.misses");
    table_cache_hit_rate = registry.GetGauge("sched.table_cache.hit_rate");
    eval_cache_hits = registry.GetGauge("sched.eval_cache.hits");
    eval_cache_misses = registry.GetGauge("sched.eval_cache.misses");
    eval_cache_hit_rate = registry.GetGauge("sched.eval_cache.hit_rate");
  }
};

// Coarse log2 quantization of attained GPU-time (minutes doubling per
// bucket). Only used to key the speedup memoization cache: two reports of
// the same job in different buckets never share cache entries, so values
// computed from an earlier model revision cannot leak forward.
uint16_t ProgressBucket(double gpu_time) {
  if (gpu_time <= 0.0) {
    return 0;
  }
  const double bucket = std::floor(std::log2(1.0 + gpu_time / 60.0));
  return static_cast<uint16_t>(std::min(bucket, 1023.0)) + 1;
}

// splitmix64-style mix for deriving per-shard GA seeds from (config seed,
// round, shard index). Every shard solver gets an independent, reproducible
// stream regardless of how shards are distributed across workers.
uint64_t MixSeed(uint64_t seed, uint64_t round, uint64_t shard) {
  uint64_t x = seed + 0x9e3779b97f4a7c15ull * (round + 1) + 0x85ebca6bc2b2ae35ull * (shard + 1);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

// Relative drift between two fitted values, symmetric and safe at zero.
bool Drifted(double now, double then, double rel_tol) {
  const double scale = std::max({std::abs(now), std::abs(then), 1e-12});
  return std::abs(now - then) > rel_tol * scale;
}

}  // namespace

bool SchedModeByName(const std::string& name, SchedMode* mode) {
  if (name == "exact") {
    *mode = SchedMode::kExact;
  } else if (name == "incremental") {
    *mode = SchedMode::kIncremental;
  } else if (name == "first-match") {
    *mode = SchedMode::kFirstMatch;
  } else {
    return false;
  }
  return true;
}

const char* SchedModeName(SchedMode mode) {
  switch (mode) {
    case SchedMode::kIncremental:
      return "incremental";
    case SchedMode::kFirstMatch:
      return "first-match";
    case SchedMode::kExact:
      break;
  }
  return "exact";
}

PolluxSched::PolluxSched(ClusterSpec cluster, SchedConfig config)
    : config_(config), optimizer_(std::move(cluster), config.ga) {}

std::vector<SchedJobInfo> PolluxSched::BuildJobInfos(const std::vector<SchedJobReport>& reports,
                                                     int max_gpus) const {
  std::vector<SchedJobInfo> jobs;
  jobs.reserve(reports.size());
  for (const auto& report : reports) {
    SchedJobInfo info;
    info.job_id = report.agent.job_id;
    // The exploration cap bounds how many GPUs this job can receive, so the
    // speedup table never needs entries beyond it.
    const int table_gpus = std::min(max_gpus, std::max(1, report.agent.max_gpus_cap));
    info.progress_bucket = ProgressBucket(report.gpu_time);
    // The cluster's cross-rack link factor adds a third table regime; flat
    // clusters carry 1.0, which builds exactly the legacy two-regime table.
    info.speedups =
        SpeedupTable(report.agent.model, report.agent.limits, table_gpus,
                     config_.memoize_tables ? &table_cache_ : nullptr, info.job_id,
                     info.progress_bucket, optimizer_.cluster().rack_link_factor);
    info.weight = JobWeight(report.gpu_time, config_.gpu_time_threshold, config_.weight_lambda);
    info.current_allocation = report.current_allocation;
    info.max_gpus_cap = std::max(1, report.agent.max_gpus_cap);
    bool stale = config_.stale_report_age > 0.0 && report.report_age > config_.stale_report_age;
    if (config_.lease_intervals > 0) {
      stale = stale ||
              report.report_age > config_.lease_intervals * config_.report_interval;
    }
    if (stale) {
      // No fresh telemetry: hold the job at (at most) its current size
      // rather than growing it on a goodput model we cannot trust.
      int current = 0;
      for (int gpus : report.current_allocation) {
        current += gpus;
      }
      info.max_gpus_cap = std::max(1, std::min(info.max_gpus_cap, current));
    }
    jobs.push_back(std::move(info));
  }
  return jobs;
}

std::map<uint64_t, std::vector<int>> PolluxSched::Schedule(
    const std::vector<SchedJobReport>& reports) {
  std::map<uint64_t, std::vector<int>> allocations;
  if (reports.empty()) {
    last_utility_ = 0.0;
    last_fitness_ = 0.0;
    return allocations;
  }
  TRACE_SCOPE("sched_round");
  const auto round_start = std::chrono::steady_clock::now();
  const bool lease_mode = config_.lease_intervals > 0 && !config_.naive_masking;
  const uint64_t expirations_before = lease_expirations_;
  const uint64_t evictions_before = lease_evictions_;
  const uint64_t dups_before = dup_reports_;
  const uint64_t queue_skipped_before = queue_skipped_;
  const std::vector<Lease> lease = ClassifyLeases(reports);
  size_t fresh = 0;
  size_t held = 0;
  for (Lease state : lease) {
    fresh += state == Lease::kFresh ? 1 : 0;
    held += state == Lease::kHeld ? 1 : 0;
  }
  const double coverage = static_cast<double>(fresh) / static_cast<double>(reports.size());
  const bool degraded =
      lease_mode && config_.degraded_coverage > 0.0 && coverage < config_.degraded_coverage;
  bool fallback = false;
  if (degraded) {
    // Too little of the fleet is reporting to trust a full re-optimization:
    // freeze what is warm, pack only the fresh queued jobs.
    ++degraded_rounds_;
    allocations = DegradedRound(reports, lease);
  } else if (config_.mode == SchedMode::kFirstMatch) {
    // Greedy placement: no speedup tables, no GA, no utility estimate. The
    // returned map is sparse — unchanged jobs keep their allocation by
    // omission (the Scheduler contract).
    allocations = FirstMatchRound(reports);
    last_utility_ = 0.0;
    last_fitness_ = 0.0;
  } else if (config_.mode == SchedMode::kIncremental) {
    // Re-optimize only the dirty subset; feasibility holds by construction
    // (clean rows are charged before shard capacities are carved out).
    allocations = IncrementalRound(reports);
  } else {
    const std::vector<SchedJobInfo> jobs =
        BuildJobInfos(reports, optimizer_.cluster().TotalGpus());
    const GeneticOptimizer::Result result = optimizer_.Optimize(jobs);
    last_utility_ = result.utility;
    last_fitness_ = result.fitness;
    for (size_t j = 0; j < jobs.size(); ++j) {
      allocations[jobs[j].job_id] = result.best.Row(j);
    }
    // Graceful degradation: never apply an allocation that overflows the
    // (possibly fault-degraded) cluster, and never let one runaway GA round
    // stall the whole scheduler past its budget — fall back to the last
    // known-feasible allocation projected onto surviving nodes.
    fallback = !AllocationsFeasible(optimizer_.cluster(), allocations);
    if (!fallback && config_.round_time_budget > 0.0) {
      const double ga_elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - round_start)
              .count();
      fallback = ga_elapsed > config_.round_time_budget;
    }
    if (fallback) {
      ++fallback_rounds_;
      allocations = ProjectOntoCluster(reports);
    }
  }
  if (lease_mode || config_.naive_masking) {
    ApplyLeaseOverrides(reports, lease, &allocations);
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - round_start).count();
  if (obs::MetricsRegistry::Global().enabled()) {
    const SchedMetrics& metrics = SchedMetrics::Get();
    metrics.rounds->Add();
    if (fallback) {
      metrics.fallback_rounds->Add();
    }
    if (degraded) {
      metrics.degraded_rounds->Add();
    }
    metrics.lease_expirations->Add(lease_expirations_ - expirations_before);
    metrics.lease_evictions->Add(lease_evictions_ - evictions_before);
    metrics.dup_reports->Add(dup_reports_ - dups_before);
    metrics.queue_skipped->Add(queue_skipped_ - queue_skipped_before);
    metrics.lease_held_jobs->Set(static_cast<double>(held));
    metrics.lease_coverage->Set(coverage);
    metrics.round_time_s->Record(elapsed);
    metrics.last_utility->Set(last_utility_);
    metrics.last_fitness->Set(last_fitness_);
    const EvalCacheStats tables = table_cache_.Stats();
    metrics.table_cache_hits->Set(static_cast<double>(tables.hits));
    metrics.table_cache_misses->Set(static_cast<double>(tables.misses));
    metrics.table_cache_hit_rate->Set(tables.HitRate());
    const EvalCacheStats evals = optimizer_.cache_stats();
    metrics.eval_cache_hits->Set(static_cast<double>(evals.hits));
    metrics.eval_cache_misses->Set(static_cast<double>(evals.misses));
    metrics.eval_cache_hit_rate->Set(evals.HitRate());
  }
  return allocations;
}

bool PolluxSched::AllocationsFeasible(
    const ClusterSpec& cluster, const std::map<uint64_t, std::vector<int>>& allocations) {
  const size_t num_nodes = cluster.gpus_per_node.size();
  std::vector<int> usage(num_nodes, 0);
  for (const auto& [job_id, row] : allocations) {
    if (row.size() > num_nodes) {
      return false;
    }
    for (size_t n = 0; n < row.size(); ++n) {
      if (row[n] < 0) {
        return false;
      }
      usage[n] += row[n];
      if (usage[n] > cluster.gpus_per_node[n]) {
        return false;
      }
    }
  }
  return true;
}

std::vector<PolluxSched::Lease> PolluxSched::ClassifyLeases(
    const std::vector<SchedJobReport>& reports) {
  std::vector<Lease> lease(reports.size(), Lease::kFresh);
  const bool lease_mode = config_.lease_intervals > 0 && !config_.naive_masking;
  if (!lease_mode && !config_.naive_masking) {
    return lease;
  }
  const double lease_age = config_.lease_intervals * config_.report_interval;
  std::map<uint64_t, JobTelemetry> next;
  for (size_t i = 0; i < reports.size(); ++i) {
    const SchedJobReport& report = reports[i];
    if (config_.naive_masking) {
      if (config_.stale_report_age > 0.0 && report.report_age > config_.stale_report_age) {
        lease[i] = Lease::kEvicted;
      }
    } else if (report.report_age > lease_age + config_.lease_grace) {
      lease[i] = Lease::kEvicted;
    } else if (report.report_age > lease_age) {
      lease[i] = Lease::kHeld;
    }
    const auto prev = telemetry_.find(report.agent.job_id);
    JobTelemetry telemetry;
    if (prev != telemetry_.end()) {
      // Monotonic-staleness tracking: a seq that failed to advance means the
      // round ran on the same (or duplicate) telemetry as the previous one.
      if (report.seq > 0 && report.seq <= prev->second.last_seq) {
        ++dup_reports_;
      }
      telemetry.last_seq = std::max(report.seq, prev->second.last_seq);
      const Lease was = static_cast<Lease>(prev->second.last_class);
      if (lease[i] == Lease::kHeld && was == Lease::kFresh) {
        ++lease_expirations_;
      }
      if (lease[i] == Lease::kEvicted && was != Lease::kEvicted) {
        ++lease_evictions_;
      }
    } else {
      telemetry.last_seq = report.seq;
      if (lease[i] == Lease::kHeld) {
        ++lease_expirations_;
      }
      if (lease[i] == Lease::kEvicted) {
        ++lease_evictions_;
      }
    }
    telemetry.last_class = static_cast<uint32_t>(lease[i]);
    next[report.agent.job_id] = telemetry;
  }
  // Finished jobs drop out of the reports; prune their telemetry.
  telemetry_ = std::move(next);
  return lease;
}

std::map<uint64_t, std::vector<int>> PolluxSched::DegradedRound(
    const std::vector<SchedJobReport>& reports, const std::vector<Lease>& lease) const {
  const ClusterSpec& cluster = optimizer_.cluster();
  const size_t num_nodes = cluster.gpus_per_node.size();
  std::map<uint64_t, std::vector<int>> allocations;
  ClusterSpec residual = cluster;
  std::vector<size_t> queued;
  for (size_t i = 0; i < reports.size(); ++i) {
    const SchedJobReport& report = reports[i];
    std::vector<int> row = report.current_allocation;
    row.resize(num_nodes, 0);
    int total = 0;
    for (int gpus : row) {
      total += gpus;
    }
    if (lease[i] != Lease::kEvicted && total > 0) {
      // Warm and not reclaimed: freeze verbatim, whatever the lease state.
      for (size_t n = 0; n < num_nodes; ++n) {
        residual.gpus_per_node[n] = std::max(0, residual.gpus_per_node[n] - row[n]);
      }
      allocations[report.agent.job_id] = std::move(row);
      continue;
    }
    allocations[report.agent.job_id] = std::vector<int>(num_nodes, 0);
    if (lease[i] == Lease::kFresh) {
      queued.push_back(i);
    }
  }
  if (queued.empty() || residual.TotalGpus() <= 0) {
    return allocations;
  }
  // Re-optimize only the fresh queued jobs over the residual capacity with a
  // probe GA (fresh seed each round; the persisted population's matrix shape
  // does not match this sub-problem).
  std::vector<SchedJobReport> fresh_reports;
  fresh_reports.reserve(queued.size());
  for (size_t i : queued) {
    fresh_reports.push_back(reports[i]);
  }
  const std::vector<SchedJobInfo> jobs = BuildJobInfos(fresh_reports, residual.TotalGpus());
  GaOptions options = config_.ga;
  options.generations = std::max(1, options.generations / 4);
  GeneticOptimizer probe(residual, options);
  const GeneticOptimizer::Result result = probe.Optimize(jobs);
  for (size_t j = 0; j < jobs.size(); ++j) {
    allocations[jobs[j].job_id] = result.best.Row(j);
  }
  return allocations;
}

void PolluxSched::ApplyLeaseOverrides(const std::vector<SchedJobReport>& reports,
                                      const std::vector<Lease>& lease,
                                      std::map<uint64_t, std::vector<int>>* allocations) const {
  const ClusterSpec& cluster = optimizer_.cluster();
  const size_t num_nodes = cluster.gpus_per_node.size();
  std::vector<int> free = cluster.gpus_per_node;
  // Pin held rows first: a held job keeps exactly what it physically holds,
  // even on a node the lease view has masked (the allocation is real; the
  // scheduler just cannot hear about it). Free capacity may go negative on
  // such nodes, which correctly starves fresh jobs off them.
  for (size_t i = 0; i < reports.size(); ++i) {
    const SchedJobReport& report = reports[i];
    if (lease[i] == Lease::kHeld) {
      std::vector<int> row = report.current_allocation;
      row.resize(num_nodes, 0);
      for (size_t n = 0; n < num_nodes; ++n) {
        free[n] -= row[n];
      }
      (*allocations)[report.agent.job_id] = std::move(row);
    } else if (lease[i] == Lease::kEvicted) {
      (*allocations)[report.agent.job_id] = std::vector<int>(num_nodes, 0);
    }
  }
  // Fresh jobs omitted from a sparse map (incremental/first-match modes)
  // keep their current allocation: charge it against the free capacity
  // before clamping the rows that are present. In exact mode every job has
  // a row, so this loop never fires and behavior is unchanged.
  for (size_t i = 0; i < reports.size(); ++i) {
    if (lease[i] != Lease::kFresh ||
        allocations->find(reports[i].agent.job_id) != allocations->end()) {
      continue;
    }
    const std::vector<int>& row = reports[i].current_allocation;
    for (size_t n = 0; n < row.size() && n < num_nodes; ++n) {
      free[n] -= row[n];
    }
  }
  for (size_t i = 0; i < reports.size(); ++i) {
    if (lease[i] != Lease::kFresh) {
      continue;
    }
    const auto it = allocations->find(reports[i].agent.job_id);
    if (it == allocations->end()) {
      continue;
    }
    std::vector<int>& row = it->second;
    row.resize(num_nodes, 0);
    for (size_t n = 0; n < num_nodes; ++n) {
      row[n] = std::clamp(row[n], 0, std::max(free[n], 0));
      free[n] -= row[n];
    }
  }
}

std::map<uint64_t, std::vector<int>> PolluxSched::ProjectOntoCluster(
    const std::vector<SchedJobReport>& reports) const {
  const ClusterSpec& cluster = optimizer_.cluster();
  const size_t num_nodes = cluster.gpus_per_node.size();
  std::vector<int> free = cluster.gpus_per_node;
  std::map<uint64_t, std::vector<int>> allocations;
  for (const auto& report : reports) {
    std::vector<int> row = report.current_allocation;
    row.resize(num_nodes, 0);
    for (size_t n = 0; n < num_nodes; ++n) {
      row[n] = std::clamp(row[n], 0, free[n]);
      free[n] -= row[n];
    }
    allocations[report.agent.job_id] = std::move(row);
  }
  return allocations;
}

double PolluxSched::EvaluateUtilityAt(int num_nodes, int gpus_per_node,
                                      const std::vector<SchedJobReport>& reports) const {
  if (reports.empty() || num_nodes <= 0) {
    return 0.0;
  }
  const ClusterSpec hypothetical = ClusterSpec::Homogeneous(num_nodes, gpus_per_node);
  const std::vector<SchedJobInfo> jobs = BuildJobInfos(reports, hypothetical.TotalGpus());
  GaOptions options = config_.ga;
  // A what-if evaluation can afford a smaller budget than the applied round.
  options.generations = std::max(1, options.generations / 4);
  GeneticOptimizer probe(hypothetical, options);
  return probe.Optimize(jobs).utility;
}

void PolluxSched::SetCluster(ClusterSpec cluster) {
  optimizer_.SetCluster(std::move(cluster));
  // Capacity changed: every incremental snapshot is stale (rows may overflow
  // the new cluster and shard capacities were carved from the old one), so
  // the next incremental round re-optimizes everything.
  opt_state_.clear();
}

std::map<uint64_t, std::vector<int>> PolluxSched::FirstMatchRound(
    const std::vector<SchedJobReport>& reports) const {
  const ClusterSpec& cluster = optimizer_.cluster();
  const size_t num_nodes = cluster.gpus_per_node.size();
  std::vector<int> free = cluster.gpus_per_node;
  std::map<uint64_t, std::vector<int>> allocations;
  // Pass 1: running jobs keep their allocation (projected onto surviving
  // capacity, in report order) and grow in place toward their exploration
  // cap using free GPUs on nodes they already occupy. Only changed rows are
  // emitted.
  struct Queued {
    size_t index;
    int want;
  };
  std::vector<Queued> queued;
  for (size_t i = 0; i < reports.size(); ++i) {
    const SchedJobReport& report = reports[i];
    const int cap = std::max(1, report.agent.max_gpus_cap);
    std::vector<int> row = report.current_allocation;
    row.resize(num_nodes, 0);
    bool changed = false;
    int total = 0;
    for (size_t n = 0; n < num_nodes; ++n) {
      const int clamped = std::clamp(row[n], 0, free[n]);
      if (clamped != row[n]) {
        row[n] = clamped;
        changed = true;
      }
      free[n] -= row[n];
      total += row[n];
    }
    if (total == 0) {
      queued.push_back({i, cap});
      continue;
    }
    int grow = cap - total;
    for (size_t n = 0; n < num_nodes && grow > 0; ++n) {
      if (row[n] > 0 && free[n] > 0) {
        const int add = std::min(grow, free[n]);
        row[n] += add;
        free[n] -= add;
        grow -= add;
        changed = true;
      }
    }
    if (changed) {
      allocations[report.agent.job_id] = std::move(row);
    }
  }
  // Pass 2: queued jobs (report order) take GPUs on the first node with
  // free capacity. The cursor only advances, so the whole pass is O(jobs +
  // nodes) even on 10k-node clusters.
  size_t cursor = 0;
  for (const Queued& q : queued) {
    while (cursor < num_nodes && free[cursor] <= 0) {
      ++cursor;
    }
    if (cursor == num_nodes) {
      break;  // Cluster full; the rest stay queued (omitted == unchanged).
    }
    std::vector<int> row(num_nodes, 0);
    const int give = std::min(q.want, free[cursor]);
    row[cursor] = give;
    free[cursor] -= give;
    allocations[reports[q.index].agent.job_id] = std::move(row);
  }
  return allocations;
}

std::map<uint64_t, std::vector<int>> PolluxSched::IncrementalRound(
    const std::vector<SchedJobReport>& reports) {
  ++incremental_round_;
  const ClusterSpec& cluster = optimizer_.cluster();
  const size_t num_nodes = cluster.gpus_per_node.size();
  const size_t count = reports.size();
  std::map<uint64_t, std::vector<int>> allocations;

  // 1. Dirtiness predicate (DESIGN.md §13): new job, queued, exploration cap
  // moved, progress bucket advanced, fitted model drifted materially, row no
  // longer feasible, or the periodic refresh came due.
  std::vector<char> dirty(count, 0);
  for (size_t i = 0; i < count; ++i) {
    const SchedJobReport& report = reports[i];
    const std::vector<int>& row = report.current_allocation;
    int total = 0;
    bool overflow = false;
    for (size_t n = 0; n < row.size(); ++n) {
      if (n < num_nodes) {
        total += row[n];
      } else if (row[n] > 0) {
        overflow = true;  // Holds GPUs on a node the cluster no longer has.
      }
    }
    const auto it = opt_state_.find(report.agent.job_id);
    bool is_dirty = overflow || it == opt_state_.end() || total == 0;
    if (!is_dirty) {
      const JobOptState& snap = it->second;
      const ThroughputParams& now = report.agent.model.params();
      const ThroughputParams& then = snap.params;
      const double tol = config_.dirty_rel_change;
      is_dirty = std::max(1, report.agent.max_gpus_cap) != snap.cap ||
                 ProgressBucket(report.gpu_time) != snap.bucket ||
                 report.agent.model.base_batch_size() != snap.base_batch ||
                 Drifted(report.agent.model.phi(), snap.phi, tol) ||
                 Drifted(now.alpha_grad, then.alpha_grad, tol) ||
                 Drifted(now.beta_grad, then.beta_grad, tol) ||
                 Drifted(now.alpha_sync_local, then.alpha_sync_local, tol) ||
                 Drifted(now.beta_sync_local, then.beta_sync_local, tol) ||
                 Drifted(now.alpha_sync_node, then.alpha_sync_node, tol) ||
                 Drifted(now.beta_sync_node, then.beta_sync_node, tol) ||
                 Drifted(now.gamma, then.gamma, tol) ||
                 (config_.refresh_rounds > 0 &&
                  snap.rounds_clean + 1 >= static_cast<uint32_t>(config_.refresh_rounds));
    }
    dirty[i] = is_dirty ? 1 : 0;
  }

  // 2. Charge clean rows against capacity, in report order. A clean row that
  // no longer fits (e.g. after a collision caused by a shrink) turns dirty
  // and its GPUs go back into the pool.
  std::vector<int> free = cluster.gpus_per_node;
  for (size_t i = 0; i < count; ++i) {
    if (dirty[i]) {
      continue;
    }
    const std::vector<int>& row = reports[i].current_allocation;
    bool fits = true;
    for (size_t n = 0; n < row.size() && n < num_nodes; ++n) {
      if (row[n] < 0 || row[n] > free[n]) {
        fits = false;
        break;
      }
    }
    if (!fits) {
      dirty[i] = 1;
      continue;
    }
    for (size_t n = 0; n < row.size() && n < num_nodes; ++n) {
      free[n] -= row[n];
    }
  }

  // 2b. Queued-job admission pre-filter (opt-in): during a backlog, queued
  // jobs — always dirty because they hold nothing — would each drag a GA
  // shard into the round even though only free-capacity many can possibly be
  // placed. Admit them in report order while the admitted count stays within
  // the residual free capacity (every placement consumes at least one GPU);
  // the rest are deferred to a later round and stay queued by omission.
  if (config_.queue_admission) {
    int budget = 0;
    for (size_t n = 0; n < num_nodes; ++n) {
      budget += std::max(free[n], 0);
    }
    for (size_t i = 0; i < count; ++i) {
      if (!dirty[i]) {
        continue;
      }
      int total = 0;
      for (int gpus : reports[i].current_allocation) {
        total += gpus;
      }
      if (total > 0) {
        continue;  // Running job: re-optimized for a real reason, not queued.
      }
      if (budget > 0) {
        --budget;
      } else {
        dirty[i] = 0;
        ++queue_skipped_;
      }
    }
  }

  std::vector<size_t> dirty_idx;
  for (size_t i = 0; i < count; ++i) {
    if (dirty[i]) {
      dirty_idx.push_back(i);
    }
  }

  if (!dirty_idx.empty()) {
    // 3. Group dirty jobs into node-disjoint components (union-find over the
    // nodes they currently occupy), so shard GAs never compete for capacity.
    std::vector<size_t> parent(dirty_idx.size());
    for (size_t d = 0; d < parent.size(); ++d) {
      parent[d] = d;
    }
    const auto find_root = [&parent](size_t d) {
      while (parent[d] != d) {
        parent[d] = parent[parent[d]];
        d = parent[d];
      }
      return d;
    };
    std::map<size_t, size_t> node_claim;  // global node -> dirty index
    for (size_t d = 0; d < dirty_idx.size(); ++d) {
      const std::vector<int>& row = reports[dirty_idx[d]].current_allocation;
      for (size_t n = 0; n < row.size() && n < num_nodes; ++n) {
        if (row[n] <= 0) {
          continue;
        }
        const auto claim = node_claim.find(n);
        if (claim == node_claim.end()) {
          node_claim[n] = d;
        } else {
          parent[find_root(d)] = find_root(claim->second);
        }
      }
    }

    // 4. Pack components into shards of up to shard_jobs jobs. Components
    // are visited in first-member order; oversized ones stay whole.
    const size_t target = static_cast<size_t>(std::max(1, config_.shard_jobs));
    std::map<size_t, size_t> root_shard;  // component root -> shard index
    struct Shard {
      std::vector<size_t> members;  // report indexes, ascending
      std::vector<size_t> nodes;    // global node ids, ascending
      int demand = 0;               // sum of member exploration caps
      int capacity = 0;             // free GPUs on claimed nodes
    };
    std::vector<Shard> shards;
    std::vector<size_t> shard_of(dirty_idx.size());
    for (size_t d = 0; d < dirty_idx.size(); ++d) {
      const size_t root = find_root(d);
      auto placed = root_shard.find(root);
      if (placed == root_shard.end()) {
        if (shards.empty() || shards.back().members.size() >= target) {
          shards.emplace_back();
        }
        placed = root_shard.emplace(root, shards.size() - 1).first;
      }
      shard_of[d] = placed->second;
      Shard& shard = shards[placed->second];
      shard.members.push_back(dirty_idx[d]);
      shard.demand += std::max(1, reports[dirty_idx[d]].agent.max_gpus_cap);
    }
    for (const auto& [node, d] : node_claim) {
      Shard& shard = shards[shard_of[find_root(d)]];
      shard.nodes.push_back(node);
      shard.capacity += free[node];
    }

    // 5. Hand unclaimed free nodes round-robin to shards that still need
    // capacity (up to 2x demand, so a queued job's shard can both place and
    // later grow it without dragging thousands of idle nodes into every
    // matrix).
    size_t rr = 0;
    for (size_t n = 0; n < num_nodes; ++n) {
      if (free[n] <= 0 || node_claim.find(n) != node_claim.end()) {
        continue;
      }
      bool placed = false;
      for (size_t probe = 0; probe < shards.size(); ++probe) {
        Shard& shard = shards[(rr + probe) % shards.size()];
        if (shard.capacity < 2 * shard.demand) {
          shard.nodes.push_back(n);
          shard.capacity += free[n];
          rr = (rr + probe + 1) % shards.size();
          placed = true;
          break;
        }
      }
      if (!placed) {
        break;  // Every shard is sated.
      }
    }

    // 6. Solve every shard with its own serial GA over its carved-out
    // capacity. Shards are independent (node-disjoint), so running them on
    // the pool in any order is bit-identical to running them serially.
    struct ShardResult {
      std::vector<uint64_t> job_ids;
      std::vector<std::vector<int>> rows;  // global-width rows
      double utility = 0.0;
      double fitness = 0.0;
    };
    std::vector<ShardResult> results(shards.size());
    if (shard_pool_ == nullptr) {
      shard_pool_ = std::make_unique<ThreadPool>(config_.ga.threads);
    }
    shard_pool_->ParallelFor(0, shards.size(), [&](size_t s) {
      Shard& shard = shards[s];
      if (shard.nodes.empty()) {
        // Every member is queued and the cluster is saturated: emitting no
        // rows keeps them queued (sparse-map omission means "unchanged").
        return;
      }
      std::sort(shard.nodes.begin(), shard.nodes.end());
      ClusterSpec local;
      local.gpus_per_node.reserve(shard.nodes.size());
      for (size_t node : shard.nodes) {
        local.gpus_per_node.push_back(free[node]);
      }
      if (cluster.HasTopology()) {
        // Shard sub-clusters keep their nodes' global rack ids and GPU
        // scales (rack ids need not be dense for the (K, N, R) summaries),
        // so shard GAs stay rack-affine.
        local.rack_link_factor = cluster.rack_link_factor;
        for (size_t node : shard.nodes) {
          const int global = static_cast<int>(node);
          local.rack_of_node.push_back(cluster.RackOf(global));
          local.gpu_type_of_node.push_back(
              global < static_cast<int>(cluster.gpu_type_of_node.size())
                  ? cluster.gpu_type_of_node[global]
                  : 0);
          local.node_gpu_scale.push_back(cluster.GpuScaleOf(global));
        }
      }
      std::vector<SchedJobReport> sub;
      sub.reserve(shard.members.size());
      for (size_t i : shard.members) {
        SchedJobReport report = reports[i];
        std::vector<int> local_row(shard.nodes.size(), 0);
        for (size_t l = 0; l < shard.nodes.size(); ++l) {
          const size_t n = shard.nodes[l];
          if (n < report.current_allocation.size()) {
            local_row[l] = report.current_allocation[n];
          }
        }
        report.current_allocation = std::move(local_row);
        sub.push_back(std::move(report));
      }
      const std::vector<SchedJobInfo> jobs = BuildJobInfos(sub, local.TotalGpus());
      GaOptions options = config_.ga;
      options.threads = 1;
      options.seed = MixSeed(config_.ga.seed, incremental_round_, s);
      GeneticOptimizer solver(std::move(local), options);
      const GeneticOptimizer::Result result = solver.Optimize(jobs);
      ShardResult& out = results[s];
      out.utility = result.utility;
      out.fitness = result.fitness;
      for (size_t j = 0; j < jobs.size(); ++j) {
        out.job_ids.push_back(jobs[j].job_id);
        std::vector<int> row(num_nodes, 0);
        const std::vector<int> local_row = result.best.Row(j);
        for (size_t l = 0; l < local_row.size() && l < shard.nodes.size(); ++l) {
          row[shard.nodes[l]] = local_row[l];
        }
        out.rows.push_back(std::move(row));
      }
    });

    double utility = 0.0;
    double fitness = 0.0;
    for (const ShardResult& result : results) {
      utility += result.utility;
      fitness += result.fitness;
      for (size_t j = 0; j < result.job_ids.size(); ++j) {
        allocations[result.job_ids[j]] = result.rows[j];
      }
    }
    // Shard-sum of Eqn. 17 / Eqn. 14 over the dirty subset only — a partial
    // view, but the natural per-round progress signal for this mode.
    last_utility_ = utility;
    last_fitness_ = fitness;
  }

  // 7. Refresh the snapshots: dirty jobs get a new one from this round's
  // telemetry, clean jobs age, vanished jobs (completions) are pruned.
  std::map<uint64_t, JobOptState> next;
  for (size_t i = 0; i < count; ++i) {
    const SchedJobReport& report = reports[i];
    JobOptState snap;
    if (!dirty[i]) {
      snap = opt_state_[report.agent.job_id];
      ++snap.rounds_clean;
    } else {
      snap.params = report.agent.model.params();
      snap.phi = report.agent.model.phi();
      snap.base_batch = report.agent.model.base_batch_size();
      snap.cap = std::max(1, report.agent.max_gpus_cap);
      snap.bucket = ProgressBucket(report.gpu_time);
      snap.rounds_clean = 0;
    }
    next[report.agent.job_id] = snap;
  }
  opt_state_ = std::move(next);

  // Drop rows identical to what the job already runs with: the sparse-map
  // contract makes omission mean "keep", and the simulator then skips the
  // whole apply path for them.
  for (size_t i = 0; i < count; ++i) {
    const SchedJobReport& report = reports[i];
    const auto it = allocations.find(report.agent.job_id);
    if (it == allocations.end()) {
      continue;
    }
    std::vector<int> current = report.current_allocation;
    current.resize(num_nodes, 0);
    if (it->second == current) {
      allocations.erase(it);
    }
  }
  return allocations;
}

}  // namespace pollux
