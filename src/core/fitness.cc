#include "core/fitness.h"

#include <algorithm>
#include <cmath>

namespace pollux {

double JobWeight(double gpu_time, double threshold, double lambda) {
  if (lambda <= 0.0 || gpu_time <= threshold || threshold <= 0.0) {
    return 1.0;
  }
  return std::pow(threshold / gpu_time, lambda);
}

namespace {

// Raw SPEEDUP_j(K, N), memoized when a cache is supplied. N enters the key
// clamped to {1, 2}: SpeedupTable only distinguishes single-node from
// multi-node, so all N >= 2 shapes share one entry. Unallocated rows (the
// majority when jobs outnumber GPUs) are answered without touching the cache.
double RawSpeedup(const SchedJobInfo& job, const Placement& placement, EvalCache* cache) {
  if (placement.num_gpus <= 0) {
    return 0.0;
  }
  if (cache == nullptr) {
    return job.speedups.At(placement.num_gpus, placement.num_nodes);
  }
  EvalCache::Key key;
  key.job_id = job.job_id;
  key.replicas = static_cast<uint32_t>(placement.num_gpus);
  key.nodes = static_cast<uint16_t>(placement.num_nodes >= 2 ? 2 : 1);
  key.progress_bucket = job.progress_bucket;
  return cache
      ->GetOrCompute(key,
                     [&] {
                       return EvalCache::Value{
                           job.speedups.At(placement.num_gpus, placement.num_nodes), 0};
                     })
      .value;
}

// Topology path: raw SPEEDUP_j(K, regime) memoized under the (K, N, R)
// regime (1 = co-located, 2 = cross-node, 3 = cross-rack), then scaled by the
// slowest GPU generation in the row. Synchronous data parallelism paces every
// replica at the slowest one, so the scale is a min, not a mean.
double RawRackSpeedup(const SchedJobInfo& job, const AllocationMatrix& matrix, size_t row,
                      const ClusterSpec& cluster, EvalCache* cache) {
  const RackPlacement placement = matrix.JobRackPlacement(row, cluster);
  if (placement.num_gpus <= 0) {
    return 0.0;
  }
  double raw;
  if (cache == nullptr) {
    raw = job.speedups.At(placement);
  } else {
    EvalCache::Key key;
    key.job_id = job.job_id;
    key.replicas = static_cast<uint32_t>(placement.num_gpus);
    key.nodes = static_cast<uint16_t>(
        placement.num_racks >= 2 && job.speedups.has_rack_regime() ? 3
        : placement.num_nodes >= 2                                 ? 2
                                                                   : 1);
    key.progress_bucket = job.progress_bucket;
    raw = cache
              ->GetOrCompute(key,
                             [&] { return EvalCache::Value{job.speedups.At(placement), 0}; })
              .value;
  }
  return raw * matrix.JobMinGpuScale(row, cluster);
}

}  // namespace

double PenalizedSpeedup(const SchedJobInfo& job, const AllocationMatrix& matrix, size_t row,
                        double restart_penalty, EvalCache* cache, const ClusterSpec* cluster) {
  double speedup;
  if (cluster != nullptr && cluster->HasTopology()) {
    speedup = RawRackSpeedup(job, matrix, row, *cluster, cache);
  } else {
    const Placement placement = matrix.JobPlacement(row);
    speedup = RawSpeedup(job, placement, cache);
  }
  if (!job.current_allocation.empty()) {
    bool changed = false;
    for (size_t n = 0; n < matrix.num_nodes(); ++n) {
      const int previous =
          n < job.current_allocation.size() ? job.current_allocation[n] : 0;
      if (matrix.at(row, n) != previous) {
        changed = true;
        break;
      }
    }
    if (changed) {
      speedup -= restart_penalty;
    }
  }
  return speedup;
}

double Fitness(const std::vector<SchedJobInfo>& jobs, const AllocationMatrix& matrix,
               double restart_penalty, EvalCache* cache, const ClusterSpec* cluster) {
  double weighted = 0.0;
  double total_weight = 0.0;
  for (size_t j = 0; j < jobs.size(); ++j) {
    weighted +=
        jobs[j].weight * PenalizedSpeedup(jobs[j], matrix, j, restart_penalty, cache, cluster);
    total_weight += jobs[j].weight;
  }
  return total_weight > 0.0 ? weighted / total_weight : 0.0;
}

double Utility(const std::vector<SchedJobInfo>& jobs, const AllocationMatrix& matrix,
               int total_gpus, const ClusterSpec* cluster) {
  if (total_gpus <= 0) {
    return 0.0;
  }
  const bool topology = cluster != nullptr && cluster->HasTopology();
  double total = 0.0;
  for (size_t j = 0; j < jobs.size(); ++j) {
    if (topology) {
      total += jobs[j].speedups.At(matrix.JobRackPlacement(j, *cluster)) *
               matrix.JobMinGpuScale(j, *cluster);
    } else {
      const Placement placement = matrix.JobPlacement(j);
      total += jobs[j].speedups.At(placement.num_gpus, placement.num_nodes);
    }
  }
  return total / static_cast<double>(total_gpus);
}

}  // namespace pollux
