#include "core/fitness.h"

#include <algorithm>
#include <cmath>

namespace pollux {

double JobWeight(double gpu_time, double threshold, double lambda) {
  if (lambda <= 0.0 || gpu_time <= threshold || threshold <= 0.0) {
    return 1.0;
  }
  return std::pow(threshold / gpu_time, lambda);
}

double PenalizedSpeedup(const SchedJobInfo& job, const AllocationMatrix& matrix, size_t row,
                        double restart_penalty) {
  const Placement placement = matrix.JobPlacement(row);
  double speedup = job.speedups.At(placement.num_gpus, placement.num_nodes);
  if (!job.current_allocation.empty()) {
    bool changed = false;
    for (size_t n = 0; n < matrix.num_nodes(); ++n) {
      const int previous =
          n < job.current_allocation.size() ? job.current_allocation[n] : 0;
      if (matrix.at(row, n) != previous) {
        changed = true;
        break;
      }
    }
    if (changed) {
      speedup -= restart_penalty;
    }
  }
  return speedup;
}

double Fitness(const std::vector<SchedJobInfo>& jobs, const AllocationMatrix& matrix,
               double restart_penalty) {
  double weighted = 0.0;
  double total_weight = 0.0;
  for (size_t j = 0; j < jobs.size(); ++j) {
    weighted += jobs[j].weight * PenalizedSpeedup(jobs[j], matrix, j, restart_penalty);
    total_weight += jobs[j].weight;
  }
  return total_weight > 0.0 ? weighted / total_weight : 0.0;
}

double Utility(const std::vector<SchedJobInfo>& jobs, const AllocationMatrix& matrix,
               int total_gpus) {
  if (total_gpus <= 0) {
    return 0.0;
  }
  double total = 0.0;
  for (size_t j = 0; j < jobs.size(); ++j) {
    const Placement placement = matrix.JobPlacement(j);
    total += jobs[j].speedups.At(placement.num_gpus, placement.num_nodes);
  }
  return total / static_cast<double>(total_gpus);
}

}  // namespace pollux
