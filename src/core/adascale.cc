#include "core/adascale.h"

#include "core/efficiency.h"

namespace pollux {

AdaScaleState::AdaScaleState(long base_batch_size, double base_lr, double smoothing)
    : base_batch_size_(base_batch_size), base_lr_(base_lr), tracker_(smoothing) {}

double AdaScaleState::Update(const GnsSample& sample, long batch_size) {
  tracker_.AddSample(sample);
  const double gain = GainAt(batch_size);
  scale_invariant_iterations_ += gain;
  ++steps_;
  return gain;
}

double AdaScaleState::GainAt(long batch_size) const {
  return AdaScaleGain(tracker_.Phi(), static_cast<double>(base_batch_size_),
                      static_cast<double>(batch_size));
}

double AdaScaleState::LearningRateAt(long batch_size) const {
  return base_lr_ * GainAt(batch_size);
}

double AdaScaleState::EfficiencyAt(long batch_size) const {
  return StatisticalEfficiency(tracker_.Phi(), static_cast<double>(base_batch_size_),
                               static_cast<double>(batch_size));
}

}  // namespace pollux
