// Cluster shape and allocation matrices (Sec. 4.2).
//
// An AllocationMatrix A has one row per job and one column per node; A[j][n]
// is the number of GPUs on node n allocated to job j. PolluxSched's genetic
// algorithm evolves a population of these matrices.

#ifndef POLLUX_CORE_ALLOCATION_H_
#define POLLUX_CORE_ALLOCATION_H_

#include <cstddef>
#include <vector>

#include "core/rack_model.h"
#include "core/types.h"

namespace pollux {

// Physical cluster shape: GPUs available on each node, plus optional topology
// annotations (rack -> node -> GPU with mixed generations; DESIGN.md sec. 14).
struct ClusterSpec {
  std::vector<int> gpus_per_node;

  // Topology annotations. Empty `rack_of_node` selects the legacy flat
  // single-rack homogeneous model; every consumer gates on HasTopology(), so
  // flat configs stay byte-identical to pre-topology builds.
  std::vector<int> rack_of_node;       // Rack id per node.
  std::vector<int> gpu_type_of_node;   // GpuType per node (for reporting/serialization).
  std::vector<double> node_gpu_scale;  // Relative GPU throughput per node (1.0 baseline).
  double rack_link_factor = 1.0;       // Cross-rack multiplier on node-tier sync cost.

  int NumNodes() const { return static_cast<int>(gpus_per_node.size()); }
  int TotalGpus() const {
    int total = 0;
    for (int g : gpus_per_node) {
      total += g;
    }
    return total;
  }
  int MaxGpusPerNode() const {
    int best = 0;
    for (int g : gpus_per_node) {
      best = best > g ? best : g;
    }
    return best;
  }

  bool HasTopology() const { return !rack_of_node.empty(); }
  int NumRacks() const;
  int RackOf(int node) const {
    return node >= 0 && node < static_cast<int>(rack_of_node.size()) ? rack_of_node[node] : 0;
  }
  double GpuScaleOf(int node) const {
    return node >= 0 && node < static_cast<int>(node_gpu_scale.size()) ? node_gpu_scale[node]
                                                                       : 1.0;
  }
  // Flat view with the annotations stripped: what a topology-blind scheduler
  // sees in the bench_topology A/B baseline arm.
  ClusterSpec WithoutTopology() const;

  // Homogeneous helper: `nodes` nodes with `gpus` GPUs each.
  static ClusterSpec Homogeneous(int nodes, int gpus);

  bool operator==(const ClusterSpec&) const = default;
};

class AllocationMatrix {
 public:
  AllocationMatrix() = default;
  AllocationMatrix(size_t num_jobs, size_t num_nodes);

  int& at(size_t job, size_t node) { return cells_[job * num_nodes_ + node]; }
  int at(size_t job, size_t node) const { return cells_[job * num_nodes_ + node]; }

  size_t num_jobs() const { return num_jobs_; }
  size_t num_nodes() const { return num_nodes_; }

  // Row accessors.
  std::vector<int> Row(size_t job) const;
  void SetRow(size_t job, const std::vector<int>& row);

  // K and N for one job (Eqn. 10's placement summary).
  Placement JobPlacement(size_t job) const;

  // (K, N, R) summary under the cluster's rack map. Flat clusters report
  // R = min(N, 1), so Flatten() round-trips to JobPlacement().
  RackPlacement JobRackPlacement(size_t job, const ClusterSpec& cluster) const;

  // Slowest GPU generation the job touches: min node_gpu_scale over occupied
  // nodes (1.0 when unallocated or on a flat cluster). Synchronous data
  // parallelism paces every replica at the slowest one.
  double JobMinGpuScale(size_t job, const ClusterSpec& cluster) const;

  // Total GPUs requested on each node across all jobs.
  std::vector<int> NodeUsage() const;

  // True when no node is over-committed.
  bool WithinCapacity(const ClusterSpec& cluster) const;

  // True when job j occupies >= 2 nodes (a "distributed job" for the
  // interference-avoidance constraint).
  bool IsDistributed(size_t job) const { return JobPlacement(job).num_nodes >= 2; }

  bool operator==(const AllocationMatrix&) const = default;

 private:
  size_t num_jobs_ = 0;
  size_t num_nodes_ = 0;
  std::vector<int> cells_;
};

}  // namespace pollux

#endif  // POLLUX_CORE_ALLOCATION_H_
