// Cluster shape and allocation matrices (Sec. 4.2).
//
// An AllocationMatrix A has one row per job and one column per node; A[j][n]
// is the number of GPUs on node n allocated to job j. PolluxSched's genetic
// algorithm evolves a population of these matrices.

#ifndef POLLUX_CORE_ALLOCATION_H_
#define POLLUX_CORE_ALLOCATION_H_

#include <cstddef>
#include <vector>

#include "core/types.h"

namespace pollux {

// Physical cluster shape: GPUs available on each node.
struct ClusterSpec {
  std::vector<int> gpus_per_node;

  int NumNodes() const { return static_cast<int>(gpus_per_node.size()); }
  int TotalGpus() const {
    int total = 0;
    for (int g : gpus_per_node) {
      total += g;
    }
    return total;
  }
  int MaxGpusPerNode() const {
    int best = 0;
    for (int g : gpus_per_node) {
      best = best > g ? best : g;
    }
    return best;
  }

  // Homogeneous helper: `nodes` nodes with `gpus` GPUs each.
  static ClusterSpec Homogeneous(int nodes, int gpus);

  bool operator==(const ClusterSpec&) const = default;
};

class AllocationMatrix {
 public:
  AllocationMatrix() = default;
  AllocationMatrix(size_t num_jobs, size_t num_nodes);

  int& at(size_t job, size_t node) { return cells_[job * num_nodes_ + node]; }
  int at(size_t job, size_t node) const { return cells_[job * num_nodes_ + node]; }

  size_t num_jobs() const { return num_jobs_; }
  size_t num_nodes() const { return num_nodes_; }

  // Row accessors.
  std::vector<int> Row(size_t job) const;
  void SetRow(size_t job, const std::vector<int>& row);

  // K and N for one job (Eqn. 10's placement summary).
  Placement JobPlacement(size_t job) const;

  // Total GPUs requested on each node across all jobs.
  std::vector<int> NodeUsage() const;

  // True when no node is over-committed.
  bool WithinCapacity(const ClusterSpec& cluster) const;

  // True when job j occupies >= 2 nodes (a "distributed job" for the
  // interference-avoidance constraint).
  bool IsDistributed(size_t job) const { return JobPlacement(job).num_nodes >= 2; }

  bool operator==(const AllocationMatrix&) const = default;

 private:
  size_t num_jobs_ = 0;
  size_t num_nodes_ = 0;
  std::vector<int> cells_;
};

}  // namespace pollux

#endif  // POLLUX_CORE_ALLOCATION_H_
