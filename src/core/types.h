// Shared value types for the Pollux core library.

#ifndef POLLUX_CORE_TYPES_H_
#define POLLUX_CORE_TYPES_H_

#include <cstdint>

namespace pollux {

// Summary of a job's resource allocation as seen by the throughput model
// (Eqn. 10 depends on the allocation vector only through the number of GPUs K
// and whether the replicas are co-located on a single node).
struct Placement {
  int num_gpus = 0;   // K: total GPUs allocated across all nodes.
  int num_nodes = 0;  // N: nodes contributing at least one GPU.

  bool operator==(const Placement&) const = default;
};

// Batch-size feasibility box for a job. The minimum is the user-provided
// initial batch size m0 (Pollux only considers m >= m0); the maxima come from
// GPU memory (per-replica) and from the model's tolerated global batch size.
struct BatchLimits {
  long min_batch = 1;           // m0.
  long max_batch_total = 1;     // Largest global batch size considered.
  long max_batch_per_gpu = 1;   // Largest per-replica batch that fits in memory.

  // Largest feasible global batch size for the given number of replicas.
  // Never below min_batch: a replica can always process its m0 share through
  // gradient accumulation, matching AdaptDL's behaviour.
  long MaxFeasible(int num_gpus) const {
    const long by_memory = max_batch_per_gpu * static_cast<long>(num_gpus);
    const long cap = by_memory < max_batch_total ? by_memory : max_batch_total;
    return cap > min_batch ? cap : min_batch;
  }
  bool Feasible(int num_gpus, long batch_size) const {
    return batch_size >= min_batch && batch_size <= MaxFeasible(num_gpus);
  }
};

}  // namespace pollux

#endif  // POLLUX_CORE_TYPES_H_
