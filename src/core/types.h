// Shared value types for the Pollux core library.

#ifndef POLLUX_CORE_TYPES_H_
#define POLLUX_CORE_TYPES_H_

#include <cstdint>
#include <string>
#include <vector>

namespace pollux {

struct ClusterSpec;

// GPU generations for the heterogeneous cluster model. The scale is the
// relative single-GPU throughput of the generation; kT4 is the 1.0 baseline so
// the Table-1 ground-truth profiles (fit on the T4 testbed) keep their meaning
// on homogeneous clusters.
enum class GpuType : int {
  kT4 = 0,
  kP100 = 1,
  kV100 = 2,
  kA100 = 3,
};
inline constexpr int kNumGpuTypes = 4;

double GpuTypeScale(GpuType type);
const char* GpuTypeName(GpuType type);
bool GpuTypeFromName(const std::string& name, GpuType* out);

// Cluster topology tree: rack -> node -> GPU, with per-node GPU type and a
// per-tier link class (the cross-rack factor multiplies the node-tier sync
// parameters, Sec. 3.2's rack-locality extension of Eqn. 10).
//
// The grammar is regular (every rack holds `nodes_per_rack` nodes of
// `gpus_per_node` GPUs); heterogeneity enters through `node_gpu_type`.
// FlatHomogeneous() reproduces the legacy single-rack model: its ToCluster()
// carries no topology annotations, so downstream behaviour (and output bytes)
// are identical to pre-topology builds.
struct TopologySpec {
  int num_racks = 1;
  int nodes_per_rack = 1;
  int gpus_per_node = 1;
  // Per-node GPU type, size num_racks * nodes_per_rack; empty means all kT4.
  std::vector<GpuType> node_gpu_type;
  // Multiplier (>= 1) applied to alpha/beta_sync_node when a placement spans
  // more than one rack.
  double rack_link_factor = 2.5;

  int NumNodes() const { return num_racks * nodes_per_rack; }
  int TotalGpus() const { return NumNodes() * gpus_per_node; }
  bool IsFlat() const;

  // Legacy flat model: one rack, homogeneous kT4 nodes.
  static TopologySpec FlatHomogeneous(int nodes, int gpus_per_node);

  // Materializes the per-node view consumed by the scheduler and simulator.
  // Flat specs return a ClusterSpec without topology annotations.
  ClusterSpec ToCluster() const;
};

// Parses "RxN" (racks x nodes-per-rack), e.g. "4x8". Returns false and sets
// *error on malformed or non-positive shapes.
bool ParseTopology(const std::string& text, int gpus_per_node, TopologySpec* spec,
                   std::string* error);

// Parses a GPU generation mix like "a100:0.25,t4:0.75" and assigns types to
// the spec's nodes deterministically (largest-remainder counts, then
// generation-sorted blocks by node index: newest generations in the lowest
// racks). Fractions must be positive and sum to ~1.
bool ParseGpuMix(const std::string& text, TopologySpec* spec, std::string* error);

// Summary of a job's resource allocation as seen by the throughput model
// (Eqn. 10 depends on the allocation vector only through the number of GPUs K
// and whether the replicas are co-located on a single node).
struct Placement {
  int num_gpus = 0;   // K: total GPUs allocated across all nodes.
  int num_nodes = 0;  // N: nodes contributing at least one GPU.

  bool operator==(const Placement&) const = default;
};

// Batch-size feasibility box for a job. The minimum is the user-provided
// initial batch size m0 (Pollux only considers m >= m0); the maxima come from
// GPU memory (per-replica) and from the model's tolerated global batch size.
struct BatchLimits {
  long min_batch = 1;           // m0.
  long max_batch_total = 1;     // Largest global batch size considered.
  long max_batch_per_gpu = 1;   // Largest per-replica batch that fits in memory.

  // Largest feasible global batch size for the given number of replicas.
  // Never below min_batch: a replica can always process its m0 share through
  // gradient accumulation, matching AdaptDL's behaviour.
  long MaxFeasible(int num_gpus) const {
    const long by_memory = max_batch_per_gpu * static_cast<long>(num_gpus);
    const long cap = by_memory < max_batch_total ? by_memory : max_batch_total;
    return cap > min_batch ? cap : min_batch;
  }
  bool Feasible(int num_gpus, long batch_size) const {
    return batch_size >= min_batch && batch_size <= MaxFeasible(num_gpus);
  }
};

}  // namespace pollux

#endif  // POLLUX_CORE_TYPES_H_
