#include "core/agent.h"

#include <algorithm>
#include <cmath>

#include "core/efficiency.h"
#include "obs/metrics.h"

namespace pollux {
namespace {

struct AgentMetrics {
  obs::Counter* reports;
  obs::Counter* fits;
  obs::Counter* fits_rejected;
  obs::Counter* outliers_rejected;

  static const AgentMetrics& Get() {
    static const AgentMetrics metrics;
    return metrics;
  }

 private:
  AgentMetrics() {
    auto& registry = obs::MetricsRegistry::Global();
    reports = registry.GetCounter("agent.reports");
    fits = registry.GetCounter("agent.fits");
    fits_rejected = registry.GetCounter("agent.fits_rejected");
    outliers_rejected = registry.GetCounter("agent.outliers_rejected");
  }
};

bool ParamsFinite(const ThroughputParams& params) {
  return std::isfinite(params.alpha_grad) && std::isfinite(params.beta_grad) &&
         std::isfinite(params.alpha_sync_local) && std::isfinite(params.beta_sync_local) &&
         std::isfinite(params.alpha_sync_node) && std::isfinite(params.beta_sync_node) &&
         std::isfinite(params.gamma);
}

}  // namespace

PolluxAgent::PolluxAgent(uint64_t job_id, long base_batch_size, double base_lr, BatchLimits limits,
                         AgentConfig config)
    : job_id_(job_id),
      base_batch_size_(base_batch_size),
      base_lr_(base_lr),
      limits_(limits),
      config_(config),
      tracker_(config.gns_smoothing) {
  // Until the first fit, the model carries the perfect-scaling prior: zero
  // overheads mean the scheduler is encouraged to explore more resources.
  ThroughputParams prior;
  prior.beta_grad = 1e-4;
  prior.gamma = 1.0;
  model_ = GoodputModel(prior, 0.0, base_batch_size_);
}

void PolluxAgent::RecordIteration(const Placement& placement, long batch_size, double iter_time) {
  if (placement.num_gpus <= 0 || batch_size <= 0 || iter_time <= 0.0) {
    return;
  }
  // The throughput model only distinguishes single-node from multi-node
  // placements, so collapse N to that regime for deduplication; batch sizes
  // are bucketed geometrically (~12% wide buckets).
  const int node_regime = placement.num_nodes <= 1 ? 1 : 2;
  const long bucket =
      std::lround(std::log(static_cast<double>(batch_size)) / std::log(1.12));
  ConfigStats& stats = observations_[{placement.num_gpus, node_regime, bucket}];
  stats.iter_time.Add(iter_time);
  stats.batch_size.Add(static_cast<double>(batch_size));
}

void PolluxAgent::RecordGradientStats(const GnsSample& sample) { tracker_.AddSample(sample); }

void PolluxAgent::NotifyAllocation(const Placement& placement) {
  max_gpus_seen_ = std::max(max_gpus_seen_, placement.num_gpus);
  max_nodes_seen_ = std::max(max_nodes_seen_, placement.num_nodes);
}

AgentReport PolluxAgent::MakeReport() {
  const bool observed = obs::MetricsRegistry::Global().enabled();
  if (observed) {
    AgentMetrics::Get().reports->Add();
  }
  if (!observations_.empty() && observations_.size() != last_fit_configs_) {
    last_fit_configs_ = observations_.size();
    std::vector<ThroughputObservation> data;
    data.reserve(observations_.size());
    for (const auto& [key, stats] : observations_) {
      ThroughputObservation obs;
      obs.placement = Placement{std::get<0>(key), std::get<1>(key)};
      obs.batch_size = std::lround(stats.batch_size.mean());
      obs.iter_time = stats.iter_time.mean();
      data.push_back(obs);
    }
    FitOptions options;
    options.max_gpus_seen = std::max(1, max_gpus_seen_);
    options.max_nodes_seen = std::max(1, max_nodes_seen_);
    options.multi_starts = config_.fit_multi_starts;
    options.seed = config_.seed + static_cast<uint64_t>(observations_.size());
    if (config_.robust_fitting) {
      options.outlier_mad_threshold = config_.outlier_mad_threshold;
    }
    const FitResult fit = FitThroughputParams(data, options);
    outliers_rejected_ += fit.outliers_rejected;
    if (observed) {
      const AgentMetrics& metrics = AgentMetrics::Get();
      metrics.fits->Add();
      metrics.outliers_rejected->Add(
          static_cast<uint64_t>(std::max(0, fit.outliers_rejected)));
    }
    // Divergence guard: a fit that went non-finite — or, in robust mode,
    // one that cannot explain the data at all (straggler/corrupt telemetry)
    // — must not replace a previously usable theta_sys.
    bool diverged = !ParamsFinite(fit.params) || !std::isfinite(fit.rmsle);
    if (config_.robust_fitting && config_.max_fit_rmsle > 0.0 &&
        fit.rmsle > config_.max_fit_rmsle) {
      diverged = true;
    }
    if (diverged) {
      ++fits_rejected_;
      if (observed) {
        AgentMetrics::Get().fits_rejected->Add();
      }
    } else {
      model_.set_params(fit.params);
    }
  }
  model_.set_phi(tracker_.Phi());

  AgentReport report;
  report.job_id = job_id_;
  report.model = model_;
  report.limits = limits_;
  report.max_gpus_cap = std::max(1, 2 * max_gpus_seen_);
  return report;
}

PolluxAgent::State PolluxAgent::GetState() const {
  State state;
  state.observations.reserve(observations_.size());
  for (const auto& [key, stats] : observations_) {
    State::Observation obs;
    obs.gpus = std::get<0>(key);
    obs.node_regime = std::get<1>(key);
    obs.batch_bucket = std::get<2>(key);
    obs.iter_time = stats.iter_time.GetState();
    obs.batch_size = stats.batch_size.GetState();
    state.observations.push_back(obs);
  }
  state.tracker = tracker_.GetState();
  state.model_params = model_.params();
  state.model_phi = model_.phi();
  state.model_base_batch = model_.base_batch_size();
  state.max_gpus_seen = max_gpus_seen_;
  state.max_nodes_seen = max_nodes_seen_;
  state.last_fit_configs = last_fit_configs_;
  state.fits_rejected = fits_rejected_;
  state.outliers_rejected = outliers_rejected_;
  return state;
}

void PolluxAgent::SetState(const State& state) {
  observations_.clear();
  for (const auto& obs : state.observations) {
    ConfigStats& stats = observations_[{obs.gpus, obs.node_regime, obs.batch_bucket}];
    stats.iter_time.SetState(obs.iter_time);
    stats.batch_size.SetState(obs.batch_size);
  }
  tracker_.SetState(state.tracker);
  model_ = GoodputModel(state.model_params, state.model_phi, state.model_base_batch);
  max_gpus_seen_ = state.max_gpus_seen;
  max_nodes_seen_ = state.max_nodes_seen;
  last_fit_configs_ = state.last_fit_configs;
  fits_rejected_ = state.fits_rejected;
  outliers_rejected_ = state.outliers_rejected;
}

GoodputModel::BatchChoice PolluxAgent::TuneBatchSize(const Placement& placement) const {
  return model_.OptimizeBatchSize(placement, limits_);
}

double PolluxAgent::LearningRateAt(long batch_size) const {
  return base_lr_ * AdaScaleGain(tracker_.Phi(), static_cast<double>(base_batch_size_),
                                 static_cast<double>(batch_size));
}

}  // namespace pollux
