// Statistical efficiency and the gradient noise scale (Sec. 3.1 / Appendix A):
//
//   phi_t           = m0 * sigma_t^2 / mu_t^2 = tr(Sigma) / |g|^2       (GNS)
//   EFFICIENCY_t(m) = (phi_t + m0) / (phi_t + m)                        (7)
//   AdaScale gain   = r_t = (phi_t/m0 + 1) / (phi_t/m + 1)              (5)
//
// with sigma_t^2 = Var[g_hat] and mu_t^2 = |E[g_hat]|^2 at batch size m0.
// Appendix A shows EFFICIENCY_t(m) = r_t * m0 / m; both identities are
// exercised by the tests.

#ifndef POLLUX_CORE_EFFICIENCY_H_
#define POLLUX_CORE_EFFICIENCY_H_

namespace pollux {

// Gradient noise scale from gradient statistics measured at batch size m0.
// `grad_variance` is sigma^2 (total variance of the batch-m0 stochastic
// gradient, i.e. tr(Cov[g_hat])), `grad_sqnorm` is mu^2 = |E g_hat|^2.
// Returns 0 when mu^2 is non-positive (degenerate input is clamped).
double GradientNoiseScale(double m0, double grad_variance, double grad_sqnorm);

// Eqn. 7. Requires m >= m0 > 0; result is in (0, 1].
double StatisticalEfficiency(double phi, double m0, double m);

// Eqn. 5: AdaScale's learning-rate / progress gain r_t at batch size m
// relative to m0. Equal to EFFICIENCY(m) * m / m0 (Appendix A); r_t is in
// [1, m/m0].
double AdaScaleGain(double phi, double m0, double m);

}  // namespace pollux

#endif  // POLLUX_CORE_EFFICIENCY_H_
