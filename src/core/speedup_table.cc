#include "core/speedup_table.h"

#include <algorithm>

namespace pollux {

SpeedupTable::SpeedupTable(const GoodputModel& model, const BatchLimits& limits, int max_gpus) {
  if (max_gpus < 1) {
    return;
  }
  // Dense up to 8 GPUs, then geometric with ratio ~1.25 (speedup is smooth in
  // K, so interpolation error between grid points is negligible).
  for (int k = 1; k <= max_gpus;) {
    grid_.push_back(k);
    k = k <= 8 ? k + 1 : std::max(k + 1, k * 5 / 4);
  }
  if (grid_.back() != max_gpus) {
    grid_.push_back(max_gpus);
  }

  const auto reference = model.OptimizeBatchSize(Placement{1, 1}, limits);
  const double denom = reference.goodput;
  single_node_.resize(grid_.size());
  multi_node_.resize(grid_.size());
  for (size_t i = 0; i < grid_.size(); ++i) {
    const int k = grid_[i];
    const auto single = model.OptimizeBatchSize(Placement{k, 1}, limits);
    // Degenerate reference goodput (no single-GPU data yet) falls back to a
    // neutral speedup of 1 so the job can still be scheduled (see Speedup()).
    single_node_[i] = {denom > 0.0 ? single.goodput / denom : 1.0, single.batch_size};
    if (k >= 2) {
      const auto multi = model.OptimizeBatchSize(Placement{k, 2}, limits);
      multi_node_[i] = {denom > 0.0 ? multi.goodput / denom : 1.0, multi.batch_size};
    } else {
      multi_node_[i] = single_node_[i];
    }
  }
}

size_t SpeedupTable::SegmentOf(int k) const {
  // grid_ is sorted; find the last grid point <= k.
  const auto it = std::upper_bound(grid_.begin(), grid_.end(), k);
  return static_cast<size_t>(std::distance(grid_.begin(), it)) - 1;
}

double SpeedupTable::At(int num_gpus, int num_nodes) const {
  if (num_gpus <= 0 || grid_.empty()) {
    return 0.0;
  }
  const std::vector<Entry>& table = num_nodes <= 1 ? single_node_ : multi_node_;
  const int k = std::min(num_gpus, grid_.back());
  const size_t i = SegmentOf(k);
  if (grid_[i] == k || i + 1 >= grid_.size()) {
    return table[i].speedup;
  }
  const double span = static_cast<double>(grid_[i + 1] - grid_[i]);
  const double frac = static_cast<double>(k - grid_[i]) / span;
  return table[i].speedup * (1.0 - frac) + table[i + 1].speedup * frac;
}

long SpeedupTable::BatchSizeAt(int num_gpus, int num_nodes) const {
  if (num_gpus <= 0 || grid_.empty()) {
    return 0;
  }
  const std::vector<Entry>& table = num_nodes <= 1 ? single_node_ : multi_node_;
  const int k = std::min(num_gpus, grid_.back());
  const size_t i = SegmentOf(k);
  if (grid_[i] == k || i + 1 >= grid_.size()) {
    return table[i].batch_size;
  }
  // Nearest grid point.
  const int lo_gap = k - grid_[i];
  const int hi_gap = grid_[i + 1] - k;
  return lo_gap <= hi_gap ? table[i].batch_size : table[i + 1].batch_size;
}

}  // namespace pollux
