#include "core/speedup_table.h"

#include <algorithm>

namespace pollux {

SpeedupTable::SpeedupTable(const GoodputModel& model, const BatchLimits& limits, int max_gpus,
                           EvalCache* cache, uint64_t job_id, uint16_t progress_bucket) {
  if (max_gpus < 1) {
    return;
  }
  // Dense up to 8 GPUs, then geometric with ratio ~1.25 (speedup is smooth in
  // K, so interpolation error between grid points is negligible).
  for (int k = 1; k <= max_gpus;) {
    grid_.push_back(k);
    k = k <= 8 ? k + 1 : std::max(k + 1, k * 5 / 4);
  }
  if (grid_.back() != max_gpus) {
    grid_.push_back(max_gpus);
  }

  // The batch-size optimization at one grid point depends only on the model,
  // the limits, and (K, N) — not on the grid or max_gpus — so memoized
  // results keyed by the model fingerprint are valid for any table size.
  EvalCache::Key key;
  if (cache != nullptr) {
    key.job_id = job_id;
    key.model_fp = ModelFingerprint(model, limits);
    key.progress_bucket = progress_bucket;
  }
  const auto optimize = [&](int k, int n) -> GoodputModel::BatchChoice {
    if (cache == nullptr) {
      return model.OptimizeBatchSize(Placement{k, n}, limits);
    }
    key.replicas = static_cast<uint32_t>(k);
    key.nodes = static_cast<uint16_t>(n);
    const EvalCache::Value cached = cache->GetOrCompute(key, [&] {
      const auto choice = model.OptimizeBatchSize(Placement{k, n}, limits);
      return EvalCache::Value{choice.goodput, choice.batch_size};
    });
    GoodputModel::BatchChoice choice;
    choice.goodput = cached.value;
    choice.batch_size = cached.aux;
    return choice;
  };

  const auto reference = optimize(1, 1);
  const double denom = reference.goodput;
  single_node_.resize(grid_.size());
  multi_node_.resize(grid_.size());
  for (size_t i = 0; i < grid_.size(); ++i) {
    const int k = grid_[i];
    const auto single = optimize(k, 1);
    // Degenerate reference goodput (no single-GPU data yet) falls back to a
    // neutral speedup of 1 so the job can still be scheduled (see Speedup()).
    single_node_[i] = {denom > 0.0 ? single.goodput / denom : 1.0, single.batch_size};
    if (k >= 2) {
      const auto multi = optimize(k, 2);
      multi_node_[i] = {denom > 0.0 ? multi.goodput / denom : 1.0, multi.batch_size};
    } else {
      multi_node_[i] = single_node_[i];
    }
  }
}

size_t SpeedupTable::SegmentOf(int k) const {
  // grid_ is sorted; find the last grid point <= k.
  const auto it = std::upper_bound(grid_.begin(), grid_.end(), k);
  return static_cast<size_t>(std::distance(grid_.begin(), it)) - 1;
}

double SpeedupTable::At(int num_gpus, int num_nodes) const {
  if (num_gpus <= 0 || grid_.empty()) {
    return 0.0;
  }
  const std::vector<Entry>& table = num_nodes <= 1 ? single_node_ : multi_node_;
  const int k = std::min(num_gpus, grid_.back());
  const size_t i = SegmentOf(k);
  if (grid_[i] == k || i + 1 >= grid_.size()) {
    return table[i].speedup;
  }
  const double span = static_cast<double>(grid_[i + 1] - grid_[i]);
  const double frac = static_cast<double>(k - grid_[i]) / span;
  return table[i].speedup * (1.0 - frac) + table[i + 1].speedup * frac;
}

long SpeedupTable::BatchSizeAt(int num_gpus, int num_nodes) const {
  if (num_gpus <= 0 || grid_.empty()) {
    return 0;
  }
  const std::vector<Entry>& table = num_nodes <= 1 ? single_node_ : multi_node_;
  const int k = std::min(num_gpus, grid_.back());
  const size_t i = SegmentOf(k);
  if (grid_[i] == k || i + 1 >= grid_.size()) {
    return table[i].batch_size;
  }
  // Nearest grid point.
  const int lo_gap = k - grid_[i];
  const int hi_gap = grid_[i + 1] - k;
  return lo_gap <= hi_gap ? table[i].batch_size : table[i + 1].batch_size;
}

}  // namespace pollux
