#include "core/speedup_table.h"

#include <algorithm>

namespace pollux {

SpeedupTable::SpeedupTable(const GoodputModel& model, const BatchLimits& limits, int max_gpus,
                           EvalCache* cache, uint64_t job_id, uint16_t progress_bucket)
    : SpeedupTable(model, limits, max_gpus, cache, job_id, progress_bucket, 1.0) {}

SpeedupTable::SpeedupTable(const GoodputModel& model, const BatchLimits& limits, int max_gpus,
                           EvalCache* cache, uint64_t job_id, uint16_t progress_bucket,
                           double rack_link_factor) {
  if (max_gpus < 1) {
    return;
  }
  // Dense up to 8 GPUs, then geometric with ratio ~1.25 (speedup is smooth in
  // K, so interpolation error between grid points is negligible).
  for (int k = 1; k <= max_gpus;) {
    grid_.push_back(k);
    k = k <= 8 ? k + 1 : std::max(k + 1, k * 5 / 4);
  }
  if (grid_.back() != max_gpus) {
    grid_.push_back(max_gpus);
  }

  // The batch-size optimization at one grid point depends only on the model,
  // the limits, and (K, N) — not on the grid or max_gpus — so memoized
  // results keyed by the model fingerprint are valid for any table size.
  EvalCache::Key key;
  if (cache != nullptr) {
    key.job_id = job_id;
    key.model_fp = ModelFingerprint(model, limits);
    key.progress_bucket = progress_bucket;
  }
  const auto optimize = [&](const GoodputModel& m, uint64_t fp, int k,
                            int n) -> GoodputModel::BatchChoice {
    if (cache == nullptr) {
      return m.OptimizeBatchSize(Placement{k, n > 2 ? 2 : n}, limits);
    }
    key.model_fp = fp;
    key.replicas = static_cast<uint32_t>(k);
    key.nodes = static_cast<uint16_t>(n);
    const EvalCache::Value cached = cache->GetOrCompute(key, [&] {
      const auto choice = m.OptimizeBatchSize(Placement{k, n > 2 ? 2 : n}, limits);
      return EvalCache::Value{choice.goodput, choice.batch_size};
    });
    GoodputModel::BatchChoice choice;
    choice.goodput = cached.value;
    choice.batch_size = cached.aux;
    return choice;
  };

  const uint64_t base_fp = cache != nullptr ? ModelFingerprint(model, limits) : 0;
  const auto reference = optimize(model, base_fp, 1, 1);
  const double denom = reference.goodput;
  single_node_.resize(grid_.size());
  multi_node_.resize(grid_.size());
  for (size_t i = 0; i < grid_.size(); ++i) {
    const int k = grid_[i];
    const auto single = optimize(model, base_fp, k, 1);
    // Degenerate reference goodput (no single-GPU data yet) falls back to a
    // neutral speedup of 1 so the job can still be scheduled (see Speedup()).
    single_node_[i] = {denom > 0.0 ? single.goodput / denom : 1.0, single.batch_size};
    if (k >= 2) {
      const auto multi = optimize(model, base_fp, k, 2);
      multi_node_[i] = {denom > 0.0 ? multi.goodput / denom : 1.0, multi.batch_size};
    } else {
      multi_node_[i] = single_node_[i];
    }
  }

  if (rack_link_factor > 1.0) {
    // Cross-rack regime: the node-tier sync parameters scaled by the link
    // factor, same denominator so all three regimes share the speedup scale.
    ThroughputParams rack_params = model.params();
    rack_params.alpha_sync_node *= rack_link_factor;
    rack_params.beta_sync_node *= rack_link_factor;
    const GoodputModel rack_model(rack_params, model.phi(), model.base_batch_size());
    const uint64_t rack_fp =
        cache != nullptr ? ModelFingerprint(model, limits, rack_link_factor) : 0;
    multi_rack_.resize(grid_.size());
    for (size_t i = 0; i < grid_.size(); ++i) {
      const int k = grid_[i];
      if (k >= 2) {
        const auto rack = optimize(rack_model, rack_fp, k, 3);
        multi_rack_[i] = {denom > 0.0 ? rack.goodput / denom : 1.0, rack.batch_size};
      } else {
        multi_rack_[i] = single_node_[i];
      }
    }
  }
}

size_t SpeedupTable::SegmentOf(int k) const {
  // grid_ is sorted; find the last grid point <= k.
  const auto it = std::upper_bound(grid_.begin(), grid_.end(), k);
  return static_cast<size_t>(std::distance(grid_.begin(), it)) - 1;
}

double SpeedupTable::AtIn(const std::vector<Entry>& table, int num_gpus) const {
  const int k = std::min(num_gpus, grid_.back());
  const size_t i = SegmentOf(k);
  if (grid_[i] == k || i + 1 >= grid_.size()) {
    return table[i].speedup;
  }
  const double span = static_cast<double>(grid_[i + 1] - grid_[i]);
  const double frac = static_cast<double>(k - grid_[i]) / span;
  return table[i].speedup * (1.0 - frac) + table[i + 1].speedup * frac;
}

long SpeedupTable::BatchSizeIn(const std::vector<Entry>& table, int num_gpus) const {
  const int k = std::min(num_gpus, grid_.back());
  const size_t i = SegmentOf(k);
  if (grid_[i] == k || i + 1 >= grid_.size()) {
    return table[i].batch_size;
  }
  // Nearest grid point.
  const int lo_gap = k - grid_[i];
  const int hi_gap = grid_[i + 1] - k;
  return lo_gap <= hi_gap ? table[i].batch_size : table[i + 1].batch_size;
}

double SpeedupTable::At(int num_gpus, int num_nodes) const {
  if (num_gpus <= 0 || grid_.empty()) {
    return 0.0;
  }
  return AtIn(TableFor(num_nodes, 1), num_gpus);
}

double SpeedupTable::At(const RackPlacement& placement) const {
  if (placement.num_gpus <= 0 || grid_.empty()) {
    return 0.0;
  }
  return AtIn(TableFor(placement.num_nodes, placement.num_racks), placement.num_gpus);
}

long SpeedupTable::BatchSizeAt(int num_gpus, int num_nodes) const {
  if (num_gpus <= 0 || grid_.empty()) {
    return 0;
  }
  return BatchSizeIn(TableFor(num_nodes, 1), num_gpus);
}

long SpeedupTable::BatchSizeAt(const RackPlacement& placement) const {
  if (placement.num_gpus <= 0 || grid_.empty()) {
    return 0;
  }
  return BatchSizeIn(TableFor(placement.num_nodes, placement.num_racks), placement.num_gpus);
}

}  // namespace pollux
