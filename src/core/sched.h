// PolluxSched (Sec. 4.2): the cluster-wide component.
//
// Every scheduling interval it receives each job's goodput function from its
// PolluxAgent, builds per-job speedup tables, assigns job weights (Eqn. 16),
// and runs the genetic algorithm to find the allocation matrix maximizing
// FITNESS (Eqn. 14). The chosen allocations are returned to the caller (the
// simulator, or a real cluster integration) to apply.

#ifndef POLLUX_CORE_SCHED_H_
#define POLLUX_CORE_SCHED_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/agent.h"
#include "core/allocation.h"
#include "core/eval_cache.h"
#include "core/genetic.h"
#include "util/thread_pool.h"

namespace pollux {

// Quality/speed ladder for one scheduling round (DESIGN.md §13).
//
//   exact       Re-optimize every job with the full GA (the paper's
//               behavior; byte-identical to builds that predate the ladder).
//   incremental Re-optimize only jobs whose telemetry changed materially
//               since their last optimization; clean jobs keep their warm
//               allocation and are omitted from the decision map entirely.
//               Dirty jobs are partitioned into node-disjoint shards, each
//               solved by its own deterministic GA, in parallel.
//   first-match O(jobs) greedy placement with no speedup tables and no GA:
//               running jobs keep (and grow in place toward their
//               exploration cap), queued jobs take the first node with free
//               capacity. The ultrafast mode for 10k-node clusters.
enum class SchedMode {
  kExact = 0,
  kIncremental = 1,
  kFirstMatch = 2,
};

// "exact" | "incremental" | "first-match" (returns false on unknown names).
bool SchedModeByName(const std::string& name, SchedMode* mode);
const char* SchedModeName(SchedMode mode);

struct SchedConfig {
  GaOptions ga;
  // GPUTIME_THRES, in GPU-seconds (paper default: 4 GPU-hours).
  double gpu_time_threshold = 4.0 * 3600.0;
  // Weight decay exponent lambda (paper default 0.5; 0 disables weighting).
  double weight_lambda = 0.5;
  // Memoize speedup-table construction across rounds and utility probes,
  // keyed by each job's exact model fingerprint (see core/eval_cache.h).
  // Results are bit-identical either way; false forces recomputation.
  bool memoize_tables = true;
  // Wall-clock budget for one scheduling round, seconds (0 = unlimited).
  // A round that overruns it — or that somehow produced an allocation that
  // is infeasible against the (possibly degraded) cluster — is discarded in
  // favor of the last known-feasible allocation projected onto surviving
  // nodes, instead of aborting or applying garbage.
  double round_time_budget = 0.0;
  // Reports older than this (seconds) are stale: the job's exploration cap is
  // clamped to its current size so the GA never grows a job on telemetry it
  // cannot trust. 0 disables the clamp.
  double stale_report_age = 150.0;
  // Expected agent report interval, seconds; a job's telemetry lease spans
  // lease_intervals of it.
  double report_interval = 30.0;
  // Lease-based liveness over a degraded control plane (0 disables, which is
  // the legacy stale-clamp-only behavior). A job whose report age exceeds the
  // lease is *held*: frozen at exactly its current allocation. Only after a
  // further lease_grace seconds of silence is it evicted (allocation
  // reclaimed). See DESIGN.md §12.
  int lease_intervals = 0;
  double lease_grace = 300.0;
  // When the fraction of jobs with an unexpired lease drops below this
  // threshold, the round runs degraded: every warm allocation is frozen as-is
  // and only fresh queued jobs are packed onto the residual capacity by a
  // reduced-budget GA. 0 disables degraded rounds.
  double degraded_coverage = 0.0;
  // Instant-masking baseline (bench_netfaults): any job whose report age
  // exceeds stale_report_age is reclaimed immediately — no lease, no grace,
  // no degraded rounds.
  bool naive_masking = false;
  // Scheduling-round quality/speed ladder (DESIGN.md §13). kExact keeps the
  // legacy full-GA round byte-identical; the other modes trade goodput for
  // round time (bench_hyperscale measures the curve).
  SchedMode mode = SchedMode::kExact;
  // Incremental mode: a clean job turns dirty when any fitted throughput
  // parameter or its gradient-noise scale drifts by more than this relative
  // amount since the job's last re-optimization.
  double dirty_rel_change = 0.05;
  // Incremental mode: target dirty jobs per GA shard (node-disjoint job
  // groups are packed into shards up to this size; a group that is already
  // larger stays whole).
  int shard_jobs = 16;
  // Incremental mode: a clean job is re-optimized anyway after this many
  // rounds, so warm allocations cannot go stale forever and queued jobs
  // eventually get a chance to displace them. 0 disables the refresh.
  int refresh_rounds = 20;
  // Incremental mode: queued-job admission pre-filter. Queued jobs are
  // always dirty (they hold nothing), so during a backlog every one of them
  // joins a GA shard each round even though only free-capacity many can
  // possibly be placed. With admission on, queued jobs are admitted to the
  // round in report order only while the admitted count stays within the
  // free GPU capacity left after clean rows are charged; the rest are
  // deferred (omitted from the decision map, i.e. they stay queued) and
  // counted in queue_skipped(). Off by default: it changes which shards form
  // under backlog, so it is opt-in for byte-compatibility.
  bool queue_admission = false;
};

// Per-job information PolluxSched receives each interval.
struct SchedJobReport {
  AgentReport agent;
  // Total GPU-seconds consumed so far (for Eqn. 16).
  double gpu_time = 0.0;
  // GPUs per node the job currently holds; empty when not running.
  std::vector<int> current_allocation;
  // Seconds since the last delivered report was produced (agent reports can
  // be lost or delayed in degraded clusters). Staleness and lease expiry are
  // judged from this measured age against SchedConfig thresholds: a stale job
  // is scheduled conservatively — its exploration cap is clamped to its
  // current allocation, so the GA never *grows* a job on dead telemetry.
  double report_age = 0.0;
  // Delivery sequence number of that report (0 when the transport does not
  // sequence). Monotonically increasing per job; used to detect stagnant or
  // duplicate telemetry across rounds.
  uint64_t seq = 0;
};

class PolluxSched {
 public:
  PolluxSched(ClusterSpec cluster, SchedConfig config);

  // Runs one scheduling round. Returns the per-node GPU allocation for each
  // job id (rows of the best allocation matrix).
  std::map<uint64_t, std::vector<int>> Schedule(const std::vector<SchedJobReport>& reports);

  // Eqn. 17 of the most recently applied allocation matrix.
  double last_utility() const { return last_utility_; }
  double last_fitness() const { return last_fitness_; }

  // Rounds whose GA result was discarded (budget overrun or infeasible) in
  // favor of the projected fallback allocation.
  uint64_t fallback_rounds() const { return fallback_rounds_; }

  // Rounds that ran in degraded mode (fresh-report coverage below threshold:
  // warm allocations frozen, only fresh queued jobs re-optimized).
  uint64_t degraded_rounds() const { return degraded_rounds_; }

  // Lease lifecycle accounting: jobs whose lease expired (entered the held
  // state) and jobs reclaimed after the grace period (or instantly under
  // naive masking).
  uint64_t lease_expirations() const { return lease_expirations_; }
  uint64_t lease_evictions() const { return lease_evictions_; }

  // Rounds-with-stagnant-telemetry count: a job whose report seq did not
  // advance since the previous round (duplicate or no delivery).
  uint64_t dup_reports() const { return dup_reports_; }

  // Queued jobs deferred by the incremental-mode admission pre-filter
  // (SchedConfig::queue_admission): cumulative count of (job, round) pairs
  // that were left queued without joining a GA shard.
  uint64_t queue_skipped() const { return queue_skipped_; }

  // True when every row fits the cluster: no over-committed node and no GPUs
  // on zero-capacity (failed) nodes.
  static bool AllocationsFeasible(const ClusterSpec& cluster,
                                  const std::map<uint64_t, std::vector<int>>& allocations);

  // The graceful-degradation fallback: each job keeps its current allocation
  // projected onto surviving nodes (entries on zero-capacity nodes dropped,
  // then trimmed to per-node capacity). Never returns an infeasible map.
  std::map<uint64_t, std::vector<int>> ProjectOntoCluster(
      const std::vector<SchedJobReport>& reports) const;

  // Evaluates the cluster utility the GA would achieve with `num_nodes`
  // homogeneous nodes (used by the cloud autoscaler's binary search). Does
  // not disturb the persisted population.
  double EvaluateUtilityAt(int num_nodes, int gpus_per_node,
                           const std::vector<SchedJobReport>& reports) const;

  // Replaces the cluster after autoscaling.
  void SetCluster(ClusterSpec cluster);
  const ClusterSpec& cluster() const { return optimizer_.cluster(); }
  const SchedConfig& config() const { return config_; }

  // Hit/miss counters of the speedup-table construction cache.
  EvalCacheStats table_cache_stats() const { return table_cache_.Stats(); }

  // Incremental-mode bookkeeping for one job: the telemetry snapshot taken
  // at its last re-optimization. The dirtiness predicate (DESIGN.md §13)
  // compares the current report against this snapshot.
  struct JobOptState {
    ThroughputParams params;
    double phi = 0.0;
    long base_batch = 1;
    int cap = 1;
    uint16_t bucket = 0;
    // Rounds this job has stayed clean since the snapshot (drives the
    // periodic refresh).
    uint32_t rounds_clean = 0;
  };

  // Scheduler state for checkpoint/restore: the GA search state plus the
  // last-round diagnostics and the cumulative fallback counter. The table
  // cache is excluded (memoization never changes results).
  struct State {
    GeneticOptimizer::State ga;
    double last_utility = 0.0;
    double last_fitness = 0.0;
    uint64_t fallback_rounds = 0;
    uint64_t degraded_rounds = 0;
    uint64_t lease_expirations = 0;
    uint64_t lease_evictions = 0;
    uint64_t dup_reports = 0;
    uint64_t queue_skipped = 0;
    // job id -> (last seen report seq, last lease class 0=fresh/1=held/
    // 2=evicted), so lease transition counting survives a warm restart.
    std::map<uint64_t, std::pair<uint64_t, uint32_t>> telemetry;
    // Incremental-mode per-job snapshots and the round counter that seeds
    // the shard GAs (empty/zero in the other modes).
    std::map<uint64_t, JobOptState> incremental;
    uint64_t incremental_round = 0;
  };
  State GetState() const {
    State state;
    state.ga = optimizer_.GetState();
    state.last_utility = last_utility_;
    state.last_fitness = last_fitness_;
    state.fallback_rounds = fallback_rounds_;
    state.degraded_rounds = degraded_rounds_;
    state.lease_expirations = lease_expirations_;
    state.lease_evictions = lease_evictions_;
    state.dup_reports = dup_reports_;
    state.queue_skipped = queue_skipped_;
    for (const auto& [job_id, telemetry] : telemetry_) {
      state.telemetry[job_id] = {telemetry.last_seq, telemetry.last_class};
    }
    state.incremental = opt_state_;
    state.incremental_round = incremental_round_;
    return state;
  }
  void SetState(const State& state) {
    optimizer_.SetState(state.ga);
    last_utility_ = state.last_utility;
    last_fitness_ = state.last_fitness;
    fallback_rounds_ = state.fallback_rounds;
    degraded_rounds_ = state.degraded_rounds;
    lease_expirations_ = state.lease_expirations;
    lease_evictions_ = state.lease_evictions;
    dup_reports_ = state.dup_reports;
    queue_skipped_ = state.queue_skipped;
    telemetry_.clear();
    for (const auto& [job_id, saved] : state.telemetry) {
      telemetry_[job_id] = JobTelemetry{saved.first, saved.second};
    }
    opt_state_ = state.incremental;
    incremental_round_ = state.incremental_round;
  }

  // Cold recovery: drop the persisted GA population, diagnostics, and the
  // per-job telemetry map, as a freshly restarted scheduler process would.
  // The cumulative counters survive — they are run-level accounting, not
  // process state.
  void ResetSearchState() {
    optimizer_.ResetSearchState();
    last_utility_ = 0.0;
    last_fitness_ = 0.0;
    telemetry_.clear();
    opt_state_.clear();
    incremental_round_ = 0;
  }

 private:
  // Telemetry lease classes (DESIGN.md §12): fresh leases schedule normally,
  // held jobs are frozen at their current allocation, evicted jobs are
  // reclaimed.
  enum class Lease : uint32_t { kFresh = 0, kHeld = 1, kEvicted = 2 };

  struct JobTelemetry {
    uint64_t last_seq = 0;
    uint32_t last_class = 0;
  };

  std::vector<SchedJobInfo> BuildJobInfos(const std::vector<SchedJobReport>& reports,
                                          int max_gpus) const;

  // Classifies every report into a lease class and updates the telemetry map
  // (seq stagnation + transition counters).
  std::vector<Lease> ClassifyLeases(const std::vector<SchedJobReport>& reports);

  // Degraded round: freeze every warm non-evicted allocation verbatim and
  // pack fresh queued jobs onto the residual capacity with a reduced-budget
  // GA probe (the persisted population is not disturbed).
  std::map<uint64_t, std::vector<int>> DegradedRound(const std::vector<SchedJobReport>& reports,
                                                     const std::vector<Lease>& lease) const;

  // Post-GA overrides: evicted rows zeroed, held rows pinned to the current
  // allocation verbatim, fresh rows clamped to the remaining capacity.
  // Fresh jobs absent from the (possibly sparse) map keep their current
  // allocation, which is charged against the free capacity first.
  void ApplyLeaseOverrides(const std::vector<SchedJobReport>& reports,
                           const std::vector<Lease>& lease,
                           std::map<uint64_t, std::vector<int>>* allocations) const;

  // first-match mode: one greedy O(jobs) pass, no speedup tables, no GA.
  // Returns a sparse map (only jobs whose allocation changes have rows).
  std::map<uint64_t, std::vector<int>> FirstMatchRound(
      const std::vector<SchedJobReport>& reports) const;

  // incremental mode: re-optimize only dirty jobs, sharded into node-
  // disjoint GA sub-problems run across the thread pool. Returns a sparse
  // map; clean jobs are omitted and keep their warm allocation.
  std::map<uint64_t, std::vector<int>> IncrementalRound(
      const std::vector<SchedJobReport>& reports);

  SchedConfig config_;
  GeneticOptimizer optimizer_;
  // Memoized OptimizeBatchSize results for table construction; keys carry
  // the model fingerprint, so entries from superseded fits are simply never
  // hit again (and eventually evicted by the shard capacity bound). Mutable:
  // the const utility probes (EvaluateUtilityAt) are its main beneficiary.
  mutable EvalCache table_cache_;
  double last_utility_ = 0.0;
  double last_fitness_ = 0.0;
  uint64_t fallback_rounds_ = 0;
  uint64_t degraded_rounds_ = 0;
  uint64_t lease_expirations_ = 0;
  uint64_t lease_evictions_ = 0;
  uint64_t dup_reports_ = 0;
  uint64_t queue_skipped_ = 0;
  std::map<uint64_t, JobTelemetry> telemetry_;
  // Incremental-mode state: per-job snapshots from the last re-optimization,
  // the round counter mixed into each shard GA's seed, and the worker pool
  // the shards run on (created lazily; determinism does not depend on the
  // thread count — each shard GA is a self-contained serial solver).
  std::map<uint64_t, JobOptState> opt_state_;
  uint64_t incremental_round_ = 0;
  std::unique_ptr<ThreadPool> shard_pool_;
};

}  // namespace pollux

#endif  // POLLUX_CORE_SCHED_H_
