// PolluxSched (Sec. 4.2): the cluster-wide component.
//
// Every scheduling interval it receives each job's goodput function from its
// PolluxAgent, builds per-job speedup tables, assigns job weights (Eqn. 16),
// and runs the genetic algorithm to find the allocation matrix maximizing
// FITNESS (Eqn. 14). The chosen allocations are returned to the caller (the
// simulator, or a real cluster integration) to apply.

#ifndef POLLUX_CORE_SCHED_H_
#define POLLUX_CORE_SCHED_H_

#include <cstdint>
#include <map>
#include <vector>

#include "core/agent.h"
#include "core/allocation.h"
#include "core/eval_cache.h"
#include "core/genetic.h"

namespace pollux {

struct SchedConfig {
  GaOptions ga;
  // GPUTIME_THRES, in GPU-seconds (paper default: 4 GPU-hours).
  double gpu_time_threshold = 4.0 * 3600.0;
  // Weight decay exponent lambda (paper default 0.5; 0 disables weighting).
  double weight_lambda = 0.5;
  // Memoize speedup-table construction across rounds and utility probes,
  // keyed by each job's exact model fingerprint (see core/eval_cache.h).
  // Results are bit-identical either way; false forces recomputation.
  bool memoize_tables = true;
  // Wall-clock budget for one scheduling round, seconds (0 = unlimited).
  // A round that overruns it — or that somehow produced an allocation that
  // is infeasible against the (possibly degraded) cluster — is discarded in
  // favor of the last known-feasible allocation projected onto surviving
  // nodes, instead of aborting or applying garbage.
  double round_time_budget = 0.0;
};

// Per-job information PolluxSched receives each interval.
struct SchedJobReport {
  AgentReport agent;
  // Total GPU-seconds consumed so far (for Eqn. 16).
  double gpu_time = 0.0;
  // GPUs per node the job currently holds; empty when not running.
  std::vector<int> current_allocation;
  // Seconds since the report was produced and whether the caller considers
  // it stale (agent reports can be lost in degraded clusters). A stale job
  // is scheduled conservatively: its exploration cap is clamped to its
  // current allocation, so the GA never *grows* a job on dead telemetry.
  double report_age = 0.0;
  bool stale = false;
};

class PolluxSched {
 public:
  PolluxSched(ClusterSpec cluster, SchedConfig config);

  // Runs one scheduling round. Returns the per-node GPU allocation for each
  // job id (rows of the best allocation matrix).
  std::map<uint64_t, std::vector<int>> Schedule(const std::vector<SchedJobReport>& reports);

  // Eqn. 17 of the most recently applied allocation matrix.
  double last_utility() const { return last_utility_; }
  double last_fitness() const { return last_fitness_; }

  // Rounds whose GA result was discarded (budget overrun or infeasible) in
  // favor of the projected fallback allocation.
  uint64_t fallback_rounds() const { return fallback_rounds_; }

  // True when every row fits the cluster: no over-committed node and no GPUs
  // on zero-capacity (failed) nodes.
  static bool AllocationsFeasible(const ClusterSpec& cluster,
                                  const std::map<uint64_t, std::vector<int>>& allocations);

  // The graceful-degradation fallback: each job keeps its current allocation
  // projected onto surviving nodes (entries on zero-capacity nodes dropped,
  // then trimmed to per-node capacity). Never returns an infeasible map.
  std::map<uint64_t, std::vector<int>> ProjectOntoCluster(
      const std::vector<SchedJobReport>& reports) const;

  // Evaluates the cluster utility the GA would achieve with `num_nodes`
  // homogeneous nodes (used by the cloud autoscaler's binary search). Does
  // not disturb the persisted population.
  double EvaluateUtilityAt(int num_nodes, int gpus_per_node,
                           const std::vector<SchedJobReport>& reports) const;

  // Replaces the cluster after autoscaling.
  void SetCluster(ClusterSpec cluster);
  const ClusterSpec& cluster() const { return optimizer_.cluster(); }
  const SchedConfig& config() const { return config_; }

  // Hit/miss counters of the speedup-table construction cache.
  EvalCacheStats table_cache_stats() const { return table_cache_.Stats(); }

  // Scheduler state for checkpoint/restore: the GA search state plus the
  // last-round diagnostics and the cumulative fallback counter. The table
  // cache is excluded (memoization never changes results).
  struct State {
    GeneticOptimizer::State ga;
    double last_utility = 0.0;
    double last_fitness = 0.0;
    uint64_t fallback_rounds = 0;
  };
  State GetState() const {
    return State{optimizer_.GetState(), last_utility_, last_fitness_, fallback_rounds_};
  }
  void SetState(const State& state) {
    optimizer_.SetState(state.ga);
    last_utility_ = state.last_utility;
    last_fitness_ = state.last_fitness;
    fallback_rounds_ = state.fallback_rounds;
  }

  // Cold recovery: drop the persisted GA population and diagnostics, as a
  // freshly restarted scheduler process would. The cumulative fallback
  // counter survives — it is run-level accounting, not process state.
  void ResetSearchState() {
    optimizer_.ResetSearchState();
    last_utility_ = 0.0;
    last_fitness_ = 0.0;
  }

 private:
  std::vector<SchedJobInfo> BuildJobInfos(const std::vector<SchedJobReport>& reports,
                                          int max_gpus) const;

  SchedConfig config_;
  GeneticOptimizer optimizer_;
  // Memoized OptimizeBatchSize results for table construction; keys carry
  // the model fingerprint, so entries from superseded fits are simply never
  // hit again (and eventually evicted by the shard capacity bound). Mutable:
  // the const utility probes (EvaluateUtilityAt) are its main beneficiary.
  mutable EvalCache table_cache_;
  double last_utility_ = 0.0;
  double last_fitness_ = 0.0;
  uint64_t fallback_rounds_ = 0;
};

}  // namespace pollux

#endif  // POLLUX_CORE_SCHED_H_
