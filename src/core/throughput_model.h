// The system throughput model of Sec. 3.2 (Eqns. 8-11):
//
//   T_grad(a, m) = alpha_grad + beta_grad * m / K                       (9)
//   T_sync(a)    = 0                                   if K = 1
//                = alpha_sync_local + beta_sync_local*(K-2)  if N = 1, K >= 2
//                = alpha_sync_node  + beta_sync_node *(K-2)  otherwise  (10)
//   T_iter       = (T_grad^gamma + T_sync^gamma)^(1/gamma)              (11)
//   THROUGHPUT   = m / T_iter                                           (8)
//
// gamma >= 1 interpolates between no overlap (gamma = 1, sum) and perfect
// overlap (gamma -> inf, max) of computation and communication.

#ifndef POLLUX_CORE_THROUGHPUT_MODEL_H_
#define POLLUX_CORE_THROUGHPUT_MODEL_H_

#include "core/types.h"

namespace pollux {

// theta_sys, the 7-tuple of learnable system throughput parameters (Eqn. 12).
struct ThroughputParams {
  double alpha_grad = 0.0;
  double beta_grad = 0.0;
  double alpha_sync_local = 0.0;
  double beta_sync_local = 0.0;
  double alpha_sync_node = 0.0;
  double beta_sync_node = 0.0;
  double gamma = 1.0;
};

// Time per iteration spent computing local gradient estimates (Eqn. 9).
double GradTime(const ThroughputParams& params, const Placement& placement, double batch_size);

// Time per iteration spent synchronizing gradients/parameters (Eqn. 10).
double SyncTime(const ThroughputParams& params, const Placement& placement);

// Combined iteration time (Eqn. 11).
double IterTime(const ThroughputParams& params, const Placement& placement, double batch_size);

// Examples per second (Eqn. 8). Returns 0 for empty placements.
double ModelThroughput(const ThroughputParams& params, const Placement& placement,
                       double batch_size);

}  // namespace pollux

#endif  // POLLUX_CORE_THROUGHPUT_MODEL_H_
