#include "core/autoscaler.h"

#include <algorithm>
#include <cmath>

namespace pollux {

AutoscaleDecision DecideNodeCount(const AutoscaleConfig& config, int current_nodes,
                                  double current_utility,
                                  const std::function<double(int)>& utility_at) {
  AutoscaleDecision decision;
  decision.target_nodes = std::clamp(current_nodes, config.min_nodes, config.max_nodes);
  const bool below = current_utility < config.low_util_threshold;
  const bool above = current_utility > config.high_util_threshold;
  if ((!below && !above) || config.min_nodes >= config.max_nodes) {
    // Clamping alone may still change the size if the operator shrank the
    // allowed range.
    decision.changed = decision.target_nodes != current_nodes;
    return decision;
  }

  const double target = 0.5 * (config.low_util_threshold + config.high_util_threshold);
  // Binary search assuming utility is non-increasing in the node count:
  // too-high utility means the cluster is too small, too-low means too large.
  int lo = config.min_nodes;
  int hi = config.max_nodes;
  int best_nodes = decision.target_nodes;
  double best_gap = std::fabs(current_utility - target);
  while (lo <= hi) {
    const int mid = lo + (hi - lo) / 2;
    double utility = current_utility;
    if (mid != current_nodes) {
      utility = utility_at(mid);
      ++decision.probes;
    }
    const double gap = std::fabs(utility - target);
    if (gap < best_gap) {
      best_gap = gap;
      best_nodes = mid;
    }
    if (utility > target) {
      lo = mid + 1;
    } else {
      hi = mid - 1;
    }
  }
  decision.target_nodes = best_nodes;
  decision.changed = decision.target_nodes != current_nodes;
  return decision;
}

}  // namespace pollux
