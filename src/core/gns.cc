#include "core/gns.h"

#include <algorithm>
#include <cmath>

namespace pollux {
namespace {

double SquaredNorm(const std::vector<double>& v) {
  double total = 0.0;
  for (double x : v) {
    total += x * x;
  }
  return total;
}

}  // namespace

std::optional<GnsSample> EstimateGnsFromReplicas(
    std::span<const std::vector<double>> replica_grads, double total_batch) {
  const size_t k = replica_grads.size();
  if (k < 2 || total_batch <= 0.0) {
    return std::nullopt;
  }
  const size_t dim = replica_grads[0].size();
  if (dim == 0) {
    return std::nullopt;
  }
  for (const auto& grad : replica_grads) {
    if (grad.size() != dim) {
      return std::nullopt;
    }
  }
  const double small_batch = total_batch / static_cast<double>(k);  // b = m / K.
  const double big_batch = total_batch;                             // m.

  // Mean over replicas of |g_k|^2 and |mean_k g_k|^2.
  double mean_sq_small = 0.0;
  std::vector<double> mean_grad(dim, 0.0);
  for (const auto& grad : replica_grads) {
    mean_sq_small += SquaredNorm(grad);
    for (size_t i = 0; i < dim; ++i) {
      mean_grad[i] += grad[i];
    }
  }
  mean_sq_small /= static_cast<double>(k);
  for (double& x : mean_grad) {
    x /= static_cast<double>(k);
  }
  const double sq_big = SquaredNorm(mean_grad);

  // E|g_b|^2 = |G|^2 + tr(Sigma)/b, so the pair of batch sizes gives unbiased
  // estimates of both moments [McCandlish et al. 2018, Appendix A.1]:
  GnsSample sample;
  sample.grad_sqnorm = (big_batch * sq_big - small_batch * mean_sq_small) /
                       (big_batch - small_batch);
  sample.cov_trace = (mean_sq_small - sq_big) / (1.0 / small_batch - 1.0 / big_batch);
  return sample;
}

std::optional<GnsSample> EstimateGnsDifferenced(const std::vector<double>& previous,
                                                const std::vector<double>& current,
                                                double batch_size) {
  if (previous.size() != current.size() || previous.empty() || batch_size <= 0.0) {
    return std::nullopt;
  }
  // With slowly-varying true gradient G, g_t - g_{t-1} is approximately a
  // zero-mean difference of two independent batch-m estimates, so
  // E|diff|^2 = 2 tr(Sigma)/m; and E|avg|^2 = |G|^2 + tr(Sigma)/(2m).
  double diff_sq = 0.0;
  double avg_sq = 0.0;
  for (size_t i = 0; i < current.size(); ++i) {
    const double diff = current[i] - previous[i];
    const double avg = 0.5 * (current[i] + previous[i]);
    diff_sq += diff * diff;
    avg_sq += avg * avg;
  }
  GnsSample sample;
  sample.cov_trace = batch_size * diff_sq / 2.0;
  sample.grad_sqnorm = avg_sq - diff_sq / 4.0;
  return sample;
}

GnsTracker::GnsTracker(double smoothing) : smoothing_(std::clamp(smoothing, 0.0, 0.999999)) {}

void GnsTracker::AddSample(const GnsSample& sample) {
  cov_ema_ = smoothing_ * cov_ema_ + (1.0 - smoothing_) * sample.cov_trace;
  sqnorm_ema_ = smoothing_ * sqnorm_ema_ + (1.0 - smoothing_) * sample.grad_sqnorm;
  weight_ = smoothing_ * weight_ + (1.0 - smoothing_);
  ++count_;
}

void GnsTracker::Reset() {
  cov_ema_ = 0.0;
  sqnorm_ema_ = 0.0;
  weight_ = 0.0;
  count_ = 0;
}

double GnsTracker::cov_trace() const { return weight_ > 0.0 ? cov_ema_ / weight_ : 0.0; }

double GnsTracker::grad_sqnorm() const { return weight_ > 0.0 ? sqnorm_ema_ / weight_ : 0.0; }

double GnsTracker::Phi() const {
  if (count_ == 0) {
    return 0.0;
  }
  const double sqnorm = grad_sqnorm();
  if (sqnorm <= 0.0) {
    // Degenerate smoothed moments (e.g. gradient vanished): an arbitrarily
    // large noise scale is the conservative answer, but we cap it so callers
    // get finite efficiencies.
    return cov_trace() > 0.0 ? 1e12 : 0.0;
  }
  return std::max(cov_trace() / sqnorm, 0.0);
}

}  // namespace pollux
