// Cluster-wide fitness for PolluxSched (Eqns. 14-16).
//
//   FITNESS(A) = sum_j w_j * SPEEDUP_j(A_j) / sum_j w_j                 (14)
//   w_j        = min(1, GPUTIME_THRES / GPUTIME(j))^lambda              (16)
//
// with a RESTART_PENALTY subtracted from SPEEDUP_j whenever applying A would
// force job j to checkpoint-restart (Sec. 4.2.1).

#ifndef POLLUX_CORE_FITNESS_H_
#define POLLUX_CORE_FITNESS_H_

#include <vector>

#include "core/allocation.h"
#include "core/eval_cache.h"
#include "core/speedup_table.h"

namespace pollux {

// Eqn. 16. `gpu_time` and `threshold` in the same unit (we use GPU-seconds);
// lambda = 0 disables decay (all weights 1).
double JobWeight(double gpu_time, double threshold, double lambda);

// Everything the scheduler-side fitness evaluation needs to know per job.
struct SchedJobInfo {
  uint64_t job_id = 0;
  SpeedupTable speedups;
  double weight = 1.0;
  // The allocation the job currently runs with (empty vector == not running).
  // A differing row in a candidate matrix incurs the restart penalty.
  std::vector<int> current_allocation;
  // Lifetime exploration cap: at most twice the most GPUs the job has ever
  // held (Sec. 4.1 "prior-driven exploration").
  int max_gpus_cap = 1;
  // Coarse quantization of training progress (set from GPU-time by
  // PolluxSched); part of the EvalCache key so entries computed from an
  // earlier model revision of the same job cannot be returned.
  uint16_t progress_bucket = 0;
};

// Penalized speedup of one row of the allocation matrix. When `cache` is
// non-null the raw SPEEDUP_j(K, N) lookup is memoized through it (the restart
// penalty depends on the full row, so it is always applied outside the
// cache); results are bit-identical with and without a cache.
//
// When `cluster` carries topology annotations, the placement summary becomes
// (K, N, R): cross-rack rows read the SpeedupTable's rack regime (cache key
// nodes == 3), and the result is scaled by the slowest GPU generation the row
// touches (outside the cache — the scale depends on the exact node set, not
// the (K, N, R) summary). Flat clusters take the legacy path unchanged.
double PenalizedSpeedup(const SchedJobInfo& job, const AllocationMatrix& matrix, size_t row,
                        double restart_penalty, EvalCache* cache = nullptr,
                        const ClusterSpec* cluster = nullptr);

// Eqn. 14 over all jobs.
double Fitness(const std::vector<SchedJobInfo>& jobs, const AllocationMatrix& matrix,
               double restart_penalty, EvalCache* cache = nullptr,
               const ClusterSpec* cluster = nullptr);

// Eqn. 17: cluster resource utility sum_j SPEEDUP_j / TOTAL_GPUS (no restart
// penalty, no weights) — the autoscaling signal.
double Utility(const std::vector<SchedJobInfo>& jobs, const AllocationMatrix& matrix,
               int total_gpus, const ClusterSpec* cluster = nullptr);

}  // namespace pollux

#endif  // POLLUX_CORE_FITNESS_H_
