#include "core/eval_cache.h"

namespace pollux {

size_t EvalCache::ProbeFor(const Shard& shard, const Key& key, uint64_t hash) {
  const size_t mask = shard.slots.size() - 1;
  size_t i = static_cast<size_t>(hash) & mask;
  while (shard.slots[i].used && !(shard.slots[i].key == key)) {
    i = (i + 1) & mask;
  }
  return i;
}

void EvalCache::GrowIfNeeded(Shard& shard) {
  if (shard.slots.empty()) {
    shard.slots.resize(kInitialSlots);
    return;
  }
  // Keep load below ~70% so linear probes stay short.
  if ((shard.size + 1) * 10 < shard.slots.size() * 7) {
    return;
  }
  std::vector<Slot> old = std::move(shard.slots);
  shard.slots.assign(old.size() * 2, Slot{});
  for (const Slot& slot : old) {
    if (slot.used) {
      shard.slots[ProbeFor(shard, slot.key, HashKey(slot.key))] = slot;
    }
  }
}

bool EvalCache::Lookup(const Key& key, Value* value) {
  const uint64_t hash = HashKey(key);
  Shard& shard = ShardFor(hash);
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (!shard.slots.empty()) {
      const Slot& slot = shard.slots[ProbeFor(shard, key, hash)];
      if (slot.used) {
        *value = slot.value;
        hits_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void EvalCache::Insert(const Key& key, const Value& value) {
  const uint64_t hash = HashKey(key);
  Shard& shard = ShardFor(hash);
  std::lock_guard<std::mutex> lock(shard.mutex);
  // Epoch-style eviction: a full shard restarts empty. Values are pure
  // functions of their key, so dropping entries only costs recomputation.
  if (shard.size >= max_entries_per_shard_) {
    shard.slots.clear();
    shard.size = 0;
  }
  GrowIfNeeded(shard);
  Slot& slot = shard.slots[ProbeFor(shard, key, hash)];
  if (!slot.used) {
    slot.used = true;
    slot.key = key;
    ++shard.size;
  }
  slot.value = value;
}

void EvalCache::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.slots.clear();
    shard.size = 0;
  }
}

void EvalCache::ResetStats() {
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
}

EvalCacheStats EvalCache::Stats() const {
  EvalCacheStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    stats.entries += shard.size;
  }
  return stats;
}

}  // namespace pollux
